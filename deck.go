package analogdft

import (
	"fmt"
	"os"

	"analogdft/internal/spice"
)

// LoadBench loads a SPICE deck from path into a Bench. The deck's .chain
// directive selects the configurable opamps; without one, every opamp is
// chained in netlist order. An empty path returns the built-in paper
// biquad. Commands share this loader instead of each re-implementing it;
// callers that require a non-empty chain (the DFT flows) must check
// Bench.Chain themselves, since a chainless deck is still sweepable.
func LoadBench(path string) (*Bench, error) {
	if path == "" {
		return PaperBiquad(), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("load bench %s: %w", path, err)
	}
	defer f.Close()
	deck, err := spice.Parse(f)
	if err != nil {
		return nil, fmt.Errorf("load bench %s: %w", path, err)
	}
	chain := deck.Chain
	if len(chain) == 0 {
		for _, op := range deck.Circuit.Opamps() {
			chain = append(chain, op.Name())
		}
	}
	return &Bench{Circuit: deck.Circuit, Chain: chain, Description: "netlist " + path, Deck: deck}, nil
}
