package analogdft

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// CircuitSummary is one row of the library study: the complete paper flow
// (initial testability → multi-configuration matrix → configuration and
// opamp optimization) measured on one benchmark circuit.
type CircuitSummary struct {
	Name        string
	Opamps      int
	Faults      int
	Configs     int // matrix rows actually simulated
	InitialFC   float64
	DFTFC       float64
	MinCover    int
	CoverLabels []string
	// PartialOpamps is the configurable-opamp count of the §4.3 solution.
	PartialOpamps int
	// BruteOmega / OptOmega are ⟨ω-det⟩ for all configurations vs the
	// optimized set.
	BruteOmega, OptOmega float64
	// Err records a failed study (row reported with the error).
	Err error
}

// libraryOptions returns the per-circuit evaluation options for the study.
// Filter-like circuits get their measurable-passband window (the §2
// calibration story); flat gain cascades use the automatic region. Wide
// chains get the §5 configuration-subset restriction so the covering
// expression stays tractable.
func libraryOptions(name string, opamps int) Options {
	opts := Options{Eps: 0.10, MeasFloor: 0.01, Points: 61}
	switch name {
	case "paper-biquad":
		opts.Region = Region{LoHz: 100, HiHz: 5600}
	case "biquad-cascade-2", "leapfrog-lp5":
		opts.Region = Region{LoHz: 100, HiHz: 5000}
	}
	if opamps > 6 {
		opts.MaxFollowers = 2 // §5: candidate-subset selection
	}
	return opts
}

// RunLibraryStudy executes the paper's flow over every circuit in the
// benchmark library — the "viability through consideration of more complex
// analog circuits" study that §5 announces as future work. Rows come back
// sorted by opamp count then name; per-circuit failures are reported in
// the row's Err rather than aborting the study.
func RunLibraryStudy() []CircuitSummary {
	lib := CircuitLibrary()
	names := make([]string, 0, len(lib))
	for name := range lib {
		names = append(names, name)
	}
	sort.Strings(names)

	var out []CircuitSummary
	for _, name := range names {
		bench := lib[name]
		row := CircuitSummary{
			Name:   name,
			Opamps: len(bench.Chain),
		}
		opts := libraryOptions(name, len(bench.Chain))
		exp, err := Run(bench, PaperFaultFraction, opts)
		if err != nil {
			row.Err = err
			out = append(out, row)
			continue
		}
		row.Faults = len(exp.Faults)
		row.Configs = exp.Matrix.NumConfigs()
		row.InitialFC = exp.Initial.FaultCoverage()
		row.DFTFC = exp.Matrix.FaultCoverage()
		row.MinCover = exp.ConfigOpt.Best.NumConfigs
		row.CoverLabels = exp.ConfigOpt.Best.Labels
		row.PartialOpamps = len(exp.OpampOpt.Chosen)
		row.BruteOmega = exp.Brute.AvgOmegaDet
		row.OptOmega = exp.ConfigOpt.Best.AvgOmegaDet
		out = append(out, row)
	}
	sortSummaries(out)
	return out
}

func sortSummaries(rows []CircuitSummary) {
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].Opamps != rows[b].Opamps {
			return rows[a].Opamps < rows[b].Opamps
		}
		return rows[a].Name < rows[b].Name
	})
}

// RunWasRestricted reports whether the study row simulated a configuration
// subset (§5 candidate selection) rather than all 2ⁿ−1 configurations.
func (s CircuitSummary) RunWasRestricted() bool {
	return s.Err == nil && s.Configs < (1<<uint(s.Opamps))-1
}

// WriteLibraryStudy renders the study as a table.
func WriteLibraryStudy(w io.Writer, rows []CircuitSummary) error {
	if _, err := fmt.Fprintf(w, "%-20s %-7s %-7s %-8s %-9s %-7s %-9s %-8s %-22s\n",
		"circuit", "opamps", "faults", "configs", "init-FC%", "DFT-FC%", "min-cover", "partial", "optimal set"); err != nil {
		return err
	}
	for _, r := range rows {
		if r.Err != nil {
			if _, err := fmt.Fprintf(w, "%-20s %-7d study failed: %v\n", r.Name, r.Opamps, r.Err); err != nil {
				return err
			}
			continue
		}
		mark := ""
		if r.RunWasRestricted() {
			mark = "*"
		}
		if _, err := fmt.Fprintf(w, "%-20s %-7d %-7d %-8s %-9.1f %-7.1f %-9d %d/%-6d %-22s\n",
			r.Name, r.Opamps, r.Faults, fmt.Sprintf("%d%s", r.Configs, mark),
			100*r.InitialFC, 100*r.DFTFC, r.MinCover, r.PartialOpamps, r.Opamps,
			strings.Join(r.CoverLabels, ",")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "(* = §5 candidate-subset restriction: configurations with ≤2 followers)")
	return err
}
