package analogdft

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"analogdft/internal/obs"
)

// quickSession builds a session over the paper biquad with a coarse sweep.
func quickSession(t *testing.T) *Session {
	t.Helper()
	bench := PaperBiquad()
	return NewSession(bench, DeviationFaults(bench.Circuit, 0.20), Options{Points: 31})
}

func TestSessionEvaluateMatchesDirectCall(t *testing.T) {
	s := quickSession(t)
	row, err := s.Evaluate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := EvaluateCircuit(s.Bench.Circuit, s.Faults, s.Options)
	if err != nil {
		t.Fatal(err)
	}
	if row.FaultCoverage() != direct.FaultCoverage() {
		t.Errorf("session FC %g != direct FC %g", row.FaultCoverage(), direct.FaultCoverage())
	}
}

// TestSessionMatrixCachedAcrossOptimize: the matrix is simulated once; the
// second Matrix call and the following Optimize reuse it (zero new engine
// solves).
func TestSessionMatrixCachedAcrossOptimize(t *testing.T) {
	s := quickSession(t)
	mx, err := s.Matrix(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	solves0 := obs.Reg().Snapshot()["detect_solves_total"].Value

	again, err := s.Matrix(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if again != mx {
		t.Error("second Matrix call rebuilt the matrix")
	}
	res, err := s.Optimize(context.Background(), ConfigCountCost)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.Best.Coverage != 1 {
		t.Errorf("optimize over cached matrix: %+v", res.Best)
	}
	if d := obs.Reg().Snapshot()["detect_solves_total"].Value - solves0; d != 0 {
		t.Errorf("cached path triggered %g new solves", d)
	}
}

func TestSessionOptimizeZeroCostDefaults(t *testing.T) {
	s := quickSession(t)
	res, err := s.Optimize(context.Background(), CostFunction{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CostName != ConfigCountCost.Name {
		t.Errorf("zero cost resolved to %q, want %q", res.CostName, ConfigCountCost.Name)
	}
}

func TestSessionRegionPin(t *testing.T) {
	s := quickSession(t)
	s.Region = Region{LoHz: 1e3, HiHz: 1e5}
	row, err := s.Evaluate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if row.Region != s.Region {
		t.Errorf("row region %+v, want pinned %+v", row.Region, s.Region)
	}
	// An explicit Options.Region wins over the session pin.
	s2 := quickSession(t)
	s2.Region = Region{LoHz: 1e3, HiHz: 1e5}
	s2.Options.Region = Region{LoHz: 2e3, HiHz: 4e4}
	row2, err := s2.Evaluate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if row2.Region != s2.Options.Region {
		t.Errorf("row region %+v, want options region %+v", row2.Region, s2.Options.Region)
	}
}

func TestSessionNoChain(t *testing.T) {
	bench := PaperBiquad()
	bench.Chain = nil
	s := NewSession(bench, DeviationFaults(bench.Circuit, 0.20), Options{Points: 31})
	if _, err := s.Matrix(context.Background()); !errors.Is(err, ErrNoChain) {
		t.Errorf("Matrix without chain: err = %v, want ErrNoChain", err)
	}
	if _, err := s.Optimize(context.Background(), ConfigCountCost); !errors.Is(err, ErrNoChain) {
		t.Errorf("Optimize without chain: err = %v, want ErrNoChain", err)
	}
}

// TestContextCancellation: a cancelled context aborts every facade entry
// point with context.Canceled instead of a result.
func TestContextCancellation(t *testing.T) {
	s := quickSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Evaluate(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Evaluate on cancelled ctx: %v", err)
	}
	if _, err := s.Matrix(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Matrix on cancelled ctx: %v", err)
	}
	if _, err := s.Optimize(ctx, ConfigCountCost); !errors.Is(err, context.Canceled) {
		t.Errorf("Optimize on cancelled ctx: %v", err)
	}
	mod, err := s.Modified()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildMatrixContext(ctx, mod, s.Faults, s.Options); !errors.Is(err, context.Canceled) {
		t.Errorf("BuildMatrixContext on cancelled ctx: %v", err)
	}
	if _, err := EvaluateCircuitContext(ctx, s.Bench.Circuit, s.Faults, s.Options); !errors.Is(err, context.Canceled) {
		t.Errorf("EvaluateCircuitContext on cancelled ctx: %v", err)
	}
}

// TestContextCancelMidMatrix: cancelling while the matrix fan-out runs
// stops it between cells — the call returns context.Canceled well before
// the full sweep could finish.
func TestContextCancelMidMatrix(t *testing.T) {
	bench := PaperBiquad()
	s := NewSession(bench, DeviationFaults(bench.Circuit, 0.20), Options{Points: 20001, Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Matrix(ctx)
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Errorf("mid-matrix cancel: err = %v, want context.Canceled", err)
	}
}

// TestLoadBenchErrorIncludesPath: both the open and the parse failure wrap
// the underlying error and name the offending path.
func TestLoadBenchErrorIncludesPath(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope.cir")
	_, err := LoadBench(missing)
	if err == nil {
		t.Fatal("LoadBench on a missing file succeeded")
	}
	want := "load bench " + missing + ": "
	if got := err.Error(); len(got) < len(want) || got[:len(want)] != want {
		t.Errorf("error = %q, want prefix %q", got, want)
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("open failure not wrapped with %%w: %v", err)
	}

	bad := filepath.Join(t.TempDir(), "bad.cir")
	if err := os.WriteFile(bad, []byte("R1 only two\n.end\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadBench(bad)
	if err == nil {
		t.Fatal("LoadBench on a malformed deck succeeded")
	}
	want = "load bench " + bad + ": "
	if got := err.Error(); len(got) < len(want) || got[:len(want)] != want {
		t.Errorf("parse error = %q, want prefix %q", got, want)
	}
}
