package analogdft

import (
	"fmt"

	"analogdft/internal/circuit"
	"analogdft/internal/detect"
	"analogdft/internal/dft"
	"analogdft/internal/fault"
)

// WithSinglePoleOpamps returns a copy of the bench in which every ideal
// opamp is replaced by the single-pole model A(jω) = A0/(1 + jω/ωp). Use
// this to enable opamp-internal fault analysis (the ideal model has no
// parameters to degrade).
func WithSinglePoleOpamps(b *Bench, a0, poleHz float64) *Bench {
	ckt := b.Circuit.Clone()
	for _, op := range ckt.Opamps() {
		op.Model = circuit.ModelSinglePole
		if op.A0 == 0 {
			op.A0 = a0
		}
		if op.PoleHz == 0 {
			op.PoleHz = poleHz
		}
	}
	return &Bench{
		Circuit:     ckt,
		Chain:       append([]string(nil), b.Chain...),
		Description: b.Description + fmt.Sprintf(" (single-pole opamps, A0=%.3g, pole=%.3g Hz)", a0, poleHz),
	}
}

// OpampFaults builds the opamp-internal fault universe: gain degradation
// (A0 × gainFactor) and bandwidth degradation (pole × poleFactor) on every
// single-pole opamp.
func OpampFaults(ckt *Circuit, gainFactor, poleFactor float64) FaultList {
	return fault.OpampUniverse(ckt, gainFactor, poleFactor)
}

// OpampTest is the §3.1 transparent-configuration experiment: the
// transparent configuration (every opamp in follower mode) performs the
// identity function and cannot detect passive faults, but it exposes the
// opamps themselves — an internal fault degrades one follower in the
// buffer chain and the identity function breaks near the opamp bandwidth.
type OpampTest struct {
	// Bench is the circuit with single-pole opamps.
	Bench *Bench
	// Faults is the opamp-internal fault universe.
	Faults FaultList
	// Transparent is the evaluation of the opamp faults in the
	// transparent configuration.
	Transparent *Row
	// Functional is the same evaluation in the functional configuration,
	// for comparison.
	Functional *Row
	// PassiveInTransparent evaluates the passive deviation faults in the
	// transparent configuration — the paper's observation that it "does
	// not permit the detection of the faults on passive components".
	PassiveInTransparent *Row
}

// RunOpampTest executes the transparent-configuration experiment on a
// bench (converted to single-pole opamps with the given parameters).
// gainFactor/poleFactor size the internal faults; passiveFrac sizes the
// passive deviation faults used for the negative control.
func RunOpampTest(b *Bench, a0, poleHz, gainFactor, poleFactor, passiveFrac float64, opts Options) (*OpampTest, error) {
	sp := WithSinglePoleOpamps(b, a0, poleHz)
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	mod, err := ApplyDFT(sp.Circuit, sp.Chain)
	if err != nil {
		return nil, err
	}
	transparentCfg := dft.Configuration{Index: mod.NumConfigurations() - 1, N: mod.N()}
	transparent, err := mod.Configure(transparentCfg)
	if err != nil {
		return nil, err
	}
	functional, err := mod.Configure(dft.Configuration{Index: 0, N: mod.N()})
	if err != nil {
		return nil, err
	}

	res := &OpampTest{
		Bench:  sp,
		Faults: OpampFaults(sp.Circuit, gainFactor, poleFactor),
	}
	if len(res.Faults) == 0 {
		return nil, fmt.Errorf("analogdft: no single-pole opamps to test")
	}

	// The transparent configuration's own response (a buffer chain flat to
	// ≈ the opamp GBW) defines the reference region for the opamp test;
	// leave opts.Region zero to derive it from each circuit under test.
	if res.Transparent, err = detect.EvaluateCircuit(transparent, res.Faults, opts); err != nil {
		return nil, fmt.Errorf("transparent evaluation: %w", err)
	}
	if res.Functional, err = detect.EvaluateCircuit(functional, res.Faults, opts); err != nil {
		return nil, fmt.Errorf("functional evaluation: %w", err)
	}
	passive := DeviationFaults(sp.Circuit, passiveFrac)
	if res.PassiveInTransparent, err = detect.EvaluateCircuit(transparent, passive, opts); err != nil {
		return nil, fmt.Errorf("passive-in-transparent evaluation: %w", err)
	}
	return res, nil
}
