package analogdft

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestCharacterizeConfigurations(t *testing.T) {
	e := paperExperiment(t)
	chars, err := e.Characterize(Region{LoHz: 100, HiHz: 1e6}, 81, 4, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(chars) != 7 {
		t.Fatalf("characterizations = %d", len(chars))
	}
	byLabel := map[string]ConfigCharacter{}
	for _, c := range chars {
		byLabel[c.Config.Label()] = c
	}
	// C0 is the functional biquad: 2nd order, f0 = 10 kHz, Q = 2, unity DC.
	c0 := byLabel["C0"]
	if c0.Err != nil {
		t.Fatalf("C0 fit: %v", c0.Err)
	}
	if c0.Order != 2 || !c0.HasPair {
		t.Fatalf("C0 = %+v", c0)
	}
	if math.Abs(c0.F0Hz-10e3) > 200 || math.Abs(c0.Q-2) > 0.1 {
		t.Fatalf("C0 f0 = %g, Q = %g", c0.F0Hz, c0.Q)
	}
	if math.Abs(c0.DCGain-1) > 0.02 {
		t.Fatalf("C0 DC gain = %g", c0.DCGain)
	}
	// Every configuration characterizes to order ≤ 2 (at most the two
	// capacitors remain active).
	for _, c := range chars {
		if c.Err == nil && c.Order > 2 {
			t.Errorf("%s: fitted order %d > 2", c.Config.Label(), c.Order)
		}
	}
	// The test configurations implement *different* functions: at least
	// one has no resonant pair (an integrator/first-order behaviour).
	noPair := 0
	for _, c := range chars {
		if c.Err == nil && !c.HasPair {
			noPair++
		}
	}
	if noPair == 0 {
		t.Error("every configuration still resonant; expected some follower-mode first-order functions")
	}
}

func TestWriteCharacterization(t *testing.T) {
	e := paperExperiment(t)
	chars, err := e.Characterize(Region{LoHz: 100, HiHz: 1e6}, 61, 4, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteCharacterization(&sb, chars); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "C0") || !strings.Contains(out, "order") {
		t.Fatalf("table:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 8 {
		t.Fatalf("lines = %d, want 8", len(lines))
	}
}

func TestCharacterizeBadRegion(t *testing.T) {
	e := paperExperiment(t)
	if _, err := e.Characterize(Region{LoHz: 10, HiHz: 1}, 61, 4, 1e-3); err == nil {
		t.Fatal("bad region accepted")
	}
}

func TestExperimentSummaryJSON(t *testing.T) {
	e := paperExperiment(t)
	var sb strings.Builder
	if err := e.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	s := e.Summary()
	if s.InitialFaultCoverage != 0.25 || s.DFTFaultCoverage != 1 {
		t.Fatalf("summary coverages = %g/%g", s.InitialFaultCoverage, s.DFTFaultCoverage)
	}
	if len(s.DetMatrix) != 7 || len(s.DetMatrix[0]) != 8 {
		t.Fatal("summary matrix shape")
	}
	if len(s.CandidateSets) != 2 || len(s.OptimalSet) != 2 {
		t.Fatalf("summary sets: %v / %v", s.CandidateSets, s.OptimalSet)
	}
	if s.EssentialConfigs[0] != "C2" {
		t.Fatalf("essential = %v", s.EssentialConfigs)
	}
	if decoded["circuit"] != "paper-biquad" {
		t.Fatalf("circuit field = %v", decoded["circuit"])
	}
}
