package analogdft

import "analogdft/internal/netlint"

// Netlist lint surface. The netlint package statically predicts the
// failure modes that otherwise appear as opaque singular-matrix errors
// mid-simulation, and audits the DFT structure itself; these aliases
// re-export it for library users.
type (
	// LintDiagnostic is one structured lint finding with a stable NLxxx
	// code, severity, location and fix hint.
	LintDiagnostic = netlint.Diagnostic
	// LintReport is the result of linting one bench or deck.
	LintReport = netlint.Report
	// LintSeverity grades a lint finding.
	LintSeverity = netlint.Severity
	// LintCheck describes one registered lint check.
	LintCheck = netlint.CheckInfo
)

// Lint severities re-exported for callers gating on Report.Count.
const (
	LintInfo    = netlint.SevInfo
	LintWarning = netlint.SevWarning
	LintError   = netlint.SevError
)

// Lint statically checks a bench — connectivity, MNA-singularity
// predictors, value plausibility and the multi-configuration DFT
// structure — without running any simulation. Benches loaded from a deck
// file carry their parse line numbers into the diagnostics.
func Lint(bench *Bench) *LintReport {
	return netlint.Analyze(netlint.Source{
		Circuit: bench.Circuit,
		Chain:   bench.Chain,
		Deck:    bench.Deck,
		Name:    bench.Circuit.Name,
	})
}

// LintCircuit statically checks a bare circuit with an optional DFT
// chain; use Lint when a full bench (with its source deck) is available.
func LintCircuit(c *Circuit, chain []string) *LintReport {
	return netlint.Analyze(netlint.Source{Circuit: c, Chain: chain})
}

// LintChecks returns every registered lint check in code order.
func LintChecks() []LintCheck { return netlint.Checks() }
