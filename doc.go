// Package analogdft is a library for testability analysis and optimized
// Design-For-Test of analog (opamp-RC) circuits, reproducing
//
//	M. Renovell, F. Azaïs, Y. Bertrand, "Optimized Implementations of the
//	Multi-Configuration DFT Technique for Analog Circuits", DATE 1998.
//
// The library covers the full flow of the paper:
//
//  1. Describe an opamp-RC circuit (or load a SPICE-like deck) —
//     NewCircuit, PaperBiquad, ParseNetlist.
//  2. Evaluate its testability for a soft-fault list via AC fault
//     simulation on the built-in MNA engine — DeviationFaults,
//     EvaluateCircuit: fault detectability (Definition 1) and
//     ω-detectability (Definition 2).
//  3. Apply the multi-configuration DFT technique: replace opamps by
//     configurable opamps chained from input to output — ApplyDFT — and
//     fault-simulate all 2^n configurations into a fault detectability
//     matrix — BuildMatrix.
//  4. Optimize the configuration set under ordered requirements — the
//     fundamental maximum-fault-coverage requirement (covering expression
//     ξ, essential configurations, Petrick expansion), a 2nd-order cost
//     function (configuration count, configurable-opamp count, or custom)
//     and the 3rd-order ω-detectability tie-break — Optimize,
//     OptimizeOpamps.
//
// RunPaperExperiment executes the entire experiment sequence of the paper
// on the built-in biquad; RunPublished replays the §4 optimization on the
// matrices published in the paper itself, reproducing every §4 number
// exactly.
package analogdft
