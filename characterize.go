package analogdft

import (
	"fmt"
	"io"
	"math"
	"math/cmplx"

	"analogdft/internal/symbolic"
)

// ConfigCharacter is the fitted characterization of one test
// configuration: what network function the configurable opamps emulate.
type ConfigCharacter struct {
	Config Configuration
	// Order is the fitted denominator order (pole count).
	Order int
	// DCGain is |H| at the low edge of the fitted region.
	DCGain float64
	// F0Hz and Q describe the dominant conjugate pole pair; HasPair is
	// false for first-order (or overdamped) configurations.
	F0Hz, Q float64
	HasPair bool
	// FitErr is the worst relative magnitude error of the model.
	FitErr float64
	// Err records a failed fit (configuration left uncharacterized).
	Err error
}

// Characterize fits a rational model to every configuration of the
// experiment's modified circuit over the given region (the §3 "widening of
// the functional space" made quantitative: each configuration is a
// different transfer function with its own order, f0 and Q).
func (e *Experiment) Characterize(region Region, points, maxOrder int, tol float64) ([]ConfigCharacter, error) {
	if err := region.Validate(); err != nil {
		return nil, err
	}
	var out []ConfigCharacter
	for _, cfg := range e.Matrix.Configs {
		ckt, err := e.Modified.Configure(cfg)
		if err != nil {
			return nil, err
		}
		c := ConfigCharacter{Config: cfg}
		model, err := symbolic.FitCircuit(ckt, region, points, maxOrder, tol)
		if err != nil && model == nil {
			c.Err = err
			out = append(out, c)
			continue
		}
		// FitCircuit may return its best-effort model with an error; keep
		// the model and record the residual.
		c.Order = model.DenOrder()
		c.DCGain = cmplx.Abs(model.Eval(region.LoHz))
		c.FitErr = 0
		if err != nil {
			c.Err = err
		}
		if f0, q, ok := symbolic.DominantPair(model.Poles()); ok {
			c.F0Hz, c.Q, c.HasPair = f0, q, true
		}
		out = append(out, c)
	}
	return out, nil
}

// WriteCharacterization renders the characterization as a table.
func WriteCharacterization(w io.Writer, chars []ConfigCharacter) error {
	if _, err := fmt.Fprintf(w, "%-5s %-7s %-6s %-10s %-8s %s\n",
		"Conf", "Vector", "order", "|H(lo)|", "f0", "Q"); err != nil {
		return err
	}
	for _, c := range chars {
		if c.Err != nil && c.Order == 0 {
			if _, err := fmt.Fprintf(w, "%-5s %-7s fit failed: %v\n",
				c.Config.Label(), c.Config.Vector(), c.Err); err != nil {
				return err
			}
			continue
		}
		f0, q := "-", "-"
		if c.HasPair {
			f0 = fmt.Sprintf("%.4g", c.F0Hz)
			q = fmt.Sprintf("%.3g", c.Q)
		}
		dc := fmt.Sprintf("%.4g", c.DCGain)
		if math.IsInf(c.DCGain, 0) || math.IsNaN(c.DCGain) {
			dc = "-"
		}
		if _, err := fmt.Fprintf(w, "%-5s %-7s %-6d %-10s %-8s %s\n",
			c.Config.Label(), c.Config.Vector(), c.Order, dc, f0, q); err != nil {
			return err
		}
	}
	return nil
}
