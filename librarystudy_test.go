package analogdft

import (
	"errors"
	"strings"
	"testing"
)

func TestRunLibraryStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("library study simulates every benchmark circuit")
	}
	rows := RunLibraryStudy()
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	byName := map[string]CircuitSummary{}
	for _, r := range rows {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		byName[r.Name] = r
	}
	// Rows sorted by opamp count.
	for i := 1; i < len(rows); i++ {
		if rows[i].Opamps < rows[i-1].Opamps {
			t.Fatal("rows not sorted by opamp count")
		}
	}
	// The paper biquad row reproduces the headline: 25% → 100%, 2 configs,
	// 2 configurable opamps.
	bq := byName["paper-biquad"]
	if bq.InitialFC != 0.25 || bq.DFTFC != 1 || bq.MinCover != 2 || bq.PartialOpamps != 2 {
		t.Fatalf("paper-biquad row = %+v", bq)
	}
	// Gain-dominated circuits are fully testable functionally: no DFT
	// hardware needed.
	for _, name := range []string{"sallen-key-lp", "multistage-lp-4"} {
		r := byName[name]
		if r.InitialFC != 1 || r.MinCover != 1 || r.PartialOpamps != 0 {
			t.Fatalf("%s row = %+v", name, r)
		}
	}
	// The KHN needs the DFT but only one configurable opamp.
	khn := byName["khn-state-variable"]
	if khn.InitialFC >= 1 || khn.DFTFC != 1 || khn.PartialOpamps == 0 {
		t.Fatalf("khn row = %+v", khn)
	}
	// The 7-opamp leapfrog runs under the §5 subset restriction and still
	// reaches high coverage with a small cover.
	lf := byName["leapfrog-lp5"]
	if !lf.RunWasRestricted() {
		t.Fatal("leapfrog should use the candidate subset")
	}
	if lf.DFTFC < 0.9 || lf.MinCover > 3 {
		t.Fatalf("leapfrog row = %+v", lf)
	}
	// DFT never lowers coverage.
	for _, r := range rows {
		if r.DFTFC < r.InitialFC {
			t.Fatalf("%s: DFT coverage below initial", r.Name)
		}
	}
	var sb strings.Builder
	if err := WriteLibraryStudy(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "leapfrog-lp5") || !strings.Contains(sb.String(), "29*") {
		t.Fatalf("study table:\n%s", sb.String())
	}
}

func TestWriteLibraryStudyErrorRow(t *testing.T) {
	rows := []CircuitSummary{{Name: "broken", Opamps: 2, Err: errors.New("boom")}}
	var sb strings.Builder
	if err := WriteLibraryStudy(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "study failed") {
		t.Fatalf("table:\n%s", sb.String())
	}
}
