package analogdft

import (
	"math"
	"strings"
	"testing"

	"analogdft/internal/paperdata"
)

// cachedExperiment runs the (relatively expensive) paper experiment once
// for the whole test binary.
var cachedExperiment *Experiment

func paperExperiment(t *testing.T) *Experiment {
	t.Helper()
	if cachedExperiment == nil {
		e, err := RunPaperExperiment()
		if err != nil {
			t.Fatalf("RunPaperExperiment: %v", err)
		}
		cachedExperiment = e
	}
	return cachedExperiment
}

// TestPaperExperimentHeadline verifies the experiment on our simulator
// reproduces the shape of the paper's headline results:
// FC 25% → 100%, large ⟨ω-det⟩ improvement, 2-configuration optimal set.
func TestPaperExperimentHeadline(t *testing.T) {
	e := paperExperiment(t)
	if fc := e.Initial.FaultCoverage(); fc != 0.25 {
		t.Errorf("initial FC = %g, want 0.25 (paper §2)", fc)
	}
	if fc := e.Matrix.FaultCoverage(); fc != 1 {
		t.Errorf("DFT FC = %g, want 1 (paper §3.2)", fc)
	}
	if e.Brute.AvgOmegaDet <= e.Initial.AvgOmegaDet() {
		t.Error("DFT must improve ⟨ω-det⟩")
	}
	if e.ConfigOpt.Best.NumConfigs != 2 {
		t.Errorf("optimal set size = %d, want 2", e.ConfigOpt.Best.NumConfigs)
	}
	if e.ConfigOpt.Best.Coverage != 1 {
		t.Error("optimal set must keep maximum coverage")
	}
}

// TestPaperExperimentInitialRow checks the §2 result exactly: only fR1 and
// fR4 are detectable in the functional configuration.
func TestPaperExperimentInitialRow(t *testing.T) {
	e := paperExperiment(t)
	want := map[string]bool{"fR1": true, "fR4": true}
	for _, ev := range e.Initial.Evals {
		if ev.Detectable != want[ev.Fault.ID] {
			t.Errorf("%s: detectable = %v, want %v", ev.Fault.ID, ev.Detectable, want[ev.Fault.ID])
		}
	}
}

// TestPaperExperimentStructure checks the §4 structure matches the paper:
// essential configuration C2, minimal sets {C1,C2} and {C2,C5}, partial
// DFT with OP1+OP2 and four usable configurations.
func TestPaperExperimentStructure(t *testing.T) {
	e := paperExperiment(t)
	if len(e.ConfigOpt.EssentialRows) != 1 ||
		e.Matrix.Configs[e.ConfigOpt.EssentialRows[0]].Label() != "C2" {
		t.Errorf("essential rows = %v, want [C2]", e.ConfigOpt.EssentialRows)
	}
	var labels []string
	for _, c := range e.ConfigOpt.Candidates {
		labels = append(labels, strings.Join(c.Labels, ","))
	}
	if len(labels) != 2 || labels[0] != "C1,C2" || labels[1] != "C2,C5" {
		t.Errorf("candidates = %v, want [C1,C2 C2,C5]", labels)
	}
	if got := strings.Join(e.OpampOpt.Chosen, ","); got != "OP1,OP2" {
		t.Errorf("chosen opamps = %v", e.OpampOpt.Chosen)
	}
	if got := strings.Join(e.OpampOpt.UsableLabels, ","); got != "C0,C1,C2,C3" {
		t.Errorf("usable configs = %v", e.OpampOpt.UsableLabels)
	}
	if e.OpampOpt.Coverage != 1 {
		t.Errorf("partial DFT coverage = %g", e.OpampOpt.Coverage)
	}
}

// TestPaperExperimentMatrixAgreement measures cell agreement with the
// published Figure 5 (shape reproduction — we require a clear majority of
// cells to match, and the headline rows C0/C1 to match exactly).
func TestPaperExperimentMatrixAgreement(t *testing.T) {
	e := paperExperiment(t)
	// Map our netlist fault order onto the paper's column order.
	paperCols := paperdata.FaultIDs
	ourCol := map[string]int{}
	for j, f := range e.Matrix.Faults {
		ourCol[f.ID] = j
	}
	match, total := 0, 0
	rowMatch := make([]int, 7)
	for i := 0; i < 7; i++ {
		for jp, id := range paperCols {
			j, ok := ourCol[id]
			if !ok {
				t.Fatalf("fault %s missing", id)
			}
			total++
			if e.Matrix.Det[i][j] == paperdata.Fig5Det[i][jp] {
				match++
				rowMatch[i]++
			}
		}
	}
	if match < total*3/4 {
		t.Errorf("matrix agreement %d/%d below 75%%", match, total)
	}
	if rowMatch[0] != 8 {
		t.Errorf("row C0 agreement %d/8, want exact", rowMatch[0])
	}
	if rowMatch[1] != 8 {
		t.Errorf("row C1 agreement %d/8, want exact", rowMatch[1])
	}
}

func TestPartialMatrixShape(t *testing.T) {
	e := paperExperiment(t)
	if e.PartialMatrix == nil {
		t.Fatal("no partial matrix")
	}
	if e.PartialMatrix.NumConfigs() != 4 {
		t.Fatalf("partial rows = %d, want 4 (Table 4)", e.PartialMatrix.NumConfigs())
	}
	if e.PartialMatrix.FaultCoverage() != 1 {
		t.Error("partial DFT must keep full coverage")
	}
	// Mask vectors follow the paper's Table 4 notation.
	if v := e.Partial.MaskVector(e.PartialMatrix.Configs[1]); v != "10-" {
		t.Errorf("partial C1 vector = %q, want 10-", v)
	}
}

func TestExperimentReport(t *testing.T) {
	e := paperExperiment(t)
	var sb strings.Builder
	if err := e.Report(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table 1", "Graph 1", "Figure 5", "Table 2", "Graph 2",
		"§4.1", "§4.2", "Graph 3", "§4.3", "Table 4", "Graph 4",
		"Headline summary", "essential configurations: C2", "ξ* = OP1·OP2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestRunPublishedExact verifies the §4 numbers on the published data.
func TestRunPublishedExact(t *testing.T) {
	p, err := RunPublished()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(p.ConfigOpt.Best.Labels, ","); got != "C2,C5" {
		t.Errorf("best = %s", got)
	}
	if math.Abs(p.ConfigOpt.Best.AvgOmegaDet-paperdata.OptimizedAvgOmegaDet) > 1e-9 {
		t.Errorf("⟨ω-det⟩ = %g", p.ConfigOpt.Best.AvgOmegaDet)
	}
	if math.Abs(p.Brute.AvgOmegaDet-paperdata.BruteForceAvgOmegaDet) > 1e-9 {
		t.Errorf("brute = %g", p.Brute.AvgOmegaDet)
	}
	if got := strings.Join(p.OpampOpt.Chosen, ","); got != "OP1,OP2" {
		t.Errorf("opamps = %s", got)
	}
	if math.Abs(p.OpampOpt.AvgOmegaDet-paperdata.PartialDFTAvgOmegaDet) > 1e-9 {
		t.Errorf("partial = %g", p.OpampOpt.AvgOmegaDet)
	}
	var sb strings.Builder
	if err := p.Report(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "C1·C2 + C2·C5") {
		t.Errorf("published report missing SOP:\n%s", sb.String())
	}
}

func TestFacadeWrappers(t *testing.T) {
	b := PaperBiquad()
	if len(DeviationFaults(b.Circuit, 0.2)) != 8 {
		t.Error("DeviationFaults")
	}
	if len(BipolarDeviationFaults(b.Circuit, 0.2)) != 16 {
		t.Error("BipolarDeviationFaults")
	}
	if len(CatastrophicFaults(b.Circuit)) != 16 {
		t.Error("CatastrophicFaults")
	}
	reg, err := ReferenceRegion(b.Circuit)
	if err != nil || reg.LoHz <= 0 {
		t.Errorf("ReferenceRegion: %v %v", reg, err)
	}
	resp, err := Sweep(b.Circuit, SweepSpec{StartHz: 10, StopHz: 1e6, Points: 21})
	if err != nil || resp.Len() != 21 {
		t.Errorf("Sweep: %v", err)
	}
	if len(CircuitLibrary()) == 0 {
		t.Error("CircuitLibrary empty")
	}
	if len(PaperOpampNames()) != 3 {
		t.Error("PaperOpampNames")
	}
	if PublishedMatrix().NumConfigs() != 7 || PublishedPartialMatrix().NumConfigs() != 4 {
		t.Error("published matrices")
	}
}

func TestGreedyVsExactOnExperiment(t *testing.T) {
	e := paperExperiment(t)
	g, err := GreedySolution(e.Matrix, e.Bench.Chain)
	if err != nil {
		t.Fatal(err)
	}
	x, err := ExactMinSolution(e.Matrix, e.Bench.Chain)
	if err != nil {
		t.Fatal(err)
	}
	if x.Coverage != 1 || g.Coverage != 1 {
		t.Error("baselines must keep coverage")
	}
	if x.NumConfigs > g.NumConfigs {
		t.Error("exact worse than greedy")
	}
	if x.NumConfigs != e.ConfigOpt.Best.NumConfigs {
		t.Error("exact cover and Petrick minimal disagree on size")
	}
}

func TestWeightedCostOnExperiment(t *testing.T) {
	e := paperExperiment(t)
	res, err := Optimize(e.Matrix, e.Bench.Chain, WeightedCost(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.Best.Coverage != 1 {
		t.Fatal("weighted optimization failed")
	}
}

func TestRunRejectsBadBench(t *testing.T) {
	b := PaperBiquad()
	b.Chain = []string{"missing"}
	if _, err := Run(b, 0.2, PaperOptions()); err == nil {
		t.Fatal("bad bench accepted")
	}
}
