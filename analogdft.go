package analogdft

import (
	"context"

	"analogdft/internal/analysis"
	"analogdft/internal/boolexpr"
	"analogdft/internal/circuit"
	"analogdft/internal/circuits"
	"analogdft/internal/core"
	"analogdft/internal/detect"
	"analogdft/internal/dft"
	"analogdft/internal/fault"
	"analogdft/internal/mna"
)

// Re-exported types. The implementation lives in internal packages; these
// aliases form the public surface of the library.
type (
	// Circuit is a netlist of components with designated input/output.
	Circuit = circuit.Circuit
	// Component is any netlist element.
	Component = circuit.Component
	// Opamp is an (ideal or single-pole) operational amplifier.
	Opamp = circuit.Opamp
	// Bench bundles a benchmark circuit with its recommended DFT chain.
	Bench = circuits.Bench
	// Fault is a single fault (deviation, open or short).
	Fault = fault.Fault
	// FaultList is an ordered fault universe.
	FaultList = fault.List
	// SweepSpec describes a logarithmic frequency sweep.
	SweepSpec = analysis.SweepSpec
	// Region is a frequency interval (Ω_reference).
	Region = analysis.Region
	// Response is a sampled transfer function.
	Response = analysis.Response
	// Options parameterizes testability evaluation (ε, grid, floor,
	// region, parallelism, error policy).
	Options = detect.Options
	// Row is a fault list evaluated against one circuit.
	Row = detect.Row
	// Matrix is the fault detectability matrix across configurations.
	Matrix = detect.Matrix
	// CellError is a structured record of one failed matrix cell
	// (configuration, fault, cause).
	CellError = detect.CellError
	// ErrorPolicy selects how failed cells are treated (Degrade,
	// FailFast or Retry).
	ErrorPolicy = detect.ErrorPolicy
	// EngineMode selects the cell simulation strategy
	// (EngineIncremental, EngineLowRank or EngineNaive).
	EngineMode = detect.EngineMode
	// Layout selects the MNA matrix layout (LayoutAuto, LayoutDense or
	// LayoutSparse). Every layout produces bit-identical matrices; the
	// choice only changes the cost of building and factoring them.
	Layout = mna.Layout
	// SimStats summarizes fault-simulation effort (cells, solves,
	// singular points, retries, errors, wall time).
	SimStats = detect.Stats
	// Modified is a DFT-modified circuit (configurable opamps + chain).
	Modified = dft.Modified
	// Configuration identifies one test configuration.
	Configuration = dft.Configuration
	// Candidate is a configuration set satisfying maximum fault coverage.
	Candidate = core.Candidate
	// CostFunction is a 2nd-order (user-defined) requirement.
	CostFunction = core.CostFunction
	// Result is the output of Optimize.
	Result = core.Result
	// OpampResult is the output of OptimizeOpamps (§4.3 partial DFT).
	OpampResult = core.OpampResult
	// Baseline is the brute-force all-configurations reference point.
	Baseline = core.Baseline
	// SOP is a sum-of-products covering expression.
	SOP = boolexpr.SOP
	// Expr is a product-of-sums covering expression (ξ).
	Expr = boolexpr.Expr
)

// Error policies for Options.OnError.
const (
	// Degrade records failed cells in Matrix.CellErrors and keeps going
	// (the default).
	Degrade = detect.Degrade
	// FailFast aborts the evaluation on the first failed cell.
	FailFast = detect.FailFast
	// Retry re-solves singular grid points on a deterministically
	// jittered grid before degrading.
	Retry = detect.Retry
)

// Engine modes for Options.Engine.
const (
	// EngineIncremental patches faults into a reusable per-configuration
	// system in place — no clone, no rebuild (the default).
	EngineIncremental = detect.EngineIncremental
	// EngineNaive clones the circuit and rebuilds the system per cell
	// (the reference implementation).
	EngineNaive = detect.EngineNaive
	// EngineLowRank factors the nominal system once per (configuration,
	// frequency) grid point and solves rank-1 faults against the cached
	// factorizations via Sherman–Morrison, falling back to the
	// incremental path for faults that are not rank-1 updates.
	EngineLowRank = detect.EngineLowRank
)

// ParseEngineMode maps an -engine flag value ("incremental", "lowrank"
// or "naive") onto an engine mode.
func ParseEngineMode(name string) (EngineMode, error) {
	return detect.ParseEngineMode(name)
}

// Matrix layouts for Options.Layout.
const (
	// LayoutAuto picks dense or sparse per system by a fill heuristic
	// (the default).
	LayoutAuto = mna.LayoutAuto
	// LayoutDense forces the contiguous n×n layout.
	LayoutDense = mna.LayoutDense
	// LayoutSparse forces the CSR layout with the left-looking sparse LU.
	LayoutSparse = mna.LayoutSparse
)

// ParseLayout maps a -layout flag value ("auto", "dense" or "sparse")
// onto a matrix layout.
func ParseLayout(name string) (Layout, error) {
	return mna.ParseLayout(name)
}

// Predefined 2nd-order cost functions.
var (
	// ConfigCountCost minimizes the number of test configurations (§4.2).
	ConfigCountCost = core.ConfigCountCost
	// OpampCountCost minimizes the number of configurable opamps (§4.3).
	OpampCountCost = core.OpampCountCost
)

// WeightedCost blends configuration and opamp counts.
func WeightedCost(wConfigs, wOpamps float64) CostFunction {
	return core.WeightedCost(wConfigs, wOpamps)
}

// NewCircuit returns an empty circuit with the given name.
func NewCircuit(name string) *Circuit { return circuit.New(name) }

// Benchmark circuit constructors.
var (
	// PaperBiquad is the Tow–Thomas biquad standing in for Figure 1.
	PaperBiquad = circuits.PaperBiquad
	// SallenKeyLowpass is a unity-gain 2nd-order Butterworth lowpass.
	SallenKeyLowpass = circuits.SallenKeyLowpass
	// SingleOpampBandpass is an inverting one-opamp wide bandpass.
	SingleOpampBandpass = circuits.SingleOpampBandpass
	// KHNStateVariable is a three-opamp state-variable filter.
	KHNStateVariable = circuits.KHNStateVariable
	// MultiStageLowpass cascades n first-order inverting lowpass stages.
	MultiStageLowpass = circuits.MultiStageLowpass
	// BiquadCascade cascades n Tow–Thomas biquads (3n opamps).
	BiquadCascade = circuits.BiquadCascade
	// CircuitLibrary returns every fixed benchmark circuit by name.
	CircuitLibrary = circuits.Library
)

// DeviationFaults builds the paper's fault universe: one +frac deviation
// fault per passive component.
func DeviationFaults(ckt *Circuit, frac float64) FaultList {
	return fault.DeviationUniverse(ckt, frac)
}

// BipolarDeviationFaults builds ±frac deviation faults per passive.
func BipolarDeviationFaults(ckt *Circuit, frac float64) FaultList {
	return fault.BipolarDeviationUniverse(ckt, frac)
}

// CatastrophicFaults builds open/short faults per passive component.
func CatastrophicFaults(ckt *Circuit) FaultList {
	return fault.CatastrophicUniverse(ckt)
}

// Sweep samples the circuit's transfer function over a log grid.
func Sweep(ckt *Circuit, spec SweepSpec) (*Response, error) {
	return analysis.Sweep(ckt, spec)
}

// RetrySingularPoints re-solves a response's invalid (singular) grid
// points in place on a deterministically jittered grid. It returns how
// many points were recovered and how many extra solves were spent.
func RetrySingularPoints(ckt *Circuit, resp *Response, attempts int) (recovered, solves int, err error) {
	return analysis.RetrySingularPoints(ckt, resp, attempts)
}

// ClassifyError buckets a simulation error (singular system, unsupported
// element, invalid netlist, other) for reporting and policy decisions.
func ClassifyError(err error) analysis.ErrorClass { return analysis.ClassifyError(err) }

// ReferenceRegion derives Ω_reference for a circuit (§2, Definition 2).
func ReferenceRegion(ckt *Circuit) (Region, error) {
	return analysis.ReferenceRegion(ckt, analysis.SweepSpec{})
}

// EvaluateCircuit measures detectability and ω-detectability of each fault
// on a fixed circuit (the §2 analysis). New code should prefer
// EvaluateCircuitContext, which supports cancellation; this variant runs
// to completion.
func EvaluateCircuit(ckt *Circuit, faults FaultList, opts Options) (*Row, error) {
	return detect.EvaluateCircuit(ckt, faults, opts)
}

// EvaluateCircuitContext is EvaluateCircuit with cancellation: ctx is
// checked between fault cells, so an in-flight evaluation stops within one
// cell boundary of ctx being cancelled and returns ctx's error.
func EvaluateCircuitContext(ctx context.Context, ckt *Circuit, faults FaultList, opts Options) (*Row, error) {
	return detect.EvaluateCircuitContext(ctx, ckt, faults, opts)
}

// ApplyDFT replaces the named opamps by configurable opamps chained from
// the primary input (§3.1). Passing every opamp is the systematic
// replacement of the paper; a subset yields a partial DFT.
func ApplyDFT(ckt *Circuit, chain []string) (*Modified, error) {
	return dft.Apply(ckt, chain)
}

// ApplyDFTAll applies the DFT to every opamp in netlist order.
func ApplyDFTAll(ckt *Circuit) (*Modified, error) { return dft.ApplyAll(ckt) }

// BuildMatrix fault-simulates every configuration into the fault
// detectability matrix (§3.2). New code should prefer BuildMatrixContext,
// which supports cancellation; this variant runs to completion.
func BuildMatrix(m *Modified, faults FaultList, opts Options) (*Matrix, error) {
	return detect.BuildMatrix(m, faults, opts)
}

// BuildMatrixContext is BuildMatrix with cancellation: ctx is checked
// between (configuration, fault) cells and between the per-configuration
// nominal pre-sweeps, so an in-flight build stops within one cell boundary
// of ctx being cancelled and returns ctx's error.
func BuildMatrixContext(ctx context.Context, m *Modified, faults FaultList, opts Options) (*Matrix, error) {
	return detect.BuildMatrixContext(ctx, m, faults, opts)
}

// Optimize runs the §4 ordered-requirement optimization over a matrix.
// New code should prefer OptimizeContext, which supports cancellation;
// this variant runs to completion.
func Optimize(mx *Matrix, chain []string, cost CostFunction) (*Result, error) {
	return core.Optimize(mx, chain, cost)
}

// OptimizeContext is Optimize with cancellation: the Petrick expansion
// polls ctx between clauses and product-term batches, so a
// combinatorially exploding optimization stops promptly (returning ctx's
// error) when the caller cancels.
func OptimizeContext(ctx context.Context, mx *Matrix, chain []string, cost CostFunction) (*Result, error) {
	return core.OptimizeContext(ctx, mx, chain, cost)
}

// OptimizeOpamps runs the §4.3 partial-DFT (configurable-opamp count)
// optimization.
func OptimizeOpamps(mx *Matrix, chain []string) (*OpampResult, error) {
	return core.OptimizeOpamps(mx, chain)
}

// BruteForce evaluates the all-configurations baseline (§3.2).
func BruteForce(mx *Matrix) *Baseline { return core.BruteForce(mx) }

// GreedySolution runs the greedy set-cover baseline.
func GreedySolution(mx *Matrix, chain []string) (*Candidate, error) {
	return core.GreedySolution(mx, chain)
}

// ExactMinSolution runs the exact branch-and-bound minimum cover.
func ExactMinSolution(mx *Matrix, chain []string) (*Candidate, error) {
	return core.ExactMinSolution(mx, chain)
}
