package analogdft

import (
	"context"
	"fmt"
	"io"

	"analogdft/internal/analysis"
	"analogdft/internal/core"
	"analogdft/internal/detect"
	"analogdft/internal/obs"
	"analogdft/internal/paperdata"
	"analogdft/internal/report"
)

// PaperOptions are the calibrated testability-evaluation settings for the
// paper experiment on the built-in biquad: the paper's tolerance ε = 10%,
// a −40 dB measurement floor, and Ω_reference pinned to the biquad's
// measurable passband [100 Hz, 5.6 kHz] (f0/100 up to the onset of the
// resonance peak). With these settings the functional configuration
// detects exactly {fR1, fR4} — the paper's 25% initial fault coverage —
// while the multi-configuration DFT reaches 100%.
//
// DESIGN.md §2 documents the calibration: the paper does not publish its
// component values or measurement floor, so the region is the one free
// parameter fitted to reproduce the §2 result; everything downstream is
// measured, not fitted.
func PaperOptions() Options {
	return Options{
		Eps:       0.10,
		MeasFloor: 0.01,
		Region:    Region{LoHz: 100, HiHz: 5600},
		Points:    241,
	}
}

// PaperFaultFraction is the paper's soft-fault size: 20% deviations.
const PaperFaultFraction = 0.20

// Experiment is a fully executed paper experiment sequence on a circuit:
// initial testability (§2), multi-configuration matrix (§3), configuration
// optimization (§4.1–4.2) and partial-DFT optimization (§4.3).
type Experiment struct {
	// Bench is the circuit under test with its DFT chain.
	Bench *Bench
	// Faults is the fault universe.
	Faults FaultList
	// Opts are the evaluation options used throughout.
	Opts Options
	// Initial is the §2 evaluation of the unmodified circuit (Graph 1).
	Initial *Row
	// Modified is the fully DFT-modified circuit.
	Modified *Modified
	// Matrix is the fault detectability matrix (Figure 5 / Table 2).
	Matrix *Matrix
	// Brute is the all-configurations baseline (Graph 2).
	Brute *Baseline
	// ConfigOpt is the §4.1–4.2 configuration-count optimization.
	ConfigOpt *Result
	// OpampOpt is the §4.3 configurable-opamp optimization.
	OpampOpt *OpampResult
	// Partial is the partial-DFT circuit built from OpampOpt.Chosen.
	Partial *Modified
	// PartialMatrix is the Table 4 matrix of the partial-DFT circuit.
	PartialMatrix *Matrix
}

// Run executes the full experiment sequence on a bench with the given
// fault fraction and options.
func Run(bench *Bench, frac float64, opts Options) (*Experiment, error) {
	if err := bench.Validate(); err != nil {
		return nil, err
	}
	_, span := obs.Start(context.Background(), "experiment.run")
	span.SetTag("circuit", bench.Circuit.Name)
	defer span.End()
	e := &Experiment{
		Bench:  bench,
		Faults: DeviationFaults(bench.Circuit, frac),
		Opts:   opts,
	}
	var err error
	if e.Initial, err = EvaluateCircuit(bench.Circuit, e.Faults, opts); err != nil {
		return nil, fmt.Errorf("initial evaluation: %w", err)
	}
	if e.Modified, err = ApplyDFT(bench.Circuit, bench.Chain); err != nil {
		return nil, err
	}
	if e.Matrix, err = BuildMatrix(e.Modified, e.Faults, opts); err != nil {
		return nil, fmt.Errorf("matrix construction: %w", err)
	}
	_, optSpan := obs.Start(context.Background(), "experiment.optimize")
	e.Brute = BruteForce(e.Matrix)
	if e.ConfigOpt, err = Optimize(e.Matrix, bench.Chain, ConfigCountCost); err != nil {
		optSpan.End()
		return nil, fmt.Errorf("configuration optimization: %w", err)
	}
	if e.OpampOpt, err = OptimizeOpamps(e.Matrix, bench.Chain); err != nil {
		optSpan.End()
		return nil, fmt.Errorf("opamp optimization: %w", err)
	}
	optSpan.End()
	// Build the partial-DFT circuit and its Table 4 matrix. An empty
	// chosen set means the functional configuration already covers
	// everything; the partial matrix degenerates to row C0 of the full
	// matrix and is left nil.
	if len(e.OpampOpt.Chosen) > 0 {
		if e.Partial, err = e.Modified.SubChain(e.OpampOpt.Chosen); err != nil {
			return nil, err
		}
		popts := opts
		// The partial chain's all-follower configuration is not the
		// transparent identity unless every opamp is in the chain; keep it.
		popts.IncludeTransparent = len(e.OpampOpt.Chosen) < len(e.Modified.AllOpamps)
		if e.PartialMatrix, err = BuildMatrix(e.Partial, e.Faults, popts); err != nil {
			return nil, fmt.Errorf("partial matrix: %w", err)
		}
	}
	return e, nil
}

// RunPaperExperiment runs the complete paper sequence on the built-in
// biquadratic filter with the calibrated PaperOptions.
func RunPaperExperiment() (*Experiment, error) {
	return Run(PaperBiquad(), PaperFaultFraction, PaperOptions())
}

// labelName renders configuration row i of a matrix for expressions.
func labelName(mx *Matrix) func(int) string {
	return func(i int) string {
		if i >= 0 && i < len(mx.Configs) {
			return mx.Configs[i].Label()
		}
		return fmt.Sprintf("C?%d", i)
	}
}

// Report writes the full experiment report — every table and graph of the
// paper regenerated from this run — to w.
func (e *Experiment) Report(w io.Writer) error {
	p := func(format string, args ...interface{}) { fmt.Fprintf(w, format, args...) }
	faultIDs := e.Faults.IDs()

	p("%s\n", report.Rule("Multi-configuration DFT optimization — "+e.Bench.Circuit.Name))
	p("%s\n", e.Bench.Description)
	p("fault universe: %d soft faults (+%.0f%% deviations); ε = %.0f%%; Ω_reference = %s\n\n",
		len(e.Faults), 100*PaperFaultFraction, 100*e.Opts.Eps, e.Initial.Region)

	p("%s\n", report.Rule("Table 1: configuration table"))
	p("%s\n", report.ConfigurationTable(e.Modified.N()))

	p("%s\n", report.Rule("Graph 1: ω-detectability of the initial circuit"))
	initVals := make([]float64, len(e.Initial.Evals))
	for i, ev := range e.Initial.Evals {
		initVals[i] = ev.OmegaDet
	}
	p("%s\n", report.Graph("initial circuit (no DFT)", faultIDs,
		[]report.Series{{Name: "initial", Values: initVals, Mark: '█'}}, 50))
	p("%s\n\n", report.CoverageSummary("initial circuit", e.Initial.FaultCoverage(), e.Initial.AvgOmegaDet(), 1))

	p("%s\n", report.Rule("Figure 5: fault detectability matrix"))
	p("%s\n", report.DetMatrixTable(e.Matrix))

	p("%s\n", report.Rule("Table 2: ω-detectability table"))
	p("%s\n", report.OmegaTable(e.Matrix, nil))

	p("%s\n", report.Rule("Graph 2: initial vs DFT-modified (best case)"))
	p("%s\n", report.Graph("testability improvement", faultIDs, []report.Series{
		{Name: "initial", Values: initVals, Mark: '█'},
		{Name: "DFT", Values: e.Matrix.BestOmega(nil), Mark: '░'},
	}, 50))
	p("%s\n", report.CoverageSummary("DFT-modified (brute force)", e.Brute.Coverage, e.Brute.AvgOmegaDet, e.Brute.NumConfigs))

	p("\n%s\n", report.Rule("§4.1: fundamental requirement"))
	name := labelName(e.Matrix)
	p("ξ       = %s\n", e.ConfigOpt.Expr.Format(name))
	ess := "none"
	if len(e.ConfigOpt.EssentialRows) > 0 {
		ess = ""
		for i, r := range e.ConfigOpt.EssentialRows {
			if i > 0 {
				ess += ", "
			}
			ess += name(r)
		}
	}
	p("essential configurations: %s\n", ess)
	p("ξ_compl = %s\n", e.ConfigOpt.Reduced.Format(name))
	p("ξ (SOP) = %s\n", e.ConfigOpt.SOP.Format(name))
	if len(e.ConfigOpt.Undetectable) > 0 {
		p("undetectable faults: %v\n", e.ConfigOpt.Undetectable)
	}
	p("maximum fault coverage: %.1f%%\n\n", 100*e.ConfigOpt.MaxCoverage)

	p("%s\n", report.Rule("§4.2: configuration-count optimization"))
	for _, c := range e.ConfigOpt.Candidates {
		p("  candidate %s\n", c.String())
	}
	p("2nd-order requirement: %s\n", e.ConfigOpt.CostName)
	p("3rd-order tie-break:   maximum ⟨ω-det⟩\n")
	p("optimal set: %s\n\n", e.ConfigOpt.Best.String())

	p("%s\n", report.Rule("Graph 3: optimized DFT"))
	p("%s\n", report.Graph("no DFT vs brute force vs optimized", faultIDs, []report.Series{
		{Name: "none", Values: initVals, Mark: '█'},
		{Name: "brute", Values: e.Matrix.BestOmega(nil), Mark: '░'},
		{Name: "opt", Values: e.Matrix.BestOmega(e.ConfigOpt.Best.Rows), Mark: '▒'},
	}, 50))

	p("%s\n", report.Rule("§4.3: configurable-opamp optimization"))
	p("Table 3 mapping (configuration → follower opamps):\n")
	for _, cfg := range e.Matrix.Configs {
		p("  %-4s %v\n", cfg.Label(), core.FollowerOpampsOf(cfg, e.Modified.Chain))
	}
	opName := func(i int) string {
		if i < len(e.Modified.Chain) {
			return e.Modified.Chain[i]
		}
		return fmt.Sprintf("OP?%d", i)
	}
	p("ξ* = %s\n", e.OpampOpt.XiStar.Format(opName))
	p("minimal configurable-opamp sets: %v\n", e.OpampOpt.OpampSets)
	p("chosen: %v → usable configurations %v\n", e.OpampOpt.Chosen, e.OpampOpt.UsableLabels)
	p("%s\n\n", report.CoverageSummary("partial DFT", e.OpampOpt.Coverage, e.OpampOpt.AvgOmegaDet, len(e.OpampOpt.UsableRows)))

	if e.PartialMatrix != nil {
		p("%s\n", report.Rule("Table 4: partial-DFT ω-detectability"))
		vectors := make([]string, e.PartialMatrix.NumConfigs())
		for i, cfg := range e.PartialMatrix.Configs {
			vectors[i] = e.Partial.MaskVector(cfg)
		}
		p("%s\n", report.OmegaTable(e.PartialMatrix, vectors))

		p("%s\n", report.Rule("Graph 4: full vs partial DFT"))
		p("%s\n", report.Graph("full vs partial DFT (best case)", faultIDs, []report.Series{
			{Name: "full", Values: e.Matrix.BestOmega(nil), Mark: '█'},
			{Name: "partial", Values: e.PartialMatrix.BestOmega(nil), Mark: '░'},
		}, 50))
	}

	p("%s\n", report.Rule("Headline summary"))
	p("%s\n", report.CoverageSummary("initial circuit", e.Initial.FaultCoverage(), e.Initial.AvgOmegaDet(), 1))
	p("%s\n", report.CoverageSummary("brute-force DFT", e.Brute.Coverage, e.Brute.AvgOmegaDet, e.Brute.NumConfigs))
	p("%s\n", report.CoverageSummary("optimized configurations", e.ConfigOpt.Best.Coverage, e.ConfigOpt.Best.AvgOmegaDet, e.ConfigOpt.Best.NumConfigs))
	p("%s\n", report.CoverageSummary("partial DFT", e.OpampOpt.Coverage, e.OpampOpt.AvgOmegaDet, len(e.OpampOpt.UsableRows)))
	return nil
}

// Published is the §4 optimization replayed on the matrices printed in
// the paper itself; every derived quantity must match the paper exactly.
type Published struct {
	// Matrix wraps Figure 5 + Table 2.
	Matrix *Matrix
	// ConfigOpt is the §4.1–4.2 result (best = {C2, C5}, 32.5%).
	ConfigOpt *Result
	// OpampOpt is the §4.3 result (OP1·OP2, 52.5%).
	OpampOpt *OpampResult
	// Brute is the brute-force baseline (68.25%, printed 68.3%).
	Brute *Baseline
}

// RunPublished replays the optimization pipeline on the paper's published
// data.
func RunPublished() (*Published, error) {
	mx := paperdata.Matrix()
	cfg, err := core.Optimize(mx, paperdata.OpampNames, core.ConfigCountCost)
	if err != nil {
		return nil, err
	}
	op, err := core.OptimizeOpamps(mx, paperdata.OpampNames)
	if err != nil {
		return nil, err
	}
	return &Published{
		Matrix:    mx,
		ConfigOpt: cfg,
		OpampOpt:  op,
		Brute:     core.BruteForce(mx),
	}, nil
}

// Report writes the published-data reproduction (tables, expressions and
// headline numbers, annotated with the paper's expected values) to w.
func (p *Published) Report(w io.Writer) error {
	f := func(format string, args ...interface{}) { fmt.Fprintf(w, format, args...) }
	name := labelName(p.Matrix)

	f("%s\n", report.Rule("Published data reproduction (Figure 5 / Table 2)"))
	f("%s\n", report.DetMatrixTable(p.Matrix))
	f("%s\n", report.OmegaTable(p.Matrix, nil))
	f("ξ (SOP)  = %s\n", p.ConfigOpt.SOP.Format(name))
	f("essential = %v (paper: %s)\n", p.ConfigOpt.EssentialRows, paperdata.EssentialConfig)
	f("optimal configuration set: %v  ⟨ω-det⟩ = %.4g%% (paper: %v, %.4g%%)\n",
		p.ConfigOpt.Best.Labels, p.ConfigOpt.Best.AvgOmegaDet,
		paperdata.OptimalConfigSet, paperdata.OptimizedAvgOmegaDet)
	f("brute force ⟨ω-det⟩ = %.4g%% (paper: %.4g%%)\n", p.Brute.AvgOmegaDet, paperdata.BruteForceAvgOmegaDet)
	f("partial DFT opamps: %v usable %v ⟨ω-det⟩ = %.4g%% (paper: %v, %.4g%%)\n",
		p.OpampOpt.Chosen, p.OpampOpt.UsableLabels, p.OpampOpt.AvgOmegaDet,
		paperdata.OptimalOpampSet, paperdata.PartialDFTAvgOmegaDet)
	return nil
}

// PublishedMatrix returns the Figure 5 / Table 2 matrix from the paper.
func PublishedMatrix() *Matrix { return paperdata.Matrix() }

// PublishedPartialMatrix returns the Table 4 matrix from the paper.
func PublishedPartialMatrix() *Matrix { return paperdata.PartialMatrix() }

// PaperOpampNames is the opamp chain of the paper's biquad.
func PaperOpampNames() []string { return append([]string(nil), paperdata.OpampNames...) }

// Compile-time guards that re-exported helpers keep their signatures.
var (
	_ = detect.Options{}
	_ = analysis.Region{}
)
