package analogdft

// Extension benchmarks (A4–A7 in DESIGN.md): diagnosis dictionaries,
// DFT penalty measurement, tolerance-derived ε and the transparent-
// configuration opamp test.

import (
	"testing"
)

// A4 — diagnosis: dictionary construction and resolution over all
// configurations vs the functional configuration alone.
func BenchmarkDiagnosisDictionary(b *testing.B) {
	bench := PaperBiquad()
	faults := DeviationFaults(bench.Circuit, PaperFaultFraction)
	region := Region{LoHz: 100, HiHz: 5600}
	mod, err := ApplyDFT(bench.Circuit, bench.Chain)
	if err != nil {
		b.Fatal(err)
	}
	var resAll, resC0 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dAll, err := BuildDictionary(mod, []int{0, 1, 2, 3, 4, 5, 6}, faults, region,
			DiagnosisOptions{Points: 80, Bands: 4})
		if err != nil {
			b.Fatal(err)
		}
		dC0, err := BuildDictionary(mod, []int{0}, faults, region,
			DiagnosisOptions{Points: 80, Bands: 4})
		if err != nil {
			b.Fatal(err)
		}
		resAll, resC0 = dAll.Resolution(), dC0.Resolution()
	}
	b.ReportMetric(resAll, "resolution-all")
	b.ReportMetric(resC0, "resolution-C0")
}

// A5 — penalty: full vs partial DFT degradation and area overhead.
func BenchmarkPenaltyComparison(b *testing.B) {
	bench := WithSinglePoleOpamps(PaperBiquad(), 1e5, 10)
	region := Region{LoHz: 100, HiHz: 1e6}
	var cmp *PenaltyComparison
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = ComparePenalty(bench.Circuit, bench.Chain, []string{"OP1", "OP2"},
			DefaultSwitchModel, DefaultAreaModel, region, 61)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*cmp.FullDegradation, "full-deg%")
	b.ReportMetric(100*cmp.PartialDegradation, "partial-deg%")
	b.ReportMetric(cmp.PartialAreaOverhead, "partial-area")
}

// A6 — tolerance: Monte Carlo envelope and derived ε.
func BenchmarkToleranceDerivedEps(b *testing.B) {
	bench := PaperBiquad()
	region := Region{LoHz: 100, HiHz: 5600}
	var eps float64
	for i := 0; i < b.N; i++ {
		var err error
		eps, err = DeriveToleranceEps(bench.Circuit, region, 31,
			ToleranceSpec{PassiveTol: 0.02, Samples: 50, Seed: 1}, 1.2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*eps, "derived-ε%")
}

// A7 — transparent configuration: opamp-internal fault coverage (and the
// passive-fault negative control).
func BenchmarkTransparentOpampTest(b *testing.B) {
	var res *OpampTest
	for i := 0; i < b.N; i++ {
		var err error
		res, err = RunOpampTest(PaperBiquad(), 1e5, 10, 0.01, 0.01, PaperFaultFraction,
			Options{Points: 81})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Transparent.FaultCoverage(), "opamp-FC%")
	b.ReportMetric(100*res.PassiveInTransparent.FaultCoverage(), "passive-FC%")
}

// A8 — sensitivity: full-circuit sensitivity analysis (finite difference,
// 2 sweeps per component).
func BenchmarkSensitivityAnalysis(b *testing.B) {
	bench := PaperBiquad()
	grid := Grid(Region{LoHz: 100, HiHz: 5600}, 61)
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeSensitivity(bench.Circuit, grid, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// A9 — characterization: rational model fit of the paper biquad.
func BenchmarkTransferFunctionFit(b *testing.B) {
	bench := PaperBiquad()
	region := Region{LoHz: 100, HiHz: 1e6}
	var r *Rational
	for i := 0; i < b.N; i++ {
		var err error
		r, err = FitTransferFunction(bench.Circuit, region, 81, 4, 1e-3)
		if err != nil {
			b.Fatal(err)
		}
	}
	f0, q, ok := DominantPolePair(r.Poles())
	if !ok {
		b.Fatal("no pole pair")
	}
	b.ReportMetric(f0, "f0-Hz")
	b.ReportMetric(q, "Q")
}

// A10 — test-program scheduling: toggle count of the optimized ordering
// vs the naive one for the full 7-configuration program.
func BenchmarkTestScheduling(b *testing.B) {
	var items []TestItem
	for i := 0; i < 7; i++ {
		items = append(items, TestItem{
			Config: Configuration{Index: i, N: 3},
			Freqs:  []float64{1e3, 5e3},
		})
	}
	start := Configuration{Index: 0, N: 3}
	var prog *TestProgram
	for i := 0; i < b.N; i++ {
		var err error
		prog, err = ScheduleTests(items, start)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(prog.TotalToggles()), "toggles")
	b.ReportMetric(float64(NaiveToggleCount(items, start)), "naive-toggles")
}

// A11 — double faults: pair coverage and masking under the optimized
// configuration set.
func BenchmarkDoubleFaultCoverage(b *testing.B) {
	e := cachedExperimentB(b)
	var cfgIdxs []int
	for _, r := range e.ConfigOpt.Best.Rows {
		cfgIdxs = append(cfgIdxs, e.Matrix.Configs[r].Index)
	}
	var res *MultiFaultResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = EvaluatePairs(e.Modified, cfgIdxs, e.Faults, e.Matrix.Region,
			MultiFaultOptions{Points: 61, MeasFloor: 0.01})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Coverage, "pair-FC%")
	b.ReportMetric(float64(res.MaskedCount), "masked")
}

// A12 — ablation: shared Ω_reference vs per-configuration regions on the
// paper biquad.
func BenchmarkRegionSemanticsAblation(b *testing.B) {
	bench := PaperBiquad()
	faults := DeviationFaults(bench.Circuit, PaperFaultFraction)
	mod, err := ApplyDFT(bench.Circuit, bench.Chain)
	if err != nil {
		b.Fatal(err)
	}
	shared := PaperOptions()
	shared.Points = 61
	perCfg := shared
	perCfg.PerConfigRegion = true
	var fcShared, fcPer float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mxS, err := BuildMatrix(mod, faults, shared)
		if err != nil {
			b.Fatal(err)
		}
		mxP, err := BuildMatrix(mod, faults, perCfg)
		if err != nil {
			b.Fatal(err)
		}
		fcShared, fcPer = mxS.FaultCoverage(), mxP.FaultCoverage()
	}
	b.ReportMetric(100*fcShared, "shared-FC%")
	b.ReportMetric(100*fcPer, "percfg-FC%")
}
