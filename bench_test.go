package analogdft

// Benchmark harness: one benchmark per table and figure of the paper
// (E1–E12 in DESIGN.md) plus the ablation and scaling studies (A1–A3).
// Each benchmark drives the same code path as cmd/paperrepro; key derived
// quantities are attached as custom metrics so `go test -bench` output
// records the reproduced numbers next to the timings.

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"analogdft/internal/analysis"
	"analogdft/internal/boolexpr"
	"analogdft/internal/core"
	"analogdft/internal/detect"
	"analogdft/internal/fault"
	"analogdft/internal/paperdata"
	"analogdft/internal/report"
	"analogdft/internal/testgen"
)

// benchExperiment caches the expensive end-to-end run for the
// rendering-only benchmarks.
var (
	benchOnce sync.Once
	benchExp  *Experiment
	benchErr  error
)

func cachedExperimentB(b *testing.B) *Experiment {
	b.Helper()
	benchOnce.Do(func() { benchExp, benchErr = RunPaperExperiment() })
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchExp
}

// E1 — Graph 1: ω-detectability of the initial (non-DFT) biquad.
func BenchmarkGraph1InitialOmegaDet(b *testing.B) {
	bench := PaperBiquad()
	faults := DeviationFaults(bench.Circuit, PaperFaultFraction)
	opts := PaperOptions()
	var row *Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		row, err = EvaluateCircuit(bench.Circuit, faults, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*row.FaultCoverage(), "FC%")
	b.ReportMetric(row.AvgOmegaDet(), "avg-ωdet%")
}

// E2 — Table 1: the configuration table for three configurable opamps.
func BenchmarkTable1ConfigurationTable(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = report.ConfigurationTable(3)
	}
	if len(s) == 0 {
		b.Fatal("empty table")
	}
}

// E3 — Figure 5: full fault detectability matrix construction (7
// configurations × 8 faults, 241-point sweeps).
func BenchmarkFigure5DetectabilityMatrix(b *testing.B) {
	bench := PaperBiquad()
	faults := DeviationFaults(bench.Circuit, PaperFaultFraction)
	opts := PaperOptions()
	mod, err := ApplyDFT(bench.Circuit, bench.Chain)
	if err != nil {
		b.Fatal(err)
	}
	var mx *Matrix
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mx, err = BuildMatrix(mod, faults, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*mx.FaultCoverage(), "FC%")
}

// E4 — Table 2: ω-detectability table rendering from the measured matrix.
func BenchmarkTable2OmegaDetTable(b *testing.B) {
	e := cachedExperimentB(b)
	b.ResetTimer()
	var s string
	for i := 0; i < b.N; i++ {
		s = report.OmegaTable(e.Matrix, nil)
	}
	if len(s) == 0 {
		b.Fatal("empty table")
	}
}

// E5 — Graph 2: initial vs DFT best-case ω-detectability.
func BenchmarkGraph2DFTImprovement(b *testing.B) {
	e := cachedExperimentB(b)
	initVals := make([]float64, len(e.Initial.Evals))
	for i, ev := range e.Initial.Evals {
		initVals[i] = ev.OmegaDet
	}
	b.ResetTimer()
	var s string
	for i := 0; i < b.N; i++ {
		best := e.Matrix.BestOmega(nil)
		s = report.Graph("graph 2", e.Faults.IDs(), []report.Series{
			{Name: "initial", Values: initVals},
			{Name: "DFT", Values: best},
		}, 50)
	}
	if len(s) == 0 {
		b.Fatal("empty graph")
	}
	b.ReportMetric(e.Brute.AvgOmegaDet, "dft-ωdet%")
	b.ReportMetric(e.Initial.AvgOmegaDet(), "init-ωdet%")
}

// E6 — §4.1: ξ expression derivation (essential extraction + Petrick) on
// the published Figure 5 matrix.
func BenchmarkXiExpressionDerivation(b *testing.B) {
	det := paperdata.Fig5Det
	var nTerms int
	for i := 0; i < b.N; i++ {
		expr, _, err := boolexpr.FromMatrix(det, paperdata.FaultIDs)
		if err != nil {
			b.Fatal(err)
		}
		ess := expr.Essential()
		sop, err := expr.ReduceBy(ess).Petrick(0)
		if err != nil {
			b.Fatal(err)
		}
		nTerms = len(sop.WithRequired(ess).Terms)
	}
	b.ReportMetric(float64(nTerms), "sop-terms")
}

// E7 — §4.2: configuration-count optimization on the published matrix.
func BenchmarkConfigCountOptimization(b *testing.B) {
	mx := paperdata.Matrix()
	var res *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.Optimize(mx, paperdata.OpampNames, core.ConfigCountCost)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Best.NumConfigs), "configs")
	b.ReportMetric(res.Best.AvgOmegaDet, "ωdet%")
}

// E8 — Graph 3: optimized-set ω-detectability rendering.
func BenchmarkGraph3OptimizedOmegaDet(b *testing.B) {
	e := cachedExperimentB(b)
	initVals := make([]float64, len(e.Initial.Evals))
	for i, ev := range e.Initial.Evals {
		initVals[i] = ev.OmegaDet
	}
	b.ResetTimer()
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Graph("graph 3", e.Faults.IDs(), []report.Series{
			{Name: "none", Values: initVals},
			{Name: "brute", Values: e.Matrix.BestOmega(nil)},
			{Name: "opt", Values: e.Matrix.BestOmega(e.ConfigOpt.Best.Rows)},
		}, 50)
	}
	if len(s) == 0 {
		b.Fatal("empty graph")
	}
	b.ReportMetric(e.Matrix.AvgBestOmega(e.ConfigOpt.Best.Rows), "opt-ωdet%")
}

// E9 — §4.3 / Table 3: configurable-opamp optimization (ξ* mapping) on the
// published matrix.
func BenchmarkOpampCountOptimization(b *testing.B) {
	mx := paperdata.Matrix()
	var res *core.OpampResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.OptimizeOpamps(mx, paperdata.OpampNames)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Chosen)), "opamps")
	b.ReportMetric(res.AvgOmegaDet, "ωdet%")
}

// E10 — Table 4: partial-DFT matrix construction (4 configurations).
func BenchmarkTable4PartialDFTOmegaDet(b *testing.B) {
	e := cachedExperimentB(b)
	if e.Partial == nil {
		b.Fatal("no partial DFT")
	}
	opts := e.Opts
	opts.IncludeTransparent = true
	var mx *Matrix
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		mx, err = BuildMatrix(e.Partial, e.Faults, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*mx.FaultCoverage(), "FC%")
}

// E11 — Graph 4: full vs partial DFT rendering.
func BenchmarkGraph4FullVsPartialDFT(b *testing.B) {
	e := cachedExperimentB(b)
	b.ResetTimer()
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Graph("graph 4", e.Faults.IDs(), []report.Series{
			{Name: "full", Values: e.Matrix.BestOmega(nil)},
			{Name: "partial", Values: e.PartialMatrix.BestOmega(nil)},
		}, 50)
	}
	if len(s) == 0 {
		b.Fatal("empty graph")
	}
	b.ReportMetric(e.PartialMatrix.AvgBestOmega(nil), "partial-ωdet%")
}

// E12 — headline summary: the complete published-data replay (§4 end to
// end) including report rendering.
func BenchmarkHeadlineSummary(b *testing.B) {
	var pub *Published
	for i := 0; i < b.N; i++ {
		var err error
		pub, err = RunPublished()
		if err != nil {
			b.Fatal(err)
		}
		if err := pub.Report(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pub.Brute.AvgOmegaDet, "brute-ωdet%")
	b.ReportMetric(pub.ConfigOpt.Best.AvgOmegaDet, "opt-ωdet%")
	b.ReportMetric(pub.OpampOpt.AvgOmegaDet, "partial-ωdet%")
}

// A1 — ablation: exact branch-and-bound vs greedy cover on the measured
// paper matrix.
func BenchmarkAblationExactVsGreedy(b *testing.B) {
	e := cachedExperimentB(b)
	b.Run("exact", func(b *testing.B) {
		var c *Candidate
		for i := 0; i < b.N; i++ {
			var err error
			c, err = ExactMinSolution(e.Matrix, e.Bench.Chain)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(c.NumConfigs), "configs")
	})
	b.Run("greedy", func(b *testing.B) {
		var c *Candidate
		for i := 0; i < b.N; i++ {
			var err error
			c, err = GreedySolution(e.Matrix, e.Bench.Chain)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(c.NumConfigs), "configs")
	})
	b.Run("petrick", func(b *testing.B) {
		var res *Result
		for i := 0; i < b.N; i++ {
			var err error
			res, err = Optimize(e.Matrix, e.Bench.Chain, ConfigCountCost)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(res.Best.NumConfigs), "configs")
	})
}

// A2 — scaling of matrix construction and optimization with the number of
// configurable opamps (2^n configurations).
func BenchmarkScalingOpampCount(b *testing.B) {
	for n := 2; n <= 5; n++ {
		b.Run(fmt.Sprintf("opamps=%d", n), func(b *testing.B) {
			bench, err := MultiStageLowpass(n, 10e3)
			if err != nil {
				b.Fatal(err)
			}
			faults := DeviationFaults(bench.Circuit, 0.2)
			opts := Options{Eps: 0.10, Points: 61,
				Region: analysis.Region{LoHz: 100, HiHz: 1e6}}
			mod, err := ApplyDFT(bench.Circuit, bench.Chain)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mx, err := BuildMatrix(mod, faults, opts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Optimize(mx, bench.Chain, ConfigCountCost); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// A3 — extension: minimal test-frequency selection for the optimized
// configuration set of the paper biquad.
func BenchmarkTestFrequencySelection(b *testing.B) {
	e := cachedExperimentB(b)
	var idxs []int
	for _, r := range e.ConfigOpt.Best.Rows {
		idxs = append(idxs, e.Matrix.Configs[r].Index)
	}
	var plans []*testgen.Plan
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		plans, err = testgen.PlanConfigurations(e.Modified, idxs, e.Faults, e.Matrix.Region,
			testgen.Options{Points: 121})
		if err != nil {
			b.Fatal(err)
		}
	}
	total := 0
	for _, p := range plans {
		total += p.NumFreqs()
	}
	b.ReportMetric(float64(total), "test-freqs")
}

// Micro-benchmarks for the substrate layers, used when profiling the
// matrix construction hot path.

func BenchmarkMNASolveBiquad(b *testing.B) {
	bench := PaperBiquad()
	resp, err := Sweep(bench.Circuit, SweepSpec{StartHz: 1e3, StopHz: 1e4, Points: 2})
	if err != nil || !resp.AllValid() {
		b.Fatalf("warmup: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sweep(bench.Circuit, SweepSpec{StartHz: 1e3, StopHz: 1e4, Points: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFaultInjection(b *testing.B) {
	bench := PaperBiquad()
	f := fault.Fault{ID: "fR1", Component: "R1", Kind: fault.Deviation, Factor: 1.2}
	for i := 0; i < b.N; i++ {
		if _, err := f.Apply(bench.Circuit); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectParallelVsSerial(b *testing.B) {
	bench := PaperBiquad()
	faults := DeviationFaults(bench.Circuit, 0.2)
	mod, err := ApplyDFT(bench.Circuit, bench.Chain)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := PaperOptions()
			opts.Points = 61
			opts.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := detect.BuildMatrix(mod, faults, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildMatrix compares the fault-simulation engines on the full
// paper matrix (8 configurations × ~10 faults) under both matrix
// layouts: the incremental engine patches each fault into a reusable
// per-configuration system, the low-rank engine solves each rank-1 fault
// via Sherman–Morrison against nominal factorizations cached per
// (configuration, ω) grid point, and the naive engine clones the circuit
// and rebuilds the system per cell. The layout sub-benchmarks share the
// engine sub-benchmark's name grammar ("key=value"), so benchdiff can
// both track each combination over time and cross-compare dense against
// sparse within one snapshot (-dim layout=dense:sparse).
func BenchmarkBuildMatrix(b *testing.B) {
	bench := PaperBiquad()
	faults := DeviationFaults(bench.Circuit, 0.2)
	mod, err := ApplyDFT(bench.Circuit, bench.Chain)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []detect.EngineMode{detect.EngineIncremental, detect.EngineLowRank, detect.EngineNaive} {
		for _, layout := range []Layout{LayoutDense, LayoutSparse} {
			b.Run(fmt.Sprintf("engine=%s/layout=%s", mode, layout), func(b *testing.B) {
				opts := PaperOptions()
				opts.Points = 61
				opts.Workers = 1
				opts.Engine = mode
				opts.Layout = layout
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := detect.BuildMatrix(mod, faults, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSweepGrid measures a reused engine sweeping the paper biquad
// over the calibrated Ω_reference grid: the steady-state cost of one
// matrix cell with every buffer and stamp already in place.
func BenchmarkSweepGrid(b *testing.B) {
	bench := PaperBiquad()
	eng, err := analysis.NewEngine(bench.Circuit)
	if err != nil {
		b.Fatal(err)
	}
	grid := analysis.SweepSpec{StartHz: 100, StopHz: 5600, Points: 241}.Grid()
	if _, err := eng.SweepGrid(grid); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SweepGrid(grid); err != nil {
			b.Fatal(err)
		}
	}
}
