package analogdft

import (
	"context"
	"errors"
	"fmt"
)

// ErrNoChain is returned by Session methods that need a DFT chain when the
// session's bench has none.
var ErrNoChain = errors.New("analogdft: bench has no DFT chain")

// Session bundles the parameter train the DFT flows keep passing around —
// a bench, a fault universe, an optional pinned Ω_reference and the
// evaluation Options — behind one handle with context-aware methods. It
// replaces call chains like
//
//	mod, _ := analogdft.ApplyDFT(bench.Circuit, bench.Chain)
//	mx, _ := analogdft.BuildMatrix(mod, faults, opts)
//	res, _ := analogdft.Optimize(mx, bench.Chain, cost)
//
// with
//
//	s := analogdft.NewSession(bench, faults, opts)
//	res, _ := s.Optimize(ctx, cost)
//
// The session caches the DFT-modified circuit and the detectability matrix
// it builds, so Matrix followed by Optimize simulates only once. Options
// are normalized at construction, making s.Options the one canonical
// value every method (and any cache key derived from the session) sees.
//
// A Session is not safe for concurrent use; give each goroutine (or each
// server job) its own.
type Session struct {
	// Bench is the circuit under test with its DFT chain.
	Bench *Bench
	// Faults is the fault universe to evaluate.
	Faults FaultList
	// Region optionally pins Ω_reference for every method; zero derives
	// it from the circuit. It is copied into Options.Region when Options
	// does not pin one itself.
	Region Region
	// Options is the normalized evaluation parameter set.
	Options Options

	mod *Modified
	mx  *Matrix
}

// NewSession builds a session over a bench, normalizing opts (see
// Options.Normalize). The fault list and options are fixed for the
// session's lifetime; mutate the exported fields before the first method
// call only.
func NewSession(bench *Bench, faults FaultList, opts Options) *Session {
	return &Session{Bench: bench, Faults: faults, Options: opts.Normalize()}
}

// opts returns the effective options: the session's options with the
// session-level region pin applied.
func (s *Session) opts() Options {
	o := s.Options
	if o.Region == (Region{}) {
		o.Region = s.Region
	}
	return o
}

// Evaluate measures detectability of the session's faults on the
// unmodified bench circuit (the §2 analysis). ctx cancels between cells.
func (s *Session) Evaluate(ctx context.Context) (*Row, error) {
	return EvaluateCircuitContext(ctx, s.Bench.Circuit, s.Faults, s.opts())
}

// Modified returns the DFT-modified circuit (the bench chain applied),
// building it on first use.
func (s *Session) Modified() (*Modified, error) {
	if s.mod == nil {
		if len(s.Bench.Chain) == 0 {
			return nil, fmt.Errorf("%w: %s", ErrNoChain, s.Bench.Circuit.Name)
		}
		mod, err := ApplyDFT(s.Bench.Circuit, s.Bench.Chain)
		if err != nil {
			return nil, err
		}
		s.mod = mod
	}
	return s.mod, nil
}

// Matrix fault-simulates the detectability matrix over every DFT
// configuration, caching the result: a second call (or a following
// Optimize) does not re-simulate. ctx cancels between cells.
func (s *Session) Matrix(ctx context.Context) (*Matrix, error) {
	if s.mx != nil {
		return s.mx, nil
	}
	mod, err := s.Modified()
	if err != nil {
		return nil, err
	}
	mx, err := BuildMatrixContext(ctx, mod, s.Faults, s.opts())
	if err != nil {
		return nil, err
	}
	s.mx = mx
	return mx, nil
}

// Optimize runs the §4 ordered-requirement optimization over the
// session's matrix (building it first if needed) with the given 2nd-order
// cost; a zero cost selects ConfigCountCost. ctx cancels both the matrix
// build and the Petrick expansion.
func (s *Session) Optimize(ctx context.Context, cost CostFunction) (*Result, error) {
	mx, err := s.Matrix(ctx)
	if err != nil {
		return nil, err
	}
	return OptimizeContext(ctx, mx, s.Bench.Chain, cost)
}
