package analogdft_test

import (
	"fmt"
	"log"

	"analogdft"
)

// ExampleRunPublished replays §4 of the paper on its published matrices.
func ExampleRunPublished() {
	pub, err := analogdft.RunPublished()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("essential rows:", pub.ConfigOpt.EssentialRows)
	fmt.Println("optimal set:   ", pub.ConfigOpt.Best.Labels)
	fmt.Printf("⟨ω-det⟩:        %.1f%%\n", pub.ConfigOpt.Best.AvgOmegaDet)
	fmt.Println("partial DFT:   ", pub.OpampOpt.Chosen)
	// Output:
	// essential rows: [2]
	// optimal set:    [C2 C5]
	// ⟨ω-det⟩:        32.5%
	// partial DFT:    [OP1 OP2]
}

// ExampleOptimize runs the ordered-requirement optimization on the
// published detectability matrix.
func ExampleOptimize() {
	mx := analogdft.PublishedMatrix()
	res, err := analogdft.Optimize(mx, analogdft.PaperOpampNames(), analogdft.ConfigCountCost)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range res.Candidates {
		fmt.Println(c.Labels)
	}
	// Output:
	// [C1 C2]
	// [C2 C5]
}

// ExampleConfiguration shows the configuration-vector conventions.
func ExampleConfiguration() {
	c5 := analogdft.Configuration{Index: 5, N: 3}
	fmt.Println(c5.Label(), c5.Vector(), c5.FollowerCount())
	c7 := analogdft.Configuration{Index: 7, N: 3}
	fmt.Println(c7.Label(), c7.IsTransparent())
	// Output:
	// C5 101 2
	// C7 true
}

// ExampleScheduleTests orders a test program as a Gray walk.
func ExampleScheduleTests() {
	items := []analogdft.TestItem{
		{Config: analogdft.Configuration{Index: 1, N: 3}, Freqs: []float64{1e3}},
		{Config: analogdft.Configuration{Index: 2, N: 3}, Freqs: []float64{1e3}},
		{Config: analogdft.Configuration{Index: 3, N: 3}, Freqs: []float64{1e3}},
	}
	start := analogdft.Configuration{Index: 0, N: 3}
	prog, err := analogdft.ScheduleTests(items, start)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("toggles:", prog.TotalToggles(), "naive:", analogdft.NaiveToggleCount(items, start))
	// Output:
	// toggles: 3 naive: 4
}

// ExampleEstimateBIST budgets the on-chip hardware for the paper's
// optimized two-configuration program.
func ExampleEstimateBIST() {
	two, err := analogdft.EstimateBIST(analogdft.DefaultBISTModel, 3, 2, 6)
	if err != nil {
		log.Fatal(err)
	}
	seven, err := analogdft.EstimateBIST(analogdft.DefaultBISTModel, 3, 7, 21)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2 configurations: %.0f GE\n", two.GateEquivalents)
	fmt.Printf("7 configurations: %.0f GE\n", seven.GateEquivalents)
	// Output:
	// 2 configurations: 486 GE
	// 7 configurations: 666 GE
}

// ExampleEvaluateCircuit measures the paper's §2 initial testability.
func ExampleEvaluateCircuit() {
	bench := analogdft.PaperBiquad()
	faults := analogdft.DeviationFaults(bench.Circuit, 0.20)
	row, err := analogdft.EvaluateCircuit(bench.Circuit, faults, analogdft.PaperOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial fault coverage: %.0f%%\n", 100*row.FaultCoverage())
	for _, e := range row.Evals {
		if e.Detectable {
			fmt.Println("detectable:", e.Fault.ID)
		}
	}
	// Output:
	// initial fault coverage: 25%
	// detectable: fR1
	// detectable: fR4
}

// ExampleModified_AccessBlock exposes an embedded block under test by
// making the surrounding opamps transparent (§1 of the paper).
func ExampleModified_AccessBlock() {
	bench := analogdft.PaperBiquad()
	mod, err := analogdft.ApplyDFT(bench.Circuit, bench.Chain)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := mod.AccessBlock([]string{"OP2"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cfg.Label(), cfg.Vector())
	// Output:
	// C5 101
}
