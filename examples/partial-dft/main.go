// partial-dft demonstrates the §4.3 area-constrained optimization on the
// KHN state-variable filter: find the smallest set of opamps to replace by
// configurable opamps while keeping the maximum fault coverage, then
// generate the per-configuration test-frequency plan for the result.
//
//	go run ./examples/partial-dft
package main

import (
	"fmt"
	"log"

	"analogdft"
	"analogdft/internal/report"
	"analogdft/internal/testgen"
)

func main() {
	bench := analogdft.KHNStateVariable()
	fmt.Printf("circuit: %s\n%s\n\n", bench.Circuit, bench.Description)

	faults := analogdft.DeviationFaults(bench.Circuit, 0.20)
	opts := analogdft.Options{Eps: 0.10, Points: 181}

	mod, err := analogdft.ApplyDFT(bench.Circuit, bench.Chain)
	if err != nil {
		log.Fatal(err)
	}
	mx, err := analogdft.BuildMatrix(mod, faults, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.DetMatrixTable(mx))
	fmt.Println(report.CoverageSummary("all configurations", mx.FaultCoverage(), mx.AvgBestOmega(nil), mx.NumConfigs()))

	// Compare the two 2nd-order cost functions.
	byConfigs, err := analogdft.Optimize(mx, mod.Chain, analogdft.ConfigCountCost)
	if err != nil {
		log.Fatal(err)
	}
	byOpamps, err := analogdft.Optimize(mx, mod.Chain, analogdft.OpampCountCost)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nminimize configurations: %s\n", byConfigs.Best.String())
	fmt.Printf("minimize opamps:         %s\n", byOpamps.Best.String())

	// Partial DFT: silicon-area view.
	op, err := analogdft.OptimizeOpamps(mx, mod.Chain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npartial DFT: make %v configurable (of %v)\n", op.Chosen, mod.Chain)
	fmt.Printf("usable configurations: %v  coverage %.0f%%  ⟨ω-det⟩ %.1f%%\n",
		op.UsableLabels, 100*op.Coverage, op.AvgOmegaDet)

	// Test program: minimal test frequencies for the optimized set.
	var rows []int
	rows = append(rows, byConfigs.Best.Rows...)
	var idxs []int
	for _, r := range rows {
		idxs = append(idxs, mx.Configs[r].Index)
	}
	plans, err := testgen.PlanConfigurations(mod, idxs, faults, mx.Region, testgen.Options{Points: 181})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntest program (configuration → test frequencies):")
	for _, p := range plans {
		fmt.Printf("  %-28s", p.Circuit)
		for i, f := range p.Freqs {
			fmt.Printf("  %.3g Hz (detects %v)", f, p.Detects[i])
		}
		if len(p.Uncovered) > 0 {
			fmt.Printf("  [not detectable here: %v]", p.Uncovered)
		}
		fmt.Println()
	}
	if missing := testgen.VerifyAgainstMatrix(mx, rows, plans); len(missing) > 0 {
		fmt.Printf("WARNING: plan misses faults %v\n", missing)
	} else {
		fmt.Println("plan verified: every matrix-detectable fault has a test frequency")
	}
	fmt.Printf("estimated test time: %.1f units (switch=5, freq=1)\n",
		testgen.TestTime(plans, 5, 1))
}
