// scaling studies how the multi-configuration technique scales with the
// number of opamps: matrix-construction cost, cover sizes and the exact
// (Petrick / branch-and-bound) vs greedy ablation on cascades of 2–6
// stages.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"time"

	"analogdft"
)

func main() {
	fmt.Println("n-stage cascade scaling (2^n configurations, 3n passive faults)")
	fmt.Printf("%-4s %-8s %-8s %-10s %-8s %-8s %-8s %-10s\n",
		"n", "configs", "faults", "build", "FC%", "exact", "greedy", "opamps")
	for n := 2; n <= 6; n++ {
		bench, err := analogdft.MultiStageLowpass(n, 10e3)
		if err != nil {
			log.Fatal(err)
		}
		faults := analogdft.DeviationFaults(bench.Circuit, 0.20)
		opts := analogdft.Options{Eps: 0.10, Points: 101}

		mod, err := analogdft.ApplyDFT(bench.Circuit, bench.Chain)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		mx, err := analogdft.BuildMatrix(mod, faults, opts)
		if err != nil {
			log.Fatal(err)
		}
		build := time.Since(start)

		exact, err := analogdft.ExactMinSolution(mx, mod.Chain)
		if err != nil {
			log.Fatal(err)
		}
		greedy, err := analogdft.GreedySolution(mx, mod.Chain)
		if err != nil {
			log.Fatal(err)
		}
		op, err := analogdft.OptimizeOpamps(mx, mod.Chain)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %-8d %-8d %-10s %-8.1f %-8d %-8d %d/%d\n",
			n, mx.NumConfigs(), mx.NumFaults(), build.Round(time.Millisecond),
			100*mx.FaultCoverage(), exact.NumConfigs, greedy.NumConfigs,
			len(op.Chosen), n)
	}

	// A structurally richer case: two cascaded biquads (6 opamps, global
	// feedback inside each section). As in the paper experiment, the
	// measurement window is the filters' shared flat passband, which hides
	// most faults in the functional configuration and makes the covering
	// problem non-trivial.
	fmt.Println("\nbiquad cascade (6 opamps, 64 configurations, passband window):")
	bench, err := analogdft.BiquadCascade(2)
	if err != nil {
		log.Fatal(err)
	}
	faults := analogdft.DeviationFaults(bench.Circuit, 0.20)
	mod, err := analogdft.ApplyDFT(bench.Circuit, bench.Chain)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	mx, err := analogdft.BuildMatrix(mod, faults, analogdft.Options{
		Eps: 0.10, MeasFloor: 0.01, Points: 61,
		Region: analogdft.Region{LoHz: 100, HiHz: 5000},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matrix %d×%d built in %s, FC = %.1f%%\n",
		mx.NumConfigs(), mx.NumFaults(), time.Since(start).Round(time.Millisecond),
		100*mx.FaultCoverage())
	exact, err := analogdft.ExactMinSolution(mx, mod.Chain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact minimum cover: %v (%d configurations)\n", exact.Labels, exact.NumConfigs)
	op, err := analogdft.OptimizeOpamps(mx, mod.Chain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partial DFT: %d of %d opamps configurable: %v\n",
		len(op.Chosen), len(mod.Chain), op.Chosen)
}
