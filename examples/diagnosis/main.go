// diagnosis demonstrates the fault-location extension: a fault dictionary
// built over the multi-configuration DFT, the diagnostic-resolution gain
// of the test configurations over the functional configuration alone, and
// the §4.3 cost side (switch parasitics, silicon area) of the partial-DFT
// implementation the dictionary runs on.
//
//	go run ./examples/diagnosis
package main

import (
	"fmt"
	"log"

	"analogdft"
)

func main() {
	// The paper biquad with single-pole opamps (so the penalty analysis
	// sees finite loop gain).
	bench := analogdft.WithSinglePoleOpamps(analogdft.PaperBiquad(), 1e5, 10)
	faults := analogdft.DeviationFaults(bench.Circuit, 0.20)
	region := analogdft.Region{LoHz: 100, HiHz: 5600}

	mod, err := analogdft.ApplyDFT(bench.Circuit, bench.Chain)
	if err != nil {
		log.Fatal(err)
	}

	// Dictionary over the functional configuration only vs all test
	// configurations.
	dOpts := analogdft.DiagnosisOptions{Eps: 0.10, Points: 120, Bands: 4}
	dictC0, err := analogdft.BuildDictionary(mod, []int{0}, faults, region, dOpts)
	if err != nil {
		log.Fatal(err)
	}
	dictAll, err := analogdft.BuildDictionary(mod, []int{0, 1, 2, 3, 4, 5, 6}, faults, region, dOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("diagnostic resolution, functional configuration only: %.2f\n", dictC0.Resolution())
	fmt.Printf("diagnostic resolution, all 7 configurations:          %.2f\n", dictAll.Resolution())
	fmt.Println("\nambiguity groups (all configurations):")
	for _, g := range dictAll.AmbiguityGroups() {
		fmt.Printf("  %v\n", g)
	}

	// Locate an injected fault through the measurement path.
	target, _ := faults.ByID("fR5")
	sig, err := dictAll.SignatureOfCircuit(func(ckt *analogdft.Circuit) (*analogdft.Circuit, error) {
		return target.Apply(ckt)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninjected %s → signature %s → diagnosed as %v\n",
		target.ID, sig, dictAll.Diagnose(sig))

	// The cost side: what does the DFT hardware do to the nominal
	// response, and what does partial DFT save?
	cmp, err := analogdft.ComparePenalty(bench.Circuit, bench.Chain, []string{"OP1", "OP2"},
		analogdft.DefaultSwitchModel, analogdft.DefaultAreaModel,
		analogdft.Region{LoHz: 100, HiHz: 1e6}, 121)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDFT penalty (switch Ron=%.0f Ω, %.0f%% GBW loss per configurable opamp):\n",
		analogdft.DefaultSwitchModel.OutputOhms, 100*(1-analogdft.DefaultSwitchModel.PoleFactor))
	fmt.Printf("  full DFT (3 opamps):    degradation %.3g%%, area overhead %.2f opamp-units\n",
		100*cmp.FullDegradation, cmp.FullAreaOverhead)
	fmt.Printf("  partial DFT (2 opamps): degradation %.3g%%, area overhead %.2f opamp-units\n",
		100*cmp.PartialDegradation, cmp.PartialAreaOverhead)
	if cmp.PartialDegradation > cmp.FullDegradation {
		fmt.Println("  note: on the Tow–Thomas loop, degrading only the two integrators")
		fmt.Println("  removes the inverter's Q-compensation, so the *partial* DFT shows")
		fmt.Println("  more passband deviation despite touching fewer opamps — the area")
		fmt.Println("  saving still holds, but 'fewer modified opamps ⇒ less degradation'")
		fmt.Println("  is topology-dependent, which is why the penalty is measured.")
	}

	// Grounded ε: derive the detection tolerance from ±2% components
	// instead of fixing it arbitrarily.
	eps, err := analogdft.DeriveToleranceEps(bench.Circuit, region, 61,
		analogdft.ToleranceSpec{PassiveTol: 0.02, Samples: 100, Seed: 1}, 1.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nderived detection tolerance for ±2%% components: ε = %.1f%% (paper fixes 10%%)\n", 100*eps)
}
