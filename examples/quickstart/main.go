// Quickstart: build the paper's biquadratic filter by hand with the
// public API, measure its (poor) testability, apply the
// multi-configuration DFT and optimize the test configuration set —
// the complete flow of the paper in ~60 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"analogdft"
)

func main() {
	// 1. Describe the circuit: a Tow–Thomas biquad (3 opamps, R1..R6,
	//    C1, C2), f0 = 10 kHz, Q = 2, lowpass output at v3.
	ckt := analogdft.NewCircuit("my-biquad")
	const r, c = 15.915e3, 1e-9
	ckt.R("R1", "in", "a", r)
	ckt.R("R2", "v1", "a", 2*r) // Q = 2
	ckt.Cap("C1", "v1", "a", c)
	ckt.R("R4", "v3", "a", r)
	ckt.OA("OP1", "0", "a", "v1")
	ckt.R("R5", "v1", "b", r)
	ckt.Cap("C2", "v2", "b", c)
	ckt.OA("OP2", "0", "b", "v2")
	ckt.R("R6", "v2", "c", r)
	ckt.R("R3", "v3", "c", r)
	ckt.OA("OP3", "0", "c", "v3")
	ckt.Input, ckt.Output = "in", "v3"
	if err := ckt.Validate(); err != nil {
		log.Fatal(err)
	}

	// 2. Fault universe: +20% deviations on every passive component.
	faults := analogdft.DeviationFaults(ckt, 0.20)
	fmt.Printf("circuit: %s\nfaults:  %v\n\n", ckt, faults.IDs())

	// 3. Testability of the unmodified circuit: ε = 10%, measured over
	//    the filter's usable passband (the stopband sits below the tester
	//    floor).
	opts := analogdft.Options{
		Eps:       0.10,
		MeasFloor: 0.01,
		Region:    analogdft.Region{LoHz: 100, HiHz: 5600},
		Points:    181,
	}
	row, err := analogdft.EvaluateCircuit(ckt, faults, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial fault coverage: %.0f%%  ⟨ω-det⟩ = %.1f%%\n",
		100*row.FaultCoverage(), row.AvgOmegaDet())
	for _, e := range row.Evals {
		if e.Detectable {
			fmt.Printf("  %-4s detectable (ω-det %.0f%%)\n", e.Fault.ID, e.OmegaDet)
		}
	}

	// 4. Multi-configuration DFT: all three opamps become configurable,
	//    their test inputs chained in → OP1 → OP2 → OP3.
	mod, err := analogdft.ApplyDFT(ckt, []string{"OP1", "OP2", "OP3"})
	if err != nil {
		log.Fatal(err)
	}
	mx, err := analogdft.BuildMatrix(mod, faults, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith DFT (%d configurations): fault coverage %.0f%%  ⟨ω-det⟩ = %.1f%%\n",
		mx.NumConfigs(), 100*mx.FaultCoverage(), mx.AvgBestOmega(nil))

	// 5. Optimize: smallest configuration set keeping maximum coverage,
	//    ties broken by ω-detectability (the §4 ordered requirements).
	res, err := analogdft.Optimize(mx, mod.Chain, analogdft.ConfigCountCost)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncandidate sets satisfying maximum fault coverage:\n")
	for _, cand := range res.Candidates {
		fmt.Printf("  %s\n", cand.String())
	}
	fmt.Printf("optimal test configuration set: %v\n", res.Best.Labels)

	// 6. Partial DFT: which opamps actually need to be configurable?
	op, err := analogdft.OptimizeOpamps(mx, mod.Chain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("configurable opamps needed:     %v (of %d)\n", op.Chosen, len(mod.Chain))
	fmt.Printf("usable configurations:          %v (coverage %.0f%%)\n",
		op.UsableLabels, 100*op.Coverage)
}
