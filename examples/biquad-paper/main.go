// biquad-paper reruns the paper's complete experiment sequence on the
// built-in Tow–Thomas biquad (the Figure 1 stand-in) and then replays the
// §4 optimization on the matrices published in the paper, printing every
// table and graph.
//
//	go run ./examples/biquad-paper
package main

import (
	"fmt"
	"log"
	"os"

	"analogdft"
)

func main() {
	// Track 1: end-to-end on our AC fault simulator.
	exp, err := analogdft.RunPaperExperiment()
	if err != nil {
		log.Fatal(err)
	}
	if err := exp.Report(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Track 2: exact §4 replay on the published Figure 5 / Table 2 data.
	fmt.Println()
	pub, err := analogdft.RunPublished()
	if err != nil {
		log.Fatal(err)
	}
	if err := pub.Report(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Cross-track comparison: where do simulation and publication agree?
	fmt.Println("\n=== simulation vs published minimal covers ===")
	fmt.Printf("simulated candidates: ")
	for _, c := range exp.ConfigOpt.Candidates {
		fmt.Printf("%v ", c.Labels)
	}
	fmt.Printf("\npublished candidates: ")
	for _, c := range pub.ConfigOpt.Candidates {
		fmt.Printf("%v ", c.Labels)
	}
	fmt.Printf("\nsimulated partial-DFT opamps: %v; published: %v\n",
		exp.OpampOpt.Chosen, pub.OpampOpt.Chosen)
}
