package spice

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseRecordsLines(t *testing.T) {
	deck, err := ParseString(strings.Join([]string{
		"* header comment",
		".title lines",
		"R1 in a 1k",
		"",
		"C1 a GND 1n ; inline",
		"OA1 0 a out",
		".input in",
		".output out",
		".chain OA1",
		".end",
	}, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"R1": 3, "C1": 5, "OA1": 6}
	if !reflect.DeepEqual(deck.Lines, want) {
		t.Errorf("Lines = %v, want %v", deck.Lines, want)
	}
	if deck.Line("R1") != 3 || deck.Line("nope") != 0 {
		t.Errorf("Line lookups = %d, %d", deck.Line("R1"), deck.Line("nope"))
	}
	if deck.InputLine != 7 || deck.OutputLine != 8 || deck.ChainLine != 9 {
		t.Errorf("directive lines = %d/%d/%d", deck.InputLine, deck.OutputLine, deck.ChainLine)
	}
}

func TestParseRecordsGroundSpellings(t *testing.T) {
	deck, err := ParseString("C1 a GND 1n\nR1 a 0 1k\nR2 a gnd 1k\nOA1 GND a b\n.input a\n.output b\n")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"GND", "0", "gnd"}
	if !reflect.DeepEqual(deck.GroundSpellings, want) {
		t.Errorf("GroundSpellings = %v, want %v", deck.GroundSpellings, want)
	}
}

func TestParseValueErrorCarriesLineNumber(t *testing.T) {
	_, err := ParseString("R1 a 0 1k\nR2 a 0 bogus¤value\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line 2 context", err)
	}
}
