package spice

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"analogdft/internal/circuit"
	"analogdft/internal/mna"
)

func TestParseValue(t *testing.T) {
	cases := map[string]float64{
		"10":     10,
		"10.5":   10.5,
		"-3":     -3,
		"1e3":    1000,
		"1E-9":   1e-9,
		"10k":    10e3,
		"4.7K":   4.7e3,
		"1meg":   1e6,
		"2MEG":   2e6,
		"100n":   100e-9,
		"2.2u":   2.2e-6,
		"1m":     1e-3,
		"3p":     3e-12,
		"5f":     5e-15,
		"2g":     2e9,
		"1t":     1e12,
		"1kOhm":  1e3,
		"100nF":  100e-9,
		"15.9k":  15.9e3,
		"1V":     1,
		"50Hz":   50,
		"10ohms": 10,
	}
	for in, want := range cases {
		got, err := ParseValue(in)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", in, err)
			continue
		}
		if math.Abs(got-want) > 1e-12*math.Abs(want) {
			t.Errorf("ParseValue(%q) = %g, want %g", in, got, want)
		}
	}
	for _, bad := range []string{"", "abc", "1x", "e3", "1e", "--3"} {
		if _, err := ParseValue(bad); !errors.Is(err, ErrSyntax) {
			t.Errorf("ParseValue(%q): err = %v, want ErrSyntax", bad, err)
		}
	}
}

func TestFormatValueRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1, 15.9e3, 1e-9, 2.2e-6, 4.7e3, 1e6, 3.3e9, 5e-15, 0.12} {
		s := FormatValue(v)
		got, err := ParseValue(s)
		if err != nil {
			t.Errorf("FormatValue(%g) = %q unparseable: %v", v, s, err)
			continue
		}
		if v == 0 {
			if got != 0 {
				t.Errorf("zero round trip: %g", got)
			}
			continue
		}
		if math.Abs(got-v) > 1e-6*math.Abs(v) {
			t.Errorf("round trip %g -> %q -> %g", v, s, got)
		}
	}
}

const biquadDeck = `
* Tow-Thomas biquad
.title tt-biquad
R1 in a 15.9k
R2 v1 a 31.8k       ; Q resistor
C1 v1 a 1n
R4 v3 a 15.9k
OA1 0 a v1
R5 v1 b 15.9k
C2 v2 b 1n
OA2 0 b v2
R6 v2 c 15.9k
R3 v3 c 15.9k
OA3 0 c v3
.input in
.output v3
.chain OA1 OA2 OA3
.end
`

func TestParseBiquadDeck(t *testing.T) {
	d, err := ParseString(biquadDeck)
	if err != nil {
		t.Fatal(err)
	}
	if d.Circuit.Name != "tt-biquad" {
		t.Errorf("title = %q", d.Circuit.Name)
	}
	if d.Circuit.Input != "in" || d.Circuit.Output != "v3" {
		t.Errorf("io = %q %q", d.Circuit.Input, d.Circuit.Output)
	}
	if len(d.Chain) != 3 || d.Chain[0] != "OA1" {
		t.Errorf("chain = %v", d.Chain)
	}
	if err := d.Circuit.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(d.Circuit.Opamps()); got != 3 {
		t.Errorf("opamps = %d", got)
	}
	r2, err := d.Circuit.Valued("R2")
	if err != nil || math.Abs(r2.Value()-31.8e3) > 1 {
		t.Errorf("R2 = %v %v", r2, err)
	}
	// The parsed circuit actually simulates: DC gain = −R4/R1 = −1.
	h, err := mna.TransferAt(d.Circuit, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(real(h)+1) > 1e-3 {
		t.Errorf("parsed biquad H(0) = %v", h)
	}
}

func TestParseAllElementKinds(t *testing.T) {
	deck := `
V1 in 0 1
I1 0 x 1m
R1 in x 1k
L1 x 0 10m
C1 x 0 1n
E1 y 0 x 0 2
R2 y 0 1k
G1 0 z x 0 1m
R3 z 0 1k
OA1 0 x w a0=1e5 pole=10
R4 x w 1k
.input in
.output y
`
	d, err := ParseString(deck)
	if err != nil {
		t.Fatal(err)
	}
	comps := d.Circuit.Components()
	if len(comps) != 11 {
		t.Fatalf("components = %d", len(comps))
	}
	op, _ := d.Circuit.Component("OA1")
	oa := op.(*circuit.Opamp)
	if oa.Model != circuit.ModelSinglePole || oa.A0 != 1e5 || oa.PoleHz != 10 {
		t.Errorf("opamp params = %+v", oa)
	}
}

func TestParseComments(t *testing.T) {
	d, err := ParseString("* c\nR1 a 0 1k ; trailing\n\n   \nR2 a 0 2k\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Circuit.Components()) != 2 {
		t.Fatal("comment handling")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"R1 a 0",               // missing value
		"R1 a 0 1k extra",      // too many fields
		"X1 a 0 1k",            // unknown element
		"E1 a 0 b 1",           // VCVS missing node
		"OA1 a b",              // opamp missing out
		"OA1 a b c foo=1",      // unknown opamp param
		"OA1 a b c a0",         // malformed param
		".input",               // missing node
		".output a b",          // too many
		".chain",               // empty
		".title",               // missing
		".wibble x",            // unknown directive
		"R1 a 0 1k\nR1 b 0 2k", // duplicate name
		"C1 a 0 zz",            // bad value
	}
	for _, deck := range cases {
		if _, err := ParseString(deck); err == nil {
			t.Errorf("deck %q accepted", deck)
		}
	}
}

func TestParseErrorCarriesLineNumber(t *testing.T) {
	_, err := ParseString("R1 a 0 1k\nR2 b 0 oops\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line 2", err)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	d, err := ParseString(biquadDeck)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, d.Circuit, d.Chain); err != nil {
		t.Fatal(err)
	}
	d2, err := ParseString(sb.String())
	if err != nil {
		t.Fatalf("re-parse: %v\ndeck:\n%s", err, sb.String())
	}
	if len(d2.Circuit.Components()) != len(d.Circuit.Components()) {
		t.Fatal("component count changed in round trip")
	}
	if d2.Circuit.Input != d.Circuit.Input || d2.Circuit.Output != d.Circuit.Output {
		t.Fatal("io changed")
	}
	if len(d2.Chain) != 3 {
		t.Fatal("chain lost")
	}
	// Transfer functions agree.
	h1, err := mna.TransferAt(d.Circuit, 5e3)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := mna.TransferAt(d2.Circuit, 5e3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(real(h1-h2)) > 1e-6 || math.Abs(imag(h1-h2)) > 1e-6 {
		t.Fatalf("round-trip transfer mismatch: %v vs %v", h1, h2)
	}
}

func TestWriteAllKinds(t *testing.T) {
	c := circuit.New("w")
	c.V("V1", "in", "0", 1)
	c.I("I1", "0", "x", 1e-3)
	c.R("R1", "in", "x", 1e3)
	c.L("L1", "x", "0", 1e-3)
	c.Cap("C1", "x", "0", 1e-9)
	c.E("E1", "y", "0", "x", "0", 2)
	c.G("G1", "0", "y", "x", "0", 1e-3)
	c.OA("OA1", "0", "x", "z")
	c.OASinglePole("OA2", "0", "z", "y", 1e5, 10)
	var sb strings.Builder
	if err := Write(&sb, c, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"V1", "I1", "R1", "L1", "C1", "E1", "G1", "OA1", "a0=100k"} {
		if !strings.Contains(out, want) {
			t.Errorf("deck missing %q:\n%s", want, out)
		}
	}
	if _, err := ParseString(out); err != nil {
		t.Fatalf("re-parse: %v", err)
	}
}

func TestKnownSuffixes(t *testing.T) {
	s := KnownSuffixes()
	if len(s) != 9 {
		t.Fatalf("suffixes = %v", s)
	}
}

// Property: FormatValue → ParseValue round-trips within 1e-6 relative for
// positive magnitudes across the supported range.
func TestValueRoundTripProperty(t *testing.T) {
	f := func(mant uint16, expRaw int8) bool {
		exp := int(expRaw)%25 - 12 // 1e-12 .. 1e12
		v := (1 + float64(mant)/65536*8) * math.Pow(10, float64(exp))
		s := FormatValue(v)
		got, err := ParseValue(s)
		if err != nil {
			return false
		}
		return math.Abs(got-v) <= 1e-5*math.Abs(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParseCurrentControlled(t *testing.T) {
	deck := `
V1 a 0 1
R1 a 0 1k
H1 b 0 V1 50
R2 b 0 1k
F1 c 0 V1 2
R3 c 0 1k
.input a
.output b
`
	d, err := ParseString(deck)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := d.Circuit.Component("H1")
	ccvs := h.(*circuit.CCVS)
	if ccvs.CtrlVSource != "V1" || ccvs.Rt != 50 {
		t.Fatalf("H1 = %+v", ccvs)
	}
	f, _ := d.Circuit.Component("F1")
	cccs := f.(*circuit.CCCS)
	if cccs.CtrlVSource != "V1" || cccs.Gain != 2 {
		t.Fatalf("F1 = %+v", cccs)
	}
	// Round trip.
	var sb strings.Builder
	if err := Write(&sb, d.Circuit, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseString(sb.String()); err != nil {
		t.Fatalf("re-parse: %v\n%s", err, sb.String())
	}
	// The parsed circuit solves with its own source (no extra stimulus).
	sys, err := mna.NewSystem(d.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := sys.SolveAt(100)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := sol.Voltage("b")
	if err != nil {
		t.Fatal(err)
	}
	// I(V1) = −1 mA ⇒ V(b) = 50·(−1 mA) = −0.05 V.
	if real(vb) > -0.049 || real(vb) < -0.051 {
		t.Fatalf("V(b) = %v, want −0.05", vb)
	}
}

func TestParseCurrentControlledErrors(t *testing.T) {
	if _, err := ParseString("H1 b 0 V1"); err == nil {
		t.Error("H missing value accepted")
	}
	if _, err := ParseString("F1 b 0 V1 x2"); err == nil {
		t.Error("F bad value accepted")
	}
}
