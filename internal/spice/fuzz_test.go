package spice

import (
	"os"
	"strings"
	"testing"
)

// FuzzParse asserts the deck parser's contract on arbitrary input: it must
// return an error, never panic, and an accepted deck must round-trip
// through Write and re-Parse without error.
func FuzzParse(f *testing.F) {
	if data, err := os.ReadFile("../../testdata/biquad.cir"); err == nil {
		f.Add(string(data))
	}
	seeds := []string{
		"",
		"R1 a 0 1k\n",
		"R1 a 0 1k ; comment\nC1 a b 1n\n.input a\n.output b\n.end\n",
		"OA1 p n out a0=1e5 pole=10\n",
		"E1 out 0 p m 2.5\nH1 x 0 V1 10\nF1 x 0 V1 2\n",
		"V1 in 0 1meg\nI1 0 n 1m\nL1 x 0 10m\n",
		".title t\n.chain OA1 OA2\n",
		"* comment\n.input\n",
		"R1 a 0 1kOhm\nC1 a 0 100nF\n",
		"R1 a 0 1e\nR2 a 0 .\nR3 a 0 e5\n",
		"OA1 a b c d=1\nOA2 a b c a0=\n",
		"X1 a b 1\n.bogus\nR1\n",
		"R1 a 0 1k\nR1 a 0 1k\n",
		"V1 GND gnd 0\nR1 ground 0 1k\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		deck, err := ParseString(src)
		if err != nil {
			if deck != nil {
				t.Fatalf("non-nil deck alongside error %v", err)
			}
			return
		}
		var b strings.Builder
		if err := Write(&b, deck.Circuit, deck.Chain); err != nil {
			t.Fatalf("Write failed on accepted deck: %v", err)
		}
		if _, err := ParseString(b.String()); err != nil {
			t.Fatalf("round-trip re-parse failed: %v\ndeck:\n%s", err, b.String())
		}
	})
}
