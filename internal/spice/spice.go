// Package spice implements a SPICE-flavoured netlist front-end for the
// library: a deck parser with engineering-notation values, opamp and DFT
// extensions, and a writer that round-trips circuits back to deck form.
//
// Deck format (one element or directive per line):
//
//   - full-line comment                  ; inline comment
//     .title my-filter
//     R1   in  a   15.9k                   resistor
//     C1   v1  a   1n                      capacitor
//     L1   x   0   10m                     inductor
//     V1   in  0   1                       independent voltage source
//     I1   0   n   1m                      independent current source
//     E1   out 0   p   m   2.5             VCVS  (out+, out−, ctrl+, ctrl−, gain)
//     G1   out 0   p   m   1m              VCCS  (gm)
//     OA1  p   n   out                     ideal opamp (in+, in−, out)
//     OA2  p   n   out  a0=1e5 pole=10     single-pole opamp
//     .input  in                           primary input node
//     .output out                          primary output node
//     .chain  OA1 OA2                      configurable-opamp chain (DFT)
//     .end
//
// Node "0", "gnd" and "ground" denote the ground reference.
package spice

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"analogdft/internal/circuit"
)

// ErrSyntax is returned for malformed decks; the message carries the line
// number.
var ErrSyntax = errors.New("spice: syntax error")

// Deck is a parsed netlist: the circuit plus the optional DFT chain
// declared with .chain, and source-location bookkeeping for diagnostics.
type Deck struct {
	Circuit *circuit.Circuit
	Chain   []string

	// Lines maps a component name to the 1-based deck line it was
	// declared on. Empty for decks built programmatically.
	Lines map[string]int
	// InputLine, OutputLine and ChainLine are the 1-based lines of the
	// .input, .output and .chain directives (0 when absent).
	InputLine, OutputLine, ChainLine int
	// GroundSpellings lists the distinct raw spellings of the ground
	// node seen in the deck ("0", "gnd", "GND", "ground", ...), in
	// first-seen order. More than one entry is legal but worth a lint
	// warning: the deck mixes aliases for the same electrical node.
	GroundSpellings []string
}

// Line returns the deck line a component was declared on (0 if unknown).
func (d *Deck) Line(component string) int { return d.Lines[component] }

// noteNodes records the raw spelling of every ground reference among the
// given node names, before circuit.Add canonicalizes them away.
func (d *Deck) noteNodes(nodes ...string) {
	for _, n := range nodes {
		if !circuit.IsGroundName(n) {
			continue
		}
		dup := false
		for _, seen := range d.GroundSpellings {
			if seen == n {
				dup = true
				break
			}
		}
		if !dup {
			d.GroundSpellings = append(d.GroundSpellings, n)
		}
	}
}

// ParseValue parses a SPICE engineering value: an optional decimal number
// followed by an optional scale suffix (f p n u m k meg g t,
// case-insensitive; "M"/"m" means milli as in SPICE, use "meg" for 1e6).
// Trailing unit letters after the suffix (e.g. "1kOhm", "100nF") are
// ignored.
func ParseValue(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("%w: empty value", ErrSyntax)
	}
	// Split numeric prefix.
	i := 0
	for i < len(s) && (s[i] == '+' || s[i] == '-' || s[i] == '.' ||
		(s[i] >= '0' && s[i] <= '9') ||
		((s[i] == 'e' || s[i] == 'E') && i+1 < len(s) &&
			(s[i+1] == '+' || s[i+1] == '-' || (s[i+1] >= '0' && s[i+1] <= '9')) && hasDigitBefore(s, i))) {
		if s[i] == 'e' || s[i] == 'E' {
			i++ // consume exponent marker, sign/digit consumed by loop
		}
		i++
	}
	numPart, suffix := s[:i], strings.ToLower(s[i:])
	v, err := strconv.ParseFloat(numPart, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad number %q", ErrSyntax, s)
	}
	scale := 1.0
	switch {
	case suffix == "":
	case strings.HasPrefix(suffix, "meg"):
		scale = 1e6
	case strings.HasPrefix(suffix, "f"):
		scale = 1e-15
	case strings.HasPrefix(suffix, "p"):
		scale = 1e-12
	case strings.HasPrefix(suffix, "n"):
		scale = 1e-9
	case strings.HasPrefix(suffix, "u"):
		scale = 1e-6
	case strings.HasPrefix(suffix, "m"):
		scale = 1e-3
	case strings.HasPrefix(suffix, "k"):
		scale = 1e3
	case strings.HasPrefix(suffix, "g"):
		scale = 1e9
	case strings.HasPrefix(suffix, "t"):
		scale = 1e12
	default:
		// Pure unit suffix such as "Ohm", "F", "H", "V", "A", "Hz".
		if !isUnitWord(suffix) {
			return 0, fmt.Errorf("%w: bad value suffix %q", ErrSyntax, s)
		}
	}
	return v * scale, nil
}

func hasDigitBefore(s string, i int) bool {
	for j := 0; j < i; j++ {
		if s[j] >= '0' && s[j] <= '9' {
			return true
		}
	}
	return false
}

func isUnitWord(s string) bool {
	switch s {
	case "ohm", "ohms", "f", "h", "v", "a", "hz", "s":
		return true
	}
	return false
}

// FormatValue renders a value in engineering notation (e.g. 15900 →
// "15.9k", 1e-9 → "1n").
func FormatValue(v float64) string {
	if v == 0 {
		return "0"
	}
	abs := math.Abs(v)
	type scale struct {
		mult float64
		suf  string
	}
	scales := []scale{
		{1e12, "t"}, {1e9, "g"}, {1e6, "meg"}, {1e3, "k"},
		{1, ""}, {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
	}
	for _, sc := range scales {
		if abs >= sc.mult {
			return trimFloat(v/sc.mult) + sc.suf
		}
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 6, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	return s
}

// Parse reads a deck and builds the circuit.
func Parse(r io.Reader) (*Deck, error) {
	deck := &Deck{Circuit: circuit.New("netlist"), Lines: make(map[string]int)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		fields := strings.Fields(line)
		if err := deck.parseLine(lineNo, fields); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: line %d: %v", ErrSyntax, lineNo+1, err)
	}
	return deck, nil
}

// ParseString is Parse on a string.
func ParseString(s string) (*Deck, error) { return Parse(strings.NewReader(s)) }

func (d *Deck) parseLine(lineNo int, f []string) error {
	head := f[0]
	lower := strings.ToLower(head)
	if strings.HasPrefix(lower, ".") {
		return d.parseDirective(lineNo, lower, f[1:])
	}
	if err := d.parseElement(head, lower, f); err != nil {
		return err
	}
	d.Lines[head] = lineNo
	return nil
}

func (d *Deck) parseElement(head, lower string, f []string) error {
	switch {
	case strings.HasPrefix(lower, "oa"):
		return d.parseOpamp(head, f[1:])
	case lower[0] == 'r':
		return d.parseTwoTerminal(head, f[1:], func(a, b string, v float64) circuit.Component {
			return &circuit.Resistor{Label: head, A: a, B: b, Ohms: v}
		})
	case lower[0] == 'c':
		return d.parseTwoTerminal(head, f[1:], func(a, b string, v float64) circuit.Component {
			return &circuit.Capacitor{Label: head, A: a, B: b, Farads: v}
		})
	case lower[0] == 'l':
		return d.parseTwoTerminal(head, f[1:], func(a, b string, v float64) circuit.Component {
			return &circuit.Inductor{Label: head, A: a, B: b, Henries: v}
		})
	case lower[0] == 'v':
		return d.parseTwoTerminal(head, f[1:], func(a, b string, v float64) circuit.Component {
			return &circuit.VSource{Label: head, Plus: a, Minus: b, Amplitude: v}
		})
	case lower[0] == 'i':
		return d.parseTwoTerminal(head, f[1:], func(a, b string, v float64) circuit.Component {
			return &circuit.ISource{Label: head, Plus: a, Minus: b, Amplitude: v}
		})
	case lower[0] == 'e':
		return d.parseControlled(head, f[1:], func(op, om, cp, cm string, v float64) circuit.Component {
			return &circuit.VCVS{Label: head, OutP: op, OutM: om, CtrlP: cp, CtrlM: cm, Gain: v}
		})
	case lower[0] == 'g':
		return d.parseControlled(head, f[1:], func(op, om, cp, cm string, v float64) circuit.Component {
			return &circuit.VCCS{Label: head, OutP: op, OutM: om, CtrlP: cp, CtrlM: cm, Gm: v}
		})
	case lower[0] == 'h':
		return d.parseCurrentControlled(head, f[1:], func(op, om, ctrl string, v float64) circuit.Component {
			return &circuit.CCVS{Label: head, OutP: op, OutM: om, CtrlVSource: ctrl, Rt: v}
		})
	case lower[0] == 'f':
		return d.parseCurrentControlled(head, f[1:], func(op, om, ctrl string, v float64) circuit.Component {
			return &circuit.CCCS{Label: head, OutP: op, OutM: om, CtrlVSource: ctrl, Gain: v}
		})
	default:
		return fmt.Errorf("%w: unknown element %q", ErrSyntax, head)
	}
}

func (d *Deck) parseTwoTerminal(name string, args []string, mk func(a, b string, v float64) circuit.Component) error {
	if len(args) != 3 {
		return fmt.Errorf("%w: %s needs 2 nodes and a value", ErrSyntax, name)
	}
	v, err := ParseValue(args[2])
	if err != nil {
		return err
	}
	d.noteNodes(args[0], args[1])
	return d.Circuit.Add(mk(args[0], args[1], v))
}

func (d *Deck) parseControlled(name string, args []string, mk func(op, om, cp, cm string, v float64) circuit.Component) error {
	if len(args) != 5 {
		return fmt.Errorf("%w: %s needs 4 nodes and a value", ErrSyntax, name)
	}
	v, err := ParseValue(args[4])
	if err != nil {
		return err
	}
	d.noteNodes(args[0], args[1], args[2], args[3])
	return d.Circuit.Add(mk(args[0], args[1], args[2], args[3], v))
}

func (d *Deck) parseCurrentControlled(name string, args []string, mk func(op, om, ctrl string, v float64) circuit.Component) error {
	if len(args) != 4 {
		return fmt.Errorf("%w: %s needs 2 nodes, a control V source and a value", ErrSyntax, name)
	}
	v, err := ParseValue(args[3])
	if err != nil {
		return err
	}
	d.noteNodes(args[0], args[1])
	return d.Circuit.Add(mk(args[0], args[1], args[2], v))
}

func (d *Deck) parseOpamp(name string, args []string) error {
	if len(args) < 3 {
		return fmt.Errorf("%w: %s needs in+, in−, out", ErrSyntax, name)
	}
	op := &circuit.Opamp{Label: name, InP: args[0], InN: args[1], Out: args[2], Model: circuit.ModelIdeal}
	for _, kv := range args[3:] {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("%w: bad opamp parameter %q", ErrSyntax, kv)
		}
		v, err := ParseValue(parts[1])
		if err != nil {
			return err
		}
		switch strings.ToLower(parts[0]) {
		case "a0":
			op.A0 = v
			op.Model = circuit.ModelSinglePole
		case "pole":
			op.PoleHz = v
			op.Model = circuit.ModelSinglePole
		default:
			return fmt.Errorf("%w: unknown opamp parameter %q", ErrSyntax, parts[0])
		}
	}
	d.noteNodes(args[0], args[1], args[2])
	return d.Circuit.Add(op)
}

func (d *Deck) parseDirective(lineNo int, name string, args []string) error {
	switch name {
	case ".title":
		if len(args) < 1 {
			return fmt.Errorf("%w: .title needs a name", ErrSyntax)
		}
		d.Circuit.Name = strings.Join(args, " ")
	case ".input":
		if len(args) != 1 {
			return fmt.Errorf("%w: .input needs one node", ErrSyntax)
		}
		d.Circuit.Input = args[0]
		d.InputLine = lineNo
	case ".output":
		if len(args) != 1 {
			return fmt.Errorf("%w: .output needs one node", ErrSyntax)
		}
		d.Circuit.Output = args[0]
		d.OutputLine = lineNo
	case ".chain":
		if len(args) == 0 {
			return fmt.Errorf("%w: .chain needs opamp names", ErrSyntax)
		}
		d.Chain = append([]string(nil), args...)
		d.ChainLine = lineNo
	case ".end":
		// Accepted, no effect.
	default:
		return fmt.Errorf("%w: unknown directive %q", ErrSyntax, name)
	}
	return nil
}

// Write renders the circuit (and optional chain) as a deck that Parse
// round-trips.
func Write(w io.Writer, ckt *circuit.Circuit, chain []string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "* generated by analogdft\n")
	fmt.Fprintf(&b, ".title %s\n", ckt.Name)
	for _, comp := range ckt.Components() {
		switch c := comp.(type) {
		case *circuit.Resistor:
			fmt.Fprintf(&b, "%s %s %s %s\n", c.Label, c.A, c.B, FormatValue(c.Ohms))
		case *circuit.Capacitor:
			fmt.Fprintf(&b, "%s %s %s %s\n", c.Label, c.A, c.B, FormatValue(c.Farads))
		case *circuit.Inductor:
			fmt.Fprintf(&b, "%s %s %s %s\n", c.Label, c.A, c.B, FormatValue(c.Henries))
		case *circuit.VSource:
			fmt.Fprintf(&b, "%s %s %s %s\n", c.Label, c.Plus, c.Minus, FormatValue(c.Amplitude))
		case *circuit.ISource:
			fmt.Fprintf(&b, "%s %s %s %s\n", c.Label, c.Plus, c.Minus, FormatValue(c.Amplitude))
		case *circuit.VCVS:
			fmt.Fprintf(&b, "%s %s %s %s %s %s\n", c.Label, c.OutP, c.OutM, c.CtrlP, c.CtrlM, FormatValue(c.Gain))
		case *circuit.VCCS:
			fmt.Fprintf(&b, "%s %s %s %s %s %s\n", c.Label, c.OutP, c.OutM, c.CtrlP, c.CtrlM, FormatValue(c.Gm))
		case *circuit.CCVS:
			fmt.Fprintf(&b, "%s %s %s %s %s\n", c.Label, c.OutP, c.OutM, c.CtrlVSource, FormatValue(c.Rt))
		case *circuit.CCCS:
			fmt.Fprintf(&b, "%s %s %s %s %s\n", c.Label, c.OutP, c.OutM, c.CtrlVSource, FormatValue(c.Gain))
		case *circuit.Opamp:
			if c.Model == circuit.ModelSinglePole {
				fmt.Fprintf(&b, "%s %s %s %s a0=%s pole=%s\n", c.Label, c.InP, c.InN, c.Out,
					FormatValue(c.A0), FormatValue(c.PoleHz))
			} else {
				fmt.Fprintf(&b, "%s %s %s %s\n", c.Label, c.InP, c.InN, c.Out)
			}
		default:
			return fmt.Errorf("spice: cannot serialize %T", comp)
		}
	}
	if ckt.Input != "" {
		fmt.Fprintf(&b, ".input %s\n", ckt.Input)
	}
	if ckt.Output != "" {
		fmt.Fprintf(&b, ".output %s\n", ckt.Output)
	}
	if len(chain) > 0 {
		fmt.Fprintf(&b, ".chain %s\n", strings.Join(chain, " "))
	}
	b.WriteString(".end\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// KnownSuffixes lists the supported scale suffixes, sorted — exposed for
// documentation/tests.
func KnownSuffixes() []string {
	s := []string{"f", "p", "n", "u", "m", "k", "meg", "g", "t"}
	sort.Strings(s)
	return s
}
