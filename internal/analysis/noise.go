package analysis

import (
	"fmt"
	"math/cmplx"

	"analogdft/internal/circuit"
	"analogdft/internal/mna"
)

// Boltzmann constant (J/K).
const kBoltzmann = 1.380649e-23

// NoiseSpectrum is the output-referred thermal noise of a circuit.
type NoiseSpectrum struct {
	Freqs []float64
	// Density[i] is the output noise power spectral density (V²/Hz) at
	// Freqs[i], summed over every resistor's 4kTR Johnson noise.
	Density []float64
	// PerResistor[name][i] is the contribution of one resistor.
	PerResistor map[string][]float64
	// TempK is the analysis temperature.
	TempK float64
}

// TotalAt returns the noise voltage density (V/√Hz) at grid index i.
func (n *NoiseSpectrum) TotalAt(i int) float64 {
	if i < 0 || i >= len(n.Density) {
		return 0
	}
	return sqrt(n.Density[i])
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	// Newton iteration avoids importing math twice; straightforward and
	// exact enough — but math.Sqrt is clearer:
	return mathSqrt(v)
}

// OutputNoise computes the output-referred thermal-noise spectrum of the
// circuit over a grid: each resistor R contributes a white current source
// of density 4kT/R across its terminals; the contribution to the output is
// |Z_t(jω)|²·4kT/R where Z_t is the transfer impedance from the resistor's
// terminals to the output. Independent sources are zeroed (the input is
// not driven). Temperature in kelvin (0 selects 300 K).
//
// This is the classical SPICE .NOISE analysis restricted to thermal
// sources; it exercises the same MNA superposition machinery the
// testability analysis relies on and is validated against the analytic
// kT/C result in tests.
func OutputNoise(ckt *circuit.Circuit, grid []float64, tempK float64) (*NoiseSpectrum, error) {
	if len(grid) == 0 {
		return nil, fmt.Errorf("%w: empty grid", ErrBadSweep)
	}
	if tempK <= 0 {
		tempK = 300
	}
	out := circuit.CanonicalNode(ckt.Output)
	if out == "" {
		return nil, fmt.Errorf("%w: no output node", circuit.ErrInvalid)
	}
	ns := &NoiseSpectrum{
		Freqs:       append([]float64(nil), grid...),
		Density:     make([]float64, len(grid)),
		PerResistor: make(map[string][]float64),
		TempK:       tempK,
	}
	// The stimulus is zeroed during noise analysis, which AC-grounds the
	// input: attach the (to-be-zeroed) stimulus source if the input is not
	// already driven.
	base := ckt
	if driven, err := mna.Driven(ckt); err == nil {
		base = driven
	}
	for _, comp := range base.Components() {
		r, ok := comp.(*circuit.Resistor)
		if !ok {
			continue
		}
		if r.Ohms <= 0 {
			return nil, fmt.Errorf("analysis: resistor %q has non-positive value", r.Name())
		}
		// Inject a unit AC current across the resistor, sources zeroed.
		probe := zeroedSources(base)
		if err := probe.Add(&circuit.ISource{Label: "_INOISE", Plus: r.A, Minus: r.B, Amplitude: 1}); err != nil {
			return nil, err
		}
		sys, err := mna.NewSystem(probe)
		if err != nil {
			return nil, err
		}
		contrib := make([]float64, len(grid))
		s := 4 * kBoltzmann * tempK / r.Ohms // A²/Hz
		for i, f := range grid {
			sol, err := sys.SolveAt(f)
			if err != nil {
				contrib[i] = 0 // singular point: no defined contribution
				continue
			}
			v, err := sol.Voltage(out)
			if err != nil {
				return nil, err
			}
			zt := cmplx.Abs(v) // |Z_t| in Ω for the 1 A probe
			contrib[i] = zt * zt * s
			ns.Density[i] += contrib[i]
		}
		ns.PerResistor[r.Name()] = contrib
	}
	return ns, nil
}

// zeroedSources clones the circuit with every independent source's
// amplitude set to zero (AC-ground for V sources, open for I sources —
// their stamps remain so topology is preserved).
func zeroedSources(ckt *circuit.Circuit) *circuit.Circuit {
	out := ckt.Clone()
	for _, comp := range out.Components() {
		switch s := comp.(type) {
		case *circuit.VSource:
			s.Amplitude = 0
		case *circuit.ISource:
			s.Amplitude = 0
		}
	}
	return out
}

// IntegrateNoise integrates a noise density over the grid (trapezoidal in
// linear frequency), returning the RMS noise voltage (V) across the band.
func IntegrateNoise(ns *NoiseSpectrum) float64 {
	total := 0.0
	for i := 1; i < len(ns.Freqs); i++ {
		df := ns.Freqs[i] - ns.Freqs[i-1]
		total += 0.5 * (ns.Density[i] + ns.Density[i-1]) * df
	}
	return mathSqrt(total)
}
