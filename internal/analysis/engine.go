package analysis

import (
	"context"
	"errors"
	"fmt"

	"analogdft/internal/circuit"
	"analogdft/internal/fault"
	"analogdft/internal/mna"
	"analogdft/internal/numeric"
)

// Engine is the reusable sweep pipeline for one circuit configuration: it
// owns the driven clone (stimulus attached), the indexed MNA system with
// its cached G/jωC split stamps, and a sweeper with its workspace. Those
// are built exactly once; every subsequent sweep — nominal, faulty via
// SweepFault/ApplyFault, or a singular-point retry — reuses them, which
// is what makes the incremental fault-simulation path clone-free and
// allocation-flat. An Engine is not safe for concurrent use; give each
// worker its own.
type Engine struct {
	driven  *circuit.Circuit
	sys     *mna.System
	sw      *mna.Sweeper
	nodeIdx int // observed node's unknown index, -1 for ground

	// lr is the low-rank grid cache: the nominal factorization and
	// solution at every grid point, built lazily by the first SweepLowRank
	// and reused by every subsequent rank-1 fault on the same grid. This
	// is the loop reorder of the Sherman–Morrison path expressed as state:
	// the (configuration, ω) factorizations happen once, and the fault
	// loop runs inside them.
	lr *lowRankGrid

	// traceCtx, when set, carries the caller's span context so the
	// low-rank paths can attach their spans (grid factorization, per-point
	// refactor fallbacks) to the caller's trace. The Engine API predates
	// context plumbing; SetTraceContext sidesteps changing every sweep
	// signature.
	traceCtx context.Context
}

// SetTraceContext attaches (or, with nil, detaches) the span context the
// engine's internal spans should parent under. Callers that set it must
// clear it when the cell finishes so a retired trace is not held alive.
func (e *Engine) SetTraceContext(ctx context.Context) {
	e.traceCtx = ctx
}

// traceContext returns the attached span context, or Background.
func (e *Engine) traceContext() context.Context {
	if e.traceCtx != nil {
		return e.traceCtx
	}
	return context.Background()
}

// NewEngine prepares an engine for the (undriven) circuit: the input is
// driven with a unit AC source and the output node is observed, exactly
// as Sweep does per call. The matrix layout resolves automatically —
// safe as a default because the sparse solve is bit-identical to the
// dense one; pass an explicit layout through NewEngineLayout to force
// either side.
func NewEngine(ckt *circuit.Circuit) (*Engine, error) {
	return NewEngineLayout(ckt, mna.LayoutAuto)
}

// NewEngineLayout is NewEngine with an explicit matrix layout
// (mna.LayoutDense, mna.LayoutSparse, or mna.LayoutAuto for the fill
// heuristic).
func NewEngineLayout(ckt *circuit.Circuit, layout mna.Layout) (*Engine, error) {
	driven, err := mna.Driven(ckt)
	if err != nil {
		return nil, err
	}
	sys, err := mna.NewSystemLayout(driven, layout)
	if err != nil {
		return nil, err
	}
	out := circuit.CanonicalNode(driven.Output)
	sw, err := sys.NewSweeper(out)
	if err != nil {
		return nil, err
	}
	nodeIdx, err := sys.NodeIndex(out)
	if err != nil {
		return nil, err
	}
	return &Engine{driven: driven, sys: sys, sw: sw, nodeIdx: nodeIdx}, nil
}

// SweepGrid samples the transfer function over an explicit grid in the
// engine's current state (nominal, or faulty while a patch is applied).
// Singular points are recorded as invalid rather than failing the sweep;
// solve metrics are flushed by the underlying Sweeper.SweepGrid.
func (e *Engine) SweepGrid(grid []float64) (*Response, error) {
	if len(grid) == 0 {
		return nil, fmt.Errorf("%w: empty grid", ErrBadSweep)
	}
	resp := &Response{
		Freqs: append([]float64(nil), grid...),
		H:     make([]complex128, len(grid)),
		Valid: make([]bool, len(grid)),
	}
	err := e.sw.SweepGrid(grid, func(i int, v complex128, verr error) error {
		if verr != nil {
			if errors.Is(verr, numeric.ErrSingular) {
				return nil // leave point invalid
			}
			return verr
		}
		resp.H[i] = v
		resp.Valid[i] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// ApplyFault expresses the fault as an in-place stamp patch on the live
// system. Faults that cannot be patched — opens, shorts, opamp model
// faults (fault.ErrNotPatchable), or values the stamps cannot express
// (mna.ErrUnsupported) — leave the engine nominal and return the error;
// callers fall back to the clone-per-cell path.
func (e *Engine) ApplyFault(f fault.Fault) error {
	name, v, err := f.PatchValue(e.driven)
	if err != nil {
		return err
	}
	if err := e.sys.SetValue(name, v); err != nil {
		return err
	}
	ePatches.Inc()
	return nil
}

// Reset restores the engine to its nominal state (exact snapshot restore;
// see mna.System.Reset).
func (e *Engine) Reset() { e.sys.Reset() }

// SweepFault measures the fault's response over the grid: patch, sweep,
// restore. The engine is back to nominal when it returns, whatever the
// outcome.
func (e *Engine) SweepFault(f fault.Fault, grid []float64) (*Response, error) {
	if err := e.ApplyFault(f); err != nil {
		return nil, err
	}
	defer e.Reset()
	return e.SweepGrid(grid)
}

// RetrySingularPoints re-attempts the invalid points of resp, in place,
// at deterministically jittered frequencies — up to attempts offsets per
// point, clamped to MaxSingularRetries — reusing the engine's system and
// workspace instead of rebuilding the driven circuit per call. resp must
// have been produced by this engine in its current state (a faulty retry
// runs while the fault is still applied). It returns the number of
// points recovered and the number of extra solves performed; failures
// other than a singular system abort the retry.
func (e *Engine) RetrySingularPoints(resp *Response, attempts int) (recovered, solves int, err error) {
	if attempts <= 0 || resp.InvalidCount() == 0 {
		return 0, 0, nil
	}
	if attempts > len(singularJitter) {
		attempts = len(singularJitter)
	}
	defer e.sw.FlushMetrics()
	for i, ok := range resp.Valid {
		if ok {
			continue
		}
		for _, rel := range singularJitter[:attempts] {
			solves++
			v, verr := e.sw.VoltageAt(resp.Freqs[i] * (1 + rel))
			if verr != nil {
				if errors.Is(verr, numeric.ErrSingular) {
					continue
				}
				return recovered, solves, verr
			}
			resp.H[i] = v
			resp.Valid[i] = true
			recovered++
			break
		}
	}
	return recovered, solves, nil
}
