package analysis

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"strings"
	"testing"

	"analogdft/internal/circuit"
	"analogdft/internal/mna"
	"analogdft/internal/numeric"
)

// rcLowpass returns an RC lowpass with corner fc ≈ 1.59 kHz.
func rcLowpass() *circuit.Circuit {
	c := circuit.New("rc")
	c.R("R1", "in", "out", 1e3)
	c.Cap("C1", "out", "0", 100e-9)
	c.Input, c.Output = "in", "out"
	return c
}

// rcHighpass returns a CR highpass with corner fc ≈ 1.59 kHz.
func rcHighpass() *circuit.Circuit {
	c := circuit.New("cr")
	c.Cap("C1", "in", "out", 100e-9)
	c.R("R1", "out", "0", 1e3)
	c.Input, c.Output = "in", "out"
	return c
}

const rcCorner = 1591.549430918953 // 1/(2π·1k·100n)

func TestSweepSpecValidate(t *testing.T) {
	bad := []SweepSpec{
		{StartHz: 0, StopHz: 10, Points: 5},
		{StartHz: 10, StopHz: 10, Points: 5},
		{StartHz: 10, StopHz: 5, Points: 5},
		{StartHz: 1, StopHz: 10, Points: 1},
	}
	for _, s := range bad {
		if err := s.Validate(); !errors.Is(err, ErrBadSweep) {
			t.Errorf("spec %+v: err = %v, want ErrBadSweep", s, err)
		}
	}
	if err := (SweepSpec{1, 10, 2}).Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

func TestSweepRCLowpass(t *testing.T) {
	resp, err := Sweep(rcLowpass(), SweepSpec{StartHz: 1, StopHz: 1e7, Points: 141})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.AllValid() {
		t.Fatal("RC lowpass should solve everywhere")
	}
	mag := resp.Mag()
	if math.Abs(mag[0]-1) > 1e-4 {
		t.Errorf("passband magnitude = %g, want ≈1", mag[0])
	}
	if mag[len(mag)-1] > 1e-3 {
		t.Errorf("stopband magnitude = %g, want ≈0", mag[len(mag)-1])
	}
	// Analytic check at every grid point: |H| = 1/sqrt(1+(f/fc)^2).
	for i, f := range resp.Freqs {
		want := 1 / math.Sqrt(1+(f/rcCorner)*(f/rcCorner))
		if math.Abs(mag[i]-want) > 1e-6 {
			t.Fatalf("point %d (%g Hz): |H| = %g, want %g", i, f, mag[i], want)
		}
	}
}

func TestResponseDerivedViews(t *testing.T) {
	resp, err := Sweep(rcLowpass(), SweepSpec{StartHz: 10, StopHz: 1e6, Points: 51})
	if err != nil {
		t.Fatal(err)
	}
	db := resp.MagDb()
	ph := resp.PhaseDeg()
	if db[0] > 0 || db[0] < -0.1 {
		t.Errorf("passband dB = %g", db[0])
	}
	if ph[0] > 0 || ph[0] < -10 {
		t.Errorf("passband phase = %g", ph[0])
	}
	last := len(ph) - 1
	if ph[last] > -80 {
		t.Errorf("stopband phase = %g, want ≈ −90", ph[last])
	}
	peak, fpk, ok := resp.PeakMag()
	if !ok || peak > 1.0001 || fpk > 100 {
		t.Errorf("peak = %g at %g Hz", peak, fpk)
	}
}

func TestSweepOnGrid(t *testing.T) {
	grid := []float64{10, rcCorner, 1e6}
	resp, err := SweepOnGrid(rcLowpass(), grid)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Len() != 3 {
		t.Fatalf("len = %d", resp.Len())
	}
	if math.Abs(resp.Mag()[1]-1/math.Sqrt2) > 1e-6 {
		t.Fatalf("corner magnitude = %g", resp.Mag()[1])
	}
	if _, err := SweepOnGrid(rcLowpass(), nil); !errors.Is(err, ErrBadSweep) {
		t.Fatalf("empty grid err = %v", err)
	}
}

func TestSweepRecordsInvalidPoints(t *testing.T) {
	// Series capacitors: singular at the lowest frequencies of a grid that
	// includes near-DC? MNA is singular only exactly at ω=0, and log grids
	// exclude 0 — so instead check that a fully valid circuit reports valid.
	c := circuit.New("cc")
	c.Cap("C1", "in", "mid", 1e-9)
	c.Cap("C2", "mid", "0", 1e-9)
	c.Input, c.Output = "in", "mid"
	resp, err := Sweep(c, SweepSpec{StartHz: 1, StopHz: 1e3, Points: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.AllValid() {
		t.Fatal("capacitive divider is valid at every ω > 0")
	}
}

func TestWriteCSV(t *testing.T) {
	resp, err := Sweep(rcLowpass(), SweepSpec{StartHz: 10, StopHz: 1e3, Points: 3})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := resp.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV lines = %d, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "freq_hz,") {
		t.Fatalf("bad header %q", lines[0])
	}
}

func TestRegion(t *testing.T) {
	r := Region{LoHz: 10, HiHz: 1e5}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Decades()-4) > 1e-12 {
		t.Errorf("Decades = %g", r.Decades())
	}
	if !r.Contains(10) || !r.Contains(1e5) || r.Contains(9.99) || r.Contains(1.1e5) {
		t.Error("Contains boundaries wrong")
	}
	spec := r.Spec(100)
	if spec.StartHz != 10 || spec.StopHz != 1e5 || spec.Points != 100 {
		t.Errorf("Spec = %+v", spec)
	}
	if (Region{LoHz: -1, HiHz: 5}).Validate() == nil {
		t.Error("negative region accepted")
	}
	if s := r.String(); !strings.Contains(s, "Hz") {
		t.Errorf("String = %q", s)
	}
}

func TestCornerFrequenciesLowpass(t *testing.T) {
	resp, err := Sweep(rcLowpass(), SweepSpec{StartHz: 0.1, StopHz: 1e7, Points: 321})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, ok := CornerFrequencies(resp)
	if !ok {
		t.Fatal("no corners found")
	}
	if lo > 0.2 {
		t.Errorf("lowpass low corner = %g, want probe edge", lo)
	}
	if math.Abs(math.Log10(hi/rcCorner)) > 0.05 {
		t.Errorf("high corner = %g, want ≈%g", hi, rcCorner)
	}
}

func TestReferenceRegionLowpass(t *testing.T) {
	reg, err := ReferenceRegion(rcLowpass(), SweepSpec{})
	if err != nil {
		t.Fatal(err)
	}
	// Expect ≈ [fc/100, fc·100]: four decades centred on the corner.
	if math.Abs(math.Log10(reg.LoHz/(rcCorner/100))) > 0.1 {
		t.Errorf("reference low edge = %g, want ≈%g", reg.LoHz, rcCorner/100)
	}
	if math.Abs(math.Log10(reg.HiHz/(rcCorner*100))) > 0.1 {
		t.Errorf("reference high edge = %g, want ≈%g", reg.HiHz, rcCorner*100)
	}
	if d := reg.Decades(); d < 3.5 || d > 4.5 {
		t.Errorf("reference width = %g decades, want ≈4", d)
	}
}

func TestReferenceRegionHighpass(t *testing.T) {
	reg, err := ReferenceRegion(rcHighpass(), SweepSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(math.Log10(reg.LoHz/(rcCorner/100))) > 0.1 {
		t.Errorf("low edge = %g, want ≈%g", reg.LoHz, rcCorner/100)
	}
	if d := reg.Decades(); d < 3.5 || d > 4.5 {
		t.Errorf("width = %g decades, want ≈4", d)
	}
}

func TestRelativeDeviationZeroForIdentical(t *testing.T) {
	resp, err := Sweep(rcLowpass(), SweepSpec{StartHz: 10, StopHz: 1e5, Points: 21})
	if err != nil {
		t.Fatal(err)
	}
	p, err := RelativeDeviation(resp, resp, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxRel() != 0 {
		t.Fatalf("self deviation = %g, want 0", p.MaxRel())
	}
	if got := p.ExceedsAt(0.1); len(got) != 0 {
		t.Fatalf("ExceedsAt = %v, want none", got)
	}
}

func TestRelativeDeviationDetectsShiftedCorner(t *testing.T) {
	nom, err := Sweep(rcLowpass(), SweepSpec{StartHz: 10, StopHz: 1e6, Points: 61})
	if err != nil {
		t.Fatal(err)
	}
	faultyCkt := rcLowpass()
	v, _ := faultyCkt.Valued("R1")
	v.SetValue(v.Value() * 1.2) // +20% deviation fault
	fau, err := Sweep(faultyCkt, SweepSpec{StartHz: 10, StopHz: 1e6, Points: 61})
	if err != nil {
		t.Fatal(err)
	}
	p, err := RelativeDeviation(nom, fau, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	// Around/above the corner a 20% R shift moves |H| by more than 10%.
	if p.MaxRel() < 0.1 {
		t.Fatalf("max deviation = %g, want > 0.1", p.MaxRel())
	}
	// In the deep passband the deviation is tiny.
	if p.Rel[0] > 0.01 {
		t.Fatalf("passband deviation = %g, want ≈0", p.Rel[0])
	}
	// Detectable indices must be sorted and in range.
	idx := p.ExceedsAt(0.1)
	if len(idx) == 0 {
		t.Fatal("no detectable points for a 20% R fault")
	}
	for i := 1; i < len(idx); i++ {
		if idx[i] <= idx[i-1] {
			t.Fatal("ExceedsAt not ascending")
		}
	}
}

func TestRelativeDeviationGridMismatch(t *testing.T) {
	a, _ := Sweep(rcLowpass(), SweepSpec{StartHz: 10, StopHz: 1e5, Points: 5})
	b, _ := Sweep(rcLowpass(), SweepSpec{StartHz: 10, StopHz: 1e5, Points: 7})
	if _, err := RelativeDeviation(a, b, 0); !errors.Is(err, ErrBadSweep) {
		t.Fatalf("err = %v, want ErrBadSweep", err)
	}
	c, _ := Sweep(rcLowpass(), SweepSpec{StartHz: 20, StopHz: 2e5, Points: 5})
	if _, err := RelativeDeviation(a, c, 0); !errors.Is(err, ErrBadSweep) {
		t.Fatalf("shifted grid err = %v, want ErrBadSweep", err)
	}
}

func TestRelativeDeviationValidityRules(t *testing.T) {
	mk := func(valid ...bool) *Response {
		r := &Response{}
		for i, v := range valid {
			r.Freqs = append(r.Freqs, float64(i+1))
			r.H = append(r.H, 1)
			r.Valid = append(r.Valid, v)
		}
		return r
	}
	nom := mk(true, false, false)
	fau := mk(true, true, false)
	p, err := RelativeDeviation(nom, fau, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rel[0] != 0 {
		t.Errorf("both valid identical: %g", p.Rel[0])
	}
	if !math.IsInf(p.Rel[1], 1) {
		t.Errorf("one invalid: %g, want +Inf", p.Rel[1])
	}
	if p.Rel[2] != 0 {
		t.Errorf("both invalid: %g, want 0", p.Rel[2])
	}
}

func TestMeasurementFloorSuppressesStopband(t *testing.T) {
	// A fault that only changes the deep stopband must be invisible when
	// the deviation falls under the measurement floor.
	nom := &Response{
		Freqs: []float64{1, 2},
		H:     []complex128{1, 1e-9},
		Valid: []bool{true, true},
	}
	fau := &Response{
		Freqs: []float64{1, 2},
		H:     []complex128{1, 2e-9}, // 100% relative change, far below floor
		Valid: []bool{true, true},
	}
	p, err := RelativeDeviation(nom, fau, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rel[1] != 0 {
		t.Fatalf("sub-floor deviation = %g, want 0", p.Rel[1])
	}
	// With the floor disabled the same point is wildly deviating.
	p, err = RelativeDeviation(nom, fau, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rel[1] < 0.9 {
		t.Fatalf("unfloored deviation = %g, want ≈1", p.Rel[1])
	}
}

func TestSweepErrors(t *testing.T) {
	if _, err := Sweep(rcLowpass(), SweepSpec{StartHz: -1, StopHz: 1, Points: 5}); err == nil {
		t.Fatal("bad spec accepted")
	}
	noIn := circuit.New("x")
	noIn.R("R1", "a", "0", 1)
	if _, err := Sweep(noIn, SweepSpec{StartHz: 1, StopHz: 10, Points: 3}); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestReferenceRegionNotch(t *testing.T) {
	// Buffered twin-T notch at 1 kHz: no outer corners — the region must
	// anchor on the notch.
	c := circuit.New("notch")
	cv := 1e-9
	r := 1 / (2 * math.Pi * 1e3 * cv)
	c.Cap("C1", "in", "x", cv)
	c.Cap("C2", "x", "mid", cv)
	c.R("R3", "x", "0", r/2)
	c.R("R1", "in", "y", r)
	c.R("R2", "y", "mid", r)
	c.Cap("C3", "y", "0", 2*cv)
	c.OA("OP1", "mid", "out", "out")
	c.Input, c.Output = "in", "out"
	reg, err := ReferenceRegion(c, SweepSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Contains(1e3) {
		t.Fatalf("region %v misses the notch", reg)
	}
	if d := reg.Decades(); d < 3 || d > 5 {
		t.Fatalf("region width = %g decades", d)
	}
}

func TestReferenceRegionFlat(t *testing.T) {
	// A purely resistive divider is flat: the region falls back to the
	// whole probe.
	c := circuit.New("flat")
	c.R("R1", "in", "out", 1e3)
	c.R("R2", "out", "0", 1e3)
	c.Input, c.Output = "in", "out"
	probe := SweepSpec{StartHz: 1, StopHz: 1e6, Points: 61}
	reg, err := ReferenceRegion(c, probe)
	if err != nil {
		t.Fatal(err)
	}
	if reg.LoHz != probe.StartHz || reg.HiHz != probe.StopHz {
		t.Fatalf("flat region = %v, want the probe bounds", reg)
	}
}

func TestResponseValidCounts(t *testing.T) {
	r := &Response{
		Freqs: []float64{1, 2, 3, 4},
		H:     make([]complex128, 4),
		Valid: []bool{true, false, true, false},
	}
	if r.ValidCount() != 2 || r.InvalidCount() != 2 {
		t.Fatalf("valid/invalid = %d/%d, want 2/2", r.ValidCount(), r.InvalidCount())
	}
	if r.AllValid() {
		t.Fatal("AllValid true with invalid points")
	}
	r.Valid = []bool{true, true, true, true}
	if !r.AllValid() || r.InvalidCount() != 0 {
		t.Fatal("AllValid false on a fully valid response")
	}
}

func TestClassifyError(t *testing.T) {
	cases := []struct {
		err  error
		want ErrorClass
	}{
		{nil, ClassNone},
		{numeric.ErrSingular, ClassSingular},
		{fmt.Errorf("wrap: %w", numeric.ErrSingular), ClassSingular},
		{mna.ErrUnsupported, ClassUnsupported},
		{circuit.ErrInvalid, ClassInvalid},
		{ErrBadSweep, ClassInvalid},
		{errors.New("anything else"), ClassOther},
	}
	for _, c := range cases {
		if got := ClassifyError(c.err); got != c.want {
			t.Errorf("ClassifyError(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	names := map[ErrorClass]string{
		ClassNone: "none", ClassSingular: "singular", ClassUnsupported: "unsupported",
		ClassInvalid: "invalid", ClassOther: "other",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
}

func TestRetrySingularPointsRecovers(t *testing.T) {
	spec := SweepSpec{StartHz: 100, StopHz: 1e4, Points: 11}
	resp, err := Sweep(rcLowpass(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// Manufacture two "singular" points on a healthy circuit: a ppm-scale
	// jitter must recover both with the correct magnitudes.
	truth := []complex128{resp.H[3], resp.H[7]}
	resp.Valid[3], resp.Valid[7] = false, false
	resp.H[3], resp.H[7] = 0, 0
	recovered, solves, err := RetrySingularPoints(rcLowpass(), resp, 3)
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 2 {
		t.Fatalf("recovered = %d, want 2", recovered)
	}
	if solves != 2 {
		t.Fatalf("solves = %d, want 2 (healthy points recover on the first offset)", solves)
	}
	if !resp.AllValid() {
		t.Fatal("response still has invalid points")
	}
	for k, i := range []int{3, 7} {
		if math.Abs(cmplx.Abs(resp.H[i])-cmplx.Abs(truth[k]))/cmplx.Abs(truth[k]) > 1e-4 {
			t.Fatalf("point %d recovered to %v, nominal %v", i, resp.H[i], truth[k])
		}
	}
}

func TestRetrySingularPointsNoOp(t *testing.T) {
	spec := SweepSpec{StartHz: 100, StopHz: 1e4, Points: 5}
	resp, err := Sweep(rcLowpass(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// Fully valid response: nothing to do regardless of attempts.
	if rec, solves, err := RetrySingularPoints(rcLowpass(), resp, 3); rec != 0 || solves != 0 || err != nil {
		t.Fatalf("valid response retried: %d/%d/%v", rec, solves, err)
	}
	// attempts <= 0 is an explicit no-op even with invalid points.
	resp.Valid[0] = false
	if rec, solves, err := RetrySingularPoints(rcLowpass(), resp, 0); rec != 0 || solves != 0 || err != nil {
		t.Fatalf("attempts=0 retried: %d/%d/%v", rec, solves, err)
	}
}

func TestRetrySingularPointsClampsAttempts(t *testing.T) {
	// An unsolvable circuit consumes the full (clamped) jitter schedule
	// per point and recovers nothing.
	c := circuit.New("conflict")
	c.V("V1", "x", "0", 1)
	c.R("R1", "in", "m", 1e3)
	c.R("R2", "m", "x", 1e3)
	c.OA("OP1", "0", "m", "x")
	c.Input, c.Output = "in", "x"
	resp, err := Sweep(c, SweepSpec{StartHz: 100, StopHz: 1e4, Points: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resp.InvalidCount() != 4 {
		t.Fatalf("invalid = %d, want 4", resp.InvalidCount())
	}
	recovered, solves, err := RetrySingularPoints(c, resp, 100)
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 0 {
		t.Fatalf("recovered %d points of an unsolvable circuit", recovered)
	}
	if solves != 4*MaxSingularRetries {
		t.Fatalf("solves = %d, want %d (clamped schedule)", solves, 4*MaxSingularRetries)
	}
}
