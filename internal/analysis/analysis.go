// Package analysis provides frequency-domain analysis on top of the MNA
// engine: frequency sweeps, transfer-function responses, corner detection,
// the reference frequency region Ω_reference of the paper (§2, Definition
// 2) and relative deviation profiles between nominal and faulty responses.
package analysis

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/cmplx"

	"analogdft/internal/circuit"
	"analogdft/internal/mna"
	"analogdft/internal/numeric"
)

// ErrBadSweep is returned for malformed sweep specifications.
var ErrBadSweep = errors.New("analysis: bad sweep specification")

// ErrAllInvalid flags a sweep in which no grid point solved: the response
// carries no information, and any deviation profile computed against it is
// identically zero — a silently wrong "nothing detectable" answer. Callers
// that tolerate isolated invalid points must still treat an all-invalid
// response as a failure.
var ErrAllInvalid = errors.New("analysis: sweep has no valid points")

// ErrorClass buckets simulation failures so error policies can react
// differently to a singular operating point (often an isolated numerical
// artifact, worth retrying) versus a structurally broken circuit.
type ErrorClass int

// Error classes, from ClassifyError.
const (
	// ClassNone is the class of a nil error.
	ClassNone ErrorClass = iota
	// ClassSingular is a singular MNA system (numeric.ErrSingular),
	// possibly at a single frequency.
	ClassSingular
	// ClassUnsupported is a component the engine cannot stamp
	// (mna.ErrUnsupported).
	ClassUnsupported
	// ClassInvalid is a malformed circuit or sweep specification.
	ClassInvalid
	// ClassOther is any other failure.
	ClassOther
)

// String implements fmt.Stringer.
func (c ErrorClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassSingular:
		return "singular"
	case ClassUnsupported:
		return "unsupported"
	case ClassInvalid:
		return "invalid"
	default:
		return "other"
	}
}

// ClassifyError buckets a sweep or solve failure.
func ClassifyError(err error) ErrorClass {
	switch {
	case err == nil:
		return ClassNone
	case errors.Is(err, numeric.ErrSingular):
		return ClassSingular
	case errors.Is(err, mna.ErrUnsupported):
		return ClassUnsupported
	case errors.Is(err, circuit.ErrInvalid), errors.Is(err, ErrBadSweep):
		return ClassInvalid
	default:
		return ClassOther
	}
}

// SweepSpec describes a logarithmic frequency sweep.
type SweepSpec struct {
	StartHz float64
	StopHz  float64
	Points  int
}

// Validate checks the spec.
func (s SweepSpec) Validate() error {
	if s.StartHz <= 0 || s.StopHz <= s.StartHz {
		return fmt.Errorf("%w: range [%g, %g]", ErrBadSweep, s.StartHz, s.StopHz)
	}
	if s.Points < 2 {
		return fmt.Errorf("%w: %d points", ErrBadSweep, s.Points)
	}
	return nil
}

// Grid returns the log-spaced frequency grid.
func (s SweepSpec) Grid() []float64 {
	return numeric.LogSpace(s.StartHz, s.StopHz, s.Points)
}

// DefaultProbe is the wide exploratory sweep used to locate a circuit's
// interesting frequency region before constructing Ω_reference.
var DefaultProbe = SweepSpec{StartHz: 1e-2, StopHz: 1e9, Points: 221}

// Response is a sampled transfer function H(jω) = V(out)/V(stimulus).
type Response struct {
	Freqs []float64
	H     []complex128
	// Valid[i] is false when the solve at Freqs[i] failed (singular
	// system); H[i] is meaningless there.
	Valid []bool
}

// Len returns the number of points.
func (r *Response) Len() int { return len(r.Freqs) }

// AllValid reports whether every point solved.
func (r *Response) AllValid() bool {
	return r.InvalidCount() == 0
}

// ValidCount returns the number of grid points that solved.
func (r *Response) ValidCount() int {
	n := 0
	for _, v := range r.Valid {
		if v {
			n++
		}
	}
	return n
}

// InvalidCount returns the number of singular (unsolved) grid points.
func (r *Response) InvalidCount() int {
	return len(r.Valid) - r.ValidCount()
}

// Mag returns |H| per point (NaN where invalid).
func (r *Response) Mag() []float64 {
	out := make([]float64, r.Len())
	for i, h := range r.H {
		if !r.Valid[i] {
			out[i] = math.NaN()
			continue
		}
		out[i] = cmplx.Abs(h)
	}
	return out
}

// MagDb returns |H| in dB per point (NaN where invalid).
func (r *Response) MagDb() []float64 {
	out := r.Mag()
	for i, m := range out {
		if math.IsNaN(m) {
			continue
		}
		out[i] = numeric.Db(m)
	}
	return out
}

// PhaseDeg returns the phase in degrees per point (NaN where invalid).
func (r *Response) PhaseDeg() []float64 {
	out := make([]float64, r.Len())
	for i, h := range r.H {
		if !r.Valid[i] {
			out[i] = math.NaN()
			continue
		}
		out[i] = cmplx.Phase(h) * 180 / math.Pi
	}
	return out
}

// PeakMag returns the largest valid magnitude and its frequency; ok is
// false when no point is valid.
func (r *Response) PeakMag() (mag, freqHz float64, ok bool) {
	mag = -1.0
	for i, h := range r.H {
		if !r.Valid[i] {
			continue
		}
		if a := cmplx.Abs(h); a > mag {
			mag, freqHz, ok = a, r.Freqs[i], true
		}
	}
	if !ok {
		return 0, 0, false
	}
	return mag, freqHz, true
}

// WriteCSV emits "freq_hz,mag,mag_db,phase_deg,valid" rows.
func (r *Response) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "freq_hz,mag,mag_db,phase_deg,valid"); err != nil {
		return err
	}
	mag, db, ph := r.Mag(), r.MagDb(), r.PhaseDeg()
	for i := range r.Freqs {
		if _, err := fmt.Fprintf(w, "%.9g,%.9g,%.6g,%.6g,%t\n",
			r.Freqs[i], mag[i], db[i], ph[i], r.Valid[i]); err != nil {
			return err
		}
	}
	return nil
}

// Sweep drives the circuit's input with a unit AC source and samples the
// transfer function to the output node over the spec's grid. Singular
// points are recorded as invalid rather than failing the whole sweep (a
// test configuration can be unusable at isolated frequencies). One-shot
// callers get a throwaway Engine; repeated sweeps of the same
// configuration should build an Engine once and call its SweepGrid.
func Sweep(ckt *circuit.Circuit, spec SweepSpec) (*Response, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	e, err := NewEngine(ckt)
	if err != nil {
		return nil, err
	}
	return e.SweepGrid(spec.Grid())
}

// SweepOnGrid is Sweep over an explicit frequency grid.
func SweepOnGrid(ckt *circuit.Circuit, grid []float64) (*Response, error) {
	e, err := NewEngine(ckt)
	if err != nil {
		return nil, err
	}
	return e.SweepGrid(grid)
}

// singularJitter is the deterministic schedule of relative frequency
// offsets used to re-solve singular grid points: a system that is singular
// only at an exact pole/zero cancellation solves a fraction of a ppm away,
// and the detectability measure cannot resolve such a displacement. The
// schedule is fixed (no randomness) so retried results are identical
// across runs and worker counts.
var singularJitter = []float64{1e-7, -1e-7, 3e-6, -3e-6, 1e-4}

// MaxSingularRetries is the largest useful attempts value for
// RetrySingularPoints (the length of the jitter schedule).
const MaxSingularRetries = 5

// RetrySingularPoints re-attempts the invalid points of resp, in place, at
// deterministically jittered frequencies — up to attempts offsets per
// point, clamped to MaxSingularRetries. ckt must be the (undriven) circuit
// that produced resp. It returns the number of points recovered and the
// number of extra solves performed. Failures other than a singular system
// abort the retry. Callers that already hold an Engine for the
// configuration should use Engine.RetrySingularPoints directly and skip
// the rebuild this wrapper pays.
func RetrySingularPoints(ckt *circuit.Circuit, resp *Response, attempts int) (recovered, solves int, err error) {
	if attempts <= 0 || resp.InvalidCount() == 0 {
		return 0, 0, nil
	}
	e, err := NewEngine(ckt)
	if err != nil {
		return 0, 0, err
	}
	return e.RetrySingularPoints(resp, attempts)
}

// Region is a frequency interval [LoHz, HiHz].
type Region struct {
	LoHz, HiHz float64
}

// Validate checks the region.
func (r Region) Validate() error {
	if r.LoHz <= 0 || r.HiHz <= r.LoHz {
		return fmt.Errorf("%w: region [%g, %g]", ErrBadSweep, r.LoHz, r.HiHz)
	}
	return nil
}

// Decades returns the width of the region in decades.
func (r Region) Decades() float64 { return numeric.Decades(r.LoHz, r.HiHz) }

// Contains reports whether f lies in the region (inclusive).
func (r Region) Contains(f float64) bool { return f >= r.LoHz && f <= r.HiHz }

// Spec converts the region into a sweep with the given number of points.
func (r Region) Spec(points int) SweepSpec {
	return SweepSpec{StartHz: r.LoHz, StopHz: r.HiHz, Points: points}
}

// String implements fmt.Stringer.
func (r Region) String() string {
	return fmt.Sprintf("[%.4g Hz, %.4g Hz]", r.LoHz, r.HiHz)
}

// CornerFrequencies returns the outermost −3 dB crossings of a response
// relative to its peak: lo is the lowest frequency at which the magnitude
// is within 3 dB of the peak, hi the highest. ok is false when the
// response has no valid peak.
func CornerFrequencies(r *Response) (lo, hi float64, ok bool) {
	peak, _, ok := r.PeakMag()
	if !ok || peak == 0 {
		return 0, 0, false
	}
	threshold := peak / math.Sqrt2
	lo, hi = math.Inf(1), math.Inf(-1)
	for i, h := range r.H {
		if !r.Valid[i] {
			continue
		}
		if cmplx.Abs(h) >= threshold {
			if r.Freqs[i] < lo {
				lo = r.Freqs[i]
			}
			if r.Freqs[i] > hi {
				hi = r.Freqs[i]
			}
		}
	}
	if math.IsInf(lo, 1) {
		return 0, 0, false
	}
	return lo, hi, true
}

// ReferenceRegion constructs Ω_reference for a circuit per §2 of the paper:
// the region is centred on the circuit's passband and spans two decades
// into the stopband on each side — "about two orders of magnitude in the
// passband and two orders of magnitude in the stopband". Concretely, with
// passband edges [fl, fh] (the −3 dB corners of the nominal response found
// with a wide probe sweep):
//
//	Ω_reference = [fl/100, fh·100]
//
// clipped to the probe range. For a lowpass (passband touching the probe's
// low edge) this degenerates to [fh/100, fh·100]: two decades of passband
// plus two decades of stopband, as in the paper.
func ReferenceRegion(ckt *circuit.Circuit, probe SweepSpec) (Region, error) {
	if probe.Points == 0 {
		probe = DefaultProbe
	}
	resp, err := Sweep(ckt, probe)
	if err != nil {
		return Region{}, err
	}
	fl, fh, ok := CornerFrequencies(resp)
	if !ok {
		return Region{}, fmt.Errorf("analysis: circuit %q has no measurable passband", ckt.Name)
	}
	lo := fl / 100
	hi := fh * 100
	// A passband that touches the probe edge means the true corner is
	// outside the probe; treat the opposite corner as the anchor.
	const edgeSlack = 1.01
	if fl <= probe.StartHz*edgeSlack {
		lo = fh / 100
	}
	if fh >= probe.StopHz/edgeSlack {
		hi = fl * 100
	}
	if lo < probe.StartHz {
		lo = probe.StartHz
	}
	if hi > probe.StopHz {
		hi = probe.StopHz
	}
	if hi <= lo {
		// The passband spans the whole probe: an all-pass-like or notch
		// response with no outer corners. Anchor on the deepest in-band
		// feature (the notch) when one exists, else measure the whole
		// probe (a genuinely flat response is observable everywhere).
		peak, _, _ := resp.PeakMag()
		minMag, minFreq := math.Inf(1), 0.0
		for i, h := range resp.H {
			if !resp.Valid[i] {
				continue
			}
			if a := cmplx.Abs(h); a < minMag {
				minMag, minFreq = a, resp.Freqs[i]
			}
		}
		if minFreq > 0 && minMag < peak/math.Sqrt2 {
			lo, hi = minFreq/100, minFreq*100
			if lo < probe.StartHz {
				lo = probe.StartHz
			}
			if hi > probe.StopHz {
				hi = probe.StopHz
			}
		} else {
			lo, hi = probe.StartHz, probe.StopHz
		}
	}
	if hi <= lo {
		return Region{}, fmt.Errorf("analysis: degenerate reference region for %q", ckt.Name)
	}
	return Region{LoHz: lo, HiHz: hi}, nil
}

// DeviationProfile is the pointwise relative deviation |ΔT/T| between a
// faulty and a nominal response on a shared grid, as used by Definition 1
// of the paper.
type DeviationProfile struct {
	Freqs []float64
	// Rel[i] = | |Hf| − |Hn| | / |Hn| at Freqs[i]; +Inf when exactly one of
	// the responses is unmeasurable at that point, 0 when both are.
	Rel []float64
}

// RelativeDeviation computes the deviation profile of faulty vs nominal.
// The two responses must share a frequency grid.
//
// measFloor is the smallest nominal magnitude considered measurable,
// expressed as a fraction of the nominal peak (e.g. 1e-4 ≈ −80 dB). Points
// where both responses are below the floor contribute zero deviation: a
// tester cannot resolve changes under its measurement floor. Pass 0 to
// disable the floor.
func RelativeDeviation(nominal, faulty *Response, measFloor float64) (*DeviationProfile, error) {
	if nominal.Len() != faulty.Len() {
		return nil, fmt.Errorf("%w: grids differ (%d vs %d points)", ErrBadSweep, nominal.Len(), faulty.Len())
	}
	for i := range nominal.Freqs {
		if nominal.Freqs[i] != faulty.Freqs[i] {
			return nil, fmt.Errorf("%w: grids differ at point %d", ErrBadSweep, i)
		}
	}
	peak, _, okPeak := nominal.PeakMag()
	floorAbs := 0.0
	if okPeak && measFloor > 0 {
		floorAbs = peak * measFloor
	}
	p := &DeviationProfile{
		Freqs: append([]float64(nil), nominal.Freqs...),
		Rel:   make([]float64, nominal.Len()),
	}
	for i := range nominal.Freqs {
		nOK, fOK := nominal.Valid[i], faulty.Valid[i]
		switch {
		case !nOK && !fOK:
			p.Rel[i] = 0
		case nOK != fOK:
			p.Rel[i] = math.Inf(1)
		default:
			mn := cmplx.Abs(nominal.H[i])
			mf := cmplx.Abs(faulty.H[i])
			if mn <= floorAbs && mf <= floorAbs {
				p.Rel[i] = 0
				continue
			}
			den := mn
			if den < floorAbs {
				den = floorAbs
			}
			if den == 0 {
				p.Rel[i] = math.Inf(1)
				continue
			}
			p.Rel[i] = math.Abs(mf-mn) / den
		}
	}
	return p, nil
}

// ExceedsAt returns the indices where the deviation exceeds tolerance eps.
func (p *DeviationProfile) ExceedsAt(eps float64) []int {
	var out []int
	for i, r := range p.Rel {
		if r > eps {
			out = append(out, i)
		}
	}
	return out
}

// MaxRel returns the largest relative deviation in the profile (0 for an
// empty profile).
func (p *DeviationProfile) MaxRel() float64 {
	max := 0.0
	for _, r := range p.Rel {
		if r > max {
			max = r
		}
	}
	return max
}

// mathSqrt is math.Sqrt, aliased here so noise.go stays self-contained.
func mathSqrt(v float64) float64 { return math.Sqrt(v) }

// GroupDelay returns the group delay τg(ω) = −dφ/dω in seconds at each
// grid point, computed by central differences on the unwrapped phase of a
// response (forward/backward differences at the edges; NaN where the
// response is invalid).
func GroupDelay(r *Response) []float64 {
	out := make([]float64, r.Len())
	phase := make([]float64, r.Len())
	for i, h := range r.H {
		if !r.Valid[i] {
			phase[i] = math.NaN()
			continue
		}
		phase[i] = cmplx.Phase(h)
	}
	// Unwrap.
	for i := 1; i < len(phase); i++ {
		if math.IsNaN(phase[i]) || math.IsNaN(phase[i-1]) {
			continue
		}
		for phase[i]-phase[i-1] > math.Pi {
			phase[i] -= 2 * math.Pi
		}
		for phase[i]-phase[i-1] < -math.Pi {
			phase[i] += 2 * math.Pi
		}
	}
	dphi := func(i, j int) float64 {
		dw := 2 * math.Pi * (r.Freqs[j] - r.Freqs[i])
		if dw == 0 || math.IsNaN(phase[i]) || math.IsNaN(phase[j]) {
			return math.NaN()
		}
		return -(phase[j] - phase[i]) / dw
	}
	for i := range out {
		switch {
		case r.Len() < 2:
			out[i] = math.NaN()
		case i == 0:
			out[i] = dphi(0, 1)
		case i == r.Len()-1:
			out[i] = dphi(r.Len()-2, r.Len()-1)
		default:
			out[i] = dphi(i-1, i+1)
		}
	}
	return out
}
