package analysis

import (
	"errors"
	"math/cmplx"
	"testing"

	"analogdft/internal/fault"
)

func TestEngineSweepGridMatchesSweep(t *testing.T) {
	spec := SweepSpec{StartHz: 10, StopHz: 1e6, Points: 61}
	want, err := Sweep(rcLowpass(), spec)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(rcLowpass())
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.SweepGrid(spec.Grid())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.H {
		if got.H[i] != want.H[i] || got.Valid[i] != want.Valid[i] {
			t.Fatalf("point %d: engine %v vs Sweep %v", i, got.H[i], want.H[i])
		}
	}
	if _, err := e.SweepGrid(nil); !errors.Is(err, ErrBadSweep) {
		t.Fatalf("empty grid err = %v", err)
	}
}

func TestEngineSweepFaultMatchesClone(t *testing.T) {
	grid := SweepSpec{StartHz: 10, StopHz: 1e6, Points: 41}.Grid()
	f := fault.Fault{ID: "fR1", Component: "R1", Kind: fault.Deviation, Factor: 1.3}

	e, err := NewEngine(rcLowpass())
	if err != nil {
		t.Fatal(err)
	}
	nominalBefore, err := e.SweepGrid(grid)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.SweepFault(f, grid)
	if err != nil {
		t.Fatal(err)
	}

	faulty, err := f.Apply(rcLowpass())
	if err != nil {
		t.Fatal(err)
	}
	want, err := SweepOnGrid(faulty, grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.H {
		if d := cmplx.Abs(got.H[i] - want.H[i]); d > 1e-12*(1+cmplx.Abs(want.H[i])) {
			t.Fatalf("point %d: patched %v vs clone %v (|Δ|=%g)", i, got.H[i], want.H[i], d)
		}
	}

	// SweepFault must leave the engine exactly nominal: a repeat nominal
	// sweep is bit-identical (Reset restores stamp snapshots bitwise).
	nominalAfter, err := e.SweepGrid(grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range nominalBefore.H {
		if nominalAfter.H[i] != nominalBefore.H[i] {
			t.Fatalf("point %d: nominal drifted after SweepFault: %v != %v",
				i, nominalAfter.H[i], nominalBefore.H[i])
		}
	}
}

func TestEngineApplyFaultNotPatchable(t *testing.T) {
	e, err := NewEngine(rcLowpass())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []fault.Fault{
		{ID: "o", Component: "R1", Kind: fault.Open},
		{ID: "s", Component: "C1", Kind: fault.Short},
	} {
		if err := e.ApplyFault(f); !errors.Is(err, fault.ErrNotPatchable) {
			t.Errorf("%s fault: err = %v, want ErrNotPatchable", f.Kind, err)
		}
	}
	// The failed applications must not have disturbed the engine.
	grid := []float64{100, rcCorner, 1e5}
	got, err := e.SweepGrid(grid)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SweepOnGrid(rcLowpass(), grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.H {
		if got.H[i] != want.H[i] {
			t.Fatalf("point %d: engine no longer nominal: %v != %v", i, got.H[i], want.H[i])
		}
	}
}

func TestEngineRetrySingularPoints(t *testing.T) {
	e, err := NewEngine(rcLowpass())
	if err != nil {
		t.Fatal(err)
	}
	grid := []float64{100, 1e3, 1e4}
	resp, err := e.SweepGrid(grid)
	if err != nil {
		t.Fatal(err)
	}
	// Forge an invalid point; the retry must recover it on the engine's
	// own system without rebuilding anything.
	resp.Valid[1] = false
	resp.H[1] = 0
	recovered, solves, err := e.RetrySingularPoints(resp, 3)
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 1 || solves != 1 {
		t.Fatalf("recovered = %d, solves = %d; want 1, 1", recovered, solves)
	}
	if !resp.AllValid() {
		t.Fatal("point not marked valid after recovery")
	}
	// No-op cases.
	if r, s, err := e.RetrySingularPoints(resp, 3); err != nil || r != 0 || s != 0 {
		t.Fatalf("no-invalid retry = (%d, %d, %v)", r, s, err)
	}
	resp.Valid[0] = false
	if r, s, err := e.RetrySingularPoints(resp, 0); err != nil || r != 0 || s != 0 {
		t.Fatalf("zero-attempts retry = (%d, %d, %v)", r, s, err)
	}
}
