package analysis

import "analogdft/internal/obs"

// Engine instrumentation. engine_patch_total counts every fault applied
// to a live system as an in-place stamp patch; its companion
// engine_fallback_total lives in the detect package, which owns the
// fall-back-to-clone decision. The stamp-reuse hit rate underneath both
// is mna_stamp_reuse_total / (mna_stamp_reuse_total +
// mna_stamp_rebuild_total).
var ePatches = obs.Reg().Counter("engine_patch_total",
	"faults applied to a live system as in-place stamp patches (no clone, no rebuild)")
