package analysis

import "analogdft/internal/obs"

// Engine instrumentation. engine_patch_total counts every fault applied
// to a live system as an in-place stamp patch; its companion
// engine_fallback_total lives in the detect package, which owns the
// fall-back-to-clone decision. The stamp-reuse hit rate underneath both
// is mna_stamp_reuse_total / (mna_stamp_reuse_total +
// mna_stamp_rebuild_total).
var ePatches = obs.Reg().Counter("engine_patch_total",
	"faults applied to a live system as in-place stamp patches (no clone, no rebuild)")

// Low-rank (Sherman–Morrison) path instrumentation. Solve and refactor
// counts are properties of the cell set and the math — identical for any
// worker count — so they stay always-live; the number of nominal grid
// factorizations depends on how many engines the worker pool lazily
// instantiates, which varies with scheduling, so that counter is gated on
// obs.TimingOn() like mna_stamp_rebuild_total.
var (
	eLowRankSolves = obs.Reg().Counter("engine_lowrank_solve_total",
		"rank-1 Sherman–Morrison fault solves against a cached nominal factorization (O(n²), no refactorization)")
	eLowRankRefactors = obs.Reg().Counter("engine_lowrank_refactor_total",
		"low-rank sweep points answered by a full patched refactorization (singular nominal point or singular rank-1 update)")
	eLowRankFactors = obs.Reg().Counter("engine_lowrank_factor_total",
		"nominal grid-point factorizations cached for the low-rank path (timing on only; engine count is schedule-dependent)")
)
