package analysis

import (
	"errors"
	"math/cmplx"
	"testing"

	"analogdft/internal/circuit"
	"analogdft/internal/fault"
	"analogdft/internal/mna"
)

// lrLadder returns an RLC ladder with a VCVS stage, so the low-rank sweep
// is exercised across G-type and C-type deltas on a circuit with branch
// unknowns.
func lrLadder() *circuit.Circuit {
	c := circuit.New("lrladder")
	c.R("R1", "in", "n1", 1e3)
	c.Cap("C1", "n1", "0", 100e-9)
	c.L("L1", "n1", "n2", 10e-3)
	c.R("R2", "n2", "0", 2e3)
	c.E("E1", "out", "0", "n2", "0", 2)
	c.R("RL", "out", "0", 1e3)
	c.Input, c.Output = "in", "out"
	return c
}

// TestSweepLowRankMatchesSweepFault checks the Sherman–Morrison path
// against the in-place patch path on every rank-1-patchable component
// kind the ladder offers, and that the engine stays exactly nominal.
func TestSweepLowRankMatchesSweepFault(t *testing.T) {
	grid := SweepSpec{StartHz: 10, StopHz: 1e6, Points: 41}.Grid()
	e, err := NewEngine(lrLadder())
	if err != nil {
		t.Fatal(err)
	}
	nominalBefore, err := e.SweepGrid(grid)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []fault.Fault{
		{ID: "fR1", Component: "R1", Kind: fault.Deviation, Factor: 1.3},
		{ID: "fC1", Component: "C1", Kind: fault.Deviation, Factor: 0.7},
		{ID: "fL1", Component: "L1", Kind: fault.Deviation, Factor: 1.5},
		{ID: "fE1", Component: "E1", Kind: fault.Deviation, Factor: 0.5},
	} {
		t.Run(f.ID, func(t *testing.T) {
			lf, err := e.PrepareLowRank(f)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.SweepLowRank(lf, grid)
			if err != nil {
				t.Fatal(err)
			}
			want, err := e.SweepFault(f, grid)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.H {
				if got.Valid[i] != want.Valid[i] {
					t.Fatalf("point %d: validity %v vs %v", i, got.Valid[i], want.Valid[i])
				}
				if d := cmplx.Abs(got.H[i] - want.H[i]); d > 1e-11*(1+cmplx.Abs(want.H[i])) {
					t.Fatalf("point %d: lowrank %v vs patched %v (|Δ|=%g)", i, got.H[i], want.H[i], d)
				}
			}
		})
	}
	// The cached factorizations must not have drifted the nominal state.
	nominalAfter, err := e.SweepGrid(grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range nominalBefore.H {
		if nominalAfter.H[i] != nominalBefore.H[i] {
			t.Fatalf("point %d: nominal drifted after low-rank sweeps: %v != %v",
				i, nominalAfter.H[i], nominalBefore.H[i])
		}
	}
}

// TestSweepLowRankReusesGridCache checks the factorization cache survives
// across faults on the same grid and is rebuilt on a different grid.
func TestSweepLowRankReusesGridCache(t *testing.T) {
	e, err := NewEngine(rcLowpass())
	if err != nil {
		t.Fatal(err)
	}
	grid := []float64{100, rcCorner, 1e5}
	lf, err := e.PrepareLowRank(fault.Fault{ID: "f", Component: "R1", Kind: fault.Deviation, Factor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SweepLowRank(lf, grid); err != nil {
		t.Fatal(err)
	}
	first := e.lr
	if _, err := e.SweepLowRank(lf, grid); err != nil {
		t.Fatal(err)
	}
	if e.lr != first {
		t.Fatal("same grid rebuilt the factorization cache")
	}
	if _, err := e.SweepLowRank(lf, []float64{10, 1e3}); err != nil {
		t.Fatal(err)
	}
	if e.lr == first {
		t.Fatal("different grid did not rebuild the factorization cache")
	}
}

// TestPrepareLowRankFallbackTriggers covers the refusals callers use to
// pick the fallback path: unpatchable fault kinds propagate
// fault.ErrNotPatchable (→ clone path), patchable faults whose delta is
// not rank-1 propagate mna.ErrNotLowRank (→ in-place patch path).
func TestPrepareLowRankFallbackTriggers(t *testing.T) {
	c := circuit.New("fb")
	c.R("R1", "in", "out", 1e3)
	c.Cap("C1", "out", "0", 100e-9)
	c.I("I1", "out", "0", 1e-3)
	c.Input, c.Output = "in", "out"
	e, err := NewEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.PrepareLowRank(fault.Fault{ID: "o", Component: "R1", Kind: fault.Open}); !errors.Is(err, fault.ErrNotPatchable) {
		t.Errorf("open fault: err = %v, want ErrNotPatchable", err)
	}
	if _, err := e.PrepareLowRank(fault.Fault{ID: "i", Component: "I1", Kind: fault.Deviation, Factor: 2}); !errors.Is(err, mna.ErrNotLowRank) {
		t.Errorf("current-source fault: err = %v, want ErrNotLowRank", err)
	}
	// The refusals must leave the engine fully usable on the fast path.
	lf, err := e.PrepareLowRank(fault.Fault{ID: "r", Component: "R1", Kind: fault.Deviation, Factor: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e.SweepLowRank(lf, []float64{100, 1e4})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.AllValid() {
		t.Fatal("rank-1 sweep after refusals produced invalid points")
	}
}

// TestSweepLowRankSingularUpdateFallback drives the Sherman–Morrison
// denominator to exactly zero: on a 1k/1k divider, patching R2 to −1kΩ
// makes the patched matrix singular (det ∝ g1 + g2'), while the nominal
// factors fine. The sweep must detect the singular update, fall back to a
// full patched refactorization, find that singular too, and leave the
// points invalid — exactly the reference path's verdict. The fault is
// hand-built because fault.Validate (correctly) refuses negative factors.
func TestSweepLowRankSingularUpdateFallback(t *testing.T) {
	c := circuit.New("div")
	c.R("R1", "in", "out", 1e3)
	c.R("R2", "out", "0", 1e3)
	c.Input, c.Output = "in", "out"
	e, err := NewEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := e.sys.RankOneDelta("R2", -1e3)
	if err != nil {
		t.Fatal(err)
	}
	lf := &LowRankFault{Component: "R2", Value: -1e3, delta: delta}
	grid := []float64{100, 1e3, 1e4}
	resp, err := e.SweepLowRank(lf, grid)
	if err != nil {
		t.Fatal(err)
	}
	if n := resp.ValidCount(); n != 0 {
		t.Fatalf("%d points valid, want 0 (patched divider is singular at every frequency)", n)
	}
	// The engine must be nominal again after the fallback's patch.
	if e.sys.Patched() {
		t.Fatal("fallback left a live patch")
	}
	nom, err := e.SweepGrid(grid)
	if err != nil {
		t.Fatal(err)
	}
	if !nom.AllValid() {
		t.Fatal("nominal sweep invalid after fallback")
	}
}

// TestSweepLowRankSingularNominalPoint exercises the nil-solver fallback:
// at 0 Hz the capacitive divider hanging off the output has a floating
// internal node (an all-zero row), so the nominal factorization fails at
// that one grid point while the rest of the grid is fine. The low-rank
// sweep must route that point through the full patched solve and agree
// with SweepFault on both validity and values.
func TestSweepLowRankSingularNominalPoint(t *testing.T) {
	c := rcLowpass()
	c.Cap("CX", "out", "n2", 10e-9)
	c.Cap("CY", "n2", "0", 10e-9)
	e, err := NewEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	f := fault.Fault{ID: "fR1", Component: "R1", Kind: fault.Deviation, Factor: 1.3}
	grid := []float64{0, rcCorner, 1e5}
	lf, err := e.PrepareLowRank(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.SweepLowRank(lf, grid)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.SweepFault(f, grid)
	if err != nil {
		t.Fatal(err)
	}
	if got.Valid[0] || !got.Valid[1] || !got.Valid[2] {
		t.Fatalf("validity = %v, want [false true true]", got.Valid)
	}
	for i := range want.H {
		if got.Valid[i] != want.Valid[i] {
			t.Fatalf("point %d: validity %v vs %v", i, got.Valid[i], want.Valid[i])
		}
		if d := cmplx.Abs(got.H[i] - want.H[i]); d > 1e-11*(1+cmplx.Abs(want.H[i])) {
			t.Fatalf("point %d: lowrank %v vs patched %v (|Δ|=%g)", i, got.H[i], want.H[i], d)
		}
	}
}

// TestSweepLowRankRejectsBadState pins the guard rails: an empty grid and
// a patched system are ErrBadSweep.
func TestSweepLowRankRejectsBadState(t *testing.T) {
	e, err := NewEngine(rcLowpass())
	if err != nil {
		t.Fatal(err)
	}
	lf, err := e.PrepareLowRank(fault.Fault{ID: "f", Component: "R1", Kind: fault.Deviation, Factor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SweepLowRank(lf, nil); !errors.Is(err, ErrBadSweep) {
		t.Fatalf("empty grid: err = %v, want ErrBadSweep", err)
	}
	if err := e.ApplyFault(fault.Fault{ID: "g", Component: "C1", Kind: fault.Deviation, Factor: 2}); err != nil {
		t.Fatal(err)
	}
	defer e.Reset()
	if _, err := e.SweepLowRank(lf, []float64{100}); !errors.Is(err, ErrBadSweep) {
		t.Fatalf("patched system: err = %v, want ErrBadSweep", err)
	}
}
