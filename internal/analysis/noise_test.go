package analysis

import (
	"math"
	"testing"

	"analogdft/internal/circuit"
	"analogdft/internal/numeric"
)

func TestOutputNoiseRCAnalytic(t *testing.T) {
	// RC lowpass: output noise density = 4kTR / (1 + (f/fc)²);
	// integrated over all frequency: kT/C.
	r, cp := 10e3, 1e-9
	fc := 1 / (2 * math.Pi * r * cp)
	ckt := circuit.New("rc")
	ckt.R("R1", "in", "out", r)
	ckt.Cap("C1", "out", "0", cp)
	ckt.Input, ckt.Output = "in", "out"

	grid := numeric.LogSpace(1, 100*fc, 61)
	ns, err := OutputNoise(ckt, grid, 300)
	if err != nil {
		t.Fatal(err)
	}
	const kT = 1.380649e-23 * 300
	for i, f := range grid {
		want := 4 * kT * r / (1 + (f/fc)*(f/fc))
		if math.Abs(ns.Density[i]-want) > 1e-3*want {
			t.Fatalf("density at %g Hz = %g, want %g", f, ns.Density[i], want)
		}
	}
	// Low-frequency spot value in V/√Hz: √(4kTR) ≈ 12.8 nV/√Hz at 10 kΩ.
	if got := ns.TotalAt(0); math.Abs(got-1.28e-8) > 2e-10 {
		t.Fatalf("spot noise = %g, want ≈1.28e-8", got)
	}
	if len(ns.PerResistor["R1"]) != len(grid) {
		t.Fatal("per-resistor contribution missing")
	}
}

func TestIntegratedNoiseApproachesKTOverC(t *testing.T) {
	// ∫ 4kTR/(1+(f/fc)²) df = 4kTR·fc·(π/2) = kT/C. A dense linear grid
	// out to 50·fc captures ≈98.7% of it.
	r, cp := 10e3, 1e-9
	fc := 1 / (2 * math.Pi * r * cp)
	ckt := circuit.New("rc")
	ckt.R("R1", "in", "out", r)
	ckt.Cap("C1", "out", "0", cp)
	ckt.Input, ckt.Output = "in", "out"

	grid := numeric.LinSpace(1, 50*fc, 4001)
	ns, err := OutputNoise(ckt, grid, 300)
	if err != nil {
		t.Fatal(err)
	}
	got := IntegrateNoise(ns)
	want := math.Sqrt(1.380649e-23 * 300 / cp) // ≈ 2.03 µV
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("integrated noise = %g, want ≈%g (kT/C)", got, want)
	}
	if got >= want {
		t.Fatalf("finite band cannot exceed kT/C: %g vs %g", got, want)
	}
}

func TestOutputNoiseTwoResistors(t *testing.T) {
	// Two equal resistors to ground in parallel at the output: each sees
	// the parallel combination as its transfer impedance. Total density =
	// 2 · 4kT/R · (R/2)² = 2kTR.
	r := 1e3
	ckt := circuit.New("par")
	ckt.R("R1", "out", "0", r)
	ckt.R("R2", "out", "0", r)
	ckt.R("Rin", "in", "out", 1e12) // tie input loosely
	ckt.Input, ckt.Output = "in", "out"
	ns, err := OutputNoise(ckt, []float64{100}, 300)
	if err != nil {
		t.Fatal(err)
	}
	const kT = 1.380649e-23 * 300
	want := 2 * kT * r // ≈ 4kT·(R∥R) with both sources
	// Rin contributes negligibly (1e12 Ω source into ~1 kΩ node).
	if math.Abs(ns.Density[0]-want) > 0.01*want {
		t.Fatalf("density = %g, want %g", ns.Density[0], want)
	}
}

func TestOutputNoiseErrors(t *testing.T) {
	ckt := circuit.New("x")
	ckt.R("R1", "in", "out", 1e3)
	ckt.R("R2", "out", "0", 1e3)
	ckt.Input, ckt.Output = "in", "out"
	if _, err := OutputNoise(ckt, nil, 300); err == nil {
		t.Error("empty grid accepted")
	}
	bad := circuit.New("b")
	bad.R("R1", "in", "out", 0)
	bad.Input, bad.Output = "in", "out"
	if _, err := OutputNoise(bad, []float64{100}, 300); err == nil {
		t.Error("zero resistor accepted")
	}
	noOut := circuit.New("n")
	noOut.R("R1", "in", "x", 1e3)
	if _, err := OutputNoise(noOut, []float64{100}, 300); err == nil {
		t.Error("missing output accepted")
	}
}

func TestGroupDelayRC(t *testing.T) {
	// RC lowpass: τg = RC / (1 + (ωRC)²).
	r, cp := 1e3, 100e-9
	tau := r * cp
	ckt := circuit.New("rc")
	ckt.R("R1", "in", "out", r)
	ckt.Cap("C1", "out", "0", cp)
	ckt.Input, ckt.Output = "in", "out"
	resp, err := Sweep(ckt, SweepSpec{StartHz: 10, StopHz: 100e3, Points: 201})
	if err != nil {
		t.Fatal(err)
	}
	gd := GroupDelay(resp)
	for i, f := range resp.Freqs {
		w := 2 * math.Pi * f
		want := tau / (1 + w*w*tau*tau)
		// Central differences on a log grid: allow a few percent.
		if math.Abs(gd[i]-want) > 0.05*want+1e-9 {
			t.Fatalf("τg(%g Hz) = %g, want %g", f, gd[i], want)
		}
	}
}

func TestGroupDelayDegenerate(t *testing.T) {
	r := &Response{Freqs: []float64{100}, H: []complex128{1}, Valid: []bool{true}}
	gd := GroupDelay(r)
	if !math.IsNaN(gd[0]) {
		t.Fatal("single-point group delay should be NaN")
	}
	r2 := &Response{
		Freqs: []float64{100, 200},
		H:     []complex128{1, 1},
		Valid: []bool{true, false},
	}
	gd = GroupDelay(r2)
	if !math.IsNaN(gd[1]) {
		t.Fatal("invalid-point group delay should be NaN")
	}
}
