package analysis

import (
	"errors"
	"fmt"
	"slices"
	"strconv"

	"analogdft/internal/fault"
	"analogdft/internal/mna"
	"analogdft/internal/numeric"
	"analogdft/internal/obs"
)

// lowRankGrid caches, per grid point, the LU factorization of the nominal
// MNA matrix together with its pre-solved excitation, plus the dense
// rank-1 scratch vectors shared by every fault sweep. Building it costs
// the same O(points·n³) the nominal sweep already pays; afterwards every
// rank-1 fault solves the whole grid in O(points·n²).
type lowRankGrid struct {
	grid    []float64
	solvers []*numeric.LowRankSolver // nil where the nominal matrix is singular
	x       []complex128             // solution scratch shared by every fault sweep

	// Arenas backing the detached sparse factors (one growable segment
	// store per element type); held so the storage lives exactly as long
	// as the solvers addressing it. Unused under the dense layout, whose
	// factors are views into per-grid slabs instead.
	i32Arena  []int32
	cplxArena []complex128
	pivArena  []int
}

// LowRankFault is a fault pre-lowered to the rank-1 matrix delta its
// in-place patch would stamp: PrepareLowRank resolves the patch target
// once, and SweepLowRank then solves every grid point against the cached
// nominal factorizations via Sherman–Morrison. Component and Value are
// retained so the per-point fallback can replay the fault as an ordinary
// SetValue patch when the update is singular.
type LowRankFault struct {
	Component string
	Value     float64
	delta     mna.RankOne
}

// PrepareLowRank lowers the fault to its rank-1 delta without touching the
// live system. Faults that cannot patch at all propagate
// fault.ErrNotPatchable; patchable faults whose stamp delta is not a
// single outer product (opamp models, source amplitudes) propagate
// mna.ErrNotLowRank, and callers fall back to ApplyFault/SweepFault.
func (e *Engine) PrepareLowRank(f fault.Fault) (*LowRankFault, error) {
	name, v, err := f.PatchValue(e.driven)
	if err != nil {
		return nil, err
	}
	delta, err := e.sys.RankOneDelta(name, v)
	if err != nil {
		return nil, err
	}
	return &LowRankFault{Component: name, Value: v, delta: delta}, nil
}

// ensureLowRank builds (or reuses) the nominal per-point factorization
// cache for the grid. The engine must be nominal: the cache is the
// unpatched matrix, and every fault is expressed as a delta against it.
//
// The cache is slab-backed per layout rather than allocated per point:
// dense factors are views into one points×n² backing array (plus one
// pivot and one solution slab), and sparse factors are built in the
// engine's workspace scratch and detached into shared append arenas —
// O(nnz(L)+nnz(U)) retained per point instead of n².
func (e *Engine) ensureLowRank(grid []float64) error {
	if e.lr != nil && slices.Equal(e.lr.grid, grid) {
		return nil
	}
	n := e.sys.N()
	lr := &lowRankGrid{
		grid:    append([]float64(nil), grid...),
		solvers: make([]*numeric.LowRankSolver, len(grid)),
		x:       make([]complex128, n),
	}
	timed := obs.TimingOn()
	if timed {
		// The grid cache is built lazily by whichever worker's first cell
		// lands here, so the span is schedule-dependent — timing-gated,
		// like the factor counter below.
		_, fs := obs.Start(e.traceContext(), "lowrank.factor_grid")
		fs.SetTag("points", strconv.Itoa(len(grid)))
		defer fs.End()
	}
	layout, err := e.sys.ResolveLayout()
	if err != nil {
		return err
	}
	if layout == mna.LayoutSparse {
		if err := e.ensureLowRankSparse(grid, lr); err != nil {
			return err
		}
	} else if err := e.ensureLowRankDense(grid, lr); err != nil {
		return err
	}
	e.lr = lr
	return nil
}

// ensureLowRankDense fills the solver cache from slab-backed dense
// factorizations: one matrix slab, one pivot slab, one solution slab
// for the whole grid, with per-point views into them.
func (e *Engine) ensureLowRankDense(grid []float64, lr *lowRankGrid) error {
	n := e.sys.N()
	mSlab := make([]complex128, len(grid)*n*n)
	ySlab := make([]complex128, len(grid)*n)
	pivSlab := make([]int, len(grid)*n)
	timed := obs.TimingOn()
	for i, f := range grid {
		m := numeric.MatrixView(n, mSlab[i*n*n:(i+1)*n*n])
		y := ySlab[i*n : (i+1)*n]
		if err := e.sys.AssembleInto(f, m, y); err != nil {
			return err
		}
		if timed {
			eLowRankFactors.Inc()
		}
		lu, err := numeric.FactorInPlace(m, pivSlab[i*n:(i+1)*n])
		if err != nil {
			if errors.Is(err, numeric.ErrSingular) {
				continue // solver stays nil; the per-point fallback decides
			}
			return err
		}
		if err := lu.SolveInPlace(y); err != nil {
			return err
		}
		solver, err := numeric.NewLowRankSolver(lu, y)
		if err != nil {
			return err
		}
		lr.solvers[i] = solver
	}
	return nil
}

// ensureLowRankSparse fills the solver cache by factoring each point in
// the engine's sparse workspace and detaching the compact factors into
// the grid's shared arenas. The symbolic pattern work is done once by
// the workspace scratch and reused across the whole ω grid.
func (e *Engine) ensureLowRankSparse(grid []float64, lr *lowRankGrid) error {
	pat := e.sys.Pattern()
	n := e.sys.N()
	// Borrow the sweeper's workspace: each factor is detached into the
	// arenas before the next point, so nothing here outlives a later
	// VoltageAt, and the sparse warmup (value slab, scratch slabs) is
	// paid once per engine instead of once per path.
	ws := e.sw.Workspace()
	ws.EnsureSparse(pat)
	// Pre-size the arenas from the scratch's fill estimate so the grid's
	// detaches are plain copies instead of O(log points) append regrowth;
	// a grid whose factors outgrow the estimate just falls back to
	// amortized append. The per-point pre-solved excitations live in the
	// complex arena too (the +n term), so the whole cache is three
	// allocations.
	est := 2*pat.NNZ() + 2*n
	lr.i32Arena = make([]int32, 0, len(grid)*(2*(n+1)+est))
	lr.cplxArena = make([]complex128, 0, len(grid)*(est+3*n))
	lr.pivArena = make([]int, 0, len(grid)*n)
	timed := obs.TimingOn()
	for i, f := range grid {
		if err := e.sys.AssembleValsInto(f, ws.SVals, ws.RHS); err != nil {
			return err
		}
		if timed {
			eLowRankFactors.Inc()
		}
		lu, err := ws.SparseFactor()
		if err != nil {
			if errors.Is(err, numeric.ErrSingular) {
				continue // solver stays nil; the per-point fallback decides
			}
			return err
		}
		// Reserve the solution segment in the arena; copy overwrites all
		// of it, so no zeroing is needed on the in-capacity path.
		ystart := len(lr.cplxArena)
		if cap(lr.cplxArena)-ystart >= n {
			lr.cplxArena = lr.cplxArena[:ystart+n]
		} else {
			lr.cplxArena = append(lr.cplxArena, make([]complex128, n)...)
		}
		y := lr.cplxArena[ystart : ystart+n : ystart+n]
		copy(y, ws.RHS)
		if err := lu.SolveInPlace(y); err != nil {
			return err
		}
		solver, err := numeric.NewLowRankSolverSparse(
			lu.Detach(&lr.i32Arena, &lr.cplxArena, &lr.pivArena), y)
		if err != nil {
			return err
		}
		lr.solvers[i] = solver
	}
	return nil
}

// SweepLowRank measures the fault's response over the grid via
// Sherman–Morrison against the cached nominal factorizations — O(n²) per
// point instead of the O(n³) refactorization SweepFault pays. Points the
// identity cannot answer — the nominal matrix itself was singular there,
// or the rank-1 denominator vanished (numeric.ErrSingularUpdate, meaning
// the patched matrix is near-singular) — fall back to a full patched
// refactorization through the ordinary SetValue path, which reproduces
// the reference path's singularity verdict exactly; points singular under
// both are left invalid, as SweepGrid would. The engine is nominal when
// this returns.
func (e *Engine) SweepLowRank(lf *LowRankFault, grid []float64) (*Response, error) {
	if len(grid) == 0 {
		return nil, fmt.Errorf("%w: empty grid", ErrBadSweep)
	}
	if e.sys.Patched() {
		return nil, fmt.Errorf("%w: low-rank sweep on a patched system", ErrBadSweep)
	}
	if err := e.ensureLowRank(grid); err != nil {
		return nil, err
	}
	lr := e.lr
	resp := &Response{
		Freqs: append([]float64(nil), grid...),
		H:     make([]complex128, len(grid)),
		Valid: make([]bool, len(grid)),
	}
	var fallback []int
	var solves int64
	for i, f := range grid {
		solver := lr.solvers[i]
		if solver == nil {
			fallback = append(fallback, i)
			continue
		}
		solves++
		// The incidence factors carry at most two entries each, so the
		// sparse rank-1 product skips the dense scatter and the n-length
		// dot products; the result is bit-identical to the dense form.
		d := &lf.delta
		if err := solver.SolveRankOneSparse(d.ScaleAt(f), d.UIdx, d.UVal, d.VIdx, d.VVal, lr.x); err != nil {
			if errors.Is(err, numeric.ErrSingularUpdate) {
				fallback = append(fallback, i)
				continue
			}
			eLowRankSolves.Add(solves)
			return nil, err
		}
		if e.nodeIdx >= 0 {
			resp.H[i] = lr.x[e.nodeIdx]
		}
		resp.Valid[i] = true
	}
	eLowRankSolves.Add(solves)
	if len(fallback) == 0 {
		return resp, nil
	}
	if err := e.sys.SetValue(lf.Component, lf.Value); err != nil {
		return nil, err
	}
	defer e.Reset()
	defer e.sw.FlushMetrics()
	// Which points fall back is a numeric property of the cell, not of
	// the schedule, so this marker span is always recorded.
	_, rs := obs.Start(e.traceContext(), "lowrank.refactor")
	rs.SetTag("component", lf.Component)
	rs.SetTag("points", strconv.Itoa(len(fallback)))
	defer rs.End()
	for _, i := range fallback {
		eLowRankRefactors.Inc()
		v, err := e.sw.VoltageAt(grid[i])
		if err != nil {
			if errors.Is(err, numeric.ErrSingular) {
				continue // singular under the patch too: leave invalid
			}
			return nil, err
		}
		resp.H[i] = v
		resp.Valid[i] = true
	}
	return resp, nil
}
