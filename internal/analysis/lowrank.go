package analysis

import (
	"errors"
	"fmt"
	"slices"
	"strconv"

	"analogdft/internal/fault"
	"analogdft/internal/mna"
	"analogdft/internal/numeric"
	"analogdft/internal/obs"
)

// lowRankGrid caches, per grid point, the LU factorization of the nominal
// MNA matrix together with its pre-solved excitation, plus the dense
// rank-1 scratch vectors shared by every fault sweep. Building it costs
// the same O(points·n³) the nominal sweep already pays; afterwards every
// rank-1 fault solves the whole grid in O(points·n²).
type lowRankGrid struct {
	grid    []float64
	solvers []*numeric.LowRankSolver // nil where the nominal matrix is singular
	u, v, x []complex128             // dense rank-1 factors and solution scratch
}

// LowRankFault is a fault pre-lowered to the rank-1 matrix delta its
// in-place patch would stamp: PrepareLowRank resolves the patch target
// once, and SweepLowRank then solves every grid point against the cached
// nominal factorizations via Sherman–Morrison. Component and Value are
// retained so the per-point fallback can replay the fault as an ordinary
// SetValue patch when the update is singular.
type LowRankFault struct {
	Component string
	Value     float64
	delta     mna.RankOne
}

// PrepareLowRank lowers the fault to its rank-1 delta without touching the
// live system. Faults that cannot patch at all propagate
// fault.ErrNotPatchable; patchable faults whose stamp delta is not a
// single outer product (opamp models, source amplitudes) propagate
// mna.ErrNotLowRank, and callers fall back to ApplyFault/SweepFault.
func (e *Engine) PrepareLowRank(f fault.Fault) (*LowRankFault, error) {
	name, v, err := f.PatchValue(e.driven)
	if err != nil {
		return nil, err
	}
	delta, err := e.sys.RankOneDelta(name, v)
	if err != nil {
		return nil, err
	}
	return &LowRankFault{Component: name, Value: v, delta: delta}, nil
}

// ensureLowRank builds (or reuses) the nominal per-point factorization
// cache for the grid. The engine must be nominal: the cache is the
// unpatched matrix, and every fault is expressed as a delta against it.
func (e *Engine) ensureLowRank(grid []float64) error {
	if e.lr != nil && slices.Equal(e.lr.grid, grid) {
		return nil
	}
	n := e.sys.N()
	lr := &lowRankGrid{
		grid:    append([]float64(nil), grid...),
		solvers: make([]*numeric.LowRankSolver, len(grid)),
		u:       make([]complex128, n),
		v:       make([]complex128, n),
		x:       make([]complex128, n),
	}
	timed := obs.TimingOn()
	if timed {
		// The grid cache is built lazily by whichever worker's first cell
		// lands here, so the span is schedule-dependent — timing-gated,
		// like the factor counter below.
		_, fs := obs.Start(e.traceContext(), "lowrank.factor_grid")
		fs.SetTag("points", strconv.Itoa(len(grid)))
		defer fs.End()
	}
	for i, f := range grid {
		m := numeric.NewMatrix(n, n)
		rhs := make([]complex128, n)
		if err := e.sys.AssembleInto(f, m, rhs); err != nil {
			return err
		}
		if timed {
			eLowRankFactors.Inc()
		}
		lu, err := numeric.FactorInPlace(m, nil)
		if err != nil {
			if errors.Is(err, numeric.ErrSingular) {
				continue // solver stays nil; the per-point fallback decides
			}
			return err
		}
		if err := lu.SolveInPlace(rhs); err != nil {
			return err
		}
		solver, err := numeric.NewLowRankSolver(lu, rhs)
		if err != nil {
			return err
		}
		lr.solvers[i] = solver
	}
	e.lr = lr
	return nil
}

// SweepLowRank measures the fault's response over the grid via
// Sherman–Morrison against the cached nominal factorizations — O(n²) per
// point instead of the O(n³) refactorization SweepFault pays. Points the
// identity cannot answer — the nominal matrix itself was singular there,
// or the rank-1 denominator vanished (numeric.ErrSingularUpdate, meaning
// the patched matrix is near-singular) — fall back to a full patched
// refactorization through the ordinary SetValue path, which reproduces
// the reference path's singularity verdict exactly; points singular under
// both are left invalid, as SweepGrid would. The engine is nominal when
// this returns.
func (e *Engine) SweepLowRank(lf *LowRankFault, grid []float64) (*Response, error) {
	if len(grid) == 0 {
		return nil, fmt.Errorf("%w: empty grid", ErrBadSweep)
	}
	if e.sys.Patched() {
		return nil, fmt.Errorf("%w: low-rank sweep on a patched system", ErrBadSweep)
	}
	if err := e.ensureLowRank(grid); err != nil {
		return nil, err
	}
	lr := e.lr
	lf.delta.DenseInto(lr.u, lr.v)
	resp := &Response{
		Freqs: append([]float64(nil), grid...),
		H:     make([]complex128, len(grid)),
		Valid: make([]bool, len(grid)),
	}
	var fallback []int
	var solves int64
	for i, f := range grid {
		solver := lr.solvers[i]
		if solver == nil {
			fallback = append(fallback, i)
			continue
		}
		solves++
		if err := solver.SolveRankOne(lf.delta.ScaleAt(f), lr.u, lr.v, lr.x); err != nil {
			if errors.Is(err, numeric.ErrSingularUpdate) {
				fallback = append(fallback, i)
				continue
			}
			eLowRankSolves.Add(solves)
			return nil, err
		}
		if e.nodeIdx >= 0 {
			resp.H[i] = lr.x[e.nodeIdx]
		}
		resp.Valid[i] = true
	}
	eLowRankSolves.Add(solves)
	if len(fallback) == 0 {
		return resp, nil
	}
	if err := e.sys.SetValue(lf.Component, lf.Value); err != nil {
		return nil, err
	}
	defer e.Reset()
	defer e.sw.FlushMetrics()
	// Which points fall back is a numeric property of the cell, not of
	// the schedule, so this marker span is always recorded.
	_, rs := obs.Start(e.traceContext(), "lowrank.refactor")
	rs.SetTag("component", lf.Component)
	rs.SetTag("points", strconv.Itoa(len(fallback)))
	defer rs.End()
	for _, i := range fallback {
		eLowRankRefactors.Inc()
		v, err := e.sw.VoltageAt(grid[i])
		if err != nil {
			if errors.Is(err, numeric.ErrSingular) {
				continue // singular under the patch too: leave invalid
			}
			return nil, err
		}
		resp.H[i] = v
		resp.Valid[i] = true
	}
	return resp, nil
}
