package diagnose

import (
	"errors"
	"testing"

	"analogdft/internal/analysis"
	"analogdft/internal/circuit"
	"analogdft/internal/detect"
	"analogdft/internal/dft"
	"analogdft/internal/fault"
)

// paperBiquad duplicates the library circuit locally to avoid an import
// cycle risk with circuits (which may grow diagnose-based helpers).
func paperBiquad() (*circuit.Circuit, []string) {
	c := circuit.New("biquad")
	const r, cap1 = 15.915e3, 1e-9
	c.R("R1", "in", "a", r)
	c.R("R2", "v1", "a", 2*r)
	c.Cap("C1", "v1", "a", cap1)
	c.R("R4", "v3", "a", r)
	c.OA("OP1", "0", "a", "v1")
	c.R("R5", "v1", "b", r)
	c.Cap("C2", "v2", "b", cap1)
	c.OA("OP2", "0", "b", "v2")
	c.R("R6", "v2", "c", r)
	c.R("R3", "v3", "c", r)
	c.OA("OP3", "0", "c", "v3")
	c.Input, c.Output = "in", "v3"
	return c, []string{"OP1", "OP2", "OP3"}
}

var paperRegion = analysis.Region{LoHz: 100, HiHz: 5600}

func buildDict(t *testing.T, cfgs []int) *Dictionary {
	t.Helper()
	ckt, chain := paperBiquad()
	m, err := dft.Apply(ckt, chain)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.DeviationUniverse(ckt, 0.2)
	d, err := Build(m, cfgs, faults, paperRegion, Options{Points: 80, Bands: 4})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSymbolString(t *testing.T) {
	if Nominal.String() != "0" || High.String() != "+" || Low.String() != "-" {
		t.Fatal("symbol strings")
	}
	sig := Signature{Nominal, High, Low}
	if sig.String() != "0+-" {
		t.Fatalf("signature string = %q", sig.String())
	}
}

func TestDistance(t *testing.T) {
	a := Signature{0, 1, -1}
	b := Signature{0, -1, -1}
	if Distance(a, b) != 1 {
		t.Fatal("distance")
	}
	if Distance(a, Signature{0}) != -1 {
		t.Fatal("length mismatch")
	}
	if Distance(a, a) != 0 {
		t.Fatal("self distance")
	}
}

func TestBuildShapes(t *testing.T) {
	d := buildDict(t, []int{0, 1, 2})
	if len(d.Configs) != 3 || len(d.Faults) != 8 || len(d.Signatures) != 8 {
		t.Fatalf("dictionary shape: %d configs %d faults %d sigs",
			len(d.Configs), len(d.Faults), len(d.Signatures))
	}
	for _, s := range d.Signatures {
		if len(s) != 3*4 {
			t.Fatalf("signature length = %d, want 12", len(s))
		}
	}
}

func TestBuildErrors(t *testing.T) {
	ckt, chain := paperBiquad()
	m, _ := dft.Apply(ckt, chain)
	faults := fault.DeviationUniverse(ckt, 0.2)
	if _, err := Build(m, nil, faults, paperRegion, Options{}); !errors.Is(err, ErrBadDictionary) {
		t.Errorf("no configs: %v", err)
	}
	if _, err := Build(m, []int{0}, nil, paperRegion, Options{}); !errors.Is(err, ErrBadDictionary) {
		t.Errorf("no faults: %v", err)
	}
	if _, err := Build(m, []int{0}, faults, analysis.Region{LoHz: 5, HiHz: 1}, Options{}); err == nil {
		t.Error("bad region accepted")
	}
	if _, err := Build(m, []int{99}, faults, paperRegion, Options{}); err == nil {
		t.Error("bad config index accepted")
	}
}

// Every dictionary fault must diagnose to a group containing itself.
func TestSelfDiagnosis(t *testing.T) {
	d := buildDict(t, []int{0, 1, 2, 3, 4, 5, 6})
	for i, f := range d.Faults {
		ids := d.Diagnose(d.Signatures[i])
		found := false
		for _, id := range ids {
			if id == f.ID {
				found = true
			}
		}
		if !found {
			t.Errorf("fault %s not in its own diagnosis %v", f.ID, ids)
		}
	}
}

// Diagnosing a freshly injected fault through the measurement path must
// land in the same ambiguity group as the dictionary entry.
func TestDiagnoseInjectedFault(t *testing.T) {
	d := buildDict(t, []int{0, 1, 2, 3})
	target := d.Faults[3] // fR4
	sig, err := d.SignatureOfCircuit(func(ckt *circuit.Circuit) (*circuit.Circuit, error) {
		return target.Apply(ckt)
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := d.Diagnose(sig)
	found := false
	for _, id := range ids {
		if id == target.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("injected %s diagnosed as %v", target.ID, ids)
	}
}

func TestFaultFreeSignature(t *testing.T) {
	// The configuration set must cover every fault: otherwise faults that
	// are undetectable in the chosen configurations correctly share the
	// all-nominal signature with a fault-free device. {C1, C2} is a
	// maximum-coverage set for this circuit.
	d := buildDict(t, []int{1, 2})
	sig, err := d.SignatureOfCircuit(func(ckt *circuit.Circuit) (*circuit.Circuit, error) {
		return ckt.Clone(), nil // no defect
	})
	if err != nil {
		t.Fatal(err)
	}
	if !IsFaultFree(sig) {
		t.Fatalf("fault-free device got signature %v", sig)
	}
	if ids := d.Diagnose(sig); len(ids) != 0 {
		t.Fatalf("fault-free signature matched faults %v", ids)
	}
}

func TestNearest(t *testing.T) {
	d := buildDict(t, []int{0, 1})
	// Perturb one symbol of a known signature; Nearest must still find it
	// within distance 1.
	sig := append(Signature(nil), d.Signatures[0]...)
	for i := range sig {
		if sig[i] == Nominal {
			sig[i] = High
			break
		}
	}
	ids, dist := d.Nearest(sig)
	if dist > 1 || len(ids) == 0 {
		t.Fatalf("nearest = %v at %d", ids, dist)
	}
}

// The headline diagnosis claim: adding test configurations improves the
// diagnostic resolution over the functional configuration alone.
func TestMultiConfigImprovesResolution(t *testing.T) {
	only0 := buildDict(t, []int{0})
	all := buildDict(t, []int{0, 1, 2, 3, 4, 5, 6})
	r0, rAll := only0.Resolution(), all.Resolution()
	if rAll <= r0 {
		t.Fatalf("resolution did not improve: C0 alone %.3f vs all %.3f", r0, rAll)
	}
	// With all configurations the dictionary should resolve most faults.
	if rAll < 0.7 {
		t.Fatalf("all-config resolution %.3f unexpectedly low", rAll)
	}
	groups := all.AmbiguityGroups()
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != len(all.Faults) {
		t.Fatalf("groups cover %d of %d faults", total, len(all.Faults))
	}
}

func TestFromMatrixRows(t *testing.T) {
	ckt, chain := paperBiquad()
	m, _ := dft.Apply(ckt, chain)
	faults := fault.DeviationUniverse(ckt, 0.2)
	mx, err := detect.BuildMatrix(m, faults, detect.Options{Points: 61, Region: paperRegion, MeasFloor: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	d, err := FromMatrixRows(m, mx, []int{1, 2}, Options{Points: 60, Bands: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Configs) != 2 || d.Configs[0].Label() != "C1" {
		t.Fatalf("configs = %v", d.Configs)
	}
	if _, err := FromMatrixRows(m, mx, []int{77}, Options{}); !errors.Is(err, ErrBadDictionary) {
		t.Errorf("bad row: %v", err)
	}
}

func TestOptionsPointsRounding(t *testing.T) {
	o := Options{Points: 10, Bands: 4}.withDefaults()
	if o.Points%o.Bands != 0 {
		t.Fatalf("points %d not a multiple of bands %d", o.Points, o.Bands)
	}
}
