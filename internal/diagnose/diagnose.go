// Package diagnose builds fault dictionaries on top of the
// multi-configuration DFT and uses them for fault location — the
// diagnosis thread of the paper's related work ([7]–[10], [13]). Where
// detection only asks "does some configuration expose the fault?",
// diagnosis asks "which fault is it?": each fault gets a signature — a
// ternary symbol (nominal / response high / response low) per
// (configuration, frequency band) cell — and a measured circuit is
// located by matching its signature against the dictionary.
//
// The multi-configuration technique helps diagnosis for the same reason
// it helps detection: different configurations expose different
// components, so signatures that collide in the functional configuration
// separate across test configurations (measured by Resolution).
package diagnose

import (
	"errors"
	"fmt"
	"math/cmplx"
	"sort"
	"strings"

	"analogdft/internal/analysis"
	"analogdft/internal/circuit"
	"analogdft/internal/detect"
	"analogdft/internal/dft"
	"analogdft/internal/fault"
)

// ErrBadDictionary is returned for malformed dictionary parameters.
var ErrBadDictionary = errors.New("diagnose: bad dictionary")

// Symbol is one signature cell: the response in a (configuration, band)
// cell is nominal, high or low.
type Symbol int8

// Signature cell symbols.
const (
	Nominal Symbol = 0
	High    Symbol = 1
	Low     Symbol = -1
)

// String implements fmt.Stringer.
func (s Symbol) String() string {
	switch s {
	case High:
		return "+"
	case Low:
		return "-"
	default:
		return "0"
	}
}

// Signature is a fault's symbol vector over all (configuration, band)
// cells, configurations outer, bands inner.
type Signature []Symbol

// String renders e.g. "0+|-0" (configurations separated by '|').
func (sig Signature) String() string { return sig.format(0) }

func (sig Signature) format(bandsPerConfig int) string {
	var b strings.Builder
	for i, s := range sig {
		if bandsPerConfig > 0 && i > 0 && i%bandsPerConfig == 0 {
			b.WriteByte('|')
		}
		b.WriteString(s.String())
	}
	return b.String()
}

// Distance returns the Hamming distance between two signatures of equal
// length (-1 when lengths differ).
func Distance(a, b Signature) int {
	if len(a) != len(b) {
		return -1
	}
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// Options parameterizes dictionary construction.
type Options struct {
	// Eps is the deviation threshold for a non-nominal symbol (default
	// 0.10).
	Eps float64
	// Points is the full grid size across the region (default 120; it is
	// rounded up to a multiple of Bands).
	Points int
	// Bands is the number of log-frequency bands per configuration
	// (default 4).
	Bands int
}

func (o Options) withDefaults() Options {
	if o.Eps == 0 {
		o.Eps = 0.10
	}
	if o.Bands == 0 {
		o.Bands = 4
	}
	if o.Points == 0 {
		o.Points = 120
	}
	if rem := o.Points % o.Bands; rem != 0 {
		o.Points += o.Bands - rem
	}
	return o
}

// Dictionary is a fault dictionary over a set of configurations.
type Dictionary struct {
	// Source names the circuit.
	Source string
	// Configs are the dictionary configurations in row order.
	Configs []dft.Configuration
	// Faults are the dictionary faults in column order.
	Faults fault.List
	// Signatures[i] is the signature of Faults[i].
	Signatures []Signature
	// Region is the analysis region; Bands per configuration.
	Region analysis.Region
	Bands  int
	// Eps is the symbol threshold.
	Eps float64

	grid     []float64
	circuits []*circuit.Circuit
	nominals []*analysis.Response
}

// Build constructs the dictionary for the given configuration indices of
// a DFT-modified circuit.
func Build(m *dft.Modified, cfgIndices []int, faults fault.List, region analysis.Region, opts Options) (*Dictionary, error) {
	opts = opts.withDefaults()
	if len(cfgIndices) == 0 {
		return nil, fmt.Errorf("%w: no configurations", ErrBadDictionary)
	}
	if err := faults.Validate(); err != nil {
		return nil, err
	}
	if len(faults) == 0 {
		return nil, fmt.Errorf("%w: no faults", ErrBadDictionary)
	}
	if err := region.Validate(); err != nil {
		return nil, err
	}
	d := &Dictionary{
		Source: m.Base.Name,
		Faults: faults,
		Region: region,
		Bands:  opts.Bands,
		Eps:    opts.Eps,
		grid:   region.Spec(opts.Points).Grid(),
	}
	for _, idx := range cfgIndices {
		cfg, err := m.Config(idx)
		if err != nil {
			return nil, err
		}
		ckt, err := m.Configure(cfg)
		if err != nil {
			return nil, err
		}
		nom, err := analysis.SweepOnGrid(ckt, d.grid)
		if err != nil {
			return nil, fmt.Errorf("diagnose: nominal sweep of %s: %w", cfg, err)
		}
		d.Configs = append(d.Configs, cfg)
		d.circuits = append(d.circuits, ckt)
		d.nominals = append(d.nominals, nom)
	}
	for _, f := range faults {
		sig, err := d.signatureOfFault(f)
		if err != nil {
			return nil, fmt.Errorf("diagnose: fault %s: %w", f.ID, err)
		}
		d.Signatures = append(d.Signatures, sig)
	}
	return d, nil
}

// signatureOfFault measures one fault across every configuration.
func (d *Dictionary) signatureOfFault(f fault.Fault) (Signature, error) {
	sig := make(Signature, 0, len(d.Configs)*d.Bands)
	for ci := range d.Configs {
		faulty, err := f.Apply(d.circuits[ci])
		if err != nil {
			return nil, err
		}
		resp, err := analysis.SweepOnGrid(faulty, d.grid)
		if err != nil {
			return nil, err
		}
		sig = append(sig, d.encode(d.nominals[ci], resp)...)
	}
	return sig, nil
}

// encode turns a measured response into per-band symbols against a
// nominal response.
func (d *Dictionary) encode(nominal, measured *analysis.Response) Signature {
	perBand := len(d.grid) / d.Bands
	out := make(Signature, d.Bands)
	for b := 0; b < d.Bands; b++ {
		lo, hi := b*perBand, (b+1)*perBand
		if b == d.Bands-1 {
			hi = len(d.grid)
		}
		// A band is High/Low when the dominant beyond-ε deviation raises/
		// lowers the magnitude; ties resolve to the larger total.
		up, down := 0.0, 0.0
		for i := lo; i < hi; i++ {
			if !nominal.Valid[i] || !measured.Valid[i] {
				if nominal.Valid[i] != measured.Valid[i] {
					up += 1e9 // solvability changed: strongly anomalous
				}
				continue
			}
			mn := cmplx.Abs(nominal.H[i])
			mf := cmplx.Abs(measured.H[i])
			if mn == 0 {
				continue
			}
			rel := (mf - mn) / mn
			switch {
			case rel > d.Eps:
				up += rel
			case rel < -d.Eps:
				down += -rel
			}
		}
		switch {
		case up == 0 && down == 0:
			out[b] = Nominal
		case up >= down:
			out[b] = High
		default:
			out[b] = Low
		}
	}
	return out
}

// SignatureOfCircuit measures a device-under-test circuit builder across
// the dictionary configurations: mutate receives a clone of each
// configured circuit and applies the DUT's defect (tests use
// fault.Fault.Apply; a real flow would substitute measured responses).
func (d *Dictionary) SignatureOfCircuit(mutate func(*circuit.Circuit) (*circuit.Circuit, error)) (Signature, error) {
	sig := make(Signature, 0, len(d.Configs)*d.Bands)
	for ci := range d.Configs {
		dut, err := mutate(d.circuits[ci])
		if err != nil {
			return nil, err
		}
		resp, err := analysis.SweepOnGrid(dut, d.grid)
		if err != nil {
			return nil, err
		}
		sig = append(sig, d.encode(d.nominals[ci], resp)...)
	}
	return sig, nil
}

// Diagnose returns the IDs of faults whose signatures match sig exactly.
func (d *Dictionary) Diagnose(sig Signature) []string {
	var out []string
	for i, s := range d.Signatures {
		if Distance(s, sig) == 0 {
			out = append(out, d.Faults[i].ID)
		}
	}
	return out
}

// Nearest returns the fault IDs at minimum Hamming distance from sig and
// that distance. An all-nominal signature diagnoses a fault-free device:
// Nearest still reports the closest dictionary entries.
func (d *Dictionary) Nearest(sig Signature) ([]string, int) {
	best := -1
	var out []string
	for i, s := range d.Signatures {
		dist := Distance(s, sig)
		if dist < 0 {
			continue
		}
		switch {
		case best < 0 || dist < best:
			best = dist
			out = []string{d.Faults[i].ID}
		case dist == best:
			out = append(out, d.Faults[i].ID)
		}
	}
	return out, best
}

// IsFaultFree reports whether the signature is all-nominal.
func IsFaultFree(sig Signature) bool {
	for _, s := range sig {
		if s != Nominal {
			return false
		}
	}
	return true
}

// AmbiguityGroups partitions the faults into groups with identical
// signatures, sorted by group size descending then first ID.
func (d *Dictionary) AmbiguityGroups() [][]string {
	byKey := make(map[string][]string)
	for i, s := range d.Signatures {
		k := s.String()
		byKey[k] = append(byKey[k], d.Faults[i].ID)
	}
	out := make([][]string, 0, len(byKey))
	for _, g := range byKey {
		sort.Strings(g)
		out = append(out, g)
	}
	sort.Slice(out, func(a, b int) bool {
		if len(out[a]) != len(out[b]) {
			return len(out[a]) > len(out[b])
		}
		return out[a][0] < out[b][0]
	})
	return out
}

// Resolution is the diagnostic resolution: the number of ambiguity groups
// divided by the number of faults (1 = every fault uniquely located).
func (d *Dictionary) Resolution() float64 {
	if len(d.Faults) == 0 {
		return 0
	}
	return float64(len(d.AmbiguityGroups())) / float64(len(d.Faults))
}

// FromMatrixRows is a convenience that builds a dictionary over the rows
// of an existing detectability matrix result (e.g. the optimized
// configuration set).
func FromMatrixRows(m *dft.Modified, mx *detect.Matrix, rows []int, opts Options) (*Dictionary, error) {
	var idxs []int
	for _, r := range rows {
		if r < 0 || r >= mx.NumConfigs() {
			return nil, fmt.Errorf("%w: row %d out of range", ErrBadDictionary, r)
		}
		idxs = append(idxs, mx.Configs[r].Index)
	}
	return Build(m, idxs, mx.Faults, mx.Region, opts)
}
