package circuits

import (
	"math"
	"testing"

	"analogdft/internal/mna"
)

func TestLeapfrogButterworthResponse(t *testing.T) {
	const fc = 10e3
	b, err := LeapfrogLowpass5(fc)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.Chain) != 7 {
		t.Fatalf("chain = %v", b.Chain)
	}
	// Doubly-terminated Butterworth: |H(f)| = 0.5 / √(1 + (f/fc)^10).
	for _, f := range []float64{10, 100, 1e3, 5e3, 10e3, 15e3, 30e3, 100e3} {
		want := 0.5 / math.Sqrt(1+math.Pow(f/fc, 10))
		got := magAt(t, b, f)
		tol := 0.02*want + 1e-6
		if math.Abs(got-want) > tol {
			t.Errorf("|H(%g)| = %g, want %g", f, got, want)
		}
	}
}

func TestLeapfrogRolloffRate(t *testing.T) {
	b, err := LeapfrogLowpass5(10e3)
	if err != nil {
		t.Fatal(err)
	}
	// 5th order: −100 dB/decade. One decade above fc the response must be
	// ≈ 10^−5 of the passband.
	pass := magAt(t, b, 100)
	stop := magAt(t, b, 100e3)
	ratio := stop / pass
	if ratio > 2e-5 || ratio < 2e-6 {
		t.Fatalf("decade attenuation ratio = %g, want ≈1e-5", ratio)
	}
}

func TestLeapfrogErrors(t *testing.T) {
	if _, err := LeapfrogLowpass5(0); err == nil {
		t.Fatal("zero corner accepted")
	}
}

func TestLeapfrogDCLevelExact(t *testing.T) {
	b, _ := LeapfrogLowpass5(10e3)
	h, err := mna.TransferAt(b.Circuit, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// x5 = Vin/2 at DC; the realization output is −x5.
	if math.Abs(real(h)+0.5) > 1e-3 || math.Abs(imag(h)) > 1e-3 {
		t.Fatalf("H(0) = %v, want −0.5", h)
	}
}
