package circuits

import (
	"fmt"
	"math"

	"analogdft/internal/circuit"
)

// LeapfrogLowpass5 builds an active leapfrog (ladder-simulation) 5th-order
// Butterworth lowpass: five opamp integrators simulating the state
// equations of a doubly-terminated LC ladder, plus two unity inverters to
// fix the coupling signs — 7 opamps, the "complex block under test, with
// non-cascaded feedback links" the paper's §1 and §5 motivate.
//
// Ladder prototype (Butterworth, 1 Ω terminations):
//
//	g1..g5 = 0.618, 1.618, 2.000, 1.618, 0.618
//
// State equations (x5 is the output; 6 dB passive insertion loss):
//
//	x1·(s·τ1 + 1) = Vin − x2        τk = gk/ωc
//	x2·(s·τ2)     = x1 − x3
//	x3·(s·τ3)     = x2 − x4
//	x4·(s·τ4)     = x3 − x5
//	x5·(s·τ5 + 1) = x4
//
// Realized with inverting integrators and inverters z2 = −y2, z4 = −y4 so
// every two-integrator loop has negative feedback.
func LeapfrogLowpass5(fcHz float64) (*Bench, error) {
	if fcHz <= 0 {
		return nil, fmt.Errorf("circuits: bad corner %g", fcHz)
	}
	g := []float64{0.618, 1.618, 2.000, 1.618, 0.618}
	const c = 1e-9
	wc := 2 * math.Pi * fcHz
	r := func(k int) float64 { return g[k-1] / (wc * c) }
	const rInv = 10e3 // inverter resistors

	ckt := circuit.New("leapfrog-lp5")

	// Stage 1: lossy inverting integrator.
	// y1 = −(Vin/R1 + z2/R1)·Z1,  Z1 = Rf1 ∥ C1, Rf1 = R1.
	ckt.R("R1a", "in", "m1", r(1))
	ckt.R("R1b", "z2", "m1", r(1))
	ckt.R("R1f", "m1", "y1", r(1))
	ckt.Cap("C1", "m1", "y1", c)
	ckt.OA("OP1", "0", "m1", "y1")

	// Stage 2: inverting integrator, inputs y1 and y3.
	ckt.R("R2a", "y1", "m2", r(2))
	ckt.R("R2b", "y3", "m2", r(2))
	ckt.Cap("C2", "m2", "y2", c)
	ckt.OA("OP2", "0", "m2", "y2")
	// Inverter: z2 = −y2.
	ckt.R("RI2a", "y2", "mi2", rInv)
	ckt.R("RI2b", "mi2", "z2", rInv)
	ckt.OA("OPI2", "0", "mi2", "z2")

	// Stage 3: inverting integrator, inputs z2 and z4 (sign-corrected).
	ckt.R("R3a", "z2", "m3", r(3))
	ckt.R("R3b", "z4", "m3", r(3))
	ckt.Cap("C3", "m3", "y3", c)
	ckt.OA("OP3", "0", "m3", "y3")

	// Stage 4: inverting integrator, inputs y3 and y5.
	ckt.R("R4a", "y3", "m4", r(4))
	ckt.R("R4b", "y5", "m4", r(4))
	ckt.Cap("C4", "m4", "y4", c)
	ckt.OA("OP4", "0", "m4", "y4")
	// Inverter: z4 = −y4.
	ckt.R("RI4a", "y4", "mi4", rInv)
	ckt.R("RI4b", "mi4", "z4", rInv)
	ckt.OA("OPI4", "0", "mi4", "z4")

	// Stage 5: lossy inverting integrator, input z4.
	ckt.R("R5a", "z4", "m5", r(5))
	ckt.R("R5f", "m5", "y5", r(5))
	ckt.Cap("C5", "m5", "y5", c)
	ckt.OA("OP5", "0", "m5", "y5")

	ckt.Input, ckt.Output = "in", "y5"
	return &Bench{
		Circuit:     ckt,
		Chain:       []string{"OP1", "OP2", "OPI2", "OP3", "OP4", "OPI4", "OP5"},
		Description: fmt.Sprintf("5th-order Butterworth leapfrog ladder, fc=%g Hz (7 opamps)", fcHz),
	}, nil
}
