package circuits

import (
	"math"
	"math/cmplx"
	"testing"

	"analogdft/internal/mna"
)

func magAt(t *testing.T, b *Bench, f float64) float64 {
	t.Helper()
	h, err := mna.TransferAt(b.Circuit, f)
	if err != nil {
		t.Fatalf("%s at %g Hz: %v", b.Circuit.Name, f, err)
	}
	return cmplx.Abs(h)
}

func TestLibraryValidates(t *testing.T) {
	lib := Library()
	if len(lib) != 8 {
		t.Fatalf("library size = %d", len(lib))
	}
	for name, b := range lib {
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if b.Description == "" {
			t.Errorf("%s: empty description", name)
		}
		if len(b.Chain) == 0 {
			t.Errorf("%s: empty chain", name)
		}
	}
}

func TestBenchValidateCatchesBadChain(t *testing.T) {
	b := PaperBiquad()
	b.Chain = []string{"OPX"}
	if err := b.Validate(); err == nil {
		t.Fatal("missing chain opamp accepted")
	}
	b = PaperBiquad()
	b.Chain = []string{"R1"}
	if err := b.Validate(); err == nil {
		t.Fatal("non-opamp chain member accepted")
	}
}

func TestPaperBiquadResponse(t *testing.T) {
	b := PaperBiquad()
	// DC gain −R4/R1 = −1.
	if got := magAt(t, b, 1); math.Abs(got-1) > 1e-3 {
		t.Errorf("DC gain = %g, want 1", got)
	}
	// Lowpass biquad: |H(f0)| = Q·|H(0)| = 2.
	if got := magAt(t, b, 10e3); math.Abs(got-2) > 0.05 {
		t.Errorf("|H(f0)| = %g, want 2", got)
	}
	// −40 dB/decade: one decade above f0 the gain is ≈ 0.01.
	if got := magAt(t, b, 100e3); got > 0.02 {
		t.Errorf("|H(10·f0)| = %g, want ≈ 0.01", got)
	}
	// Exact phase/sign at DC: inverted output.
	h, err := mna.TransferAt(b.Circuit, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if real(h) > -0.9 {
		t.Errorf("H(0) = %v, want ≈ −1", h)
	}
}

func TestPaperBiquadInventoryMatchesFig1(t *testing.T) {
	// Six resistors R1..R6, two capacitors C1, C2, three opamps.
	b := PaperBiquad()
	var nR, nC, nOA int
	for _, comp := range b.Circuit.Components() {
		switch comp.Kind().String() {
		case "R":
			nR++
		case "C":
			nC++
		case "OA":
			nOA++
		}
	}
	if nR != 6 || nC != 2 || nOA != 3 {
		t.Fatalf("inventory R=%d C=%d OA=%d, want 6/2/3", nR, nC, nOA)
	}
	for _, name := range []string{"R1", "R2", "R3", "R4", "R5", "R6", "C1", "C2"} {
		if _, ok := b.Circuit.Component(name); !ok {
			t.Errorf("component %s missing", name)
		}
	}
}

func TestSallenKeyResponse(t *testing.T) {
	b := SallenKeyLowpass()
	if got := magAt(t, b, 10); math.Abs(got-1) > 1e-3 {
		t.Errorf("DC gain = %g, want 1", got)
	}
	// Butterworth: |H(f0)| = 1/√2.
	if got := magAt(t, b, 10e3); math.Abs(got-1/math.Sqrt2) > 0.01 {
		t.Errorf("|H(f0)| = %g, want %g", got, 1/math.Sqrt2)
	}
	if got := magAt(t, b, 1e6); got > 1e-2 {
		t.Errorf("|H(100·f0)| = %g", got)
	}
}

func TestSingleOpampBandpassResponse(t *testing.T) {
	b := SingleOpampBandpass()
	mid := magAt(t, b, 1.6e3) // geometric middle of the band
	if mid < 0.8 || mid > 1.05 {
		t.Errorf("midband gain = %g, want ≈1", mid)
	}
	if lo := magAt(t, b, 1); lo > 0.05 {
		t.Errorf("gain at 1 Hz = %g, want ≈0", lo)
	}
	if hi := magAt(t, b, 10e6); hi > 0.05 {
		t.Errorf("gain at 10 MHz = %g, want ≈0", hi)
	}
}

func TestKHNResponse(t *testing.T) {
	b := KHNStateVariable()
	if got := magAt(t, b, 1); math.Abs(got-1) > 1e-3 {
		t.Errorf("DC gain = %g, want 1", got)
	}
	// Q = 2/3: |H(f0)| = Q.
	if got := magAt(t, b, 5e3); math.Abs(got-2.0/3) > 0.02 {
		t.Errorf("|H(f0)| = %g, want %g", got, 2.0/3)
	}
	if got := magAt(t, b, 500e3); got > 1e-3 {
		t.Errorf("stopband gain = %g", got)
	}
}

func TestMultiStageLowpass(t *testing.T) {
	for _, n := range []int{1, 2, 4, 6} {
		b, err := MultiStageLowpass(n, 10e3)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(b.Chain) != n {
			t.Fatalf("n=%d: chain = %v", n, b.Chain)
		}
		if got := magAt(t, b, 1); math.Abs(got-1) > 1e-3 {
			t.Errorf("n=%d DC gain = %g", n, got)
		}
		// n cascaded identical poles: |H(f0)| = (1/√2)^n.
		want := math.Pow(1/math.Sqrt2, float64(n))
		if got := magAt(t, b, 10e3); math.Abs(got-want) > 0.01 {
			t.Errorf("n=%d |H(f0)| = %g, want %g", n, got, want)
		}
	}
	if _, err := MultiStageLowpass(0, 1e3); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := MultiStageLowpass(2, -1); err == nil {
		t.Fatal("negative corner accepted")
	}
}

func TestBiquadCascade(t *testing.T) {
	b, err := BiquadCascade(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.Chain) != 6 {
		t.Fatalf("chain = %v", b.Chain)
	}
	if got := magAt(t, b, 1); math.Abs(got-1) > 1e-2 {
		t.Errorf("DC gain = %g, want 1", got)
	}
	// 4th-order rolloff: two decades above the first corner the response
	// has collapsed.
	if got := magAt(t, b, 1e6); got > 1e-4 {
		t.Errorf("deep stopband = %g", got)
	}
	if _, err := BiquadCascade(0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestDistinctNodeNamespaces(t *testing.T) {
	// BiquadCascade sections must not collide on names.
	b, err := BiquadCascade(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(b.Circuit.Opamps()); got != 9 {
		t.Fatalf("opamps = %d, want 9", got)
	}
}

func TestTwinTNotch(t *testing.T) {
	const f0 = 1e3
	b, err := TwinTNotch(f0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deep null at f0, unity far away on both sides.
	if null := magAt(t, b, f0); null > 1e-6 {
		t.Errorf("|H(f0)| = %g, want ≈0 (perfect twin-T null)", null)
	}
	if lo := magAt(t, b, f0/100); math.Abs(lo-1) > 0.01 {
		t.Errorf("|H(f0/100)| = %g, want ≈1", lo)
	}
	if hi := magAt(t, b, f0*100); math.Abs(hi-1) > 0.01 {
		t.Errorf("|H(100·f0)| = %g, want ≈1", hi)
	}
	if _, err := TwinTNotch(0); err == nil {
		t.Fatal("zero f0 accepted")
	}
}
