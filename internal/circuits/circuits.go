// Package circuits is the benchmark circuit library: the paper's
// biquadratic filter (a three-opamp Tow–Thomas biquad with the same
// component inventory as Figure 1 — R1..R6, C1, C2) plus a set of classic
// opamp-RC filters used by the examples, the scaling benchmarks and the
// extension experiments.
//
// The paper does not publish component values, so the biquad here is
// dimensioned for f0 = 10 kHz with moderate Q; DESIGN.md documents this
// substitution. Every constructor returns a Bench carrying the circuit and
// the recommended configurable-opamp chain in signal order (the order the
// multi-configuration test inputs are chained in).
package circuits

import (
	"fmt"
	"math"

	"analogdft/internal/circuit"
	"analogdft/internal/spice"
)

// Bench bundles a benchmark circuit with its DFT chain.
type Bench struct {
	// Circuit is the nominal netlist with Input/Output set.
	Circuit *circuit.Circuit
	// Chain lists the opamps to make configurable, in test-chain order
	// (primary input towards primary output).
	Chain []string
	// Description is a one-line summary for reports.
	Description string
	// Deck is the parsed SPICE deck the bench was loaded from, when it
	// came from a netlist file rather than a constructor. It carries the
	// source line numbers and raw ground spellings that the netlist
	// linter reports against; nil for programmatic benches.
	Deck *spice.Deck
}

// Validate checks the bench invariants.
func (b *Bench) Validate() error {
	if err := b.Circuit.Validate(); err != nil {
		return err
	}
	for _, name := range b.Chain {
		comp, ok := b.Circuit.Component(name)
		if !ok {
			return fmt.Errorf("circuits: chain opamp %q missing", name)
		}
		if comp.Kind() != circuit.KindOpamp {
			return fmt.Errorf("circuits: chain member %q is not an opamp", name)
		}
	}
	return nil
}

// PaperBiquad builds the Tow–Thomas biquadratic filter standing in for
// Figure 1 of the paper: three opamps (damped inverting integrator,
// inverting integrator, unity inverter), six resistors R1..R6 and two
// capacitors C1, C2, with non-cascaded feedback from the inverter output
// back into the first stage.
//
// Topology (all opamp + inputs grounded):
//
//	R1: in → a      R2: v1 → a      C1: v1 → a     R4: v3 → a
//	OP1: (−=a, out=v1)
//	R5: v1 → b      C2: v2 → b
//	OP2: (−=b, out=v2)
//	R6: v2 → c      R3: v3 → c
//	OP3: (−=c, out=v3)
//
// The lowpass output is v3 with DC gain −R4/R1,
// ω0² = R3/(R4·R5·R6·C1·C2) and Q = R2·√(C1·R3/(R4·R5·R6·C2)).
// With the values below: f0 = 10 kHz, Q = 2, unity DC gain.
func PaperBiquad() *Bench {
	const (
		f0 = 10e3
		c  = 1e-9 // both capacitors
		q  = 2.0
	)
	r := 1 / (2 * math.Pi * f0 * c) // ≈ 15.92 kΩ

	ckt := circuit.New("paper-biquad")
	ckt.R("R1", "in", "a", r)
	ckt.R("R2", "v1", "a", q*r)
	ckt.Cap("C1", "v1", "a", c)
	ckt.R("R4", "v3", "a", r)
	ckt.OA("OP1", "0", "a", "v1")
	ckt.R("R5", "v1", "b", r)
	ckt.Cap("C2", "v2", "b", c)
	ckt.OA("OP2", "0", "b", "v2")
	ckt.R("R6", "v2", "c", r)
	ckt.R("R3", "v3", "c", r)
	ckt.OA("OP3", "0", "c", "v3")
	ckt.Input, ckt.Output = "in", "v3"
	return &Bench{
		Circuit:     ckt,
		Chain:       []string{"OP1", "OP2", "OP3"},
		Description: "Tow–Thomas biquadratic filter (paper Fig. 1 stand-in), f0=10 kHz Q=2",
	}
}

// SallenKeyLowpass builds a unity-gain Sallen–Key 2nd-order lowpass
// (single opamp, Butterworth at 10 kHz).
func SallenKeyLowpass() *Bench {
	const f0 = 10e3
	// Unity-gain Sallen–Key with C1 = 2Q²·C2 gives Q via the cap ratio;
	// Butterworth Q = 1/√2 ⇒ C1 = C2·2·(1/2) = C2 … use the standard
	// equal-R design: R1 = R2 = R, C1 = 2Q/(ω0·2R)… simplest exact choice:
	// R1 = R2 = R, C1 = Q/(π·f0·R)·? — dimension directly:
	q := 1 / math.Sqrt2
	r := 10e3
	w0 := 2 * math.Pi * f0
	c1 := 2 * q / (w0 * r) // across the opamp (x → out)
	c2 := 1 / (2 * q * w0 * r)

	ckt := circuit.New("sallen-key-lp")
	ckt.R("R1", "in", "x", r)
	ckt.R("R2", "x", "y", r)
	ckt.Cap("C1", "x", "out", c1)
	ckt.Cap("C2", "y", "0", c2)
	ckt.OA("OP1", "y", "out", "out")
	ckt.Input, ckt.Output = "in", "out"
	return &Bench{
		Circuit:     ckt,
		Chain:       []string{"OP1"},
		Description: "unity-gain Sallen–Key lowpass, Butterworth, f0=10 kHz",
	}
}

// SingleOpampBandpass builds an inverting single-opamp wide bandpass:
// series R1·C1 input branch, parallel R2·C2 feedback —
// H(s) = −(s·C1·R2) / ((1 + s·R1·C1)(1 + s·R2·C2)),
// passband gain −R2/R1 between f_lo = 1/(2πR1C1)·? (zero at DC, poles at
// 1/(2πR1C1) and 1/(2πR2C2)).
func SingleOpampBandpass() *Bench {
	ckt := circuit.New("sop-bandpass")
	ckt.Cap("C1", "in", "x", 100e-9) // lower corner with R1: ≈159 Hz
	ckt.R("R1", "x", "m", 10e3)
	ckt.R("R2", "m", "out", 10e3)
	ckt.Cap("C2", "m", "out", 1e-9) // upper corner ≈15.9 kHz
	ckt.OA("OP1", "0", "m", "out")
	ckt.Input, ckt.Output = "in", "out"
	return &Bench{
		Circuit:     ckt,
		Chain:       []string{"OP1"},
		Description: "single-opamp inverting bandpass, 159 Hz – 15.9 kHz",
	}
}

// KHNStateVariable builds a three-opamp state-variable (KHN-style) filter
// with a difference summer and two inverting integrators; the lowpass
// output is taken at the second integrator.
//
//	H_lp(s) = −1 / (s²τ² + 1.5·s·τ + 1), τ = R·C  (Q = 2/3)
func KHNStateVariable() *Bench {
	const f0 = 5e3
	c := 1e-9
	r := 1 / (2 * math.Pi * f0 * c)

	ckt := circuit.New("khn-state-variable")
	// Difference summer OP1: Vm = (Vin + Vlp + Vhp)/3 must equal
	// Vp = Vbp/2.
	ckt.R("R1", "in", "m", 10e3)
	ckt.R("R2", "lp", "m", 10e3)
	ckt.R("R3", "hp", "m", 10e3)
	ckt.R("R4", "bp", "p", 10e3)
	ckt.R("R5", "p", "0", 10e3)
	ckt.OA("OP1", "p", "m", "hp")
	// Integrator OP2: bp = −hp/(sτ).
	ckt.R("R6", "hp", "i1", r)
	ckt.Cap("C1", "bp", "i1", c)
	ckt.OA("OP2", "0", "i1", "bp")
	// Integrator OP3: lp = −bp/(sτ).
	ckt.R("R7", "bp", "i2", r)
	ckt.Cap("C2", "lp", "i2", c)
	ckt.OA("OP3", "0", "i2", "lp")
	ckt.Input, ckt.Output = "in", "lp"
	return &Bench{
		Circuit:     ckt,
		Chain:       []string{"OP1", "OP2", "OP3"},
		Description: "KHN-style state-variable filter, f0=5 kHz, lowpass output",
	}
}

// MultiStageLowpass builds a cascade of n identical inverting first-order
// lowpass stages (R into a virtual ground, R ∥ C feedback): per-stage DC
// gain −1 and corner f0. Useful for scaling studies: the DFT chain grows
// linearly with n.
func MultiStageLowpass(n int, f0 float64) (*Bench, error) {
	if n < 1 {
		return nil, fmt.Errorf("circuits: need at least one stage, got %d", n)
	}
	if f0 <= 0 {
		return nil, fmt.Errorf("circuits: bad corner %g", f0)
	}
	c := 1e-9
	r := 1 / (2 * math.Pi * f0 * c)

	ckt := circuit.New(fmt.Sprintf("multistage-lp-%d", n))
	var chain []string
	prev := "in"
	for k := 1; k <= n; k++ {
		m := fmt.Sprintf("m%d", k)
		v := fmt.Sprintf("v%d", k)
		ckt.R(fmt.Sprintf("Ra%d", k), prev, m, r)
		ckt.R(fmt.Sprintf("Rb%d", k), m, v, r)
		ckt.Cap(fmt.Sprintf("C%d", k), m, v, c)
		op := fmt.Sprintf("OP%d", k)
		ckt.OA(op, "0", m, v)
		chain = append(chain, op)
		prev = v
	}
	ckt.Input, ckt.Output = "in", prev
	return &Bench{
		Circuit:     ckt,
		Chain:       chain,
		Description: fmt.Sprintf("cascade of %d inverting RC lowpass stages, f0=%g Hz", n, f0),
	}, nil
}

// BiquadCascade builds a cascade of n Tow–Thomas biquads with staggered
// centre frequencies (each section f0 spaced by √2), producing a 2n-order
// lowpass with 3n opamps — the "complex block under test" scaling case.
func BiquadCascade(n int) (*Bench, error) {
	if n < 1 {
		return nil, fmt.Errorf("circuits: need at least one section, got %d", n)
	}
	ckt := circuit.New(fmt.Sprintf("biquad-cascade-%d", n))
	var chain []string
	prev := "in"
	f0 := 10e3
	for k := 1; k <= n; k++ {
		c := 1e-9
		r := 1 / (2 * math.Pi * f0 * c)
		q := 1.0
		p := func(s string) string { return fmt.Sprintf("%s_%d", s, k) }
		ckt.R(p("R1"), prev, p("a"), r)
		ckt.R(p("R2"), p("v1"), p("a"), q*r)
		ckt.Cap(p("C1"), p("v1"), p("a"), c)
		ckt.R(p("R4"), p("v3"), p("a"), r)
		ckt.OA(p("OP1"), "0", p("a"), p("v1"))
		ckt.R(p("R5"), p("v1"), p("b"), r)
		ckt.Cap(p("C2"), p("v2"), p("b"), c)
		ckt.OA(p("OP2"), "0", p("b"), p("v2"))
		ckt.R(p("R6"), p("v2"), p("c"), r)
		ckt.R(p("R3"), p("v3"), p("c"), r)
		ckt.OA(p("OP3"), "0", p("c"), p("v3"))
		chain = append(chain, p("OP1"), p("OP2"), p("OP3"))
		prev = p("v3")
		f0 *= math.Sqrt2
	}
	ckt.Input, ckt.Output = "in", prev
	return &Bench{
		Circuit:     ckt,
		Chain:       chain,
		Description: fmt.Sprintf("cascade of %d Tow–Thomas biquads (%d opamps)", n, 3*n),
	}, nil
}

// Library returns the fixed-size benchmark circuits by name.
func Library() map[string]*Bench {
	ms4, _ := MultiStageLowpass(4, 10e3)
	bc2, _ := BiquadCascade(2)
	lf5, _ := LeapfrogLowpass5(10e3)
	ttn, _ := TwinTNotch(10e3)
	return map[string]*Bench{
		"paper-biquad":       PaperBiquad(),
		"sallen-key-lp":      SallenKeyLowpass(),
		"sop-bandpass":       SingleOpampBandpass(),
		"khn-state-variable": KHNStateVariable(),
		"multistage-lp-4":    ms4,
		"biquad-cascade-2":   bc2,
		"leapfrog-lp5":       lf5,
		"twin-t-notch":       ttn,
	}
}

// TwinTNotch builds a buffered twin-T notch filter: the classic symmetric
// twin-T RC network (deep null at f0) driving a unity-gain opamp buffer.
// Components: R1 = R2 = R, R3 = R/2, C1 = C2 = C, C3 = 2C.
func TwinTNotch(f0Hz float64) (*Bench, error) {
	if f0Hz <= 0 {
		return nil, fmt.Errorf("circuits: bad notch frequency %g", f0Hz)
	}
	c := 1e-9
	r := 1 / (2 * math.Pi * f0Hz * c)

	ckt := circuit.New("twin-t-notch")
	// High-pass tee: C1 in→x, C2 x→out, R3 x→gnd.
	ckt.Cap("C1", "in", "x", c)
	ckt.Cap("C2", "x", "mid", c)
	ckt.R("R3", "x", "0", r/2)
	// Low-pass tee: R1 in→y, R2 y→out, C3 y→gnd.
	ckt.R("R1", "in", "y", r)
	ckt.R("R2", "y", "mid", r)
	ckt.Cap("C3", "y", "0", 2*c)
	// Unity buffer isolates the notch from the load.
	ckt.OA("OP1", "mid", "out", "out")
	ckt.Input, ckt.Output = "in", "out"
	return &Bench{
		Circuit:     ckt,
		Chain:       []string{"OP1"},
		Description: fmt.Sprintf("buffered twin-T notch, f0=%g Hz", f0Hz),
	}, nil
}
