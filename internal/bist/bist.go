// Package bist estimates the on-chip hardware needed to apply a
// multi-configuration test program in built-in self-test, the cost the
// paper's §4.2 invokes: "if BIST is under consideration, configurations
// are generated on-chip, and the minimization of the configuration number
// then simplifies the required test circuitry."
//
// The model is a gate-equivalent budget for the classic analog BIST
// skeleton: a sequencer that walks the stored configuration vectors, a
// programmable oscillator stepping through the stored test frequencies,
// and a window comparator checking the response magnitude per
// (configuration, frequency) cell against stored bounds. It plugs into
// the optimizer as a 2nd-order CostFunction, giving "minimize the number
// of configurations" an explicit silicon meaning.
package bist

import (
	"errors"
	"fmt"
	"math"

	"analogdft/internal/core"
)

// ErrBadModel is returned for invalid model parameters.
var ErrBadModel = errors.New("bist: bad model")

// Model prices the BIST blocks in gate equivalents (GE).
type Model struct {
	// ROMBitGE is the cost per stored bit (configuration vectors,
	// frequency tuning words, comparator bounds).
	ROMBitGE float64
	// CounterBitGE is the cost per sequencer counter bit.
	CounterBitGE float64
	// ComparatorGE is the cost of one window comparison (shared hardware,
	// amortized per stored window).
	ComparatorGE float64
	// OscillatorGE is the fixed cost of the programmable oscillator.
	OscillatorGE float64
	// FreqWordBits is the width of one frequency tuning word.
	FreqWordBits int
	// BoundBits is the width of one comparator bound (two per window).
	BoundBits int
}

// DefaultModel is a plausible small-geometry budget.
var DefaultModel = Model{
	ROMBitGE:     0.25,
	CounterBitGE: 6,
	ComparatorGE: 4,
	OscillatorGE: 400,
	FreqWordBits: 12,
	BoundBits:    8,
}

// Validate checks the model.
func (m Model) Validate() error {
	if m.ROMBitGE < 0 || m.CounterBitGE < 0 || m.ComparatorGE < 0 || m.OscillatorGE < 0 {
		return fmt.Errorf("%w: negative cost", ErrBadModel)
	}
	if m.FreqWordBits <= 0 || m.BoundBits <= 0 {
		return fmt.Errorf("%w: word widths %d/%d", ErrBadModel, m.FreqWordBits, m.BoundBits)
	}
	return nil
}

// Estimate is a BIST hardware budget.
type Estimate struct {
	// ConfigROMBits stores the configuration vectors (nConfigs × lines).
	ConfigROMBits int
	// FreqROMBits stores the frequency tuning words.
	FreqROMBits int
	// BoundROMBits stores the comparator windows (2 bounds per cell).
	BoundROMBits int
	// SeqCounterBits is the sequencer width (⌈log2(cells)⌉, min 1).
	SeqCounterBits int
	// Windows is the number of (configuration, frequency) cells.
	Windows int
	// GateEquivalents is the total budget.
	GateEquivalents float64
}

// Estimate budgets a program of nConfigs configurations over selLines
// selection lines with nFreqs total test frequencies (summed over
// configurations; each frequency is measured in its configuration).
func (m Model) Estimate(selLines, nConfigs, nFreqs int) (Estimate, error) {
	if err := m.Validate(); err != nil {
		return Estimate{}, err
	}
	if selLines <= 0 || nConfigs <= 0 || nFreqs < 0 {
		return Estimate{}, fmt.Errorf("%w: selLines=%d configs=%d freqs=%d", ErrBadModel, selLines, nConfigs, nFreqs)
	}
	e := Estimate{
		ConfigROMBits: nConfigs * selLines,
		FreqROMBits:   nFreqs * m.FreqWordBits,
		BoundROMBits:  nFreqs * 2 * m.BoundBits,
		Windows:       nFreqs,
	}
	cells := nFreqs
	if cells < nConfigs {
		cells = nConfigs
	}
	if cells < 2 {
		cells = 2
	}
	e.SeqCounterBits = int(math.Ceil(math.Log2(float64(cells))))
	if e.SeqCounterBits < 1 {
		e.SeqCounterBits = 1
	}
	e.GateEquivalents = m.OscillatorGE +
		m.ROMBitGE*float64(e.ConfigROMBits+e.FreqROMBits+e.BoundROMBits) +
		m.CounterBitGE*float64(e.SeqCounterBits) +
		m.ComparatorGE*float64(e.Windows)
	return e, nil
}

// CostFunction adapts the BIST budget as a 2nd-order requirement for
// core.Optimize: candidates are priced assuming freqsPerConfig test
// frequencies in each selected configuration.
func CostFunction(m Model, selLines, freqsPerConfig int) core.CostFunction {
	return core.CostFunction{
		Name: fmt.Sprintf("BIST gate equivalents (%d sel lines, %d freqs/config)", selLines, freqsPerConfig),
		Cost: func(c *core.Candidate) float64 {
			est, err := m.Estimate(selLines, c.NumConfigs, c.NumConfigs*freqsPerConfig)
			if err != nil {
				return math.Inf(1)
			}
			return est.GateEquivalents
		},
	}
}
