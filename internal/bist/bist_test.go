package bist

import (
	"errors"
	"math"
	"testing"

	"analogdft/internal/core"
	"analogdft/internal/paperdata"
)

func TestModelValidate(t *testing.T) {
	if err := DefaultModel.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultModel
	bad.ROMBitGE = -1
	if err := bad.Validate(); !errors.Is(err, ErrBadModel) {
		t.Error("negative ROM cost accepted")
	}
	bad = DefaultModel
	bad.FreqWordBits = 0
	if err := bad.Validate(); !errors.Is(err, ErrBadModel) {
		t.Error("zero word width accepted")
	}
}

func TestEstimateAccounting(t *testing.T) {
	m := Model{ROMBitGE: 1, CounterBitGE: 10, ComparatorGE: 2, OscillatorGE: 100, FreqWordBits: 8, BoundBits: 4}
	e, err := m.Estimate(3, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if e.ConfigROMBits != 6 { // 2 configs × 3 lines
		t.Errorf("config ROM = %d", e.ConfigROMBits)
	}
	if e.FreqROMBits != 32 { // 4 × 8
		t.Errorf("freq ROM = %d", e.FreqROMBits)
	}
	if e.BoundROMBits != 32 { // 4 × 2 × 4
		t.Errorf("bound ROM = %d", e.BoundROMBits)
	}
	if e.SeqCounterBits != 2 { // ceil(log2(4))
		t.Errorf("counter = %d", e.SeqCounterBits)
	}
	if e.Windows != 4 {
		t.Errorf("windows = %d", e.Windows)
	}
	want := 100.0 + 1*(6+32+32) + 10*2 + 2*4
	if math.Abs(e.GateEquivalents-want) > 1e-9 {
		t.Errorf("GE = %g, want %g", e.GateEquivalents, want)
	}
}

func TestEstimateMonotoneInConfigs(t *testing.T) {
	prev := -1.0
	for n := 1; n <= 8; n++ {
		e, err := DefaultModel.Estimate(3, n, n*3)
		if err != nil {
			t.Fatal(err)
		}
		if e.GateEquivalents <= prev {
			t.Fatalf("GE not increasing at %d configs", n)
		}
		prev = e.GateEquivalents
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := DefaultModel.Estimate(0, 2, 2); !errors.Is(err, ErrBadModel) {
		t.Error("zero sel lines accepted")
	}
	if _, err := DefaultModel.Estimate(3, 0, 2); !errors.Is(err, ErrBadModel) {
		t.Error("zero configs accepted")
	}
	if _, err := DefaultModel.Estimate(3, 2, -1); !errors.Is(err, ErrBadModel) {
		t.Error("negative freqs accepted")
	}
	bad := DefaultModel
	bad.BoundBits = 0
	if _, err := bad.Estimate(3, 2, 2); !errors.Is(err, ErrBadModel) {
		t.Error("invalid model accepted in Estimate")
	}
}

func TestEstimateMinimumCounter(t *testing.T) {
	e, err := DefaultModel.Estimate(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.SeqCounterBits < 1 {
		t.Fatalf("counter bits = %d", e.SeqCounterBits)
	}
}

// Driving the §4.2 optimization with the BIST cost must still select a
// 2-configuration set on the paper matrix (the budget is monotone in the
// configuration count).
func TestCostFunctionOnPaperMatrix(t *testing.T) {
	mx := paperdata.Matrix()
	cost := CostFunction(DefaultModel, 3, 3)
	res, err := core.Optimize(mx, paperdata.OpampNames, cost)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.NumConfigs != 2 {
		t.Fatalf("BIST-optimal set = %v", res.Best.Labels)
	}
	if res.CostName == "" {
		t.Error("cost name empty")
	}
}

func TestCostFunctionInfeasible(t *testing.T) {
	cost := CostFunction(DefaultModel, 0, 3) // invalid sel lines
	c := &core.Candidate{NumConfigs: 2}
	if !math.IsInf(cost.Cost(c), 1) {
		t.Fatal("invalid estimate should price to +Inf")
	}
}
