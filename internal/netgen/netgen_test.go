package netgen

import (
	"errors"
	"testing"

	"analogdft/internal/analysis"
	"analogdft/internal/boolexpr"
	"analogdft/internal/core"
	"analogdft/internal/detect"
	"analogdft/internal/dft"
	"analogdft/internal/fault"
	"analogdft/internal/mna"
)

func TestSpecValidate(t *testing.T) {
	if err := (Spec{Stages: 0}).Validate(); !errors.Is(err, ErrBadSpec) {
		t.Error("zero stages accepted")
	}
	if err := (Spec{Stages: 2, F0Lo: 10, F0Hi: 5}).Validate(); !errors.Is(err, ErrBadSpec) {
		t.Error("inverted corners accepted")
	}
	if err := (Spec{Stages: 2}).Validate(); err != nil {
		t.Error(err)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, err := Random(Spec{Stages: 3, Seed: 42, AllowBiquad: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(Spec{Stages: 3, Seed: 42, AllowBiquad: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Circuit.Components()) != len(b.Circuit.Components()) {
		t.Fatal("same seed produced different circuits")
	}
	for i, comp := range a.Circuit.Components() {
		if comp.Name() != b.Circuit.Components()[i].Name() {
			t.Fatal("component order differs")
		}
	}
}

func TestRandomCircuitsAreValidAndSolvable(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		b, err := Random(Spec{Stages: 1 + int(seed%4), Seed: seed, AllowBiquad: seed%3 == 0})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := mna.TransferAt(b.Circuit, 1e3); err != nil {
			t.Fatalf("seed %d: solve: %v", seed, err)
		}
		if len(b.Chain) == 0 {
			t.Fatalf("seed %d: empty chain", seed)
		}
	}
}

// Pipeline fuzz: the complete flow — fault universe, DFT application,
// matrix construction, optimization — must succeed (or fail cleanly with a
// region error for corner cases) on random circuits, and when it succeeds
// the optimized candidate must achieve the matrix's maximum coverage.
func TestPipelineFuzz(t *testing.T) {
	opts := detect.Options{
		Points: 31,
		Region: analysis.Region{LoHz: 100, HiHz: 1e6},
	}
	ran := 0
	for seed := int64(1); seed <= 20; seed++ {
		bench, err := Random(Spec{Stages: 1 + int(seed%3), Seed: seed, AllowBiquad: seed%4 == 0})
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		faults := fault.DeviationUniverse(bench.Circuit, 0.2)
		m, err := dft.Apply(bench.Circuit, bench.Chain)
		if err != nil {
			t.Fatalf("seed %d: dft: %v", seed, err)
		}
		mx, err := detect.BuildMatrix(m, faults, opts)
		if err != nil {
			t.Fatalf("seed %d: matrix: %v", seed, err)
		}
		res, err := core.Optimize(mx, bench.Chain, core.ConfigCountCost)
		if err != nil {
			// Petrick blowups are conceivable on wide chains; everything
			// else is a bug.
			if errors.Is(err, boolexpr.ErrTooLarge) {
				continue
			}
			t.Fatalf("seed %d: optimize: %v", seed, err)
		}
		if res.Best == nil {
			t.Fatalf("seed %d: no best candidate", seed)
		}
		if res.Best.Coverage != res.MaxCoverage {
			t.Fatalf("seed %d: best coverage %g < max %g", seed, res.Best.Coverage, res.MaxCoverage)
		}
		// Cross-check against the exact set-cover solver.
		exact, err := core.ExactMinSolution(mx, bench.Chain)
		if err != nil {
			t.Fatalf("seed %d: exact: %v", seed, err)
		}
		if exact.NumConfigs != res.Best.NumConfigs {
			t.Fatalf("seed %d: Petrick minimal %d != exact cover %d", seed, res.Best.NumConfigs, exact.NumConfigs)
		}
		ran++
	}
	if ran < 15 {
		t.Fatalf("only %d of 20 fuzz cases completed", ran)
	}
}
