// Package netgen generates random — but guaranteed-stable — active-RC
// circuits for fuzzing the analysis and optimization pipeline: cascades of
// inverting first-order stages (lowpass, highpass, flat gain) with an
// occasional Tow–Thomas biquad section. Generation is deterministic in the
// seed, so failures reproduce.
package netgen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"analogdft/internal/circuit"
	"analogdft/internal/circuits"
)

// ErrBadSpec is returned for invalid generation parameters.
var ErrBadSpec = errors.New("netgen: bad spec")

// Spec parameterizes generation.
type Spec struct {
	// Stages is the number of cascaded stages (each contributes 1 opamp,
	// except biquad sections which contribute 3).
	Stages int
	// Seed drives the deterministic RNG.
	Seed int64
	// F0Lo/F0Hi bound the random corner frequencies (defaults 1 kHz /
	// 100 kHz).
	F0Lo, F0Hi float64
	// AllowBiquad permits Tow–Thomas sections in the mix.
	AllowBiquad bool
}

func (s Spec) withDefaults() Spec {
	if s.F0Lo == 0 {
		s.F0Lo = 1e3
	}
	if s.F0Hi == 0 {
		s.F0Hi = 100e3
	}
	return s
}

// Validate checks the spec.
func (s Spec) Validate() error {
	s = s.withDefaults()
	if s.Stages < 1 {
		return fmt.Errorf("%w: %d stages", ErrBadSpec, s.Stages)
	}
	if s.F0Lo <= 0 || s.F0Hi <= s.F0Lo {
		return fmt.Errorf("%w: corner range [%g, %g]", ErrBadSpec, s.F0Lo, s.F0Hi)
	}
	return nil
}

// Random generates a circuit per the spec.
func Random(spec Spec) (*circuits.Bench, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	ckt := circuit.New(fmt.Sprintf("netgen-%d-%d", spec.Stages, spec.Seed))
	var chain []string
	prev := "in"
	kinds := 3
	if spec.AllowBiquad {
		kinds = 4
	}
	randF0 := func() float64 {
		// Log-uniform corner.
		lo, hi := math.Log(spec.F0Lo), math.Log(spec.F0Hi)
		return math.Exp(lo + rng.Float64()*(hi-lo))
	}
	for k := 1; k <= spec.Stages; k++ {
		p := func(s string) string { return fmt.Sprintf("%s_%d", s, k) }
		gain := 0.5 + rng.Float64()*1.5
		switch rng.Intn(kinds) {
		case 0: // inverting lowpass: Rin, Rf ∥ C.
			f0 := randF0()
			c := 1e-9
			rf := 1 / (2 * math.Pi * f0 * c)
			ckt.R(p("Ra"), prev, p("m"), rf/gain)
			ckt.R(p("Rb"), p("m"), p("v"), rf)
			ckt.Cap(p("C"), p("m"), p("v"), c)
			ckt.OA(p("OP"), "0", p("m"), p("v"))
		case 1: // flat inverting amplifier.
			r := 10e3
			ckt.R(p("Ra"), prev, p("m"), r)
			ckt.R(p("Rb"), p("m"), p("v"), r*gain)
			ckt.OA(p("OP"), "0", p("m"), p("v"))
		case 2: // inverting highpass: C + R series input, R feedback.
			f0 := randF0()
			c := 10e-9
			rs := 1 / (2 * math.Pi * f0 * c)
			ckt.Cap(p("C"), prev, p("x"), c)
			ckt.R(p("Ra"), p("x"), p("m"), rs)
			ckt.R(p("Rb"), p("m"), p("v"), rs*gain)
			ckt.OA(p("OP"), "0", p("m"), p("v"))
		default: // Tow–Thomas biquad section (3 opamps).
			f0 := randF0()
			c := 1e-9
			r := 1 / (2 * math.Pi * f0 * c)
			q := 0.6 + rng.Float64()*2
			ckt.R(p("R1"), prev, p("a"), r/gain)
			ckt.R(p("R2"), p("v1"), p("a"), q*r)
			ckt.Cap(p("C1"), p("v1"), p("a"), c)
			ckt.R(p("R4"), p("v"), p("a"), r)
			ckt.OA(p("OP1"), "0", p("a"), p("v1"))
			ckt.R(p("R5"), p("v1"), p("b"), r)
			ckt.Cap(p("C2"), p("v2"), p("b"), c)
			ckt.OA(p("OP2"), "0", p("b"), p("v2"))
			ckt.R(p("R6"), p("v2"), p("cn"), r)
			ckt.R(p("R3"), p("v"), p("cn"), r)
			ckt.OA(p("OP3"), "0", p("cn"), p("v"))
			chain = append(chain, p("OP1"), p("OP2"))
			// OP3 appended below with the common path.
			prev = p("v")
			chain = append(chain, p("OP3"))
			continue
		}
		chain = append(chain, p("OP"))
		prev = p("v")
	}
	ckt.Input, ckt.Output = "in", prev
	return &circuits.Bench{
		Circuit:     ckt,
		Chain:       chain,
		Description: fmt.Sprintf("random active-RC cascade (seed %d, %d stages)", spec.Seed, spec.Stages),
	}, nil
}
