package mna

import (
	"errors"
	"fmt"
	"math"

	"analogdft/internal/circuit"
	"analogdft/internal/numeric"
)

// ErrNotLowRank flags a value patch that cannot be expressed as a rank-1
// update of the assembled MNA matrix: opamp model changes re-stamp a
// frequency-dependent constraint row, and source amplitude patches move
// the excitation vector rather than the matrix. Callers fall back to the
// in-place stamp patch (SetValue) or the clone path.
var ErrNotLowRank = errors.New("mna: patch is not a rank-1 stamp update")

// RankOne is the rank-1 perturbation of the assembled MNA matrix produced
// by patching one component's value: for every frequency,
//
//	ΔM(ω) = (GCoef + jω·CCoef) · u·vᵀ
//
// with u and v sparse (a handful of node/branch entries). GCoef carries
// the frequency-independent part of the delta (conductances, controlled
// source gains), CCoef the part proportional to jω (capacitances,
// inductor branch equations); exactly one of the two is nonzero for every
// supported component. The factors address the same unknown ordering as
// System.N()/NodeNames.
type RankOne struct {
	// UIdx/UVal are the nonzero entries of the column factor u.
	UIdx []int
	UVal []complex128
	// VIdx/VVal are the nonzero entries of the row factor v.
	VIdx []int
	VVal []complex128
	// GCoef scales u·vᵀ frequency-independently; CCoef scales it by jω.
	GCoef complex128
	CCoef complex128
}

// ScaleAt returns the frequency-dependent scalar s(ω) = GCoef + jω·CCoef,
// so that ΔM = s·u·vᵀ at the given frequency.
func (d RankOne) ScaleAt(freqHz float64) complex128 {
	return d.GCoef + complex(0, 2*math.Pi*freqHz)*d.CCoef
}

// DenseInto scatters the sparse factors into dense length-n buffers,
// zeroing them first. Typical callers fill the buffers once per fault and
// reuse them across every grid point.
func (d RankOne) DenseInto(u, v []complex128) {
	clear(u)
	clear(v)
	for k, i := range d.UIdx {
		u[i] = d.UVal[k]
	}
	for k, i := range d.VIdx {
		v[i] = d.VVal[k]
	}
}

// incidence returns the sparse ±1 incidence vector of a two-terminal
// element between matrix rows a and b (either may be −1 for ground).
func incidence(a, b int) ([]int, []complex128) {
	var idx []int
	var val []complex128
	if a >= 0 {
		idx = append(idx, a)
		val = append(val, 1)
	}
	if b >= 0 {
		idx = append(idx, b)
		val = append(val, -1)
	}
	return idx, val
}

// RankOneDelta expresses "component name patched to value v" as a rank-1
// update of the assembled matrix, without touching the system: unlike
// SetValue nothing is stamped, so the cached G/C split and any live LU
// factorization of the nominal matrix stay valid. The delta is computed
// against the component's current effective value — the patched value if
// SetValue is live on it, the nominal otherwise — mirroring SetValue's
// composition rule.
//
// Supported are the components whose patch touches matrix entries in a
// single outer-product pattern: R, C, L and the four controlled sources.
// Opamps (per-point constraint rows) and independent sources (excitation
// patches) return ErrNotLowRank; a resistor patched from or to exactly
// zero returns ErrUnsupported, exactly as SetValue would.
func (s *System) RankOneDelta(name string, v float64) (RankOne, error) {
	if !s.stampsBuilt {
		if err := s.buildStamps(); err != nil {
			return RankOne{}, err
		}
		accountStamps(true)
	}
	comp, ok := s.ckt.Component(name)
	if !ok {
		return RankOne{}, fmt.Errorf("mna: unknown component %q", name)
	}
	old, patched := s.patchedVals[name]

	switch c := comp.(type) {
	case *circuit.Resistor:
		if !patched {
			old = c.Ohms
		}
		if old == 0 || v == 0 {
			return RankOne{}, fmt.Errorf("%w: resistor %q patched to zero resistance", ErrUnsupported, name)
		}
		idx, val := incidence(s.node(c.A), s.node(c.B))
		return RankOne{UIdx: idx, UVal: val, VIdx: idx, VVal: val, GCoef: complex(1/v-1/old, 0)}, nil

	case *circuit.Capacitor:
		if !patched {
			old = c.Farads
		}
		idx, val := incidence(s.node(c.A), s.node(c.B))
		return RankOne{UIdx: idx, UVal: val, VIdx: idx, VVal: val, CCoef: complex(v-old, 0)}, nil

	case *circuit.Inductor:
		if !patched {
			old = c.Henries
		}
		br := s.branchOf[name]
		e := []int{br}
		one := []complex128{1}
		return RankOne{UIdx: e, UVal: one, VIdx: e, VVal: one, CCoef: -complex(v-old, 0)}, nil

	case *circuit.VCVS:
		if !patched {
			old = c.Gain
		}
		br := s.branchOf[name]
		idx, val := incidence(s.node(c.CtrlM), s.node(c.CtrlP)) // −gain on CtrlP, +gain on CtrlM
		return RankOne{UIdx: []int{br}, UVal: []complex128{1}, VIdx: idx, VVal: val, GCoef: complex(v-old, 0)}, nil

	case *circuit.VCCS:
		if !patched {
			old = c.Gm
		}
		uIdx, uVal := incidence(s.node(c.OutP), s.node(c.OutM))
		vIdx, vVal := incidence(s.node(c.CtrlP), s.node(c.CtrlM))
		return RankOne{UIdx: uIdx, UVal: uVal, VIdx: vIdx, VVal: vVal, GCoef: complex(v-old, 0)}, nil

	case *circuit.CCVS:
		if !patched {
			old = c.Rt
		}
		ctrlBr, okBr := s.branchOf[c.CtrlVSource]
		if !okBr {
			return RankOne{}, fmt.Errorf("%w: CCVS %q controls through %q, which has no branch current", ErrUnsupported, name, c.CtrlVSource)
		}
		return RankOne{
			UIdx: []int{s.branchOf[name]}, UVal: []complex128{1},
			VIdx: []int{ctrlBr}, VVal: []complex128{1},
			GCoef: complex(-(v - old), 0),
		}, nil

	case *circuit.CCCS:
		if !patched {
			old = c.Gain
		}
		ctrlBr, okBr := s.branchOf[c.CtrlVSource]
		if !okBr {
			return RankOne{}, fmt.Errorf("%w: CCCS %q controls through %q, which has no branch current", ErrUnsupported, name, c.CtrlVSource)
		}
		uIdx, uVal := incidence(s.node(c.OutP), s.node(c.OutM))
		return RankOne{UIdx: uIdx, UVal: uVal, VIdx: []int{ctrlBr}, VVal: []complex128{1}, GCoef: complex(v-old, 0)}, nil

	case *circuit.VSource, *circuit.ISource:
		return RankOne{}, fmt.Errorf("%w: %T %q patches the excitation vector, not the matrix", ErrNotLowRank, comp, name)

	default:
		return RankOne{}, fmt.Errorf("%w: cannot express %T %q as u·vᵀ", ErrNotLowRank, comp, name)
	}
}

// AssembleInto assembles the MNA system at one frequency into
// caller-owned storage: m must be N()×N() and rhs length N(). This is the
// exported face of the per-point assembly the sweep loop uses, for
// callers that keep their own per-frequency factorizations (the low-rank
// sweep path factors the nominal matrix once per grid point and then
// solves every rank-1 fault against it).
func (s *System) AssembleInto(freqHz float64, m *numeric.Matrix, rhs []complex128) error {
	if m.Rows != s.n || m.Cols != s.n || len(rhs) != s.n {
		return fmt.Errorf("%w: assemble into %dx%d/rhs %d, want %d", numeric.ErrShape, m.Rows, m.Cols, len(rhs), s.n)
	}
	rebuilt, err := s.assemble(freqHz, m, rhs)
	if err != nil {
		return err
	}
	accountStamps(rebuilt)
	return nil
}

// AssembleValsInto is AssembleInto for sparse-resolved systems: the
// assembled M = G + jω·C values land in mv (length Pattern().NNZ())
// under the shared pattern, and rhs (length N()) receives the
// excitation. Callers resolve the layout first (ResolveLayout) and size
// mv from the pattern.
func (s *System) AssembleValsInto(freqHz float64, mv, rhs []complex128) error {
	rebuilt, err := s.ensureStamps()
	if err != nil {
		return err
	}
	if s.resolved != LayoutSparse {
		return fmt.Errorf("%w: sparse assembly on %v-layout system", numeric.ErrShape, s.resolved)
	}
	if len(mv) != s.pat.NNZ() || len(rhs) != s.n {
		return fmt.Errorf("%w: assemble into %d values/rhs %d, want %d/%d", numeric.ErrShape, len(mv), len(rhs), s.pat.NNZ(), s.n)
	}
	if _, err := s.assembleVals(freqHz, mv, rhs); err != nil {
		return err
	}
	accountStamps(rebuilt)
	return nil
}

// NodeIndex returns the unknown-vector index of a node, or −1 for ground.
func (s *System) NodeIndex(node string) (int, error) {
	if circuit.IsGroundName(node) {
		return -1, nil
	}
	i, ok := s.nodeIndex[circuit.CanonicalNode(node)]
	if !ok {
		return 0, fmt.Errorf("mna: unknown node %q", node)
	}
	return i, nil
}
