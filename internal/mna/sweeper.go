package mna

import (
	"fmt"
	"time"

	"analogdft/internal/circuit"
	"analogdft/internal/numeric"
	"analogdft/internal/obs"
)

// Sweeper is the allocation-free fast path for frequency sweeps that only
// observe a single node (the detectability engine's hot loop): the MNA
// matrix, right-hand side and pivot buffers are reused across points and
// the factorization happens in place.
type Sweeper struct {
	sys     *System
	m       *numeric.Matrix
	rhs     []complex128
	pivot   []int
	nodeIdx int // -1 for ground
	tally   solveTally
}

// NewSweeper prepares a sweeper observing the given node.
func (s *System) NewSweeper(node string) (*Sweeper, error) {
	idx := -1
	if !circuit.IsGroundName(node) {
		i, ok := s.nodeIndex[circuit.CanonicalNode(node)]
		if !ok {
			return nil, fmt.Errorf("mna: unknown node %q", node)
		}
		idx = i
	}
	return &Sweeper{
		sys:     s,
		m:       numeric.NewMatrix(s.n, s.n),
		rhs:     make([]complex128, s.n),
		pivot:   make([]int, s.n),
		nodeIdx: idx,
	}, nil
}

// FlushMetrics publishes the sweep's locally tallied solve counters to the
// global registry. Callers that loop over VoltageAt should flush once the
// sweep is done (counts are invisible to metric snapshots until then).
func (sw *Sweeper) FlushMetrics() { sw.tally.flush() }

// VoltageAt solves the system at one frequency and returns the observed
// node's voltage, reusing all buffers. Errors are exactly those of
// SolveAt (numeric.ErrSingular for singular points).
func (sw *Sweeper) VoltageAt(freqHz float64) (complex128, error) {
	timed := obs.TimingOn()
	var t0 time.Time
	if timed {
		t0 = obs.Now()
	}
	if err := sw.sys.assemble(freqHz, sw.m, sw.rhs); err != nil {
		sw.tally.record(err, t0, timed)
		return 0, err
	}
	lu, err := numeric.FactorInPlace(sw.m, sw.pivot)
	if err != nil {
		sw.tally.record(err, t0, timed)
		return 0, &SolveError{Circuit: sw.sys.ckt.Name, FreqHz: freqHz, Err: err}
	}
	if err := lu.SolveInPlace(sw.rhs); err != nil {
		sw.tally.record(err, t0, timed)
		return 0, err
	}
	sw.tally.record(nil, t0, timed)
	if sw.nodeIdx < 0 {
		return 0, nil
	}
	return sw.rhs[sw.nodeIdx], nil
}
