package mna

import (
	"fmt"
	"time"

	"analogdft/internal/circuit"
	"analogdft/internal/numeric"
	"analogdft/internal/obs"
)

// Sweeper is the allocation-free fast path for frequency sweeps that only
// observe a single node (the detectability engine's hot loop): one
// numeric.Workspace (matrix + rhs + pivots) is handed down and reused
// across points, and the factorization happens in place.
type Sweeper struct {
	sys     *System
	ws      *numeric.Workspace
	nodeIdx int // -1 for ground
	tally   solveTally
}

// NewSweeper prepares a sweeper observing the given node, with its own
// workspace.
func (s *System) NewSweeper(node string) (*Sweeper, error) {
	return s.NewSweeperWS(node, nil)
}

// NewSweeperWS is NewSweeper reusing a caller-owned workspace (resized to
// fit); pass nil to allocate a fresh one.
func (s *System) NewSweeperWS(node string, ws *numeric.Workspace) (*Sweeper, error) {
	idx := -1
	if !circuit.IsGroundName(node) {
		i, ok := s.nodeIndex[circuit.CanonicalNode(node)]
		if !ok {
			return nil, fmt.Errorf("mna: unknown node %q", node)
		}
		idx = i
	}
	if ws == nil {
		// Empty, not NewWorkspace: the layout is resolved lazily with the
		// stamps, and a sparse-resolved system must never be charged for
		// a dense n×n matrix it will not use. VoltageAt sizes the right
		// buffer set per layout (amortized to pointer/cap compares).
		ws = &numeric.Workspace{}
	}
	return &Sweeper{
		sys:     s,
		ws:      ws,
		nodeIdx: idx,
	}, nil
}

// FlushMetrics publishes the sweep's locally tallied solve counters to the
// global registry. Callers that loop over VoltageAt themselves should
// flush once the sweep is done (counts are invisible to metric snapshots
// until then); SweepGrid flushes automatically.
func (sw *Sweeper) FlushMetrics() { sw.tally.flush() }

// VoltageAt solves the system at one frequency and returns the observed
// node's voltage, reusing all buffers. Errors are exactly those of
// SolveAt (numeric.ErrSingular for singular points).
func (sw *Sweeper) VoltageAt(freqHz float64) (complex128, error) {
	timed := obs.TimingOn()
	var t0 time.Time
	if timed {
		t0 = obs.Now()
	}
	if err := validFreq(freqHz); err != nil {
		sw.tally.record(err, t0, timed)
		return 0, err
	}
	rebuilt, err := sw.sys.ensureStamps()
	if err != nil {
		sw.tally.record(err, t0, timed)
		return 0, err
	}
	sw.tally.recordStamps(rebuilt)
	if sw.sys.resolved == LayoutSparse {
		sw.ws.EnsureSparse(sw.sys.pat)
		if _, err := sw.sys.assembleVals(freqHz, sw.ws.SVals, sw.ws.RHS); err != nil {
			sw.tally.record(err, t0, timed)
			return 0, err
		}
		lu, err := sw.ws.SparseFactor()
		if err != nil {
			sw.tally.record(err, t0, timed)
			return 0, &SolveError{Circuit: sw.sys.ckt.Name, FreqHz: freqHz, Err: err}
		}
		if err := lu.SolveInPlace(sw.ws.RHS); err != nil {
			sw.tally.record(err, t0, timed)
			return 0, &SolveError{Circuit: sw.sys.ckt.Name, FreqHz: freqHz, Err: err}
		}
	} else {
		// Sized once per system, not repaired per point: after the first
		// call the buffers fit, and a caller-corrupted workspace surfaces
		// as a wrapped solve error below instead of being silently mended.
		if sw.ws.M == nil || sw.ws.M.Rows != sw.sys.n {
			sw.ws.Ensure(sw.sys.n)
		}
		if _, err := sw.sys.assemble(freqHz, sw.ws.M, sw.ws.RHS); err != nil {
			sw.tally.record(err, t0, timed)
			return 0, err
		}
		lu, err := numeric.FactorInPlace(sw.ws.M, sw.ws.Pivot)
		if err != nil {
			sw.tally.record(err, t0, timed)
			return 0, &SolveError{Circuit: sw.sys.ckt.Name, FreqHz: freqHz, Err: err}
		}
		if err := lu.SolveInPlace(sw.ws.RHS); err != nil {
			sw.tally.record(err, t0, timed)
			// Wrapped exactly like the FactorInPlace failure above, so
			// analysis.ClassifyError and the retry policies classify a failed
			// back-substitution identically to a failed factorization.
			return 0, &SolveError{Circuit: sw.sys.ckt.Name, FreqHz: freqHz, Err: err}
		}
	}
	sw.tally.record(nil, t0, timed)
	if sw.nodeIdx < 0 {
		return 0, nil
	}
	return sw.ws.RHS[sw.nodeIdx], nil
}

// SweepGrid solves the system across the whole grid, invoking visit for
// every point with the point index, the observed voltage and the solve
// error (nil on success); returning a non-nil error from visit aborts the
// sweep and is returned. The solve counters tallied during the sweep are
// flushed on return — callers cannot forget the FlushMetrics contract the
// way hand-rolled VoltageAt loops could.
func (sw *Sweeper) SweepGrid(grid []float64, visit func(i int, v complex128, err error) error) error {
	defer sw.FlushMetrics()
	for i, f := range grid {
		v, err := sw.VoltageAt(f)
		if err := visit(i, v, err); err != nil {
			return err
		}
	}
	return nil
}

// System returns the system the sweeper solves — the handle through which
// engine callers patch values (SetValue/Reset) between sweeps.
func (sw *Sweeper) System() *System { return sw.sys }

// Workspace returns the sweeper's workspace so engine callers can run
// auxiliary factorizations (the low-rank grid cache build) in the same
// buffers instead of warming up a second workspace. The sweeper fully
// re-stamps and re-factors on every VoltageAt, so borrowing the buffers
// between solves is safe; borrowed factors must be detached before the
// next VoltageAt call, which reuses the scratch.
func (sw *Sweeper) Workspace() *numeric.Workspace { return sw.ws }
