package mna

import (
	"errors"
	"math/cmplx"
	"testing"

	"analogdft/internal/circuit"
	"analogdft/internal/numeric"
)

// lowRankCircuit exercises every rank-1-patchable component kind, plus an
// opamp and the independent sources that must be refused.
func lowRankCircuit() *circuit.Circuit {
	c := circuit.New("lr")
	c.V("V1", "in", "0", 1)
	c.R("R1", "in", "n1", 1e3)
	c.Cap("C1", "n1", "0", 10e-9)
	c.L("L1", "n1", "n2", 1e-3)
	c.R("R2", "n2", "0", 2e3)
	c.E("E1", "n3", "0", "n1", "0", 2)
	c.R("RE", "n3", "0", 1e3)
	c.G("G1", "n4", "0", "n2", "0", 1e-3)
	c.R("RG", "n4", "0", 1e3)
	c.H("H1", "n5", "0", "V1", 50)
	c.R("RH", "n5", "0", 1e3)
	c.F("F1", "n6", "0", "V1", 3)
	c.R("RF", "n6", "0", 1e3)
	c.I("I1", "n6", "0", 1e-3)
	return c
}

// assembleAt returns a fresh assembly of sys at freqHz.
func assembleAt(t *testing.T, sys *System, freqHz float64) (*numeric.Matrix, []complex128) {
	t.Helper()
	m := numeric.NewMatrix(sys.N(), sys.N())
	rhs := make([]complex128, sys.N())
	if err := sys.AssembleInto(freqHz, m, rhs); err != nil {
		t.Fatal(err)
	}
	return m, rhs
}

// TestRankOneDeltaMatchesSetValue checks, for every supported component
// kind, that the rank-1 delta reproduces exactly the assembled-matrix
// difference a SetValue patch causes: M(patched) = M(nominal) + s·u·vᵀ.
func TestRankOneDeltaMatchesSetValue(t *testing.T) {
	cases := []struct {
		comp  string
		value float64
	}{
		{"R1", 1.3e3},
		{"C1", 14e-9},
		{"L1", 2.5e-3},
		{"E1", 3.5},
		{"G1", 2e-3},
		{"H1", 75},
		{"F1", 4.5},
	}
	const freq = 1234.5
	for _, c := range cases {
		t.Run(c.comp, func(t *testing.T) {
			sys, err := NewSystem(lowRankCircuit())
			if err != nil {
				t.Fatal(err)
			}
			nom, nomRHS := assembleAt(t, sys, freq)

			d, err := sys.RankOneDelta(c.comp, c.value)
			if err != nil {
				t.Fatalf("RankOneDelta(%s): %v", c.comp, err)
			}
			if d.GCoef != 0 && d.CCoef != 0 {
				t.Fatalf("delta mixes G and C parts: %+v", d)
			}

			if err := sys.SetValue(c.comp, c.value); err != nil {
				t.Fatal(err)
			}
			patched, patchedRHS := assembleAt(t, sys, freq)

			// Expected: nominal + s·u·vᵀ scattered densely.
			n := sys.N()
			u := make([]complex128, n)
			v := make([]complex128, n)
			d.DenseInto(u, v)
			s := d.ScaleAt(freq)
			want := nom.Clone()
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					want.Add(i, j, s*u[i]*v[j])
				}
			}
			tol := 1e-12 * (1 + want.MaxAbs())
			if !patched.Equalish(want, tol) {
				t.Errorf("patched assembly differs from nominal + s·u·vᵀ\npatched: %v\nwant: %v", patched, want)
			}
			for i := range nomRHS {
				if nomRHS[i] != patchedRHS[i] {
					t.Errorf("rhs[%d] moved under a matrix-only patch: %v -> %v", i, nomRHS[i], patchedRHS[i])
				}
			}
		})
	}
}

// TestRankOneDeltaComposesWithLivePatch checks the delta is computed
// against the current patched value, mirroring SetValue's composition.
func TestRankOneDeltaComposesWithLivePatch(t *testing.T) {
	sys, err := NewSystem(lowRankCircuit())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetValue("R1", 2e3); err != nil {
		t.Fatal(err)
	}
	d, err := sys.RankOneDelta("R1", 4e3)
	if err != nil {
		t.Fatal(err)
	}
	want := complex(1/4e3-1/2e3, 0)
	if d.GCoef != want {
		t.Fatalf("GCoef = %v, want %v (delta vs live patch)", d.GCoef, want)
	}
}

// TestRankOneDeltaNotLowRank covers the refusals: independent sources
// patch the excitation, opamps are not Valued patches at all, a zero
// resistance is unsupported, and unknown names error.
func TestRankOneDeltaNotLowRank(t *testing.T) {
	ckt := lowRankCircuit()
	ckt.OA("OP1", "n1", "n2", "n7")
	ckt.R("RO", "n7", "0", 1e3)
	sys, err := NewSystem(ckt)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"V1", "I1", "OP1"} {
		if _, err := sys.RankOneDelta(name, 2); !errors.Is(err, ErrNotLowRank) {
			t.Errorf("RankOneDelta(%s): err = %v, want ErrNotLowRank", name, err)
		}
	}
	if _, err := sys.RankOneDelta("R1", 0); !errors.Is(err, ErrUnsupported) {
		t.Errorf("zero resistance: err = %v, want ErrUnsupported", err)
	}
	if _, err := sys.RankOneDelta("nope", 1); err == nil {
		t.Error("unknown component: err = nil")
	}
}

// TestRankOneDeltaLeavesSystemUntouched checks RankOneDelta never stamps:
// the assembled matrix is bit-identical before and after.
func TestRankOneDeltaLeavesSystemUntouched(t *testing.T) {
	sys, err := NewSystem(lowRankCircuit())
	if err != nil {
		t.Fatal(err)
	}
	before, _ := assembleAt(t, sys, 777)
	if _, err := sys.RankOneDelta("C1", 33e-9); err != nil {
		t.Fatal(err)
	}
	after, _ := assembleAt(t, sys, 777)
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatalf("RankOneDelta mutated the stamps at %d: %v -> %v", i, before.Data[i], after.Data[i])
		}
	}
	if sys.Patched() {
		t.Fatal("RankOneDelta left a live patch")
	}
}

// TestScaleAt pins the frequency law s(ω) = GCoef + jω·CCoef.
func TestScaleAt(t *testing.T) {
	d := RankOne{GCoef: 2, CCoef: 3}
	got := d.ScaleAt(1 / (2 * 3.141592653589793))
	if cmplx.Abs(got-(2+3i)) > 1e-12 {
		t.Fatalf("ScaleAt = %v, want 2+3i", got)
	}
}

// TestAssembleIntoShape checks the exported assembly validates storage.
func TestAssembleIntoShape(t *testing.T) {
	sys, err := NewSystem(lowRankCircuit())
	if err != nil {
		t.Fatal(err)
	}
	m := numeric.NewMatrix(2, 2)
	if err := sys.AssembleInto(100, m, make([]complex128, sys.N())); !errors.Is(err, numeric.ErrShape) {
		t.Fatalf("small matrix: err = %v, want ErrShape", err)
	}
	ok := numeric.NewMatrix(sys.N(), sys.N())
	if err := sys.AssembleInto(100, ok, make([]complex128, 1)); !errors.Is(err, numeric.ErrShape) {
		t.Fatalf("short rhs: err = %v, want ErrShape", err)
	}
}

// TestNodeIndex covers the exported node lookup, including ground.
func TestNodeIndex(t *testing.T) {
	sys, err := NewSystem(lowRankCircuit())
	if err != nil {
		t.Fatal(err)
	}
	if i, err := sys.NodeIndex("0"); err != nil || i != -1 {
		t.Fatalf("ground: (%d, %v), want (-1, nil)", i, err)
	}
	i, err := sys.NodeIndex("n1")
	if err != nil || i < 0 || i >= sys.N() {
		t.Fatalf("n1: (%d, %v)", i, err)
	}
	if _, err := sys.NodeIndex("ghost"); err == nil {
		t.Fatal("unknown node: err = nil")
	}
}

// TestVoltageAtWrapsBackSubstitutionError is the regression test for the
// bare SolveInPlace error return: a back-substitution failure must arrive
// wrapped in *SolveError exactly like a factorization failure, so error
// classification cannot depend on which half of the solve failed.
func TestVoltageAtWrapsBackSubstitutionError(t *testing.T) {
	ckt := circuit.New("wrap")
	ckt.V("V1", "in", "0", 1)
	ckt.R("R1", "in", "out", 1e3)
	ckt.R("R2", "out", "0", 1e3)
	sys, err := NewSystem(ckt)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sys.NewSweeper("out")
	if err != nil {
		t.Fatal(err)
	}
	// Warm one point so the lazily sized workspace exists, then corrupt
	// it so FactorInPlace succeeds but SolveInPlace sees a short RHS.
	// assemble copies into the truncated slice without complaint, so the
	// failure surfaces exactly at back-substitution.
	if _, err := sw.VoltageAt(100); err != nil {
		t.Fatal(err)
	}
	sw.ws.RHS = sw.ws.RHS[:sys.N()-1]
	_, err = sw.VoltageAt(1000)
	if err == nil {
		t.Fatal("corrupted workspace: err = nil")
	}
	var se *SolveError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T %v, want *SolveError", err, err)
	}
	if se.FreqHz != 1000 || se.Circuit != "wrap" {
		t.Fatalf("SolveError context = %q @ %g Hz", se.Circuit, se.FreqHz)
	}
	if !errors.Is(err, numeric.ErrShape) {
		t.Fatalf("err does not unwrap to the cause: %v", err)
	}
}
