package mna

import (
	"errors"
	"time"

	"analogdft/internal/numeric"
	"analogdft/internal/obs"
)

// Solve instrumentation. Counters are always live (one atomic add per
// solve, negligible against an LU factorization); the latency histogram
// needs two clock reads per solve and is gated on obs.TimingOn().
var (
	mSolves = obs.Reg().Counter("mna_solves_total",
		"AC solves performed (matrix assembly + factorization + back-substitution)")
	mSingular = obs.Reg().Counter("mna_solve_singular_total",
		"AC solves that failed on a singular system")
	mUnsupported = obs.Reg().Counter("mna_solve_unsupported_total",
		"AC solves rejected on an unsupported component or invalid frequency")
	mOtherErr = obs.Reg().Counter("mna_solve_error_total",
		"AC solves that failed for any other reason")
	mSolveLatency = obs.Reg().Histogram("mna_solve_seconds",
		"per-point AC solve latency in seconds (collected when timing is on)", obs.TimeBuckets)

	// Stamp-cache effectiveness: assemblies served by the fused G + jω·C
	// scale-add versus full component walks. The reuse hit rate is
	// reuse / (reuse + rebuild). How many Systems get built — and hence
	// how many first-assembly rebuilds occur — depends on how many
	// engines the detect worker pool lazily instantiates, which varies
	// with worker count and scheduling; like the scheduler's own
	// instruments, these counters are therefore collected only when obs
	// timing is on, keeping timing-off registry snapshots deterministic.
	mStampReuse = obs.Reg().Counter("mna_stamp_reuse_total",
		"matrix assemblies served from the cached G/C split stamps (fused scale-add, no component walk; timing on only)")
	mStampRebuild = obs.Reg().Counter("mna_stamp_rebuild_total",
		"full component-walk stamp builds, one per System (timing on only)")
)

// accountStamps records one assembly's stamp-cache outcome (timing on
// only; see the counter declarations).
func accountStamps(rebuilt bool) {
	if !obs.TimingOn() {
		return
	}
	if rebuilt {
		mStampRebuild.Inc()
	} else {
		mStampReuse.Inc()
	}
}

// accountSolve classifies one finished solve into the mna metric set.
func accountSolve(err error, start time.Time, timed bool) {
	mSolves.Inc()
	if timed {
		mSolveLatency.Observe(obs.Since(start).Seconds())
	}
	if err == nil {
		return
	}
	switch {
	case errors.Is(err, numeric.ErrSingular):
		mSingular.Inc()
	case errors.Is(err, ErrUnsupported):
		mUnsupported.Inc()
	default:
		mOtherErr.Inc()
	}
}

// solveTally is the Sweeper's local, unsynchronized view of the solve
// counters. The detectability engine runs one Sweeper per worker with a
// solve every few microseconds; a shared atomic would make those workers
// ping-pong one cache line, so each sweep tallies locally and flushes the
// totals in one Add per counter when the sweep finishes.
type solveTally struct {
	solves, singular, unsupported, otherErr int64
	stampReuse, stampRebuild                int64
}

// recordStamps tallies one assembly's stamp-cache outcome locally (timing
// on only; see the counter declarations).
func (t *solveTally) recordStamps(rebuilt bool) {
	if !obs.TimingOn() {
		return
	}
	if rebuilt {
		t.stampRebuild++
	} else {
		t.stampReuse++
	}
}

func (t *solveTally) record(err error, start time.Time, timed bool) {
	t.solves++
	if timed {
		mSolveLatency.Observe(obs.Since(start).Seconds())
	}
	if err == nil {
		return
	}
	switch {
	case errors.Is(err, numeric.ErrSingular):
		t.singular++
	case errors.Is(err, ErrUnsupported):
		t.unsupported++
	default:
		t.otherErr++
	}
}

func (t *solveTally) flush() {
	if t.solves != 0 {
		mSolves.Add(t.solves)
	}
	if t.singular != 0 {
		mSingular.Add(t.singular)
	}
	if t.unsupported != 0 {
		mUnsupported.Add(t.unsupported)
	}
	if t.otherErr != 0 {
		mOtherErr.Add(t.otherErr)
	}
	if t.stampReuse != 0 {
		mStampReuse.Add(t.stampReuse)
	}
	if t.stampRebuild != 0 {
		mStampRebuild.Add(t.stampRebuild)
	}
	*t = solveTally{}
}
