// Package mna implements small-signal AC analysis of linear analog
// circuits via Modified Nodal Analysis over the complex field.
//
// It is the HSPICE substitute for this reproduction: the paper only needs
// frequency responses of linear RC-opamp networks, which MNA computes
// exactly. The unknown vector stacks the non-ground node voltages with one
// branch current per voltage-defined element (independent voltage source,
// VCVS, inductor, opamp output). Each element contributes a "stamp" to the
// system matrix; the system is factored and solved per frequency point.
//
// Opamps use the nullor stamp in normal mode (constraint V+ − V− = 0 with a
// free output current) and, when configured as followers by the
// multi-configuration DFT technique, the constraint V(out) − V(test) = 0 —
// the output buffers the dedicated test input while the feedback network
// stays connected and keeps loading the surrounding nodes.
package mna

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"time"

	"analogdft/internal/circuit"
	"analogdft/internal/numeric"
	"analogdft/internal/obs"
)

// ErrUnsupported is returned when the circuit contains a component the
// engine cannot stamp (e.g. a configurable opamp in follower mode without a
// test input).
var ErrUnsupported = errors.New("mna: unsupported component")

// ErrSingular wraps numeric.ErrSingular with circuit context; use
// errors.Is(err, numeric.ErrSingular) to detect it.
var ErrSingular = numeric.ErrSingular

// SolveError is a failed AC solve with its full context: which circuit, at
// which frequency, and the underlying cause. It wraps the cause, so
// errors.Is(err, numeric.ErrSingular) keeps working; errors.As recovers
// the frequency of a singular point for reporting or retry.
type SolveError struct {
	Circuit string
	FreqHz  float64
	Err     error
}

// Error implements the error interface.
func (e *SolveError) Error() string {
	return fmt.Sprintf("mna: circuit %q at %g Hz: %v", e.Circuit, e.FreqHz, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *SolveError) Unwrap() error { return e.Err }

// System is a circuit prepared for AC analysis: node numbering and branch
// allocation are fixed, and the component stamps are split once into a
// frequency-independent part G and a capacitive part C, so a frequency
// point assembles as the fused scale-add M = G + jω·C with no component
// walk. Single-pole opamps are the one exception — their constraint row
// is a nonlinear function of ω — and are re-stamped per point.
type System struct {
	ckt *circuit.Circuit

	nodeIndex map[string]int // non-ground node name -> 0-based index
	nodeNames []string       // inverse of nodeIndex
	branchOf  map[string]int // component name -> branch row (offset by nNodes)
	n         int            // total unknowns

	// Split stamps, built lazily by the first assembly (buildStamps).
	// Which cache pair is populated depends on the resolved layout:
	// dense fills g/c, sparse fills pat/gval/cval. rhs0 and dynamic are
	// layout-independent.
	stampsBuilt bool
	layout      Layout           // requested layout (Auto resolved at build)
	resolved    Layout           // LayoutDense or LayoutSparse once built
	g           *numeric.Matrix  // frequency-independent stamps
	c           *numeric.Matrix  // stamps proportional to jω (C in farads, −L in henries)
	pat         *numeric.Pattern // shared symbolic structure (sparse layout)
	gval        []complex128     // G values under pat
	cval        []complex128     // C values under pat
	rhs0        []complex128     // frequency-independent excitation
	dynamic     []*circuit.Opamp // single-pole opamps, stamped per point

	// Sparse-build storage embedded in the (already heap-allocated)
	// System so the build allocates no separate structs: patStore backs
	// pat, and the CSRValues adapters are fields because passing a field
	// pointer as the adder interface never boxes. mBox is mutated per
	// assembly point — one more reason a System must not be assembled
	// from two goroutines at once (ensureStamps already isn't safe for
	// that).
	patStore numeric.Pattern
	gBox     numeric.CSRValues
	cBox     numeric.CSRValues
	mBox     numeric.CSRValues

	// Patch state (SetValue/Reset): first-seen snapshots of every stamp
	// entry a patch has touched, plus the current patched value per
	// component so repeated patches compose.
	snapG, snapC, snapRHS map[int]complex128
	patchedVals           map[string]float64
}

// NewSystem validates and indexes a circuit for analysis. The circuit is
// retained by reference; callers must not mutate it while solving (clone
// first — fault injection does). The stamp caches use the dense layout;
// use NewSystemLayout to select CSR storage or the fill heuristic.
func NewSystem(ckt *circuit.Circuit) (*System, error) {
	return NewSystemLayout(ckt, LayoutDense)
}

// NewSystemLayout is NewSystem with an explicit stamp-cache layout.
// LayoutAuto defers the dense/sparse decision to the fill heuristic,
// which runs when the stamps are first built; the two layouts produce
// bit-identical solutions, so the choice only moves performance.
func NewSystemLayout(ckt *circuit.Circuit, layout Layout) (*System, error) {
	s := &System{
		ckt:       ckt,
		layout:    layout,
		nodeIndex: make(map[string]int),
		branchOf:  make(map[string]int),
	}
	for _, name := range ckt.Nodes() {
		s.nodeIndex[name] = len(s.nodeNames)
		s.nodeNames = append(s.nodeNames, name)
	}
	nBranches := 0
	for _, comp := range ckt.Components() {
		switch c := comp.(type) {
		case *circuit.VSource, *circuit.VCVS, *circuit.Inductor, *circuit.CCVS:
			s.branchOf[comp.Name()] = len(s.nodeNames) + nBranches
			nBranches++
		case *circuit.Opamp:
			if c.Mode == circuit.ModeFollower {
				if !c.Configurable || c.TestIn == "" {
					return nil, fmt.Errorf("%w: opamp %q in follower mode without test input", ErrUnsupported, c.Name())
				}
			}
			s.branchOf[comp.Name()] = len(s.nodeNames) + nBranches
			nBranches++
		}
	}
	s.n = len(s.nodeNames) + nBranches
	if s.n == 0 {
		return nil, fmt.Errorf("%w: empty system", circuit.ErrInvalid)
	}
	return s, nil
}

// N returns the number of unknowns.
func (s *System) N() int { return s.n }

// NodeNames returns the non-ground node names in index order.
func (s *System) NodeNames() []string { return s.nodeNames }

// node returns the matrix index of a node, or -1 for ground.
func (s *System) node(name string) int {
	if circuit.IsGroundName(name) {
		return -1
	}
	i, ok := s.nodeIndex[circuit.CanonicalNode(name)]
	if !ok {
		// Unreachable for circuits built through the circuit package, which
		// registers every terminal node.
		panic(fmt.Sprintf("mna: unknown node %q", name))
	}
	return i
}

// Solution holds the result of one AC solve.
type Solution struct {
	FreqHz   float64
	voltages map[string]complex128
	currents map[string]complex128
}

// Voltage returns the complex node voltage (0 for ground).
func (sol *Solution) Voltage(node string) (complex128, error) {
	node = circuit.CanonicalNode(node)
	if node == circuit.GroundName {
		return 0, nil
	}
	v, ok := sol.voltages[node]
	if !ok {
		return 0, fmt.Errorf("mna: no voltage for node %q", node)
	}
	return v, nil
}

// Current returns the branch current of a voltage-defined component
// (V, E, L, opamp output current).
func (sol *Solution) Current(component string) (complex128, error) {
	i, ok := sol.currents[component]
	if !ok {
		return 0, fmt.Errorf("mna: no branch current for component %q", component)
	}
	return i, nil
}

// SolveAt assembles and solves the MNA system at frequency f (Hz).
func (s *System) SolveAt(freqHz float64) (*Solution, error) {
	timed := obs.TimingOn()
	var t0 time.Time
	if timed {
		t0 = obs.Now()
	}
	if err := validFreq(freqHz); err != nil {
		accountSolve(err, t0, timed)
		return nil, err
	}
	rebuilt, err := s.ensureStamps()
	if err != nil {
		accountSolve(err, t0, timed)
		return nil, err
	}
	accountStamps(rebuilt)

	var x []complex128
	if s.resolved == LayoutSparse {
		ws := &numeric.Workspace{}
		ws.EnsureSparse(s.pat)
		if _, err := s.assembleVals(freqHz, ws.SVals, ws.RHS); err != nil {
			accountSolve(err, t0, timed)
			return nil, err
		}
		if err := ws.SparseFactorSolve(); err != nil {
			accountSolve(err, t0, timed)
			return nil, &SolveError{Circuit: s.ckt.Name, FreqHz: freqHz, Err: err}
		}
		x = ws.RHS
	} else {
		ws := numeric.NewWorkspace(s.n)
		if _, err := s.assemble(freqHz, ws.M, ws.RHS); err != nil {
			accountSolve(err, t0, timed)
			return nil, err
		}
		x, err = numeric.Solve(ws.M, ws.RHS)
		if err != nil {
			accountSolve(err, t0, timed)
			return nil, &SolveError{Circuit: s.ckt.Name, FreqHz: freqHz, Err: err}
		}
	}
	accountSolve(nil, t0, timed)

	sol := &Solution{
		FreqHz:   freqHz,
		voltages: make(map[string]complex128, len(s.nodeNames)),
		currents: make(map[string]complex128, len(s.branchOf)),
	}
	for i, name := range s.nodeNames {
		sol.voltages[name] = x[i]
	}
	for name, idx := range s.branchOf {
		sol.currents[name] = x[idx]
	}
	return sol, nil
}

// validFreq rejects the frequencies no assembly accepts.
func validFreq(freqHz float64) error {
	if freqHz < 0 || math.IsNaN(freqHz) || math.IsInf(freqHz, 0) {
		return fmt.Errorf("mna: invalid frequency %g", freqHz)
	}
	return nil
}

// ensureStamps builds the stamp caches on first use, reporting whether
// this call did the build (for the stamp-rebuild metrics).
func (s *System) ensureStamps() (rebuilt bool, err error) {
	if s.stampsBuilt {
		return false, nil
	}
	if err := s.buildStamps(); err != nil {
		return false, err
	}
	return true, nil
}

// assemble produces the dense MNA system for one frequency: the fused
// scale-add M = G + jω·C over the cached split stamps (built on first
// use), the cached excitation vector, and the per-point constraint rows
// of any single-pole opamps. m must be n×n and rhs length n. It reports
// whether this call had to rebuild the stamps (one full component walk)
// or served them from the cache. The system must be dense-resolved
// (assembleVals is the sparse twin).
func (s *System) assemble(freqHz float64, m *numeric.Matrix, rhs []complex128) (rebuilt bool, err error) {
	if err := validFreq(freqHz); err != nil {
		return false, err
	}
	if rebuilt, err = s.ensureStamps(); err != nil {
		return false, err
	}
	jw := complex(0, 2*math.Pi*freqHz)

	md, gd, cd := m.Data, s.g.Data, s.c.Data
	_ = md[len(gd)-1] // one bounds check for the fused loop
	for i, gv := range gd {
		md[i] = gv + jw*cd[i]
	}
	copy(rhs, s.rhs0)
	for _, op := range s.dynamic {
		s.stampOpampRow(m, op, jw)
	}
	return rebuilt, nil
}

// assembleVals is assemble for the sparse layout: the fused scale-add
// runs over the pattern's nonzeros only, writing the assembled values
// into mv (length pat.NNZ()), and the dynamic opamp rows land in their
// pattern slots. Every slot not stamped by G, C or a dynamic row holds
// exact +0 after the scale-add — the same bits the dense assembly
// leaves outside its stamps — which is what makes the two layouts'
// factorizations bit-identical.
func (s *System) assembleVals(freqHz float64, mv, rhs []complex128) (rebuilt bool, err error) {
	if err := validFreq(freqHz); err != nil {
		return false, err
	}
	if rebuilt, err = s.ensureStamps(); err != nil {
		return false, err
	}
	jw := complex(0, 2*math.Pi*freqHz)

	gd, cd := s.gval, s.cval
	_ = mv[len(gd)-1] // one bounds check for the fused loop
	for i, gv := range gd {
		mv[i] = gv + jw*cd[i]
	}
	copy(rhs, s.rhs0)
	if len(s.dynamic) > 0 {
		s.mBox.P, s.mBox.Vals = s.pat, mv
		for _, op := range s.dynamic {
			s.stampOpampRow(&s.mBox, op, jw)
		}
	}
	return rebuilt, nil
}

// ResolveLayout builds the stamp caches if necessary and returns the
// layout the system actually uses (LayoutDense or LayoutSparse — a
// requested LayoutAuto has been resolved by the fill heuristic).
func (s *System) ResolveLayout() (Layout, error) {
	if _, err := s.ensureStamps(); err != nil {
		return 0, err
	}
	return s.resolved, nil
}

// Pattern returns the shared CSR pattern of a sparse-resolved system
// (nil under the dense layout or before the stamps are built).
func (s *System) Pattern() *numeric.Pattern { return s.pat }

// openLoopGain evaluates the single-pole model A(jω) = A0/(1 + jω/ωp).
func openLoopGain(c *circuit.Opamp, jw complex128) complex128 {
	a0 := c.A0
	if a0 == 0 {
		a0 = 1e5 // sane default: 100 dB opamp
	}
	pole := c.PoleHz
	if pole <= 0 {
		pole = 10 // Hz, typical dominant pole of a 1 MHz-GBW opamp
	}
	wp := complex(2*math.Pi*pole, 0)
	return complex(a0, 0) / (1 + jw/wp)
}

// TransferAt returns H = V(output)/stimulus for the circuit's designated
// input/output at frequency f, by temporarily driving the input with a unit
// AC source. The circuit passed to NewSystem must NOT already contain a
// stimulus source on the input node.
//
// This is a convenience for one-off probes; sweeps should use
// analysis.Sweep which prepares the driven circuit once.
func TransferAt(ckt *circuit.Circuit, freqHz float64) (complex128, error) {
	driven, err := Driven(ckt)
	if err != nil {
		return 0, err
	}
	sys, err := NewSystem(driven)
	if err != nil {
		return 0, err
	}
	sol, err := sys.SolveAt(freqHz)
	if err != nil {
		return 0, err
	}
	return sol.Voltage(driven.Output)
}

// Driven clones the circuit and attaches a unit AC voltage source between
// its input node and ground. The stimulus component is named "_VSTIM"; it
// is an error if that name is taken or if a VSource already drives the
// input node.
func Driven(ckt *circuit.Circuit) (*circuit.Circuit, error) {
	in := circuit.CanonicalNode(ckt.Input)
	if in == "" {
		return nil, fmt.Errorf("%w: no input node", circuit.ErrInvalid)
	}
	for _, comp := range ckt.Components() {
		if v, ok := comp.(*circuit.VSource); ok {
			for _, t := range v.Terminals() {
				if circuit.CanonicalNode(t) == in {
					return nil, fmt.Errorf("%w: input node %q already driven by %q", circuit.ErrInvalid, in, v.Name())
				}
			}
		}
	}
	driven := ckt.Clone()
	if err := driven.Add(&circuit.VSource{Label: "_VSTIM", Plus: in, Minus: circuit.GroundName, Amplitude: 1}); err != nil {
		return nil, err
	}
	return driven, nil
}

// GainDb returns |H| in dB for a transfer value.
func GainDb(h complex128) float64 { return numeric.Db(cmplx.Abs(h)) }
