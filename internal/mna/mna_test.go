package mna

import (
	"errors"
	"math"
	"math/cmplx"
	"testing"

	"analogdft/internal/circuit"
	"analogdft/internal/numeric"
)

func solveNode(t *testing.T, ckt *circuit.Circuit, freqHz float64, node string) complex128 {
	t.Helper()
	sys, err := NewSystem(ckt)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	sol, err := sys.SolveAt(freqHz)
	if err != nil {
		t.Fatalf("SolveAt(%g): %v", freqHz, err)
	}
	v, err := sol.Voltage(node)
	if err != nil {
		t.Fatalf("Voltage(%q): %v", node, err)
	}
	return v
}

func TestResistiveDivider(t *testing.T) {
	c := circuit.New("div")
	c.V("V1", "in", "0", 2)
	c.R("R1", "in", "mid", 1e3)
	c.R("R2", "mid", "0", 1e3)
	v := solveNode(t, c, 0, "mid")
	if cmplx.Abs(v-1) > 1e-9 {
		t.Fatalf("divider mid = %v, want 1", v)
	}
}

func TestDividerUnequal(t *testing.T) {
	c := circuit.New("div")
	c.V("V1", "in", "0", 10)
	c.R("R1", "in", "mid", 9e3)
	c.R("R2", "mid", "0", 1e3)
	v := solveNode(t, c, 1000, "mid") // frequency-independent
	if cmplx.Abs(v-1) > 1e-9 {
		t.Fatalf("mid = %v, want 1", v)
	}
}

func TestRCLowpassCorner(t *testing.T) {
	// fc = 1/(2πRC) = 1591.55 Hz for R=1k, C=100n.
	r, cap := 1e3, 100e-9
	fc := 1 / (2 * math.Pi * r * cap)
	c := circuit.New("rc")
	c.V("V1", "in", "0", 1)
	c.R("R1", "in", "out", r)
	c.Cap("C1", "out", "0", cap)

	v := solveNode(t, c, fc, "out")
	if got := cmplx.Abs(v); math.Abs(got-1/math.Sqrt2) > 1e-6 {
		t.Errorf("|H(fc)| = %g, want %g", got, 1/math.Sqrt2)
	}
	if ph := cmplx.Phase(v) * 180 / math.Pi; math.Abs(ph+45) > 1e-6 {
		t.Errorf("∠H(fc) = %g°, want −45°", ph)
	}
	// Deep in the passband and stopband.
	if got := cmplx.Abs(solveNode(t, c, fc/1000, "out")); math.Abs(got-1) > 1e-5 {
		t.Errorf("|H(fc/1000)| = %g, want ≈1", got)
	}
	if got := cmplx.Abs(solveNode(t, c, fc*1000, "out")); got > 2e-3 {
		t.Errorf("|H(1000·fc)| = %g, want ≈0", got)
	}
}

func TestCurrentSourceIntoResistor(t *testing.T) {
	c := circuit.New("ir")
	c.I("I1", "0", "n", 1e-3) // 1 mA pushed into node n
	c.R("R1", "n", "0", 2e3)
	v := solveNode(t, c, 0, "n")
	if cmplx.Abs(v-2) > 1e-9 {
		t.Fatalf("V(n) = %v, want 2", v)
	}
}

func TestInductorDCShort(t *testing.T) {
	c := circuit.New("rl")
	c.V("V1", "in", "0", 1)
	c.R("R1", "in", "out", 1e3)
	c.L("L1", "out", "0", 10e-3)
	if got := cmplx.Abs(solveNode(t, c, 0, "out")); got > 1e-12 {
		t.Errorf("inductor at DC: V(out) = %g, want 0", got)
	}
	// RL highpass corner: fc = R/(2πL).
	fc := 1e3 / (2 * math.Pi * 10e-3)
	if got := cmplx.Abs(solveNode(t, c, fc, "out")); math.Abs(got-1/math.Sqrt2) > 1e-6 {
		t.Errorf("|H(fc)| = %g, want %g", got, 1/math.Sqrt2)
	}
}

func TestInductorBranchCurrent(t *testing.T) {
	c := circuit.New("rl")
	c.V("V1", "in", "0", 1)
	c.R("R1", "in", "out", 1e3)
	c.L("L1", "out", "0", 10e-3)
	sys, err := NewSystem(c)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := sys.SolveAt(0)
	if err != nil {
		t.Fatal(err)
	}
	il, err := sol.Current("L1")
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(il-1e-3) > 1e-9 { // 1 V across 1 kΩ
		t.Fatalf("I(L1) = %v, want 1 mA", il)
	}
	iv, err := sol.Current("V1")
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(iv+1e-3) > 1e-9 { // source current flows out of +
		t.Fatalf("I(V1) = %v, want −1 mA", iv)
	}
}

func TestVCVSAmplifier(t *testing.T) {
	c := circuit.New("e")
	c.V("V1", "in", "0", 1)
	c.E("E1", "out", "0", "in", "0", -5)
	c.R("RL", "out", "0", 1e3)
	v := solveNode(t, c, 100, "out")
	if cmplx.Abs(v+5) > 1e-9 {
		t.Fatalf("VCVS out = %v, want −5", v)
	}
}

func TestVCCSIntoLoad(t *testing.T) {
	c := circuit.New("g")
	c.V("V1", "in", "0", 1)
	c.R("Rin", "in", "0", 1e6) // keep 'in' well-defined
	c.G("G1", "0", "out", "in", "0", 2e-3)
	c.R("RL", "out", "0", 1e3)
	// I = Gm·Vin = 2 mA pushed into out; V = 2 mA · 1 kΩ = 2 V.
	v := solveNode(t, c, 0, "out")
	if cmplx.Abs(v-2) > 1e-9 {
		t.Fatalf("VCCS out = %v, want 2", v)
	}
}

func TestIdealInvertingAmplifier(t *testing.T) {
	// Gain = −R2/R1 = −4.7.
	c := circuit.New("inv")
	c.V("V1", "in", "0", 1)
	c.R("R1", "in", "sum", 1e3)
	c.R("R2", "sum", "out", 4.7e3)
	c.OA("OP1", "0", "sum", "out")
	v := solveNode(t, c, 1234, "out")
	if cmplx.Abs(v-(-4.7)) > 1e-9 {
		t.Fatalf("inverting gain = %v, want −4.7", v)
	}
	// Virtual ground: summing node ≈ 0.
	if got := cmplx.Abs(solveNode(t, c, 1234, "sum")); got > 1e-9 {
		t.Errorf("summing node = %g, want 0", got)
	}
}

func TestIdealNonInvertingAmplifier(t *testing.T) {
	// Gain = 1 + R2/R1 = 3.
	c := circuit.New("noninv")
	c.V("V1", "in", "0", 1)
	c.R("R1", "fb", "0", 1e3)
	c.R("R2", "fb", "out", 2e3)
	c.OA("OP1", "in", "fb", "out")
	v := solveNode(t, c, 50, "out")
	if cmplx.Abs(v-3) > 1e-9 {
		t.Fatalf("non-inverting gain = %v, want 3", v)
	}
}

func TestIdealIntegrator(t *testing.T) {
	// H(jω) = −1/(jωRC); at f = 1/(2πRC), H = −1/j = +j (magnitude 1).
	r, cap := 10e3, 15.9e-9
	f0 := 1 / (2 * math.Pi * r * cap)
	c := circuit.New("int")
	c.V("V1", "in", "0", 1)
	c.R("R1", "in", "sum", r)
	c.Cap("C1", "sum", "out", cap)
	c.OA("OP1", "0", "sum", "out")
	v := solveNode(t, c, f0, "out")
	if cmplx.Abs(v-1i) > 1e-6 {
		t.Fatalf("integrator H(f0) = %v, want +j", v)
	}
}

func TestFollowerModeBuffersTestInput(t *testing.T) {
	c := circuit.New("foll")
	c.V("V1", "tin", "0", 1)
	c.R("Rt", "tin", "0", 1e6)
	// An inverting amp whose opamp is switched to follower mode: the output
	// must track the test input, not the inverting function.
	c.R("R1", "tin", "sum", 1e3)
	c.R("R2", "sum", "out", 4.7e3)
	op := c.OA("OP1", "0", "sum", "out")
	op.Configurable = true
	op.TestIn = "tin"
	op.Mode = circuit.ModeFollower
	v := solveNode(t, c, 100, "out")
	if cmplx.Abs(v-1) > 1e-9 {
		t.Fatalf("follower out = %v, want 1", v)
	}
}

func TestFollowerWithoutTestInputRejected(t *testing.T) {
	c := circuit.New("bad")
	c.V("V1", "in", "0", 1)
	c.R("R1", "in", "sum", 1e3)
	c.R("R2", "sum", "out", 1e3)
	op := c.OA("OP1", "0", "sum", "out")
	op.Mode = circuit.ModeFollower // not configurable, no TestIn
	_, err := NewSystem(c)
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

func TestSinglePoleOpampClosedLoop(t *testing.T) {
	// Inverting amp with finite A0: at DC the gain error is ≈ (1+R2/R1)/A0.
	c := circuit.New("fin")
	c.V("V1", "in", "0", 1)
	c.R("R1", "in", "sum", 1e3)
	c.R("R2", "sum", "out", 10e3)
	c.OASinglePole("OP1", "0", "sum", "out", 1e5, 10)
	v := solveNode(t, c, 0.001, "out")
	gain := cmplx.Abs(v)
	if math.Abs(gain-10) > 0.01 {
		t.Fatalf("finite-gain inverting amp: |H| = %g, want ≈10", gain)
	}
	if gain >= 10 {
		t.Fatalf("finite-gain amp must fall slightly short of ideal, got %g", gain)
	}
	// Far beyond the GBW product (A0·pole = 1 MHz) the gain must collapse.
	v = solveNode(t, c, 100e6, "out")
	if cmplx.Abs(v) > 0.2 {
		t.Fatalf("gain at 100 MHz = %g, want ≪ 1", cmplx.Abs(v))
	}
}

func TestSinglePoleFollowerRollsOff(t *testing.T) {
	c := circuit.New("buf")
	c.V("V1", "tin", "0", 1)
	c.R("Rt", "tin", "0", 1e6)
	c.R("RL", "out", "0", 1e6)
	op := c.OASinglePole("OP1", "0", "x", "out", 1e5, 10)
	c.R("Rx", "x", "0", 1e6) // keep normal inputs defined
	op.Configurable = true
	op.TestIn = "tin"
	op.Mode = circuit.ModeFollower
	low := cmplx.Abs(solveNode(t, c, 1, "out"))
	hi := cmplx.Abs(solveNode(t, c, 100e6, "out"))
	if math.Abs(low-1) > 1e-3 {
		t.Errorf("buffer at 1 Hz = %g, want ≈1", low)
	}
	if hi > 0.05 {
		t.Errorf("buffer at 100 MHz = %g, want ≪1", hi)
	}
}

func TestSingularFloatingNode(t *testing.T) {
	// Two capacitors in series at DC leave the middle node floating.
	c := circuit.New("sing")
	c.V("V1", "in", "0", 1)
	c.Cap("C1", "in", "mid", 1e-9)
	c.Cap("C2", "mid", "0", 1e-9)
	sys, err := NewSystem(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SolveAt(0); !errors.Is(err, numeric.ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	// At AC the same circuit is solvable: capacitive divider of 1/2.
	sol, err := sys.SolveAt(1e3)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := sol.Voltage("mid")
	if cmplx.Abs(v-0.5) > 1e-9 {
		t.Fatalf("cap divider mid = %v, want 0.5", v)
	}
}

func TestInvalidFrequency(t *testing.T) {
	c := circuit.New("f")
	c.V("V1", "a", "0", 1)
	c.R("R1", "a", "0", 1)
	sys, err := NewSystem(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := sys.SolveAt(f); err == nil {
			t.Errorf("SolveAt(%g) accepted", f)
		}
	}
}

func TestZeroResistanceRejected(t *testing.T) {
	c := circuit.New("r0")
	c.V("V1", "a", "0", 1)
	c.R("R1", "a", "0", 0)
	sys, err := NewSystem(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SolveAt(1); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

func TestGroundVoltageIsZero(t *testing.T) {
	c := circuit.New("g")
	c.V("V1", "a", "0", 1)
	c.R("R1", "a", "0", 1)
	sys, _ := NewSystem(c)
	sol, err := sys.SolveAt(10)
	if err != nil {
		t.Fatal(err)
	}
	v, err := sol.Voltage("gnd")
	if err != nil || v != 0 {
		t.Fatalf("ground voltage = %v, %v", v, err)
	}
	if _, err := sol.Voltage("unknown"); err == nil {
		t.Fatal("unknown node accepted")
	}
	if _, err := sol.Current("R1"); err == nil {
		t.Fatal("resistors have no branch current entry")
	}
}

func TestDriven(t *testing.T) {
	c := circuit.New("d")
	c.R("R1", "in", "out", 1e3)
	c.R("R2", "out", "0", 1e3)
	c.Input, c.Output = "in", "out"
	d, err := Driven(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Component("_VSTIM"); !ok {
		t.Fatal("stimulus not added")
	}
	if _, ok := c.Component("_VSTIM"); ok {
		t.Fatal("Driven mutated the original circuit")
	}
	// Driving twice must fail (input already driven).
	if _, err := Driven(d); !errors.Is(err, circuit.ErrInvalid) {
		t.Fatalf("double drive err = %v, want ErrInvalid", err)
	}
}

func TestTransferAt(t *testing.T) {
	c := circuit.New("d")
	c.R("R1", "in", "out", 3e3)
	c.R("R2", "out", "0", 1e3)
	c.Input, c.Output = "in", "out"
	h, err := TransferAt(c, 100)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(h-0.25) > 1e-9 {
		t.Fatalf("H = %v, want 0.25", h)
	}
}

func TestTransferAtNoInput(t *testing.T) {
	c := circuit.New("d")
	c.R("R1", "a", "0", 1)
	if _, err := TransferAt(c, 100); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestGainDb(t *testing.T) {
	if g := GainDb(complex(10, 0)); math.Abs(g-20) > 1e-12 {
		t.Fatalf("GainDb(10) = %g, want 20", g)
	}
}

// Superposition property: with two independent sources, the response is the
// sum of the responses to each source alone.
func TestSuperposition(t *testing.T) {
	build := func(v1, v2 float64) *circuit.Circuit {
		c := circuit.New("sp")
		c.V("V1", "a", "0", v1)
		c.V("V2", "b", "0", v2)
		c.R("R1", "a", "out", 1e3)
		c.R("R2", "b", "out", 2e3)
		c.R("R3", "out", "0", 3e3)
		return c
	}
	at := func(ckt *circuit.Circuit) complex128 {
		return solveNode(t, ckt, 1e3, "out")
	}
	both := at(build(1, 1))
	only1 := at(build(1, 0))
	only2 := at(build(0, 1))
	if cmplx.Abs(both-(only1+only2)) > 1e-12 {
		t.Fatalf("superposition violated: %v vs %v", both, only1+only2)
	}
}

// Linearity property: scaling the source scales the response.
func TestLinearity(t *testing.T) {
	c := circuit.New("lin")
	src := c.V("V1", "in", "0", 1)
	c.R("R1", "in", "out", 1e3)
	c.Cap("C1", "out", "0", 1e-9)
	v1 := solveNode(t, c, 5e3, "out")
	src.Amplitude = 7
	v7 := solveNode(t, c, 5e3, "out")
	if cmplx.Abs(v7-7*v1) > 1e-9 {
		t.Fatalf("linearity violated: %v vs %v", v7, 7*v1)
	}
}

func TestCCCSCurrentMirror(t *testing.T) {
	// V1 drives 1 V across R1 = 1 kΩ ⇒ 1 mA through V1; F1 mirrors 2× the
	// control current into RL = 1 kΩ ⇒ V(out) = −2 V (current pulled out
	// of the out node when mirrored with positive gain and this
	// orientation) — check magnitude and sign empirically fixed by the
	// SPICE convention (current flows OutP → OutM through the source).
	c := circuit.New("mirror")
	c.V("V1", "a", "0", 1)
	c.R("R1", "a", "0", 1e3)
	c.F("F1", "out", "0", "V1", 2)
	c.R("RL", "out", "0", 1e3)
	v := solveNode(t, c, 100, "out")
	// I(V1) = −1 mA (out of the + terminal); I(F1, out→gnd) = 2·I(V1) =
	// −2 mA leaving node out ⇒ +2 mA into out ⇒ V(out) = +2 V.
	if cmplx.Abs(v-2) > 1e-9 {
		t.Fatalf("mirror out = %v, want 2", v)
	}
}

func TestCCVSTransresistance(t *testing.T) {
	// 1 mA through V1; H1 produces Rt·I = 50 Ω · (−1 mA) = −50 mV.
	c := circuit.New("trans")
	c.V("V1", "a", "0", 1)
	c.R("R1", "a", "0", 1e3)
	c.H("H1", "out", "0", "V1", 50)
	c.R("RL", "out", "0", 1e4)
	v := solveNode(t, c, 10, "out")
	if cmplx.Abs(v-(-0.05)) > 1e-9 {
		t.Fatalf("CCVS out = %v, want −0.05", v)
	}
}

func TestCurrentControlledNeedsBranch(t *testing.T) {
	// Controlling through a resistor (no branch current) is rejected.
	c := circuit.New("bad")
	c.V("V1", "a", "0", 1)
	c.R("R1", "a", "0", 1e3)
	c.F("F1", "out", "0", "R1", 2)
	c.R("RL", "out", "0", 1e3)
	sys, err := NewSystem(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SolveAt(10); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

func TestCCVSChain(t *testing.T) {
	// CCVS controlled by a source, then its own branch current drives a
	// second CCVS — exercises branch-to-branch coupling.
	c := circuit.New("chain")
	c.V("V1", "a", "0", 1)
	c.R("R1", "a", "0", 1e3) // 1 mA
	c.H("H1", "b", "0", "V1", 1000)
	c.R("R2", "b", "0", 1e3) // V(b) = −1 V ⇒ I(H1) = +1 mA? sign checked below
	c.H("H2", "out", "0", "H1", 1000)
	c.R("R3", "out", "0", 1e3)
	sys, err := NewSystem(c)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := sys.SolveAt(10)
	if err != nil {
		t.Fatal(err)
	}
	vb, _ := sol.Voltage("b")
	vout, _ := sol.Voltage("out")
	// V(b) = 1000·I(V1) = −1 V; current through H1 into R2: I = V(b)/R2
	// leaving through R2 ⇒ branch current of H1 is +1 mA (into b).
	if cmplx.Abs(vb-(-1)) > 1e-9 {
		t.Fatalf("V(b) = %v, want −1", vb)
	}
	ih1, err := sol.Current("H1")
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(vout-1000*ih1) > 1e-6 {
		t.Fatalf("V(out) = %v, want 1000·I(H1) = %v", vout, 1000*ih1)
	}
}

func TestNodeNamesAndN(t *testing.T) {
	c := circuit.New("names")
	c.V("V1", "a", "0", 1)
	c.R("R1", "a", "b", 1e3)
	c.R("R2", "b", "0", 1e3)
	sys, err := NewSystem(c)
	if err != nil {
		t.Fatal(err)
	}
	names := sys.NodeNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if sys.N() != 3 { // 2 nodes + 1 source branch
		t.Fatalf("N = %d", sys.N())
	}
}

func TestEmptySystemRejected(t *testing.T) {
	c := circuit.New("empty")
	if _, err := NewSystem(c); err == nil {
		t.Fatal("empty circuit accepted")
	}
}

func TestSweeperMatchesSolveAt(t *testing.T) {
	c := circuit.New("sw")
	c.V("V1", "in", "0", 1)
	c.R("R1", "in", "out", 1e3)
	c.Cap("C1", "out", "0", 100e-9)
	sys, err := NewSystem(c)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sys.NewSweeper("out")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{1, 100, 1591.5, 1e6} {
		fast, err := sw.VoltageAt(f)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := sys.SolveAt(f)
		if err != nil {
			t.Fatal(err)
		}
		slow, _ := sol.Voltage("out")
		if cmplx.Abs(fast-slow) > 1e-12 {
			t.Fatalf("sweeper mismatch at %g Hz: %v vs %v", f, fast, slow)
		}
	}
	// Ground observation and unknown nodes.
	g, err := sys.NewSweeper("gnd")
	if err != nil {
		t.Fatal(err)
	}
	if v, err := g.VoltageAt(100); err != nil || v != 0 {
		t.Fatalf("ground sweeper: %v %v", v, err)
	}
	if _, err := sys.NewSweeper("nope"); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestSweeperSingularPoint(t *testing.T) {
	c := circuit.New("sing")
	c.V("V1", "in", "0", 1)
	c.Cap("C1", "in", "mid", 1e-9)
	c.Cap("C2", "mid", "0", 1e-9)
	sys, _ := NewSystem(c)
	sw, err := sys.NewSweeper("mid")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.VoltageAt(0); !errors.Is(err, numeric.ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	// Recovers at AC after the singular point (buffers fully reset).
	v, err := sw.VoltageAt(1e3)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(v-0.5) > 1e-9 {
		t.Fatalf("post-singular solve = %v, want 0.5", v)
	}
}

func TestDrivenNoInput(t *testing.T) {
	c := circuit.New("ni")
	c.R("R1", "a", "0", 1)
	if _, err := Driven(c); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestSolveErrorContext(t *testing.T) {
	// Capacitive divider at DC: singular. The failure must carry the
	// circuit name and frequency while still unwrapping to ErrSingular.
	c := circuit.New("capdiv")
	c.V("V1", "in", "0", 1)
	c.Cap("C1", "in", "mid", 1e-9)
	c.Cap("C2", "mid", "0", 1e-9)
	sys, err := NewSystem(c)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.SolveAt(0)
	if !errors.Is(err, numeric.ErrSingular) {
		t.Fatalf("err = %v, want to wrap ErrSingular", err)
	}
	var se *SolveError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *SolveError", err)
	}
	if se.Circuit != "capdiv" || se.FreqHz != 0 {
		t.Fatalf("SolveError context = %q @ %g Hz", se.Circuit, se.FreqHz)
	}
	if msg := se.Error(); msg == "" || !errors.Is(se, numeric.ErrSingular) {
		t.Fatalf("SolveError formatting/unwrap broken: %q", msg)
	}

	// The factored sweeper path reports the same structured context.
	sw, err := sys.NewSweeper("mid")
	if err != nil {
		t.Fatal(err)
	}
	_, err = sw.VoltageAt(0)
	se = nil
	if !errors.As(err, &se) || se.FreqHz != 0 {
		t.Fatalf("sweeper err = %v, want *SolveError at 0 Hz", err)
	}
}
