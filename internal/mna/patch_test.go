package mna

import (
	"errors"
	"math/cmplx"
	"testing"

	"analogdft/internal/circuit"
)

// patchBench builds a circuit exercising every patchable component kind:
// R, C, L, V source, I source, VCVS, VCCS, CCVS, CCCS, plus an ideal
// opamp to keep a branch constraint in the system.
func patchBench() *circuit.Circuit {
	c := circuit.New("patchbench")
	c.V("V1", "in", "0", 1)
	c.R("R1", "in", "a", 1e3)
	c.Cap("C1", "a", "0", 10e-9)
	c.L("L1", "a", "b", 1e-3)
	c.R("R2", "b", "0", 2.2e3)
	c.I("I1", "0", "b", 1e-3)
	c.E("E1", "e", "0", "b", "0", 2)
	c.R("RE", "e", "0", 1e3)
	c.G("G1", "g", "0", "a", "0", 1e-4)
	c.R("RG", "g", "0", 4.7e3)
	c.H("H1", "h", "0", "V1", 50)
	c.R("RH", "h", "0", 1e3)
	c.F("F1", "f", "0", "V1", 0.5)
	c.R("RF", "f", "0", 3.3e3)
	c.OA("OP1", "b", "o", "o") // unity follower on node b
	return c
}

func TestSetValueMatchesRebuild(t *testing.T) {
	const freq = 12.5e3
	nodes := []string{"a", "b", "e", "g", "h", "f", "o"}
	cases := []struct {
		comp string
		v    float64
	}{
		{"R1", 1.2e3},
		{"C1", 12e-9},
		{"L1", 0.8e-3},
		{"V1", 1.5},
		{"I1", 2e-3},
		{"E1", 2.4},
		{"G1", 1.2e-4},
		{"H1", 60},
		{"F1", 0.4},
	}
	for _, tc := range cases {
		t.Run(tc.comp, func(t *testing.T) {
			base := patchBench()
			sys, err := NewSystem(base)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.SetValue(tc.comp, tc.v); err != nil {
				t.Fatalf("SetValue(%s, %g): %v", tc.comp, tc.v, err)
			}
			got, err := sys.SolveAt(freq)
			if err != nil {
				t.Fatal(err)
			}

			// Reference: mutate a clone and rebuild from scratch.
			ref := patchBench()
			val, err := ref.Valued(tc.comp)
			if err != nil {
				t.Fatal(err)
			}
			val.SetValue(tc.v)
			refSys, err := NewSystem(ref)
			if err != nil {
				t.Fatal(err)
			}
			want, err := refSys.SolveAt(freq)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range nodes {
				g, _ := got.Voltage(n)
				w, _ := want.Voltage(n)
				if d := cmplx.Abs(g - w); d > 1e-12*(1+cmplx.Abs(w)) {
					t.Errorf("node %s: patched %v vs rebuilt %v (|Δ|=%g)", n, g, w, d)
				}
			}
		})
	}
}

func TestResetRestoresStampsExactly(t *testing.T) {
	sys, err := NewSystem(patchBench())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SolveAt(1e3); err != nil { // force stamp build
		t.Fatal(err)
	}
	g0 := append([]complex128(nil), sys.g.Data...)
	c0 := append([]complex128(nil), sys.c.Data...)
	r0 := append([]complex128(nil), sys.rhs0...)

	// Patch several overlapping components (R1 and C1 share node "a"),
	// repatch one, then reset: every stamp must be bit-identical.
	for _, p := range []struct {
		name string
		v    float64
	}{{"R1", 1.5e3}, {"C1", 22e-9}, {"V1", 2}, {"R1", 0.7e3}, {"L1", 2e-3}, {"G1", 3e-4}} {
		if err := sys.SetValue(p.name, p.v); err != nil {
			t.Fatalf("SetValue(%s): %v", p.name, err)
		}
	}
	if !sys.Patched() {
		t.Fatal("Patched() = false after SetValue")
	}
	sys.Reset()
	if sys.Patched() {
		t.Fatal("Patched() = true after Reset")
	}
	for i := range g0 {
		if sys.g.Data[i] != g0[i] {
			t.Fatalf("G[%d] drifted: %v != %v", i, sys.g.Data[i], g0[i])
		}
	}
	for i := range c0 {
		if sys.c.Data[i] != c0[i] {
			t.Fatalf("C[%d] drifted: %v != %v", i, sys.c.Data[i], c0[i])
		}
	}
	for i := range r0 {
		if sys.rhs0[i] != r0[i] {
			t.Fatalf("rhs0[%d] drifted: %v != %v", i, sys.rhs0[i], r0[i])
		}
	}
}

func TestRepeatedSetValueComposes(t *testing.T) {
	const freq = 5e3
	sys, err := NewSystem(patchBench())
	if err != nil {
		t.Fatal(err)
	}
	// Two successive patches: the last one wins.
	if err := sys.SetValue("R1", 5e3); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetValue("R1", 1.2e3); err != nil {
		t.Fatal(err)
	}
	got, err := sys.SolveAt(freq)
	if err != nil {
		t.Fatal(err)
	}

	ref := patchBench()
	v, _ := ref.Valued("R1")
	v.SetValue(1.2e3)
	refSys, err := NewSystem(ref)
	if err != nil {
		t.Fatal(err)
	}
	want, err := refSys.SolveAt(freq)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := got.Voltage("b")
	w, _ := want.Voltage("b")
	if d := cmplx.Abs(g - w); d > 1e-12*(1+cmplx.Abs(w)) {
		t.Fatalf("composed patch: %v vs %v", g, w)
	}
}

func TestSetValueUnsupported(t *testing.T) {
	sys, err := NewSystem(patchBench())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetValue("OP1", 2); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("opamp patch: err = %v, want ErrUnsupported", err)
	}
	if err := sys.SetValue("R1", 0); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("zero-resistance patch: err = %v, want ErrUnsupported", err)
	}
	if err := sys.SetValue("nope", 1); err == nil {
		t.Fatal("unknown component patch: err = nil")
	}
	// Failed patches must leave the system un-patched.
	if sys.Patched() {
		t.Fatal("Patched() = true after only failed patches")
	}
}

func TestSweepGridFlushesAndVisits(t *testing.T) {
	c := circuit.New("rc")
	c.V("V1", "in", "0", 1)
	c.R("R1", "in", "out", 1e3)
	c.Cap("C1", "out", "0", 100e-9)
	sys, err := NewSystem(c)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sys.NewSweeper("out")
	if err != nil {
		t.Fatal(err)
	}
	grid := []float64{100, 1e3, 1e4}
	var visited int
	err = sw.SweepGrid(grid, func(i int, v complex128, err error) error {
		if err != nil {
			return err
		}
		if cmplx.Abs(v) <= 0 || cmplx.Abs(v) > 1 {
			t.Errorf("point %d: |H| = %g out of (0, 1]", i, cmplx.Abs(v))
		}
		visited++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != len(grid) {
		t.Fatalf("visited %d points, want %d", visited, len(grid))
	}
	if sw.tally.solves != 0 {
		t.Fatalf("SweepGrid left %d unflushed solves in the tally", sw.tally.solves)
	}

	// A visit error aborts the sweep and is returned.
	sentinel := errors.New("stop")
	err = sw.SweepGrid(grid, func(i int, v complex128, err error) error {
		if i == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("SweepGrid abort: err = %v, want sentinel", err)
	}
	if sw.tally.solves != 0 {
		t.Fatal("SweepGrid did not flush the tally on abort")
	}
}

func TestSweeperSystemHandle(t *testing.T) {
	sys, err := NewSystem(patchBench())
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sys.NewSweeper("b")
	if err != nil {
		t.Fatal(err)
	}
	if sw.System() != sys {
		t.Fatal("Sweeper.System() does not return the owning system")
	}
}
