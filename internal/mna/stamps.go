package mna

import (
	"fmt"

	"analogdft/internal/circuit"
	"analogdft/internal/numeric"
)

// adder is the write surface of one stamp walk. Three implementations
// cover every layout phase: *numeric.Matrix (dense caches),
// *numeric.CSRValues (sparse value arrays under a shared pattern —
// passed by pointer so the interface conversion never boxes) and
// *coordCollector (the symbolic pass that discovers the pattern).
type adder interface {
	Add(i, j int, v complex128)
}

// coordCollector records which entries a stamp walk touches, ignoring
// the values — the symbolic phase of the sparse build. Running the same
// walk that later writes the values guarantees the pattern covers every
// slot assembly and patching will ever address.
type coordCollector struct {
	coords []int64
}

func (c *coordCollector) Add(i, j int, _ complex128) {
	c.coords = append(c.coords, numeric.PackCoord(i, j))
}

// buildStamps performs the component walk(s) for one System: every
// frequency-independent stamp goes into the G cache (and the excitation
// into rhs0), every stamp proportional to jω goes into the C cache —
// capacitors as +C farads, inductor branch equations as −L henries —
// and single-pole opamps, whose constraint row is a nonlinear function
// of ω, are collected on the dynamic list for per-point stamping. All
// structural validation (zero resistors, dangling control branches,
// unsupported models) happens here, once, instead of on every frequency
// point.
//
// Under the dense layout the walk stamps two n×n matrices directly.
// Otherwise a symbolic pass first collects the touched coordinates —
// including the per-point opamp constraint rows, which must own slots
// in the pattern even though their cached values stay zero — resolves
// LayoutAuto via the fill heuristic, and (when sparse wins) re-walks
// the components into two value arrays sharing one CSR pattern.
func (s *System) buildStamps() error {
	resolved := s.layout
	var pat *numeric.Pattern
	if resolved != LayoutDense {
		// Symbolic pass: coordinates only, no RHS buffer — the excitation
		// vector is carved out of the value slab below once the pattern
		// (and so the slab size) is known.
		col := &coordCollector{coords: make([]int64, 0, 16*s.n)}
		dynamic, err := s.stampAll(col, col, nil)
		if err != nil {
			return err
		}
		for _, op := range dynamic {
			// The value of jw is irrelevant — the collector only records
			// coordinates — but the walk must be the per-point one so the
			// dynamic rows' slots enter the pattern.
			s.stampOpampRow(col, op, 1i)
		}
		if err := s.patStore.InitFromCoords(s.n, col.coords); err != nil {
			return err
		}
		if resolved == LayoutAuto {
			resolved = chooseLayout(s.n, s.patStore.NNZ())
		}
		if resolved == LayoutSparse {
			pat = &s.patStore
		}
	}

	if pat != nil {
		// One slab for both value caches and the excitation, and the stamp
		// adapters live in the System: a sparse build pays one value-array
		// allocation where the dense build pays one per matrix plus the
		// RHS.
		nnz := pat.NNZ()
		slab := make([]complex128, 2*nnz+s.n)
		gval := slab[:nnz:nnz]
		cval := slab[nnz : 2*nnz : 2*nnz]
		rhs0 := slab[2*nnz:]
		s.gBox = numeric.CSRValues{P: pat, Vals: gval}
		s.cBox = numeric.CSRValues{P: pat, Vals: cval}
		dynamic, err := s.stampAll(&s.gBox, &s.cBox, rhs0)
		if err != nil {
			return err
		}
		s.pat, s.gval, s.cval = pat, gval, cval
		s.rhs0, s.dynamic = rhs0, dynamic
		s.resolved = LayoutSparse
	} else {
		rhs0 := make([]complex128, s.n)
		g := numeric.NewMatrix(s.n, s.n)
		cm := numeric.NewMatrix(s.n, s.n)
		dynamic, err := s.stampAll(g, cm, rhs0)
		if err != nil {
			return err
		}
		s.g, s.c = g, cm
		s.rhs0, s.dynamic = rhs0, dynamic
		s.resolved = LayoutDense
	}
	s.stampsBuilt = true
	return nil
}

// stampAll is the one component walk, layout-agnostic: g receives the
// frequency-independent stamps, cm the jω-proportional ones, rhs0 the
// excitation. A nil rhs0 skips the excitation writes — the symbolic
// collector pass only needs coordinates and runs before the RHS buffer
// exists. It returns the single-pole opamps needing per-point rows.
func (s *System) stampAll(g, cm adder, rhs0 []complex128) ([]*circuit.Opamp, error) {
	var dynamic []*circuit.Opamp
	for _, comp := range s.ckt.Components() {
		switch c := comp.(type) {
		case *circuit.Resistor:
			if c.Ohms == 0 {
				return nil, fmt.Errorf("%w: resistor %q has zero resistance", ErrUnsupported, c.Name())
			}
			stampConductance(g, s.node(c.A), s.node(c.B), complex(1/c.Ohms, 0))

		case *circuit.Capacitor:
			// Scaled by jω at assembly time.
			stampConductance(cm, s.node(c.A), s.node(c.B), complex(c.Farads, 0))

		case *circuit.Inductor:
			// Branch equation: V(a) − V(b) − jωL·I = 0; KCL: I out of a, into b.
			a, b, br := s.node(c.A), s.node(c.B), s.branchOf[c.Name()]
			if a >= 0 {
				g.Add(a, br, 1)
				g.Add(br, a, 1)
			}
			if b >= 0 {
				g.Add(b, br, -1)
				g.Add(br, b, -1)
			}
			cm.Add(br, br, -complex(c.Henries, 0))

		case *circuit.VSource:
			p, q, br := s.node(c.Plus), s.node(c.Minus), s.branchOf[c.Name()]
			if p >= 0 {
				g.Add(p, br, 1)
				g.Add(br, p, 1)
			}
			if q >= 0 {
				g.Add(q, br, -1)
				g.Add(br, q, -1)
			}
			if rhs0 != nil {
				rhs0[br] = complex(c.Amplitude, 0)
			}

		case *circuit.ISource:
			p, q := s.node(c.Plus), s.node(c.Minus)
			j := complex(c.Amplitude, 0)
			if rhs0 != nil {
				if p >= 0 {
					rhs0[p] -= j
				}
				if q >= 0 {
					rhs0[q] += j
				}
			}

		case *circuit.VCVS:
			op, om := s.node(c.OutP), s.node(c.OutM)
			cp, cq := s.node(c.CtrlP), s.node(c.CtrlM)
			br := s.branchOf[c.Name()]
			if op >= 0 {
				g.Add(op, br, 1)
				g.Add(br, op, 1)
			}
			if om >= 0 {
				g.Add(om, br, -1)
				g.Add(br, om, -1)
			}
			gain := complex(c.Gain, 0)
			if cp >= 0 {
				g.Add(br, cp, -gain)
			}
			if cq >= 0 {
				g.Add(br, cq, gain)
			}

		case *circuit.VCCS:
			op, om := s.node(c.OutP), s.node(c.OutM)
			cp, cq := s.node(c.CtrlP), s.node(c.CtrlM)
			gm := complex(c.Gm, 0)
			for _, t := range []struct {
				row int
				sgn complex128
			}{{op, 1}, {om, -1}} {
				if t.row < 0 {
					continue
				}
				if cp >= 0 {
					g.Add(t.row, cp, t.sgn*gm)
				}
				if cq >= 0 {
					g.Add(t.row, cq, -t.sgn*gm)
				}
			}

		case *circuit.CCVS:
			// V(op) − V(om) − Rt·I(ctrl) = 0 with its own branch current.
			ctrlBr, ok := s.branchOf[c.CtrlVSource]
			if !ok {
				return nil, fmt.Errorf("%w: CCVS %q controls through %q, which has no branch current", ErrUnsupported, c.Name(), c.CtrlVSource)
			}
			op, om := s.node(c.OutP), s.node(c.OutM)
			br := s.branchOf[c.Name()]
			if op >= 0 {
				g.Add(op, br, 1)
				g.Add(br, op, 1)
			}
			if om >= 0 {
				g.Add(om, br, -1)
				g.Add(br, om, -1)
			}
			g.Add(br, ctrlBr, complex(-c.Rt, 0))

		case *circuit.CCCS:
			// I(op→om) = Gain·I(ctrl): current injections proportional to
			// the control branch current.
			ctrlBr, ok := s.branchOf[c.CtrlVSource]
			if !ok {
				return nil, fmt.Errorf("%w: CCCS %q controls through %q, which has no branch current", ErrUnsupported, c.Name(), c.CtrlVSource)
			}
			op, om := s.node(c.OutP), s.node(c.OutM)
			gain := complex(c.Gain, 0)
			if op >= 0 {
				g.Add(op, ctrlBr, gain)
			}
			if om >= 0 {
				g.Add(om, ctrlBr, -gain)
			}

		case *circuit.Opamp:
			if err := s.buildOpampStamp(g, c); err != nil {
				return nil, err
			}
			if c.Model == circuit.ModelSinglePole {
				dynamic = append(dynamic, c)
			}

		default:
			return nil, fmt.Errorf("%w: %T", ErrUnsupported, comp)
		}
	}
	return dynamic, nil
}

// stampConductance adds admittance y between nodes a and b.
func stampConductance(m adder, a, b int, y complex128) {
	if a >= 0 {
		m.Add(a, a, y)
	}
	if b >= 0 {
		m.Add(b, b, y)
	}
	if a >= 0 && b >= 0 {
		m.Add(a, b, -y)
		m.Add(b, a, -y)
	}
}

// buildOpampStamp validates an opamp and writes its frequency-independent
// part: the output branch-current injection always, and the full
// constraint row for ideal models. Single-pole constraint rows stay empty
// here — stampOpampRow fills them per frequency point, and nothing else
// ever writes into an opamp's own branch row.
func (s *System) buildOpampStamp(g adder, c *circuit.Opamp) error {
	out := s.node(c.Out)
	br := s.branchOf[c.Name()]
	if out >= 0 {
		g.Add(out, br, 1)
	}

	switch c.Mode {
	case circuit.ModeNormal:
		switch c.Model {
		case circuit.ModelIdeal:
			// Nullor: V(+) − V(−) = 0.
			if p := s.node(c.InP); p >= 0 {
				g.Add(br, p, 1)
			}
			if q := s.node(c.InN); q >= 0 {
				g.Add(br, q, -1)
			}
		case circuit.ModelSinglePole:
			// Dynamic: stamped per point.
		default:
			return fmt.Errorf("%w: opamp %q model %v", ErrUnsupported, c.Name(), c.Model)
		}

	case circuit.ModeFollower:
		if !c.Configurable || c.TestIn == "" {
			return fmt.Errorf("%w: opamp %q in follower mode without test input", ErrUnsupported, c.Name())
		}
		switch c.Model {
		case circuit.ModelIdeal:
			// V(out) − V(test) = 0.
			if out >= 0 {
				g.Add(br, out, 1)
			}
			if tin := s.node(c.TestIn); tin >= 0 {
				g.Add(br, tin, -1)
			}
		case circuit.ModelSinglePole:
			// Dynamic: stamped per point.
		default:
			return fmt.Errorf("%w: opamp %q model %v", ErrUnsupported, c.Name(), c.Model)
		}

	default:
		return fmt.Errorf("%w: opamp %q mode %v", ErrUnsupported, c.Name(), c.Mode)
	}
	return nil
}

// stampOpampRow writes the frequency-dependent constraint row of a
// single-pole opamp into the assembled matrix (either layout). The row
// arrives all-zero from the fused scale-add — the split stamps never
// touch it, and under the sparse layout its slots are part of the
// pattern with zero cached values — so plain adds reproduce exactly
// what the one-shot stamping used to write. Modes and models were
// validated by buildStamps.
func (s *System) stampOpampRow(m adder, c *circuit.Opamp, jw complex128) {
	out := s.node(c.Out)
	br := s.branchOf[c.Name()]

	switch c.Mode {
	case circuit.ModeNormal:
		// V(out) − A(jω)·(V(+) − V(−)) = 0.
		a := openLoopGain(c, jw)
		if out >= 0 {
			m.Add(br, out, 1)
		}
		if p := s.node(c.InP); p >= 0 {
			m.Add(br, p, -a)
		}
		if q := s.node(c.InN); q >= 0 {
			m.Add(br, q, a)
		}

	case circuit.ModeFollower:
		// Unity-feedback buffer: V(out) = A/(1+A) · V(test).
		a := openLoopGain(c, jw)
		buf := a / (1 + a)
		if out >= 0 {
			m.Add(br, out, 1)
		}
		if tin := s.node(c.TestIn); tin >= 0 {
			m.Add(br, tin, -buf)
		}
	}
}
