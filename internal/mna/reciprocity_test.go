package mna

import (
	"fmt"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"analogdft/internal/circuit"
)

// randomRCNetwork builds a connected random RC network over n internal
// nodes (every node gets a grounding resistor so the system is always
// solvable).
func randomRCNetwork(rng *rand.Rand, n int) *circuit.Circuit {
	c := circuit.New("rand-rc")
	node := func(i int) string { return fmt.Sprintf("n%d", i) }
	id := 0
	add := func(a, b string) {
		id++
		if rng.Intn(2) == 0 {
			c.R(fmt.Sprintf("R%d", id), a, b, 100+rng.Float64()*1e5)
		} else {
			c.Cap(fmt.Sprintf("C%d", id), a, b, 1e-12+rng.Float64()*1e-7)
		}
	}
	// Spanning chain to guarantee connectivity, plus random extra edges.
	for i := 1; i < n; i++ {
		add(node(i-1), node(i))
	}
	extra := rng.Intn(2 * n)
	for k := 0; k < extra; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			add(node(a), node(b))
		}
	}
	// Ground every node resistively: keeps ω=0 nonsingular.
	for i := 0; i < n; i++ {
		id++
		c.R(fmt.Sprintf("Rg%d", id), node(i), "0", 1e3+rng.Float64()*1e6)
	}
	return c
}

// transferImpedance injects a 1 A AC current at node `at` and returns the
// voltage at node `measure`.
func transferImpedance(t *testing.T, base *circuit.Circuit, at, measure string, freq float64) complex128 {
	t.Helper()
	ckt := base.Clone()
	ckt.I("Iinj", "0", at, 1)
	sys, err := NewSystem(ckt)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	sol, err := sys.SolveAt(freq)
	if err != nil {
		t.Fatalf("SolveAt: %v", err)
	}
	v, err := sol.Voltage(measure)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// Reciprocity: for any passive RC network, the transfer impedance is
// symmetric — injecting current at a and measuring at b equals injecting
// at b and measuring at a. A strong whole-engine correctness property:
// any sign or stamping error in the R/C/I stamps breaks it.
func TestReciprocityProperty(t *testing.T) {
	f := func(seed int64, sizeRaw, freqRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(sizeRaw)%6
		ckt := randomRCNetwork(rng, n)
		a := fmt.Sprintf("n%d", rng.Intn(n))
		b := fmt.Sprintf("n%d", rng.Intn(n))
		if a == b {
			return true
		}
		freq := float64(1+int(freqRaw)) * 97.3
		zab := transferImpedance(t, ckt, a, b, freq)
		zba := transferImpedance(t, ckt, b, a, freq)
		scale := cmplx.Abs(zab) + cmplx.Abs(zba)
		if scale == 0 {
			return true
		}
		return cmplx.Abs(zab-zba)/scale < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Active networks (opamps) are NOT reciprocal: the property test above
// must fail if applied naively to an amplifier — guard that the
// reciprocity check itself has teeth.
func TestReciprocityBreaksWithOpamp(t *testing.T) {
	c := circuit.New("act")
	c.R("R1", "a", "m", 1e3)
	c.R("R2", "m", "b", 10e3)
	c.OA("OP1", "0", "m", "b")
	c.R("Rg1", "a", "0", 1e3)
	c.R("Rg2", "b", "0", 1e3)
	zab := transferImpedance(t, c, "a", "b", 1e3)
	zba := transferImpedance(t, c, "b", "a", 1e3)
	if cmplx.Abs(zab-zba) < 1e-6 {
		t.Fatalf("opamp network reported reciprocal: %v vs %v", zab, zba)
	}
}
