package mna

import (
	"fmt"

	"analogdft/internal/circuit"
	"analogdft/internal/numeric"
)

// SetValue patches the cached split stamps so the named component behaves
// as if its primary value were v — a resistance in ohms, capacitance in
// farads, inductance in henries, source amplitude, or controlled-source
// gain — without cloning the circuit or rebuilding the index maps. Only
// the handful of matrix entries the component stamps are touched; the
// circuit itself is never mutated.
//
// The first time an entry is patched its pre-patch value is snapshotted,
// and Reset restores every snapshot bit-for-bit, so the nominal stamps
// cannot drift no matter how many patch/Reset cycles run. Repeated
// SetValue calls on the same component compose (the delta is computed
// from the current patched value).
//
// Components whose behavior is not a single stamped value — opamps, and a
// resistor patched to exactly zero (infinite conductance) — return an
// error wrapping ErrUnsupported; callers fall back to cloning the circuit
// and building a fresh System.
func (s *System) SetValue(name string, v float64) error {
	if !s.stampsBuilt {
		if err := s.buildStamps(); err != nil {
			return err
		}
		accountStamps(true)
	}
	comp, ok := s.ckt.Component(name)
	if !ok {
		return fmt.Errorf("mna: unknown component %q", name)
	}
	if s.patchedVals == nil {
		s.patchedVals = make(map[string]float64)
		s.snapG = make(map[int]complex128)
		s.snapC = make(map[int]complex128)
		s.snapRHS = make(map[int]complex128)
	}
	old, patched := s.patchedVals[name]

	switch c := comp.(type) {
	case *circuit.Resistor:
		if !patched {
			old = c.Ohms
		}
		if old == 0 || v == 0 {
			return fmt.Errorf("%w: resistor %q patched to zero resistance", ErrUnsupported, name)
		}
		s.patchConductance(s.targetG(), s.node(c.A), s.node(c.B), complex(1/v-1/old, 0))

	case *circuit.Capacitor:
		if !patched {
			old = c.Farads
		}
		s.patchConductance(s.targetC(), s.node(c.A), s.node(c.B), complex(v-old, 0))

	case *circuit.Inductor:
		if !patched {
			old = c.Henries
		}
		br := s.branchOf[name]
		s.patchEntry(s.targetC(), br, br, -complex(v-old, 0))

	case *circuit.VSource:
		if !patched {
			old = c.Amplitude
		}
		br := s.branchOf[name]
		if _, seen := s.snapRHS[br]; !seen {
			s.snapRHS[br] = s.rhs0[br]
		}
		s.rhs0[br] += complex(v-old, 0)

	case *circuit.ISource:
		if !patched {
			old = c.Amplitude
		}
		d := complex(v-old, 0)
		if p := s.node(c.Plus); p >= 0 {
			if _, seen := s.snapRHS[p]; !seen {
				s.snapRHS[p] = s.rhs0[p]
			}
			s.rhs0[p] -= d
		}
		if q := s.node(c.Minus); q >= 0 {
			if _, seen := s.snapRHS[q]; !seen {
				s.snapRHS[q] = s.rhs0[q]
			}
			s.rhs0[q] += d
		}

	case *circuit.VCVS:
		if !patched {
			old = c.Gain
		}
		br, d := s.branchOf[name], complex(v-old, 0)
		if cp := s.node(c.CtrlP); cp >= 0 {
			s.patchEntry(s.targetG(), br, cp, -d)
		}
		if cq := s.node(c.CtrlM); cq >= 0 {
			s.patchEntry(s.targetG(), br, cq, d)
		}

	case *circuit.VCCS:
		if !patched {
			old = c.Gm
		}
		d := complex(v-old, 0)
		op, om := s.node(c.OutP), s.node(c.OutM)
		cp, cq := s.node(c.CtrlP), s.node(c.CtrlM)
		for _, t := range []struct {
			row int
			sgn complex128
		}{{op, 1}, {om, -1}} {
			if t.row < 0 {
				continue
			}
			if cp >= 0 {
				s.patchEntry(s.targetG(), t.row, cp, t.sgn*d)
			}
			if cq >= 0 {
				s.patchEntry(s.targetG(), t.row, cq, -t.sgn*d)
			}
		}

	case *circuit.CCVS:
		if !patched {
			old = c.Rt
		}
		ctrlBr, okBr := s.branchOf[c.CtrlVSource]
		if !okBr {
			return fmt.Errorf("%w: CCVS %q controls through %q, which has no branch current", ErrUnsupported, name, c.CtrlVSource)
		}
		s.patchEntry(s.targetG(), s.branchOf[name], ctrlBr, complex(-(v-old), 0))

	case *circuit.CCCS:
		if !patched {
			old = c.Gain
		}
		ctrlBr, okBr := s.branchOf[c.CtrlVSource]
		if !okBr {
			return fmt.Errorf("%w: CCCS %q controls through %q, which has no branch current", ErrUnsupported, name, c.CtrlVSource)
		}
		d := complex(v-old, 0)
		if op := s.node(c.OutP); op >= 0 {
			s.patchEntry(s.targetG(), op, ctrlBr, d)
		}
		if om := s.node(c.OutM); om >= 0 {
			s.patchEntry(s.targetG(), om, ctrlBr, -d)
		}

	default:
		return fmt.Errorf("%w: cannot patch %T %q", ErrUnsupported, comp, name)
	}

	s.patchedVals[name] = v
	return nil
}

// Reset restores every stamp entry touched by SetValue to its snapshotted
// nominal value — an exact bitwise restore, not an inverse delta — and
// forgets all patches. A System with no live patches is untouched.
func (s *System) Reset() {
	if len(s.patchedVals) == 0 {
		return
	}
	if s.resolved == LayoutSparse {
		for idx, v := range s.snapG {
			s.gval[idx] = v
		}
		for idx, v := range s.snapC {
			s.cval[idx] = v
		}
	} else {
		for idx, v := range s.snapG {
			s.g.Data[idx] = v
		}
		for idx, v := range s.snapC {
			s.c.Data[idx] = v
		}
	}
	for idx, v := range s.snapRHS {
		s.rhs0[idx] = v
	}
	clear(s.snapG)
	clear(s.snapC)
	clear(s.snapRHS)
	clear(s.patchedVals)
}

// Patched reports whether any component value is currently patched.
func (s *System) Patched() bool { return len(s.patchedVals) > 0 }

// patchTarget addresses one stamp cache (G or C) in whichever layout
// the system resolved: dense patches index m.Data, sparse patches are
// lowered to direct value-array writes through the pattern's
// component→nonzero-slot index. The snapshot map is keyed by the same
// index the write uses (flat dense offset or CSR slot), so Reset
// restores through the identical addressing.
type patchTarget struct {
	m    *numeric.Matrix
	vals []complex128
	snap map[int]complex128
}

// targetG addresses the frequency-independent stamp cache.
func (s *System) targetG() patchTarget { return patchTarget{m: s.g, vals: s.gval, snap: s.snapG} }

// targetC addresses the jω-proportional stamp cache.
func (s *System) targetC() patchTarget { return patchTarget{m: s.c, vals: s.cval, snap: s.snapC} }

// patchEntry adds delta to one stamp entry, snapshotting the pre-patch
// value the first time the entry is touched.
func (s *System) patchEntry(t patchTarget, i, j int, delta complex128) {
	if s.resolved == LayoutSparse {
		slot := s.pat.SlotOf(i, j)
		if slot < 0 {
			// Unreachable: patches address subsets of the stamped entries,
			// and the pattern was collected from the same stamp walk.
			panic(fmt.Sprintf("mna: patch outside pattern at (%d,%d)", i, j))
		}
		if _, seen := t.snap[slot]; !seen {
			t.snap[slot] = t.vals[slot]
		}
		t.vals[slot] += delta
		return
	}
	idx := i*t.m.Cols + j
	if _, seen := t.snap[idx]; !seen {
		t.snap[idx] = t.m.Data[idx]
	}
	t.m.Data[idx] += delta
}

// patchConductance applies the two-terminal admittance stamp pattern as a
// delta patch between nodes a and b.
func (s *System) patchConductance(t patchTarget, a, b int, y complex128) {
	if a >= 0 {
		s.patchEntry(t, a, a, y)
	}
	if b >= 0 {
		s.patchEntry(t, b, b, y)
	}
	if a >= 0 && b >= 0 {
		s.patchEntry(t, a, b, -y)
		s.patchEntry(t, b, a, -y)
	}
}
