package mna

import (
	"math"
	"strings"
	"testing"

	"analogdft/internal/circuit"
	"analogdft/internal/circuits"
	"analogdft/internal/numeric"
)

func TestParseLayout(t *testing.T) {
	cases := []struct {
		in   string
		want Layout
	}{
		{"", LayoutAuto},
		{"auto", LayoutAuto},
		{"dense", LayoutDense},
		{"sparse", LayoutSparse},
	}
	for _, c := range cases {
		got, err := ParseLayout(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseLayout(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseLayout("csc"); err == nil || !strings.Contains(err.Error(), "csc") {
		t.Fatalf("ParseLayout(csc) err = %v, want named unknown-layout error", err)
	}
	if s := LayoutAuto.String() + LayoutDense.String() + LayoutSparse.String(); s != "autodensesparse" {
		t.Fatalf("Layout strings = %q", s)
	}
}

func TestChooseLayout(t *testing.T) {
	// Below the size floor everything is dense regardless of fill.
	if got := chooseLayout(sparseMinN-1, 1); got != LayoutDense {
		t.Errorf("tiny system resolved %v", got)
	}
	n := sparseMinN
	full := n * n
	thresh := int(sparseMaxFill * float64(full))
	if got := chooseLayout(n, thresh); got != LayoutSparse {
		t.Errorf("fill at threshold resolved %v", got)
	}
	if got := chooseLayout(n, thresh+1); got != LayoutDense {
		t.Errorf("fill above threshold resolved %v", got)
	}
}

// layoutCircuits are the dense/sparse equivalence corpus: the paper
// biquad (ideal opamps, the reference workload), a cascade (largest,
// sparsest), and a single-pole opamp stage whose per-point constraint
// rows exercise the dynamic slots of the sparse pattern.
func layoutCircuits(t *testing.T) map[string]*circuit.Circuit {
	t.Helper()
	cas, err := circuits.BiquadCascade(3)
	if err != nil {
		t.Fatal(err)
	}
	sp := circuit.New("singlepole")
	sp.V("V1", "in", "0", 1)
	sp.R("R1", "in", "sum", 1e3)
	sp.R("R2", "sum", "out", 10e3)
	sp.Cap("C1", "sum", "out", 1e-9)
	sp.OASinglePole("OP1", "0", "sum", "out", 1e5, 10)
	sp.R("RL", "out", "mid", 2e3)
	sp.Cap("C2", "mid", "0", 10e-9)
	sp.L("L1", "mid", "0", 1e-3)
	return map[string]*circuit.Circuit{
		"biquad":     circuits.PaperBiquad().Circuit,
		"cascade":    cas.Circuit,
		"singlepole": sp,
	}
}

func sameC128(a, b complex128) bool {
	return math.Float64bits(real(a)) == math.Float64bits(real(b)) &&
		math.Float64bits(imag(a)) == math.Float64bits(imag(b))
}

var layoutGrid = []float64{0, 1, 97.3, 1e3, 9.87e3, 123456.7, 1e6}

// TestSparseSolveMatchesDenseBitExact is the mna-layer half of the
// layout gate: the same circuit solved under explicit dense and sparse
// layouts must agree to the bit on every node voltage, because the
// sparse factorization replays the dense elimination operation for
// operation (identical pivot order, identical update order).
func TestSparseSolveMatchesDenseBitExact(t *testing.T) {
	for name, ckt := range layoutCircuits(t) {
		t.Run(name, func(t *testing.T) {
			dense, err := NewSystemLayout(ckt, LayoutDense)
			if err != nil {
				t.Fatal(err)
			}
			sparse, err := NewSystemLayout(ckt, LayoutSparse)
			if err != nil {
				t.Fatal(err)
			}
			if r, err := sparse.ResolveLayout(); err != nil || r != LayoutSparse {
				t.Fatalf("ResolveLayout = %v, %v", r, err)
			}
			for _, f := range layoutGrid {
				ds, err := dense.SolveAt(f)
				if err != nil {
					t.Fatalf("dense SolveAt(%g): %v", f, err)
				}
				ss, err := sparse.SolveAt(f)
				if err != nil {
					t.Fatalf("sparse SolveAt(%g): %v", f, err)
				}
				for _, node := range dense.NodeNames() {
					dv, _ := ds.Voltage(node)
					sv, _ := ss.Voltage(node)
					if !sameC128(dv, sv) {
						t.Fatalf("V(%s) at %g Hz: dense %v, sparse %v", node, f, dv, sv)
					}
				}
			}
		})
	}
}

// TestSparseSweeperMatchesDenseBitExact covers the workspace-reusing
// sweep path, including patch/Reset cycles whose slot-lowered writes
// must land on exactly the entries the dense patch touches.
func TestSparseSweeperMatchesDenseBitExact(t *testing.T) {
	ckt := circuits.PaperBiquad().Circuit
	dense, err := NewSystemLayout(ckt, LayoutDense)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewSystemLayout(ckt, LayoutSparse)
	if err != nil {
		t.Fatal(err)
	}
	node := ckt.Output
	dsw, err := dense.NewSweeper(node)
	if err != nil {
		t.Fatal(err)
	}
	ssw, err := sparse.NewSweeper(node)
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		for _, f := range layoutGrid {
			dv, err := dsw.VoltageAt(f)
			if err != nil {
				t.Fatalf("%s: dense VoltageAt(%g): %v", stage, f, err)
			}
			sv, err := ssw.VoltageAt(f)
			if err != nil {
				t.Fatalf("%s: sparse VoltageAt(%g): %v", stage, f, err)
			}
			if !sameC128(dv, sv) {
				t.Fatalf("%s at %g Hz: dense %v, sparse %v", stage, f, dv, sv)
			}
		}
	}
	check("nominal")
	// Patch a resistor and a capacitor (conductance stamp patterns), then
	// compose a second patch on the same resistor.
	for _, sys := range []*System{dense, sparse} {
		if err := sys.SetValue("R1", 7.7e3); err != nil {
			t.Fatal(err)
		}
		if err := sys.SetValue("C1", 3.3e-9); err != nil {
			t.Fatal(err)
		}
		if err := sys.SetValue("R1", 12.1e3); err != nil {
			t.Fatal(err)
		}
	}
	check("patched")
	dense.Reset()
	sparse.Reset()
	check("reset")
	// After Reset the sparse value arrays must match a freshly built
	// system bit-for-bit, same as the dense snapshot-restore contract.
	fresh, err := NewSystemLayout(ckt, LayoutSparse)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.ensureStamps(); err != nil {
		t.Fatal(err)
	}
	for i := range fresh.gval {
		if !sameC128(fresh.gval[i], sparse.gval[i]) || !sameC128(fresh.cval[i], sparse.cval[i]) {
			t.Fatalf("slot %d drifted after Reset", i)
		}
	}
}

func TestAutoLayoutResolution(t *testing.T) {
	// The paper biquad (n=10, fill 0.27) must resolve sparse under Auto —
	// the heuristic exists to put the reference workload on the fast path.
	sys, err := NewSystemLayout(circuits.PaperBiquad().Circuit, LayoutAuto)
	if err != nil {
		t.Fatal(err)
	}
	if r, err := sys.ResolveLayout(); err != nil || r != LayoutSparse {
		t.Fatalf("biquad auto layout = %v, %v, want sparse", r, err)
	}
	if sys.Pattern() == nil {
		t.Fatal("sparse-resolved system has no pattern")
	}
	// A three-unknown divider stays dense: below the size floor the
	// dense factorization wins on constant factors.
	div := circuit.New("div")
	div.V("V1", "in", "0", 1)
	div.R("R1", "in", "out", 1e3)
	div.R("R2", "out", "0", 1e3)
	tiny, err := NewSystemLayout(div, LayoutAuto)
	if err != nil {
		t.Fatal(err)
	}
	if r, err := tiny.ResolveLayout(); err != nil || r != LayoutDense {
		t.Fatalf("divider auto layout = %v, %v, want dense", r, err)
	}
	if tiny.Pattern() != nil {
		t.Fatal("dense-resolved system exposes a pattern")
	}
	// NewSystem keeps the historical dense default.
	legacy, err := NewSystem(circuits.PaperBiquad().Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if r, err := legacy.ResolveLayout(); err != nil || r != LayoutDense {
		t.Fatalf("NewSystem layout = %v, %v, want dense", r, err)
	}
}

// TestSharedWorkspaceAcrossLayouts reuses one caller-owned workspace
// between a sparse sweep and a dense sweep: each VoltageAt must size the
// buffer set its layout needs without corrupting the other's.
func TestSharedWorkspaceAcrossLayouts(t *testing.T) {
	ckt := circuits.PaperBiquad().Circuit
	dense, err := NewSystemLayout(ckt, LayoutDense)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewSystemLayout(ckt, LayoutSparse)
	if err != nil {
		t.Fatal(err)
	}
	ws := &numeric.Workspace{}
	node := ckt.Output
	dsw, err := dense.NewSweeperWS(node, ws)
	if err != nil {
		t.Fatal(err)
	}
	ssw, err := sparse.NewSweeperWS(node, ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range layoutGrid {
		sv, err := ssw.VoltageAt(f)
		if err != nil {
			t.Fatal(err)
		}
		dv, err := dsw.VoltageAt(f)
		if err != nil {
			t.Fatal(err)
		}
		if !sameC128(dv, sv) {
			t.Fatalf("interleaved layouts at %g Hz: dense %v, sparse %v", f, dv, sv)
		}
	}
}
