package mna

import "fmt"

// Layout selects the storage scheme of the cached stamp matrices and of
// every per-point assembly and factorization derived from them.
//
// The two layouts are bit-equivalent by construction — the sparse
// assembly, factorization and triangular solves perform the same
// floating-point operations in the same order as the dense ones (see
// numeric.SparseLU) — so the choice is purely a performance trade:
// dense wins on tiny or nearly-full systems, sparse on the larger,
// mostly-empty matrices real netlists stamp.
type Layout int

const (
	// LayoutAuto (the zero value) picks per system by the fill
	// heuristic: sparse when the system is big enough and empty enough
	// for the CSR machinery to pay for itself, dense otherwise.
	LayoutAuto Layout = iota
	// LayoutDense forces dense n×n storage.
	LayoutDense
	// LayoutSparse forces shared-pattern CSR storage.
	LayoutSparse
)

// String returns the flag-syntax name of the layout.
func (l Layout) String() string {
	switch l {
	case LayoutAuto:
		return "auto"
	case LayoutDense:
		return "dense"
	case LayoutSparse:
		return "sparse"
	}
	return fmt.Sprintf("Layout(%d)", int(l))
}

// ParseLayout parses a -layout flag value.
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "", "auto":
		return LayoutAuto, nil
	case "dense":
		return LayoutDense, nil
	case "sparse":
		return LayoutSparse, nil
	}
	return 0, fmt.Errorf("mna: unknown layout %q (want auto, dense or sparse)", s)
}

// Fill-heuristic constants resolving LayoutAuto. Below sparseMinN the
// whole dense matrix fits in a couple of cache lines and the CSR
// indirection costs more than the O(n²) walk it saves; above it, sparse
// wins whenever enough of the matrix is structurally empty. The density
// cutoff is deliberately generous — MNA matrices of real circuits sit
// far below it (the paper biquad is ~20% full, ladder-style netlists
// are emptier still), while random nearly-full test matrices stay
// dense.
const (
	sparseMinN    = 8
	sparseMaxFill = 0.40
)

// chooseLayout resolves LayoutAuto from the collected symbolic
// structure.
func chooseLayout(n, nnz int) Layout {
	if n >= sparseMinN && float64(nnz) <= sparseMaxFill*float64(n)*float64(n) {
		return LayoutSparse
	}
	return LayoutDense
}
