package boolexpr

import (
	"fmt"
	"math"
	"sort"
)

// GreedyCover returns a set of row indices covering every coverable column
// of det, using the classical largest-gain-first heuristic (ties broken by
// lowest row index). Columns with no true cell are ignored, mirroring the
// maximum-fault-coverage semantics of FromMatrix. The result is sorted.
//
// Greedy is the scalable baseline the exact methods are benchmarked
// against; it can return covers up to H(n) times larger than optimal.
func GreedyCover(det [][]bool) ([]int, error) {
	rows := len(det)
	if rows == 0 {
		return nil, ErrEmpty
	}
	cols := len(det[0])
	uncovered := make(map[int]bool)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			if len(det[i]) != cols {
				return nil, fmt.Errorf("boolexpr: ragged matrix row %d", i)
			}
			if det[i][j] {
				uncovered[j] = true
				break
			}
		}
	}
	var chosen []int
	used := make([]bool, rows)
	for len(uncovered) > 0 {
		bGreedyRounds.Inc()
		best, bestGain := -1, 0
		for i := 0; i < rows; i++ {
			if used[i] {
				continue
			}
			gain := 0
			for j := range uncovered {
				if det[i][j] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break // cannot happen: uncovered columns all have a covering row
		}
		used[best] = true
		chosen = append(chosen, best)
		for j := range uncovered {
			if det[best][j] {
				delete(uncovered, j)
			}
		}
	}
	sort.Ints(chosen)
	return chosen, nil
}

// MinCover returns an exact minimum-cost set of row indices covering every
// coverable column of det, via branch and bound. cost gives the cost of
// selecting a row (nil means unit cost, i.e. minimize the number of rows).
// Ties are broken deterministically towards lexicographically smallest row
// sets. The result is sorted.
func MinCover(det [][]bool, cost func(row int) float64) ([]int, error) {
	rows := len(det)
	if rows == 0 {
		return nil, ErrEmpty
	}
	if rows > MaxLiterals {
		return nil, fmt.Errorf("%w: %d rows", ErrTooLarge, rows)
	}
	cols := len(det[0])
	if cost == nil {
		cost = func(int) float64 { return 1 }
	}
	// coverable columns and, per column, the set of covering rows.
	var colRows [][]int
	for j := 0; j < cols; j++ {
		var cr []int
		for i := 0; i < rows; i++ {
			if len(det[i]) != cols {
				return nil, fmt.Errorf("boolexpr: ragged matrix row %d", i)
			}
			if det[i][j] {
				cr = append(cr, i)
			}
		}
		if len(cr) > 0 {
			colRows = append(colRows, cr)
		}
	}
	if len(colRows) == 0 {
		return []int{}, nil
	}

	rowMask := make([]uint64, rows) // columns covered by each row (bit per coverable column)
	if len(colRows) > MaxLiterals {
		// Fall back to a map-free but wider representation is overkill for
		// this library's scale; reject clearly instead.
		return nil, fmt.Errorf("%w: %d coverable columns", ErrTooLarge, len(colRows))
	}
	for jj, cr := range colRows {
		for _, i := range cr {
			rowMask[i] |= 1 << uint(jj)
		}
	}
	full := uint64(1)<<uint(len(colRows)) - 1

	bestCost := math.Inf(1)
	var bestSet []int

	minRowCost := math.Inf(1)
	for i := 0; i < rows; i++ {
		if c := cost(i); c < minRowCost {
			minRowCost = c
		}
	}
	if minRowCost < 0 {
		return nil, fmt.Errorf("boolexpr: negative row cost")
	}

	var rec func(covered uint64, chosen []int, spent float64)
	rec = func(covered uint64, chosen []int, spent float64) {
		bCoverNodes.Inc()
		if covered == full {
			if spent < bestCost || (spent == bestCost && lexLess(chosen, bestSet)) {
				bestCost = spent
				bestSet = append([]int(nil), chosen...)
			}
			return
		}
		if spent+minRowCost >= bestCost {
			return
		}
		// Branch on the uncovered column with the fewest covering rows.
		bestCol, bestFan := -1, math.MaxInt
		for jj, cr := range colRows {
			if covered&(1<<uint(jj)) != 0 {
				continue
			}
			if len(cr) < bestFan {
				bestCol, bestFan = jj, len(cr)
			}
		}
		for _, i := range colRows[bestCol] {
			if containsInt(chosen, i) {
				continue
			}
			rec(covered|rowMask[i], append(chosen, i), spent+cost(i))
		}
	}
	rec(0, nil, 0)

	sort.Ints(bestSet)
	return bestSet, nil
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// lexLess compares two row sets after sorting copies.
func lexLess(a, b []int) bool {
	if b == nil {
		return true
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := 0; i < len(as) && i < len(bs); i++ {
		if as[i] != bs[i] {
			return as[i] < bs[i]
		}
	}
	return len(as) < len(bs)
}

// CoverIsComplete reports whether the row set covers every coverable
// column of det.
func CoverIsComplete(det [][]bool, rowSet []int) bool {
	if len(det) == 0 {
		return false
	}
	cols := len(det[0])
	for j := 0; j < cols; j++ {
		coverable, covered := false, false
		for i := range det {
			if det[i][j] {
				coverable = true
				if containsInt(rowSet, i) {
					covered = true
					break
				}
			}
		}
		if coverable && !covered {
			return false
		}
	}
	return true
}
