package boolexpr

import (
	"errors"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperMatrix is Figure 5 of the paper: rows C0..C6, columns
// fR1 fR2 fR3 fR4 fR5 fR6 fC1 fC2.
func paperMatrix() [][]bool {
	b := func(xs ...int) []bool {
		out := make([]bool, len(xs))
		for i, x := range xs {
			out[i] = x == 1
		}
		return out
	}
	return [][]bool{
		b(1, 0, 0, 1, 0, 0, 0, 0), // C0
		b(0, 0, 1, 0, 1, 1, 0, 1), // C1
		b(1, 1, 0, 1, 1, 1, 1, 0), // C2
		b(0, 0, 0, 0, 1, 1, 0, 0), // C3
		b(1, 1, 1, 1, 1, 0, 0, 0), // C4
		b(0, 0, 1, 0, 0, 0, 0, 1), // C5
		b(1, 1, 0, 1, 0, 0, 0, 0), // C6
	}
}

var paperFaultIDs = []string{"fR1", "fR2", "fR3", "fR4", "fR5", "fR6", "fC1", "fC2"}

func cname(i int) string { return "C" + string(rune('0'+i)) }

func TestMaskBitsRoundTrip(t *testing.T) {
	m := MaskOf(0, 3, 5)
	if m != 0b101001 {
		t.Fatalf("mask = %b", m)
	}
	got := Bits(m)
	want := []int{0, 3, 5}
	if len(got) != 3 {
		t.Fatalf("Bits = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Bits = %v, want %v", got, want)
		}
	}
	if Bits(0) != nil {
		t.Fatal("Bits(0) should be nil")
	}
}

func TestMaskOfPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MaskOf(64)
}

func TestFromMatrixPaper(t *testing.T) {
	e, undet, err := FromMatrix(paperMatrix(), paperFaultIDs)
	if err != nil {
		t.Fatal(err)
	}
	if len(undet) != 0 {
		t.Fatalf("undetectable = %v, want none", undet)
	}
	if len(e.Clauses) != 8 || e.N != 7 {
		t.Fatalf("clauses = %d, N = %d", len(e.Clauses), e.N)
	}
	// fR1 clause: C0+C2+C4+C6.
	if e.Clauses[0] != MaskOf(0, 2, 4, 6) {
		t.Fatalf("fR1 clause = %v", Bits(e.Clauses[0]))
	}
	// fC1 clause: C2 only.
	if e.Clauses[6] != MaskOf(2) {
		t.Fatalf("fC1 clause = %v", Bits(e.Clauses[6]))
	}
	if e.Tags[6] != "fC1" {
		t.Fatalf("tag = %q", e.Tags[6])
	}
}

func TestFromMatrixUndetectable(t *testing.T) {
	det := [][]bool{
		{true, false, false},
		{false, false, true},
	}
	e, undet, err := FromMatrix(det, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(undet) != 1 || undet[0] != 1 {
		t.Fatalf("undetectable = %v, want [1]", undet)
	}
	if len(e.Clauses) != 2 {
		t.Fatalf("clauses = %d", len(e.Clauses))
	}
}

func TestFromMatrixErrors(t *testing.T) {
	if _, _, err := FromMatrix(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: %v", err)
	}
	ragged := [][]bool{{true, false}, {true}}
	if _, _, err := FromMatrix(ragged, nil); err == nil {
		t.Error("ragged accepted")
	}
	big := make([][]bool, 65)
	for i := range big {
		big[i] = []bool{true}
	}
	if _, _, err := FromMatrix(big, nil); !errors.Is(err, ErrTooLarge) {
		t.Errorf("too large: %v", err)
	}
}

func TestEssentialPaper(t *testing.T) {
	// §4.1: C2 is the unique essential configuration (fC1 column).
	e, _, _ := FromMatrix(paperMatrix(), paperFaultIDs)
	if ess := e.Essential(); ess != MaskOf(2) {
		t.Fatalf("essential = %v, want [2]", Bits(ess))
	}
}

func TestReduceByPaper(t *testing.T) {
	// Figure 6: after choosing C2, only fR3 and fC2 remain, giving
	// ξ_compl = (C1+C4+C5)·(C1+C5).
	e, _, _ := FromMatrix(paperMatrix(), paperFaultIDs)
	red := e.ReduceBy(MaskOf(2))
	if len(red.Clauses) != 2 {
		t.Fatalf("reduced clauses = %d, want 2", len(red.Clauses))
	}
	if red.Clauses[0] != MaskOf(1, 4, 5) || red.Tags[0] != "fR3" {
		t.Fatalf("clause 0 = %v (%s)", Bits(red.Clauses[0]), red.Tags[0])
	}
	if red.Clauses[1] != MaskOf(1, 5) || red.Tags[1] != "fC2" {
		t.Fatalf("clause 1 = %v (%s)", Bits(red.Clauses[1]), red.Tags[1])
	}
}

func TestPetrickPaperDerivation(t *testing.T) {
	// Full §4.1 pipeline: essential + Petrick over the reduced expression,
	// recombined. The absorbed SOP of the paper's
	// ξ = C1C2 + C1C2C5 + C1C2C4 + C2C4C5 + C2C5 is C1·C2 + C2·C5.
	e, _, _ := FromMatrix(paperMatrix(), paperFaultIDs)
	ess := e.Essential()
	sop, err := e.ReduceBy(ess).Petrick(0)
	if err != nil {
		t.Fatal(err)
	}
	full := sop.WithRequired(ess)
	if len(full.Terms) != 2 {
		t.Fatalf("terms = %s", full.Format(cname))
	}
	if full.Terms[0] != MaskOf(1, 2) || full.Terms[1] != MaskOf(2, 5) {
		t.Fatalf("SOP = %s, want C1·C2 + C2·C5", full.Format(cname))
	}
	// §4.2: both are minimal with 2 configurations.
	min := full.Minimal()
	if len(min) != 2 || bits.OnesCount64(min[0]) != 2 {
		t.Fatalf("minimal = %v", min)
	}
}

func TestPetrickDirectEqualsStaged(t *testing.T) {
	// Expanding ξ directly must give the same absorbed SOP as the
	// essential-first staged derivation.
	e, _, _ := FromMatrix(paperMatrix(), paperFaultIDs)
	direct, err := e.Petrick(0)
	if err != nil {
		t.Fatal(err)
	}
	ess := e.Essential()
	staged, _ := e.ReduceBy(ess).Petrick(0)
	stagedFull := staged.WithRequired(ess)
	if len(direct.Terms) != len(stagedFull.Terms) {
		t.Fatalf("direct %s vs staged %s", direct.Format(cname), stagedFull.Format(cname))
	}
	for i := range direct.Terms {
		if direct.Terms[i] != stagedFull.Terms[i] {
			t.Fatalf("direct %s vs staged %s", direct.Format(cname), stagedFull.Format(cname))
		}
	}
}

func TestPetrickEmptyExpr(t *testing.T) {
	e := &Expr{N: 3}
	sop, err := e.Petrick(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sop.Terms) != 1 || sop.Terms[0] != 0 {
		t.Fatalf("empty expansion = %v", sop.Terms)
	}
}

func TestPetrickBudget(t *testing.T) {
	// 2^k blowup expression: k disjoint clauses of 2 fresh literals each
	// cannot absorb, so the budget must trip.
	e := &Expr{N: 40}
	for i := 0; i < 20; i++ {
		e.Clauses = append(e.Clauses, MaskOf(2*i, 2*i+1))
	}
	if _, err := e.Petrick(100); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestAbsorb(t *testing.T) {
	terms := absorb([]uint64{MaskOf(1, 2, 3), MaskOf(1, 2), MaskOf(1, 2), MaskOf(4)})
	if len(terms) != 2 {
		t.Fatalf("absorbed = %v", terms)
	}
	if terms[0] != MaskOf(4) || terms[1] != MaskOf(1, 2) {
		t.Fatalf("absorbed = %v", terms)
	}
}

func TestMapLiteralsPaperOpamps(t *testing.T) {
	// Table 3 / §4.3: map configurations to follower-opamp products and
	// check ξ* minimal = OP1·OP2.
	opampsOf := func(cfg int) uint64 {
		// cfg index bit i ⇒ opamp i in follower mode.
		return uint64(cfg) & 0b111
	}
	sop := &SOP{N: 7, Terms: []uint64{MaskOf(1, 2), MaskOf(2, 5)}}
	mapped := sop.MapLiterals(3, func(i int) uint64 { return opampsOf(i) })
	// C1·C2 → OP1,OP2 (0b011); C2·C5 → OP2 | OP1,OP3 = all (0b111) absorbed.
	if len(mapped.Terms) != 1 || mapped.Terms[0] != 0b011 {
		t.Fatalf("ξ* = %v, want [OP1·OP2]", mapped.Terms)
	}
	min := mapped.Minimal()
	if len(min) != 1 || min[0] != 0b011 {
		t.Fatalf("minimal ξ* = %v", min)
	}
}

func TestTermsContaining(t *testing.T) {
	s := &SOP{N: 6, Terms: []uint64{MaskOf(1, 2), MaskOf(2, 5), MaskOf(1, 4)}}
	got := s.TermsContaining(MaskOf(2))
	if len(got) != 2 {
		t.Fatalf("TermsContaining = %v", got)
	}
}

func TestFormat(t *testing.T) {
	s := &SOP{N: 6, Terms: []uint64{MaskOf(1, 2), MaskOf(2, 5)}}
	if got := s.Format(cname); got != "C1·C2 + C2·C5" {
		t.Fatalf("Format = %q", got)
	}
	empty := &SOP{N: 3}
	if empty.Format(cname) != "0" {
		t.Fatal("empty SOP format")
	}
	one := &SOP{N: 3, Terms: []uint64{0}}
	if one.Format(cname) != "1" {
		t.Fatal("unit SOP format")
	}
	e := &Expr{N: 3, Clauses: []uint64{MaskOf(0, 2), MaskOf(1)}}
	if got := e.Format(cname); got != "(C0+C2)·(C1)" {
		t.Fatalf("Expr format = %q", got)
	}
	if (&Expr{N: 3}).Format(cname) != "1" {
		t.Fatal("empty Expr format")
	}
}

func TestGreedyCoverPaper(t *testing.T) {
	rows, err := GreedyCover(paperMatrix())
	if err != nil {
		t.Fatal(err)
	}
	if !CoverIsComplete(paperMatrix(), rows) {
		t.Fatalf("greedy cover %v incomplete", rows)
	}
	if len(rows) != 2 {
		t.Fatalf("greedy cover = %v, want size 2", rows)
	}
}

func TestMinCoverPaper(t *testing.T) {
	rows, err := MinCover(paperMatrix(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("min cover = %v, want size 2", rows)
	}
	if !CoverIsComplete(paperMatrix(), rows) {
		t.Fatal("min cover incomplete")
	}
	// Lexicographic tie-break: {C1,C2} < {C2,C5}.
	if rows[0] != 1 || rows[1] != 2 {
		t.Fatalf("min cover = %v, want [1 2]", rows)
	}
}

func TestMinCoverWeighted(t *testing.T) {
	// Penalize C1 heavily: the optimizer must flip to {C2, C5}.
	cost := func(row int) float64 {
		if row == 1 {
			return 10
		}
		return 1
	}
	rows, err := MinCover(paperMatrix(), cost)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0] != 2 || rows[1] != 5 {
		t.Fatalf("weighted cover = %v, want [2 5]", rows)
	}
}

func TestMinCoverNegativeCost(t *testing.T) {
	if _, err := MinCover(paperMatrix(), func(int) float64 { return -1 }); err == nil {
		t.Fatal("negative cost accepted")
	}
}

func TestCoverEdgeCases(t *testing.T) {
	if _, err := GreedyCover(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("greedy empty: %v", err)
	}
	if _, err := MinCover(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("min empty: %v", err)
	}
	// All-false matrix: nothing coverable, empty cover is complete.
	det := [][]bool{{false, false}, {false, false}}
	rows, err := MinCover(det, nil)
	if err != nil || len(rows) != 0 {
		t.Errorf("all-false: %v %v", rows, err)
	}
	if !CoverIsComplete(det, nil) {
		t.Error("empty cover of uncoverable matrix should be complete")
	}
	g, err := GreedyCover(det)
	if err != nil || len(g) != 0 {
		t.Errorf("greedy all-false: %v %v", g, err)
	}
}

func TestCoverIsCompleteNegative(t *testing.T) {
	det := paperMatrix()
	if CoverIsComplete(det, []int{0}) {
		t.Fatal("C0 alone cannot cover the paper matrix")
	}
	if CoverIsComplete(nil, nil) {
		t.Fatal("empty matrix cannot be complete")
	}
}

// randomMatrix builds a random detectability matrix where every column has
// at least one true cell.
func randomMatrix(rng *rand.Rand, rows, cols int) [][]bool {
	det := make([][]bool, rows)
	for i := range det {
		det[i] = make([]bool, cols)
	}
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			det[i][j] = rng.Float64() < 0.35
		}
		det[rng.Intn(rows)][j] = true
	}
	return det
}

// Property: MinCover always produces a complete cover no larger than
// greedy's, and every Petrick minimal term is also a complete cover of the
// same size as MinCover's.
func TestCoverAgreementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 3 + rng.Intn(5)
		cols := 2 + rng.Intn(7)
		det := randomMatrix(rng, rows, cols)

		exact, err := MinCover(det, nil)
		if err != nil || !CoverIsComplete(det, exact) {
			return false
		}
		greedy, err := GreedyCover(det)
		if err != nil || !CoverIsComplete(det, greedy) {
			return false
		}
		if len(exact) > len(greedy) {
			return false
		}
		e, _, err := FromMatrix(det, nil)
		if err != nil {
			return false
		}
		sop, err := e.Petrick(0)
		if err != nil {
			return false
		}
		for _, term := range sop.Minimal() {
			if bits.OnesCount64(term) != len(exact) {
				return false
			}
			if !CoverIsComplete(det, Bits(term)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: absorbed SOPs contain no term that is a superset of another.
func TestAbsorbProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		terms := make([]uint64, len(raw))
		for i, r := range raw {
			terms[i] = uint64(r)
		}
		out := absorb(terms)
		for a := range out {
			for b := range out {
				if a != b && out[a]&out[b] == out[a] {
					return false // out[a] ⊆ out[b]: b should have been absorbed
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
