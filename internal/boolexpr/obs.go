package boolexpr

import "analogdft/internal/obs"

// Covering-algebra instrumentation: how hard the Petrick expansion and the
// cover searches work. Term counts before/after each absorption pass make
// blow-ups visible; the peak gauge records the worst intermediate
// expansion seen by any Petrick run since the last registry reset.
var (
	bAbsorbIn = obs.Reg().Counter("boolexpr_absorb_terms_in_total",
		"terms entering absorption passes")
	bAbsorbOut = obs.Reg().Counter("boolexpr_absorb_terms_out_total",
		"terms surviving absorption passes")
	bPetrickClauses = obs.Reg().Counter("boolexpr_petrick_clauses_total",
		"POS clauses expanded by Petrick's method")
	bPetrickPeak = obs.Reg().Gauge("boolexpr_petrick_peak_terms",
		"largest intermediate term count seen in a Petrick expansion")
	bCoverNodes = obs.Reg().Counter("boolexpr_cover_nodes_total",
		"branch-and-bound nodes visited by MinCover")
	bGreedyRounds = obs.Reg().Counter("boolexpr_greedy_rounds_total",
		"selection rounds performed by GreedyCover")
)
