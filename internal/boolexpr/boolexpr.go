// Package boolexpr implements the covering algebra of §4.1 of the paper:
// the boolean expression ξ = Π_faults (Σ_configs d[i][j]·C_i) built from a
// fault detectability matrix, essential-configuration extraction, the
// reduced expression ξ_compl, and the product-of-sums → sum-of-products
// expansion (Petrick's method with absorption) whose product terms are the
// configuration sets guaranteeing maximum fault coverage.
//
// Literals are configuration indices packed into uint64 bitmasks, which
// caps expressions at 64 literals — far beyond the 2^n configurations of
// any realistic opamp chain (the paper's circuits have 3–5 opamps).
//
// The package also provides a greedy set-cover heuristic and an exact
// branch-and-bound minimum-cost cover used as the scalable baseline and
// ablation comparison.
package boolexpr

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// MaxLiterals is the largest number of distinct literals an expression may
// carry (bitmask width).
const MaxLiterals = 64

// ErrTooLarge is returned when an expression exceeds MaxLiterals or a
// Petrick expansion exceeds its term budget.
var ErrTooLarge = errors.New("boolexpr: expression too large")

// ErrEmpty is returned when an operation needs a non-empty expression.
var ErrEmpty = errors.New("boolexpr: empty expression")

// MaskOf packs literal indices into a bitmask.
func MaskOf(idxs ...int) uint64 {
	var m uint64
	for _, i := range idxs {
		if i < 0 || i >= MaxLiterals {
			panic(fmt.Sprintf("boolexpr: literal %d out of range", i))
		}
		m |= 1 << uint(i)
	}
	return m
}

// Bits unpacks a bitmask into sorted literal indices.
func Bits(mask uint64) []int {
	var out []int
	for mask != 0 {
		i := bits.TrailingZeros64(mask)
		out = append(out, i)
		mask &^= 1 << uint(i)
	}
	return out
}

// Expr is a product of sums (POS): every clause (bitmask of literals) must
// be satisfied by picking at least one of its literals.
type Expr struct {
	// N is the number of literal positions (configuration count).
	N int
	// Clauses holds one bitmask per clause.
	Clauses []uint64
	// Tags optionally labels each clause (fault IDs); may be nil.
	Tags []string
}

// FromMatrix builds ξ from a detectability matrix det[row][col] (row =
// configuration literal, col = fault). Columns with no true cell are
// undetectable faults: they produce no clause (the maximum fault coverage
// simply does not include them) and their indices are reported separately.
// Column tags label the clauses when non-nil.
func FromMatrix(det [][]bool, colTags []string) (*Expr, []int, error) {
	rows := len(det)
	if rows == 0 {
		return nil, nil, ErrEmpty
	}
	if rows > MaxLiterals {
		return nil, nil, fmt.Errorf("%w: %d rows", ErrTooLarge, rows)
	}
	cols := len(det[0])
	for i, r := range det {
		if len(r) != cols {
			return nil, nil, fmt.Errorf("boolexpr: ragged matrix row %d", i)
		}
	}
	e := &Expr{N: rows}
	var undetectable []int
	for j := 0; j < cols; j++ {
		var clause uint64
		for i := 0; i < rows; i++ {
			if det[i][j] {
				clause |= 1 << uint(i)
			}
		}
		if clause == 0 {
			undetectable = append(undetectable, j)
			continue
		}
		e.Clauses = append(e.Clauses, clause)
		if colTags != nil {
			tag := ""
			if j < len(colTags) {
				tag = colTags[j]
			}
			e.Tags = append(e.Tags, tag)
		}
	}
	return e, undetectable, nil
}

// Essential returns the mask of essential literals: literals that are the
// only satisfier of some clause (single-bit clauses). In the paper these
// are the essential configurations that must appear in any solution.
func (e *Expr) Essential() uint64 {
	var m uint64
	for _, c := range e.Clauses {
		if bits.OnesCount64(c) == 1 {
			m |= c
		}
	}
	return m
}

// ReduceBy removes every clause already satisfied by the chosen literal
// mask — the construction of the reduced fault detectability matrix /
// ξ_compl of Figure 6. Tags follow their clauses.
func (e *Expr) ReduceBy(chosen uint64) *Expr {
	out := &Expr{N: e.N}
	for i, c := range e.Clauses {
		if c&chosen != 0 {
			continue
		}
		out.Clauses = append(out.Clauses, c)
		if e.Tags != nil {
			out.Tags = append(out.Tags, e.Tags[i])
		}
	}
	return out
}

// SOP is a sum of products: any term (bitmask of literals, all required)
// satisfies the expression.
type SOP struct {
	N     int
	Terms []uint64
}

// absorb removes duplicate terms and any term that is a superset of
// another (X + X·Y = X), returning terms sorted by popcount then value for
// determinism.
func absorb(terms []uint64) []uint64 {
	bAbsorbIn.Add(int64(len(terms)))
	sort.Slice(terms, func(a, b int) bool {
		pa, pb := bits.OnesCount64(terms[a]), bits.OnesCount64(terms[b])
		if pa != pb {
			return pa < pb
		}
		return terms[a] < terms[b]
	})
	var out []uint64
	for _, t := range terms {
		dominated := false
		for _, kept := range out {
			if kept&t == kept { // kept ⊆ t ⇒ t absorbed
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, t)
		}
	}
	bAbsorbOut.Add(int64(len(out)))
	return out
}

// Petrick expands the POS into an absorbed SOP (Petrick's method). The
// expansion aborts with ErrTooLarge when the intermediate term count
// exceeds maxTerms (pass 0 for the default of 200 000). An empty
// expression expands to the single empty term (nothing to cover). New
// code should prefer PetrickContext, which supports cancellation.
func (e *Expr) Petrick(maxTerms int) (*SOP, error) {
	return e.PetrickContext(context.Background(), maxTerms)
}

// petrickCancelStride is how many product terms the expansion multiplies
// out between cancellation checks: small enough that a cancelled
// optimization stops promptly, large enough that the atomic context poll
// stays invisible next to the term arithmetic.
const petrickCancelStride = 4096

// PetrickContext is Petrick with cancellation: ctx is polled between
// clauses and between every petrickCancelStride product terms of the
// distribution step, so even a combinatorially exploding expansion stops
// promptly (returning ctx's error) when the caller cancels.
func (e *Expr) PetrickContext(ctx context.Context, maxTerms int) (*SOP, error) {
	if maxTerms <= 0 {
		maxTerms = 200000
	}
	terms := []uint64{0}
	for _, clause := range e.Clauses {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bPetrickClauses.Inc()
		lits := Bits(clause)
		next := make([]uint64, 0, len(terms)*len(lits))
		for ti, t := range terms {
			if ti%petrickCancelStride == petrickCancelStride-1 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if t&clause != 0 {
				// The term already satisfies this clause; keep as-is.
				next = append(next, t)
				continue
			}
			for _, l := range lits {
				next = append(next, t|1<<uint(l))
			}
		}
		bPetrickPeak.SetMax(float64(len(next)))
		if len(next) > maxTerms {
			return nil, fmt.Errorf("%w: %d intermediate terms", ErrTooLarge, len(next))
		}
		terms = absorb(next)
	}
	return &SOP{N: e.N, Terms: terms}, nil
}

// WithRequired prepends the required literal mask to every term (the
// ξ = ξ_ess·ξ_compl product) and re-absorbs.
func (s *SOP) WithRequired(required uint64) *SOP {
	terms := make([]uint64, len(s.Terms))
	for i, t := range s.Terms {
		terms[i] = t | required
	}
	return &SOP{N: s.N, Terms: absorb(terms)}
}

// Minimal returns the terms with the fewest literals (ties all returned,
// sorted). This is the §4.2 "minimum number of configurations" selection.
func (s *SOP) Minimal() []uint64 {
	if len(s.Terms) == 0 {
		return nil
	}
	min := math.MaxInt
	for _, t := range s.Terms {
		if p := bits.OnesCount64(t); p < min {
			min = p
		}
	}
	var out []uint64
	for _, t := range s.Terms {
		if bits.OnesCount64(t) == min {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// MapLiterals rewrites each term by replacing every literal i with the
// literal mask f(i) in a new literal space of width newN, re-absorbing the
// result. This is the §4.3 configuration→opamp mapping: f(config) is the
// product of the opamps in follower mode (Table 3), and the mapped SOP is
// ξ* whose minimal terms give the partial-DFT opamp set.
func (s *SOP) MapLiterals(newN int, f func(i int) uint64) *SOP {
	terms := make([]uint64, len(s.Terms))
	for k, t := range s.Terms {
		var m uint64
		for _, i := range Bits(t) {
			m |= f(i)
		}
		terms[k] = m
	}
	return &SOP{N: newN, Terms: absorb(terms)}
}

// TermsContaining returns the terms whose literal set includes all of
// mask's literals.
func (s *SOP) TermsContaining(mask uint64) []uint64 {
	var out []uint64
	for _, t := range s.Terms {
		if t&mask == mask {
			out = append(out, t)
		}
	}
	return out
}

// Format renders the SOP with a literal naming function, e.g.
// "C1·C2 + C2·C5".
func (s *SOP) Format(name func(i int) string) string {
	if len(s.Terms) == 0 {
		return "0"
	}
	out := ""
	for k, t := range s.Terms {
		if k > 0 {
			out += " + "
		}
		if t == 0 {
			out += "1"
			continue
		}
		for bi, i := range Bits(t) {
			if bi > 0 {
				out += "·"
			}
			out += name(i)
		}
	}
	return out
}

// FormatExpr renders the POS with a literal naming function, e.g.
// "(C0+C2)·(C1)".
func (e *Expr) Format(name func(i int) string) string {
	if len(e.Clauses) == 0 {
		return "1"
	}
	out := ""
	for k, c := range e.Clauses {
		if k > 0 {
			out += "·"
		}
		out += "("
		for bi, i := range Bits(c) {
			if bi > 0 {
				out += "+"
			}
			out += name(i)
		}
		out += ")"
	}
	return out
}
