package circuit

// Builder convenience methods. These are Must-style: they panic on
// duplicate names, which only happens on programmer error in the static
// circuit library. Programmatic construction from untrusted input should
// go through Add, which returns errors.

// R adds a resistor and returns it.
func (c *Circuit) R(name, a, b string, ohms float64) *Resistor {
	r := &Resistor{Label: name, A: a, B: b, Ohms: ohms}
	c.MustAdd(r)
	return r
}

// Cap adds a capacitor and returns it.
func (c *Circuit) Cap(name, a, b string, farads float64) *Capacitor {
	cp := &Capacitor{Label: name, A: a, B: b, Farads: farads}
	c.MustAdd(cp)
	return cp
}

// L adds an inductor and returns it.
func (c *Circuit) L(name, a, b string, henries float64) *Inductor {
	l := &Inductor{Label: name, A: a, B: b, Henries: henries}
	c.MustAdd(l)
	return l
}

// V adds an independent voltage source and returns it.
func (c *Circuit) V(name, plus, minus string, amplitude float64) *VSource {
	v := &VSource{Label: name, Plus: plus, Minus: minus, Amplitude: amplitude}
	c.MustAdd(v)
	return v
}

// I adds an independent current source and returns it.
func (c *Circuit) I(name, plus, minus string, amplitude float64) *ISource {
	i := &ISource{Label: name, Plus: plus, Minus: minus, Amplitude: amplitude}
	c.MustAdd(i)
	return i
}

// E adds a voltage-controlled voltage source and returns it.
func (c *Circuit) E(name, outP, outM, ctrlP, ctrlM string, gain float64) *VCVS {
	e := &VCVS{Label: name, OutP: outP, OutM: outM, CtrlP: ctrlP, CtrlM: ctrlM, Gain: gain}
	c.MustAdd(e)
	return e
}

// G adds a voltage-controlled current source and returns it.
func (c *Circuit) G(name, outP, outM, ctrlP, ctrlM string, gm float64) *VCCS {
	g := &VCCS{Label: name, OutP: outP, OutM: outM, CtrlP: ctrlP, CtrlM: ctrlM, Gm: gm}
	c.MustAdd(g)
	return g
}

// OA adds an ideal opamp (non-inverting input inP, inverting input inN,
// output out) and returns it.
func (c *Circuit) OA(name, inP, inN, out string) *Opamp {
	op := &Opamp{Label: name, InP: inP, InN: inN, Out: out, Model: ModelIdeal}
	c.MustAdd(op)
	return op
}

// OASinglePole adds a finite single-pole opamp and returns it.
func (c *Circuit) OASinglePole(name, inP, inN, out string, a0, poleHz float64) *Opamp {
	op := &Opamp{Label: name, InP: inP, InN: inN, Out: out,
		Model: ModelSinglePole, A0: a0, PoleHz: poleHz}
	c.MustAdd(op)
	return op
}

// H adds a current-controlled voltage source (transresistance) and
// returns it. ctrlV names the independent voltage source whose branch
// current controls the output.
func (c *Circuit) H(name, outP, outM, ctrlV string, rt float64) *CCVS {
	h := &CCVS{Label: name, OutP: outP, OutM: outM, CtrlVSource: ctrlV, Rt: rt}
	c.MustAdd(h)
	return h
}

// F adds a current-controlled current source and returns it.
func (c *Circuit) F(name, outP, outM, ctrlV string, gain float64) *CCCS {
	f := &CCCS{Label: name, OutP: outP, OutM: outM, CtrlVSource: ctrlV, Gain: gain}
	c.MustAdd(f)
	return f
}
