package circuit

import (
	"errors"
	"testing"
)

// mustPanic asserts fn panics and returns the recovered value.
func mustPanic(t *testing.T, fn func()) (recovered any) {
	t.Helper()
	defer func() {
		recovered = recover()
		if recovered == nil {
			t.Fatal("expected a panic")
		}
	}()
	fn()
	return nil
}

func TestMustAddPanicsOnDuplicate(t *testing.T) {
	c := New("t")
	c.MustAdd(&Resistor{Label: "R1", A: "a", B: "b", Ohms: 1})
	got := mustPanic(t, func() {
		c.MustAdd(&Resistor{Label: "R1", A: "a", B: "c", Ohms: 2})
	})
	err, ok := got.(error)
	if !ok || !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("panic value = %v, want ErrDuplicateName", got)
	}
}

func TestMustAddPanicsOnEmptyName(t *testing.T) {
	c := New("t")
	got := mustPanic(t, func() {
		c.MustAdd(&Resistor{A: "a", B: "b", Ohms: 1})
	})
	if err, ok := got.(error); !ok || !errors.Is(err, ErrInvalid) {
		t.Fatalf("panic value = %v, want ErrInvalid", got)
	}
}

func TestMustAddAcceptsValidComponent(t *testing.T) {
	c := New("t")
	c.MustAdd(&Resistor{Label: "R1", A: "a", B: "0", Ohms: 1}) // must not panic
	if _, ok := c.Component("R1"); !ok {
		t.Fatal("component not registered")
	}
}

func TestGroundSpellingsMixedCase(t *testing.T) {
	for _, n := range []string{"Gnd", "gND", "GROUND", "GrOuNd"} {
		if !IsGroundName(n) {
			t.Errorf("IsGroundName(%q) = false, want true", n)
		}
	}
	for _, n := range []string{"", "o", "00", "agnd", "ground2", "vss"} {
		if IsGroundName(n) {
			t.Errorf("IsGroundName(%q) = true, want false", n)
		}
	}
}

func TestCanonicalNodeIdempotent(t *testing.T) {
	for _, n := range []string{"Ground", "0", "x", "Va"} {
		once := CanonicalNode(n)
		if twice := CanonicalNode(once); twice != once {
			t.Errorf("CanonicalNode not idempotent on %q: %q then %q", n, once, twice)
		}
	}
}

func TestCanonicalizeControlledSourceTerminals(t *testing.T) {
	c := New("t")
	e := &VCVS{Label: "E1", OutP: "out", OutM: "GND", CtrlP: "a", CtrlM: "Ground", Gain: 2}
	c.MustAdd(e)
	if e.OutM != GroundName || e.CtrlM != GroundName {
		t.Fatalf("VCVS terminals not canonicalized: %+v", e)
	}
	op := &Opamp{Label: "OA1", InP: "gnd", InN: "a", Out: "b", TestIn: "GROUND"}
	c.MustAdd(op)
	if op.InP != GroundName || op.TestIn != GroundName {
		t.Fatalf("opamp terminals not canonicalized: %+v", op)
	}
}
