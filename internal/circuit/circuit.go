// Package circuit defines the netlist data model shared by the whole
// library: components (passives, sources, controlled sources, opamps),
// the Circuit container with named nodes, validation, deep cloning and
// parameter mutation (the hook used by fault injection).
//
// Nodes are referred to by name. The names "0", "gnd" and "GND" all denote
// the ground reference node.
package circuit

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// GroundName is the canonical name of the ground node.
const GroundName = "0"

// IsGroundName reports whether a node name denotes the ground reference.
func IsGroundName(n string) bool {
	switch strings.ToLower(n) {
	case "0", "gnd", "ground":
		return true
	}
	return false
}

// CanonicalNode maps any spelling of ground to GroundName and returns other
// names unchanged.
func CanonicalNode(n string) string {
	if IsGroundName(n) {
		return GroundName
	}
	return n
}

// Errors reported by circuit construction and validation.
var (
	ErrDuplicateName = errors.New("circuit: duplicate component name")
	ErrUnknownName   = errors.New("circuit: unknown component name")
	ErrInvalid       = errors.New("circuit: invalid circuit")
)

// Kind identifies a component type.
type Kind int

// Component kinds.
const (
	KindResistor Kind = iota
	KindCapacitor
	KindInductor
	KindVSource
	KindISource
	KindVCVS
	KindVCCS
	KindCCVS
	KindCCCS
	KindOpamp
)

// String returns the short SPICE-flavoured kind tag.
func (k Kind) String() string {
	switch k {
	case KindResistor:
		return "R"
	case KindCapacitor:
		return "C"
	case KindInductor:
		return "L"
	case KindVSource:
		return "V"
	case KindISource:
		return "I"
	case KindVCVS:
		return "E"
	case KindVCCS:
		return "G"
	case KindCCVS:
		return "H"
	case KindCCCS:
		return "F"
	case KindOpamp:
		return "OA"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Component is the common interface of every netlist element.
type Component interface {
	// Name returns the unique component identifier (e.g. "R1", "OP2").
	Name() string
	// Kind returns the component type tag.
	Kind() Kind
	// Terminals returns the node names the component attaches to, in a
	// fixed, kind-specific order.
	Terminals() []string
	// Clone returns a deep copy of the component.
	Clone() Component
}

// Valued is implemented by components with a single primary parameter
// (resistance, capacitance, inductance, gain, source amplitude). Fault
// injection mutates circuits exclusively through this interface.
type Valued interface {
	Component
	// Value returns the primary parameter.
	Value() float64
	// SetValue overwrites the primary parameter.
	SetValue(v float64)
	// Unit returns the human-readable unit of the primary parameter.
	Unit() string
}

// Resistor is an ideal linear resistor between nodes A and B.
type Resistor struct {
	Label string
	A, B  string
	Ohms  float64
}

// Name implements Component.
func (r *Resistor) Name() string { return r.Label }

// Kind implements Component.
func (r *Resistor) Kind() Kind { return KindResistor }

// Terminals implements Component.
func (r *Resistor) Terminals() []string { return []string{r.A, r.B} }

// Clone implements Component.
func (r *Resistor) Clone() Component { c := *r; return &c }

// Value implements Valued.
func (r *Resistor) Value() float64 { return r.Ohms }

// SetValue implements Valued.
func (r *Resistor) SetValue(v float64) { r.Ohms = v }

// Unit implements Valued.
func (r *Resistor) Unit() string { return "Ω" }

// Capacitor is an ideal linear capacitor between nodes A and B.
type Capacitor struct {
	Label  string
	A, B   string
	Farads float64
}

// Name implements Component.
func (c *Capacitor) Name() string { return c.Label }

// Kind implements Component.
func (c *Capacitor) Kind() Kind { return KindCapacitor }

// Terminals implements Component.
func (c *Capacitor) Terminals() []string { return []string{c.A, c.B} }

// Clone implements Component.
func (c *Capacitor) Clone() Component { cp := *c; return &cp }

// Value implements Valued.
func (c *Capacitor) Value() float64 { return c.Farads }

// SetValue implements Valued.
func (c *Capacitor) SetValue(v float64) { c.Farads = v }

// Unit implements Valued.
func (c *Capacitor) Unit() string { return "F" }

// Inductor is an ideal linear inductor between nodes A and B.
type Inductor struct {
	Label   string
	A, B    string
	Henries float64
}

// Name implements Component.
func (l *Inductor) Name() string { return l.Label }

// Kind implements Component.
func (l *Inductor) Kind() Kind { return KindInductor }

// Terminals implements Component.
func (l *Inductor) Terminals() []string { return []string{l.A, l.B} }

// Clone implements Component.
func (l *Inductor) Clone() Component { c := *l; return &c }

// Value implements Valued.
func (l *Inductor) Value() float64 { return l.Henries }

// SetValue implements Valued.
func (l *Inductor) SetValue(v float64) { l.Henries = v }

// Unit implements Valued.
func (l *Inductor) Unit() string { return "H" }

// VSource is an independent voltage source (AC amplitude, phase 0) from
// Plus to Minus.
type VSource struct {
	Label       string
	Plus, Minus string
	Amplitude   float64
}

// Name implements Component.
func (v *VSource) Name() string { return v.Label }

// Kind implements Component.
func (v *VSource) Kind() Kind { return KindVSource }

// Terminals implements Component.
func (v *VSource) Terminals() []string { return []string{v.Plus, v.Minus} }

// Clone implements Component.
func (v *VSource) Clone() Component { c := *v; return &c }

// Value implements Valued.
func (v *VSource) Value() float64 { return v.Amplitude }

// SetValue implements Valued.
func (v *VSource) SetValue(x float64) { v.Amplitude = x }

// Unit implements Valued.
func (v *VSource) Unit() string { return "V" }

// ISource is an independent current source (AC amplitude) flowing from
// Plus terminal through the source to Minus (conventional direction: the
// source pushes current into the Minus node).
type ISource struct {
	Label       string
	Plus, Minus string
	Amplitude   float64
}

// Name implements Component.
func (i *ISource) Name() string { return i.Label }

// Kind implements Component.
func (i *ISource) Kind() Kind { return KindISource }

// Terminals implements Component.
func (i *ISource) Terminals() []string { return []string{i.Plus, i.Minus} }

// Clone implements Component.
func (i *ISource) Clone() Component { c := *i; return &c }

// Value implements Valued.
func (i *ISource) Value() float64 { return i.Amplitude }

// SetValue implements Valued.
func (i *ISource) SetValue(x float64) { i.Amplitude = x }

// Unit implements Valued.
func (i *ISource) Unit() string { return "A" }

// VCVS is a voltage-controlled voltage source:
// V(OutP) − V(OutM) = Gain · (V(CtrlP) − V(CtrlM)).
type VCVS struct {
	Label        string
	OutP, OutM   string
	CtrlP, CtrlM string
	Gain         float64
}

// Name implements Component.
func (e *VCVS) Name() string { return e.Label }

// Kind implements Component.
func (e *VCVS) Kind() Kind { return KindVCVS }

// Terminals implements Component.
func (e *VCVS) Terminals() []string { return []string{e.OutP, e.OutM, e.CtrlP, e.CtrlM} }

// Clone implements Component.
func (e *VCVS) Clone() Component { c := *e; return &c }

// Value implements Valued.
func (e *VCVS) Value() float64 { return e.Gain }

// SetValue implements Valued.
func (e *VCVS) SetValue(v float64) { e.Gain = v }

// Unit implements Valued.
func (e *VCVS) Unit() string { return "V/V" }

// VCCS is a voltage-controlled current source (transconductance):
// I(OutP→OutM) = Gm · (V(CtrlP) − V(CtrlM)).
type VCCS struct {
	Label        string
	OutP, OutM   string
	CtrlP, CtrlM string
	Gm           float64
}

// Name implements Component.
func (g *VCCS) Name() string { return g.Label }

// Kind implements Component.
func (g *VCCS) Kind() Kind { return KindVCCS }

// Terminals implements Component.
func (g *VCCS) Terminals() []string { return []string{g.OutP, g.OutM, g.CtrlP, g.CtrlM} }

// Clone implements Component.
func (g *VCCS) Clone() Component { c := *g; return &c }

// Value implements Valued.
func (g *VCCS) Value() float64 { return g.Gm }

// SetValue implements Valued.
func (g *VCCS) SetValue(v float64) { g.Gm = v }

// Unit implements Valued.
func (g *VCCS) Unit() string { return "S" }

// OpampMode selects how an opamp is emulated during analysis. Normal mode
// is the classical opamp; Follower mode is the configurable-opamp DFT mode
// in which the output buffers the dedicated test input [Renovell 96].
type OpampMode int

// Opamp emulation modes.
const (
	ModeNormal OpampMode = iota
	ModeFollower
)

// String implements fmt.Stringer.
func (m OpampMode) String() string {
	switch m {
	case ModeNormal:
		return "normal"
	case ModeFollower:
		return "follower"
	default:
		return fmt.Sprintf("OpampMode(%d)", int(m))
	}
}

// OpampModel selects the small-signal opamp model used by the MNA engine.
type OpampModel int

// Opamp models.
const (
	// ModelIdeal is the nullor model: infinite gain, V(+) = V(−).
	ModelIdeal OpampModel = iota
	// ModelSinglePole is a finite-gain single-pole model:
	// Vout = A(jω)·(V(+) − V(−)) with A(jω) = A0 / (1 + jω/ωp).
	ModelSinglePole
)

// String implements fmt.Stringer.
func (m OpampModel) String() string {
	switch m {
	case ModelIdeal:
		return "ideal"
	case ModelSinglePole:
		return "single-pole"
	default:
		return fmt.Sprintf("OpampModel(%d)", int(m))
	}
}

// Opamp is an operational amplifier. When Configurable is true the opamp
// has been replaced by the configurable opamp of the multi-configuration
// DFT technique: it gains a TestIn terminal and can be switched to
// ModeFollower, in which the output reproduces the TestIn voltage and the
// differential inputs are ignored (they still load the network through any
// external feedback elements, which remain connected).
type Opamp struct {
	Label    string
	InP, InN string // non-inverting / inverting inputs
	Out      string

	Model  OpampModel
	A0     float64 // DC open-loop gain   (ModelSinglePole)
	PoleHz float64 // open-loop pole      (ModelSinglePole)

	Configurable bool
	TestIn       string    // test input node (only when Configurable)
	Mode         OpampMode // current emulation mode
}

// Name implements Component.
func (o *Opamp) Name() string { return o.Label }

// Kind implements Component.
func (o *Opamp) Kind() Kind { return KindOpamp }

// Terminals implements Component.
func (o *Opamp) Terminals() []string {
	t := []string{o.InP, o.InN, o.Out}
	if o.Configurable && o.TestIn != "" {
		t = append(t, o.TestIn)
	}
	return t
}

// Clone implements Component.
func (o *Opamp) Clone() Component { c := *o; return &c }

// Circuit is a named collection of components with designated primary
// input/output nodes. The zero value is not usable; call New.
type Circuit struct {
	Name string

	// Input is the primary input node (driven by the stimulus source
	// during analysis). Output is the primary observed node.
	Input, Output string

	components []Component
	byName     map[string]int
}

// New returns an empty circuit.
func New(name string) *Circuit {
	return &Circuit{Name: name, byName: make(map[string]int)}
}

// Add appends a component, canonicalizing its ground spellings. It returns
// an error if the name is empty or already used.
func (c *Circuit) Add(comp Component) error {
	if comp.Name() == "" {
		return fmt.Errorf("%w: empty component name", ErrInvalid)
	}
	if _, dup := c.byName[comp.Name()]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateName, comp.Name())
	}
	canonicalize(comp)
	c.byName[comp.Name()] = len(c.components)
	c.components = append(c.components, comp)
	return nil
}

// MustAdd is Add that panics on error; for use in circuit builders where
// names are compile-time constants.
func (c *Circuit) MustAdd(comp Component) {
	if err := c.Add(comp); err != nil {
		panic(err)
	}
}

func canonicalize(comp Component) {
	switch x := comp.(type) {
	case *Resistor:
		x.A, x.B = CanonicalNode(x.A), CanonicalNode(x.B)
	case *Capacitor:
		x.A, x.B = CanonicalNode(x.A), CanonicalNode(x.B)
	case *Inductor:
		x.A, x.B = CanonicalNode(x.A), CanonicalNode(x.B)
	case *VSource:
		x.Plus, x.Minus = CanonicalNode(x.Plus), CanonicalNode(x.Minus)
	case *ISource:
		x.Plus, x.Minus = CanonicalNode(x.Plus), CanonicalNode(x.Minus)
	case *VCVS:
		x.OutP, x.OutM = CanonicalNode(x.OutP), CanonicalNode(x.OutM)
		x.CtrlP, x.CtrlM = CanonicalNode(x.CtrlP), CanonicalNode(x.CtrlM)
	case *VCCS:
		x.OutP, x.OutM = CanonicalNode(x.OutP), CanonicalNode(x.OutM)
		x.CtrlP, x.CtrlM = CanonicalNode(x.CtrlP), CanonicalNode(x.CtrlM)
	case *CCVS:
		x.OutP, x.OutM = CanonicalNode(x.OutP), CanonicalNode(x.OutM)
	case *CCCS:
		x.OutP, x.OutM = CanonicalNode(x.OutP), CanonicalNode(x.OutM)
	case *Opamp:
		x.InP, x.InN, x.Out = CanonicalNode(x.InP), CanonicalNode(x.InN), CanonicalNode(x.Out)
		if x.TestIn != "" {
			x.TestIn = CanonicalNode(x.TestIn)
		}
	}
}

// Components returns the component list in insertion order. The returned
// slice must not be mutated by callers.
func (c *Circuit) Components() []Component { return c.components }

// Component looks a component up by name.
func (c *Circuit) Component(name string) (Component, bool) {
	i, ok := c.byName[name]
	if !ok {
		return nil, false
	}
	return c.components[i], true
}

// Valued looks up a component by name and asserts it carries a primary
// value parameter.
func (c *Circuit) Valued(name string) (Valued, error) {
	comp, ok := c.Component(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownName, name)
	}
	v, ok := comp.(Valued)
	if !ok {
		return nil, fmt.Errorf("%w: %q has no primary value", ErrUnknownName, name)
	}
	return v, nil
}

// Opamps returns the opamps in insertion order.
func (c *Circuit) Opamps() []*Opamp {
	var out []*Opamp
	for _, comp := range c.components {
		if op, ok := comp.(*Opamp); ok {
			out = append(out, op)
		}
	}
	return out
}

// Passives returns the resistors, capacitors and inductors in insertion
// order — the fault universe of the paper's experiments.
func (c *Circuit) Passives() []Valued {
	var out []Valued
	for _, comp := range c.components {
		switch comp.Kind() {
		case KindResistor, KindCapacitor, KindInductor:
			out = append(out, comp.(Valued))
		}
	}
	return out
}

// Nodes returns the sorted list of non-ground node names in use.
func (c *Circuit) Nodes() []string {
	set := make(map[string]bool)
	for _, comp := range c.components {
		for _, n := range comp.Terminals() {
			if !IsGroundName(n) {
				set[n] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the circuit (components included).
func (c *Circuit) Clone() *Circuit {
	out := New(c.Name)
	out.Input, out.Output = c.Input, c.Output
	for _, comp := range c.components {
		// Names are unique in the source, so Add cannot fail.
		if err := out.Add(comp.Clone()); err != nil {
			panic(fmt.Sprintf("circuit: clone: %v", err))
		}
	}
	return out
}

// Validate checks structural soundness:
//   - at least one component,
//   - Input and Output set and present in the node set,
//   - a ground connection exists,
//   - every non-ground node attaches to at least two terminals (no
//     dangling nodes), except nodes listed in allowDangling,
//   - the network is connected (every node reachable from ground through
//     component terminals).
func (c *Circuit) Validate(allowDangling ...string) error {
	if len(c.components) == 0 {
		return fmt.Errorf("%w: no components", ErrInvalid)
	}
	nodes := c.Nodes()
	nodeSet := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		nodeSet[n] = true
	}
	if c.Input == "" || !nodeSet[CanonicalNode(c.Input)] {
		return fmt.Errorf("%w: input node %q not in circuit", ErrInvalid, c.Input)
	}
	if c.Output == "" || !nodeSet[CanonicalNode(c.Output)] {
		return fmt.Errorf("%w: output node %q not in circuit", ErrInvalid, c.Output)
	}

	grounded := false
	degree := make(map[string]int)
	for _, comp := range c.components {
		for _, n := range comp.Terminals() {
			if IsGroundName(n) {
				grounded = true
				continue
			}
			degree[n]++
		}
	}
	if !grounded {
		return fmt.Errorf("%w: no ground connection", ErrInvalid)
	}

	allowed := make(map[string]bool)
	for _, n := range allowDangling {
		allowed[CanonicalNode(n)] = true
	}
	// The primary input is driven externally, so degree 1 is fine there.
	allowed[CanonicalNode(c.Input)] = true
	for n, d := range degree {
		if d < 2 && !allowed[n] {
			return fmt.Errorf("%w: dangling node %q (degree %d)", ErrInvalid, n, d)
		}
	}

	if err := c.checkConnected(nodeSet); err != nil {
		return err
	}
	return nil
}

// checkConnected verifies every node is reachable from ground treating each
// component as a hyperedge over its terminals.
func (c *Circuit) checkConnected(nodeSet map[string]bool) error {
	adj := make(map[string][]string)
	link := func(a, b string) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for _, comp := range c.components {
		t := comp.Terminals()
		for i := 1; i < len(t); i++ {
			link(CanonicalNode(t[0]), CanonicalNode(t[i]))
		}
	}
	seen := map[string]bool{GroundName: true}
	stack := []string{GroundName}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range adj[n] {
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	for n := range nodeSet {
		if !seen[n] {
			return fmt.Errorf("%w: node %q not connected to ground", ErrInvalid, n)
		}
	}
	return nil
}

// String renders a one-line summary.
func (c *Circuit) String() string {
	return fmt.Sprintf("%s{%d components, %d nodes, in=%s out=%s}",
		c.Name, len(c.components), len(c.Nodes()), c.Input, c.Output)
}

// CCVS is a current-controlled voltage source (SPICE H element):
// V(OutP) − V(OutM) = Rt · I(CtrlVSource), where the control current is
// the branch current of a named independent voltage source, per SPICE
// convention.
type CCVS struct {
	Label       string
	OutP, OutM  string
	CtrlVSource string
	Rt          float64 // transresistance, Ω
}

// Name implements Component.
func (h *CCVS) Name() string { return h.Label }

// Kind implements Component.
func (h *CCVS) Kind() Kind { return KindCCVS }

// Terminals implements Component.
func (h *CCVS) Terminals() []string { return []string{h.OutP, h.OutM} }

// Clone implements Component.
func (h *CCVS) Clone() Component { c := *h; return &c }

// Value implements Valued.
func (h *CCVS) Value() float64 { return h.Rt }

// SetValue implements Valued.
func (h *CCVS) SetValue(v float64) { h.Rt = v }

// Unit implements Valued.
func (h *CCVS) Unit() string { return "Ω" }

// CCCS is a current-controlled current source (SPICE F element):
// I(OutP→OutM) = Gain · I(CtrlVSource).
type CCCS struct {
	Label       string
	OutP, OutM  string
	CtrlVSource string
	Gain        float64
}

// Name implements Component.
func (f *CCCS) Name() string { return f.Label }

// Kind implements Component.
func (f *CCCS) Kind() Kind { return KindCCCS }

// Terminals implements Component.
func (f *CCCS) Terminals() []string { return []string{f.OutP, f.OutM} }

// Clone implements Component.
func (f *CCCS) Clone() Component { c := *f; return &c }

// Value implements Valued.
func (f *CCCS) Value() float64 { return f.Gain }

// SetValue implements Valued.
func (f *CCCS) SetValue(v float64) { f.Gain = v }

// Unit implements Valued.
func (f *CCCS) Unit() string { return "A/A" }
