package circuit

import (
	"errors"
	"testing"
	"testing/quick"
)

// rcDivider builds a minimal valid circuit: in --R1-- out --C1-- gnd.
func rcDivider() *Circuit {
	c := New("rc")
	c.R("R1", "in", "out", 1e3)
	c.Cap("C1", "out", "0", 1e-9)
	c.Input, c.Output = "in", "out"
	return c
}

func TestGroundNames(t *testing.T) {
	for _, n := range []string{"0", "gnd", "GND", "Ground", "ground"} {
		if !IsGroundName(n) {
			t.Errorf("IsGroundName(%q) = false, want true", n)
		}
		if CanonicalNode(n) != GroundName {
			t.Errorf("CanonicalNode(%q) = %q, want %q", n, CanonicalNode(n), GroundName)
		}
	}
	if IsGroundName("n0") {
		t.Error("n0 must not be ground")
	}
	if CanonicalNode("x") != "x" {
		t.Error("non-ground names must pass through")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindResistor: "R", KindCapacitor: "C", KindInductor: "L",
		KindVSource: "V", KindISource: "I", KindVCVS: "E", KindVCCS: "G",
		KindOpamp: "OA",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestAddDuplicate(t *testing.T) {
	c := New("t")
	if err := c.Add(&Resistor{Label: "R1", A: "a", B: "b", Ohms: 1}); err != nil {
		t.Fatal(err)
	}
	err := c.Add(&Resistor{Label: "R1", A: "a", B: "c", Ohms: 2})
	if !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("err = %v, want ErrDuplicateName", err)
	}
}

func TestAddEmptyName(t *testing.T) {
	c := New("t")
	if err := c.Add(&Resistor{A: "a", B: "b", Ohms: 1}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("err = %v, want ErrInvalid", err)
	}
}

func TestAddCanonicalizesGround(t *testing.T) {
	c := New("t")
	r := c.R("R1", "in", "GND", 1e3)
	if r.B != GroundName {
		t.Fatalf("ground not canonicalized: %q", r.B)
	}
}

func TestComponentLookup(t *testing.T) {
	c := rcDivider()
	comp, ok := c.Component("C1")
	if !ok || comp.Kind() != KindCapacitor {
		t.Fatalf("lookup C1: ok=%v comp=%v", ok, comp)
	}
	if _, ok := c.Component("R9"); ok {
		t.Fatal("lookup of unknown component succeeded")
	}
}

func TestValuedLookup(t *testing.T) {
	c := rcDivider()
	v, err := c.Valued("R1")
	if err != nil {
		t.Fatal(err)
	}
	if v.Value() != 1e3 || v.Unit() != "Ω" {
		t.Fatalf("R1 value = %g %s", v.Value(), v.Unit())
	}
	v.SetValue(2e3)
	v2, _ := c.Valued("R1")
	if v2.Value() != 2e3 {
		t.Fatal("SetValue did not persist")
	}
	if _, err := c.Valued("nope"); !errors.Is(err, ErrUnknownName) {
		t.Fatalf("err = %v, want ErrUnknownName", err)
	}
	c.OA("OP1", "0", "x", "out")
	if _, err := c.Valued("OP1"); !errors.Is(err, ErrUnknownName) {
		t.Fatalf("opamp Valued err = %v, want ErrUnknownName", err)
	}
}

func TestNodes(t *testing.T) {
	c := rcDivider()
	nodes := c.Nodes()
	if len(nodes) != 2 || nodes[0] != "in" || nodes[1] != "out" {
		t.Fatalf("nodes = %v, want [in out]", nodes)
	}
}

func TestOpampsAndPassives(t *testing.T) {
	c := New("t")
	c.R("R1", "a", "0", 1)
	c.Cap("C1", "a", "0", 1)
	c.L("L1", "a", "0", 1)
	c.V("V1", "a", "0", 1)
	c.OA("OP1", "0", "a", "b")
	c.OA("OP2", "0", "b", "a")
	if got := len(c.Opamps()); got != 2 {
		t.Fatalf("Opamps = %d, want 2", got)
	}
	if got := len(c.Passives()); got != 3 {
		t.Fatalf("Passives = %d, want 3", got)
	}
	if c.Opamps()[0].Name() != "OP1" || c.Opamps()[1].Name() != "OP2" {
		t.Fatal("opamp order not preserved")
	}
}

func TestCloneDeep(t *testing.T) {
	c := rcDivider()
	cl := c.Clone()
	v, _ := cl.Valued("R1")
	v.SetValue(99)
	orig, _ := c.Valued("R1")
	if orig.Value() != 1e3 {
		t.Fatal("Clone shares component storage")
	}
	if cl.Input != "in" || cl.Output != "out" || cl.Name != c.Name {
		t.Fatal("Clone lost metadata")
	}
}

func TestValidateOK(t *testing.T) {
	if err := rcDivider().Validate(); err != nil {
		t.Fatalf("valid circuit rejected: %v", err)
	}
}

func TestValidateEmpty(t *testing.T) {
	c := New("t")
	c.Input, c.Output = "a", "b"
	if err := c.Validate(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("err = %v, want ErrInvalid", err)
	}
}

func TestValidateMissingIO(t *testing.T) {
	c := rcDivider()
	c.Input = ""
	if err := c.Validate(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("missing input: err = %v", err)
	}
	c = rcDivider()
	c.Output = "nope"
	if err := c.Validate(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("bad output: err = %v", err)
	}
}

func TestValidateNoGround(t *testing.T) {
	c := New("t")
	c.R("R1", "a", "b", 1)
	c.R("R2", "b", "a", 1)
	c.Input, c.Output = "a", "b"
	if err := c.Validate(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("no-ground: err = %v", err)
	}
}

func TestValidateDangling(t *testing.T) {
	c := rcDivider()
	c.R("R2", "out", "stray", 1e3) // "stray" has degree 1
	if err := c.Validate(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("dangling: err = %v", err)
	}
	// The same circuit passes when the dangling node is allow-listed.
	if err := c.Validate("stray"); err != nil {
		t.Fatalf("allowDangling rejected: %v", err)
	}
}

func TestValidateDisconnected(t *testing.T) {
	c := rcDivider()
	// Island not touching the rest of the network.
	c.R("R2", "p", "q", 1)
	c.R("R3", "q", "p", 1)
	if err := c.Validate(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("disconnected: err = %v", err)
	}
}

func TestValidateInputMayDangle(t *testing.T) {
	// in has degree 1 (only R1): allowed because the stimulus drives it.
	c := New("t")
	c.R("R1", "in", "out", 1e3)
	c.R("R2", "out", "0", 1e3)
	c.Input, c.Output = "in", "out"
	if err := c.Validate(); err != nil {
		t.Fatalf("input dangling rejected: %v", err)
	}
}

func TestTerminalsPerKind(t *testing.T) {
	r := &Resistor{Label: "R", A: "a", B: "b"}
	if got := r.Terminals(); len(got) != 2 {
		t.Errorf("R terminals = %v", got)
	}
	e := &VCVS{Label: "E", OutP: "o", OutM: "0", CtrlP: "p", CtrlM: "m"}
	if got := e.Terminals(); len(got) != 4 {
		t.Errorf("E terminals = %v", got)
	}
	op := &Opamp{Label: "OP", InP: "p", InN: "n", Out: "o"}
	if got := op.Terminals(); len(got) != 3 {
		t.Errorf("plain opamp terminals = %v", got)
	}
	op.Configurable = true
	op.TestIn = "t"
	if got := op.Terminals(); len(got) != 4 || got[3] != "t" {
		t.Errorf("configurable opamp terminals = %v", got)
	}
}

func TestOpampModeModelStrings(t *testing.T) {
	if ModeNormal.String() != "normal" || ModeFollower.String() != "follower" {
		t.Error("mode strings")
	}
	if ModelIdeal.String() != "ideal" || ModelSinglePole.String() != "single-pole" {
		t.Error("model strings")
	}
}

func TestValuedInterfaceCoverage(t *testing.T) {
	cases := []struct {
		v    Valued
		unit string
	}{
		{&Resistor{Label: "R", Ohms: 1}, "Ω"},
		{&Capacitor{Label: "C", Farads: 1}, "F"},
		{&Inductor{Label: "L", Henries: 1}, "H"},
		{&VSource{Label: "V", Amplitude: 1}, "V"},
		{&ISource{Label: "I", Amplitude: 1}, "A"},
		{&VCVS{Label: "E", Gain: 1}, "V/V"},
		{&VCCS{Label: "G", Gm: 1}, "S"},
	}
	for _, tc := range cases {
		if tc.v.Value() != 1 {
			t.Errorf("%s: Value = %g", tc.v.Name(), tc.v.Value())
		}
		tc.v.SetValue(7)
		if tc.v.Value() != 7 {
			t.Errorf("%s: SetValue did not apply", tc.v.Name())
		}
		if tc.v.Unit() != tc.unit {
			t.Errorf("%s: Unit = %q, want %q", tc.v.Name(), tc.v.Unit(), tc.unit)
		}
		cl := tc.v.Clone().(Valued)
		cl.SetValue(8)
		if tc.v.Value() != 7 {
			t.Errorf("%s: Clone shares storage", tc.v.Name())
		}
	}
}

func TestStringSummary(t *testing.T) {
	s := rcDivider().String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

// Property: Clone is always independent — mutating every valued component
// of the clone never alters the original.
func TestCloneIndependenceProperty(t *testing.T) {
	f := func(vals []float64) bool {
		c := New("p")
		prev := "0"
		for i, v := range vals {
			if v == 0 || v != v { // skip zero and NaN
				v = 1
			}
			node := prev
			next := "n" + string(rune('a'+i%26))
			c.R(nodeName("R", i), node, next, abs(v))
			prev = next
		}
		if len(c.Components()) == 0 {
			return true
		}
		cl := c.Clone()
		for _, p := range cl.Passives() {
			p.SetValue(p.Value() * 3)
		}
		for i, p := range c.Passives() {
			if p.Value() != abs(valOr1(vals[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func nodeName(prefix string, i int) string {
	return prefix + string(rune('0'+i/10%10)) + string(rune('0'+i%10))
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func valOr1(v float64) float64 {
	if v == 0 || v != v {
		return 1
	}
	return v
}

func TestCurrentControlledComponents(t *testing.T) {
	c := New("hf")
	c.V("V1", "a", "0", 1)
	c.R("R1", "a", "0", 1e3)
	h := c.H("H1", "b", "GND", "V1", 50)
	f := c.F("F1", "c", "gnd", "V1", 2)
	c.R("R2", "b", "0", 1e3)
	c.R("R3", "c", "0", 1e3)
	if h.Kind() != KindCCVS || h.Kind().String() != "H" {
		t.Error("CCVS kind")
	}
	if f.Kind() != KindCCCS || f.Kind().String() != "F" {
		t.Error("CCCS kind")
	}
	if h.OutM != GroundName || f.OutM != GroundName {
		t.Error("ground not canonicalized on H/F")
	}
	if h.Unit() != "Ω" || f.Unit() != "A/A" {
		t.Error("units")
	}
	h.SetValue(99)
	if h.Value() != 99 {
		t.Error("CCVS SetValue")
	}
	f.SetValue(3)
	if f.Value() != 3 {
		t.Error("CCCS SetValue")
	}
	cl := h.Clone().(*CCVS)
	cl.Rt = 1
	if h.Rt != 99 {
		t.Error("CCVS clone shares storage")
	}
	if len(h.Terminals()) != 2 || len(f.Terminals()) != 2 {
		t.Error("terminals")
	}
}
