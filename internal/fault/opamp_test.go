package fault

import (
	"errors"
	"testing"

	"analogdft/internal/circuit"
)

// singlePoleBuffer: a unity buffer built from a single-pole opamp.
func singlePoleCircuit() *circuit.Circuit {
	c := circuit.New("sp")
	c.R("R1", "in", "m", 1e3)
	c.R("R2", "m", "out", 1e3)
	c.OASinglePole("OP1", "0", "m", "out", 1e5, 10)
	c.OA("OP2", "0", "x", "y") // ideal opamp: no internal faults
	c.R("R3", "out", "x", 1e3)
	c.R("R4", "x", "y", 1e3)
	c.Input, c.Output = "in", "y"
	return c
}

func TestOpampKindStrings(t *testing.T) {
	if OpampGain.String() != "opamp-gain" || OpampPole.String() != "opamp-pole" {
		t.Fatal("kind strings")
	}
	if Kind(999).String() == "" {
		t.Fatal("unknown kind string")
	}
}

func TestOpampGainFault(t *testing.T) {
	c := singlePoleCircuit()
	f := Fault{ID: "fOP1:a0", Component: "OP1", Kind: OpampGain, Factor: 0.01}
	faulty, err := f.Apply(c)
	if err != nil {
		t.Fatal(err)
	}
	comp, _ := faulty.Component("OP1")
	op := comp.(*circuit.Opamp)
	if op.A0 != 1e3 {
		t.Fatalf("faulty A0 = %g, want 1e3", op.A0)
	}
	// Original untouched.
	orig, _ := c.Component("OP1")
	if orig.(*circuit.Opamp).A0 != 1e5 {
		t.Fatal("Apply mutated the nominal circuit")
	}
}

func TestOpampPoleFault(t *testing.T) {
	c := singlePoleCircuit()
	f := Fault{ID: "fOP1:pole", Component: "OP1", Kind: OpampPole, Factor: 0.1}
	faulty, err := f.Apply(c)
	if err != nil {
		t.Fatal(err)
	}
	comp, _ := faulty.Component("OP1")
	if got := comp.(*circuit.Opamp).PoleHz; got != 1 {
		t.Fatalf("faulty pole = %g, want 1", got)
	}
}

func TestOpampFaultOnIdealRejected(t *testing.T) {
	c := singlePoleCircuit()
	f := Fault{ID: "fOP2:a0", Component: "OP2", Kind: OpampGain, Factor: 0.01}
	if _, err := f.Apply(c); !errors.Is(err, ErrBadFault) {
		t.Fatalf("err = %v, want ErrBadFault", err)
	}
}

func TestOpampFaultOnPassiveRejected(t *testing.T) {
	c := singlePoleCircuit()
	f := Fault{ID: "fR1:a0", Component: "R1", Kind: OpampGain, Factor: 0.01}
	if _, err := f.Apply(c); !errors.Is(err, ErrBadFault) {
		t.Fatalf("err = %v, want ErrBadFault", err)
	}
}

func TestOpampFaultUnknownComponent(t *testing.T) {
	c := singlePoleCircuit()
	f := Fault{ID: "fZZ", Component: "ZZ", Kind: OpampGain, Factor: 0.01}
	if _, err := f.Apply(c); !errors.Is(err, circuit.ErrUnknownName) {
		t.Fatalf("err = %v, want ErrUnknownName", err)
	}
}

func TestOpampFaultValidation(t *testing.T) {
	bad := Fault{ID: "f", Component: "OP1", Kind: OpampGain, Factor: 1}
	if err := bad.Validate(); !errors.Is(err, ErrBadFault) {
		t.Fatalf("factor 1 accepted: %v", err)
	}
	bad.Factor = 0
	if err := bad.Validate(); !errors.Is(err, ErrBadFault) {
		t.Fatalf("factor 0 accepted: %v", err)
	}
}

func TestOpampUniverse(t *testing.T) {
	c := singlePoleCircuit()
	l := OpampUniverse(c, 0.01, 0.1)
	// Only OP1 is single-pole; OP2 (ideal) is skipped.
	if len(l) != 2 {
		t.Fatalf("universe = %v", l)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	g, ok := l.ByID("fOP1:a0")
	if !ok || g.Kind != OpampGain || g.Factor != 0.01 {
		t.Fatalf("gain fault = %+v", g)
	}
	p, ok := l.ByID("fOP1:pole")
	if !ok || p.Kind != OpampPole || p.Factor != 0.1 {
		t.Fatalf("pole fault = %+v", p)
	}
}

func TestOpampUniverseAllIdeal(t *testing.T) {
	c := circuit.New("i")
	c.R("R1", "in", "m", 1e3)
	c.R("R2", "m", "out", 1e3)
	c.OA("OP1", "0", "m", "out")
	if l := OpampUniverse(c, 0.01, 0.1); len(l) != 0 {
		t.Fatalf("ideal-only universe = %v", l)
	}
}
