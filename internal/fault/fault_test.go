package fault

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"analogdft/internal/circuit"
)

func testCircuit() *circuit.Circuit {
	c := circuit.New("t")
	c.R("R1", "in", "mid", 1e3)
	c.Cap("C1", "mid", "0", 1e-9)
	c.L("L1", "mid", "0", 1e-3)
	c.Input, c.Output = "in", "mid"
	return c
}

func TestKindString(t *testing.T) {
	if Deviation.String() != "deviation" || Open.String() != "open" || Short.String() != "short" {
		t.Fatal("kind strings")
	}
}

func TestFaultValidate(t *testing.T) {
	good := Fault{ID: "fR1", Component: "R1", Kind: Deviation, Factor: 1.2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Fault{
		{Component: "R1", Kind: Deviation, Factor: 1.2},           // no ID
		{ID: "f", Kind: Deviation, Factor: 1.2},                   // no component
		{ID: "f", Component: "R1", Kind: Deviation, Factor: 0},    // zero factor
		{ID: "f", Component: "R1", Kind: Deviation, Factor: 1},    // no-op factor
		{ID: "f", Component: "R1", Kind: Deviation, Factor: -0.5}, // negative
	}
	for _, f := range bad {
		if err := f.Validate(); !errors.Is(err, ErrBadFault) {
			t.Errorf("fault %v: err = %v, want ErrBadFault", f, err)
		}
	}
}

func TestApplyDeviation(t *testing.T) {
	c := testCircuit()
	f := Fault{ID: "fR1", Component: "R1", Kind: Deviation, Factor: 1.2}
	faulty, err := f.Apply(c)
	if err != nil {
		t.Fatal(err)
	}
	fv, _ := faulty.Valued("R1")
	if fv.Value() != 1.2e3 {
		t.Fatalf("faulty R1 = %g, want 1200", fv.Value())
	}
	ov, _ := c.Valued("R1")
	if ov.Value() != 1e3 {
		t.Fatal("Apply mutated the nominal circuit")
	}
	if !strings.Contains(faulty.Name, "fR1") {
		t.Errorf("faulty circuit name %q should carry the fault ID", faulty.Name)
	}
}

func TestApplyOpenShortSemantics(t *testing.T) {
	c := testCircuit()
	cases := []struct {
		comp string
		kind Kind
		// bigger reports whether the value must grow to emulate the fault
		bigger bool
	}{
		{"R1", Open, true},
		{"R1", Short, false},
		{"L1", Open, true},
		{"L1", Short, false},
		{"C1", Open, false}, // tiny capacitance = open branch
		{"C1", Short, true}, // huge capacitance = short branch
	}
	for _, tc := range cases {
		f := Fault{ID: tc.comp + ":" + tc.kind.String(), Component: tc.comp, Kind: tc.kind}
		faulty, err := f.Apply(c)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		nv, _ := c.Valued(tc.comp)
		fv, _ := faulty.Valued(tc.comp)
		if tc.bigger && fv.Value() <= nv.Value()*1e6 {
			t.Errorf("%v: value %g not raised", f, fv.Value())
		}
		if !tc.bigger && fv.Value() >= nv.Value()/1e6 {
			t.Errorf("%v: value %g not lowered", f, fv.Value())
		}
	}
}

func TestApplyUnknownComponent(t *testing.T) {
	f := Fault{ID: "fX", Component: "X9", Kind: Deviation, Factor: 1.2}
	if _, err := f.Apply(testCircuit()); !errors.Is(err, circuit.ErrUnknownName) {
		t.Fatalf("err = %v, want ErrUnknownName", err)
	}
}

func TestApplyInvalidFault(t *testing.T) {
	f := Fault{ID: "", Component: "R1", Kind: Deviation, Factor: 1.2}
	if _, err := f.Apply(testCircuit()); !errors.Is(err, ErrBadFault) {
		t.Fatalf("err = %v, want ErrBadFault", err)
	}
}

func TestFaultString(t *testing.T) {
	f := Fault{ID: "fR1", Component: "R1", Kind: Deviation, Factor: 1.2}
	if s := f.String(); !strings.Contains(s, "R1") || !strings.Contains(s, "1.2") {
		t.Errorf("String = %q", s)
	}
	o := Fault{ID: "x", Component: "C1", Kind: Open}
	if s := o.String(); !strings.Contains(s, "open") {
		t.Errorf("String = %q", s)
	}
}

func TestDeviationUniverse(t *testing.T) {
	l := DeviationUniverse(testCircuit(), 0.2)
	if len(l) != 3 {
		t.Fatalf("universe size = %d, want 3", len(l))
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []string{"fR1", "fC1", "fL1"}
	for i, id := range l.IDs() {
		if id != want[i] {
			t.Errorf("ID[%d] = %q, want %q", i, id, want[i])
		}
	}
	for _, f := range l {
		if f.Factor != 1.2 || f.Kind != Deviation {
			t.Errorf("fault %v: wrong parameters", f)
		}
	}
}

func TestBipolarDeviationUniverse(t *testing.T) {
	l := BipolarDeviationUniverse(testCircuit(), 0.1)
	if len(l) != 6 {
		t.Fatalf("universe size = %d, want 6", len(l))
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	plus, ok := l.ByID("fR1+")
	if !ok || plus.Factor != 1.1 {
		t.Errorf("fR1+ = %+v, ok=%v", plus, ok)
	}
	minus, ok := l.ByID("fR1-")
	if !ok || minus.Factor != 0.9 {
		t.Errorf("fR1- = %+v, ok=%v", minus, ok)
	}
}

func TestCatastrophicUniverse(t *testing.T) {
	l := CatastrophicUniverse(testCircuit())
	if len(l) != 6 {
		t.Fatalf("universe size = %d, want 6", len(l))
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.ByID("C1:short"); !ok {
		t.Error("C1:short missing")
	}
}

func TestListValidateDuplicates(t *testing.T) {
	l := List{
		{ID: "f", Component: "R1", Kind: Deviation, Factor: 1.2},
		{ID: "f", Component: "C1", Kind: Deviation, Factor: 1.2},
	}
	if err := l.Validate(); !errors.Is(err, ErrBadFault) {
		t.Fatalf("err = %v, want ErrBadFault", err)
	}
}

func TestByIDMissing(t *testing.T) {
	l := DeviationUniverse(testCircuit(), 0.2)
	if _, ok := l.ByID("nope"); ok {
		t.Fatal("found nonexistent fault")
	}
}

// Property: applying a deviation fault scales exactly the named component
// and leaves every other passive untouched.
func TestApplyTouchesOnlyTarget(t *testing.T) {
	f := func(pick uint8, fracRaw uint8) bool {
		c := testCircuit()
		passives := c.Passives()
		target := passives[int(pick)%len(passives)].Name()
		frac := 0.01 + float64(fracRaw%100)/200 // 1%..51%
		flt := Fault{ID: "f" + target, Component: target, Kind: Deviation, Factor: 1 + frac}
		faulty, err := flt.Apply(c)
		if err != nil {
			return false
		}
		for _, p := range c.Passives() {
			nv := p.Value()
			fv, err := faulty.Valued(p.Name())
			if err != nil {
				return false
			}
			want := nv
			if p.Name() == target {
				want = nv * (1 + frac)
			}
			if diff := fv.Value() - want; diff > 1e-12*want || diff < -1e-12*want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
