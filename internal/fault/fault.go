// Package fault defines the fault models and fault-list generation used by
// the testability analysis: soft (parametric deviation) faults on passive
// components — the fault universe of the paper's experiments — plus
// catastrophic open/short faults as an extension.
//
// A Fault is applied by cloning the circuit and mutating the primary value
// of the faulty component, so fault simulation never disturbs the nominal
// netlist.
package fault

import (
	"errors"
	"fmt"

	"analogdft/internal/circuit"
)

// ErrBadFault is returned for malformed faults.
var ErrBadFault = errors.New("fault: bad fault")

// ErrNotPatchable flags a fault that cannot be expressed as an in-place
// value patch on a live MNA system: catastrophic opens/shorts and opamp
// model faults change how the component is stamped, not just a stamped
// value, so incremental engines must fall back to cloning the circuit.
var ErrNotPatchable = errors.New("fault: not expressible as a value patch")

// Kind distinguishes fault models.
type Kind int

// Fault kinds.
const (
	// Deviation multiplies the component value by Factor (soft fault).
	Deviation Kind = iota
	// Open turns the component into (approximately) an open circuit.
	Open
	// Short turns the component into (approximately) a short circuit.
	Short
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Deviation:
		return "deviation"
	case Open:
		return "open"
	case Short:
		return "short"
	default:
		if s, ok := opampKindString(k); ok {
			return s
		}
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// isParametric reports whether the kind scales a parameter by Factor (and
// therefore needs a meaningful Factor).
func (k Kind) isParametric() bool {
	return k == Deviation || k == OpampGain || k == OpampPole
}

// isOpamp reports whether the kind targets an opamp's internal model.
func (k Kind) isOpamp() bool { return k == OpampGain || k == OpampPole }

// Extreme multipliers used to emulate catastrophic faults through the
// value-mutation interface. For a resistor, a huge value is an open and a
// tiny one a short; for a capacitor (admittance jωC) the roles flip.
const (
	openFactor  = 1e9
	shortFactor = 1e-9
)

// Fault is a single fault on a named component.
type Fault struct {
	// ID is a short unique label, e.g. "fR1" or "R1+20%".
	ID string
	// Component is the name of the faulted component.
	Component string
	// Kind selects the fault model.
	Kind Kind
	// Factor is the value multiplier for Deviation faults (e.g. 1.2 for
	// +20%, 0.8 for −20%). Ignored for Open/Short.
	Factor float64
}

// String implements fmt.Stringer.
func (f Fault) String() string {
	switch f.Kind {
	case Deviation:
		return fmt.Sprintf("%s(%s×%g)", f.ID, f.Component, f.Factor)
	default:
		return fmt.Sprintf("%s(%s %s)", f.ID, f.Component, f.Kind)
	}
}

// Validate checks the fault definition.
func (f Fault) Validate() error {
	if f.ID == "" || f.Component == "" {
		return fmt.Errorf("%w: missing ID or component", ErrBadFault)
	}
	if f.Kind.isParametric() && (f.Factor <= 0 || f.Factor == 1) {
		return fmt.Errorf("%w: %s factor %g", ErrBadFault, f.Kind, f.Factor)
	}
	return nil
}

// multiplier returns the value multiplier to apply for this fault on a
// component of the given kind.
func (f Fault) multiplier(kind circuit.Kind) (float64, error) {
	switch f.Kind {
	case Deviation:
		return f.Factor, nil
	case Open:
		switch kind {
		case circuit.KindResistor, circuit.KindInductor:
			return openFactor, nil
		case circuit.KindCapacitor:
			return shortFactor, nil // tiny C ⇒ open branch
		}
	case Short:
		switch kind {
		case circuit.KindResistor, circuit.KindInductor:
			return shortFactor, nil
		case circuit.KindCapacitor:
			return openFactor, nil // huge C ⇒ short branch
		}
	}
	return 0, fmt.Errorf("%w: %s fault on %v component", ErrBadFault, f.Kind, kind)
}

// Apply returns a faulty deep copy of the circuit. The original circuit is
// untouched.
func (f Fault) Apply(ckt *circuit.Circuit) (*circuit.Circuit, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	faulty := ckt.Clone()
	if f.Kind.isOpamp() {
		if err := f.applyOpamp(faulty); err != nil {
			return nil, err
		}
	} else {
		v, err := faulty.Valued(f.Component)
		if err != nil {
			return nil, err
		}
		comp, _ := faulty.Component(f.Component)
		mult, err := f.multiplier(comp.Kind())
		if err != nil {
			return nil, err
		}
		v.SetValue(v.Value() * mult)
	}
	faulty.Name = fmt.Sprintf("%s[%s]", ckt.Name, f.ID)
	return faulty, nil
}

// PatchValue expresses the fault as a (component, newValue) pair for
// engines that patch a live system in place instead of cloning the
// circuit. Only Deviation faults are patchable: opens, shorts and opamp
// faults return an error wrapping ErrNotPatchable so callers can fall
// back to Apply. The circuit is only read (for the nominal value), never
// mutated.
func (f Fault) PatchValue(ckt *circuit.Circuit) (component string, value float64, err error) {
	if err := f.Validate(); err != nil {
		return "", 0, err
	}
	if f.Kind != Deviation {
		return "", 0, fmt.Errorf("%w: %s fault on %q", ErrNotPatchable, f.Kind, f.Component)
	}
	v, err := ckt.Valued(f.Component)
	if err != nil {
		return "", 0, err
	}
	return f.Component, v.Value() * f.Factor, nil
}

// List is an ordered fault list.
type List []Fault

// IDs returns the fault identifiers in order.
func (l List) IDs() []string {
	out := make([]string, len(l))
	for i, f := range l {
		out[i] = f.ID
	}
	return out
}

// ByID looks up a fault by identifier.
func (l List) ByID(id string) (Fault, bool) {
	for _, f := range l {
		if f.ID == id {
			return f, true
		}
	}
	return Fault{}, false
}

// Validate checks every fault and ID uniqueness.
func (l List) Validate() error {
	seen := make(map[string]bool, len(l))
	for _, f := range l {
		if err := f.Validate(); err != nil {
			return err
		}
		if seen[f.ID] {
			return fmt.Errorf("%w: duplicate fault ID %q", ErrBadFault, f.ID)
		}
		seen[f.ID] = true
	}
	return nil
}

// DeviationUniverse builds the paper's fault universe: a single deviation
// fault of the given fraction (e.g. 0.2 for 20%) on every passive
// component, in netlist order, with IDs "f<component>" as in the paper
// (fR1, fR2, …, fC2).
func DeviationUniverse(ckt *circuit.Circuit, frac float64) List {
	var out List
	for _, p := range ckt.Passives() {
		out = append(out, Fault{
			ID:        "f" + p.Name(),
			Component: p.Name(),
			Kind:      Deviation,
			Factor:    1 + frac,
		})
	}
	return out
}

// BipolarDeviationUniverse builds ± deviation faults on every passive
// component: "f<component>+" (value × (1+frac)) and "f<component>-"
// (value × (1−frac)).
func BipolarDeviationUniverse(ckt *circuit.Circuit, frac float64) List {
	var out List
	for _, p := range ckt.Passives() {
		out = append(out,
			Fault{ID: "f" + p.Name() + "+", Component: p.Name(), Kind: Deviation, Factor: 1 + frac},
			Fault{ID: "f" + p.Name() + "-", Component: p.Name(), Kind: Deviation, Factor: 1 - frac},
		)
	}
	return out
}

// CatastrophicUniverse builds open and short faults on every passive
// component with IDs "<component>:open" / "<component>:short".
func CatastrophicUniverse(ckt *circuit.Circuit) List {
	var out List
	for _, p := range ckt.Passives() {
		out = append(out,
			Fault{ID: p.Name() + ":open", Component: p.Name(), Kind: Open},
			Fault{ID: p.Name() + ":short", Component: p.Name(), Kind: Short},
		)
	}
	return out
}
