package fault

import (
	"errors"
	"testing"

	"analogdft/internal/circuit"
)

func patchCircuit() *circuit.Circuit {
	c := circuit.New("p")
	c.V("V1", "in", "0", 1)
	c.R("R1", "in", "out", 1e3)
	c.Cap("C1", "out", "0", 10e-9)
	return c
}

func TestPatchValueDeviation(t *testing.T) {
	ckt := patchCircuit()
	f := Fault{ID: "fR1", Component: "R1", Kind: Deviation, Factor: 1.2}
	name, v, err := f.PatchValue(ckt)
	if err != nil {
		t.Fatal(err)
	}
	if name != "R1" || v != 1.2e3 {
		t.Fatalf("PatchValue = (%q, %g), want (R1, 1200)", name, v)
	}
	// The circuit must be untouched.
	val, _ := ckt.Valued("R1")
	if val.Value() != 1e3 {
		t.Fatalf("PatchValue mutated the circuit: R1 = %g", val.Value())
	}
}

func TestPatchValueNotPatchable(t *testing.T) {
	ckt := patchCircuit()
	for _, f := range []Fault{
		{ID: "o", Component: "R1", Kind: Open},
		{ID: "s", Component: "C1", Kind: Short},
		{ID: "g", Component: "OP1", Kind: OpampGain, Factor: 0.5},
		{ID: "p", Component: "OP1", Kind: OpampPole, Factor: 2},
	} {
		if _, _, err := f.PatchValue(ckt); !errors.Is(err, ErrNotPatchable) {
			t.Errorf("%s fault: err = %v, want ErrNotPatchable", f.Kind, err)
		}
	}
}

func TestPatchValueErrors(t *testing.T) {
	ckt := patchCircuit()
	if _, _, err := (Fault{ID: "x", Component: "nope", Kind: Deviation, Factor: 1.2}).PatchValue(ckt); err == nil {
		t.Fatal("unknown component: err = nil")
	}
	if _, _, err := (Fault{Component: "R1", Kind: Deviation, Factor: 1.2}).PatchValue(ckt); !errors.Is(err, ErrBadFault) {
		t.Fatal("missing ID must fail validation")
	}
}
