package fault

import (
	"fmt"

	"analogdft/internal/circuit"
)

// Opamp-internal fault kinds. The paper excludes the transparent
// configuration from the passive-fault study because it "is used to test
// faults inside opamps" [5]; these fault models complete that story. They
// require the single-pole opamp model (an ideal opamp has no internal
// parameters to degrade).
const (
	// OpampGain multiplies the open-loop DC gain A0 by Factor
	// (e.g. 0.01 for a severely degraded input stage).
	OpampGain Kind = 100 + iota
	// OpampPole multiplies the open-loop pole frequency by Factor
	// (bandwidth/slew degradation; GBW scales with it).
	OpampPole
)

// opampKindString extends Kind.String for the opamp kinds.
func opampKindString(k Kind) (string, bool) {
	switch k {
	case OpampGain:
		return "opamp-gain", true
	case OpampPole:
		return "opamp-pole", true
	}
	return "", false
}

// applyOpamp mutates the named opamp of an already-cloned circuit.
func (f Fault) applyOpamp(faulty *circuit.Circuit) error {
	comp, ok := faulty.Component(f.Component)
	if !ok {
		return fmt.Errorf("%w: %q", circuit.ErrUnknownName, f.Component)
	}
	op, ok := comp.(*circuit.Opamp)
	if !ok {
		return fmt.Errorf("%w: %s fault on non-opamp %q", ErrBadFault, f.Kind, f.Component)
	}
	if op.Model != circuit.ModelSinglePole {
		return fmt.Errorf("%w: %s fault needs the single-pole model on %q", ErrBadFault, f.Kind, f.Component)
	}
	switch f.Kind {
	case OpampGain:
		op.A0 *= f.Factor
	case OpampPole:
		op.PoleHz *= f.Factor
	default:
		return fmt.Errorf("%w: kind %v", ErrBadFault, f.Kind)
	}
	return nil
}

// OpampUniverse builds opamp-internal faults for every single-pole opamp
// of the circuit: a gain-degradation fault "f<op>:a0" (A0 × gainFactor)
// and a bandwidth fault "f<op>:pole" (pole × poleFactor). Opamps still on
// the ideal model are skipped — they have no internal parameters.
func OpampUniverse(ckt *circuit.Circuit, gainFactor, poleFactor float64) List {
	var out List
	for _, op := range ckt.Opamps() {
		if op.Model != circuit.ModelSinglePole {
			continue
		}
		out = append(out,
			Fault{ID: "f" + op.Name() + ":a0", Component: op.Name(), Kind: OpampGain, Factor: gainFactor},
			Fault{ID: "f" + op.Name() + ":pole", Component: op.Name(), Kind: OpampPole, Factor: poleFactor},
		)
	}
	return out
}
