// Package detect implements the testability evaluation of §2 and §3 of the
// paper: boolean fault detectability (Definition 1), ω-detectability
// (Definition 2) and the fault detectability matrix across the test
// configurations of a DFT-modified circuit (Figure 5 / Table 2).
//
// Fault simulation is embarrassingly parallel: each (configuration, fault)
// cell requires an independent AC sweep of a faulty circuit clone, so the
// engine fans the cells out over a chunked worker pool and reduces the
// results into fixed matrix positions. The engine is race-clean (each cell
// writes only its own slot; shared accounting goes through a mutex-guarded
// reducer) and error-transparent: a cell whose simulation fails is never
// silently recorded as "undetectable" — it is reported as a structured
// CellError, escalated (FailFast) or re-solved on a jittered grid (Retry)
// according to Options.OnError. Matrices and error sets are identical for
// any Workers value.
package detect

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"analogdft/internal/analysis"
	"analogdft/internal/circuit"
	"analogdft/internal/dft"
	"analogdft/internal/fault"
	"analogdft/internal/mna"
	"analogdft/internal/obs"
)

// ErrNoRegion is returned when no reference region can be established for
// the circuit under analysis.
var ErrNoRegion = errors.New("detect: no reference region")

// ErrorPolicy selects how BuildMatrix and EvaluateCircuit treat cells
// whose AC simulation fails.
type ErrorPolicy int

// Error policies.
const (
	// Degrade (the default) records the failure as a structured cell
	// error, counts the cell as not detectable, and keeps going. Callers
	// must consult Matrix.CellErrors (or FaultEval.Err) before trusting
	// coverage numbers derived from a degraded matrix.
	Degrade ErrorPolicy = iota
	// FailFast aborts the whole evaluation on the first cell failure:
	// scheduling is cancelled, in-flight cells finish, and the error is
	// returned (as a CellError from BuildMatrix).
	FailFast
	// Retry re-solves singular grid points on a deterministically
	// jittered grid (up to Options.MaxRetries offsets per point) before
	// recording a failure; cells that still fail degrade as in Degrade.
	Retry
)

// String implements fmt.Stringer.
func (p ErrorPolicy) String() string {
	switch p {
	case Degrade:
		return "degrade"
	case FailFast:
		return "failfast"
	case Retry:
		return "retry"
	default:
		return fmt.Sprintf("ErrorPolicy(%d)", int(p))
	}
}

// EngineMode selects how matrix cells simulate their faulty circuit.
type EngineMode int

// Engine modes.
const (
	// EngineIncremental (the default) gives each worker a reusable
	// per-configuration analysis.Engine and applies each fault as an
	// in-place stamp patch — no circuit clone, no system rebuild, no
	// per-cell allocation. Faults the patcher cannot express (opens,
	// shorts, opamp model faults) fall back to the naive path cell by
	// cell, counted in engine_fallback_total, so both modes always
	// evaluate every cell.
	EngineIncremental EngineMode = iota
	// EngineNaive clones the circuit and rebuilds the MNA system for
	// every cell — the original, allocation-heavy strategy, kept as the
	// reference implementation for equivalence testing.
	EngineNaive
	// EngineLowRank factors the nominal MNA matrix once per (configuration,
	// ω) grid point and solves each rank-1 fault against those cached
	// factorizations via Sherman–Morrison — O(n²) per point instead of the
	// O(n³) refactorization both other modes pay. Faults whose stamp delta
	// is not a single outer product (opens, shorts, opamp model faults,
	// source amplitudes) fall back to the incremental path cell by cell,
	// counted in engine_fallback_total; grid points where the rank-1 update
	// is singular fall back to a full patched refactorization inside the
	// sweep (engine_lowrank_refactor_total). All modes evaluate every cell.
	EngineLowRank
)

// String implements fmt.Stringer.
func (m EngineMode) String() string {
	switch m {
	case EngineIncremental:
		return "incremental"
	case EngineNaive:
		return "naive"
	case EngineLowRank:
		return "lowrank"
	default:
		return fmt.Sprintf("EngineMode(%d)", int(m))
	}
}

// ParseEngineMode maps an -engine flag value onto an engine mode.
func ParseEngineMode(name string) (EngineMode, error) {
	switch name {
	case "", "incremental":
		return EngineIncremental, nil
	case "naive":
		return EngineNaive, nil
	case "lowrank":
		return EngineLowRank, nil
	default:
		return EngineIncremental, fmt.Errorf("detect: unknown engine mode %q (want incremental, lowrank or naive)", name)
	}
}

// Stats aggregates the effort and health of one matrix or row evaluation.
// Snapshots are delivered through Options.Progress; the final values are
// recorded on Matrix.Stats / Row.Stats.
type Stats struct {
	// Cells is the number of (configuration, fault) cells scheduled.
	Cells int
	// CellsDone is the number of cells completed so far.
	CellsDone int
	// Solves is the number of AC grid-point solves performed, including
	// nominal pre-sweeps and retry attempts.
	Solves int
	// SingularPoints is the number of grid points that remained
	// unsolvable (singular) after any retries.
	SingularPoints int
	// Retries is the number of jittered re-solve attempts performed
	// under the Retry policy.
	Retries int
	// Recovered is the number of singular points rescued by a retry.
	Recovered int
	// Errors is the number of cells that recorded an error.
	Errors int
	// Elapsed is the wall time of the whole evaluation: zero on
	// intermediate Progress snapshots, set on the final one.
	Elapsed time.Duration
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("%d/%d cells, %d solves, %d singular, %d retries (%d recovered), %d errors, %s",
		s.CellsDone, s.Cells, s.Solves, s.SingularPoints, s.Retries, s.Recovered, s.Errors, s.Elapsed)
}

// Options parameterizes the testability evaluation.
type Options struct {
	// Eps is the relative tolerance ε of Definition 1 (default 0.10: the
	// paper's "arbitrarily fixed at 10%").
	//
	// CAUTION: zero is a sentinel meaning "use the default", so an
	// explicit Eps of 0 is silently rewritten to 0.10. To request a true
	// zero tolerance (any nonzero deviation counts as detection), set
	// NoEps.
	Eps float64
	// EpsProfile optionally raises the threshold per grid point (e.g. a
	// process-tolerance envelope from the tolerance package). When set its
	// length must equal Points; the effective threshold at point i is
	// max(Eps, EpsProfile[i]).
	EpsProfile []float64
	// Points is the number of log-spaced grid points over Ω_reference used
	// to measure detectability regions (default 241).
	Points int
	// MeasFloor is the measurement floor as a fraction of the nominal
	// response peak; deviations where both responses sit below the floor
	// are unmeasurable (default 1e-4 ≈ −80 dB). Set negative to disable.
	MeasFloor float64
	// Region optionally pins Ω_reference; when zero it is derived from the
	// functional circuit per analysis.ReferenceRegion.
	Region analysis.Region
	// Probe is the wide exploratory sweep used to derive the region
	// (default analysis.DefaultProbe).
	Probe analysis.SweepSpec
	// Workers bounds the fault-simulation parallelism (default GOMAXPROCS).
	Workers int
	// IncludeTransparent keeps the transparent configuration in the matrix
	// (default false, as in the paper's passive-fault study).
	IncludeTransparent bool
	// PerConfigRegion derives a fresh Ω_reference from each test
	// configuration's own nominal response instead of sharing the
	// functional configuration's region. The paper's Definition 2 is
	// ambiguous on this point; sharing (the default) keeps ω-detectability
	// values comparable across configurations, per-config regions measure
	// each emulated function on its own terms. Configurations whose region
	// cannot be derived fall back to the shared region.
	PerConfigRegion bool
	// NoEps disables the Eps zero-value default: with NoEps set, an
	// explicit Eps of 0 is honored as a zero tolerance instead of being
	// rewritten to 0.10.
	NoEps bool
	// OnError selects the error policy for failed cells: Degrade
	// (default), FailFast or Retry.
	OnError ErrorPolicy
	// Engine selects the cell simulation strategy: EngineIncremental
	// (default), EngineLowRank or EngineNaive. All modes produce identical
	// Det matrices and Omega values within floating-point noise.
	Engine EngineMode
	// Layout selects the MNA matrix layout for every system the
	// evaluation builds: mna.LayoutAuto (the zero value) applies the fill
	// heuristic per system, mna.LayoutDense and mna.LayoutSparse force
	// one side. The sparse factorization replays the dense elimination
	// bit for bit, so every layout produces identical matrices under
	// every engine mode; the layout is part of the job cache key because
	// it changes the cost, not the answer.
	Layout mna.Layout
	// MaxRetries bounds the per-point jitter attempts of the Retry
	// policy (default 3, clamped to analysis.MaxSingularRetries).
	MaxRetries int
	// Progress, when non-nil, receives a Stats snapshot after every
	// completed cell and a final snapshot (with Elapsed set) when the
	// evaluation finishes. Snapshots are emitted in deterministic cell
	// order regardless of Workers — the k-th snapshot always summarizes
	// cells 0..k-1 — and calls are serialized (never concurrent).
	Progress func(Stats)
	// MaxFollowers, when positive, restricts the matrix to configurations
	// with at most that many opamps in follower mode — the §5 remedy for
	// the fault-simulation bottleneck ("select a first subset of
	// configurations that will be candidate for the simulation process"):
	// 2ⁿ rows collapse to O(n^k). The functional configuration is always
	// included.
	MaxFollowers int
}

// Normalize returns the options with every unset field replaced by its
// documented default: Eps 0.10 (unless NoEps), Points 241, MeasFloor 1e-4
// (negative values clamp to 0, disabling the floor), Probe
// analysis.DefaultProbe, Workers GOMAXPROCS and MaxRetries 3 (clamped to
// analysis.MaxSingularRetries). Normalize is idempotent; the evaluation
// entry points apply it internally, and exporting it lets servers, CLIs
// and cache-key derivations all see the one canonical Options value a
// request will actually run with.
func (o Options) Normalize() Options {
	if o.Eps == 0 && !o.NoEps {
		o.Eps = 0.10
	}
	if o.Points == 0 {
		o.Points = 241
	}
	if o.MeasFloor == 0 {
		o.MeasFloor = 1e-4
	}
	if o.MeasFloor < 0 {
		o.MeasFloor = 0
	}
	if o.Probe.Points == 0 {
		o.Probe = analysis.DefaultProbe
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 3
	}
	if o.MaxRetries > analysis.MaxSingularRetries {
		o.MaxRetries = analysis.MaxSingularRetries
	}
	return o
}

// thresholdAt returns the effective detection threshold for grid point i.
func (o Options) thresholdAt(i int) float64 {
	if i >= 0 && i < len(o.EpsProfile) && o.EpsProfile[i] > o.Eps {
		return o.EpsProfile[i]
	}
	return o.Eps
}

// checkProfile validates EpsProfile against the grid size.
func (o Options) checkProfile(gridLen int) error {
	if len(o.EpsProfile) != 0 && len(o.EpsProfile) != gridLen {
		return fmt.Errorf("detect: EpsProfile has %d points, grid has %d", len(o.EpsProfile), gridLen)
	}
	return nil
}

// FaultEval is the evaluation of one fault in one circuit configuration.
type FaultEval struct {
	Fault fault.Fault
	// Detectable is Definition 1: some in-region frequency deviates by
	// more than ε.
	Detectable bool
	// OmegaDet is Definition 2 in percent: the fraction of Ω_reference
	// (log-frequency measure) where the fault deviates by more than ε.
	OmegaDet float64
	// MaxDev is the largest relative deviation observed in-region.
	MaxDev float64
	// Err records a simulation failure for this cell (nil otherwise); a
	// failed cell counts as not detectable.
	Err error
}

// Row is the evaluation of a full fault list against one circuit.
type Row struct {
	Circuit string
	Evals   []FaultEval
	Region  analysis.Region
	// Stats summarizes the simulation effort behind the row.
	Stats Stats
}

// ErrCount returns the number of evaluations that recorded an error.
func (r *Row) ErrCount() int {
	n := 0
	for _, e := range r.Evals {
		if e.Err != nil {
			n++
		}
	}
	return n
}

// FaultCoverage returns the fraction (0..1) of faults detectable in this
// row alone.
func (r *Row) FaultCoverage() float64 {
	if len(r.Evals) == 0 {
		return 0
	}
	n := 0
	for _, e := range r.Evals {
		if e.Detectable {
			n++
		}
	}
	return float64(n) / float64(len(r.Evals))
}

// AvgOmegaDet returns the mean ω-detectability (percent) over the row.
func (r *Row) AvgOmegaDet() float64 {
	if len(r.Evals) == 0 {
		return 0
	}
	s := 0.0
	for _, e := range r.Evals {
		s += e.OmegaDet
	}
	return s / float64(len(r.Evals))
}

// EvaluateCircuit measures detectability and ω-detectability of every
// fault on a single, fixed circuit (the paper's §2 analysis of the initial
// filter). The reference region is derived from the nominal circuit unless
// pinned in opts. New code should prefer EvaluateCircuitContext, which
// supports cancellation.
func EvaluateCircuit(ckt *circuit.Circuit, faults fault.List, opts Options) (*Row, error) {
	return EvaluateCircuitContext(context.Background(), ckt, faults, opts)
}

// EvaluateCircuitContext is EvaluateCircuit with cancellation: ctx is
// checked between cells (and during the nominal pre-sweep), so an
// in-flight evaluation stops within one cell boundary of ctx being
// cancelled and returns ctx's error.
func EvaluateCircuitContext(ctx context.Context, ckt *circuit.Circuit, faults fault.List, opts Options) (*Row, error) {
	opts = opts.Normalize()
	start := obs.Now()
	sctx, span := obs.Start(ctx, "detect.row")
	span.SetTag("circuit", ckt.Name)
	defer span.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := faults.Validate(); err != nil {
		return nil, err
	}
	region, err := resolveRegion(ckt, opts)
	if err != nil {
		return nil, err
	}
	grid := region.Spec(opts.Points).Grid()
	if err := opts.checkProfile(len(grid)); err != nil {
		return nil, err
	}
	_, nomSpan := obs.Start(sctx, "detect.nominal")
	eng, err := analysis.NewEngineLayout(ckt, opts.Layout)
	if err != nil {
		nomSpan.End()
		return nil, fmt.Errorf("detect: nominal sweep of %q: %w", ckt.Name, err)
	}
	nominal, err := eng.SweepGrid(grid)
	if err != nil {
		nomSpan.End()
		return nil, fmt.Errorf("detect: nominal sweep of %q: %w", ckt.Name, err)
	}
	var base Stats
	if err := accountNominal(eng, nominal, opts, &base); err != nil {
		nomSpan.End()
		return nil, fmt.Errorf("detect: nominal retry of %q: %w", ckt.Name, err)
	}
	nomSpan.End()

	pool := newEnginePool([]*circuit.Circuit{ckt}, opts.Layout)
	pool.put(0, eng)
	cr := newCellRunner(opts.Workers, pool)
	row := &Row{Circuit: ckt.Name, Region: region, Evals: make([]FaultEval, len(faults))}
	tr := newTracker(len(faults), base, opts.Progress)
	cellsCtx, cellSpan := obs.Start(sctx, "detect.cells")
	cellCtx, cancel := cancelContext(cellsCtx, opts)
	runParallel(cellCtx, len(faults), opts.Workers, func(cctx context.Context, w, j int) {
		eval, st := cr.evaluate(cctx, w, 0, ckt, faults[j], nominal, grid, opts)
		row.Evals[j] = eval
		if eval.Err != nil && cancel != nil {
			cancel()
		}
		tr.complete(j, st)
	})
	cellSpan.End()
	if cancel != nil {
		cancel()
	}
	if err := ctx.Err(); err != nil {
		dCancelled.Inc()
		return nil, err
	}
	if opts.OnError == FailFast {
		for j, e := range row.Evals {
			if e.Err != nil {
				dFailFast.Inc()
				return nil, fmt.Errorf("detect: fault %s on %q: %w", faults[j].ID, ckt.Name, e.Err)
			}
		}
	}
	row.Stats = tr.finish(obs.Since(start))
	bridgeStats(row.Stats, opts.OnError)
	if row.Stats.Errors > 0 {
		dlog.Warn("row evaluation degraded", "circuit", ckt.Name, "errors", row.Stats.Errors, "cells", row.Stats.Cells)
	}
	return row, nil
}

// accountNominal folds the cost of a nominal pre-sweep into st and, under
// the Retry policy, re-solves its singular points first (on the engine
// that produced the sweep, so nothing is rebuilt) so every cell compares
// against the best available baseline.
func accountNominal(eng *analysis.Engine, nominal *analysis.Response, opts Options, st *Stats) error {
	st.Solves += nominal.Len()
	if opts.OnError == Retry && nominal.InvalidCount() > 0 {
		recovered, solves, err := eng.RetrySingularPoints(nominal, opts.MaxRetries)
		st.Retries += solves
		st.Solves += solves
		st.Recovered += recovered
		if err != nil {
			return err
		}
	}
	st.SingularPoints += nominal.InvalidCount()
	return nil
}

// cancelContext returns the scheduling context for the configured error
// policy: FailFast gets a cancellable child of ctx (so the first failing
// cell stops the fan-out), every other policy schedules directly on the
// caller's ctx and runs to completion unless the caller cancels.
func cancelContext(ctx context.Context, opts Options) (context.Context, context.CancelFunc) {
	if opts.OnError != FailFast {
		return ctx, nil
	}
	return context.WithCancel(ctx)
}

// resolveRegion returns opts.Region if set, else derives Ω_reference.
func resolveRegion(ckt *circuit.Circuit, opts Options) (analysis.Region, error) {
	if opts.Region != (analysis.Region{}) {
		if err := opts.Region.Validate(); err != nil {
			return analysis.Region{}, err
		}
		return opts.Region, nil
	}
	region, err := analysis.ReferenceRegion(ckt, opts.Probe)
	if err != nil {
		return analysis.Region{}, fmt.Errorf("%w: %v", ErrNoRegion, err)
	}
	return region, nil
}

// cellStats is the per-cell effort record merged by the tracker.
type cellStats struct {
	solves, singular, retries, recovered int
	err                                  bool
}

// scoreCell fills eval's verdict — Definition 1 detectability, the
// ω-detectability percentage and the peak deviation — from a faulty
// response measured against the nominal baseline.
func scoreCell(eval *FaultEval, nominal, resp *analysis.Response, grid []float64, opts Options) error {
	prof, err := analysis.RelativeDeviation(nominal, resp, opts.MeasFloor)
	if err != nil {
		return err
	}
	nDetected := 0
	for i, r := range prof.Rel {
		if r > opts.thresholdAt(i) {
			nDetected++
		}
	}
	eval.Detectable = nDetected > 0
	eval.OmegaDet = 100 * float64(nDetected) / float64(len(grid))
	eval.MaxDev = prof.MaxRel()
	if math.IsInf(eval.MaxDev, 1) {
		eval.MaxDev = math.MaxFloat64
	}
	return nil
}

// fallbackSpan records a marker span for a cell the requested engine
// path could not run. Which cells fall back is a property of the circuit
// and fault list — not of the schedule — so these spans are always
// recorded and the exported tree shape stays deterministic.
func fallbackSpan(ctx context.Context, f fault.Fault, from string) {
	_, s := obs.Start(ctx, "detect.fallback")
	s.SetTag("fault", f.String())
	s.SetTag("from", from)
	s.End()
}

// retrySpan opens a marker span around the jittered re-solve loop of a
// cell with singular points. Singularity is deterministic per cell, so
// the span set is schedule-independent; only durations vary.
func retrySpan(ctx context.Context, f fault.Fault, points int) *obs.Span {
	_, s := obs.Start(ctx, "detect.retry")
	s.SetTag("fault", f.String())
	s.SetTag("points", strconv.Itoa(points))
	return s
}

// endRetrySpan closes a retry span with its outcome.
func endRetrySpan(s *obs.Span, recovered int) {
	s.SetTag("recovered", strconv.Itoa(recovered))
	s.End()
}

// evaluateFault measures one fault against a pre-swept nominal response
// and accounts the simulation effort — the naive path: the circuit is
// cloned and a fresh MNA system built for the cell. A nominal baseline
// with no valid points makes every comparison meaningless (the deviation
// profile is identically zero), so the cell records an error instead of a
// silent "undetectable".
func evaluateFault(ctx context.Context, ckt *circuit.Circuit, f fault.Fault, nominal *analysis.Response, grid []float64, opts Options) (FaultEval, cellStats) {
	eval := FaultEval{Fault: f}
	var st cellStats
	fail := func(err error) (FaultEval, cellStats) {
		eval.Err = err
		st.err = true
		return eval, st
	}
	if nominal.ValidCount() == 0 {
		return fail(fmt.Errorf("detect: nominal response of %q: %w", ckt.Name, analysis.ErrAllInvalid))
	}
	faulty, err := f.Apply(ckt)
	if err != nil {
		return fail(err)
	}
	// A throwaway engine per cell keeps this the reference path (fresh
	// clone, fresh system) while still honoring the requested layout;
	// reusing it for the retry below skips only a redundant rebuild.
	feng, err := analysis.NewEngineLayout(faulty, opts.Layout)
	if err != nil {
		return fail(err)
	}
	resp, err := feng.SweepGrid(grid)
	if err != nil {
		return fail(err)
	}
	st.solves += len(grid)
	if opts.OnError == Retry && resp.InvalidCount() > 0 {
		rs := retrySpan(ctx, f, resp.InvalidCount())
		recovered, solves, rerr := feng.RetrySingularPoints(resp, opts.MaxRetries)
		endRetrySpan(rs, recovered)
		st.retries += solves
		st.solves += solves
		st.recovered += recovered
		if rerr != nil {
			return fail(rerr)
		}
	}
	st.singular += resp.InvalidCount()
	if err := scoreCell(&eval, nominal, resp, grid, opts); err != nil {
		return fail(err)
	}
	return eval, st
}

// evaluateFaultIncremental measures one fault by patching it into the
// worker's live engine: no circuit clone, no system rebuild, no per-cell
// allocation beyond the response buffers. Faults the engine cannot patch
// fall back to the naive clone path (counted in engine_fallback_total),
// so both engine modes always evaluate the same cell set.
func evaluateFaultIncremental(ctx context.Context, eng *analysis.Engine, ckt *circuit.Circuit, f fault.Fault, nominal *analysis.Response, grid []float64, opts Options) (FaultEval, cellStats) {
	eval := FaultEval{Fault: f}
	var st cellStats
	fail := func(err error) (FaultEval, cellStats) {
		eval.Err = err
		st.err = true
		return eval, st
	}
	if nominal.ValidCount() == 0 {
		return fail(fmt.Errorf("detect: nominal response of %q: %w", ckt.Name, analysis.ErrAllInvalid))
	}
	if err := eng.ApplyFault(f); err != nil {
		dEngineFallback.Inc()
		fallbackSpan(ctx, f, "incremental")
		return evaluateFault(ctx, ckt, f, nominal, grid, opts)
	}
	defer eng.Reset()
	resp, err := eng.SweepGrid(grid)
	if err != nil {
		return fail(err)
	}
	st.solves += len(grid)
	if opts.OnError == Retry && resp.InvalidCount() > 0 {
		// The fault is still applied, so the jittered re-solves run on the
		// faulty system, exactly as the naive path's retry does.
		rs := retrySpan(ctx, f, resp.InvalidCount())
		recovered, solves, rerr := eng.RetrySingularPoints(resp, opts.MaxRetries)
		endRetrySpan(rs, recovered)
		st.retries += solves
		st.solves += solves
		st.recovered += recovered
		if rerr != nil {
			return fail(rerr)
		}
	}
	st.singular += resp.InvalidCount()
	if err := scoreCell(&eval, nominal, resp, grid, opts); err != nil {
		return fail(err)
	}
	return eval, st
}

// evaluateFaultLowRank measures one fault via the Sherman–Morrison path:
// the worker's engine factors the nominal matrix once per grid point (the
// cache persists across every fault on the same grid, so the faults
// effectively iterate inside each (configuration, ω) factorization) and
// each rank-1 fault solves against it in O(n²). Faults that cannot patch
// at all, or whose stamp delta is not a single outer product, fall back
// to the incremental path (counted in engine_fallback_total) — which in
// turn can fall back to the naive clone path — so every engine mode
// evaluates exactly the same cell set.
func evaluateFaultLowRank(ctx context.Context, eng *analysis.Engine, ckt *circuit.Circuit, f fault.Fault, nominal *analysis.Response, grid []float64, opts Options) (FaultEval, cellStats) {
	eval := FaultEval{Fault: f}
	var st cellStats
	fail := func(err error) (FaultEval, cellStats) {
		eval.Err = err
		st.err = true
		return eval, st
	}
	if nominal.ValidCount() == 0 {
		return fail(fmt.Errorf("detect: nominal response of %q: %w", ckt.Name, analysis.ErrAllInvalid))
	}
	lf, err := eng.PrepareLowRank(f)
	if err != nil {
		dEngineFallback.Inc()
		fallbackSpan(ctx, f, "lowrank")
		return evaluateFaultIncremental(ctx, eng, ckt, f, nominal, grid, opts)
	}
	eng.SetTraceContext(ctx)
	defer eng.SetTraceContext(nil)
	resp, err := eng.SweepLowRank(lf, grid)
	if err != nil {
		return fail(err)
	}
	st.solves += len(grid)
	if opts.OnError == Retry && resp.InvalidCount() > 0 {
		// Re-apply the fault as an ordinary patch so the jittered re-solves
		// run on the faulty system, exactly as the other paths' retries do.
		if err := eng.ApplyFault(f); err != nil {
			return fail(err)
		}
		rs := retrySpan(ctx, f, resp.InvalidCount())
		recovered, solves, rerr := eng.RetrySingularPoints(resp, opts.MaxRetries)
		eng.Reset()
		endRetrySpan(rs, recovered)
		st.retries += solves
		st.solves += solves
		st.recovered += recovered
		if rerr != nil {
			return fail(rerr)
		}
	}
	st.singular += resp.InvalidCount()
	if err := scoreCell(&eval, nominal, resp, grid, opts); err != nil {
		return fail(err)
	}
	return eval, st
}

// enginePool hands out per-configuration engines. The nominal phase seeds
// it with the engine it built for each configuration; when several
// workers land on the same configuration the extras are built lazily,
// at most once per (worker, configuration) thanks to the cellRunner
// caches.
type enginePool struct {
	mu     sync.Mutex
	free   [][]*analysis.Engine
	ckts   []*circuit.Circuit
	layout mna.Layout
}

// newEnginePool creates an empty pool over the per-configuration
// circuits; lazily built engines use the same matrix layout as the
// seeded ones.
func newEnginePool(ckts []*circuit.Circuit, layout mna.Layout) *enginePool {
	return &enginePool{free: make([][]*analysis.Engine, len(ckts)), ckts: ckts, layout: layout}
}

// put returns an engine for configuration i to the pool.
func (p *enginePool) put(i int, e *analysis.Engine) {
	p.mu.Lock()
	p.free[i] = append(p.free[i], e)
	p.mu.Unlock()
}

// get hands out a free engine for configuration i, building one when the
// pool is empty.
func (p *enginePool) get(i int) (*analysis.Engine, error) {
	p.mu.Lock()
	if s := p.free[i]; len(s) > 0 {
		e := s[len(s)-1]
		p.free[i] = s[:len(s)-1]
		p.mu.Unlock()
		return e, nil
	}
	p.mu.Unlock()
	return analysis.NewEngineLayout(p.ckts[i], p.layout)
}

// cellRunner dispatches cell evaluations to the configured engine mode.
// Engines are not safe for concurrent use, so each worker keeps its own
// cache of engines keyed by configuration index, fed from the shared
// pool; caches[w] is touched only by worker w and needs no lock.
type cellRunner struct {
	pool   *enginePool
	caches []map[int]*analysis.Engine
}

// newCellRunner prepares per-worker engine caches over the pool.
func newCellRunner(workers int, pool *enginePool) *cellRunner {
	caches := make([]map[int]*analysis.Engine, workers)
	for w := range caches {
		caches[w] = make(map[int]*analysis.Engine)
	}
	return &cellRunner{pool: pool, caches: caches}
}

// evaluate runs the (configuration cfg, fault f) cell on worker w. When
// timing is on it also records the cell's wall latency under the
// requested engine mode and offers it to the slow-cell exemplar store,
// stamped with the trace ID carried by ctx.
func (cr *cellRunner) evaluate(ctx context.Context, w, cfg int, ckt *circuit.Circuit, f fault.Fault, nominal *analysis.Response, grid []float64, opts Options) (FaultEval, cellStats) {
	timed := obs.TimingOn()
	var t0 time.Time
	if timed {
		t0 = obs.Now()
	}
	eval, st := cr.dispatch(ctx, w, cfg, ckt, f, nominal, grid, opts)
	if timed {
		mode := opts.Engine.String()
		el := obs.Since(t0).Seconds()
		dCellSeconds.With(mode).Observe(el)
		id := ""
		if tc := obs.TraceFrom(ctx); !tc.IsZero() {
			id = tc.TraceIDString()
		}
		dSlowCells.Offer(el, id, mode)
	}
	return eval, st
}

// dispatch routes the cell to the configured engine path.
func (cr *cellRunner) dispatch(ctx context.Context, w, cfg int, ckt *circuit.Circuit, f fault.Fault, nominal *analysis.Response, grid []float64, opts Options) (FaultEval, cellStats) {
	if opts.Engine == EngineNaive {
		return evaluateFault(ctx, ckt, f, nominal, grid, opts)
	}
	eng, ok := cr.caches[w][cfg]
	if !ok {
		var err error
		eng, err = cr.pool.get(cfg)
		if err != nil {
			// The nominal phase already built an engine for this exact
			// circuit, so a failure here is exceptional; degrade to the
			// naive path rather than invent a new error channel.
			dEngineFallback.Inc()
			fallbackSpan(ctx, f, "pool")
			return evaluateFault(ctx, ckt, f, nominal, grid, opts)
		}
		cr.caches[w][cfg] = eng
	}
	if opts.Engine == EngineLowRank {
		return evaluateFaultLowRank(ctx, eng, ckt, f, nominal, grid, opts)
	}
	return evaluateFaultIncremental(ctx, eng, ckt, f, nominal, grid, opts)
}

// CellError is a structured record of one failed matrix cell: which
// configuration, which fault, and why the simulation failed.
type CellError struct {
	// Config is the matrix row (test configuration) of the failed cell.
	Config dft.Configuration
	// FaultIndex is the matrix column.
	FaultIndex int
	// Fault is the fault at that column.
	Fault fault.Fault
	// Err is the underlying simulation failure.
	Err error
}

// Error implements the error interface.
func (e CellError) Error() string {
	return fmt.Sprintf("detect: cell %s/%s: %v", e.Config.Label(), e.Fault.ID, e.Err)
}

// Unwrap exposes the underlying cause.
func (e CellError) Unwrap() error { return e.Err }

// Matrix is the fault detectability matrix of §3.2: one row per test
// configuration, one column per fault, with both the boolean detectability
// coefficients d[i][j] (Figure 5) and the ω-detectability values
// (Table 2).
type Matrix struct {
	// Source names the circuit the matrix was measured on.
	Source string
	// Configs lists the row configurations in order.
	Configs []dft.Configuration
	// Faults lists the column faults in order.
	Faults fault.List
	// Det[i][j] is true when fault j is detectable in configuration i.
	Det [][]bool
	// Omega[i][j] is the ω-detectability (percent) of fault j in
	// configuration i.
	Omega [][]float64
	// Region is the Ω_reference used for every cell.
	Region analysis.Region
	// CellErrors records every cell whose simulation failed (its d[i][j]
	// is recorded as undetectable), in row-major cell order. The set is
	// identical for any Workers value; an empty slice means every cell
	// was actually measured.
	CellErrors []CellError
	// Stats summarizes the simulation effort behind the matrix.
	Stats Stats
}

// NumCellErrs returns the number of cells whose simulation failed.
func (m *Matrix) NumCellErrs() int { return len(m.CellErrors) }

// BuildMatrix fault-simulates every configuration of the modified circuit
// against the fault list. The reference region is derived once from the
// functional configuration (unless pinned) so that ω-detectability values
// are comparable across configurations, then reused for every row. New
// code should prefer BuildMatrixContext, which supports cancellation.
func BuildMatrix(m *dft.Modified, faults fault.List, opts Options) (*Matrix, error) {
	return BuildMatrixContext(context.Background(), m, faults, opts)
}

// BuildMatrixContext is BuildMatrix with cancellation: ctx is checked
// between (configuration, fault) cells and between the per-configuration
// nominal pre-sweeps, so an in-flight matrix build stops within one cell
// boundary of ctx being cancelled and returns ctx's error.
func BuildMatrixContext(ctx context.Context, m *dft.Modified, faults fault.List, opts Options) (*Matrix, error) {
	return buildMatrixRange(ctx, m, faults, opts, 0, -1)
}

// buildMatrixRange is the matrix builder shared by BuildMatrixContext
// (lo=0, hi=-1: every configuration) and BuildMatrixRangeContext. lo and
// hi index the filtered configuration list; hi<0 means "to the end". The
// reference region is always derived from the functional configuration
// (unless pinned), never from the range, so every shard of one matrix
// measures against the same Ω_reference and grid.
func buildMatrixRange(ctx context.Context, m *dft.Modified, faults fault.List, opts Options, lo, hi int) (*Matrix, error) {
	opts = opts.Normalize()
	start := obs.Now()
	sctx, span := obs.Start(ctx, "detect.matrix")
	span.SetTag("source", m.Base.Name)
	defer span.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := faults.Validate(); err != nil {
		return nil, err
	}
	functional, err := m.Configure(dft.Configuration{Index: 0, N: m.N()})
	if err != nil {
		return nil, err
	}
	region, err := resolveRegion(functional, opts)
	if err != nil {
		return nil, err
	}
	configs := matrixConfigs(m, opts)
	if hi < 0 {
		hi = len(configs)
	}
	if lo != 0 || hi != len(configs) {
		span.SetTag("rows", fmt.Sprintf("[%d,%d)", lo, hi))
	}
	configs = configs[lo:hi]

	mx := &Matrix{
		Source:  m.Base.Name,
		Configs: configs,
		Faults:  faults,
		Det:     make([][]bool, len(configs)),
		Omega:   make([][]float64, len(configs)),
		Region:  region,
	}
	for i := range configs {
		mx.Det[i] = make([]bool, len(faults))
		mx.Omega[i] = make([]float64, len(faults))
	}

	grid := region.Spec(opts.Points).Grid()
	if err := opts.checkProfile(len(grid)); err != nil {
		return nil, err
	}

	// Pre-sweep nominal responses per configuration (cheap, sequential),
	// then fan out the (config, fault) cells. With PerConfigRegion each
	// row gets its own grid; otherwise all rows share the functional
	// region's grid. The engines built here are kept: they seed the pool
	// the incremental cell loop draws from.
	nominals := make([]*analysis.Response, len(configs))
	circuits := make([]*circuit.Circuit, len(configs))
	grids := make([][]float64, len(configs))
	engines := make([]*analysis.Engine, len(configs))
	var base Stats
	_, nomSpan := obs.Start(sctx, "detect.nominals")
	for i, cfg := range configs {
		if err := ctx.Err(); err != nil {
			nomSpan.End()
			dCancelled.Inc()
			return nil, err
		}
		ckt, err := m.Configure(cfg)
		if err != nil {
			nomSpan.End()
			return nil, err
		}
		rowGrid := grid
		if opts.PerConfigRegion {
			if rowRegion, err := analysis.ReferenceRegion(ckt, opts.Probe); err == nil {
				rowGrid = rowRegion.Spec(opts.Points).Grid()
			}
		}
		eng, err := analysis.NewEngineLayout(ckt, opts.Layout)
		if err != nil {
			nomSpan.End()
			return nil, fmt.Errorf("detect: nominal sweep of %s: %w", cfg, err)
		}
		nom, err := eng.SweepGrid(rowGrid)
		if err != nil {
			nomSpan.End()
			return nil, fmt.Errorf("detect: nominal sweep of %s: %w", cfg, err)
		}
		if err := accountNominal(eng, nom, opts, &base); err != nil {
			nomSpan.End()
			return nil, fmt.Errorf("detect: nominal retry of %s: %w", cfg, err)
		}
		circuits[i], nominals[i], grids[i], engines[i] = ckt, nom, rowGrid, eng
	}
	nomSpan.End()
	pool := newEnginePool(circuits, opts.Layout)
	for i, eng := range engines {
		pool.put(i, eng)
	}
	cr := newCellRunner(opts.Workers, pool)

	type cell struct{ i, j int }
	cells := make([]cell, 0, len(configs)*len(faults))
	for i := range configs {
		for j := range faults {
			cells = append(cells, cell{i, j})
		}
	}
	// Fan out. Each cell writes only its own results slot; the tracker
	// reduces stats behind a mutex in cell order, so the whole engine is
	// clean under -race and deterministic for any worker count.
	type cellResult struct {
		eval FaultEval
		done bool
	}
	results := make([]cellResult, len(cells))
	tr := newTracker(len(cells), base, opts.Progress)
	cellsCtx, cellSpan := obs.Start(sctx, "detect.cells")
	cellSpan.SetTag("cells", fmt.Sprint(len(cells)))
	cellCtx, cancel := cancelContext(cellsCtx, opts)
	runParallel(cellCtx, len(cells), opts.Workers, func(cctx context.Context, w, k int) {
		c := cells[k]
		eval, st := cr.evaluate(cctx, w, c.i, circuits[c.i], faults[c.j], nominals[c.i], grids[c.i], opts)
		results[k] = cellResult{eval: eval, done: true}
		if eval.Err != nil && cancel != nil {
			cancel()
		}
		tr.complete(k, st)
	})
	cellSpan.End()
	if cancel != nil {
		cancel()
	}
	if err := ctx.Err(); err != nil {
		dCancelled.Inc()
		return nil, err
	}
	if opts.OnError == FailFast {
		// Return the lowest-index completed failure as a structured
		// CellError. With Workers=1 this is exactly the first failing
		// cell; with more workers a later cell may have raced ahead, but
		// some cell error is always reported.
		for k, r := range results {
			if r.done && r.eval.Err != nil {
				c := cells[k]
				dFailFast.Inc()
				return nil, CellError{Config: configs[c.i], FaultIndex: c.j, Fault: faults[c.j], Err: r.eval.Err}
			}
		}
	}
	for k, r := range results {
		c := cells[k]
		mx.Det[c.i][c.j] = r.eval.Detectable
		mx.Omega[c.i][c.j] = r.eval.OmegaDet
		if r.eval.Err != nil {
			mx.CellErrors = append(mx.CellErrors,
				CellError{Config: configs[c.i], FaultIndex: c.j, Fault: faults[c.j], Err: r.eval.Err})
		}
	}
	mx.Stats = tr.finish(obs.Since(start))
	bridgeStats(mx.Stats, opts.OnError)
	if n := len(mx.CellErrors); n > 0 {
		dlog.Warn("matrix degraded", "source", mx.Source, "failed_cells", n, "cells", len(cells))
	}
	return mx, nil
}

// tracker merges per-cell stats and emits Progress snapshots in cell
// order: cell k's stats are folded in only after cells 0..k-1, so the
// snapshot sequence is a deterministic function of the cell results,
// independent of worker count and completion order.
type tracker struct {
	mu       sync.Mutex
	frontier int
	done     []bool
	pending  []cellStats
	stats    Stats
	progress func(Stats)
}

// newTracker starts a tracker over the given number of cells, seeded with
// the pre-sweep accounting in base.
func newTracker(cells int, base Stats, progress func(Stats)) *tracker {
	base.Cells = cells
	return &tracker{
		done:     make([]bool, cells),
		pending:  make([]cellStats, cells),
		stats:    base,
		progress: progress,
	}
}

// complete records cell k's stats and advances the in-order frontier,
// emitting one Progress snapshot per newly contiguous cell.
func (t *tracker) complete(k int, cs cellStats) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done[k] = true
	t.pending[k] = cs
	for t.frontier < len(t.done) && t.done[t.frontier] {
		cs := t.pending[t.frontier]
		t.frontier++
		t.stats.CellsDone++
		t.stats.Solves += cs.solves
		t.stats.SingularPoints += cs.singular
		t.stats.Retries += cs.retries
		t.stats.Recovered += cs.recovered
		if cs.err {
			t.stats.Errors++
		}
		if t.progress != nil {
			t.progress(t.stats)
		}
	}
}

// finish stamps the wall time, emits the final snapshot and returns it.
// Call only after every worker has returned.
func (t *tracker) finish(elapsed time.Duration) Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Elapsed = elapsed
	if t.progress != nil {
		t.progress(t.stats)
	}
	return t.stats
}

// runParallel executes fn(ctx, worker, 0..n-1) over at most workers
// goroutines using a chunked scheduler: indices are claimed in fixed-size
// contiguous chunks off an atomic cursor. The worker index (0..workers-1)
// lets fn keep per-worker state — the cell runner's engine caches —
// without locking; fn must write only to index-distinct state beyond that
// (shared accounting goes through the tracker's mutex), which keeps the
// engine race-clean and its results independent of worker count.
// Cancelling ctx stops workers from starting new cells; cells already in
// flight finish.
//
// When obs timing is on the scheduler also reports its own health: chunk
// latency and size histograms, per-worker busy fractions, and a
// "detect.chunk" span per claimed chunk (nested under the caller's span
// via ctx, so job traces show where cell time went). All of it is
// schedule-dependent by nature — which chunks exist depends on the worker
// count and the race for the cursor — so none of it is collected with
// timing off, keeping traces and registry snapshots deterministic.
func runParallel(ctx context.Context, n, workers int, fn func(ctx context.Context, worker, i int)) {
	if workers > n {
		workers = n
	}
	timed := obs.TimingOn()
	if workers <= 1 {
		cctx := ctx
		if timed {
			dWorkers.Set(1)
			var cs *obs.Span
			cctx, cs = obs.Start(ctx, "detect.chunk")
			cs.SetTag("worker", "0")
			cs.SetTag("cells", fmt.Sprint(n))
			t0 := obs.Now()
			defer func() {
				el := obs.Since(t0)
				dChunkSeconds.Observe(el.Seconds())
				dChunkCells.Observe(float64(n))
				dWorkerBusy.Observe(1)
				cs.End()
			}()
		}
		for i := 0; i < n; i++ {
			if ctx != nil && ctx.Err() != nil {
				return
			}
			fn(cctx, 0, i)
		}
		return
	}
	if timed {
		dWorkers.Set(float64(workers))
	}
	// A few chunks per worker balances scheduling overhead against the
	// tail latency of unlucky (slow) cells.
	chunk := n / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	fanStart := obs.Now()
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			var busy time.Duration
			if timed {
				defer func() {
					if total := obs.Since(fanStart); total > 0 {
						dWorkerBusy.Observe(busy.Seconds() / total.Seconds())
					}
				}()
			}
			for {
				if ctx != nil && ctx.Err() != nil {
					return
				}
				start := int(cursor.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				cctx := ctx
				var c0 time.Time
				var cs *obs.Span
				if timed {
					c0 = obs.Now()
					cctx, cs = obs.Start(ctx, "detect.chunk")
					cs.SetTag("worker", fmt.Sprint(worker))
					cs.SetTag("cells", fmt.Sprint(end-start))
				}
				for i := start; i < end; i++ {
					if ctx != nil && ctx.Err() != nil {
						cs.End()
						return
					}
					fn(cctx, worker, i)
				}
				if timed {
					cs.End()
					el := obs.Since(c0)
					busy += el
					dChunkSeconds.Observe(el.Seconds())
					dChunkCells.Observe(float64(end - start))
				}
			}
		}(w)
	}
	wg.Wait()
}

// NumConfigs returns the number of matrix rows.
func (m *Matrix) NumConfigs() int { return len(m.Configs) }

// NumFaults returns the number of matrix columns.
func (m *Matrix) NumFaults() int { return len(m.Faults) }

// ConfigByLabel returns the row index of the configuration with the given
// label (e.g. "C2"), or -1.
func (m *Matrix) ConfigByLabel(label string) int {
	for i, c := range m.Configs {
		if c.Label() == label {
			return i
		}
	}
	return -1
}

// DetectableAnywhere reports whether fault j is detectable in at least one
// configuration.
func (m *Matrix) DetectableAnywhere(j int) bool {
	for i := range m.Configs {
		if m.Det[i][j] {
			return true
		}
	}
	return false
}

// FaultCoverage returns the maximum achievable fault coverage (0..1):
// the fraction of faults detectable in at least one configuration.
func (m *Matrix) FaultCoverage() float64 {
	if m.NumFaults() == 0 {
		return 0
	}
	n := 0
	for j := range m.Faults {
		if m.DetectableAnywhere(j) {
			n++
		}
	}
	return float64(n) / float64(m.NumFaults())
}

// CoverageOf returns the fault coverage achieved by the given subset of
// row indices.
func (m *Matrix) CoverageOf(rows []int) float64 {
	if m.NumFaults() == 0 {
		return 0
	}
	n := 0
	for j := range m.Faults {
		for _, i := range rows {
			if i >= 0 && i < len(m.Det) && m.Det[i][j] {
				n++
				break
			}
		}
	}
	return float64(n) / float64(m.NumFaults())
}

// BestOmega returns, per fault, the maximum ω-detectability across the
// given rows (all rows when rows is nil) — the paper's "best case" testing
// assumption (Graph 2).
func (m *Matrix) BestOmega(rows []int) []float64 {
	if rows == nil {
		rows = make([]int, m.NumConfigs())
		for i := range rows {
			rows[i] = i
		}
	}
	out := make([]float64, m.NumFaults())
	for j := range out {
		best := 0.0
		for _, i := range rows {
			if i >= 0 && i < len(m.Omega) && m.Omega[i][j] > best {
				best = m.Omega[i][j]
			}
		}
		out[j] = best
	}
	return out
}

// AvgBestOmega returns the average over faults of the best-case
// ω-detectability across the given rows (all when nil) — the paper's
// ⟨ω-det⟩ figure of merit.
func (m *Matrix) AvgBestOmega(rows []int) float64 {
	best := m.BestOmega(rows)
	if len(best) == 0 {
		return 0
	}
	s := 0.0
	for _, b := range best {
		s += b
	}
	return s / float64(len(best))
}

// Row extracts one configuration's evaluations as a Row, including any
// per-cell errors recorded for that configuration.
func (m *Matrix) RowOf(i int) (*Row, error) {
	if i < 0 || i >= m.NumConfigs() {
		return nil, fmt.Errorf("detect: row %d out of range", i)
	}
	row := &Row{Circuit: fmt.Sprintf("%s@%s", m.Source, m.Configs[i].Label()), Region: m.Region}
	for j, f := range m.Faults {
		eval := FaultEval{
			Fault:      f,
			Detectable: m.Det[i][j],
			OmegaDet:   m.Omega[i][j],
		}
		for _, ce := range m.CellErrors {
			if ce.Config == m.Configs[i] && ce.FaultIndex == j {
				eval.Err = ce.Err
				break
			}
		}
		row.Evals = append(row.Evals, eval)
	}
	return row, nil
}

// SubMatrix returns a new matrix restricted to the given row indices (in
// the given order), sharing fault columns and region.
func (m *Matrix) SubMatrix(rows []int) (*Matrix, error) {
	out := &Matrix{
		Source: m.Source,
		Faults: m.Faults,
		Region: m.Region,
	}
	for _, i := range rows {
		if i < 0 || i >= m.NumConfigs() {
			return nil, fmt.Errorf("detect: row %d out of range", i)
		}
		out.Configs = append(out.Configs, m.Configs[i])
		out.Det = append(out.Det, m.Det[i])
		out.Omega = append(out.Omega, m.Omega[i])
		for _, ce := range m.CellErrors {
			if ce.Config == m.Configs[i] {
				out.CellErrors = append(out.CellErrors, ce)
			}
		}
	}
	return out, nil
}

// WorstCasePerComponent merges a bipolar evaluation (fault IDs generated
// by fault.BipolarDeviationUniverse: "f<comp>+" and "f<comp>-") into one
// worst-case evaluation per component: detectable when either deviation
// direction is, ω-detectability and max deviation taken as the maxima.
// Faults without the +/- suffix pairing pass through unchanged.
func WorstCasePerComponent(row *Row) *Row {
	out := &Row{Circuit: row.Circuit + " (worst case)", Region: row.Region}
	merged := make(map[string]int) // component -> index in out.Evals
	for _, e := range row.Evals {
		id := e.Fault.ID
		base := id
		if n := len(id); n > 1 && (id[n-1] == '+' || id[n-1] == '-') {
			base = id[:n-1]
		}
		if idx, ok := merged[base]; ok {
			prev := &out.Evals[idx]
			prev.Detectable = prev.Detectable || e.Detectable
			if e.OmegaDet > prev.OmegaDet {
				prev.OmegaDet = e.OmegaDet
			}
			if e.MaxDev > prev.MaxDev {
				prev.MaxDev = e.MaxDev
			}
			if prev.Err == nil {
				prev.Err = e.Err
			}
			continue
		}
		merged[base] = len(out.Evals)
		we := e
		we.Fault.ID = base
		out.Evals = append(out.Evals, we)
	}
	return out
}
