// Package detect implements the testability evaluation of §2 and §3 of the
// paper: boolean fault detectability (Definition 1), ω-detectability
// (Definition 2) and the fault detectability matrix across the test
// configurations of a DFT-modified circuit (Figure 5 / Table 2).
//
// Fault simulation is embarrassingly parallel: each (configuration, fault)
// cell requires an independent AC sweep of a faulty circuit clone, so the
// engine fans the cells out over a worker pool and reduces the results
// into fixed matrix positions, keeping the output deterministic.
package detect

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"analogdft/internal/analysis"
	"analogdft/internal/circuit"
	"analogdft/internal/dft"
	"analogdft/internal/fault"
)

// ErrNoRegion is returned when no reference region can be established for
// the circuit under analysis.
var ErrNoRegion = errors.New("detect: no reference region")

// Options parameterizes the testability evaluation.
type Options struct {
	// Eps is the relative tolerance ε of Definition 1 (default 0.10: the
	// paper's "arbitrarily fixed at 10%").
	Eps float64
	// EpsProfile optionally raises the threshold per grid point (e.g. a
	// process-tolerance envelope from the tolerance package). When set its
	// length must equal Points; the effective threshold at point i is
	// max(Eps, EpsProfile[i]).
	EpsProfile []float64
	// Points is the number of log-spaced grid points over Ω_reference used
	// to measure detectability regions (default 241).
	Points int
	// MeasFloor is the measurement floor as a fraction of the nominal
	// response peak; deviations where both responses sit below the floor
	// are unmeasurable (default 1e-4 ≈ −80 dB). Set negative to disable.
	MeasFloor float64
	// Region optionally pins Ω_reference; when zero it is derived from the
	// functional circuit per analysis.ReferenceRegion.
	Region analysis.Region
	// Probe is the wide exploratory sweep used to derive the region
	// (default analysis.DefaultProbe).
	Probe analysis.SweepSpec
	// Workers bounds the fault-simulation parallelism (default GOMAXPROCS).
	Workers int
	// IncludeTransparent keeps the transparent configuration in the matrix
	// (default false, as in the paper's passive-fault study).
	IncludeTransparent bool
	// PerConfigRegion derives a fresh Ω_reference from each test
	// configuration's own nominal response instead of sharing the
	// functional configuration's region. The paper's Definition 2 is
	// ambiguous on this point; sharing (the default) keeps ω-detectability
	// values comparable across configurations, per-config regions measure
	// each emulated function on its own terms. Configurations whose region
	// cannot be derived fall back to the shared region.
	PerConfigRegion bool
	// MaxFollowers, when positive, restricts the matrix to configurations
	// with at most that many opamps in follower mode — the §5 remedy for
	// the fault-simulation bottleneck ("select a first subset of
	// configurations that will be candidate for the simulation process"):
	// 2ⁿ rows collapse to O(n^k). The functional configuration is always
	// included.
	MaxFollowers int
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Eps == 0 {
		o.Eps = 0.10
	}
	if o.Points == 0 {
		o.Points = 241
	}
	if o.MeasFloor == 0 {
		o.MeasFloor = 1e-4
	}
	if o.MeasFloor < 0 {
		o.MeasFloor = 0
	}
	if o.Probe.Points == 0 {
		o.Probe = analysis.DefaultProbe
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// thresholdAt returns the effective detection threshold for grid point i.
func (o Options) thresholdAt(i int) float64 {
	if i >= 0 && i < len(o.EpsProfile) && o.EpsProfile[i] > o.Eps {
		return o.EpsProfile[i]
	}
	return o.Eps
}

// checkProfile validates EpsProfile against the grid size.
func (o Options) checkProfile(gridLen int) error {
	if len(o.EpsProfile) != 0 && len(o.EpsProfile) != gridLen {
		return fmt.Errorf("detect: EpsProfile has %d points, grid has %d", len(o.EpsProfile), gridLen)
	}
	return nil
}

// FaultEval is the evaluation of one fault in one circuit configuration.
type FaultEval struct {
	Fault fault.Fault
	// Detectable is Definition 1: some in-region frequency deviates by
	// more than ε.
	Detectable bool
	// OmegaDet is Definition 2 in percent: the fraction of Ω_reference
	// (log-frequency measure) where the fault deviates by more than ε.
	OmegaDet float64
	// MaxDev is the largest relative deviation observed in-region.
	MaxDev float64
	// Err records a simulation failure for this cell (nil otherwise); a
	// failed cell counts as not detectable.
	Err error
}

// Row is the evaluation of a full fault list against one circuit.
type Row struct {
	Circuit string
	Evals   []FaultEval
	Region  analysis.Region
}

// FaultCoverage returns the fraction (0..1) of faults detectable in this
// row alone.
func (r *Row) FaultCoverage() float64 {
	if len(r.Evals) == 0 {
		return 0
	}
	n := 0
	for _, e := range r.Evals {
		if e.Detectable {
			n++
		}
	}
	return float64(n) / float64(len(r.Evals))
}

// AvgOmegaDet returns the mean ω-detectability (percent) over the row.
func (r *Row) AvgOmegaDet() float64 {
	if len(r.Evals) == 0 {
		return 0
	}
	s := 0.0
	for _, e := range r.Evals {
		s += e.OmegaDet
	}
	return s / float64(len(r.Evals))
}

// EvaluateCircuit measures detectability and ω-detectability of every
// fault on a single, fixed circuit (the paper's §2 analysis of the initial
// filter). The reference region is derived from the nominal circuit unless
// pinned in opts.
func EvaluateCircuit(ckt *circuit.Circuit, faults fault.List, opts Options) (*Row, error) {
	opts = opts.withDefaults()
	if err := faults.Validate(); err != nil {
		return nil, err
	}
	region, err := resolveRegion(ckt, opts)
	if err != nil {
		return nil, err
	}
	grid := region.Spec(opts.Points).Grid()
	if err := opts.checkProfile(len(grid)); err != nil {
		return nil, err
	}
	nominal, err := analysis.SweepOnGrid(ckt, grid)
	if err != nil {
		return nil, fmt.Errorf("detect: nominal sweep of %q: %w", ckt.Name, err)
	}
	row := &Row{Circuit: ckt.Name, Region: region, Evals: make([]FaultEval, len(faults))}
	runParallel(len(faults), opts.Workers, func(j int) {
		row.Evals[j] = evaluateFault(ckt, faults[j], nominal, grid, opts)
	})
	return row, nil
}

// resolveRegion returns opts.Region if set, else derives Ω_reference.
func resolveRegion(ckt *circuit.Circuit, opts Options) (analysis.Region, error) {
	if opts.Region != (analysis.Region{}) {
		if err := opts.Region.Validate(); err != nil {
			return analysis.Region{}, err
		}
		return opts.Region, nil
	}
	region, err := analysis.ReferenceRegion(ckt, opts.Probe)
	if err != nil {
		return analysis.Region{}, fmt.Errorf("%w: %v", ErrNoRegion, err)
	}
	return region, nil
}

// evaluateFault measures one fault against a pre-swept nominal response.
func evaluateFault(ckt *circuit.Circuit, f fault.Fault, nominal *analysis.Response, grid []float64, opts Options) FaultEval {
	eval := FaultEval{Fault: f}
	faulty, err := f.Apply(ckt)
	if err != nil {
		eval.Err = err
		return eval
	}
	resp, err := analysis.SweepOnGrid(faulty, grid)
	if err != nil {
		eval.Err = err
		return eval
	}
	prof, err := analysis.RelativeDeviation(nominal, resp, opts.MeasFloor)
	if err != nil {
		eval.Err = err
		return eval
	}
	nDetected := 0
	for i, r := range prof.Rel {
		if r > opts.thresholdAt(i) {
			nDetected++
		}
	}
	eval.Detectable = nDetected > 0
	eval.OmegaDet = 100 * float64(nDetected) / float64(len(grid))
	eval.MaxDev = prof.MaxRel()
	if math.IsInf(eval.MaxDev, 1) {
		eval.MaxDev = math.MaxFloat64
	}
	return eval
}

// Matrix is the fault detectability matrix of §3.2: one row per test
// configuration, one column per fault, with both the boolean detectability
// coefficients d[i][j] (Figure 5) and the ω-detectability values
// (Table 2).
type Matrix struct {
	// Source names the circuit the matrix was measured on.
	Source string
	// Configs lists the row configurations in order.
	Configs []dft.Configuration
	// Faults lists the column faults in order.
	Faults fault.List
	// Det[i][j] is true when fault j is detectable in configuration i.
	Det [][]bool
	// Omega[i][j] is the ω-detectability (percent) of fault j in
	// configuration i.
	Omega [][]float64
	// Region is the Ω_reference used for every cell.
	Region analysis.Region
	// CellErrs counts cells whose simulation failed (recorded as
	// undetectable).
	CellErrs int
}

// BuildMatrix fault-simulates every configuration of the modified circuit
// against the fault list. The reference region is derived once from the
// functional configuration (unless pinned) so that ω-detectability values
// are comparable across configurations, then reused for every row.
func BuildMatrix(m *dft.Modified, faults fault.List, opts Options) (*Matrix, error) {
	opts = opts.withDefaults()
	if err := faults.Validate(); err != nil {
		return nil, err
	}
	functional, err := m.Configure(dft.Configuration{Index: 0, N: m.N()})
	if err != nil {
		return nil, err
	}
	region, err := resolveRegion(functional, opts)
	if err != nil {
		return nil, err
	}
	configs := m.Configurations(opts.IncludeTransparent)
	if opts.MaxFollowers > 0 {
		var kept []dft.Configuration
		for _, cfg := range configs {
			if cfg.FollowerCount() <= opts.MaxFollowers {
				kept = append(kept, cfg)
			}
		}
		configs = kept
	}

	mx := &Matrix{
		Source:  m.Base.Name,
		Configs: configs,
		Faults:  faults,
		Det:     make([][]bool, len(configs)),
		Omega:   make([][]float64, len(configs)),
		Region:  region,
	}
	for i := range configs {
		mx.Det[i] = make([]bool, len(faults))
		mx.Omega[i] = make([]float64, len(faults))
	}

	grid := region.Spec(opts.Points).Grid()
	if err := opts.checkProfile(len(grid)); err != nil {
		return nil, err
	}

	// Pre-sweep nominal responses per configuration (cheap, sequential),
	// then fan out the (config, fault) cells. With PerConfigRegion each
	// row gets its own grid; otherwise all rows share the functional
	// region's grid.
	nominals := make([]*analysis.Response, len(configs))
	circuits := make([]*circuit.Circuit, len(configs))
	grids := make([][]float64, len(configs))
	for i, cfg := range configs {
		ckt, err := m.Configure(cfg)
		if err != nil {
			return nil, err
		}
		rowGrid := grid
		if opts.PerConfigRegion {
			if rowRegion, err := analysis.ReferenceRegion(ckt, opts.Probe); err == nil {
				rowGrid = rowRegion.Spec(opts.Points).Grid()
			}
		}
		nom, err := analysis.SweepOnGrid(ckt, rowGrid)
		if err != nil {
			return nil, fmt.Errorf("detect: nominal sweep of %s: %w", cfg, err)
		}
		circuits[i], nominals[i], grids[i] = ckt, nom, rowGrid
	}

	type cell struct{ i, j int }
	cells := make([]cell, 0, len(configs)*len(faults))
	for i := range configs {
		for j := range faults {
			cells = append(cells, cell{i, j})
		}
	}
	var mu sync.Mutex
	runParallel(len(cells), opts.Workers, func(k int) {
		c := cells[k]
		eval := evaluateFault(circuits[c.i], faults[c.j], nominals[c.i], grids[c.i], opts)
		mx.Det[c.i][c.j] = eval.Detectable
		mx.Omega[c.i][c.j] = eval.OmegaDet
		if eval.Err != nil {
			mu.Lock()
			mx.CellErrs++
			mu.Unlock()
		}
	})
	return mx, nil
}

// runParallel executes fn(0..n-1) over at most workers goroutines.
func runParallel(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// NumConfigs returns the number of matrix rows.
func (m *Matrix) NumConfigs() int { return len(m.Configs) }

// NumFaults returns the number of matrix columns.
func (m *Matrix) NumFaults() int { return len(m.Faults) }

// ConfigByLabel returns the row index of the configuration with the given
// label (e.g. "C2"), or -1.
func (m *Matrix) ConfigByLabel(label string) int {
	for i, c := range m.Configs {
		if c.Label() == label {
			return i
		}
	}
	return -1
}

// DetectableAnywhere reports whether fault j is detectable in at least one
// configuration.
func (m *Matrix) DetectableAnywhere(j int) bool {
	for i := range m.Configs {
		if m.Det[i][j] {
			return true
		}
	}
	return false
}

// FaultCoverage returns the maximum achievable fault coverage (0..1):
// the fraction of faults detectable in at least one configuration.
func (m *Matrix) FaultCoverage() float64 {
	if m.NumFaults() == 0 {
		return 0
	}
	n := 0
	for j := range m.Faults {
		if m.DetectableAnywhere(j) {
			n++
		}
	}
	return float64(n) / float64(m.NumFaults())
}

// CoverageOf returns the fault coverage achieved by the given subset of
// row indices.
func (m *Matrix) CoverageOf(rows []int) float64 {
	if m.NumFaults() == 0 {
		return 0
	}
	n := 0
	for j := range m.Faults {
		for _, i := range rows {
			if i >= 0 && i < len(m.Det) && m.Det[i][j] {
				n++
				break
			}
		}
	}
	return float64(n) / float64(m.NumFaults())
}

// BestOmega returns, per fault, the maximum ω-detectability across the
// given rows (all rows when rows is nil) — the paper's "best case" testing
// assumption (Graph 2).
func (m *Matrix) BestOmega(rows []int) []float64 {
	if rows == nil {
		rows = make([]int, m.NumConfigs())
		for i := range rows {
			rows[i] = i
		}
	}
	out := make([]float64, m.NumFaults())
	for j := range out {
		best := 0.0
		for _, i := range rows {
			if i >= 0 && i < len(m.Omega) && m.Omega[i][j] > best {
				best = m.Omega[i][j]
			}
		}
		out[j] = best
	}
	return out
}

// AvgBestOmega returns the average over faults of the best-case
// ω-detectability across the given rows (all when nil) — the paper's
// ⟨ω-det⟩ figure of merit.
func (m *Matrix) AvgBestOmega(rows []int) float64 {
	best := m.BestOmega(rows)
	if len(best) == 0 {
		return 0
	}
	s := 0.0
	for _, b := range best {
		s += b
	}
	return s / float64(len(best))
}

// Row extracts one configuration's evaluations as a Row.
func (m *Matrix) RowOf(i int) (*Row, error) {
	if i < 0 || i >= m.NumConfigs() {
		return nil, fmt.Errorf("detect: row %d out of range", i)
	}
	row := &Row{Circuit: fmt.Sprintf("%s@%s", m.Source, m.Configs[i].Label()), Region: m.Region}
	for j, f := range m.Faults {
		row.Evals = append(row.Evals, FaultEval{
			Fault:      f,
			Detectable: m.Det[i][j],
			OmegaDet:   m.Omega[i][j],
		})
	}
	return row, nil
}

// SubMatrix returns a new matrix restricted to the given row indices (in
// the given order), sharing fault columns and region.
func (m *Matrix) SubMatrix(rows []int) (*Matrix, error) {
	out := &Matrix{
		Source: m.Source,
		Faults: m.Faults,
		Region: m.Region,
	}
	for _, i := range rows {
		if i < 0 || i >= m.NumConfigs() {
			return nil, fmt.Errorf("detect: row %d out of range", i)
		}
		out.Configs = append(out.Configs, m.Configs[i])
		out.Det = append(out.Det, m.Det[i])
		out.Omega = append(out.Omega, m.Omega[i])
	}
	return out, nil
}

// WorstCasePerComponent merges a bipolar evaluation (fault IDs generated
// by fault.BipolarDeviationUniverse: "f<comp>+" and "f<comp>-") into one
// worst-case evaluation per component: detectable when either deviation
// direction is, ω-detectability and max deviation taken as the maxima.
// Faults without the +/- suffix pairing pass through unchanged.
func WorstCasePerComponent(row *Row) *Row {
	out := &Row{Circuit: row.Circuit + " (worst case)", Region: row.Region}
	merged := make(map[string]int) // component -> index in out.Evals
	for _, e := range row.Evals {
		id := e.Fault.ID
		base := id
		if n := len(id); n > 1 && (id[n-1] == '+' || id[n-1] == '-') {
			base = id[:n-1]
		}
		if idx, ok := merged[base]; ok {
			prev := &out.Evals[idx]
			prev.Detectable = prev.Detectable || e.Detectable
			if e.OmegaDet > prev.OmegaDet {
				prev.OmegaDet = e.OmegaDet
			}
			if e.MaxDev > prev.MaxDev {
				prev.MaxDev = e.MaxDev
			}
			if prev.Err == nil {
				prev.Err = e.Err
			}
			continue
		}
		merged[base] = len(out.Evals)
		we := e
		we.Fault.ID = base
		out.Evals = append(out.Evals, we)
	}
	return out
}
