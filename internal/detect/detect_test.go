package detect

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"analogdft/internal/analysis"
	"analogdft/internal/circuit"
	"analogdft/internal/dft"
	"analogdft/internal/fault"
)

// rcLowpass: corner ≈ 1.59 kHz.
func rcLowpass() *circuit.Circuit {
	c := circuit.New("rc")
	c.R("R1", "in", "out", 1e3)
	c.Cap("C1", "out", "0", 100e-9)
	c.Input, c.Output = "in", "out"
	return c
}

// cascade3: three unity inverting stages (same as the dft tests).
func cascade3() *circuit.Circuit {
	c := circuit.New("cascade3")
	c.R("R1", "in", "s1", 1e3)
	c.R("R2", "s1", "v1", 1e3)
	c.OA("OP1", "0", "s1", "v1")
	c.R("R3", "v1", "s2", 1e3)
	c.R("R4", "s2", "v2", 1e3)
	c.OA("OP2", "0", "s2", "v2")
	c.R("R5", "v2", "s3", 1e3)
	c.R("R6", "s3", "v3", 1e3)
	c.OA("OP3", "0", "s3", "v3")
	c.Input, c.Output = "in", "v3"
	return c
}

// lowpassBiquadish: an RC lowpass followed by an opamp buffer chain, so
// capacitor faults shift a corner inside the reference region.
func fastOpts() Options {
	return Options{Points: 61, Probe: analysis.SweepSpec{StartHz: 1e-1, StopHz: 1e8, Points: 121}}
}

func TestEvaluateCircuitRC(t *testing.T) {
	faults := fault.DeviationUniverse(rcLowpass(), 0.2)
	row, err := EvaluateCircuit(rcLowpass(), faults, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(row.Evals) != 2 {
		t.Fatalf("evals = %d, want 2", len(row.Evals))
	}
	for _, e := range row.Evals {
		if e.Err != nil {
			t.Fatalf("%s: %v", e.Fault.ID, e.Err)
		}
		if !e.Detectable {
			t.Errorf("%s not detectable; a 20%% shift moves the corner", e.Fault.ID)
		}
		if e.OmegaDet <= 0 || e.OmegaDet > 100 {
			t.Errorf("%s: ω-det = %g out of range", e.Fault.ID, e.OmegaDet)
		}
		if e.MaxDev <= 0.1 {
			t.Errorf("%s: max deviation = %g, want > ε", e.Fault.ID, e.MaxDev)
		}
	}
	if fc := row.FaultCoverage(); fc != 1 {
		t.Errorf("coverage = %g, want 1", fc)
	}
	if avg := row.AvgOmegaDet(); avg <= 0 || avg > 100 {
		t.Errorf("avg ω-det = %g", avg)
	}
}

func TestEvaluateCircuitRespectsEps(t *testing.T) {
	faults := fault.List{{ID: "fR1", Component: "R1", Kind: fault.Deviation, Factor: 1.2}}
	// With a huge tolerance nothing is detectable.
	opts := fastOpts()
	opts.Eps = 10 // 1000%
	row, err := EvaluateCircuit(rcLowpass(), faults, opts)
	if err != nil {
		t.Fatal(err)
	}
	if row.Evals[0].Detectable {
		t.Fatal("fault detectable at ε = 1000%")
	}
	if row.Evals[0].OmegaDet != 0 {
		t.Fatalf("ω-det = %g, want 0", row.Evals[0].OmegaDet)
	}
}

func TestEvaluateCircuitPinnedRegion(t *testing.T) {
	faults := fault.DeviationUniverse(rcLowpass(), 0.2)
	opts := fastOpts()
	opts.Region = analysis.Region{LoHz: 10, HiHz: 1e3} // deep passband only
	row, err := EvaluateCircuit(rcLowpass(), faults, opts)
	if err != nil {
		t.Fatal(err)
	}
	if row.Region != opts.Region {
		t.Fatalf("region = %v, want pinned", row.Region)
	}
	// In the deep passband an RC lowpass barely moves: nothing detectable.
	for _, e := range row.Evals {
		if e.Detectable {
			t.Errorf("%s detectable in deep passband", e.Fault.ID)
		}
	}
}

func TestEvaluateCircuitBadRegion(t *testing.T) {
	opts := fastOpts()
	opts.Region = analysis.Region{LoHz: 100, HiHz: 10}
	_, err := EvaluateCircuit(rcLowpass(), fault.DeviationUniverse(rcLowpass(), 0.2), opts)
	if err == nil {
		t.Fatal("inverted region accepted")
	}
}

func TestEvaluateCircuitBadFaults(t *testing.T) {
	faults := fault.List{{ID: "", Component: "R1", Kind: fault.Deviation, Factor: 1.2}}
	if _, err := EvaluateCircuit(rcLowpass(), faults, fastOpts()); err == nil {
		t.Fatal("invalid fault list accepted")
	}
}

func TestEvaluateFaultCellError(t *testing.T) {
	faults := fault.List{{ID: "fX", Component: "missing", Kind: fault.Deviation, Factor: 1.2}}
	row, err := EvaluateCircuit(rcLowpass(), faults, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if row.Evals[0].Err == nil {
		t.Fatal("missing component should record a cell error")
	}
	if row.Evals[0].Detectable {
		t.Fatal("failed cell must count as undetectable")
	}
}

func TestBuildMatrixCascade(t *testing.T) {
	ckt := cascade3()
	m, err := dft.ApplyAll(ckt)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.DeviationUniverse(ckt, 0.2)
	opts := fastOpts()
	opts.Region = analysis.Region{LoHz: 10, HiHz: 1e5} // resistive: flat responses
	mx, err := BuildMatrix(m, faults, opts)
	if err != nil {
		t.Fatal(err)
	}
	if mx.NumConfigs() != 7 { // transparent excluded
		t.Fatalf("rows = %d, want 7", mx.NumConfigs())
	}
	if mx.NumFaults() != 6 {
		t.Fatalf("cols = %d, want 6", mx.NumFaults())
	}
	if mx.NumCellErrs() != 0 {
		t.Fatalf("cell errors = %v", mx.CellErrors)
	}
	// The cascade has unity gain per stage: a 20% resistor fault changes the
	// gain by 20% and must be detectable in the functional configuration.
	c0 := mx.ConfigByLabel("C0")
	if c0 < 0 {
		t.Fatal("C0 missing")
	}
	for j := range faults {
		if !mx.Det[c0][j] {
			t.Errorf("fault %s undetectable in C0", faults[j].ID)
		}
	}
	if fc := mx.FaultCoverage(); fc != 1 {
		t.Errorf("max coverage = %g", fc)
	}
	// Configuration C7 would be transparent; ensure none of the rows is.
	for _, cfg := range mx.Configs {
		if cfg.IsTransparent() {
			t.Error("transparent configuration included")
		}
	}
}

func TestBuildMatrixFollowerMasksFaults(t *testing.T) {
	// In configuration C1 (OP1 follower) the faults on R1/R2 around OP1
	// no longer affect the output: the follower bypasses the first stage.
	ckt := cascade3()
	m, _ := dft.ApplyAll(ckt)
	faults := fault.DeviationUniverse(ckt, 0.2)
	opts := fastOpts()
	opts.Region = analysis.Region{LoHz: 10, HiHz: 1e5}
	mx, err := BuildMatrix(m, faults, opts)
	if err != nil {
		t.Fatal(err)
	}
	c1 := mx.ConfigByLabel("C1")
	idx := map[string]int{}
	for j, f := range faults {
		idx[f.ID] = j
	}
	if mx.Det[c1][idx["fR1"]] || mx.Det[c1][idx["fR2"]] {
		t.Error("R1/R2 faults should be masked when OP1 is a follower")
	}
	if !mx.Det[c1][idx["fR3"]] || !mx.Det[c1][idx["fR5"]] {
		t.Error("downstream faults should stay detectable in C1")
	}
}

func TestMatrixIncludeTransparent(t *testing.T) {
	ckt := cascade3()
	m, _ := dft.ApplyAll(ckt)
	faults := fault.List{{ID: "fR1", Component: "R1", Kind: fault.Deviation, Factor: 1.2}}
	opts := fastOpts()
	opts.Region = analysis.Region{LoHz: 10, HiHz: 1e5}
	opts.IncludeTransparent = true
	mx, err := BuildMatrix(m, faults, opts)
	if err != nil {
		t.Fatal(err)
	}
	if mx.NumConfigs() != 8 {
		t.Fatalf("rows = %d, want 8", mx.NumConfigs())
	}
	// Transparent config: identity function, no passive fault detectable.
	last := mx.ConfigByLabel("C7")
	if mx.Det[last][0] {
		t.Error("fault detectable in transparent configuration")
	}
}

// handMatrix builds a small matrix without simulation for the pure
// aggregate-function tests.
func handMatrix() *Matrix {
	faults := fault.List{
		{ID: "f1", Component: "R1", Kind: fault.Deviation, Factor: 1.2},
		{ID: "f2", Component: "R2", Kind: fault.Deviation, Factor: 1.2},
		{ID: "f3", Component: "R3", Kind: fault.Deviation, Factor: 1.2},
	}
	return &Matrix{
		Source:  "hand",
		Configs: []dft.Configuration{{Index: 0, N: 2}, {Index: 1, N: 2}, {Index: 2, N: 2}},
		Faults:  faults,
		Det: [][]bool{
			{true, false, false},
			{false, true, false},
			{true, true, false},
		},
		Omega: [][]float64{
			{50, 0, 0},
			{0, 30, 0},
			{20, 40, 0},
		},
		Region: analysis.Region{LoHz: 1, HiHz: 100},
	}
}

func TestMatrixAggregates(t *testing.T) {
	m := handMatrix()
	if !m.DetectableAnywhere(0) || !m.DetectableAnywhere(1) || m.DetectableAnywhere(2) {
		t.Error("DetectableAnywhere wrong")
	}
	if fc := m.FaultCoverage(); math.Abs(fc-2.0/3) > 1e-12 {
		t.Errorf("FaultCoverage = %g", fc)
	}
	if fc := m.CoverageOf([]int{0}); math.Abs(fc-1.0/3) > 1e-12 {
		t.Errorf("CoverageOf(C0) = %g", fc)
	}
	if fc := m.CoverageOf([]int{0, 1}); math.Abs(fc-2.0/3) > 1e-12 {
		t.Errorf("CoverageOf(C0,C1) = %g", fc)
	}
	best := m.BestOmega(nil)
	want := []float64{50, 40, 0}
	for j := range want {
		if best[j] != want[j] {
			t.Errorf("BestOmega[%d] = %g, want %g", j, best[j], want[j])
		}
	}
	if avg := m.AvgBestOmega(nil); math.Abs(avg-30) > 1e-12 {
		t.Errorf("AvgBestOmega = %g, want 30", avg)
	}
	if avg := m.AvgBestOmega([]int{2}); math.Abs(avg-20) > 1e-12 {
		t.Errorf("AvgBestOmega(C2) = %g, want 20", avg)
	}
}

func TestMatrixRowOf(t *testing.T) {
	m := handMatrix()
	row, err := m.RowOf(2)
	if err != nil {
		t.Fatal(err)
	}
	if row.FaultCoverage() != 2.0/3 {
		t.Errorf("row coverage = %g", row.FaultCoverage())
	}
	if math.Abs(row.AvgOmegaDet()-20) > 1e-12 {
		t.Errorf("row avg ω-det = %g", row.AvgOmegaDet())
	}
	if _, err := m.RowOf(9); err == nil {
		t.Fatal("out-of-range row accepted")
	}
}

func TestMatrixSubMatrix(t *testing.T) {
	m := handMatrix()
	sub, err := m.SubMatrix([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumConfigs() != 2 || sub.Configs[0].Index != 2 {
		t.Fatalf("sub configs = %v", sub.Configs)
	}
	if sub.Det[0][1] != true || sub.Det[1][0] != true {
		t.Error("sub rows not in requested order")
	}
	if _, err := m.SubMatrix([]int{5}); err == nil {
		t.Fatal("bad row index accepted")
	}
}

func TestConfigByLabelMissing(t *testing.T) {
	if handMatrix().ConfigByLabel("C9") != -1 {
		t.Fatal("missing label should map to -1")
	}
}

func TestRunParallelCoversAll(t *testing.T) {
	ctx := context.Background()
	seen := make([]bool, 100)
	runParallel(ctx, len(seen), 7, func(_ context.Context, _, i int) { seen[i] = true })
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d not visited", i)
		}
	}
	// workers > n clamps to n; the shared counter must be atomic because
	// the clamped path still runs multiple goroutines.
	var count atomic.Int64
	runParallel(ctx, 3, 10, func(_ context.Context, _, i int) { count.Add(1) })
	if count.Load() != 3 {
		t.Fatalf("clamped parallel path ran %d times, want 3", count.Load())
	}
	count.Store(0)
	runParallel(ctx, 5, 1, func(_ context.Context, _, i int) { count.Add(1) })
	if count.Load() != 5 {
		t.Fatalf("sequential path ran %d times, want 5", count.Load())
	}
}

func TestRunParallelCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var count atomic.Int64
	runParallel(ctx, 50, 1, func(_ context.Context, _, i int) { count.Add(1) })
	if count.Load() != 0 {
		t.Fatalf("sequential path ran %d cells under a cancelled context", count.Load())
	}
	runParallel(ctx, 50, 4, func(_ context.Context, _, i int) { count.Add(1) })
	if count.Load() != 0 {
		t.Fatalf("parallel path ran %d cells under a cancelled context", count.Load())
	}
}

func TestBuildMatrixDeterministic(t *testing.T) {
	ckt := cascade3()
	m, _ := dft.ApplyAll(ckt)
	faults := fault.DeviationUniverse(ckt, 0.2)
	opts := fastOpts()
	opts.Region = analysis.Region{LoHz: 10, HiHz: 1e5}
	a, err := BuildMatrix(m, faults, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 1
	b, err := BuildMatrix(m, faults, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Det {
		for j := range a.Det[i] {
			if a.Det[i][j] != b.Det[i][j] || math.Abs(a.Omega[i][j]-b.Omega[i][j]) > 1e-12 {
				t.Fatalf("parallel/sequential mismatch at (%d,%d)", i, j)
			}
		}
	}
}

// Failure injection: a circuit whose every AC solve is singular (an ideal
// opamp output shorted to an independent source — the output current split
// is indeterminate). The engine must degrade gracefully: all points
// invalid, faults undetectable, no panic.
func TestAllSingularNominal(t *testing.T) {
	c := circuit.New("conflict")
	c.V("V1", "x", "0", 1)
	c.R("R1", "in", "m", 1e3)
	c.R("R2", "m", "x", 1e3)
	c.OA("OP1", "0", "m", "x") // output hard-tied to V1's node
	c.Input, c.Output = "in", "x"
	faults := fault.DeviationUniverse(c, 0.2)
	opts := fastOpts()
	opts.Region = analysis.Region{LoHz: 10, HiHz: 1e4}
	row, err := EvaluateCircuit(c, faults, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range row.Evals {
		if e.Detectable {
			t.Errorf("%s detectable in an unsolvable circuit", e.Fault.ID)
		}
		// Error transparency: the engine must not launder an unusable
		// baseline into a silent "undetectable".
		if !errors.Is(e.Err, analysis.ErrAllInvalid) {
			t.Errorf("%s: err = %v, want ErrAllInvalid", e.Fault.ID, e.Err)
		}
	}
	if row.FaultCoverage() != 0 {
		t.Fatalf("coverage = %g", row.FaultCoverage())
	}
	if row.Stats.Errors != len(row.Evals) {
		t.Fatalf("stats errors = %d, want %d", row.Stats.Errors, len(row.Evals))
	}
	if row.Stats.SingularPoints == 0 {
		t.Fatal("stats should count the singular nominal points")
	}
}

// conflictCircuit is the unsolvable circuit from TestAllSingularNominal.
func conflictCircuit() *circuit.Circuit {
	c := circuit.New("conflict")
	c.V("V1", "x", "0", 1)
	c.R("R1", "in", "m", 1e3)
	c.R("R2", "m", "x", 1e3)
	c.OA("OP1", "0", "m", "x")
	c.Input, c.Output = "in", "x"
	return c
}

// EpsProfile interplay with the matrix path.
func TestBuildMatrixEpsProfileLengthChecked(t *testing.T) {
	ckt := cascade3()
	m, _ := dft.ApplyAll(ckt)
	faults := fault.DeviationUniverse(ckt, 0.2)
	opts := fastOpts()
	opts.Region = analysis.Region{LoHz: 10, HiHz: 1e5}
	opts.EpsProfile = []float64{0.1, 0.2} // wrong length
	if _, err := BuildMatrix(m, faults, opts); err == nil {
		t.Fatal("mismatched EpsProfile accepted")
	}
}

func TestThresholdAt(t *testing.T) {
	o := Options{Eps: 0.1, EpsProfile: []float64{0.05, 0.3}}
	if o.thresholdAt(0) != 0.1 { // profile below scalar: scalar wins
		t.Error("threshold 0")
	}
	if o.thresholdAt(1) != 0.3 {
		t.Error("threshold 1")
	}
	if o.thresholdAt(5) != 0.1 { // out of profile range
		t.Error("threshold 5")
	}
}

// Per-configuration regions: each row is measured over its own derived
// Ω_reference. On the resistive cascade every configuration is flat, so
// regions derive fine and coverage matches the shared-region run.
func TestBuildMatrixPerConfigRegion(t *testing.T) {
	ckt := cascade3()
	m, _ := dft.ApplyAll(ckt)
	faults := fault.DeviationUniverse(ckt, 0.2)
	shared := fastOpts()
	shared.Region = analysis.Region{LoHz: 10, HiHz: 1e5}
	per := shared
	per.PerConfigRegion = true
	a, err := BuildMatrix(m, faults, shared)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildMatrix(m, faults, per)
	if err != nil {
		t.Fatal(err)
	}
	if a.FaultCoverage() != b.FaultCoverage() {
		t.Fatalf("coverage differs: shared %g vs per-config %g", a.FaultCoverage(), b.FaultCoverage())
	}
	// Flat resistive responses have no measurable passband corner inside
	// the probe, so per-config derivation falls back to the shared region
	// and the boolean matrices agree cell-for-cell here.
	for i := range a.Det {
		for j := range a.Det[i] {
			if a.Det[i][j] != b.Det[i][j] {
				t.Fatalf("cell (%d,%d) differs", i, j)
			}
		}
	}
}

func TestWorstCasePerComponent(t *testing.T) {
	row := &Row{
		Circuit: "c",
		Evals: []FaultEval{
			{Fault: fault.Fault{ID: "fR1+"}, Detectable: false, OmegaDet: 0, MaxDev: 0.05},
			{Fault: fault.Fault{ID: "fR1-"}, Detectable: true, OmegaDet: 40, MaxDev: 0.3},
			{Fault: fault.Fault{ID: "fC1+"}, Detectable: true, OmegaDet: 10, MaxDev: 0.2},
			{Fault: fault.Fault{ID: "fC1-"}, Detectable: true, OmegaDet: 25, MaxDev: 0.15},
			{Fault: fault.Fault{ID: "fL9"}, Detectable: false, OmegaDet: 0, MaxDev: 0.01},
		},
	}
	wc := WorstCasePerComponent(row)
	if len(wc.Evals) != 3 {
		t.Fatalf("merged evals = %d, want 3", len(wc.Evals))
	}
	byID := map[string]FaultEval{}
	for _, e := range wc.Evals {
		byID[e.Fault.ID] = e
	}
	r1 := byID["fR1"]
	if !r1.Detectable || r1.OmegaDet != 40 || r1.MaxDev != 0.3 {
		t.Fatalf("fR1 worst case = %+v", r1)
	}
	c1 := byID["fC1"]
	if c1.OmegaDet != 25 || c1.MaxDev != 0.2 {
		t.Fatalf("fC1 worst case = %+v", c1)
	}
	if _, ok := byID["fL9"]; !ok {
		t.Fatal("unpaired fault dropped")
	}
	if wc.FaultCoverage() != 2.0/3 {
		t.Fatalf("worst-case coverage = %g", wc.FaultCoverage())
	}
}

// End-to-end bipolar worst case on the RC lowpass: both directions of both
// components merge into two rows, both detectable.
func TestWorstCaseEndToEnd(t *testing.T) {
	faults := fault.BipolarDeviationUniverse(rcLowpass(), 0.2)
	row, err := EvaluateCircuit(rcLowpass(), faults, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	wc := WorstCasePerComponent(row)
	if len(wc.Evals) != 2 {
		t.Fatalf("components = %d", len(wc.Evals))
	}
	if wc.FaultCoverage() != 1 {
		t.Fatalf("worst-case coverage = %g", wc.FaultCoverage())
	}
}

// mixedFaults returns a universe where fault index 1 cannot be applied
// (component does not exist) while the rest simulate normally.
func mixedFaults(ckt *circuit.Circuit) fault.List {
	faults := fault.DeviationUniverse(ckt, 0.2)
	bad := fault.Fault{ID: "fBAD", Component: "missing", Kind: fault.Deviation, Factor: 1.2}
	out := fault.List{faults[0], bad}
	out = append(out, faults[1:]...)
	return out
}

func TestBuildMatrixErrorParityAcrossWorkers(t *testing.T) {
	ckt := cascade3()
	m, _ := dft.ApplyAll(ckt)
	faults := mixedFaults(ckt)
	opts := fastOpts()
	opts.Region = analysis.Region{LoHz: 10, HiHz: 1e5}

	opts.Workers = 1
	seq, err := BuildMatrix(m, faults, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	par, err := BuildMatrix(m, faults, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Healthy cells must still be measured; the bad fault's column fails
	// once per configuration, in row-major order.
	if seq.NumCellErrs() != seq.NumConfigs() {
		t.Fatalf("cell errors = %d, want one per config (%d)", seq.NumCellErrs(), seq.NumConfigs())
	}
	if par.NumCellErrs() != seq.NumCellErrs() {
		t.Fatalf("error count differs: seq %d, par %d", seq.NumCellErrs(), par.NumCellErrs())
	}
	for k := range seq.CellErrors {
		a, b := seq.CellErrors[k], par.CellErrors[k]
		if a.Config != b.Config || a.FaultIndex != b.FaultIndex || a.Fault.ID != b.Fault.ID {
			t.Fatalf("cell error %d differs: %+v vs %+v", k, a, b)
		}
		if a.Err.Error() != b.Err.Error() {
			t.Fatalf("cell error %d cause differs: %v vs %v", k, a.Err, b.Err)
		}
		if a.Fault.ID != "fBAD" || a.FaultIndex != 1 {
			t.Fatalf("cell error %d on wrong cell: %+v", k, a)
		}
	}
	for i := range seq.Det {
		for j := range seq.Det[i] {
			if seq.Det[i][j] != par.Det[i][j] || seq.Omega[i][j] != par.Omega[i][j] {
				t.Fatalf("matrix mismatch at (%d,%d)", i, j)
			}
		}
	}
	// Degraded coverage: every other fault stays detectable somewhere.
	for j := range faults {
		want := faults[j].ID != "fBAD"
		if seq.DetectableAnywhere(j) != want {
			t.Errorf("fault %s detectable=%v, want %v", faults[j].ID, !want, want)
		}
	}
	if seq.Stats.Errors != seq.NumCellErrs() || par.Stats.Errors != par.NumCellErrs() {
		t.Errorf("stats errors %d/%d disagree with cell errors %d/%d",
			seq.Stats.Errors, par.Stats.Errors, seq.NumCellErrs(), par.NumCellErrs())
	}
}

func TestBuildMatrixFailFast(t *testing.T) {
	ckt := cascade3()
	m, _ := dft.ApplyAll(ckt)
	// Bad fault first: with Workers=1 the very first cell fails.
	faults := fault.List{{ID: "fBAD", Component: "missing", Kind: fault.Deviation, Factor: 1.2}}
	faults = append(faults, fault.DeviationUniverse(ckt, 0.2)...)
	opts := fastOpts()
	opts.Region = analysis.Region{LoHz: 10, HiHz: 1e5}
	opts.OnError = FailFast

	var last Stats
	opts.Progress = func(s Stats) { last = s }
	opts.Workers = 1
	_, err := BuildMatrix(m, faults, opts)
	var ce CellError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want a CellError", err)
	}
	if ce.Fault.ID != "fBAD" || ce.FaultIndex != 0 {
		t.Fatalf("cell error = %+v, want the first cell", ce)
	}
	if last.CellsDone != 1 {
		t.Fatalf("sequential fail-fast completed %d cells, want 1", last.CellsDone)
	}
	if last.CellsDone >= last.Cells {
		t.Fatal("fail-fast did not abort early")
	}

	opts.Progress = nil
	opts.Workers = 4
	_, err = BuildMatrix(m, faults, opts)
	if !errors.As(err, &ce) {
		t.Fatalf("parallel err = %v, want a CellError", err)
	}
	if ce.Fault.ID != "fBAD" {
		t.Fatalf("parallel cell error on %s, want fBAD", ce.Fault.ID)
	}
}

func TestEvaluateCircuitFailFast(t *testing.T) {
	faults := fault.List{{ID: "fX", Component: "missing", Kind: fault.Deviation, Factor: 1.2}}
	opts := fastOpts()
	opts.OnError = FailFast
	_, err := EvaluateCircuit(rcLowpass(), faults, opts)
	if err == nil {
		t.Fatal("fail-fast returned a row despite a failing cell")
	}
}

func TestRetryPolicyAccounting(t *testing.T) {
	// Unsolvable circuit: retries are spent, nothing recovers, and the
	// cells still surface ErrAllInvalid.
	faults := fault.DeviationUniverse(conflictCircuit(), 0.2)
	opts := fastOpts()
	opts.Region = analysis.Region{LoHz: 10, HiHz: 1e4}
	opts.OnError = Retry
	row, err := EvaluateCircuit(conflictCircuit(), faults, opts)
	if err != nil {
		t.Fatal(err)
	}
	if row.Stats.Retries == 0 {
		t.Fatal("retry policy spent no retries on an all-singular sweep")
	}
	if row.Stats.Recovered != 0 {
		t.Fatalf("recovered = %d points of an unsolvable circuit", row.Stats.Recovered)
	}
	for _, e := range row.Evals {
		if !errors.Is(e.Err, analysis.ErrAllInvalid) {
			t.Errorf("%s: err = %v, want ErrAllInvalid", e.Fault.ID, e.Err)
		}
	}

	// Healthy circuit: Retry must be a no-op equivalent to Degrade.
	opts = fastOpts()
	opts.OnError = Retry
	row, err = EvaluateCircuit(rcLowpass(), fault.DeviationUniverse(rcLowpass(), 0.2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if row.Stats.Retries != 0 || row.Stats.Recovered != 0 || row.Stats.SingularPoints != 0 {
		t.Fatalf("healthy circuit spent retries: %+v", row.Stats)
	}
	if row.ErrCount() != 0 || row.FaultCoverage() != 1 {
		t.Fatalf("healthy retry run degraded: errs=%d coverage=%g", row.ErrCount(), row.FaultCoverage())
	}
}

func TestNoEpsHonorsZeroTolerance(t *testing.T) {
	// A 0.1% resistor shift is far below the default 10% tolerance but
	// still produces a nonzero deviation.
	faults := fault.List{{ID: "fR1", Component: "R1", Kind: fault.Deviation, Factor: 1.001}}

	opts := fastOpts() // Eps zero sentinel -> default 0.10
	row, err := EvaluateCircuit(rcLowpass(), faults, opts)
	if err != nil {
		t.Fatal(err)
	}
	if row.Evals[0].Detectable {
		t.Fatal("0.1% fault detectable at the default 10% tolerance")
	}

	opts.NoEps = true // honor Eps == 0 as a true zero tolerance
	row, err = EvaluateCircuit(rcLowpass(), faults, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !row.Evals[0].Detectable {
		t.Fatal("0.1% fault undetectable at zero tolerance")
	}
}

func TestProgressDeterministicAcrossWorkers(t *testing.T) {
	ckt := cascade3()
	m, _ := dft.ApplyAll(ckt)
	faults := fault.DeviationUniverse(ckt, 0.2)
	opts := fastOpts()
	opts.Region = analysis.Region{LoHz: 10, HiHz: 1e5}

	capture := func(workers int) []Stats {
		var snaps []Stats
		o := opts
		o.Workers = workers
		o.Progress = func(s Stats) {
			s.Elapsed = 0 // wall time is the only legitimately nondeterministic field
			snaps = append(snaps, s)
		}
		if _, err := BuildMatrix(m, faults, o); err != nil {
			t.Fatal(err)
		}
		return snaps
	}
	seq := capture(1)
	par := capture(8)
	if len(seq) != len(par) {
		t.Fatalf("snapshot counts differ: %d vs %d", len(seq), len(par))
	}
	for k := range seq {
		if seq[k] != par[k] {
			t.Fatalf("snapshot %d differs:\nseq %+v\npar %+v", k, seq[k], par[k])
		}
	}
	// One snapshot per cell plus the final one; CellsDone strictly ordered.
	want := 7*len(faults) + 1
	if len(seq) != want {
		t.Fatalf("snapshots = %d, want %d", len(seq), want)
	}
	for k := 1; k < len(seq); k++ {
		if seq[k].CellsDone < seq[k-1].CellsDone {
			t.Fatalf("CellsDone regressed at snapshot %d", k)
		}
	}
}

func TestRowOfAndSubMatrixPropagateCellErrors(t *testing.T) {
	m := handMatrix()
	boom := errors.New("boom")
	m.CellErrors = []CellError{
		{Config: m.Configs[1], FaultIndex: 2, Fault: m.Faults[2], Err: boom},
	}
	row, err := m.RowOf(1)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(row.Evals[2].Err, boom) {
		t.Fatalf("RowOf dropped the cell error: %+v", row.Evals[2])
	}
	if row.Evals[0].Err != nil || row.Evals[1].Err != nil {
		t.Fatal("RowOf smeared the error over healthy cells")
	}
	clean, err := m.RowOf(0)
	if err != nil {
		t.Fatal(err)
	}
	if clean.ErrCount() != 0 {
		t.Fatal("RowOf(0) picked up another row's error")
	}

	sub, err := m.SubMatrix([]int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumCellErrs() != 1 || !errors.Is(sub.CellErrors[0].Err, boom) {
		t.Fatalf("SubMatrix errors = %+v", sub.CellErrors)
	}
	sub, err = m.SubMatrix([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumCellErrs() != 0 {
		t.Fatal("SubMatrix kept an error for an excluded row")
	}
}

func TestCellErrorFormatting(t *testing.T) {
	cause := errors.New("boom")
	ce := CellError{Config: dft.Configuration{Index: 3, N: 3}, FaultIndex: 1,
		Fault: fault.Fault{ID: "fR2"}, Err: cause}
	if !errors.Is(ce, cause) {
		t.Fatal("CellError does not unwrap to its cause")
	}
	msg := ce.Error()
	for _, want := range []string{"C3", "fR2", "boom"} {
		if !contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestErrorPolicyString(t *testing.T) {
	cases := map[ErrorPolicy]string{Degrade: "degrade", FailFast: "failfast", Retry: "retry", ErrorPolicy(9): "ErrorPolicy(9)"}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}
