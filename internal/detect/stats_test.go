package detect

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"analogdft/internal/analysis"
	"analogdft/internal/dft"
	"analogdft/internal/fault"
	"analogdft/internal/obs"
)

func TestStatsStringFormat(t *testing.T) {
	cases := []struct {
		st   Stats
		want string
	}{
		{
			Stats{},
			"0/0 cells, 0 solves, 0 singular, 0 retries (0 recovered), 0 errors, 0s",
		},
		{
			Stats{Cells: 56, CellsDone: 56, Solves: 13496, SingularPoints: 3,
				Retries: 9, Recovered: 2, Errors: 1, Elapsed: 1500 * time.Millisecond},
			"56/56 cells, 13496 solves, 3 singular, 9 retries (2 recovered), 1 errors, 1.5s",
		},
		{
			// Intermediate Progress snapshot: zero Elapsed renders as 0s.
			Stats{Cells: 10, CellsDone: 4, Solves: 900},
			"4/10 cells, 900 solves, 0 singular, 0 retries (0 recovered), 0 errors, 0s",
		},
	}
	for _, c := range cases {
		if got := c.st.String(); got != c.want {
			t.Fatalf("Stats%+v.String()\n got %q\nwant %q", c.st, got, c.want)
		}
	}
}

func TestStatsStringIsProgressSuffix(t *testing.T) {
	// The progress reporter prints "simulated N/M cells: <stats>"; the
	// stringer must stay a single line with no leading/trailing space.
	s := Stats{Cells: 8, CellsDone: 8, Solves: 100, Elapsed: time.Second}.String()
	if strings.ContainsAny(s, "\n\r") || strings.TrimSpace(s) != s {
		t.Fatalf("Stats.String not a clean single line: %q", s)
	}
}

// snapshotAfterRun resets the default registry, builds the matrix with the
// given worker count and engine mode (timing off), and returns the full
// registry snapshot.
func snapshotAfterRun(t *testing.T, workers int, mode EngineMode) map[string]obs.MetricSnap {
	t.Helper()
	ckt := cascade3()
	m, err := dft.ApplyAll(ckt)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.DeviationUniverse(ckt, 0.2)
	opts := fastOpts()
	opts.Region = analysis.Region{LoHz: 10, HiHz: 1e5}
	opts.Workers = workers
	opts.Engine = mode
	obs.Reg().Reset()
	if _, err := BuildMatrix(m, faults, opts); err != nil {
		t.Fatal(err)
	}
	return obs.Reg().Snapshot()
}

// TestMetricSnapshotDeterministicAcrossWorkers is the ISSUE 2 determinism
// gate: with timing off, the complete registry snapshot after a matrix
// build must be byte-identical for any worker count and scheduling order
// (runs under -race in CI), for every engine mode. Timing-gated metrics
// (chunk latencies, worker utilization, per-engine nominal factorization
// counts) are the only schedule-dependent instruments, and they must stay
// silent here.
func TestMetricSnapshotDeterministicAcrossWorkers(t *testing.T) {
	if obs.TimingOn() {
		t.Fatal("timing unexpectedly enabled; determinism holds only with timing off")
	}
	for _, mode := range []EngineMode{EngineIncremental, EngineLowRank} {
		t.Run(mode.String(), func(t *testing.T) {
			base := snapshotAfterRun(t, 1, mode)
			if base["detect_cells_total"].Value == 0 || base["mna_solves_total"].Value == 0 {
				t.Fatalf("instrumentation silent: %+v", base)
			}
			if base["detect_chunk_seconds"].Count != 0 || base["detect_workers"].Value != 0 {
				t.Fatalf("timing-gated metrics fired with timing off: %+v", base)
			}
			if base["engine_lowrank_factor_total"].Value != 0 {
				t.Fatalf("schedule-dependent factorization count fired with timing off: %+v",
					base["engine_lowrank_factor_total"])
			}
			if mode == EngineLowRank && base["engine_lowrank_solve_total"].Value == 0 {
				t.Fatalf("low-rank mode performed no Sherman–Morrison solves: %+v", base)
			}
			for _, workers := range []int{2, 3, 8} {
				got := snapshotAfterRun(t, workers, mode)
				if !reflect.DeepEqual(base, got) {
					for name := range base {
						if !reflect.DeepEqual(base[name], got[name]) {
							t.Errorf("metric %q: workers=1 %+v, workers=%d %+v", name, base[name], workers, got[name])
						}
					}
					t.Fatalf("snapshot differs at workers=%d", workers)
				}
			}
		})
	}
}

// TestTimingMetricsFireWhenEnabled checks the other side of the gate: with
// timing on, the schedule-dependent instruments do observe.
func TestTimingMetricsFireWhenEnabled(t *testing.T) {
	rt := obs.Default()
	rt.SetTiming(true)
	defer rt.SetTiming(false)
	snap := snapshotAfterRun(t, 2, EngineIncremental)
	if snap["detect_chunk_seconds"].Count == 0 {
		t.Fatalf("chunk latency histogram silent with timing on: %+v", snap["detect_chunk_seconds"])
	}
	if snap["detect_workers"].Value != 2 {
		t.Fatalf("detect_workers = %v, want 2", snap["detect_workers"].Value)
	}
	if snap["mna_solve_seconds"].Count == 0 {
		t.Fatal("solve latency histogram silent with timing on")
	}
}
