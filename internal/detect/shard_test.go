package detect

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"analogdft/internal/analysis"
	"analogdft/internal/circuits"
	"analogdft/internal/dft"
	"analogdft/internal/fault"
	"analogdft/internal/mna"
)

func TestShardBounds(t *testing.T) {
	cases := []struct {
		n, k int
		want [][2]int
	}{
		{0, 3, [][2]int{{0, 0}}},
		{1, 1, [][2]int{{0, 1}}},
		{5, 1, [][2]int{{0, 5}}},
		{5, 2, [][2]int{{0, 3}, {3, 5}}},
		{6, 3, [][2]int{{0, 2}, {2, 4}, {4, 6}}},
		{7, 3, [][2]int{{0, 3}, {3, 5}, {5, 7}}},
		{3, 8, [][2]int{{0, 1}, {1, 2}, {2, 3}}}, // k clamps to n
		{4, 0, [][2]int{{0, 4}}},                 // k clamps to 1
	}
	for _, c := range cases {
		got := ShardBounds(c.n, c.k)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ShardBounds(%d, %d) = %v, want %v", c.n, c.k, got, c.want)
		}
		// Ranges must tile [0, n) contiguously.
		lo := 0
		for _, b := range got {
			if b[0] != lo || b[1] < b[0] {
				t.Errorf("ShardBounds(%d, %d): range %v breaks the tiling at %d", c.n, c.k, b, lo)
			}
			lo = b[1]
		}
	}
}

func TestBuildMatrixRangeValidation(t *testing.T) {
	bench := circuits.PaperBiquad()
	m, err := dft.Apply(bench.Circuit, bench.Chain)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.DeviationUniverse(bench.Circuit, 0.2)
	opts := Options{Points: 11, Region: analysis.Region{LoHz: 100, HiHz: 5600}}
	n := len(MatrixConfigs(m, opts))
	for _, r := range [][2]int{{-1, 2}, {2, 1}, {0, n + 1}} {
		if _, err := BuildMatrixRangeContext(context.Background(), m, faults, opts, r[0], r[1]); err == nil {
			t.Errorf("range %v accepted, want error", r)
		}
	}
	if _, err := BuildMatrixRangeContext(context.Background(), m, faults, opts, 1, 1); err != nil {
		t.Errorf("empty range rejected: %v", err)
	}
}

func TestMergeShardsRejectsMismatches(t *testing.T) {
	if _, err := MergeShards(nil); err == nil {
		t.Error("empty merge accepted")
	}
	a := &Matrix{Source: "a", Region: analysis.Region{LoHz: 1, HiHz: 2}}
	b := &Matrix{Source: "b", Region: analysis.Region{LoHz: 1, HiHz: 2}}
	if _, err := MergeShards([]*Matrix{a, b}); err == nil {
		t.Error("source mismatch accepted")
	}
	c := &Matrix{Source: "a", Region: analysis.Region{LoHz: 1, HiHz: 3}}
	if _, err := MergeShards([]*Matrix{a, c}); err == nil {
		t.Error("region mismatch accepted")
	}
	if _, err := MergeShards([]*Matrix{a, nil}); err == nil {
		t.Error("nil shard accepted")
	}
}

// TestShardedMatrixByteIdentical pins the acceptance criterion: for the
// paper biquad, a matrix assembled from configuration-range shards is
// byte-identical (Det, Omega, configs, errors, summed stats — everything
// except wall-clock Elapsed) to the unsharded build, across all three
// engines, both layouts and several shard counts.
func TestShardedMatrixByteIdentical(t *testing.T) {
	bench := circuits.PaperBiquad()
	m, err := dft.Apply(bench.Circuit, bench.Chain)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.DeviationUniverse(bench.Circuit, 0.2)
	base := Options{
		Eps:       0.10,
		MeasFloor: 0.01,
		Region:    analysis.Region{LoHz: 100, HiHz: 5600},
		Points:    31,
	}
	for _, mode := range []EngineMode{EngineNaive, EngineIncremental, EngineLowRank} {
		for _, layout := range []mna.Layout{mna.LayoutDense, mna.LayoutSparse} {
			opts := base
			opts.Engine = mode
			opts.Layout = layout
			label := fmt.Sprintf("%s/layout=%s", mode, layout)
			ref, err := BuildMatrixContext(context.Background(), m, faults, opts)
			if err != nil {
				t.Fatalf("%s: unsharded build: %v", label, err)
			}
			for _, k := range []int{2, 3, len(ref.Configs)} {
				bounds := ShardBounds(len(MatrixConfigs(m, opts)), k)
				parts := make([]*Matrix, len(bounds))
				for i, b := range bounds {
					parts[i], err = BuildMatrixRangeContext(context.Background(), m, faults, opts, b[0], b[1])
					if err != nil {
						t.Fatalf("%s k=%d: shard %v: %v", label, k, b, err)
					}
				}
				got, err := MergeShards(parts)
				if err != nil {
					t.Fatalf("%s k=%d: merge: %v", label, k, err)
				}
				requireSameMatrix(t, fmt.Sprintf("%s k=%d", label, k), got, ref)
			}
		}
	}
}

// requireSameMatrix fails unless got and ref agree exactly — bitwise on
// every Det and Omega cell — modulo the wall-clock Elapsed field.
func requireSameMatrix(t *testing.T, label string, got, ref *Matrix) {
	t.Helper()
	if got.Source != ref.Source || got.Region != ref.Region {
		t.Fatalf("%s: source/region %q %v vs %q %v", label, got.Source, got.Region, ref.Source, ref.Region)
	}
	if len(got.Configs) != len(ref.Configs) || len(got.Faults) != len(ref.Faults) {
		t.Fatalf("%s: shape %dx%d vs %dx%d", label, len(got.Configs), len(got.Faults), len(ref.Configs), len(ref.Faults))
	}
	for i := range ref.Configs {
		if got.Configs[i].Label() != ref.Configs[i].Label() {
			t.Fatalf("%s: row %d is %s, want %s", label, i, got.Configs[i].Label(), ref.Configs[i].Label())
		}
		if !reflect.DeepEqual(got.Det[i], ref.Det[i]) {
			t.Errorf("%s: Det row %d differs", label, i)
		}
		if !reflect.DeepEqual(got.Omega[i], ref.Omega[i]) {
			t.Errorf("%s: Omega row %d not bit-identical", label, i)
		}
	}
	if len(got.CellErrors) != len(ref.CellErrors) {
		t.Errorf("%s: %d cell errors, want %d", label, len(got.CellErrors), len(ref.CellErrors))
	}
	for i := range got.CellErrors {
		if i < len(ref.CellErrors) && got.CellErrors[i].Error() != ref.CellErrors[i].Error() {
			t.Errorf("%s: cell error %d = %v, want %v", label, i, got.CellErrors[i], ref.CellErrors[i])
		}
	}
	gs, rs := got.Stats, ref.Stats
	gs.Elapsed, rs.Elapsed = 0, 0
	if gs != rs {
		t.Errorf("%s: stats %+v, want %+v", label, gs, rs)
	}
}
