package detect

import (
	"reflect"
	"runtime"
	"testing"

	"analogdft/internal/analysis"
)

// TestNormalizeZeroDefaults pins the documented defaults: a zero Options
// value normalizes to ε = 0.10, 241 sweep points, a 1e-4 measurability
// floor, the default probe sweep, GOMAXPROCS workers and 3 singular
// retries.
func TestNormalizeZeroDefaults(t *testing.T) {
	o := Options{}.Normalize()
	if o.Eps != 0.10 {
		t.Errorf("Eps = %g, want 0.10", o.Eps)
	}
	if o.Points != 241 {
		t.Errorf("Points = %d, want 241", o.Points)
	}
	if o.MeasFloor != 1e-4 {
		t.Errorf("MeasFloor = %g, want 1e-4", o.MeasFloor)
	}
	if o.Probe != analysis.DefaultProbe {
		t.Errorf("Probe = %+v, want analysis.DefaultProbe", o.Probe)
	}
	if want := runtime.GOMAXPROCS(0); o.Workers != want {
		t.Errorf("Workers = %d, want GOMAXPROCS %d", o.Workers, want)
	}
	if o.MaxRetries != 3 {
		t.Errorf("MaxRetries = %d, want 3", o.MaxRetries)
	}
	if o.Region != (analysis.Region{}) {
		t.Errorf("Region = %+v, want zero (derived per circuit)", o.Region)
	}
}

// TestNormalizeRespectsExplicitValues: set fields pass through untouched
// and NoEps suppresses the ε default.
func TestNormalizeRespectsExplicitValues(t *testing.T) {
	in := Options{
		Eps:        0.25,
		Points:     101,
		MeasFloor:  1e-6,
		Workers:    3,
		MaxRetries: 2,
	}
	o := in.Normalize()
	if o.Eps != 0.25 || o.Points != 101 || o.MeasFloor != 1e-6 || o.Workers != 3 || o.MaxRetries != 2 {
		t.Errorf("explicit values changed: %+v", o)
	}
	if o := (Options{NoEps: true}).Normalize(); o.Eps != 0 {
		t.Errorf("NoEps: Eps = %g, want 0", o.Eps)
	}
	if o := (Options{MeasFloor: -1}).Normalize(); o.MeasFloor != 0 {
		t.Errorf("negative MeasFloor = %g, want clamp to 0", o.MeasFloor)
	}
	if o := (Options{MaxRetries: 1 << 20}).Normalize(); o.MaxRetries != analysis.MaxSingularRetries {
		t.Errorf("MaxRetries = %d, want cap %d", o.MaxRetries, analysis.MaxSingularRetries)
	}
}

// TestNormalizeIdempotent: normalizing twice is a no-op — required by the
// cache-key canonicalization, which hashes normalized options.
func TestNormalizeIdempotent(t *testing.T) {
	once := Options{Eps: 0.3, Points: 17}.Normalize()
	if twice := once.Normalize(); !reflect.DeepEqual(twice, once) {
		t.Errorf("Normalize not idempotent: %+v vs %+v", twice, once)
	}
	zero := Options{}.Normalize()
	if again := zero.Normalize(); !reflect.DeepEqual(again, zero) {
		t.Errorf("Normalize of defaults not stable: %+v vs %+v", again, zero)
	}
}
