package detect

import (
	"analogdft/internal/obs"
)

// Engine instrumentation. The counters bridge the deterministic Stats of
// each evaluation into the process-wide registry; they are identical for
// any worker count and scheduling order. Everything that depends on the
// clock or on the actual schedule (chunk latency, per-worker utilization,
// the worker-count gauge) is collected only when obs timing is on, so a
// registry snapshot taken with timing off is fully deterministic.
var (
	dEvaluations = obs.Reg().Counter("detect_evaluations_total",
		"matrix/row evaluations completed")
	dCells = obs.Reg().Counter("detect_cells_total",
		"(configuration, fault) cells evaluated")
	dSolves = obs.Reg().Counter("detect_solves_total",
		"AC grid-point solves accounted by the engine (nominal pre-sweeps, cells, retries)")
	dSingular = obs.Reg().Counter("detect_singular_points_total",
		"grid points left singular after any retries")
	dRetries = obs.Reg().Counter("detect_retries_total",
		"jittered re-solve attempts under the Retry policy")
	dRecovered = obs.Reg().Counter("detect_recovered_total",
		"singular points rescued by a retry")
	dCellErrors = obs.Reg().Counter("detect_cell_errors_total",
		"cells that recorded a simulation error")
	dDegraded = obs.Reg().Counter("detect_policy_degraded_total",
		"failed cells recorded as undetectable under the Degrade/Retry policies")
	dFailFast = obs.Reg().Counter("detect_policy_failfast_total",
		"evaluations aborted by the FailFast policy")
	dCancelled = obs.Reg().Counter("detect_cancelled_total",
		"evaluations abandoned because the caller's context was cancelled")
	// dEngineFallback pairs with the analysis package's engine_patch_total:
	// patches / (patches + fallbacks) is the incremental hit rate.
	dEngineFallback = obs.Reg().Counter("engine_fallback_total",
		"cells the incremental engine could not patch, evaluated on the naive clone path")

	dCellSeconds = obs.Reg().HistogramVec("detect_cell_seconds",
		"per-cell solve latency by requested engine mode (timing on only)", "engine", obs.TimeBuckets)

	dWorkers = obs.Reg().Gauge("detect_workers",
		"worker count of the most recent fan-out (timing on only)")
	dChunkSeconds = obs.Reg().Histogram("detect_chunk_seconds",
		"scheduler chunk latency in seconds (timing on only)", obs.TimeBuckets)
	dChunkCells = obs.Reg().Histogram("detect_chunk_cells",
		"cells per scheduler chunk (timing on only)", obs.CountBuckets)
	dWorkerBusy = obs.Reg().Histogram("detect_worker_busy_ratio",
		"per-worker busy fraction of the fan-out wall time (timing on only)", obs.RatioBuckets)
)

// dlog is the package logger.
var dlog = obs.Logger("detect")

// dSlowCells retains the slowest cell solves seen by this process, each
// stamped with the W3C trace ID of the job that ran it — the bridge from
// a P99 regression on detect_cell_seconds to a concrete job trace.
// Offered only when timing is on, like the histogram it annotates.
var dSlowCells = obs.RegisterExemplars("detect_cell_seconds", 8)

// bridgeStats folds one evaluation's final Stats into the registry.
func bridgeStats(st Stats, policy ErrorPolicy) {
	dEvaluations.Inc()
	dCells.Add(int64(st.CellsDone))
	dSolves.Add(int64(st.Solves))
	dSingular.Add(int64(st.SingularPoints))
	dRetries.Add(int64(st.Retries))
	dRecovered.Add(int64(st.Recovered))
	dCellErrors.Add(int64(st.Errors))
	if policy != FailFast {
		dDegraded.Add(int64(st.Errors))
	}
}
