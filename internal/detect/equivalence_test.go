package detect

import (
	"fmt"
	"math"
	"testing"

	"analogdft/internal/analysis"
	"analogdft/internal/circuits"
	"analogdft/internal/dft"
	"analogdft/internal/fault"
	"analogdft/internal/mna"
	"analogdft/internal/netgen"
)

// omegaTol bounds the allowed |Δω-det| between engine modes. Both modes
// count threshold crossings on the same grid, so any drift beyond
// floating-point noise is an engine bug, not measurement noise.
const omegaTol = 1e-12

// requireEquivalent builds the matrix in every engine mode × layout
// combination (and, for the fast modes, across worker counts) against the
// naive/dense reference and fails on any difference: Det must be
// bit-identical, Omega within omegaTol, and the cell error sets must
// agree position by position.
func requireEquivalent(t *testing.T, m *dft.Modified, faults fault.List, opts Options) {
	t.Helper()
	naive := opts
	naive.Engine = EngineNaive
	naive.Layout = mna.LayoutDense
	naive.Workers = 1
	ref, err := BuildMatrix(m, faults, naive)
	if err != nil {
		t.Fatalf("naive build: %v", err)
	}
	check := func(label string, got *Matrix) {
		t.Helper()
		if got.NumConfigs() != ref.NumConfigs() || got.NumFaults() != ref.NumFaults() {
			t.Fatalf("%s: shape %dx%d vs naive %dx%d", label,
				got.NumConfigs(), got.NumFaults(), ref.NumConfigs(), ref.NumFaults())
		}
		for i := range ref.Det {
			for j := range ref.Det[i] {
				if got.Det[i][j] != ref.Det[i][j] {
					t.Errorf("%s: Det[%d][%d] = %t, naive %t (fault %s, config %s)",
						label, i, j, got.Det[i][j], ref.Det[i][j],
						faults[j].ID, ref.Configs[i].Label())
				}
				if d := math.Abs(got.Omega[i][j] - ref.Omega[i][j]); d > omegaTol {
					t.Errorf("%s: Omega[%d][%d] differs by %g (got %g, naive %g)",
						label, i, j, d, got.Omega[i][j], ref.Omega[i][j])
				}
			}
		}
		if len(got.CellErrors) != len(ref.CellErrors) {
			t.Errorf("%s: %d cell errors, naive %d", label, len(got.CellErrors), len(ref.CellErrors))
		}
	}
	// The naive mode under the sparse layout closes the reference loop:
	// if both references agree, the fast modes only need comparing once
	// per combination.
	sparseNaive := naive
	sparseNaive.Layout = mna.LayoutSparse
	if got, err := BuildMatrix(m, faults, sparseNaive); err != nil {
		t.Fatalf("naive/sparse build: %v", err)
	} else {
		check("naive/layout=sparse", got)
	}
	for _, mode := range []EngineMode{EngineIncremental, EngineLowRank} {
		for _, layout := range []mna.Layout{mna.LayoutDense, mna.LayoutSparse} {
			for _, workers := range []int{1, 4} {
				fast := opts
				fast.Engine = mode
				fast.Layout = layout
				fast.Workers = workers
				label := fmt.Sprintf("%s/layout=%s/workers=%d", mode, layout, workers)
				got, err := BuildMatrix(m, faults, fast)
				if err != nil {
					t.Fatalf("%s build: %v", label, err)
				}
				check(label, got)
			}
		}
	}
}

// TestEngineEquivalenceBiquad checks the paper's own circuit: the full
// 8-configuration matrix with the calibrated region, in both engine modes.
func TestEngineEquivalenceBiquad(t *testing.T) {
	bench := circuits.PaperBiquad()
	m, err := dft.Apply(bench.Circuit, bench.Chain)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.DeviationUniverse(bench.Circuit, 0.2)
	opts := Options{
		Eps:       0.10,
		MeasFloor: 0.01,
		Region:    analysis.Region{LoHz: 100, HiHz: 5600},
		Points:    61,
	}
	requireEquivalent(t, m, faults, opts)
}

// TestEngineEquivalenceFallback mixes catastrophic faults (which the
// incremental engine cannot patch) into the universe: every such cell
// must fall back to the naive path and still agree exactly.
func TestEngineEquivalenceFallback(t *testing.T) {
	bench := circuits.PaperBiquad()
	m, err := dft.Apply(bench.Circuit, bench.Chain)
	if err != nil {
		t.Fatal(err)
	}
	faults := append(fault.DeviationUniverse(bench.Circuit, 0.2),
		fault.Fault{ID: "R1:open", Component: "R1", Kind: fault.Open},
		fault.Fault{ID: "C1:short", Component: "C1", Kind: fault.Short},
		fault.Fault{ID: "OP2:gain", Component: "OP2", Kind: fault.OpampGain, Factor: 0.01},
	)
	opts := Options{
		Eps:       0.10,
		MeasFloor: 0.01,
		Region:    analysis.Region{LoHz: 100, HiHz: 5600},
		Points:    31,
	}
	requireEquivalent(t, m, faults, opts)
}

// TestEngineEquivalenceGenerated fuzzes the equivalence over 20 random
// stable active-RC circuits: for every generated netlist the incremental
// and naive engines must produce bit-identical Det matrices and Omega
// values within omegaTol, for multiple worker counts.
func TestEngineEquivalenceGenerated(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			spec := netgen.Spec{Stages: 2, Seed: seed, AllowBiquad: seed%3 == 0}
			bench, err := netgen.Random(spec)
			if err != nil {
				t.Fatal(err)
			}
			m, err := dft.Apply(bench.Circuit, bench.Chain)
			if err != nil {
				t.Fatal(err)
			}
			faults := fault.DeviationUniverse(bench.Circuit, 0.2)
			opts := Options{
				Region: analysis.Region{LoHz: 100, HiHz: 1e6},
				Points: 21,
			}
			requireEquivalent(t, m, faults, opts)
		})
	}
}
