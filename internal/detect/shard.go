package detect

import (
	"context"
	"fmt"

	"analogdft/internal/analysis"
	"analogdft/internal/dft"
	"analogdft/internal/fault"
)

// This file is the configuration-range sharding surface of the matrix
// builder: a matrix over N configurations splits into K contiguous row
// ranges, each built independently (on one process or many) against the
// same pinned Ω_reference, then reassembled by MergeShards. Because the
// cell engine is deterministic for any Workers value and every shard
// shares the region and grid, the merged matrix is byte-identical to an
// unsharded build.

// MatrixConfigs returns the configuration rows a matrix build over m
// would produce under opts, in row order: the 2^n configurations
// (transparent one included only with IncludeTransparent) after the
// MaxFollowers filter. Shard planners use it to size and split the row
// range before any simulation happens.
func MatrixConfigs(m *dft.Modified, opts Options) []dft.Configuration {
	return matrixConfigs(m, opts.Normalize())
}

// matrixConfigs applies the row filtering shared by every matrix entry
// point. opts is already normalized.
func matrixConfigs(m *dft.Modified, opts Options) []dft.Configuration {
	configs := m.Configurations(opts.IncludeTransparent)
	if opts.MaxFollowers > 0 {
		var kept []dft.Configuration
		for _, cfg := range configs {
			if cfg.FollowerCount() <= opts.MaxFollowers {
				kept = append(kept, cfg)
			}
		}
		configs = kept
	}
	return configs
}

// MatrixRegion resolves the Ω_reference a matrix build over m would use:
// opts.Region when pinned, otherwise the region derived from the
// functional configuration. Shard planners resolve it once and pin it
// into every shard's Options so all shards measure on the same grid.
func MatrixRegion(m *dft.Modified, opts Options) (analysis.Region, error) {
	opts = opts.Normalize()
	functional, err := m.Configure(dft.Configuration{Index: 0, N: m.N()})
	if err != nil {
		return analysis.Region{}, err
	}
	return resolveRegion(functional, opts)
}

// BuildMatrixRangeContext builds rows [lo, hi) of the configuration list
// MatrixConfigs reports, with the same semantics as BuildMatrixContext
// restricted to that range: the returned Matrix has hi-lo rows, its
// Stats count only the work of those rows (their nominal pre-sweeps
// included), and its CellErrors are in shard-local row-major order.
// Unless opts.Region pins the region, it is still derived from the
// functional configuration — identical for every range of one matrix.
func BuildMatrixRangeContext(ctx context.Context, m *dft.Modified, faults fault.List, opts Options, lo, hi int) (*Matrix, error) {
	n := len(matrixConfigs(m, opts.Normalize()))
	if lo < 0 || hi < lo || hi > n {
		return nil, fmt.Errorf("detect: config range [%d,%d) outside [0,%d)", lo, hi, n)
	}
	return buildMatrixRange(ctx, m, faults, opts, lo, hi)
}

// MergeShards reassembles a matrix from contiguous row shards, in shard
// order. Every shard must come from the same build plan: same source,
// same fault list, same region. Rows, Det/Omega and CellErrors are
// concatenated (shard-local row-major error order therefore becomes
// global row-major order) and Stats fields are summed — each shard
// pre-sweeps only its own rows' nominals, so the sums equal an unsharded
// build's counts. Elapsed is summed too (aggregate simulation time);
// callers that want wall-clock semantics overwrite it.
func MergeShards(parts []*Matrix) (*Matrix, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("detect: merge of zero shards")
	}
	first := parts[0]
	out := &Matrix{
		Source: first.Source,
		Faults: first.Faults,
		Region: first.Region,
	}
	for s, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("detect: shard %d is nil", s)
		}
		if p.Source != out.Source {
			return nil, fmt.Errorf("detect: shard %d source %q, want %q", s, p.Source, out.Source)
		}
		if p.Region != out.Region {
			return nil, fmt.Errorf("detect: shard %d region %v, want %v", s, p.Region, out.Region)
		}
		if len(p.Faults) != len(out.Faults) {
			return nil, fmt.Errorf("detect: shard %d has %d faults, want %d", s, len(p.Faults), len(out.Faults))
		}
		for j := range p.Faults {
			if p.Faults[j].ID != out.Faults[j].ID {
				return nil, fmt.Errorf("detect: shard %d fault %d is %s, want %s", s, j, p.Faults[j].ID, out.Faults[j].ID)
			}
		}
		if len(p.Det) != len(p.Configs) || len(p.Omega) != len(p.Configs) {
			return nil, fmt.Errorf("detect: shard %d has %d configs but %d/%d det/omega rows",
				s, len(p.Configs), len(p.Det), len(p.Omega))
		}
		out.Configs = append(out.Configs, p.Configs...)
		out.Det = append(out.Det, p.Det...)
		out.Omega = append(out.Omega, p.Omega...)
		out.CellErrors = append(out.CellErrors, p.CellErrors...)
		out.Stats.Cells += p.Stats.Cells
		out.Stats.CellsDone += p.Stats.CellsDone
		out.Stats.Solves += p.Stats.Solves
		out.Stats.SingularPoints += p.Stats.SingularPoints
		out.Stats.Retries += p.Stats.Retries
		out.Stats.Recovered += p.Stats.Recovered
		out.Stats.Errors += p.Stats.Errors
		out.Stats.Elapsed += p.Stats.Elapsed
	}
	return out, nil
}

// ShardBounds splits n rows into at most k contiguous [lo, hi) ranges of
// near-equal size (the first n%k ranges get one extra row). k is clamped
// to [1, n]; n of zero yields a single empty range so a degenerate
// matrix still builds through the shard path.
func ShardBounds(n, k int) [][2]int {
	if n <= 0 {
		return [][2]int{{0, 0}}
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	base, extra := n/k, n%k
	bounds := make([][2]int, 0, k)
	lo := 0
	for i := 0; i < k; i++ {
		hi := lo + base
		if i < extra {
			hi++
		}
		bounds = append(bounds, [2]int{lo, hi})
		lo = hi
	}
	return bounds
}
