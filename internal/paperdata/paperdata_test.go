package paperdata

import (
	"math"
	"testing"
)

func TestShapes(t *testing.T) {
	if len(FaultIDs) != 8 || len(ConfigLabels) != 7 || len(OpampNames) != 3 {
		t.Fatal("fixture shapes")
	}
	if len(Fig5Det) != 7 || len(Table2Omega) != 7 || len(Table4Omega) != 4 {
		t.Fatal("matrix row counts")
	}
	for i := range Fig5Det {
		if len(Fig5Det[i]) != 8 || len(Table2Omega[i]) != 8 {
			t.Fatalf("row %d width", i)
		}
	}
	for i := range Table4Omega {
		if len(Table4Omega[i]) != 8 || len(Table4Det[i]) != 8 {
			t.Fatalf("table 4 row %d width", i)
		}
	}
}

// The detectability matrix and ω-det table must be mutually consistent:
// d[i][j] ⇔ ω[i][j] > 0.
func TestFig5ConsistentWithTable2(t *testing.T) {
	for i := range Fig5Det {
		for j := range Fig5Det[i] {
			if Fig5Det[i][j] != (Table2Omega[i][j] > 0) {
				t.Errorf("(%s, %s): det=%v but ω=%g",
					ConfigLabels[i], FaultIDs[j], Fig5Det[i][j], Table2Omega[i][j])
			}
		}
	}
}

// Table 4 rows must match the corresponding Table 2 rows: the partial-DFT
// configurations 00-, 10-, 01-, 11- emulate the same networks as the full
// DFT configurations C0, C1, C2, C3.
func TestTable4RowsComeFromTable2(t *testing.T) {
	for i := 0; i < 4; i++ {
		for j := range Table4Omega[i] {
			if Table4Omega[i][j] != Table2Omega[i][j] {
				t.Errorf("row %d col %d: %g vs %g", i, j, Table4Omega[i][j], Table2Omega[i][j])
			}
		}
	}
}

func TestHeadlineAverages(t *testing.T) {
	// Graph 1: initial ⟨ω-det⟩ from row C0 of Table 2.
	s := 0.0
	for _, w := range Table2Omega[0] {
		s += w
	}
	if got := s / 8; math.Abs(got-InitialAvgOmegaDet) > 1e-9 {
		t.Errorf("initial ⟨ω-det⟩ = %g, want %g", got, InitialAvgOmegaDet)
	}
	// Graph 2: best case over all configurations.
	s = 0
	for j := 0; j < 8; j++ {
		best := 0.0
		for i := 0; i < 7; i++ {
			if Table2Omega[i][j] > best {
				best = Table2Omega[i][j]
			}
		}
		s += best
	}
	if got := s / 8; math.Abs(got-BruteForceAvgOmegaDet) > 1e-9 {
		t.Errorf("brute-force ⟨ω-det⟩ = %g, want %g", got, BruteForceAvgOmegaDet)
	}
	// §4.2: {C2, C5} and {C1, C2}.
	avgOf := func(rows ...int) float64 {
		s := 0.0
		for j := 0; j < 8; j++ {
			best := 0.0
			for _, i := range rows {
				if Table2Omega[i][j] > best {
					best = Table2Omega[i][j]
				}
			}
			s += best
		}
		return s / 8
	}
	if got := avgOf(2, 5); math.Abs(got-OptimizedAvgOmegaDet) > 1e-9 {
		t.Errorf("{C2,C5} ⟨ω-det⟩ = %g, want %g", got, OptimizedAvgOmegaDet)
	}
	if got := avgOf(1, 2); math.Abs(got-AlternativeAvgOmegaDet) > 1e-9 {
		t.Errorf("{C1,C2} ⟨ω-det⟩ = %g, want %g", got, AlternativeAvgOmegaDet)
	}
	// §4.3: partial DFT best case over Table 4.
	s = 0
	for j := 0; j < 8; j++ {
		best := 0.0
		for i := 0; i < 4; i++ {
			if Table4Omega[i][j] > best {
				best = Table4Omega[i][j]
			}
		}
		s += best
	}
	if got := s / 8; math.Abs(got-PartialDFTAvgOmegaDet) > 1e-9 {
		t.Errorf("partial ⟨ω-det⟩ = %g, want %g", got, PartialDFTAvgOmegaDet)
	}
}

func TestInitialCoverageFromRowC0(t *testing.T) {
	n := 0
	for _, d := range Fig5Det[0] {
		if d {
			n++
		}
	}
	if got := float64(n) / 8; got != InitialFaultCoverage {
		t.Errorf("initial coverage = %g, want %g", got, InitialFaultCoverage)
	}
}

func TestDFTCoverageIsFull(t *testing.T) {
	for j := 0; j < 8; j++ {
		any := false
		for i := 0; i < 7; i++ {
			if Fig5Det[i][j] {
				any = true
				break
			}
		}
		if !any {
			t.Errorf("fault %s not covered by any configuration", FaultIDs[j])
		}
	}
}

func TestOpampMappingMatchesBits(t *testing.T) {
	// Table 3 must equal the bit decomposition of the configuration index.
	for idx := 0; idx < 8; idx++ {
		label := ConfigLabels[0][:1] + string(rune('0'+idx))
		want := OpampMapping[label]
		var got []string
		for b := 0; b < 3; b++ {
			if idx&(1<<b) != 0 {
				got = append(got, OpampNames[b])
			}
		}
		if len(got) != len(want) {
			t.Errorf("%s: %v vs %v", label, got, want)
			continue
		}
		for k := range got {
			if got[k] != want[k] {
				t.Errorf("%s: %v vs %v", label, got, want)
			}
		}
	}
}

func TestPaperSOPAbsorbsToCanonical(t *testing.T) {
	// Every absorbed term must appear in the paper's unabsorbed list, and
	// every paper term must be a superset of some absorbed term.
	contains := func(term []string, lit string) bool {
		for _, l := range term {
			if l == lit {
				return true
			}
		}
		return false
	}
	superset := func(sup, sub []string) bool {
		for _, l := range sub {
			if !contains(sup, l) {
				return false
			}
		}
		return true
	}
	for _, a := range XiSOPTermsAbsorbed {
		found := false
		for _, p := range XiSOPTermsPaper {
			if len(p) == len(a) && superset(p, a) {
				found = true
			}
		}
		if !found {
			t.Errorf("absorbed term %v not printed in the paper", a)
		}
	}
	for _, p := range XiSOPTermsPaper {
		found := false
		for _, a := range XiSOPTermsAbsorbed {
			if superset(p, a) {
				found = true
			}
		}
		if !found {
			t.Errorf("paper term %v not absorbed by any canonical term", p)
		}
	}
}

func TestMatrixWrapper(t *testing.T) {
	mx := Matrix()
	if mx.NumConfigs() != 7 || mx.NumFaults() != 8 {
		t.Fatalf("matrix shape %dx%d", mx.NumConfigs(), mx.NumFaults())
	}
	if mx.FaultCoverage() != 1 {
		t.Fatal("published matrix must reach full coverage")
	}
	if mx.Det[2][6] != true { // C2 detects fC1
		t.Fatal("C2/fC1 cell")
	}
	if mx.Omega[3][4] != 100 { // C3/fR5
		t.Fatal("C3/fR5 cell")
	}
	// Wrapper copies: mutating the matrix must not corrupt the fixtures.
	mx.Det[0][0] = false
	mx.Omega[0][0] = -1
	if !Fig5Det[0][0] || Table2Omega[0][0] != 54 {
		t.Fatal("fixtures aliased by Matrix()")
	}
}

func TestPartialMatrixWrapper(t *testing.T) {
	mx := PartialMatrix()
	if mx.NumConfigs() != 4 || mx.NumFaults() != 8 {
		t.Fatalf("partial shape %dx%d", mx.NumConfigs(), mx.NumFaults())
	}
	if mx.FaultCoverage() != 1 {
		t.Fatal("partial matrix coverage")
	}
	for i, cfg := range mx.Configs {
		if cfg.Index != i || cfg.N != 2 {
			t.Fatalf("config %d = %+v", i, cfg)
		}
	}
}

func TestFaultsFixture(t *testing.T) {
	faults := Faults()
	if len(faults) != 8 {
		t.Fatalf("faults = %d", len(faults))
	}
	if err := faults.Validate(); err != nil {
		t.Fatal(err)
	}
	f, ok := faults.ByID("fR3")
	if !ok || f.Component != "R3" || f.Factor != 1.2 {
		t.Fatalf("fR3 = %+v", f)
	}
}
