// Package paperdata embeds the measurement data published in the paper
// (Renovell, Azaïs, Bertrand, DATE 1998) as ground-truth fixtures:
//
//   - Figure 5 — the fault detectability matrix of the DFT-modified
//     biquadratic filter, configurations C0..C6 × faults fR1..fC2;
//   - Table 2  — the ω-detectability table for the same grid;
//   - Table 4  — the ω-detectability table of the partial-DFT circuit
//     (configurable OP1, OP2; classical OP3);
//   - the headline §4/§5 results derived from them.
//
// The optimization pipeline of §4 is a deterministic function of these
// matrices, so running internal/core on this data must reproduce every
// number in §4 exactly; tests and the paperrepro command rely on that.
package paperdata

// FaultIDs are the eight soft faults of the paper's fault list: 20%
// deviations on each passive component of the biquadratic filter.
var FaultIDs = []string{"fR1", "fR2", "fR3", "fR4", "fR5", "fR6", "fC1", "fC2"}

// ConfigLabels are the seven usable configurations (C7, the transparent
// configuration, is excluded from the passive-fault study).
var ConfigLabels = []string{"C0", "C1", "C2", "C3", "C4", "C5", "C6"}

// OpampNames are the three opamps of the biquadratic filter in chain
// order; configuration index bit i corresponds to OpampNames[i] in
// follower mode (Table 1 / Table 3 of the paper).
var OpampNames = []string{"OP1", "OP2", "OP3"}

// Fig5Det is the fault detectability matrix of Figure 5:
// Fig5Det[i][j] == true iff fault FaultIDs[j] is detectable in
// configuration Ci.
var Fig5Det = [][]bool{
	//         fR1    fR2    fR3    fR4    fR5    fR6    fC1    fC2
	/* C0 */ {true, false, false, true, false, false, false, false},
	/* C1 */ {false, false, true, false, true, true, false, true},
	/* C2 */ {true, true, false, true, true, true, true, false},
	/* C3 */ {false, false, false, false, true, true, false, false},
	/* C4 */ {true, true, true, true, true, false, false, false},
	/* C5 */ {false, false, true, false, false, false, false, true},
	/* C6 */ {true, true, false, true, false, false, false, false},
}

// Table2Omega is the ω-detectability table (Table 2), in percent.
var Table2Omega = [][]float64{
	//        fR1 fR2 fR3 fR4 fR5  fR6  fC1 fC2
	/* C0 */ {54, 0, 0, 46, 0, 0, 0, 0},
	/* C1 */ {0, 0, 30, 0, 30, 30, 0, 30},
	/* C2 */ {30, 30, 0, 30, 30, 30, 30, 0},
	/* C3 */ {0, 0, 0, 0, 100, 100, 0, 0},
	/* C4 */ {14, 70, 70, 70, 70, 0, 0, 0},
	/* C5 */ {0, 0, 40, 0, 0, 0, 0, 40},
	/* C6 */ {66, 40, 0, 40, 0, 0, 0, 0},
}

// Table4Labels are the partial-DFT configuration vectors of Table 4 in the
// paper's "sel1 sel2 -" notation (OP3 is not configurable).
var Table4Labels = []string{"C0(00-)", "C1(10-)", "C2(01-)", "C3(11-)"}

// Table4Omega is the ω-detectability table of the partial-DFT circuit
// (Table 4), in percent. Rows are the four configurations reachable with
// configurable OP1 and OP2.
var Table4Omega = [][]float64{
	//        fR1 fR2 fR3 fR4 fR5  fR6  fC1 fC2
	/* 00- */ {54, 0, 0, 46, 0, 0, 0, 0},
	/* 10- */ {0, 0, 30, 0, 30, 30, 0, 30},
	/* 01- */ {30, 30, 0, 30, 30, 30, 30, 0},
	/* 11- */ {0, 0, 0, 0, 100, 100, 0, 0},
}

// Table4Det is the boolean detectability implied by Table 4 (ω-det > 0).
var Table4Det = func() [][]bool {
	out := make([][]bool, len(Table4Omega))
	for i, row := range Table4Omega {
		out[i] = make([]bool, len(row))
		for j, w := range row {
			out[i][j] = w > 0
		}
	}
	return out
}()

// Published §2–§5 headline results.
const (
	// InitialFaultCoverage: only fR1 and fR4 detectable without DFT (§2).
	InitialFaultCoverage = 0.25
	// DFTFaultCoverage: every fault detectable with the DFT (§3.2).
	DFTFaultCoverage = 1.0
	// InitialAvgOmegaDet: ⟨ω-det⟩ of the initial filter (Graph 1).
	InitialAvgOmegaDet = 12.5
	// BruteForceAvgOmegaDet: best-case ⟨ω-det⟩ over C0..C6 (Graph 2).
	BruteForceAvgOmegaDet = 68.25 // printed as 68.3% in the paper
	// OptimizedAvgOmegaDet: ⟨ω-det⟩ of the optimal 2-configuration set
	// {C2, C5} (§4.2).
	OptimizedAvgOmegaDet = 32.5
	// AlternativeAvgOmegaDet: ⟨ω-det⟩ of the other minimal set {C1, C2}.
	AlternativeAvgOmegaDet = 30.0
	// PartialDFTAvgOmegaDet: best-case ⟨ω-det⟩ of the partial DFT using
	// all four configurations of Table 4 (§4.3 / Graph 4).
	PartialDFTAvgOmegaDet = 52.5
)

// EssentialConfig is the unique essential configuration of §4.1.
const EssentialConfig = "C2"

// MinimalConfigSets are the two minimal test-configuration sets of §4.2.
var MinimalConfigSets = [][]string{{"C1", "C2"}, {"C2", "C5"}}

// OptimalConfigSet is the §4.2 winner after the 3rd-order ω-detectability
// tie-break.
var OptimalConfigSet = []string{"C2", "C5"}

// OptimalOpampSet is the §4.3 partial-DFT solution: configurable OP1 and
// OP2, classical OP3.
var OptimalOpampSet = []string{"OP1", "OP2"}

// XiSOPTermsPaper lists the product terms of the ξ sum-of-products
// expression exactly as printed in §4.1 (before absorption):
// ξ = C1·C2 + C1·C2·C5 + C1·C2·C4 + C2·C4·C5 + C2·C5.
var XiSOPTermsPaper = [][]string{
	{"C1", "C2"},
	{"C1", "C2", "C5"},
	{"C1", "C2", "C4"},
	{"C2", "C4", "C5"},
	{"C2", "C5"},
}

// XiSOPTermsAbsorbed is the same expression after absorption — the
// canonical form produced by Petrick's method with absorption.
var XiSOPTermsAbsorbed = [][]string{{"C1", "C2"}, {"C2", "C5"}}

// OpampMapping is Table 3: configuration → opamps in follower mode.
var OpampMapping = map[string][]string{
	"C0": {},
	"C1": {"OP1"},
	"C2": {"OP2"},
	"C3": {"OP1", "OP2"},
	"C4": {"OP3"},
	"C5": {"OP1", "OP3"},
	"C6": {"OP2", "OP3"},
	"C7": {"OP1", "OP2", "OP3"},
}
