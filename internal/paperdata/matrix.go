package paperdata

import (
	"strings"

	"analogdft/internal/analysis"
	"analogdft/internal/detect"
	"analogdft/internal/dft"
	"analogdft/internal/fault"
)

// placeholderRegion stands in for the paper's (unpublished) Ω_reference;
// the §4 derivations never read it.
var placeholderRegion = analysis.Region{LoHz: 1e2, HiHz: 1e6}

// Faults returns the paper's fault list as fault.Fault values (+20%
// deviations on R1..R6, C1, C2).
func Faults() fault.List {
	var out fault.List
	for _, id := range FaultIDs {
		out = append(out, fault.Fault{
			ID:        id,
			Component: strings.TrimPrefix(id, "f"),
			Kind:      fault.Deviation,
			Factor:    1.2,
		})
	}
	return out
}

// Matrix wraps Figure 5 + Table 2 as a detect.Matrix: rows C0..C6 of the
// fully DFT-modified biquadratic filter.
func Matrix() *detect.Matrix {
	mx := &detect.Matrix{
		Source: "paper-biquad (published data)",
		Faults: Faults(),
		Region: placeholderRegion,
	}
	for i := range Fig5Det {
		mx.Configs = append(mx.Configs, dft.Configuration{Index: i, N: 3})
		mx.Det = append(mx.Det, append([]bool(nil), Fig5Det[i]...))
		mx.Omega = append(mx.Omega, append([]float64(nil), Table2Omega[i]...))
	}
	return mx
}

// PartialMatrix wraps Table 4 as a detect.Matrix: the four configurations
// of the partial-DFT circuit (configurable OP1, OP2).
func PartialMatrix() *detect.Matrix {
	mx := &detect.Matrix{
		Source: "paper-biquad partial DFT (published data)",
		Faults: Faults(),
		Region: placeholderRegion,
	}
	for i := range Table4Omega {
		mx.Configs = append(mx.Configs, dft.Configuration{Index: i, N: 2})
		mx.Det = append(mx.Det, append([]bool(nil), Table4Det[i]...))
		mx.Omega = append(mx.Omega, append([]float64(nil), Table4Omega[i]...))
	}
	return mx
}
