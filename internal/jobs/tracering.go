package jobs

import (
	"sync"

	"analogdft/internal/obs"
)

// JobTrace is the retained trace of one completed job: the W3C identity
// it ran under, the terminal state, and the exported span tree.
type JobTrace struct {
	JobID   string     `json:"job_id"`
	Kind    Kind       `json:"kind"`
	State   State      `json:"state"`
	TraceID string     `json:"trace_id"`
	Parent  string     `json:"parent_span_id,omitempty"` // inbound caller's span ID
	Spans   int        `json:"spans"`
	DurMs   float64    `json:"dur_ms"`
	Trace   *obs.Trace `json:"trace,omitempty"`
}

// Summary returns a copy without the span tree, for listings.
func (jt *JobTrace) Summary() JobTrace {
	s := *jt
	s.Trace = nil
	return s
}

// traceRing retains the last max completed job traces. Terminal jobs
// release their live tracer into the ring, so trace memory is bounded by
// the ring size regardless of how many jobs the table remembers; evicted
// traces are gone (ErrTraceEvicted; the HTTP layer answers 410). Safe for
// concurrent use.
type traceRing struct {
	mu      sync.Mutex
	max     int
	entries []*JobTrace // oldest first
	byID    map[string]*JobTrace
}

// newTraceRing returns a ring keeping the last max traces (min 1).
func newTraceRing(max int) *traceRing {
	if max < 1 {
		max = 1
	}
	return &traceRing{max: max, byID: make(map[string]*JobTrace)}
}

// add retains jt, evicting the oldest entry when full.
func (r *traceRing) add(jt *JobTrace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) == r.max {
		old := r.entries[0]
		copy(r.entries, r.entries[1:])
		r.entries = r.entries[:len(r.entries)-1]
		delete(r.byID, old.JobID)
	}
	r.entries = append(r.entries, jt)
	r.byID[jt.JobID] = jt
}

// get returns the retained trace for a job ID.
func (r *traceRing) get(jobID string) (*JobTrace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	jt, ok := r.byID[jobID]
	return jt, ok
}

// list returns summaries (no span trees), newest first.
func (r *traceRing) list() []JobTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]JobTrace, 0, len(r.entries))
	for i := len(r.entries) - 1; i >= 0; i-- {
		out = append(out, r.entries[i].Summary())
	}
	return out
}

// len returns the number of retained traces.
func (r *traceRing) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}
