package jobs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// resolveKey resolves req and returns its cache key, failing the test on
// validation errors.
func resolveKey(t *testing.T, req Request) string {
	t.Helper()
	res, err := req.Resolve()
	if err != nil {
		t.Fatalf("Resolve(%+v): %v", req, err)
	}
	return res.Key
}

// mutateCosmetics rewrites a deck without changing its meaning: extra
// comments, blank lines, inline comments stripped/added, and runs of
// spaces collapsed or expanded.
func mutateCosmetics(deck string) string {
	var b strings.Builder
	b.WriteString("* cosmetic header the parser must ignore\n\n")
	for _, line := range strings.Split(deck, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "*") {
			continue // drop originals; we inject our own comments
		}
		// Expand field separators and tack on an inline comment.
		fields := strings.Fields(strings.SplitN(trimmed, ";", 2)[0])
		if len(fields) == 0 {
			continue
		}
		b.WriteString("  " + strings.Join(fields, "\t  ") + "   ; noise\n")
		b.WriteString("* interleaved comment\n")
	}
	return b.String()
}

// testDecks returns every deck under testdata that resolves as a matrix
// job — the property-test corpus.
func testDecks(t *testing.T) map[string]string {
	t.Helper()
	decks := make(map[string]string)
	for _, pattern := range []string{"../../testdata/*.cir", "../../testdata/lint/*.cir"} {
		paths, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range paths {
			raw, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			req := Request{Kind: KindMatrix, Deck: string(raw)}
			if _, err := req.Resolve(); err != nil {
				continue // lint fixtures are deliberately broken decks
			}
			decks[filepath.Base(p)] = string(raw)
		}
	}
	if len(decks) == 0 {
		t.Fatal("no resolvable testdata decks found")
	}
	return decks
}

// TestCacheKeyCosmeticInvariance: whitespace, comments and blank lines
// must not change the content address — over every resolvable testdata
// deck and every job kind.
func TestCacheKeyCosmeticInvariance(t *testing.T) {
	for name, deck := range testDecks(t) {
		for _, kind := range []Kind{KindEvaluate, KindMatrix, KindOptimize} {
			orig := resolveKey(t, Request{Kind: kind, Deck: deck})
			mutated := resolveKey(t, Request{Kind: kind, Deck: mutateCosmetics(deck)})
			if orig != mutated {
				t.Errorf("%s/%s: cosmetic mutation changed key:\n  %s\n  %s", name, kind, orig, mutated)
			}
		}
	}
}

// TestCacheKeyOptionDefaultsInvariance: spelling out the documented
// defaults must hash identically to omitting them, in any combination.
func TestCacheKeyOptionDefaultsInvariance(t *testing.T) {
	for name, deck := range testDecks(t) {
		base := resolveKey(t, Request{Kind: KindMatrix, Deck: deck})
		explicit := []OptionSpec{
			{Eps: 0.10},
			{Points: 241},
			{MeasFloor: 1e-4},
			{Engine: "incremental"},
			{Layout: "auto"},
			{OnError: "degrade"},
			{Eps: 0.10, Points: 241, MeasFloor: 1e-4, Engine: "incremental", Layout: "auto", OnError: "degrade"},
			// Workers never enters the key: same matrix at any parallelism.
			{Workers: 7},
		}
		for i, spec := range explicit {
			got := resolveKey(t, Request{Kind: KindMatrix, Deck: deck, Options: spec})
			if got != base {
				t.Errorf("%s: explicit defaults #%d changed key: %s != %s", name, i, got, base)
			}
		}
	}
}

// TestCacheKeyValueSpelling: equivalent SPICE value spellings (15.915k vs
// 15915) collapse to one key.
func TestCacheKeyValueSpelling(t *testing.T) {
	deck, err := os.ReadFile("../../testdata/biquad.cir")
	if err != nil {
		t.Fatal(err)
	}
	s := string(deck)
	if !strings.Contains(s, "15.915k") {
		t.Fatal("fixture drifted: biquad.cir no longer uses 15.915k")
	}
	respelled := strings.ReplaceAll(s, "15.915k", "15915")
	a := resolveKey(t, Request{Kind: KindMatrix, Deck: s})
	b := resolveKey(t, Request{Kind: KindMatrix, Deck: respelled})
	if a != b {
		t.Errorf("value respelling changed key: %s != %s", a, b)
	}
}

// TestCacheKeySensitivity: anything that can change the result must
// change the key — component values, job kind, engine mode, fault
// universe, thresholds and optimize cost.
func TestCacheKeySensitivity(t *testing.T) {
	deckBytes, err := os.ReadFile("../../testdata/biquad.cir")
	if err != nil {
		t.Fatal(err)
	}
	deck := string(deckBytes)
	base := Request{Kind: KindMatrix, Deck: deck}
	baseKey := resolveKey(t, base)

	perturbed := strings.Replace(deck, "15.915k", "16k", 1)
	if perturbed == deck {
		t.Fatal("fixture drifted: component value not found")
	}
	variants := map[string]Request{
		"component value": {Kind: KindMatrix, Deck: perturbed},
		"job kind":        {Kind: KindEvaluate, Deck: deck},
		"engine mode":     {Kind: KindMatrix, Deck: deck, Options: OptionSpec{Engine: "naive"}},
		"layout dense":    {Kind: KindMatrix, Deck: deck, Options: OptionSpec{Layout: "dense"}},
		"layout sparse":   {Kind: KindMatrix, Deck: deck, Options: OptionSpec{Layout: "sparse"}},
		"eps":             {Kind: KindMatrix, Deck: deck, Options: OptionSpec{Eps: 0.25}},
		"points":          {Kind: KindMatrix, Deck: deck, Options: OptionSpec{Points: 101}},
		"region":          {Kind: KindMatrix, Deck: deck, Options: OptionSpec{LoHz: 100, HiHz: 1e5}},
		"on_error":        {Kind: KindMatrix, Deck: deck, Options: OptionSpec{OnError: "failfast"}},
		"fault universe":  {Kind: KindMatrix, Deck: deck, Faults: FaultSpec{Universe: "catastrophic"}},
		"fault frac":      {Kind: KindMatrix, Deck: deck, Faults: FaultSpec{Frac: 0.5}},
	}
	seen := map[string]string{baseKey: "base"}
	for what, req := range variants {
		key := resolveKey(t, req)
		if prev, dup := seen[key]; dup {
			t.Errorf("%s: key collides with %s: %s", what, prev, key)
		}
		seen[key] = what
	}

	optA := resolveKey(t, Request{Kind: KindOptimize, Deck: deck, Cost: "configs"})
	optB := resolveKey(t, Request{Kind: KindOptimize, Deck: deck, Cost: "opamps"})
	if optA == optB {
		t.Errorf("optimize cost does not enter the key: %s", optA)
	}
}

// TestCacheKeyBenchMatchesInlineDeck: submitting the library bench and
// submitting its rendered deck are the same job.
func TestCacheKeyStable(t *testing.T) {
	deckBytes, err := os.ReadFile("../../testdata/biquad.cir")
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Kind: KindMatrix, Deck: string(deckBytes)}
	a, b := resolveKey(t, req), resolveKey(t, req)
	if a != b {
		t.Errorf("key not deterministic: %s != %s", a, b)
	}
	if !strings.HasPrefix(a, "sha256:") || len(a) != len("sha256:")+64 {
		t.Errorf("malformed key %q", a)
	}
}
