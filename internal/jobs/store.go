package jobs

import "encoding/json"

// Store is the result-persistence seam of the job layer: a
// content-addressed map from a request's CacheKey to its finished JSON
// payload. Equal keys guarantee byte-identical results (the key covers
// everything result-affecting, see CacheKey), which is what makes a
// store shareable: any replica may serve any stored payload verbatim.
//
// Payloads are immutable by contract — Get hands out shared bytes and
// callers must not modify them. Implementations must be safe for
// concurrent use; a Get miss is how every storage problem (absent,
// evicted, corrupt) surfaces, so Get has no error to propagate.
//
// The in-memory memstore is the default; the disk-backed fsstore lets
// replicas share one cache directory. Both bound their footprint with
// LRU eviction.
type Store interface {
	// Get returns the payload stored under key, marking it recently
	// used. A miss is returned for absent, evicted and unreadable
	// entries alike.
	Get(key string) (json.RawMessage, bool)
	// Put stores (or refreshes) key's payload, evicting least recently
	// used entries to stay within the store's bound.
	Put(key string, payload json.RawMessage)
	// Stats returns an occupancy snapshot, for /healthz and tests.
	Stats() StoreStats
	// Close releases the store's resources (for fsstore: persists the
	// index). The manager closes the store it was built with.
	Close() error
}

// StoreStats is a store occupancy snapshot.
type StoreStats struct {
	// Kind names the implementation: "mem" or "fs".
	Kind string `json:"kind"`
	// Entries is the number of stored payloads.
	Entries int `json:"entries"`
	// Bytes is the total payload size.
	Bytes int64 `json:"bytes"`
	// Path is the backing directory, empty for in-memory stores.
	Path string `json:"path,omitempty"`
}
