package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"sort"
	"strings"
	"testing"
	"time"

	"analogdft/internal/obs"
)

const clientTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

// submitTraced submits req under the given traceparent header value.
func submitTraced(t *testing.T, m *Manager, header string, req Request) View {
	t.Helper()
	ctx := context.Background()
	if header != "" {
		tc, err := obs.ParseTraceparent(header)
		if err != nil {
			t.Fatal(err)
		}
		ctx = obs.ContextWithTrace(ctx, tc)
	}
	v, err := m.SubmitCtx(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// spanNames collects the names of node's children.
func spanNames(node *obs.SpanNode) []string {
	out := make([]string, len(node.Children))
	for i, c := range node.Children {
		out[i] = c.Name
	}
	return out
}

// findChild returns the first child with the given name.
func findChild(node *obs.SpanNode, name string) *obs.SpanNode {
	for _, c := range node.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

func TestJobTracePropagatesTraceparent(t *testing.T) {
	m := testManager(t, Config{Workers: 1}, func(ctx context.Context, res *Resolved) (json.RawMessage, error) {
		_, s := obs.Start(ctx, "detect.matrix")
		s.End()
		return json.RawMessage(`{"ok":true}`), nil
	})
	v := submitTraced(t, m, clientTraceparent, biquadRequest(t, 300))
	if v.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("view trace id = %s", v.TraceID)
	}
	awaitState(t, m, v.ID)

	jt, err := m.Trace(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if jt.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %s, inbound ID not propagated", jt.TraceID)
	}
	if jt.Parent != "00f067aa0ba902b7" {
		t.Errorf("parent span id = %s", jt.Parent)
	}
	if jt.State != StateDone || len(jt.Trace.Spans) != 1 {
		t.Fatalf("trace = %+v", jt)
	}
	root := jt.Trace.Spans[0]
	if root.Name != "job" || root.Tags["trace_id"] != jt.TraceID {
		t.Fatalf("root = %+v", root)
	}
	names := spanNames(root)
	for _, want := range []string{"jobs.cache_lookup", "jobs.enqueue_wait", "jobs.run"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing span %s in %v", want, names)
		}
	}
	if lookup := findChild(root, "jobs.cache_lookup"); lookup.Tags["hit"] != "false" {
		t.Errorf("cache_lookup = %+v", lookup)
	}
	run := findChild(root, "jobs.run")
	if run == nil || findChild(run, "detect.matrix") == nil {
		t.Errorf("engine span not nested under jobs.run: %+v", run)
	}
}

func TestJobTraceGeneratedIdentity(t *testing.T) {
	m := testManager(t, Config{Workers: 1}, func(ctx context.Context, res *Resolved) (json.RawMessage, error) {
		// The run context must carry the job's trace identity for
		// exemplar stamping.
		if obs.TraceFrom(ctx).IsZero() {
			t.Error("run context has no trace identity")
		}
		return json.RawMessage(`{}`), nil
	})
	v, err := m.Submit(biquadRequest(t, 310))
	if err != nil {
		t.Fatal(err)
	}
	if v.TraceID == "" || v.TraceID == strings.Repeat("0", 32) {
		t.Fatalf("generated trace id = %q", v.TraceID)
	}
	awaitState(t, m, v.ID)
	jt, err := m.Trace(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if jt.Parent != "" {
		t.Errorf("generated identity has a parent span: %q", jt.Parent)
	}
}

func TestJobTraceCacheHit(t *testing.T) {
	m := testManager(t, Config{Workers: 1}, func(ctx context.Context, res *Resolved) (json.RawMessage, error) {
		return json.RawMessage(`{}`), nil
	})
	req := biquadRequest(t, 320)
	first, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, m, first.ID)
	second, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second submit missed the cache")
	}
	jt, err := m.Trace(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	root := jt.Trace.Spans[0]
	lookup := findChild(root, "jobs.cache_lookup")
	if lookup == nil || lookup.Tags["hit"] != "true" {
		t.Fatalf("cached trace = %+v", root)
	}
	if findChild(root, "jobs.run") != nil {
		t.Error("cached job has a run span")
	}
}

func TestJobTraceCanceledQueued(t *testing.T) {
	release := make(chan struct{})
	m := testManager(t, Config{Workers: 1, QueueDepth: 2}, func(ctx context.Context, res *Resolved) (json.RawMessage, error) {
		<-release
		return json.RawMessage(`{}`), nil
	})
	defer close(release)
	blocker, err := m.Submit(biquadRequest(t, 330))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, blocker.ID)
	queued, err := m.Submit(biquadRequest(t, 331))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	jt, err := m.Trace(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if jt.State != StateCanceled {
		t.Fatalf("state = %s", jt.State)
	}
	wait := findChild(jt.Trace.Spans[0], "jobs.enqueue_wait")
	if wait == nil || wait.Tags["canceled"] != "true" {
		t.Fatalf("wait span = %+v", wait)
	}
}

// awaitRetired polls until the job's trace has moved from its live
// tracer into the bounded ring (retirement is asynchronous).
func awaitRetired(t *testing.T, m *Manager, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := m.traces.get(id); ok {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("trace of %s never retired", id)
}

func TestTraceRingEviction(t *testing.T) {
	m := testManager(t, Config{Workers: 1, TraceEntries: 2}, func(ctx context.Context, res *Resolved) (json.RawMessage, error) {
		return json.RawMessage(`{}`), nil
	})
	var ids []string
	for i := 0; i < 3; i++ {
		v, err := m.Submit(biquadRequest(t, 340+i))
		if err != nil {
			t.Fatal(err)
		}
		awaitState(t, m, v.ID)
		awaitRetired(t, m, v.ID)
		ids = append(ids, v.ID)
	}
	if _, err := m.Trace(ids[0]); !errors.Is(err, ErrTraceEvicted) {
		t.Fatalf("oldest trace err = %v, want ErrTraceEvicted", err)
	}
	for _, id := range ids[1:] {
		if _, err := m.Trace(id); err != nil {
			t.Fatalf("Trace(%s): %v", id, err)
		}
	}
	sums := m.TraceSummaries()
	if len(sums) != 2 || sums[0].JobID != ids[2] || sums[1].JobID != ids[1] {
		t.Fatalf("summaries = %+v", sums)
	}
	if sums[0].Trace != nil {
		t.Error("summary carries a span tree")
	}
	if _, err := m.Trace("job-999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown job err = %v", err)
	}
}

// TestCloseForceCancelDrainsTraceRetirement pins the shutdown contract:
// a slow job force-canceled at the drain deadline must still have its
// trace retired into the ring by the time Close returns, so a trace read
// racing shutdown sees the retained export, never a gap.
func TestCloseForceCancelDrainsTraceRetirement(t *testing.T) {
	m := New(WithWorkers(1), stubRunner(func(ctx context.Context, res *Resolved) (json.RawMessage, error) {
		<-ctx.Done() // slow job: only the forced cancel ends it
		return nil, ctx.Err()
	}))
	v, err := m.Submit(biquadRequest(t, 360))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, v.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close: err = %v, want deadline exceeded", err)
	}
	// No polling: Close's return must already imply full retirement.
	if _, ok := m.traces.get(v.ID); !ok {
		t.Fatal("trace not in the ring after forced Close")
	}
	jt, err := m.Trace(v.ID)
	if err != nil {
		t.Fatalf("Trace after Close: %v", err)
	}
	if jt.State != StateCanceled {
		t.Errorf("retired trace state = %s, want canceled", jt.State)
	}
	if root := jt.Trace.Spans[0]; root.Tags["state"] != string(StateCanceled) {
		t.Errorf("root span tags = %v, want state=canceled", root.Tags)
	}
	sums := m.TraceSummaries()
	if len(sums) != 1 || sums[0].JobID != v.ID {
		t.Errorf("summaries after Close = %+v", sums)
	}
}

// shape canonicalizes a span subtree into a deterministic string: span
// names only, children sorted by name, so concurrent sibling order and
// all timing is erased.
func shape(node *obs.SpanNode) string {
	parts := make([]string, len(node.Children))
	for i, c := range node.Children {
		parts[i] = shape(c)
	}
	sort.Strings(parts)
	return node.Name + "(" + strings.Join(parts, ",") + ")"
}

// TestTraceShapeDeterministicAcrossWorkers pins the satellite
// requirement: with timing gated off, the exported span tree of a real
// simulation has the same shape regardless of simulation parallelism —
// schedule-dependent spans (per-chunk solves) must be timing-gated.
func TestTraceShapeDeterministicAcrossWorkers(t *testing.T) {
	if obs.TimingOn() {
		t.Fatal("test requires timing off")
	}
	run := func(simWorkers int) string {
		m := testManager(t, Config{Workers: 1, SimWorkers: simWorkers}, nil) // real runner
		v, err := m.Submit(biquadRequest(t, 350))
		if err != nil {
			t.Fatal(err)
		}
		final := awaitState(t, m, v.ID)
		if final.State != StateDone {
			t.Fatalf("job with %d sim workers finished %s: %s", simWorkers, final.State, final.Err)
		}
		jt, err := m.Trace(v.ID)
		if err != nil {
			t.Fatal(err)
		}
		return shape(jt.Trace.Spans[0])
	}
	one := run(1)
	four := run(4)
	if one != four {
		t.Fatalf("span tree shape depends on worker count:\n 1: %s\n 4: %s", one, four)
	}
	if !strings.Contains(one, "jobs.run") || !strings.Contains(one, "detect.") {
		t.Fatalf("trace shape misses engine spans: %s", one)
	}
}
