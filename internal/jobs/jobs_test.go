package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"
)

// stubRunner adapts a feed-less stub function to the Runner seam, so
// queue and lifecycle behaviour can be tested without simulating
// anything.
func stubRunner(fn func(ctx context.Context, res *Resolved) (json.RawMessage, error)) Option {
	return WithRunner(RunnerFunc(func(ctx context.Context, res *Resolved, feed *RowFeed) (json.RawMessage, error) {
		return fn(ctx, res)
	}))
}

// testManager builds a manager whose runner is fn (nil keeps the real
// session runner) and closes it with the test.
func testManager(t *testing.T, cfg Config, fn func(ctx context.Context, res *Resolved) (json.RawMessage, error)) *Manager {
	t.Helper()
	opts := []Option{WithConfig(cfg)}
	if fn != nil {
		opts = append(opts, stubRunner(fn))
	}
	m := New(opts...)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := m.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return m
}

// biquadRequest returns a small matrix request over the testdata deck,
// uniquified by salt so each call has a distinct cache key.
func biquadRequest(t *testing.T, salt int) Request {
	t.Helper()
	deck, err := os.ReadFile("../../testdata/biquad.cir")
	if err != nil {
		t.Fatal(err)
	}
	return Request{
		Kind:    KindMatrix,
		Deck:    string(deck),
		Options: OptionSpec{Points: 11 + salt},
	}
}

// awaitState polls until job id reaches a terminal state.
func awaitState(t *testing.T, m *Manager, id string) View {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		v, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if v.State.Terminal() {
			return v
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return View{}
}

func TestManagerRunsJob(t *testing.T) {
	m := testManager(t, Config{Workers: 1}, func(ctx context.Context, res *Resolved) (json.RawMessage, error) {
		return json.RawMessage(`{"ok":true}`), nil
	})
	v, err := m.Submit(biquadRequest(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	if v.Cached {
		t.Error("fresh job reported cached")
	}
	done := awaitState(t, m, v.ID)
	if done.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", done.State, done.Err)
	}
	raw, _, err := m.Result(v.ID)
	if err != nil || string(raw) != `{"ok":true}` {
		t.Errorf("Result = %s, %v", raw, err)
	}
}

func TestManagerCacheHit(t *testing.T) {
	runs := make(chan struct{}, 8)
	m := testManager(t, Config{Workers: 1}, func(ctx context.Context, res *Resolved) (json.RawMessage, error) {
		runs <- struct{}{}
		return json.RawMessage(`{"n":1}`), nil
	})
	req := biquadRequest(t, 1)
	hits0 := jCacheHits.Value()

	first, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, m, first.ID)

	second, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.State != StateDone {
		t.Fatalf("resubmit: cached=%v state=%s, want cached done", second.Cached, second.State)
	}
	if got := jCacheHits.Value() - hits0; got != 1 {
		t.Errorf("cache hits delta = %d, want 1", got)
	}
	raw, _, err := m.Result(second.ID)
	if err != nil || string(raw) != `{"n":1}` {
		t.Errorf("cached Result = %s, %v", raw, err)
	}
	if len(runs) != 1 {
		t.Errorf("runner executed %d times, want 1", len(runs))
	}
	if first.Key != second.Key {
		t.Errorf("same request, different keys: %s vs %s", first.Key, second.Key)
	}
}

func TestManagerQueueFull(t *testing.T) {
	release := make(chan struct{})
	m := testManager(t, Config{Workers: 1, QueueDepth: 1}, func(ctx context.Context, res *Resolved) (json.RawMessage, error) {
		<-release
		return json.RawMessage(`{}`), nil
	})
	defer close(release)

	// Job 0 occupies the worker, job 1 the queue slot; job 2 must bounce.
	var views []View
	for i := 0; i < 2; i++ {
		v, err := m.Submit(biquadRequest(t, 10+i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		views = append(views, v)
		if i == 0 {
			waitRunning(t, m, v.ID)
		}
	}
	rejected0 := jRejected.Value()
	if _, err := m.Submit(biquadRequest(t, 12)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err = %v, want ErrQueueFull", err)
	}
	if got := jRejected.Value() - rejected0; got != 1 {
		t.Errorf("rejected delta = %d, want 1", got)
	}
	// Draining the queue makes room again.
	release <- struct{}{}
	release <- struct{}{}
	awaitState(t, m, views[1].ID)
	if _, err := m.Submit(biquadRequest(t, 13)); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
}

// waitRunning polls until job id leaves the queued state.
func waitRunning(t *testing.T, m *Manager, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		v, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State == StateRunning {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never started", id)
}

func TestManagerCancelQueued(t *testing.T) {
	release := make(chan struct{})
	m := testManager(t, Config{Workers: 1, QueueDepth: 2}, func(ctx context.Context, res *Resolved) (json.RawMessage, error) {
		<-release
		return json.RawMessage(`{}`), nil
	})
	defer close(release)

	blocker, err := m.Submit(biquadRequest(t, 20))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, blocker.ID)
	queued, err := m.Submit(biquadRequest(t, 21))
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateCanceled {
		t.Fatalf("queued cancel: state = %s, want canceled", v.State)
	}
	// The worker must skip the cancelled job, not run it.
	release <- struct{}{}
	awaitState(t, m, blocker.ID)
	if v, _ := m.Get(queued.ID); v.State != StateCanceled {
		t.Errorf("cancelled job resurrected as %s", v.State)
	}
	if _, err := m.Cancel(queued.ID); !errors.Is(err, ErrFinished) {
		t.Errorf("double cancel: err = %v, want ErrFinished", err)
	}
}

func TestManagerCancelRunning(t *testing.T) {
	started := make(chan struct{})
	m := testManager(t, Config{Workers: 1}, func(ctx context.Context, res *Resolved) (json.RawMessage, error) {
		close(started)
		<-ctx.Done() // simulate a ctx-aware solve loop
		return nil, ctx.Err()
	})
	v, err := m.Submit(biquadRequest(t, 30))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	waitRunning(t, m, v.ID)
	if _, err := m.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	done := awaitState(t, m, v.ID)
	if done.State != StateCanceled {
		t.Errorf("state = %s, want canceled", done.State)
	}
	if done.HasResult {
		t.Error("cancelled job has a result")
	}
}

func TestManagerFailedJob(t *testing.T) {
	m := testManager(t, Config{Workers: 1}, func(ctx context.Context, res *Resolved) (json.RawMessage, error) {
		return nil, fmt.Errorf("solver exploded")
	})
	v, err := m.Submit(biquadRequest(t, 40))
	if err != nil {
		t.Fatal(err)
	}
	done := awaitState(t, m, v.ID)
	if done.State != StateFailed || done.Err != "solver exploded" {
		t.Errorf("state=%s err=%q, want failed/solver exploded", done.State, done.Err)
	}
	// Failures must not poison the cache.
	if m.CacheLen() != 0 {
		t.Errorf("failed job cached: %d entries", m.CacheLen())
	}
}

func TestManagerCloseDrains(t *testing.T) {
	slow := make(chan struct{})
	m := New(WithWorkers(1), stubRunner(func(ctx context.Context, res *Resolved) (json.RawMessage, error) {
		<-slow
		if err := ctx.Err(); err != nil {
			return nil, err // a forced shutdown would cancel us
		}
		return json.RawMessage(`{"drained":true}`), nil
	}))
	v, err := m.Submit(biquadRequest(t, 50))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, v.ID)
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(slow)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Graceful drain lets the in-flight job finish, not cancel.
	done, err := m.Get(v.ID)
	if err != nil || done.State != StateDone {
		t.Errorf("after drain: state=%s err=%v, want done", done.State, err)
	}
	if _, err := m.Submit(biquadRequest(t, 51)); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: err = %v, want ErrClosed", err)
	}
}

func TestManagerCloseDeadlineForcesCancel(t *testing.T) {
	m := New(WithWorkers(1), stubRunner(func(ctx context.Context, res *Resolved) (json.RawMessage, error) {
		<-ctx.Done() // never finishes voluntarily
		return nil, ctx.Err()
	}))
	v, err := m.Submit(biquadRequest(t, 60))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, v.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close: err = %v, want deadline exceeded", err)
	}
	done, err := m.Get(v.ID)
	if err != nil || done.State != StateCanceled {
		t.Errorf("after forced close: state=%s err=%v, want canceled", done.State, err)
	}
}

func TestManagerBadRequest(t *testing.T) {
	m := testManager(t, Config{}, nil)
	cases := []Request{
		{},                                   // no kind
		{Kind: "frobnicate"},                 // unknown kind
		{Kind: KindMatrix},                   // neither bench nor deck
		{Kind: KindMatrix, Bench: "no-such"}, // unknown bench
		{Kind: KindMatrix, Bench: "paper-biquad", Deck: "x"},                                  // both
		{Kind: KindMatrix, Bench: "paper-biquad", Faults: FaultSpec{Universe: "weird"}},       // bad universe
		{Kind: KindMatrix, Bench: "paper-biquad", Faults: FaultSpec{Frac: 1.5}},               // bad frac
		{Kind: KindMatrix, Bench: "paper-biquad", Options: OptionSpec{LoHz: 10}},              // half a region
		{Kind: KindMatrix, Bench: "paper-biquad", Options: OptionSpec{Engine: "antigravity"}}, // bad engine
		{Kind: KindMatrix, Bench: "paper-biquad", Options: OptionSpec{OnError: "explode"}},    // bad policy
		{Kind: KindOptimize, Bench: "paper-biquad", Cost: "karma"},                            // bad cost
		{Kind: KindMatrix, Deck: "R1 a b 1k\n.input a\n.output b\n.end"},                      // no chain
	}
	for i, req := range cases {
		if _, err := m.Submit(req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("case %d (%+v): err = %v, want ErrBadRequest", i, req, err)
		}
	}
	if _, err := m.Get("job-999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get unknown: err = %v, want ErrNotFound", err)
	}
	if _, err := m.Cancel("job-999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Cancel unknown: err = %v, want ErrNotFound", err)
	}
}

func TestManagerListOrder(t *testing.T) {
	m := testManager(t, Config{Workers: 1}, func(ctx context.Context, res *Resolved) (json.RawMessage, error) {
		return json.RawMessage(`{}`), nil
	})
	var ids []string
	for i := 0; i < 3; i++ {
		v, err := m.Submit(biquadRequest(t, 70+i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
		awaitState(t, m, v.ID)
	}
	list := m.List()
	if len(list) != 3 {
		t.Fatalf("List = %d jobs, want 3", len(list))
	}
	for i, v := range list {
		if v.ID != ids[i] {
			t.Errorf("List[%d] = %s, want %s", i, v.ID, ids[i])
		}
	}
}

func TestMemStoreLRU(t *testing.T) {
	c := NewMemStore(2)
	c.Put("a", json.RawMessage(`1`))
	c.Put("b", json.RawMessage(`2`))
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", json.RawMessage(`3`)) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted despite recent use")
	}
	if got, _ := c.Get("c"); string(got) != `3` {
		t.Errorf("c = %s", got)
	}
	c.Put("a", json.RawMessage(`9`)) // refresh, no growth
	if st := c.Stats(); st.Entries != 2 || st.Kind != "mem" || st.Bytes != 2 {
		t.Errorf("Stats = %+v, want 2 mem entries of 2 bytes", st)
	}
	if got, _ := c.Get("a"); string(got) != `9` {
		t.Errorf("refreshed a = %s", got)
	}
}

func TestDeprecatedNewManagerShim(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 3})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := m.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	cfg := m.Config()
	if cfg.Workers != 1 || cfg.QueueDepth != 3 || cfg.Shards != 1 {
		t.Errorf("Config = %+v, want workers 1, queue 3, shards 1", cfg)
	}
	if _, capacity := m.QueueStats(); capacity != 3 {
		t.Errorf("queue capacity = %d, want 3", capacity)
	}
}
