package jobs

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// fsStore is the disk-backed Store: one JSON file per finished payload
// under a shared directory, content-addressed by cache key, so any
// number of dftserved replicas pointed at the same -store-dir serve each
// other's results. The layout is deliberately boring:
//
//	<dir>/<64-hex-of-key>.json   one stored payload, written atomically
//	<dir>/index.json             {key, bytes} list, oldest first
//
// Writes go through a temp file and os.Rename, so a reader on any
// replica sees either the whole payload or nothing — cross-process
// coordination is rename atomicity, nothing else. The index is a warm-
// start convenience (it preserves LRU order across restarts); Open
// verifies it against the directory and rebuilds it from a scan when it
// is missing, stale or corrupt. Reads never trust the disk: a payload
// that is not valid JSON is deleted and reported as a miss, so a torn or
// tampered file costs one re-simulation, never an error.
//
// Eviction is LRU by total payload bytes, tracked per process. Replicas
// do not share usage information, so the bound is per-replica
// approximate — good enough for a cache whose entries any replica can
// recompute.
type fsStore struct {
	dir      string
	maxBytes int64

	mu    sync.Mutex
	bytes int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

// fsEntry is one indexed payload.
type fsEntry struct {
	Key   string `json:"key"`
	Bytes int64  `json:"bytes"`
}

// fsIndex is the on-disk form of the store index.
type fsIndex struct {
	Entries []fsEntry `json:"entries"` // oldest first
}

const fsIndexName = "index.json"

// NewFSStore opens (creating if needed) a disk store under dir, bounded
// to maxBytes of payloads (min 1 MiB). Entries already in the directory
// — from a previous run or another replica — are adopted.
func NewFSStore(dir string, maxBytes int64) (Store, error) {
	if maxBytes < 1<<20 {
		maxBytes = 1 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: store dir: %w", err)
	}
	s := &fsStore{
		dir:      dir,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// fsFileName maps a cache key onto its payload file name. Only the
// canonical "sha256:<64 hex>" key shape is mappable — everything else is
// rejected, which doubles as the path-traversal guard (no separators or
// dots can survive).
func fsFileName(key string) (string, bool) {
	hex, ok := strings.CutPrefix(key, "sha256:")
	if !ok || len(hex) != 64 {
		return "", false
	}
	for _, c := range hex {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", false
		}
	}
	return hex + ".json", true
}

// fsFileKey is the inverse of fsFileName, for directory scans.
func fsFileKey(name string) (string, bool) {
	hex, ok := strings.CutSuffix(name, ".json")
	if !ok {
		return "", false
	}
	if _, ok := fsFileName("sha256:" + hex); !ok {
		return "", false
	}
	return "sha256:" + hex, true
}

// load seeds the in-memory index: the persisted index.json first (it
// carries LRU order), then a directory scan for payloads the index does
// not know (written by another replica, or orphaned by a crash between
// rename and index write). Sizes come from the filesystem, never from
// the index, so a stale index cannot misaccount the byte bound.
func (s *fsStore) load() error {
	known := make(map[string]bool)
	if raw, err := os.ReadFile(filepath.Join(s.dir, fsIndexName)); err == nil {
		var idx fsIndex
		if json.Unmarshal(raw, &idx) == nil {
			for _, e := range idx.Entries { // oldest first
				name, ok := fsFileName(e.Key)
				if !ok || known[e.Key] {
					continue
				}
				fi, err := os.Stat(filepath.Join(s.dir, name))
				if err != nil {
					continue // evicted or removed behind our back
				}
				known[e.Key] = true
				s.items[e.Key] = s.ll.PushFront(&fsEntry{Key: e.Key, Bytes: fi.Size()})
				s.bytes += fi.Size()
			}
		}
	}
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("jobs: store dir: %w", err)
	}
	for _, de := range names {
		key, ok := fsFileKey(de.Name())
		if !ok || known[key] {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			continue
		}
		s.items[key] = s.ll.PushFront(&fsEntry{Key: key, Bytes: fi.Size()})
		s.bytes += fi.Size()
	}
	s.evictLocked()
	s.writeIndexLocked()
	s.publishLocked()
	return nil
}

func (s *fsStore) Get(key string) (json.RawMessage, bool) {
	name, ok := fsFileName(key)
	if !ok {
		return nil, false
	}
	path := filepath.Join(s.dir, name)
	payload, err := os.ReadFile(path)
	if err != nil {
		// Absent (possibly evicted by another replica): drop any stale
		// index entry and miss.
		s.mu.Lock()
		s.dropLocked(key)
		s.publishLocked()
		s.mu.Unlock()
		return nil, false
	}
	if !json.Valid(payload) {
		// Torn write from a crashed replica or on-disk corruption: the
		// entry is poison, so delete it and re-simulate.
		jStoreCorrupt.Inc()
		jlog.Warn("store payload corrupt, dropping", "key", key)
		_ = os.Remove(path)
		s.mu.Lock()
		s.dropLocked(key)
		s.publishLocked()
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
	} else {
		// Written by another replica since we last looked: adopt it.
		s.items[key] = s.ll.PushFront(&fsEntry{Key: key, Bytes: int64(len(payload))})
		s.bytes += int64(len(payload))
		s.evictLocked()
		s.writeIndexLocked()
	}
	s.publishLocked()
	s.mu.Unlock()
	return payload, true
}

func (s *fsStore) Put(key string, payload json.RawMessage) {
	name, ok := fsFileName(key)
	if !ok {
		return // non-canonical keys are not persistable
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		jlog.Warn("store write failed", "key", key, "err", err)
		return
	}
	_, werr := tmp.Write(payload)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		jlog.Warn("store write failed", "key", key, "err", errors.Join(werr, cerr))
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		_ = os.Remove(tmp.Name())
		jlog.Warn("store write failed", "key", key, "err", err)
		return
	}
	jStoreResultBytes.Observe(float64(len(payload)))
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		e := el.Value.(*fsEntry)
		s.bytes += int64(len(payload)) - e.Bytes
		e.Bytes = int64(len(payload))
		s.ll.MoveToFront(el)
	} else {
		s.items[key] = s.ll.PushFront(&fsEntry{Key: key, Bytes: int64(len(payload))})
		s.bytes += int64(len(payload))
	}
	s.evictLocked()
	s.writeIndexLocked()
	s.publishLocked()
	s.mu.Unlock()
}

// dropLocked removes key from the in-memory index. Caller holds s.mu.
func (s *fsStore) dropLocked(key string) {
	el, ok := s.items[key]
	if !ok {
		return
	}
	e := el.Value.(*fsEntry)
	s.ll.Remove(el)
	delete(s.items, key)
	s.bytes -= e.Bytes
}

// evictLocked deletes least recently used payloads until the store fits
// its byte bound. Caller holds s.mu.
func (s *fsStore) evictLocked() {
	for s.bytes > s.maxBytes && s.ll.Len() > 1 {
		oldest := s.ll.Back()
		e := oldest.Value.(*fsEntry)
		if name, ok := fsFileName(e.Key); ok {
			_ = os.Remove(filepath.Join(s.dir, name))
		}
		s.dropLocked(e.Key)
		jStoreEvictions.Inc()
		jCacheEvictions.Inc()
	}
}

// writeIndexLocked persists the index atomically, oldest entry first so
// load reconstructs the LRU order. Best-effort: a failed index write
// costs warm-start order, not correctness. Caller holds s.mu.
func (s *fsStore) writeIndexLocked() {
	idx := fsIndex{Entries: make([]fsEntry, 0, s.ll.Len())}
	for el := s.ll.Back(); el != nil; el = el.Prev() {
		idx.Entries = append(idx.Entries, *el.Value.(*fsEntry))
	}
	raw, err := json.Marshal(idx)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-idx-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(raw)
	cerr := tmp.Close()
	if werr != nil || cerr != nil || os.Rename(tmp.Name(), filepath.Join(s.dir, fsIndexName)) != nil {
		_ = os.Remove(tmp.Name())
	}
}

// publishLocked refreshes the occupancy gauges. Caller holds s.mu.
func (s *fsStore) publishLocked() {
	jCacheEntries.Set(float64(s.ll.Len()))
	jStoreBytes.Set(float64(s.bytes))
}

func (s *fsStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{Kind: "fs", Entries: s.ll.Len(), Bytes: s.bytes, Path: s.dir}
}

func (s *fsStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeIndexLocked()
	return nil
}
