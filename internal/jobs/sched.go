package jobs

import (
	"context"
	"sync"
)

// Task is one unit of schedulable work. The context it receives is the
// scheduler's base context: canceled when Close force-cancels, otherwise
// alive for the task's whole run. Cancellation of an individual job is
// layered on top by the manager (the task derives its own sub-context),
// so a Scheduler needs no per-task handle.
type Task func(ctx context.Context)

// Scheduler is the admission-and-dispatch seam of the job layer: it
// decides whether work is accepted (backpressure), holds it while every
// executor is busy, and runs it. The default poolScheduler is a bounded
// queue in front of a fixed worker pool — the shape the HTTP layer's 429
// mapping assumes — but the interface leaves room for priority queues or
// remote dispatch. Implementations must be safe for concurrent use.
type Scheduler interface {
	// Enqueue admits t for execution. ErrQueueFull signals backpressure
	// (the caller may retry later); ErrClosed that Close has begun.
	// Enqueue never blocks.
	Enqueue(t Task) error
	// Depth returns the number of admitted-but-not-started tasks and
	// the queue capacity, for backpressure responses and health
	// snapshots.
	Depth() (depth, capacity int)
	// Close stops intake and drains: admitted tasks finish normally and
	// Close returns nil when the pool is idle. If ctx expires first the
	// base context every task received is canceled, Close waits for the
	// executors to acknowledge, and returns ctx's error.
	Close(ctx context.Context) error
}

// poolScheduler is the default Scheduler: a bounded channel queue
// drained by a fixed pool of goroutine workers.
type poolScheduler struct {
	queue      chan Task
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPoolScheduler starts a scheduler with workers goroutines draining a
// queue of the given depth (minimums 1).
func NewPoolScheduler(workers, depth int) Scheduler {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &poolScheduler{
		queue:      make(chan Task, depth),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *poolScheduler) Enqueue(t Task) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	select {
	case s.queue <- t:
	default:
		return ErrQueueFull
	}
	jQueueDepth.Set(float64(len(s.queue)))
	return nil
}

func (s *poolScheduler) Depth() (int, int) {
	return len(s.queue), cap(s.queue)
}

// worker drains the queue until Close closes it.
func (s *poolScheduler) worker() {
	defer s.wg.Done()
	for t := range s.queue {
		jQueueDepth.Set(float64(len(s.queue)))
		t(s.baseCtx)
	}
}

func (s *poolScheduler) Close(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.baseCancel()
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}
