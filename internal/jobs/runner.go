package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"analogdft"
	"analogdft/internal/detect"
	"analogdft/internal/obs"
)

// Runner is the execution seam of the job layer: it turns a resolved
// request into its JSON payload. The context carries the job's tracer
// and cancellation; feed (nil-safe, may be nil in tests) receives every
// matrix row before Run returns so streaming clients always see the
// complete matrix. Implementations must be safe for concurrent use —
// the worker pool runs many jobs at once through one Runner.
type Runner interface {
	Run(ctx context.Context, res *Resolved, feed *RowFeed) (json.RawMessage, error)
}

// RunnerFunc adapts a function to the Runner interface (tests stub
// execution with it).
type RunnerFunc func(ctx context.Context, res *Resolved, feed *RowFeed) (json.RawMessage, error)

// Run implements Runner.
func (f RunnerFunc) Run(ctx context.Context, res *Resolved, feed *RowFeed) (json.RawMessage, error) {
	return f(ctx, res, feed)
}

// sessionRunner is the default Runner: it executes jobs through the
// context-aware Session API. With shards > 1, matrix jobs are split into
// contiguous configuration-range shards built concurrently against one
// pinned Ω_reference and merged deterministically — the merged matrix is
// byte-identical to an unsharded build (the engine is deterministic for
// any Workers value and every shard shares the region and grid), so the
// shard count never enters the cache key.
type sessionRunner struct {
	shards int
}

func (r *sessionRunner) Run(ctx context.Context, res *Resolved, feed *RowFeed) (json.RawMessage, error) {
	if res.Req.Kind == KindMatrix && r.shards > 1 {
		return r.runMatrixSharded(ctx, res, feed)
	}
	return runResolved(ctx, res, feed)
}

// runMatrixSharded builds the matrix as r.shards configuration-range
// shards. The row list and region are resolved once up front; each shard
// then builds rows [lo, hi) under a "jobs.shard" span, publishing its
// rows to the feed as it completes, and the shards merge in range order.
// Per-job simulation parallelism is divided among the shards so the
// total worker count matches an unsharded run.
func (r *sessionRunner) runMatrixSharded(ctx context.Context, res *Resolved, feed *RowFeed) (json.RawMessage, error) {
	s := analogdft.NewSession(res.Bench, res.Faults, res.Options)
	mod, err := s.Modified()
	if err != nil {
		return nil, err
	}
	opts := s.Options
	configs := detect.MatrixConfigs(mod, opts)
	region, err := detect.MatrixRegion(mod, opts)
	if err != nil {
		return nil, err
	}
	opts.Region = region // every shard measures on the same grid
	bounds := detect.ShardBounds(len(configs), r.shards)
	if opts.Workers > len(bounds) {
		opts.Workers /= len(bounds)
	} else {
		opts.Workers = 1
	}

	start := obs.Now()
	parts := make([]*detect.Matrix, len(bounds))
	errs := make([]error, len(bounds))
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for i, b := range bounds {
		// Spans start sequentially here (not in the goroutines) so the
		// trace tree lists shards in range order.
		cctx, span := obs.Start(sctx, "jobs.shard")
		span.SetTag("shard", fmt.Sprint(i))
		span.SetTag("rows", fmt.Sprintf("[%d,%d)", b[0], b[1]))
		wg.Add(1)
		go func(i int, lo, hi int, cctx context.Context, span *obs.Span) {
			defer wg.Done()
			defer span.End()
			mx, err := detect.BuildMatrixRangeContext(cctx, mod, res.Faults, opts, lo, hi)
			if err != nil {
				errs[i] = err
				cancel() // fail fast: stop sibling shards
				return
			}
			parts[i] = mx
			jShardRows.Observe(float64(hi - lo))
			if obs.TimingOn() {
				jShardSeconds.Observe(span.Duration().Seconds())
			}
			feed.Publish(rowEvents(mx, lo)...)
		}(i, b[0], b[1], cctx, span)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err // a canceled job reports ctx's error, not a shard's
	}
	// A failing shard cancels its siblings, so their errors are context
	// noise: report the real failure, not the fastest cancellation.
	var shardErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if shardErr == nil {
			shardErr = err
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			shardErr = err
			break
		}
	}
	if shardErr != nil {
		return nil, shardErr
	}
	mx, err := detect.MergeShards(parts)
	if err != nil {
		return nil, err
	}
	mx.Stats.Elapsed = obs.Since(start) // wall clock, like an unsharded build
	out := matrixResult(mx)
	raw, err := json.Marshal(out)
	if err != nil {
		return nil, fmt.Errorf("jobs: marshal result: %w", err)
	}
	return raw, nil
}
