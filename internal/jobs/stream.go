package jobs

import (
	"sync"

	"analogdft/internal/detect"
)

// RowEvent is one completed matrix row as delivered to streaming result
// watchers: the row's global index, its configuration label, and the
// detectability verdicts of every fault. The slices are shared with the
// job's result payload and must not be modified.
type RowEvent struct {
	Index  int       `json:"index"`
	Config string    `json:"config"`
	Det    []bool    `json:"det"`
	Omega  []float64 `json:"omega"`
}

// RowFeed fans completed matrix rows out to any number of watchers. The
// runner publishes rows as shards finish (out of order is fine — events
// carry their index); the manager closes the feed when the job reaches a
// terminal state. Watchers poll with Snapshot, blocking on the returned
// channel between polls, so a watcher can select against its own
// context without the feed tracking subscribers.
type RowFeed struct {
	mu   sync.Mutex
	rows []RowEvent
	done bool
	wake chan struct{} // closed and replaced on every change
}

func newRowFeed() *RowFeed {
	return &RowFeed{wake: make(chan struct{})}
}

// Publish appends rows and wakes every watcher. No-op after Close.
func (f *RowFeed) Publish(rows ...RowEvent) {
	if f == nil || len(rows) == 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return
	}
	f.rows = append(f.rows, rows...)
	close(f.wake)
	f.wake = make(chan struct{})
}

// Close marks the feed finished and wakes every watcher. Idempotent.
func (f *RowFeed) Close() {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return
	}
	f.done = true
	close(f.wake)
}

// Snapshot returns the rows published at index from onward, whether the
// feed is finished, and a channel that is closed on the next change (or
// already closed when the feed is finished — a late watcher never
// blocks). Watchers loop: drain the returned rows, stop when done,
// otherwise wait on the channel or their own context.
func (f *RowFeed) Snapshot(from int) (rows []RowEvent, done bool, wake <-chan struct{}) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from < len(f.rows) {
		rows = f.rows[from:]
	}
	return rows, f.done, f.wake
}

// rowEvents flattens a matrix (or matrix shard) into row events, with
// base as the global index of the first row.
func rowEvents(mx *detect.Matrix, base int) []RowEvent {
	events := make([]RowEvent, 0, len(mx.Configs))
	for i, cfg := range mx.Configs {
		events = append(events, RowEvent{
			Index:  base + i,
			Config: cfg.Label(),
			Det:    mx.Det[i],
			Omega:  mx.Omega[i],
		})
	}
	return events
}
