package jobs

// Config sizes a Manager. New code configures a Manager with functional
// options (WithWorkers, WithStore, …); Config remains the value they
// collectively build, exposed by Manager.Config for health snapshots.
type Config struct {
	// Workers is the worker-pool size: how many jobs simulate
	// concurrently (default 2).
	Workers int
	// QueueDepth bounds the number of jobs waiting behind the running
	// ones; a full queue makes Submit return ErrQueueFull (default 16).
	QueueDepth int
	// CacheEntries bounds the content-addressed result cache
	// (default 128). Ignored when WithStore supplies the store.
	CacheEntries int
	// SimWorkers, when positive, is the default per-job simulation
	// parallelism for requests that do not set options.workers. Zero
	// leaves the library default (GOMAXPROCS) — sensible for Workers=1,
	// oversubscribed otherwise.
	SimWorkers int
	// TraceEntries bounds the ring of completed job traces served by
	// GET /v1/jobs/{id}/trace (default 64).
	TraceEntries int
	// Shards is the number of configuration-range shards a matrix job
	// is split into (default 1: unsharded). Sharding never changes the
	// result — shard counts stay out of the cache key.
	Shards int
}

func (c Config) normalize() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.TraceEntries <= 0 {
		c.TraceEntries = 64
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	return c
}

// options collects everything New assembles a Manager from: the sizing
// Config plus the three seams (store, scheduler, runner), each defaulted
// when no option supplies one.
type options struct {
	cfg    Config
	store  Store
	sched  Scheduler
	runner Runner
}

// Option configures a Manager built by New.
type Option func(*options)

// WithConfig replaces the whole sizing configuration at once. Options
// applied after it override individual fields.
func WithConfig(cfg Config) Option { return func(o *options) { o.cfg = cfg } }

// WithWorkers sets the worker-pool size (ignored when WithScheduler
// supplies the scheduler).
func WithWorkers(n int) Option { return func(o *options) { o.cfg.Workers = n } }

// WithQueueDepth bounds the queue behind the running jobs (ignored when
// WithScheduler supplies the scheduler).
func WithQueueDepth(n int) Option { return func(o *options) { o.cfg.QueueDepth = n } }

// WithCacheEntries bounds the default in-memory result store (ignored
// when WithStore supplies the store).
func WithCacheEntries(n int) Option { return func(o *options) { o.cfg.CacheEntries = n } }

// WithSimWorkers sets the default per-job simulation parallelism for
// requests that do not pin options.workers.
func WithSimWorkers(n int) Option { return func(o *options) { o.cfg.SimWorkers = n } }

// WithTraceEntries bounds the completed-trace retention ring.
func WithTraceEntries(n int) Option { return func(o *options) { o.cfg.TraceEntries = n } }

// WithShards splits every matrix job into k configuration-range shards
// built concurrently and merged deterministically. Results are
// byte-identical for any k.
func WithShards(k int) Option { return func(o *options) { o.cfg.Shards = k } }

// WithStore persists results in s instead of the default in-memory LRU.
// The manager owns s from then on and closes it in Close.
func WithStore(s Store) Option { return func(o *options) { o.store = s } }

// WithScheduler dispatches jobs through s instead of the default bounded
// worker pool. The manager owns s and closes it in Close.
func WithScheduler(s Scheduler) Option { return func(o *options) { o.sched = s } }

// WithRunner executes jobs through r instead of the default session
// runner. Tests stub simulation with it.
func WithRunner(r Runner) Option { return func(o *options) { o.runner = r } }

// NewManager starts a manager sized by cfg.
//
// Deprecated: NewManager is the positional-config constructor retained
// for one release; use New with functional options, e.g.
// New(WithWorkers(4), WithStore(st)).
func NewManager(cfg Config) *Manager { return New(WithConfig(cfg)) }
