package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// fsKey synthesizes a canonical-looking cache key.
func fsKey(i int) string { return fmt.Sprintf("sha256:%064x", i) }

func TestFSStoreRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	payload := json.RawMessage(`{"coverage":0.95}`)
	s.Put(fsKey(1), payload)
	got, ok := s.Get(fsKey(1))
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %s, %v", got, ok)
	}
	if _, ok := s.Get(fsKey(2)); ok {
		t.Error("hit for a key never stored")
	}
	st := s.Stats()
	if st.Kind != "fs" || st.Entries != 1 || st.Bytes != int64(len(payload)) || st.Path != dir {
		t.Errorf("Stats = %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A fresh store over the same directory adopts the entry.
	s2, err := NewFSStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, ok := s2.Get(fsKey(1)); !ok || string(got) != string(payload) {
		t.Fatalf("after reopen: Get = %s, %v", got, ok)
	}
}

func TestFSStoreRejectsNonCanonicalKeys(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, key := range []string{
		"",
		"sha256:short",
		"md5:" + fmt.Sprintf("%064x", 7),
		"sha256:../../../../etc/passwd0000000000000000000000000000000000000000",
		fsKey(3) + "X",
	} {
		s.Put(key, json.RawMessage(`{}`))
		if _, ok := s.Get(key); ok {
			t.Errorf("key %q round-tripped; must be rejected", key)
		}
	}
	// Nothing may have landed outside index bookkeeping.
	if st := s.Stats(); st.Entries != 0 {
		t.Errorf("non-canonical keys stored: %+v", st)
	}
}

func TestFSStoreCorruptPayloadIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put(fsKey(4), json.RawMessage(`{"ok":true}`))
	name, _ := fsFileName(fsKey(4))
	// Simulate a torn write or on-disk corruption behind the store's back.
	if err := os.WriteFile(filepath.Join(dir, name), []byte(`{"ok":tru`), 0o644); err != nil {
		t.Fatal(err)
	}
	corrupt0 := jStoreCorrupt.Value()
	if _, ok := s.Get(fsKey(4)); ok {
		t.Fatal("corrupt payload served as a hit")
	}
	if got := jStoreCorrupt.Value() - corrupt0; got != 1 {
		t.Errorf("corrupt counter delta = %d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
		t.Errorf("corrupt payload file not deleted: %v", err)
	}
	// The slot is reusable.
	s.Put(fsKey(4), json.RawMessage(`{"ok":false}`))
	if got, ok := s.Get(fsKey(4)); !ok || string(got) != `{"ok":false}` {
		t.Errorf("after re-put: %s, %v", got, ok)
	}
}

func TestFSStoreEvictsByBytes(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Payloads of ~600 KiB: the second put must evict the least recently
	// used entry to stay within the 1 MiB floor.
	big := json.RawMessage(`{"blob":"` + strings.Repeat("a", 600<<10) + `"}`)
	s.Put(fsKey(10), big)
	s.Put(fsKey(11), big) // evicts 10 (2×600 KiB > 1 MiB)
	if _, ok := s.Get(fsKey(10)); ok {
		t.Error("oldest entry survived the byte bound")
	}
	if _, ok := s.Get(fsKey(11)); !ok {
		t.Error("newest entry evicted")
	}
	if st := s.Stats(); st.Bytes > 1<<20 {
		t.Errorf("store bytes %d exceed the bound", st.Bytes)
	}
}

// TestFSStoreCrossProcess is the satellite property test: two Store
// instances over one directory (stand-ins for two dftserved replicas)
// doing concurrent Put/Get/evict under -race, with every observed hit
// byte-identical to what was stored. Small byte bounds keep eviction
// constantly in play.
func TestFSStoreCrossProcess(t *testing.T) {
	dir := t.TempDir()
	a, err := NewFSStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewFSStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// 64 KiB payloads over 32 keys ≈ 2 MiB of live data against a 1 MiB
	// bound, so both replicas evict continuously while reading.
	payload := func(k int) json.RawMessage {
		return json.RawMessage(fmt.Sprintf(`{"k":%d,"pad":%q}`, k, strings.Repeat("a", 64<<10)))
	}
	const keys = 32
	var wg sync.WaitGroup
	for w, store := range []Store{a, b, a, b} {
		wg.Add(1)
		go func(w int, s Store) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (i + w*7) % keys
				if i%3 == 0 {
					s.Put(fsKey(k), payload(k))
					continue
				}
				if raw, ok := s.Get(fsKey(k)); ok {
					var got struct{ K int }
					if err := json.Unmarshal(raw, &got); err != nil || got.K != k {
						t.Errorf("worker %d: key %d returned %.40s… (%v)", w, k, raw, err)
					}
				}
			}
		}(w, store)
	}
	wg.Wait()

	// Cross-replica visibility: everything a stored must be a hit for b
	// (nothing here exceeds the byte bound anymore).
	a.Put(fsKey(100), json.RawMessage(`{"from":"a"}`))
	if got, ok := b.Get(fsKey(100)); !ok || string(got) != `{"from":"a"}` {
		t.Errorf("replica b missed replica a's entry: %s, %v", got, ok)
	}
}
