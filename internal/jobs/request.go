// Package jobs is the job layer behind cmd/dftserved: it resolves JSON
// job requests into library Sessions, runs them on a bounded worker pool
// with queueing and backpressure, supports cancellation mid-simulation
// (jobs run through the context-aware facade entry points and stop within
// one cell boundary), and serves repeated requests from a
// content-addressed LRU result cache keyed by CacheKey, so identical work
// is never simulated twice.
package jobs

import (
	"errors"
	"fmt"
	"sort"

	"analogdft"
	"analogdft/internal/obs/cliobs"
	"analogdft/internal/spice"
)

// Kind selects what a job computes.
type Kind string

// Job kinds.
const (
	// KindEvaluate runs the §2 analysis on the unmodified circuit.
	KindEvaluate Kind = "evaluate"
	// KindMatrix builds the §3.2 fault detectability matrix.
	KindMatrix Kind = "matrix"
	// KindOptimize runs the §4 ordered-requirement optimization.
	KindOptimize Kind = "optimize"
)

// ErrBadRequest wraps every request-validation failure, so the HTTP layer
// can map the whole family onto one status code.
var ErrBadRequest = errors.New("jobs: bad request")

// Request is the JSON body of a job submission.
type Request struct {
	// Kind selects the computation: evaluate, matrix or optimize.
	Kind Kind `json:"kind"`
	// Bench names a built-in benchmark circuit (e.g. "paper-biquad").
	// Exactly one of Bench and Deck must be set.
	Bench string `json:"bench,omitempty"`
	// Deck is an inline SPICE deck (the same format the CLIs load from
	// files, including the optional .chain directive).
	Deck string `json:"deck,omitempty"`
	// Faults selects the fault universe.
	Faults FaultSpec `json:"faults"`
	// Options mirrors the result-affecting evaluation options.
	Options OptionSpec `json:"options"`
	// Cost selects the 2nd-order requirement for optimize jobs:
	// "configs" (default) or "opamps".
	Cost string `json:"cost,omitempty"`
}

// FaultSpec selects the fault universe of a request.
type FaultSpec struct {
	// Universe is "deviation" (default), "bipolar" or "catastrophic".
	Universe string `json:"universe,omitempty"`
	// Frac is the deviation size as a fraction (default 0.20); ignored
	// for the catastrophic universe.
	Frac float64 `json:"frac,omitempty"`
}

// OptionSpec is the JSON mirror of the evaluation Options. Zero fields
// take the library defaults (Options.Normalize documents them), so the
// canonical cache key of a request is independent of whether a default is
// omitted or spelled out.
type OptionSpec struct {
	Eps                float64   `json:"eps,omitempty"`
	NoEps              bool      `json:"no_eps,omitempty"`
	EpsProfile         []float64 `json:"eps_profile,omitempty"`
	Points             int       `json:"points,omitempty"`
	MeasFloor          float64   `json:"meas_floor,omitempty"`
	LoHz               float64   `json:"lo_hz,omitempty"`
	HiHz               float64   `json:"hi_hz,omitempty"`
	IncludeTransparent bool      `json:"include_transparent,omitempty"`
	PerConfigRegion    bool      `json:"per_config_region,omitempty"`
	OnError            string    `json:"on_error,omitempty"`
	// Engine names the cell simulation strategy ("incremental" default,
	// "lowrank", "naive"). It enters the cache key: all modes agree on Det
	// bit-for-bit, but Omega values can differ within floating-point noise.
	Engine string `json:"engine,omitempty"`
	// Layout names the MNA matrix layout ("auto" default, "dense",
	// "sparse"). It enters the cache key even though every layout yields
	// bit-identical matrices: the layout changes the cost profile of the
	// stored result's recomputation, so two submissions that pin different
	// layouts are distinct jobs.
	Layout string `json:"layout,omitempty"`
	MaxRetries         int       `json:"max_retries,omitempty"`
	MaxFollowers       int       `json:"max_followers,omitempty"`
	// Workers bounds the per-job simulation parallelism. It never enters
	// the cache key: matrices are identical for any worker count.
	Workers int `json:"workers,omitempty"`
}

// build maps the spec onto library options.
func (o OptionSpec) build() (analogdft.Options, error) {
	opts := analogdft.Options{
		Eps:                o.Eps,
		NoEps:              o.NoEps,
		EpsProfile:         o.EpsProfile,
		Points:             o.Points,
		MeasFloor:          o.MeasFloor,
		IncludeTransparent: o.IncludeTransparent,
		PerConfigRegion:    o.PerConfigRegion,
		MaxRetries:         o.MaxRetries,
		MaxFollowers:       o.MaxFollowers,
		Workers:            o.Workers,
	}
	policy, err := cliobs.ParsePolicy(o.OnError)
	if err != nil {
		return opts, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	opts.OnError = policy
	engine, err := analogdft.ParseEngineMode(o.Engine)
	if err != nil {
		return opts, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	opts.Engine = engine
	layout, err := analogdft.ParseLayout(o.Layout)
	if err != nil {
		return opts, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	opts.Layout = layout
	switch {
	case o.LoHz == 0 && o.HiHz == 0:
		// Region derived from the circuit.
	case o.LoHz > 0 && o.HiHz > o.LoHz:
		opts.Region = analogdft.Region{LoHz: o.LoHz, HiHz: o.HiHz}
	default:
		return opts, fmt.Errorf("%w: region [%g, %g] Hz (want 0 < lo_hz < hi_hz)", ErrBadRequest, o.LoHz, o.HiHz)
	}
	return opts, nil
}

// Resolved is a validated request, ready to run: the bench, fault list
// and normalized options a Session will be built from, plus the job's
// content address.
type Resolved struct {
	Req     Request
	Bench   *analogdft.Bench
	Faults  analogdft.FaultList
	Options analogdft.Options
	Cost    analogdft.CostFunction
	// Key is the content-addressed cache key of the job's result.
	Key string
}

// BenchNames lists the built-in benchmark names a request may use, sorted.
func BenchNames() []string {
	lib := analogdft.CircuitLibrary()
	names := make([]string, 0, len(lib))
	for name := range lib {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Resolve validates the request and derives everything a worker needs.
// All validation errors wrap ErrBadRequest.
func (r Request) Resolve() (*Resolved, error) {
	switch r.Kind {
	case KindEvaluate, KindMatrix, KindOptimize:
	case "":
		return nil, fmt.Errorf("%w: missing kind (want evaluate, matrix or optimize)", ErrBadRequest)
	default:
		return nil, fmt.Errorf("%w: unknown kind %q (want evaluate, matrix or optimize)", ErrBadRequest, r.Kind)
	}

	bench, err := r.resolveBench()
	if err != nil {
		return nil, err
	}
	if err := bench.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	faults, err := r.Faults.build(bench)
	if err != nil {
		return nil, err
	}
	if len(faults) == 0 {
		return nil, fmt.Errorf("%w: fault universe is empty (no passive components?)", ErrBadRequest)
	}
	opts, err := r.Options.build()
	if err != nil {
		return nil, err
	}
	opts = opts.Normalize()

	cost := analogdft.ConfigCountCost
	costName := ""
	if r.Kind == KindOptimize {
		switch r.Cost {
		case "", "configs":
			cost = analogdft.ConfigCountCost
		case "opamps":
			cost = analogdft.OpampCountCost
		default:
			return nil, fmt.Errorf("%w: unknown cost %q (want configs or opamps)", ErrBadRequest, r.Cost)
		}
		costName = cost.Name
	}
	if r.Kind != KindEvaluate && len(bench.Chain) == 0 {
		return nil, fmt.Errorf("%w: %s job needs a DFT chain (add a .chain directive or pick a bench with opamps)", ErrBadRequest, r.Kind)
	}

	key, err := CacheKey(r.Kind, costName, bench.Circuit, bench.Chain, faults, opts)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return &Resolved{Req: r, Bench: bench, Faults: faults, Options: opts, Cost: cost, Key: key}, nil
}

// resolveBench loads the named benchmark or parses the inline deck.
func (r Request) resolveBench() (*analogdft.Bench, error) {
	switch {
	case r.Bench != "" && r.Deck != "":
		return nil, fmt.Errorf("%w: set bench or deck, not both", ErrBadRequest)
	case r.Bench != "":
		bench, ok := analogdft.CircuitLibrary()[r.Bench]
		if !ok {
			return nil, fmt.Errorf("%w: unknown bench %q (have %v)", ErrBadRequest, r.Bench, BenchNames())
		}
		return bench, nil
	case r.Deck != "":
		deck, err := spice.ParseString(r.Deck)
		if err != nil {
			return nil, fmt.Errorf("%w: deck: %v", ErrBadRequest, err)
		}
		chain := deck.Chain
		if len(chain) == 0 {
			for _, op := range deck.Circuit.Opamps() {
				chain = append(chain, op.Name())
			}
		}
		return &analogdft.Bench{Circuit: deck.Circuit, Chain: chain, Description: "inline deck", Deck: deck}, nil
	default:
		return nil, fmt.Errorf("%w: a bench name or an inline deck is required", ErrBadRequest)
	}
}

// build maps the spec onto a fault universe over the bench circuit.
func (f FaultSpec) build(bench *analogdft.Bench) (analogdft.FaultList, error) {
	frac := f.Frac
	if frac == 0 {
		frac = 0.20
	}
	if frac < 0 || frac >= 1 {
		return nil, fmt.Errorf("%w: fault frac %g (want 0 < frac < 1)", ErrBadRequest, f.Frac)
	}
	switch f.Universe {
	case "", "deviation":
		return analogdft.DeviationFaults(bench.Circuit, frac), nil
	case "bipolar":
		return analogdft.BipolarDeviationFaults(bench.Circuit, frac), nil
	case "catastrophic":
		return analogdft.CatastrophicFaults(bench.Circuit), nil
	default:
		return nil, fmt.Errorf("%w: unknown fault universe %q (want deviation, bipolar or catastrophic)", ErrBadRequest, f.Universe)
	}
}
