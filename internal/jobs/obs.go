package jobs

import (
	"analogdft/internal/obs"
)

// Job-layer instrumentation. Everything here is deterministic given the
// request stream (no clock-gated metrics): counters count decisions, the
// gauges track queue and cache occupancy. cmd/dftserved exposes the whole
// registry on /metrics.
var (
	jSubmitted = obs.Reg().Counter("jobs_submitted_total",
		"job requests accepted (cache hits included)")
	jRejected = obs.Reg().Counter("jobs_rejected_total",
		"job requests rejected because the queue was full (HTTP 429)")
	jCancelRequests = obs.Reg().Counter("jobs_cancel_requests_total",
		"cancellation requests delivered to a queued or running job")
	jCacheHits = obs.Reg().Counter("jobs_cache_hits_total",
		"jobs answered from the content-addressed result cache, no simulation")
	jCacheMisses = obs.Reg().Counter("jobs_cache_misses_total",
		"jobs whose key was not cached and were enqueued for simulation")
	jCacheEvictions = obs.Reg().Counter("jobs_cache_evictions_total",
		"cache entries evicted by the LRU bound")
	jCacheEntries = obs.Reg().Gauge("jobs_cache_entries",
		"result cache occupancy")
	jQueueDepth = obs.Reg().Gauge("jobs_queue_depth",
		"jobs waiting in the queue (excludes running jobs)")
	jDone = obs.Reg().CounterVec("jobs_finished_total",
		"jobs by terminal state", "state")
	// jEnqueueWait is clock-derived and therefore gated on obs.TimingOn,
	// like every latency instrument in the repo.
	jEnqueueWait = obs.Reg().Histogram("jobs_enqueue_wait_seconds",
		"submit-to-worker-pickup wait (timing mode only)", obs.TimeBuckets)

	// Result-store occupancy and hygiene, shared by memstore and fsstore.
	jStoreBytes = obs.Reg().Gauge("jobs_store_bytes",
		"total payload bytes held by the result store")
	jStoreEvictions = obs.Reg().Counter("jobs_store_evictions_total",
		"fsstore entries evicted by the byte-LRU bound")
	jStoreCorrupt = obs.Reg().Counter("jobs_store_corrupt_total",
		"stored payloads dropped because they failed to read back as JSON")
	jStoreResultBytes = obs.Reg().Histogram("jobs_store_result_bytes",
		"size distribution of stored result payloads", obs.ByteBuckets)

	// Configuration-range sharding of matrix jobs.
	jShardRows = obs.Reg().Histogram("jobs_shard_rows",
		"matrix rows per configuration-range shard", obs.CountBuckets)
	// jShardSeconds is clock-derived and gated on obs.TimingOn.
	jShardSeconds = obs.Reg().Histogram("jobs_shard_seconds",
		"wall time per matrix shard (timing mode only)", obs.TimeBuckets)
)

// jlog is the package logger.
var jlog = obs.Logger("jobs")
