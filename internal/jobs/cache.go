package jobs

import (
	"container/list"
	"encoding/json"
	"sync"
)

// resultCache is a content-addressed in-memory LRU over finished job
// payloads: key = CacheKey of the request, value = the result JSON exactly
// as it was first computed. Payloads are treated as immutable by every
// caller (handlers write them straight to the response), so Get hands out
// the shared slice without copying.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

// cacheEntry is one cached payload.
type cacheEntry struct {
	key     string
	payload json.RawMessage
}

// newResultCache builds a cache bounded to max entries (min 1).
func newResultCache(max int) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the payload for key and marks it most recently used.
func (c *resultCache) Get(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).payload, true
}

// Put stores (or refreshes) key's payload, evicting the least recently
// used entry when the cache is full.
func (c *resultCache) Put(key string, payload json.RawMessage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).payload = payload
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, payload: payload})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		jCacheEvictions.Inc()
	}
	jCacheEntries.Set(float64(c.ll.Len()))
}

// Len returns the number of cached entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
