package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"analogdft/internal/circuit"
	"analogdft/internal/detect"
	"analogdft/internal/fault"
	"analogdft/internal/spice"
)

// CacheKey derives the content address of a job's result: a SHA-256 over a
// canonical rendering of everything that determines the answer —
//
//   - the parsed circuit and chain, re-serialized through spice.Write so
//     that whitespace, comments, blank lines and value spellings ("15.9k"
//     vs "15900") of the submitted deck cannot influence the key;
//   - the fault universe, one canonical line per fault;
//   - the Options after Normalize, printed in a fixed field order, so a
//     request relying on a default and one spelling the same value
//     explicitly collapse onto one key;
//   - the engine mode and matrix layout (part of Options) and the job
//     kind (plus the cost name for optimize jobs). The layout produces
//     bit-identical matrices on every side, but a pinned layout is a
//     distinct request: the stored result advertises how it was computed,
//     and re-running it must honor the pin.
//
// Deliberately excluded: Workers (matrices are identical for any worker
// count) and Progress (pure observation). Two requests with equal keys are
// therefore guaranteed to produce byte-identical results, which is what
// lets the server answer repeats from the cache without re-simulating.
func CacheKey(kind Kind, costName string, ckt *circuit.Circuit, chain []string, faults fault.List, opts detect.Options) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "kind=%s cost=%s\n", kind, costName)
	if err := spice.Write(h, ckt, chain); err != nil {
		return "", fmt.Errorf("jobs: cache key: %w", err)
	}
	for _, f := range faults {
		fmt.Fprintf(h, "fault %s %s %d %g\n", f.ID, f.Component, f.Kind, f.Factor)
	}
	o := opts.Normalize()
	fmt.Fprintf(h, "opts eps=%g noeps=%t points=%d floor=%g region=%g:%g probe=%g:%g:%d transparent=%t perconfig=%t onerror=%s engine=%s layout=%s maxretries=%d maxfollowers=%d\n",
		o.Eps, o.NoEps, o.Points, o.MeasFloor,
		o.Region.LoHz, o.Region.HiHz,
		o.Probe.StartHz, o.Probe.StopHz, o.Probe.Points,
		o.IncludeTransparent, o.PerConfigRegion,
		o.OnError, o.Engine, o.Layout, o.MaxRetries, o.MaxFollowers)
	for _, p := range o.EpsProfile {
		fmt.Fprintf(h, "epsprofile %g\n", p)
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil)), nil
}
