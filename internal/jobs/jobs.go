package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"analogdft/internal/obs"
)

// Manager-level errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull is returned by Submit when the job queue is at
	// capacity; the server answers 429 with Retry-After.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed is returned by Submit once the manager is draining.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrNotFound is returned for unknown job IDs.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrFinished is returned by Cancel when the job already reached a
	// terminal state.
	ErrFinished = errors.New("jobs: job already finished")
	// ErrTraceEvicted is returned by Trace for a job whose span tree has
	// aged out of the bounded trace ring.
	ErrTraceEvicted = errors.New("jobs: trace evicted from ring")
)

// State is a job's lifecycle state.
type State string

// Job states. queued → running → {done, failed, canceled}; a queued job
// may also jump straight to canceled.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether s is a terminal state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// job is the manager's internal record. All fields are guarded by the
// manager's mutex; handlers only ever see immutable View snapshots.
type job struct {
	id       string
	res      *Resolved
	state    State
	cached   bool
	err      string
	result   json.RawMessage
	created  time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc

	// Per-job tracing. Every job runs under its own always-enabled
	// tracer, attached to the run context as an override, so the span
	// trees the engine opens (detect.matrix, detect.cells, …) land in
	// the job's private trace regardless of the global tracing switch.
	tc     obs.TraceContext // W3C identity (inbound or generated)
	parent string           // inbound caller's span ID, "" when generated
	tracer *obs.Tracer      // nil once the trace moved to the ring
	root   *obs.Span        // the job's root span
	wait   *obs.Span        // jobs.enqueue_wait, open while queued
}

// View is an immutable snapshot of a job for the HTTP layer.
type View struct {
	ID     string `json:"id"`
	Kind   Kind   `json:"kind"`
	Key    string `json:"key"`
	State  State  `json:"state"`
	Cached bool   `json:"cached"`
	Err    string `json:"error,omitempty"`
	// HasResult tells pollers the result endpoint is ready.
	HasResult bool `json:"has_result"`
	// TraceID is the job's W3C trace ID, for GET /v1/jobs/{id}/trace.
	TraceID  string     `json:"trace_id,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

func (j *job) view() View {
	v := View{
		ID:        j.id,
		Kind:      j.res.Req.Kind,
		Key:       j.res.Key,
		State:     j.state,
		Cached:    j.cached,
		Err:       j.err,
		HasResult: len(j.result) > 0,
		TraceID:   j.tc.TraceIDString(),
		Created:   j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}

// Config sizes a Manager.
type Config struct {
	// Workers is the worker-pool size: how many jobs simulate
	// concurrently (default 2).
	Workers int
	// QueueDepth bounds the number of jobs waiting behind the running
	// ones; a full queue makes Submit return ErrQueueFull (default 16).
	QueueDepth int
	// CacheEntries bounds the content-addressed result cache
	// (default 128).
	CacheEntries int
	// SimWorkers, when positive, is the default per-job simulation
	// parallelism for requests that do not set options.workers. Zero
	// leaves the library default (GOMAXPROCS) — sensible for Workers=1,
	// oversubscribed otherwise.
	SimWorkers int
	// TraceEntries bounds the ring of completed job traces served by
	// GET /v1/jobs/{id}/trace (default 64).
	TraceEntries int
}

func (c Config) normalize() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.TraceEntries <= 0 {
		c.TraceEntries = 64
	}
	return c
}

// Manager owns the job table, the bounded queue, the worker pool and the
// result cache. All methods are safe for concurrent use.
type Manager struct {
	cfg    Config
	cache  *resultCache
	traces *traceRing

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	queue      chan *job

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	seq    int
	closed bool

	// runFn executes one resolved job; tests swap it for a stub.
	runFn func(ctx context.Context, res *Resolved) (json.RawMessage, error)
}

// NewManager starts a manager with cfg's worker pool running.
func NewManager(cfg Config) *Manager {
	cfg = cfg.normalize()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		cache:      newResultCache(cfg.CacheEntries),
		traces:     newTraceRing(cfg.TraceEntries),
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *job, cfg.QueueDepth),
		jobs:       make(map[string]*job),
		runFn:      runResolved,
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Config returns the normalized configuration the manager runs with.
func (m *Manager) Config() Config { return m.cfg }

// Submit resolves the request and either answers it from the result cache
// (the returned View is already done, Cached true) or enqueues it.
// ErrQueueFull means the caller should retry later; ErrBadRequest wraps
// every validation failure; ErrClosed means the manager is draining.
func (m *Manager) Submit(req Request) (View, error) {
	return m.SubmitCtx(context.Background(), req)
}

// SubmitCtx is Submit with a caller context. When ctx carries a W3C
// TraceContext (the HTTP edge parses the traceparent header into one) the
// job runs under the caller's trace ID with a fresh span ID; otherwise a
// new trace identity is generated. ctx is only read for the trace
// identity — the job's lifetime is governed by the manager, not ctx.
func (m *Manager) SubmitCtx(ctx context.Context, req Request) (View, error) {
	res, err := req.Resolve()
	if err != nil {
		return View{}, err
	}
	tc := obs.TraceFrom(ctx)
	parent := ""
	if tc.IsZero() {
		tc = obs.NewTraceContext()
	} else {
		parent = tc.SpanIDString()
		tc = tc.WithNewSpanID()
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return View{}, ErrClosed
	}
	m.seq++
	j := &job{
		id:      fmt.Sprintf("job-%d", m.seq),
		res:     res,
		state:   StateQueued,
		created: obs.Now(),
		tc:      tc,
		parent:  parent,
		tracer:  obs.NewTracer(),
	}
	j.tracer.SetEnabled(true)
	_, j.root = j.tracer.Start(context.Background(), "job")
	j.root.SetTag("job", j.id)
	j.root.SetTag("kind", string(res.Req.Kind))
	j.root.SetTag("trace_id", tc.TraceIDString())

	payload, hit := m.cache.Get(res.Key)
	_, lookup := j.tracer.Start(obs.ContextWithSpan(context.Background(), j.root), "jobs.cache_lookup")
	lookup.SetTag("key", res.Key)
	lookup.SetTag("hit", fmt.Sprintf("%t", hit))
	lookup.End()
	if hit {
		jCacheHits.Inc()
		jSubmitted.Inc()
		j.state = StateDone
		j.cached = true
		j.result = payload
		j.finished = j.created
		m.register(j)
		jDone.With(string(StateDone)).Inc()
		m.retireTraceLocked(j)
		return j.view(), nil
	}
	if m.cfg.SimWorkers > 0 && req.Options.Workers == 0 {
		res.Options.Workers = m.cfg.SimWorkers
	}
	_, j.wait = j.tracer.Start(obs.ContextWithSpan(context.Background(), j.root), "jobs.enqueue_wait")
	select {
	case m.queue <- j:
	default:
		m.seq-- // the job never existed
		jRejected.Inc()
		return View{}, ErrQueueFull
	}
	jCacheMisses.Inc()
	jSubmitted.Inc()
	m.register(j)
	jQueueDepth.Set(float64(len(m.queue)))
	return j.view(), nil
}

// retireTraceLocked closes the job's root span and moves the finished
// trace into the bounded ring, releasing the live tracer. Caller holds
// m.mu and has already put j in a terminal state.
func (m *Manager) retireTraceLocked(j *job) {
	if j.tracer == nil {
		return
	}
	j.wait.End()
	j.root.SetTag("state", string(j.state))
	j.root.End()
	tr := j.tracer.Export()
	spans := len(tr.Flat)
	dur := 0.0
	if len(tr.Spans) > 0 {
		dur = tr.Spans[0].DurMs
	}
	m.traces.add(&JobTrace{
		JobID:   j.id,
		Kind:    j.res.Req.Kind,
		State:   j.state,
		TraceID: j.tc.TraceIDString(),
		Parent:  j.parent,
		Spans:   spans,
		DurMs:   dur,
		Trace:   tr,
	})
	j.tracer = nil
	j.root = nil
	j.wait = nil
}

// register adds j to the job table. Caller holds m.mu.
func (m *Manager) register(j *job) {
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
}

// Get returns a snapshot of the job.
func (m *Manager) Get(id string) (View, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return View{}, ErrNotFound
	}
	return j.view(), nil
}

// Result returns the job's result payload alongside its snapshot. The
// payload is nil until the job is done.
func (m *Manager) Result(id string) (json.RawMessage, View, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, View{}, ErrNotFound
	}
	return j.result, j.view(), nil
}

// List returns snapshots of every job in submission order.
func (m *Manager) List() []View {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]View, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id].view())
	}
	return out
}

// Cancel stops a queued or running job: a queued job goes straight to
// canceled (the worker skips it), a running one has its context cancelled
// and reaches canceled within one cell boundary of the simulation.
// Cancelling an already-finished job returns ErrFinished.
func (m *Manager) Cancel(id string) (View, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return View{}, ErrNotFound
	}
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.err = context.Canceled.Error()
		j.finished = obs.Now()
		jCancelRequests.Inc()
		jDone.With(string(StateCanceled)).Inc()
		j.wait.SetTag("canceled", "true")
		m.retireTraceLocked(j)
	case StateRunning:
		jCancelRequests.Inc()
		j.cancel() // worker observes ctx.Err and marks the terminal state
	default:
		return j.view(), ErrFinished
	}
	return j.view(), nil
}

// Trace returns the job's span tree: a live export for a queued or
// running job, the retained export for a finished one. ErrTraceEvicted
// means the job finished but its trace aged out of the bounded ring.
func (m *Manager) Trace(id string) (*JobTrace, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, ErrNotFound
	}
	if j.tracer != nil {
		jt := &JobTrace{
			JobID:   j.id,
			Kind:    j.res.Req.Kind,
			State:   j.state,
			TraceID: j.tc.TraceIDString(),
			Parent:  j.parent,
			Trace:   j.tracer.Export(),
		}
		m.mu.Unlock()
		jt.Spans = len(jt.Trace.Flat)
		if len(jt.Trace.Spans) > 0 {
			jt.DurMs = jt.Trace.Spans[0].DurMs
		}
		return jt, nil
	}
	m.mu.Unlock()
	if jt, ok := m.traces.get(id); ok {
		return jt, nil
	}
	return nil, ErrTraceEvicted
}

// TraceSummaries lists the retained completed traces, newest first,
// without their span trees.
func (m *Manager) TraceSummaries() []JobTrace { return m.traces.list() }

// QueueStats returns the current queue depth and configured capacity,
// for backpressure responses and health snapshots.
func (m *Manager) QueueStats() (depth, capacity int) {
	return len(m.queue), m.cfg.QueueDepth
}

// CacheLen returns the result cache occupancy.
func (m *Manager) CacheLen() int { return m.cache.Len() }

// worker drains the queue until Close closes it.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		jQueueDepth.Set(float64(len(m.queue)))
		m.mu.Lock()
		if j.state != StateQueued { // cancelled while waiting
			m.mu.Unlock()
			continue
		}
		ctx, cancel := context.WithCancel(m.baseCtx)
		j.state = StateRunning
		j.started = obs.Now()
		j.cancel = cancel
		res := j.res
		j.wait.End() // the queue wait is over: a worker picked the job up
		if obs.TimingOn() {
			jEnqueueWait.Observe(obs.Since(j.created).Seconds())
		}
		// Route the run's spans to the job's private tracer, parented
		// under its root, and carry the W3C identity for exemplars.
		ctx = obs.ContextWithTracer(ctx, j.tracer)
		ctx = obs.ContextWithSpan(ctx, j.root)
		ctx = obs.ContextWithTrace(ctx, j.tc)
		m.mu.Unlock()

		jctx, span := obs.Start(ctx, "jobs.run")
		span.SetTag("job", j.id)
		span.SetTag("kind", string(res.Req.Kind))
		payload, err := m.runFn(jctx, res)
		span.End()
		cancel()

		m.mu.Lock()
		j.cancel = nil
		j.finished = obs.Now()
		switch {
		case err == nil:
			j.state = StateDone
			j.result = payload
			m.cache.Put(res.Key, payload)
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			j.state = StateCanceled
			j.err = err.Error()
		default:
			j.state = StateFailed
			j.err = err.Error()
			jlog.Warn("job failed", "job", j.id, "kind", res.Req.Kind, "err", err)
		}
		jDone.With(string(j.state)).Inc()
		m.retireTraceLocked(j)
		m.mu.Unlock()
	}
}

// Close drains the manager: no new submissions are accepted, queued and
// running jobs finish normally, and Close returns when the pool is idle.
// If ctx expires first, every in-flight job is cancelled and Close waits
// for the workers to acknowledge before returning ctx's error.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		m.baseCancel()
		return nil
	case <-ctx.Done():
		m.baseCancel()
		<-done
		return ctx.Err()
	}
}
