package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"analogdft/internal/obs"
)

// Manager-level errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull is returned by Submit when the job queue is at
	// capacity; the server answers 429 with Retry-After.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed is returned by Submit once the manager is draining.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrNotFound is returned for unknown job IDs.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrFinished is returned by Cancel when the job already reached a
	// terminal state.
	ErrFinished = errors.New("jobs: job already finished")
	// ErrTraceEvicted is returned by Trace for a job whose span tree has
	// aged out of the bounded trace ring.
	ErrTraceEvicted = errors.New("jobs: trace evicted from ring")
)

// State is a job's lifecycle state.
type State string

// Job states. queued → running → {done, failed, canceled}; a queued job
// may also jump straight to canceled.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether s is a terminal state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// job is the manager's internal record. All fields are guarded by the
// manager's mutex; handlers only ever see immutable View snapshots.
type job struct {
	id       string
	res      *Resolved
	state    State
	cached   bool
	err      string
	result   json.RawMessage
	created  time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc
	feed     *RowFeed

	// Per-job tracing. Every job runs under its own always-enabled
	// tracer, attached to the run context as an override, so the span
	// trees the engine opens (detect.matrix, detect.cells, …) land in
	// the job's private trace regardless of the global tracing switch.
	tc     obs.TraceContext // W3C identity (inbound or generated)
	parent string           // inbound caller's span ID, "" when generated
	tracer *obs.Tracer      // nil once the trace moved to the ring
	root   *obs.Span        // the job's root span
	wait   *obs.Span        // jobs.enqueue_wait, open while queued
}

// Links lists a job's related resources; the HTTP layer fills it in so
// clients navigate by URL instead of assembling paths.
type Links struct {
	Result string `json:"result"`
	Trace  string `json:"trace"`
	Stream string `json:"stream"`
}

// View is an immutable snapshot of a job for the HTTP layer.
type View struct {
	ID     string `json:"id"`
	Kind   Kind   `json:"kind"`
	Key    string `json:"key"`
	State  State  `json:"state"`
	Cached bool   `json:"cached"`
	Err    string `json:"error,omitempty"`
	// HasResult tells pollers the result endpoint is ready.
	HasResult bool `json:"has_result"`
	// TraceID is the job's W3C trace ID, for GET /v1/jobs/{id}/trace.
	TraceID  string     `json:"trace_id,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// Links is populated by the HTTP layer, never by the manager.
	Links *Links `json:"links,omitempty"`
}

func (j *job) view() View {
	v := View{
		ID:        j.id,
		Kind:      j.res.Req.Kind,
		Key:       j.res.Key,
		State:     j.state,
		Cached:    j.cached,
		Err:       j.err,
		HasResult: len(j.result) > 0,
		TraceID:   j.tc.TraceIDString(),
		Created:   j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}

// Manager owns the job table and composes the three seams of the job
// layer: a Store for finished payloads, a Scheduler for admission and
// dispatch, and a Runner for execution. All methods are safe for
// concurrent use.
type Manager struct {
	cfg    Config
	store  Store
	sched  Scheduler
	runner Runner
	traces *traceRing

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	seq    int
	closed bool

	// Trace retirement runs on its own goroutine so no trace export ever
	// happens under m.mu; Close drains it, so a retained trace is
	// guaranteed for every finished job once Close returns.
	retMu     sync.Mutex
	retQueue  []*job
	retClosed bool
	retWake   chan struct{} // buffered(1) nudge, never closed
	retWG     sync.WaitGroup
}

// New starts a manager assembled from opts: unset seams default to the
// in-memory store, the bounded worker-pool scheduler and the session
// runner (sharded per WithShards).
func New(opts ...Option) *Manager {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	o.cfg = o.cfg.normalize()
	if o.store == nil {
		o.store = NewMemStore(o.cfg.CacheEntries)
	}
	if o.sched == nil {
		o.sched = NewPoolScheduler(o.cfg.Workers, o.cfg.QueueDepth)
	}
	if o.runner == nil {
		o.runner = &sessionRunner{shards: o.cfg.Shards}
	}
	m := &Manager{
		cfg:     o.cfg,
		store:   o.store,
		sched:   o.sched,
		runner:  o.runner,
		traces:  newTraceRing(o.cfg.TraceEntries),
		jobs:    make(map[string]*job),
		retWake: make(chan struct{}, 1),
	}
	m.retWG.Add(1)
	go m.retireLoop()
	return m
}

// Config returns the normalized configuration the manager runs with.
func (m *Manager) Config() Config { return m.cfg }

// Submit resolves the request and either answers it from the result store
// (the returned View is already done, Cached true) or enqueues it.
// ErrQueueFull means the caller should retry later; ErrBadRequest wraps
// every validation failure; ErrClosed means the manager is draining.
func (m *Manager) Submit(req Request) (View, error) {
	return m.SubmitCtx(context.Background(), req)
}

// SubmitCtx is Submit with a caller context. When ctx carries a W3C
// TraceContext (the HTTP edge parses the traceparent header into one) the
// job runs under the caller's trace ID with a fresh span ID; otherwise a
// new trace identity is generated. ctx is only read for the trace
// identity — the job's lifetime is governed by the manager, not ctx.
func (m *Manager) SubmitCtx(ctx context.Context, req Request) (View, error) {
	res, err := req.Resolve()
	if err != nil {
		return View{}, err
	}
	tc := obs.TraceFrom(ctx)
	parent := ""
	if tc.IsZero() {
		tc = obs.NewTraceContext()
	} else {
		parent = tc.SpanIDString()
		tc = tc.WithNewSpanID()
	}
	// The store lookup may touch disk (fsstore), so it happens before
	// the manager lock. A racing Put of the same key is harmless: equal
	// keys address byte-identical payloads.
	payload, hit := m.store.Get(res.Key)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return View{}, ErrClosed
	}
	m.seq++
	j := &job{
		id:      fmt.Sprintf("job-%d", m.seq),
		res:     res,
		state:   StateQueued,
		created: obs.Now(),
		feed:    newRowFeed(),
		tc:      tc,
		parent:  parent,
		tracer:  obs.NewTracer(),
	}
	j.tracer.SetEnabled(true)
	_, j.root = j.tracer.Start(context.Background(), "job")
	j.root.SetTag("job", j.id)
	j.root.SetTag("kind", string(res.Req.Kind))
	j.root.SetTag("trace_id", tc.TraceIDString())

	_, lookup := j.tracer.Start(obs.ContextWithSpan(context.Background(), j.root), "jobs.cache_lookup")
	lookup.SetTag("key", res.Key)
	lookup.SetTag("hit", fmt.Sprintf("%t", hit))
	lookup.End()
	if hit {
		jCacheHits.Inc()
		jSubmitted.Inc()
		j.state = StateDone
		j.cached = true
		j.result = payload
		j.finished = j.created
		m.register(j)
		jDone.With(string(StateDone)).Inc()
		m.finishLocked(j)
		return j.view(), nil
	}
	if m.cfg.SimWorkers > 0 && req.Options.Workers == 0 {
		res.Options.Workers = m.cfg.SimWorkers
	}
	_, j.wait = j.tracer.Start(obs.ContextWithSpan(context.Background(), j.root), "jobs.enqueue_wait")
	if err := m.sched.Enqueue(func(ctx context.Context) { m.runJob(ctx, j) }); err != nil {
		m.seq-- // the job never existed
		if errors.Is(err, ErrQueueFull) {
			jRejected.Inc()
		}
		return View{}, err
	}
	jCacheMisses.Inc()
	jSubmitted.Inc()
	m.register(j)
	return j.view(), nil
}

// finishLocked completes a job's terminal bookkeeping: the row feed is
// closed (streaming watchers unblock) and the trace is queued for
// retirement. Caller holds m.mu and has already put j in a terminal
// state.
func (m *Manager) finishLocked(j *job) {
	j.feed.Close()
	j.wait.End()
	j.root.SetTag("state", string(j.state))
	j.root.End()
	m.retMu.Lock()
	m.retQueue = append(m.retQueue, j)
	m.retMu.Unlock()
	select {
	case m.retWake <- struct{}{}:
	default:
	}
}

// retireLoop moves finished traces into the bounded ring, off the
// manager lock. Until a job's export lands in the ring its live tracer
// keeps serving Trace, so the handoff is never observable as a gap.
func (m *Manager) retireLoop() {
	defer m.retWG.Done()
	for {
		m.retMu.Lock()
		batch := m.retQueue
		m.retQueue = nil
		quit := m.retClosed
		m.retMu.Unlock()
		for _, j := range batch {
			m.retireJob(j)
		}
		if quit {
			// retClosed is set only after every enqueue path is quiet,
			// so one final snapshot empties the queue for good.
			m.retMu.Lock()
			rest := m.retQueue
			m.retQueue = nil
			m.retMu.Unlock()
			for _, j := range rest {
				m.retireJob(j)
			}
			return
		}
		<-m.retWake
	}
}

// retireJob exports one finished job's span tree into the ring and
// releases the live tracer. The export runs without m.mu (tracers are
// internally synchronized); the ring add happens before the tracer is
// cleared, so Trace always finds one of the two.
func (m *Manager) retireJob(j *job) {
	m.mu.Lock()
	tracer, state := j.tracer, j.state
	m.mu.Unlock()
	if tracer == nil {
		return
	}
	tr := tracer.Export()
	spans := len(tr.Flat)
	dur := 0.0
	if len(tr.Spans) > 0 {
		dur = tr.Spans[0].DurMs
	}
	m.traces.add(&JobTrace{
		JobID:   j.id,
		Kind:    j.res.Req.Kind,
		State:   state,
		TraceID: j.tc.TraceIDString(),
		Parent:  j.parent,
		Spans:   spans,
		DurMs:   dur,
		Trace:   tr,
	})
	m.mu.Lock()
	j.tracer = nil
	j.root = nil
	j.wait = nil
	m.mu.Unlock()
}

// register adds j to the job table. Caller holds m.mu.
func (m *Manager) register(j *job) {
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
}

// runJob is the Task the scheduler executes: it runs one queued job to a
// terminal state. schedCtx is the scheduler's base context, canceled
// when Close force-cancels the pool.
func (m *Manager) runJob(schedCtx context.Context, j *job) {
	m.mu.Lock()
	if j.state != StateQueued { // cancelled while waiting
		m.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(schedCtx)
	j.state = StateRunning
	j.started = obs.Now()
	j.cancel = cancel
	res := j.res
	feed := j.feed
	j.wait.End() // the queue wait is over: a worker picked the job up
	if obs.TimingOn() {
		jEnqueueWait.Observe(obs.Since(j.created).Seconds())
	}
	// Route the run's spans to the job's private tracer, parented
	// under its root, and carry the W3C identity for exemplars.
	ctx = obs.ContextWithTracer(ctx, j.tracer)
	ctx = obs.ContextWithSpan(ctx, j.root)
	ctx = obs.ContextWithTrace(ctx, j.tc)
	m.mu.Unlock()

	jctx, span := obs.Start(ctx, "jobs.run")
	span.SetTag("job", j.id)
	span.SetTag("kind", string(res.Req.Kind))
	payload, err := m.runner.Run(jctx, res, feed)
	span.End()
	cancel()
	if err == nil {
		// Store writes may touch disk (fsstore): off the manager lock.
		m.store.Put(res.Key, payload)
	}

	m.mu.Lock()
	j.cancel = nil
	j.finished = obs.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = payload
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateCanceled
		j.err = err.Error()
	default:
		j.state = StateFailed
		j.err = err.Error()
		jlog.Warn("job failed", "job", j.id, "kind", res.Req.Kind, "err", err)
	}
	jDone.With(string(j.state)).Inc()
	m.finishLocked(j)
	m.mu.Unlock()
}

// Get returns a snapshot of the job.
func (m *Manager) Get(id string) (View, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return View{}, ErrNotFound
	}
	return j.view(), nil
}

// Result returns the job's result payload alongside its snapshot. The
// payload is nil until the job is done.
func (m *Manager) Result(id string) (json.RawMessage, View, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, View{}, ErrNotFound
	}
	return j.result, j.view(), nil
}

// Stream returns the job's row feed alongside its snapshot. The feed
// delivers matrix rows as they complete and closes with the job; for
// non-matrix jobs it simply closes without rows.
func (m *Manager) Stream(id string) (*RowFeed, View, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, View{}, ErrNotFound
	}
	return j.feed, j.view(), nil
}

// List returns snapshots of every job in submission order.
func (m *Manager) List() []View {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]View, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id].view())
	}
	return out
}

// Cancel stops a queued or running job: a queued job goes straight to
// canceled (the worker skips it), a running one has its context cancelled
// and reaches canceled within one cell boundary of the simulation.
// Cancelling an already-finished job returns ErrFinished.
func (m *Manager) Cancel(id string) (View, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return View{}, ErrNotFound
	}
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.err = context.Canceled.Error()
		j.finished = obs.Now()
		jCancelRequests.Inc()
		jDone.With(string(StateCanceled)).Inc()
		j.wait.SetTag("canceled", "true")
		m.finishLocked(j)
	case StateRunning:
		jCancelRequests.Inc()
		j.cancel() // worker observes ctx.Err and marks the terminal state
	default:
		return j.view(), ErrFinished
	}
	return j.view(), nil
}

// Trace returns the job's span tree: a live export for a job whose trace
// has not retired yet, the retained export afterwards. ErrTraceEvicted
// means the job finished but its trace aged out of the bounded ring.
func (m *Manager) Trace(id string) (*JobTrace, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, ErrNotFound
	}
	if j.tracer != nil {
		jt := &JobTrace{
			JobID:   j.id,
			Kind:    j.res.Req.Kind,
			State:   j.state,
			TraceID: j.tc.TraceIDString(),
			Parent:  j.parent,
			Trace:   j.tracer.Export(),
		}
		m.mu.Unlock()
		jt.Spans = len(jt.Trace.Flat)
		if len(jt.Trace.Spans) > 0 {
			jt.DurMs = jt.Trace.Spans[0].DurMs
		}
		return jt, nil
	}
	m.mu.Unlock()
	if jt, ok := m.traces.get(id); ok {
		return jt, nil
	}
	return nil, ErrTraceEvicted
}

// TraceSummaries lists the retained completed traces, newest first,
// without their span trees.
func (m *Manager) TraceSummaries() []JobTrace { return m.traces.list() }

// QueueStats returns the current queue depth and configured capacity,
// for backpressure responses and health snapshots.
func (m *Manager) QueueStats() (depth, capacity int) {
	return m.sched.Depth()
}

// StoreStats returns the result store's occupancy snapshot.
func (m *Manager) StoreStats() StoreStats { return m.store.Stats() }

// CacheLen returns the result store occupancy.
func (m *Manager) CacheLen() int { return m.store.Stats().Entries }

// Close drains the manager: no new submissions are accepted, queued and
// running jobs finish normally, and Close returns when the pool is idle.
// If ctx expires first, every in-flight job is cancelled and Close waits
// for the workers to acknowledge before returning ctx's error. Either
// way — graceful or forced — the trace retirement queue is drained
// before Close returns, so GET /v1/jobs/{id}/trace never races shutdown,
// and the store is closed last.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	err := m.sched.Close(ctx)
	// The scheduler is quiet and Submit is rejected, so no new trace can
	// be queued for retirement: drain what is there and stop the loop.
	m.retMu.Lock()
	m.retClosed = true
	m.retMu.Unlock()
	select {
	case m.retWake <- struct{}{}:
	default:
	}
	m.retWG.Wait()
	if cerr := m.store.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
