package jobs

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
)

// resolveBiquadMatrix resolves a paper-biquad matrix request pinned to an
// explicit region so every run measures the same grid.
func resolveBiquadMatrix(t *testing.T) *Resolved {
	t.Helper()
	res, err := Request{
		Kind:  KindMatrix,
		Bench: "paper-biquad",
		Options: OptionSpec{
			Points: 31,
			LoHz:   100,
			HiHz:   5600,
		},
	}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// normalizeElapsed decodes a matrix payload and zeroes the only field the
// sharded and unsharded paths may legitimately disagree on: wall clock.
func normalizeElapsed(t *testing.T, raw json.RawMessage) []byte {
	t.Helper()
	var out MatrixResult
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("payload: %v", err)
	}
	out.Stats.ElapsedMS = 0
	norm, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return norm
}

// TestShardedRunnerPayloadIdentical pins the acceptance criterion at the
// job layer: the sharded runner's payload is byte-identical to the
// unsharded runner's (modulo stats.elapsed_ms), which is why Shards never
// enters the cache key.
func TestShardedRunnerPayloadIdentical(t *testing.T) {
	res := resolveBiquadMatrix(t)
	ctx := context.Background()

	ref, err := (&sessionRunner{shards: 1}).Run(ctx, res, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3} {
		got, err := (&sessionRunner{shards: shards}).Run(ctx, res, nil)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if a, b := normalizeElapsed(t, ref), normalizeElapsed(t, got); string(a) != string(b) {
			t.Errorf("shards=%d payload differs from unsharded:\n ref: %.200s\n got: %.200s", shards, a, b)
		}
	}
}

// TestShardedRunnerStreamsEveryRow verifies the feed contract: by the
// time Run returns, every matrix row has been published exactly once,
// and each row's content matches the aggregate payload.
func TestShardedRunnerStreamsEveryRow(t *testing.T) {
	res := resolveBiquadMatrix(t)
	feed := newRowFeed()
	raw, err := (&sessionRunner{shards: 3}).Run(context.Background(), res, feed)
	if err != nil {
		t.Fatal(err)
	}
	var out MatrixResult
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	rows, done, _ := feed.Snapshot(0)
	if done {
		t.Error("runner closed the feed; that is the manager's job")
	}
	if len(rows) != len(out.Configs) {
		t.Fatalf("feed delivered %d rows, matrix has %d", len(rows), len(out.Configs))
	}
	seen := make(map[int]bool)
	for _, r := range rows {
		if seen[r.Index] {
			t.Fatalf("row %d published twice", r.Index)
		}
		seen[r.Index] = true
		if r.Index < 0 || r.Index >= len(out.Configs) {
			t.Fatalf("row index %d out of range", r.Index)
		}
		if r.Config != out.Configs[r.Index] {
			t.Errorf("row %d config %q, payload says %q", r.Index, r.Config, out.Configs[r.Index])
		}
		if !reflect.DeepEqual(r.Det, out.Det[r.Index]) || !reflect.DeepEqual(r.Omega, out.Omega[r.Index]) {
			t.Errorf("row %d content differs from aggregate payload", r.Index)
		}
	}
}
