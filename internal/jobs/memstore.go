package jobs

import (
	"container/list"
	"encoding/json"
	"sync"
)

// memStore is the default Store: a content-addressed in-memory LRU over
// finished job payloads, bounded by entry count. Payloads are treated as
// immutable by every caller (handlers write them straight to the
// response), so Get hands out the shared slice without copying.
type memStore struct {
	mu    sync.Mutex
	max   int
	bytes int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

// memEntry is one cached payload.
type memEntry struct {
	key     string
	payload json.RawMessage
}

// NewMemStore builds an in-memory store bounded to max entries (min 1).
func NewMemStore(max int) Store {
	if max < 1 {
		max = 1
	}
	return &memStore{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *memStore) Get(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*memEntry).payload, true
}

func (c *memStore) Put(key string, payload json.RawMessage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*memEntry)
		c.bytes += int64(len(payload)) - int64(len(e.payload))
		e.payload = payload
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&memEntry{key: key, payload: payload})
	c.bytes += int64(len(payload))
	jStoreResultBytes.Observe(float64(len(payload)))
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		e := oldest.Value.(*memEntry)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.payload))
		jCacheEvictions.Inc()
	}
	jCacheEntries.Set(float64(c.ll.Len()))
	jStoreBytes.Set(float64(c.bytes))
}

func (c *memStore) Stats() StoreStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return StoreStats{Kind: "mem", Entries: c.ll.Len(), Bytes: c.bytes}
}

func (c *memStore) Close() error { return nil }
