package jobs

import (
	"context"
	"encoding/json"
	"fmt"

	"analogdft"
	"analogdft/internal/detect"
)

// StatsJSON is the wire form of the simulation effort summary.
type StatsJSON struct {
	Cells          int     `json:"cells"`
	CellsDone      int     `json:"cells_done"`
	Solves         int     `json:"solves"`
	SingularPoints int     `json:"singular_points"`
	Retries        int     `json:"retries"`
	Recovered      int     `json:"recovered"`
	Errors         int     `json:"errors"`
	ElapsedMS      float64 `json:"elapsed_ms"`
}

func statsJSON(s detect.Stats) StatsJSON {
	return StatsJSON{
		Cells:          s.Cells,
		CellsDone:      s.CellsDone,
		Solves:         s.Solves,
		SingularPoints: s.SingularPoints,
		Retries:        s.Retries,
		Recovered:      s.Recovered,
		Errors:         s.Errors,
		ElapsedMS:      float64(s.Elapsed.Microseconds()) / 1000,
	}
}

// EvalJSON is one fault's verdict.
type EvalJSON struct {
	ID         string  `json:"id"`
	Detectable bool    `json:"detectable"`
	OmegaDet   float64 `json:"omega_det"`
	MaxDev     float64 `json:"max_dev"`
	Err        string  `json:"error,omitempty"`
}

// EvaluateResult is the payload of an evaluate job.
type EvaluateResult struct {
	Circuit     string     `json:"circuit"`
	RegionHz    [2]float64 `json:"region_hz"`
	Coverage    float64    `json:"coverage"`
	AvgOmegaDet float64    `json:"avg_omega_det"`
	Faults      []EvalJSON `json:"faults"`
	Stats       StatsJSON  `json:"stats"`
}

// MatrixResult is the payload of a matrix job.
type MatrixResult struct {
	Source       string      `json:"source"`
	Configs      []string    `json:"configs"`
	Faults       []string    `json:"faults"`
	Det          [][]bool    `json:"det"`
	Omega        [][]float64 `json:"omega"`
	Coverage     float64     `json:"coverage"`
	AvgBestOmega float64     `json:"avg_best_omega"`
	FailedCells  []string    `json:"failed_cells,omitempty"`
	Stats        StatsJSON   `json:"stats"`
}

// CandidateJSON is one maximum-coverage configuration set.
type CandidateJSON struct {
	Configs     []string `json:"configs"`
	Opamps      []string `json:"opamps,omitempty"`
	Coverage    float64  `json:"coverage"`
	AvgOmegaDet float64  `json:"avg_omega_det"`
	NumConfigs  int      `json:"num_configs"`
	NumOpamps   int      `json:"num_opamps"`
}

func candidateJSON(c *analogdft.Candidate) CandidateJSON {
	return CandidateJSON{
		Configs:     c.Labels,
		Opamps:      c.Opamps,
		Coverage:    c.Coverage,
		AvgOmegaDet: c.AvgOmegaDet,
		NumConfigs:  c.NumConfigs,
		NumOpamps:   c.NumOpamps,
	}
}

// OptimizeResult is the payload of an optimize job.
type OptimizeResult struct {
	Source        string          `json:"source"`
	CostName      string          `json:"cost_name"`
	Best          CandidateJSON   `json:"best"`
	BestByCost    []CandidateJSON `json:"best_by_cost"`
	NumCandidates int             `json:"num_candidates"`
	Undetectable  []string        `json:"undetectable,omitempty"`
	MaxCoverage   float64         `json:"max_coverage"`
	Stats         StatsJSON       `json:"stats"`
}

// runResolved executes the job through the context-aware Session API and
// marshals the payload. This is the unsharded path of the default
// runner; matrix rows are published to feed in one batch at the end, so
// streaming clients see the complete matrix either way.
func runResolved(ctx context.Context, res *Resolved, feed *RowFeed) (json.RawMessage, error) {
	s := analogdft.NewSession(res.Bench, res.Faults, res.Options)
	var payload any
	switch res.Req.Kind {
	case KindEvaluate:
		row, err := s.Evaluate(ctx)
		if err != nil {
			return nil, err
		}
		out := EvaluateResult{
			Circuit:     row.Circuit,
			RegionHz:    [2]float64{row.Region.LoHz, row.Region.HiHz},
			Coverage:    row.FaultCoverage(),
			AvgOmegaDet: row.AvgOmegaDet(),
			Stats:       statsJSON(row.Stats),
		}
		for _, e := range row.Evals {
			ej := EvalJSON{ID: e.Fault.ID, Detectable: e.Detectable, OmegaDet: e.OmegaDet, MaxDev: e.MaxDev}
			if e.Err != nil {
				ej.Err = e.Err.Error()
			}
			out.Faults = append(out.Faults, ej)
		}
		payload = out
	case KindMatrix:
		mx, err := s.Matrix(ctx)
		if err != nil {
			return nil, err
		}
		feed.Publish(rowEvents(mx, 0)...)
		payload = matrixResult(mx)
	case KindOptimize:
		opt, err := s.Optimize(ctx, res.Cost)
		if err != nil {
			return nil, err
		}
		mx, err := s.Matrix(ctx) // cached by the session; only reads stats
		if err != nil {
			return nil, err
		}
		out := OptimizeResult{
			Source:        mx.Source,
			CostName:      opt.CostName,
			Best:          candidateJSON(opt.Best),
			NumCandidates: len(opt.Candidates),
			Undetectable:  opt.Undetectable,
			MaxCoverage:   opt.MaxCoverage,
			Stats:         statsJSON(mx.Stats),
		}
		for i := range opt.BestByCost {
			out.BestByCost = append(out.BestByCost, candidateJSON(&opt.BestByCost[i]))
		}
		payload = out
	default:
		return nil, fmt.Errorf("%w: unknown kind %q", ErrBadRequest, res.Req.Kind)
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("jobs: marshal result: %w", err)
	}
	return raw, nil
}

// matrixResult flattens a detectability matrix into its wire form.
func matrixResult(mx *analogdft.Matrix) MatrixResult {
	out := MatrixResult{
		Source:       mx.Source,
		Faults:       mx.Faults.IDs(),
		Det:          mx.Det,
		Omega:        mx.Omega,
		Coverage:     mx.FaultCoverage(),
		AvgBestOmega: mx.AvgBestOmega(nil),
		Stats:        statsJSON(mx.Stats),
	}
	for _, cfg := range mx.Configs {
		out.Configs = append(out.Configs, cfg.Label())
	}
	for _, ce := range mx.CellErrors {
		out.FailedCells = append(out.FailedCells, ce.Error())
	}
	return out
}
