package sensitivity

import (
	"errors"
	"math"
	"testing"

	"analogdft/internal/analysis"
	"analogdft/internal/circuit"
	"analogdft/internal/fault"
	"analogdft/internal/numeric"
)

func rcLowpass() *circuit.Circuit {
	c := circuit.New("rc")
	c.R("R1", "in", "out", 1e3)
	c.Cap("C1", "out", "0", 100e-9)
	c.Input, c.Output = "in", "out"
	return c
}

func divider() *circuit.Circuit {
	c := circuit.New("div")
	c.R("R1", "in", "out", 1e3)
	c.R("R2", "out", "0", 1e3)
	c.Input, c.Output = "in", "out"
	return c
}

const rcCorner = 1591.549430918953

func TestAnalyzeRCLowpassAnalytic(t *testing.T) {
	// |H| = 1/√(1+(ωRC)²); S_R = −(ωRC)²/(1+(ωRC)²).
	grid := numeric.LogSpace(10, 1e6, 41)
	profiles, err := Analyze(rcLowpass(), grid, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	for _, p := range profiles {
		for i, f := range p.Freqs {
			u := f / rcCorner
			want := -u * u / (1 + u*u)
			if math.IsNaN(p.S[i]) {
				t.Fatalf("%s: NaN at %g Hz", p.Component, f)
			}
			if math.Abs(p.S[i]-want) > 2e-3 {
				t.Fatalf("%s S(%g Hz) = %g, want %g", p.Component, f, p.S[i], want)
			}
		}
	}
}

func TestAnalyzeDividerSensitivities(t *testing.T) {
	// V(out) = Vin·R2/(R1+R2): S_R1 = −1/2, S_R2 = +1/2 at equal values.
	grid := []float64{100, 1e3}
	profiles, err := Analyze(divider(), grid, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range profiles {
		want := 0.5
		if p.Component == "R1" {
			want = -0.5
		}
		for i := range grid {
			if math.Abs(p.S[i]-want) > 1e-3 {
				t.Errorf("%s S = %g, want %g", p.Component, p.S[i], want)
			}
		}
	}
}

func TestMaxAbsAndAboveAt(t *testing.T) {
	p := &Profile{
		Component: "X",
		Freqs:     []float64{1, 2, 3},
		S:         []float64{0.1, math.NaN(), -0.9},
	}
	if got := p.MaxAbs(); got != 0.9 {
		t.Errorf("MaxAbs = %g", got)
	}
	idx := p.AboveAt(0.5)
	if len(idx) != 1 || idx[0] != 2 {
		t.Errorf("AboveAt = %v", idx)
	}
}

func TestPredictsDetectable(t *testing.T) {
	p := &Profile{S: []float64{0.4}}
	// 0.4 · 0.2 = 8% < 10%: not detectable.
	if p.PredictsDetectable(0.2, 0.1) {
		t.Error("predicted detectable below threshold")
	}
	// 0.4 · 0.3 = 12% > 10%: detectable.
	if !p.PredictsDetectable(0.3, 0.1) {
		t.Error("prediction missed")
	}
}

// Cross-validation: the first-order sensitivity prediction must agree with
// the exact deviation-based detectability on the RC lowpass for a small
// fault (first-order regime).
func TestPredictionMatchesFaultSimulation(t *testing.T) {
	ckt := rcLowpass()
	region := analysis.Region{LoHz: 10, HiHz: 1e6}
	grid := region.Spec(61).Grid()
	profiles, err := Analyze(ckt, grid, 0)
	if err != nil {
		t.Fatal(err)
	}
	nominal, err := analysis.SweepOnGrid(ckt, grid)
	if err != nil {
		t.Fatal(err)
	}
	const frac, eps = 0.05, 0.02
	for _, p := range profiles {
		f := fault.Fault{ID: "f" + p.Component, Component: p.Component, Kind: fault.Deviation, Factor: 1 + frac}
		faulty, err := f.Apply(ckt)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := analysis.SweepOnGrid(faulty, grid)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := analysis.RelativeDeviation(nominal, resp, 0)
		if err != nil {
			t.Fatal(err)
		}
		exact := len(prof.ExceedsAt(eps)) > 0
		predicted := p.PredictsDetectable(frac, eps)
		if exact != predicted {
			t.Errorf("%s: exact=%v predicted=%v", p.Component, exact, predicted)
		}
	}
}

func TestRank(t *testing.T) {
	profiles := []*Profile{
		{Component: "B", S: []float64{0.9}},
		{Component: "A", S: []float64{0.1}},
		{Component: "C", S: []float64{0.1}},
	}
	r := Rank(profiles)
	if r[0].Component != "A" || r[1].Component != "C" || r[2].Component != "B" {
		t.Fatalf("rank = %v", r)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(rcLowpass(), nil, 0); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := Analyze(rcLowpass(), []float64{100}, -1); !errors.Is(err, ErrBadStep) {
		t.Errorf("negative step: %v", err)
	}
	noIn := circuit.New("x")
	noIn.R("R1", "a", "0", 1)
	if _, err := Analyze(noIn, []float64{100}, 0); err == nil {
		t.Error("missing input accepted")
	}
}
