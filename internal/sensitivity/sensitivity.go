// Package sensitivity implements the fault-observability analysis the
// paper builds on (§2, after Slamani & Kaminska): the normalized
// sensitivity of the output magnitude response to each component value,
//
//	S_x(ω) = (x / |T(jω)|) · ∂|T(jω)|/∂x
//
// computed by central finite differences on the MNA engine. High
// sensitivity at some frequency predicts that a parametric fault on the
// component is detectable there; the package cross-validates the
// prediction against the deviation-based detectability used by the rest
// of the library and ranks components by testability.
package sensitivity

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"analogdft/internal/analysis"
	"analogdft/internal/circuit"
)

// ErrBadStep is returned for non-positive relative steps.
var ErrBadStep = errors.New("sensitivity: bad relative step")

// DefaultRelStep is the default central-difference relative step.
const DefaultRelStep = 1e-4

// Profile is the sensitivity of |T| to one component across a grid.
type Profile struct {
	Component string
	Freqs     []float64
	// S[i] is the normalized sensitivity at Freqs[i]; NaN where either
	// perturbed solve failed.
	S []float64
}

// MaxAbs returns the largest |S| in the profile (NaN entries skipped).
func (p *Profile) MaxAbs() float64 {
	max := 0.0
	for _, s := range p.S {
		if math.IsNaN(s) {
			continue
		}
		if a := math.Abs(s); a > max {
			max = a
		}
	}
	return max
}

// AboveAt returns the grid indices where |S| exceeds the threshold.
func (p *Profile) AboveAt(threshold float64) []int {
	var out []int
	for i, s := range p.S {
		if !math.IsNaN(s) && math.Abs(s) > threshold {
			out = append(out, i)
		}
	}
	return out
}

// PredictsDetectable reports whether a relative deviation fault of size
// frac (e.g. 0.2) is predicted detectable at tolerance eps using the
// first-order model |ΔT/T| ≈ |S|·frac.
func (p *Profile) PredictsDetectable(frac, eps float64) bool {
	for _, s := range p.S {
		if !math.IsNaN(s) && math.Abs(s)*frac > eps {
			return true
		}
	}
	return false
}

// Analyze computes sensitivity profiles for every passive component of the
// circuit over the given frequency grid. relStep ≤ 0 selects
// DefaultRelStep.
func Analyze(ckt *circuit.Circuit, grid []float64, relStep float64) ([]*Profile, error) {
	if relStep == 0 {
		relStep = DefaultRelStep
	}
	if relStep < 0 {
		return nil, fmt.Errorf("%w: %g", ErrBadStep, relStep)
	}
	if len(grid) == 0 {
		return nil, fmt.Errorf("%w: empty grid", analysis.ErrBadSweep)
	}
	nominal, err := analysis.SweepOnGrid(ckt, grid)
	if err != nil {
		return nil, err
	}
	nomMag := nominal.Mag()

	var out []*Profile
	for _, comp := range ckt.Passives() {
		p := &Profile{
			Component: comp.Name(),
			Freqs:     append([]float64(nil), grid...),
			S:         make([]float64, len(grid)),
		}
		up, err := perturbedMag(ckt, comp.Name(), 1+relStep, grid)
		if err != nil {
			return nil, err
		}
		down, err := perturbedMag(ckt, comp.Name(), 1-relStep, grid)
		if err != nil {
			return nil, err
		}
		for i := range grid {
			t := nomMag[i]
			if math.IsNaN(t) || math.IsNaN(up[i]) || math.IsNaN(down[i]) || t == 0 {
				p.S[i] = math.NaN()
				continue
			}
			// Central difference on ln|T| vs ln x.
			p.S[i] = (up[i] - down[i]) / (2 * relStep * t)
		}
		out = append(out, p)
	}
	return out, nil
}

func perturbedMag(ckt *circuit.Circuit, name string, factor float64, grid []float64) ([]float64, error) {
	pert := ckt.Clone()
	v, err := pert.Valued(name)
	if err != nil {
		return nil, err
	}
	v.SetValue(v.Value() * factor)
	resp, err := analysis.SweepOnGrid(pert, grid)
	if err != nil {
		return nil, err
	}
	return resp.Mag(), nil
}

// Ranking orders components from hardest to easiest to test (ascending
// maximum |S|), the §2 intuition that low-sensitivity components are the
// testability bottleneck.
type Ranking struct {
	Component string
	MaxAbsS   float64
}

// Rank sorts profiles by ascending maximum sensitivity.
func Rank(profiles []*Profile) []Ranking {
	out := make([]Ranking, len(profiles))
	for i, p := range profiles {
		out[i] = Ranking{Component: p.Component, MaxAbsS: p.MaxAbs()}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].MaxAbsS != out[b].MaxAbsS {
			return out[a].MaxAbsS < out[b].MaxAbsS
		}
		return out[a].Component < out[b].Component
	})
	return out
}
