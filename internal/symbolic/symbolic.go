// Package symbolic extracts rational transfer functions H(s) = N(s)/D(s)
// from sampled AC responses: a linear least-squares fit of the polynomial
// coefficients (Levy's method on a normalized frequency axis), polynomial
// root extraction (Durand–Kerner), and pole/zero → (f0, Q) conversion.
//
// The paper's metrics work directly on sampled responses, but a rational
// model is the natural bridge to the symbolic testability literature it
// cites ([9]) and gives each test configuration an interpretable
// characterization (order, poles, zeros, Q) used by the reports and by
// tests that cross-check the MNA engine against closed forms.
package symbolic

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"analogdft/internal/analysis"
	"analogdft/internal/circuit"
	"analogdft/internal/numeric"
)

// ErrBadFit is returned when a fit is infeasible or fails to converge.
var ErrBadFit = errors.New("symbolic: bad fit")

// Rational is a rational function in the normalized variable
// s' = s / (2π·ScaleHz):
//
//	H(s') = (Num[0] + Num[1]·s' + …) / (Den[0] + Den[1]·s' + … + s'^n)
//
// Den is stored without its monic leading coefficient.
type Rational struct {
	Num     []float64
	Den     []float64 // length = pole count; leading 1 implicit
	ScaleHz float64
}

// NumOrder returns the numerator degree.
func (r *Rational) NumOrder() int { return len(r.Num) - 1 }

// DenOrder returns the denominator degree (pole count).
func (r *Rational) DenOrder() int { return len(r.Den) }

// Eval evaluates the model at a physical frequency (Hz).
func (r *Rational) Eval(freqHz float64) complex128 {
	s := complex(0, freqHz/r.ScaleHz)
	num := horner(r.Num, s)
	den := hornerMonic(r.Den, s)
	return num / den
}

// horner evaluates a polynomial with ascending coefficients.
func horner(c []float64, s complex128) complex128 {
	var acc complex128
	for i := len(c) - 1; i >= 0; i-- {
		acc = acc*s + complex(c[i], 0)
	}
	return acc
}

// hornerMonic evaluates c[0] + c[1]s + … + s^len(c).
func hornerMonic(c []float64, s complex128) complex128 {
	acc := complex128(1)
	for i := len(c) - 1; i >= 0; i-- {
		acc = acc*s + complex(c[i], 0)
	}
	return acc
}

// Poles returns the model poles as physical complex frequencies in Hz
// (s_pole / 2π, i.e. σ + jf).
func (r *Rational) Poles() []complex128 {
	// r.Den already omits the monic leading coefficient, which realRoots
	// treats as implicit.
	roots := realRoots(append([]float64(nil), r.Den...))
	for i := range roots {
		roots[i] *= complex(r.ScaleHz, 0)
	}
	return roots
}

// Zeros returns the model zeros in the same units as Poles.
func (r *Rational) Zeros() []complex128 {
	// Trim trailing (near-)zero leading coefficients.
	num := append([]float64(nil), r.Num...)
	for len(num) > 1 && math.Abs(num[len(num)-1]) < 1e-12*maxAbs(num) {
		num = num[:len(num)-1]
	}
	if len(num) <= 1 {
		return nil
	}
	lead := num[len(num)-1]
	monic := make([]float64, len(num)-1)
	for i := range monic {
		monic[i] = num[i] / lead
	}
	roots := realRoots(monic)
	for i := range roots {
		roots[i] *= complex(r.ScaleHz, 0)
	}
	return roots
}

func maxAbs(c []float64) float64 {
	m := 0.0
	for _, v := range c {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// realRoots finds the roots of the monic polynomial
// c[0] + c[1]x + … + x^len(c) by Durand–Kerner iteration.
func realRoots(c []float64) []complex128 {
	n := len(c)
	if n == 0 {
		return nil
	}
	eval := func(x complex128) complex128 { return hornerMonic(c, x) }
	// Initial guesses on a non-real circle.
	roots := make([]complex128, n)
	seed := complex(0.4, 0.9)
	roots[0] = seed
	for i := 1; i < n; i++ {
		roots[i] = roots[i-1] * seed
	}
	for iter := 0; iter < 500; iter++ {
		moved := 0.0
		for i := range roots {
			num := eval(roots[i])
			den := complex128(1)
			for j := range roots {
				if j != i {
					den *= roots[i] - roots[j]
				}
			}
			if den == 0 {
				den = complex(1e-12, 0)
			}
			delta := num / den
			roots[i] -= delta
			if d := cmplx.Abs(delta); d > moved {
				moved = d
			}
		}
		if moved < 1e-12 {
			break
		}
	}
	return roots
}

// Fit performs a linear least-squares (Levy) fit of a rational model with
// the given orders to a sampled response. Invalid sample points are
// skipped; at least numOrder+denOrder+1 valid points are required.
func Fit(resp *analysis.Response, numOrder, denOrder int) (*Rational, error) {
	if numOrder < 0 || denOrder < 1 || numOrder > denOrder {
		return nil, fmt.Errorf("%w: orders (%d, %d)", ErrBadFit, numOrder, denOrder)
	}
	var freqs []float64
	var h []complex128
	for i := range resp.Freqs {
		if resp.Valid[i] {
			freqs = append(freqs, resp.Freqs[i])
			h = append(h, resp.H[i])
		}
	}
	unknowns := (numOrder + 1) + denOrder
	if len(freqs) < unknowns {
		return nil, fmt.Errorf("%w: %d valid points for %d unknowns", ErrBadFit, len(freqs), unknowns)
	}
	// Normalize the frequency axis to the geometric mean for conditioning.
	scale := math.Sqrt(freqs[0] * freqs[len(freqs)-1])
	if scale <= 0 {
		return nil, fmt.Errorf("%w: non-positive frequencies", ErrBadFit)
	}

	// Levy's equations per sample k (s = j·f/scale):
	//   Σ_i a_i s^i  −  H_k · Σ_j b_j s^j  =  H_k · s^denOrder
	// with unknowns a_0..a_numOrder, b_0..b_(denOrder−1), b_denOrder = 1.
	rows := len(freqs)
	a := numeric.NewMatrix(rows, unknowns)
	rhs := make([]complex128, rows)
	for k, f := range freqs {
		s := complex(0, f/scale)
		pow := complex128(1)
		for i := 0; i <= numOrder; i++ {
			a.Set(k, i, pow)
			pow *= s
		}
		pow = 1
		for j := 0; j < denOrder; j++ {
			a.Set(k, numOrder+1+j, -h[k]*pow)
			pow *= s
		}
		rhs[k] = h[k] * pow // pow is now s^denOrder
	}
	// Normal equations with the conjugate transpose: (AᴴA)x = AᴴB. The
	// unknowns are real; solve the complex system and take real parts
	// (imaginary parts vanish up to numerical noise for conjugate-
	// symmetric data; magnitude-only data still yields a usable fit).
	ah := conjTranspose(a)
	ata, err := ah.Mul(a)
	if err != nil {
		return nil, err
	}
	atb, err := ah.MulVec(rhs)
	if err != nil {
		return nil, err
	}
	// Tikhonov damping keeps near-singular fits (over-specified orders)
	// solvable.
	lambda := 1e-12 * ata.MaxAbs()
	for i := 0; i < ata.Rows; i++ {
		ata.Add(i, i, complex(lambda, 0))
	}
	x, err := numeric.Solve(ata, atb)
	if err != nil {
		return nil, fmt.Errorf("%w: normal equations: %v", ErrBadFit, err)
	}
	r := &Rational{ScaleHz: scale}
	for i := 0; i <= numOrder; i++ {
		r.Num = append(r.Num, real(x[i]))
	}
	for j := 0; j < denOrder; j++ {
		r.Den = append(r.Den, real(x[numOrder+1+j]))
	}
	return r, nil
}

// conjTranspose returns the conjugate transpose of m.
func conjTranspose(m *numeric.Matrix) *numeric.Matrix {
	out := numeric.NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, cmplx.Conj(m.At(i, j)))
		}
	}
	return out
}

// MaxRelError returns the worst relative magnitude error of the model
// against a response (skipping invalid points and near-zero references).
func (r *Rational) MaxRelError(resp *analysis.Response) float64 {
	peak, _, ok := resp.PeakMag()
	if !ok {
		return math.Inf(1)
	}
	floor := peak * 1e-6
	worst := 0.0
	for i := range resp.Freqs {
		if !resp.Valid[i] {
			continue
		}
		ref := cmplx.Abs(resp.H[i])
		if ref < floor {
			continue
		}
		got := cmplx.Abs(r.Eval(resp.Freqs[i]))
		if e := math.Abs(got-ref) / ref; e > worst {
			worst = e
		}
	}
	return worst
}

// FitCircuit sweeps the circuit over the region and fits the smallest
// model (denominator order 1..maxOrder, numerator order ≤ denominator)
// whose worst relative error is below tol.
func FitCircuit(ckt *circuit.Circuit, region analysis.Region, points, maxOrder int, tol float64) (*Rational, error) {
	if err := region.Validate(); err != nil {
		return nil, err
	}
	if points < 8 {
		points = 64
	}
	if maxOrder < 1 {
		maxOrder = 6
	}
	if tol <= 0 {
		tol = 1e-4
	}
	resp, err := analysis.SweepOnGrid(ckt, region.Spec(points).Grid())
	if err != nil {
		return nil, err
	}
	var best *Rational
	bestErr := math.Inf(1)
	for dn := 1; dn <= maxOrder; dn++ {
		for nm := 0; nm <= dn; nm++ {
			r, err := Fit(resp, nm, dn)
			if err != nil {
				continue
			}
			e := r.MaxRelError(resp)
			if e < bestErr {
				best, bestErr = r, e
			}
			if e <= tol {
				return r, nil
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: no model up to order %d", ErrBadFit, maxOrder)
	}
	return best, fmt.Errorf("%w: best error %.3g above tolerance %.3g", ErrBadFit, bestErr, tol)
}

// DominantPair extracts (f0, Q) from a pole set: the complex-conjugate
// pair with the largest Q (poles in Hz units as returned by Poles). ok is
// false when no conjugate pair exists.
func DominantPair(poles []complex128) (f0, q float64, ok bool) {
	bestQ := -1.0
	for _, p := range poles {
		if imag(p) <= 0 {
			continue // take one of each conjugate pair
		}
		w0 := cmplx.Abs(p)
		if w0 == 0 {
			continue
		}
		sigma := -real(p)
		if sigma <= 0 {
			continue // unstable or marginal
		}
		qq := w0 / (2 * sigma)
		if qq > bestQ {
			bestQ, f0 = qq, w0
			ok = true
		}
	}
	return f0, bestQ, ok
}
