package symbolic

import (
	"errors"
	"math"
	"math/cmplx"
	"sort"
	"testing"

	"analogdft/internal/analysis"
	"analogdft/internal/circuit"
)

func rcLowpass() *circuit.Circuit {
	c := circuit.New("rc")
	c.R("R1", "in", "out", 1e3)
	c.Cap("C1", "out", "0", 100e-9)
	c.Input, c.Output = "in", "out"
	return c
}

// paper-style biquad: f0 = 10 kHz, Q = 2, lowpass, DC gain −1.
func biquad() *circuit.Circuit {
	c := circuit.New("bq")
	const r, cp = 15.915e3, 1e-9
	c.R("R1", "in", "a", r)
	c.R("R2", "v1", "a", 2*r)
	c.Cap("C1", "v1", "a", cp)
	c.R("R4", "v3", "a", r)
	c.OA("OP1", "0", "a", "v1")
	c.R("R5", "v1", "b", r)
	c.Cap("C2", "v2", "b", cp)
	c.OA("OP2", "0", "b", "v2")
	c.R("R6", "v2", "c", r)
	c.R("R3", "v3", "c", r)
	c.OA("OP3", "0", "c", "v3")
	c.Input, c.Output = "in", "v3"
	return c
}

const rcCorner = 1591.549430918953

func TestHorner(t *testing.T) {
	// 2 + 3s + s²  at s = 2 → 2+6+4 = 12 (monic) / horner with explicit.
	if got := horner([]float64{2, 3, 1}, 2); got != 12 {
		t.Fatalf("horner = %v", got)
	}
	if got := hornerMonic([]float64{2, 3}, 2); got != 12 {
		t.Fatalf("hornerMonic = %v", got)
	}
}

func TestRealRootsQuadratic(t *testing.T) {
	// x² − 3x + 2 = (x−1)(x−2).
	roots := realRoots([]float64{2, -3})
	if len(roots) != 2 {
		t.Fatalf("roots = %v", roots)
	}
	vals := []float64{real(roots[0]), real(roots[1])}
	sort.Float64s(vals)
	if math.Abs(vals[0]-1) > 1e-9 || math.Abs(vals[1]-2) > 1e-9 {
		t.Fatalf("roots = %v", roots)
	}
	for _, r := range roots {
		if math.Abs(imag(r)) > 1e-9 {
			t.Fatalf("imaginary part on real roots: %v", roots)
		}
	}
}

func TestRealRootsComplexPair(t *testing.T) {
	// x² + 2x + 5 → −1 ± 2j.
	roots := realRoots([]float64{5, 2})
	for _, r := range roots {
		if math.Abs(real(r)+1) > 1e-9 || math.Abs(math.Abs(imag(r))-2) > 1e-9 {
			t.Fatalf("roots = %v", roots)
		}
	}
}

func TestFitRCLowpass(t *testing.T) {
	resp, err := analysis.Sweep(rcLowpass(), analysis.SweepSpec{StartHz: 10, StopHz: 1e6, Points: 61})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Fit(resp, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e := r.MaxRelError(resp); e > 1e-6 {
		t.Fatalf("fit error = %g", e)
	}
	poles := r.Poles()
	if len(poles) != 1 {
		t.Fatalf("poles = %v", poles)
	}
	// Pole at −fc (in Hz units on the real axis).
	if math.Abs(real(poles[0])+rcCorner) > rcCorner*1e-4 || math.Abs(imag(poles[0])) > 1 {
		t.Fatalf("pole = %v, want ≈ −%g", poles[0], rcCorner)
	}
	// DC gain 1.
	if g := cmplx.Abs(r.Eval(0.001)); math.Abs(g-1) > 1e-4 {
		t.Fatalf("DC gain = %g", g)
	}
}

func TestFitBiquad(t *testing.T) {
	resp, err := analysis.Sweep(biquad(), analysis.SweepSpec{StartHz: 100, StopHz: 1e6, Points: 81})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Fit(resp, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e := r.MaxRelError(resp); e > 1e-4 {
		t.Fatalf("fit error = %g", e)
	}
	f0, q, ok := DominantPair(r.Poles())
	if !ok {
		t.Fatalf("no conjugate pair in %v", r.Poles())
	}
	if math.Abs(f0-10e3) > 100 {
		t.Errorf("f0 = %g, want 10 kHz", f0)
	}
	if math.Abs(q-2) > 0.05 {
		t.Errorf("Q = %g, want 2", q)
	}
}

func TestFitCircuitAutoOrder(t *testing.T) {
	r, err := FitCircuit(biquad(), analysis.Region{LoHz: 100, HiHz: 1e6}, 81, 4, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if r.DenOrder() != 2 {
		t.Fatalf("auto order = %d, want 2", r.DenOrder())
	}
}

func TestFitCircuitFailsOnTinyOrder(t *testing.T) {
	// A 2nd-order response cannot be captured by a 1st-order model at
	// 0.01% tolerance.
	ckt := biquad()
	_, err := FitCircuit(ckt, analysis.Region{LoHz: 100, HiHz: 1e6}, 41, 1, 1e-4)
	if !errors.Is(err, ErrBadFit) {
		t.Fatalf("err = %v, want ErrBadFit", err)
	}
}

func TestFitErrors(t *testing.T) {
	resp := &analysis.Response{
		Freqs: []float64{1, 2},
		H:     []complex128{1, 1},
		Valid: []bool{true, true},
	}
	if _, err := Fit(resp, -1, 1); !errors.Is(err, ErrBadFit) {
		t.Error("negative order accepted")
	}
	if _, err := Fit(resp, 2, 1); !errors.Is(err, ErrBadFit) {
		t.Error("improper order accepted")
	}
	if _, err := Fit(resp, 1, 2); !errors.Is(err, ErrBadFit) {
		t.Error("underdetermined fit accepted")
	}
}

func TestZerosOfBandpass(t *testing.T) {
	// Single-opamp bandpass: one zero at s = 0.
	c := circuit.New("bp")
	c.Cap("C1", "in", "x", 100e-9)
	c.R("R1", "x", "m", 10e3)
	c.R("R2", "m", "out", 10e3)
	c.Cap("C2", "m", "out", 1e-9)
	c.OA("OP1", "0", "m", "out")
	c.Input, c.Output = "in", "out"
	resp, err := analysis.Sweep(c, analysis.SweepSpec{StartHz: 1, StopHz: 1e6, Points: 61})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Fit(resp, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e := r.MaxRelError(resp); e > 1e-4 {
		t.Fatalf("fit error = %g", e)
	}
	zeros := r.Zeros()
	if len(zeros) != 1 {
		t.Fatalf("zeros = %v", zeros)
	}
	if cmplx.Abs(zeros[0]) > 1 { // at DC, within 1 Hz
		t.Fatalf("zero = %v, want ≈0", zeros[0])
	}
}

func TestDominantPair(t *testing.T) {
	// Pole pair at −1000 ± j·10000 rad-ish (units are Hz here): ω0 =
	// |p| ≈ 10050, Q = ω0/(2·1000) ≈ 5.02.
	poles := []complex128{complex(-1000, 10000), complex(-1000, -10000), complex(-500, 0)}
	f0, q, ok := DominantPair(poles)
	if !ok {
		t.Fatal("no pair found")
	}
	if math.Abs(f0-math.Hypot(1000, 10000)) > 1 {
		t.Errorf("f0 = %g", f0)
	}
	if math.Abs(q-f0/2000) > 0.01 {
		t.Errorf("Q = %g", q)
	}
	// Only real poles: no pair.
	if _, _, ok := DominantPair([]complex128{complex(-3, 0)}); ok {
		t.Error("real pole reported as pair")
	}
	// Unstable pair: rejected.
	if _, _, ok := DominantPair([]complex128{complex(1, 5), complex(1, -5)}); ok {
		t.Error("unstable pair accepted")
	}
}

func TestRationalOrders(t *testing.T) {
	r := &Rational{Num: []float64{1, 2}, Den: []float64{3, 4}, ScaleHz: 1}
	if r.NumOrder() != 1 || r.DenOrder() != 2 {
		t.Fatalf("orders = %d/%d", r.NumOrder(), r.DenOrder())
	}
}

func TestZerosTrimsTinyLeading(t *testing.T) {
	r := &Rational{Num: []float64{1, 1e-18}, Den: []float64{1}, ScaleHz: 1}
	if z := r.Zeros(); z != nil {
		t.Fatalf("zeros = %v, want none after trim", z)
	}
}
