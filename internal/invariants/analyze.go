package invariants

import (
	"fmt"
	"sort"
)

// Options tunes one Analyze run.
type Options struct {
	// Codes restricts the run to these VIxxx passes; empty means all.
	Codes []string
	// Baseline suppresses findings matching a committed allowlist, so a
	// new pass can land with pre-existing findings grandfathered and
	// burned down over time.
	Baseline *Baseline
}

// Analyze runs every selected pass over every applicable package and
// returns the combined report. Output is deterministic: diagnostics are
// sorted by position regardless of package or file discovery order.
func Analyze(root string, pkgs []*Package, opts Options) (*Report, error) {
	selected, err := selectPasses(opts.Codes)
	if err != nil {
		return nil, err
	}
	rep := &Report{Root: root}
	for _, e := range selected {
		rep.Codes = append(rep.Codes, e.Code)
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		rep.Packages = append(rep.Packages, pkg.Rel)
		for _, e := range selected {
			if !e.applies(pkg.Roles) {
				continue
			}
			p := &pass{pkg: pkg, info: &e.PassInfo}
			e.run(p)
			all = append(all, p.out...)
		}
	}
	sort.Strings(rep.Packages)
	sortDiagnostics(all)
	if opts.Baseline != nil {
		all, rep.Suppressed, rep.StaleBaseline = opts.Baseline.Filter(all)
	}
	if all == nil {
		// A clean run serializes as an empty list, not JSON null.
		all = []Diagnostic{}
	}
	rep.Diagnostics = all
	return rep, nil
}

// selectPasses resolves the -codes filter against the registry.
func selectPasses(codes []string) ([]*passEntry, error) {
	if len(codes) == 0 {
		out := make([]*passEntry, len(passTable))
		for i := range passTable {
			out[i] = &passTable[i]
		}
		return out, nil
	}
	var out []*passEntry
	seen := make(map[string]bool)
	for _, c := range codes {
		e, ok := passByCode[c]
		if !ok {
			return nil, fmt.Errorf("invariants: unknown pass code %q", c)
		}
		if seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out, nil
}
