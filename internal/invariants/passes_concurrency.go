package invariants

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runLockAcrossBlocking implements VI009: between a mutex Lock/RLock and
// its matching Unlock (or to the end of the function when the unlock is
// deferred), no blocking channel operation or solver call may appear. A
// send or a solve performed under the manager mutex turns queue
// backpressure into a deadlock of every other submitter and poller.
//
// The tracker is lexical and per-function: nested blocks inherit the
// held set (branch-local locks stay branch-local), function literals are
// analyzed as their own functions (their bodies run on other goroutines
// or at defer time, not under the lexical lock), and a select with a
// default clause is accepted as the sanctioned non-blocking form.
func runLockAcrossBlocking(p *pass) {
	forEachFuncBody(p.pkg, func(body *ast.BlockStmt) {
		p.scanLockBlock(body.List, map[string]bool{})
	})
}

// scanLockBlock walks one statement list, maintaining the set of held
// mutexes keyed by the rendered receiver expression ("m.mu").
func (p *pass) scanLockBlock(stmts []ast.Stmt, held map[string]bool) {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ast.ExprStmt:
			if key, kind := p.lockCall(s.X); key != "" {
				switch kind {
				case "lock":
					held[key] = true
				case "unlock":
					delete(held, key)
				}
				continue
			}
		case *ast.DeferStmt:
			// A deferred unlock keeps the lock held for the remainder of
			// the lexical function; nothing to do — the key stays held.
			if key, kind := p.lockCall(s.Call); key != "" && kind == "unlock" {
				continue
			}
		}
		if len(held) > 0 {
			p.flagBlockingUnder(st, held)
		}
		// Recurse into compound statements with a copy of the held set,
		// tracking Lock/Unlock pairs inside them too.
		for _, inner := range innerBlocks(st) {
			p.scanLockBlock(inner.List, copyHeld(held))
		}
	}
}

// copyHeld clones the held-mutex set for branch-local tracking.
func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// innerBlocks returns the statement blocks nested directly inside st,
// without crossing into function literals.
func innerBlocks(st ast.Stmt) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	switch s := st.(type) {
	case *ast.BlockStmt:
		out = append(out, s)
	case *ast.IfStmt:
		out = append(out, s.Body)
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			out = append(out, e)
		case *ast.IfStmt:
			out = append(out, innerBlocks(e)...)
		}
	case *ast.ForStmt:
		out = append(out, s.Body)
	case *ast.RangeStmt:
		out = append(out, s.Body)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, &ast.BlockStmt{List: cc.Body})
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, &ast.BlockStmt{List: cc.Body})
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, &ast.BlockStmt{List: cc.Body})
			}
		}
	case *ast.LabeledStmt:
		out = append(out, innerBlocks(s.Stmt)...)
	}
	return out
}

// lockCall classifies expr as a Lock/RLock ("lock") or Unlock/RUnlock
// ("unlock") call on a sync.Mutex or sync.RWMutex and returns the
// rendered receiver as the tracking key.
func (p *pass) lockCall(expr ast.Expr) (key, kind string) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = "lock"
	case "Unlock", "RUnlock":
		kind = "unlock"
	default:
		return "", ""
	}
	s, ok := p.pkg.Info.Selections[sel]
	if !ok || s.Obj() == nil {
		return "", ""
	}
	recv := s.Recv()
	if !typeIsPath(recv, "sync", "Mutex") && !typeIsPath(recv, "sync", "RWMutex") {
		return "", ""
	}
	return types.ExprString(sel.X), kind
}

// flagBlockingUnder inspects the shallow part of one statement executed
// with locks held — its conditions, initializers and expressions — and
// reports blocking channel operations and solver calls. Nested statement
// blocks (if/for/switch/select bodies) are handled by the recursive
// scanLockBlock walk, and function literals run on their own goroutine
// or at defer time, so both are skipped here.
func (p *pass) flagBlockingUnder(st ast.Stmt, held map[string]bool) {
	ast.Inspect(st, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch e := n.(type) {
		case *ast.FuncLit, *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			return false
		case *ast.SelectStmt:
			if !selectHasDefault(e) {
				p.report(e, "blocking select while holding a mutex",
					"add a default clause (non-blocking) or move the channel operation outside the critical section")
			}
			// The clause bodies run under the lock either way; their
			// statements are visited through the recursive block scan.
			return false
		case *ast.SendStmt:
			p.report(e, "channel send while holding a mutex",
				"release the lock before the send, or use a select with a default clause")
			return false
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				p.report(e, "channel receive while holding a mutex",
					"release the lock before the receive")
				return false
			}
		case *ast.RangeStmt:
			if tv, ok := p.pkg.Info.Types[e.X]; ok && isChanType(tv.Type) {
				p.report(e, "range over a channel while holding a mutex",
					"drain the channel outside the critical section")
			}
		case *ast.CallExpr:
			if obj := calleeObj(p.pkg.Info, e); obj != nil && obj.Pkg() != nil && obj.Exported() {
				switch obj.Pkg().Path() {
				case "analogdft/internal/detect", "analogdft/internal/analysis", "analogdft":
					p.report(e, "solver call while holding a mutex",
						"run the simulation outside the critical section; hold the lock only around state bookkeeping")
				}
			}
		}
		return true
	})
}

// selectHasDefault reports whether a select statement has a default
// clause (the non-blocking form).
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// runUntrackedGoroutine implements VI010: a goroutine launched in the
// job or detect layer must have a visible join — a WaitGroup Add in the
// launching function (paired with a Done in the goroutine or its callee),
// a Done/Wait call inside the goroutine body, or a send/close on a
// channel from the goroutine body (the done-channel idiom). Anything
// else outlives drain and shutdown unobserved.
func runUntrackedGoroutine(p *pass) {
	for _, f := range p.pkg.Files {
		walkStack(f, func(stack []ast.Node, n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if p.goroutineTracked(stack, g) {
				return true
			}
			p.report(g, "goroutine has no visible WaitGroup or done-channel join",
				"pair the launch with wg.Add/Done or have the goroutine signal a channel the launcher waits on")
			return true
		})
	}
}

// goroutineTracked applies the join heuristics to one go statement.
func (p *pass) goroutineTracked(stack []ast.Node, g *ast.GoStmt) bool {
	// WaitGroup discipline in the launching function: any wg.Add call
	// lexically before the launch.
	if fn := enclosingFuncBody(stack); fn != nil {
		tracked := false
		ast.Inspect(fn, func(n ast.Node) bool {
			if tracked || n == nil {
				return false
			}
			if n.Pos() >= g.Pos() {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" {
					if s, ok := p.pkg.Info.Selections[sel]; ok && typeIsPath(s.Recv(), "sync", "WaitGroup") {
						tracked = true
						return false
					}
				}
			}
			return true
		})
		if tracked {
			return true
		}
	}
	// Joins inside the goroutine body itself: wg.Done/Wait, a channel
	// send, or a close call.
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	tracked := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if tracked {
			return false
		}
		switch e := n.(type) {
		case *ast.SendStmt:
			tracked = true
			return false
		case *ast.CallExpr:
			if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "close" && len(e.Args) == 1 {
				if tv, ok := p.pkg.Info.Types[e.Args[0]]; ok && isChanType(tv.Type) {
					tracked = true
					return false
				}
			}
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Done" || sel.Sel.Name == "Wait") {
				if s, ok := p.pkg.Info.Selections[sel]; ok && typeIsPath(s.Recv(), "sync", "WaitGroup") {
					tracked = true
					return false
				}
			}
		}
		return true
	})
	return tracked
}

// enclosingFuncBody returns the body of the innermost function on the
// stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// forEachFuncBody visits the body of every function declaration and
// function literal in the package, each exactly once, as an independent
// unit.
func forEachFuncBody(pkg *Package, fn func(body *ast.BlockStmt)) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d.Body)
				}
			case *ast.FuncLit:
				fn(d.Body)
			}
			return true
		})
	}
}
