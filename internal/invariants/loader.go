package invariants

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Roles classifies an analyzed package so each pass can decide whether it
// applies. Roles are derived from the package's root-relative path for
// the real tree; fixture tests set them explicitly.
type Roles struct {
	// Internal marks packages under internal/.
	Internal bool
	// Obs marks internal/obs itself (the clock gate; its subpackages are
	// ordinary internal packages).
	Obs bool
	// Detect marks internal/detect (the cell fan-out).
	Detect bool
	// Jobs marks internal/jobs (the job layer).
	Jobs bool
	// Analysis marks internal/analysis (the sweep engine).
	Analysis bool
	// Served marks cmd/dftserved (the HTTP edge of the job layer).
	Served bool
}

// RolesForPath derives roles from a slash-separated root-relative
// package directory such as "internal/jobs" or "cmd/dftserved".
func RolesForPath(rel string) Roles {
	rel = strings.TrimSuffix(filepath.ToSlash(rel), "/")
	return Roles{
		Internal: rel == "internal" || strings.HasPrefix(rel, "internal/"),
		Obs:      rel == "internal/obs",
		Detect:   rel == "internal/detect",
		Jobs:     rel == "internal/jobs",
		Analysis: rel == "internal/analysis",
		Served:   rel == "cmd/dftserved",
	}
}

// ParseRoles turns fixture manifest role names into a Roles value.
func ParseRoles(names []string) (Roles, error) {
	var r Roles
	for _, n := range names {
		switch n {
		case "internal":
			r.Internal = true
		case "obs":
			r.Obs = true
		case "detect":
			r.Detect = true
		case "jobs":
			r.Jobs = true
		case "analysis":
			r.Analysis = true
		case "served":
			r.Served = true
		default:
			return Roles{}, fmt.Errorf("invariants: unknown role %q", n)
		}
	}
	return r, nil
}

// Package is one type-checked unit of analysis.
type Package struct {
	// Rel is the package directory, slash-separated and relative to the
	// analysis root; it prefixes every diagnostic file path.
	Rel string
	// Dir is the absolute package directory.
	Dir string
	// Roles selects which passes walk the package.
	Roles Roles

	// Fset, Files, Types and Info are the parsed and resolved forms.
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages with the stdlib source
// importer, so dependencies (including this module's own packages) are
// resolved from source without fetching anything. A Loader memoizes
// imports across Load calls and is not safe for concurrent use.
type Loader struct {
	fset *token.FileSet
	imp  types.ImporterFrom
}

// NewLoader returns a loader rooted at nothing in particular: each Load
// call names its own directory, and import resolution follows the
// standard build context from that directory (so the surrounding
// module's go.mod governs module-internal paths).
func NewLoader() *Loader {
	fset := token.NewFileSet()
	// The source importer always implements ImporterFrom.
	imp := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return &Loader{fset: fset, imp: imp}
}

// LoadDir type-checks the package in dir. rel labels it in diagnostics.
// File order is normalized internally, so analyzer output is independent
// of directory iteration order.
func (l *Loader) LoadDir(dir, rel string, roles Roles) (*Package, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("invariants: %s: %w", rel, err)
	}
	return l.LoadFiles(dir, rel, roles, bp.GoFiles)
}

// LoadFiles type-checks the named non-test files of the package in dir.
// The file list may arrive in any order: it is sorted before parsing so
// two loads of the same package always produce identical output.
func (l *Loader) LoadFiles(dir, rel string, roles Roles, names []string) (*Package, error) {
	names = append([]string(nil), names...)
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, fmt.Errorf("invariants: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("invariants: %s: no Go files", rel)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp, FakeImportC: true}
	tpkg, err := conf.Check(filepath.ToSlash(rel), l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("invariants: %s: %w", rel, err)
	}
	return &Package{
		Rel: filepath.ToSlash(rel), Dir: dir, Roles: roles,
		Fset: l.fset, Files: files, Types: tpkg, Info: info,
	}, nil
}

// LoadRepo loads every package the repo-wide invariants apply to: all
// packages under root/internal plus cmd/dftserved, in path order.
func (l *Loader) LoadRepo(root string) ([]*Package, error) {
	internalDir := filepath.Join(root, "internal")
	if _, err := os.Stat(internalDir); err != nil {
		return nil, fmt.Errorf("invariants: no internal directory under %s: %w", root, err)
	}
	var dirs []string
	err := filepath.WalkDir(internalDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if d.Name() == "testdata" {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if served := filepath.Join(root, "cmd", "dftserved"); hasGoFiles(served) {
		dirs = append(dirs, served)
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		rel = filepath.ToSlash(rel)
		pkg, err := l.LoadDir(dir, rel, RolesForPath(rel))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// hasGoFiles reports whether dir directly contains at least one non-test
// Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
