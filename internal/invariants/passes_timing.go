package invariants

import (
	"go/ast"
	"go/types"
)

const obsPath = "analogdft/internal/obs"

// runUngatedObservation implements VI006: a histogram observation whose
// value derives from the clock (obs.Since, a time.Duration, or a local
// assigned from either) must sit behind a TimingOn guard, so that
// timing-off registry snapshots stay bit-identical across worker counts
// and runs.
//
// A guard is recognized in three forms, checked lexically:
//
//   - an enclosing if whose condition mentions TimingOn (directly, or
//     through a local assigned from a TimingOn call — the
//     `timed := obs.TimingOn(); if timed { … }` idiom, including closures
//     capturing such a local);
//   - an earlier if in an enclosing block whose condition mentions
//     TimingOn and whose body terminates (`if !obs.TimingOn() { return }`);
//   - a bool parameter of the enclosing function used in the guard
//     condition, which delegates the proof to every caller (the
//     accountSolve(err, start, timed) idiom in internal/mna).
func runUngatedObservation(p *pass) {
	for _, f := range p.pkg.Files {
		walkStack(f, func(stack []ast.Node, n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Observe" {
				return true
			}
			s, ok := p.pkg.Info.Selections[sel]
			if !ok || s.Obj() == nil || s.Obj().Pkg() == nil || s.Obj().Pkg().Path() != obsPath {
				return true
			}
			if len(call.Args) != 1 || !p.clockDerived(stack, call.Args[0], nil) {
				return true
			}
			if p.timingGuarded(stack, n) {
				return true
			}
			p.report(sel.Sel, "clock-derived observation is not guarded by the obs TimingOn gate",
				"wrap the observation in `if obs.TimingOn() { … }` (or an early `if !obs.TimingOn() { return }`) so timing-off snapshots stay deterministic")
			return true
		})
	}
}

// clockDerived reports whether expr's value traces back to the clock: a
// Since call, any sub-expression of type time.Duration, or a local
// variable def-traced to either. seen breaks assignment cycles.
func (p *pass) clockDerived(stack []ast.Node, expr ast.Expr, seen map[types.Object]bool) bool {
	derived := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if derived {
			return false
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			if obj := calleeObj(p.pkg.Info, e); obj != nil &&
				(objectIs(obj, obsPath, "Since") || objectIs(obj, "time", "Since")) {
				derived = true
				return false
			}
		case *ast.Ident:
			obj := p.pkg.Info.ObjectOf(e)
			if obj == nil {
				return true
			}
			if typeIsPath(obj.Type(), "time", "Duration") {
				derived = true
				return false
			}
			if _, isVar := obj.(*types.Var); !isVar || seen[obj] {
				return true
			}
			if seen == nil {
				seen = make(map[types.Object]bool)
			}
			seen[obj] = true
			scope := enclosingTopDecl(stack)
			if scope == nil {
				return true
			}
			for _, rhs := range assignmentsTo(p.pkg.Info, scope, obj) {
				if p.clockDerived(stack, rhs, seen) {
					derived = true
					return false
				}
			}
		}
		return true
	})
	return derived
}

// timingGuarded reports whether node (whose ancestors are stack) is
// protected by a TimingOn guard in any recognized form.
func (p *pass) timingGuarded(stack []ast.Node, node ast.Node) bool {
	// Enclosing if (or its else arm) whose condition mentions timing.
	for i := len(stack) - 1; i >= 0; i-- {
		if ifs, ok := stack[i].(*ast.IfStmt); ok && p.mentionsTiming(stack, ifs.Cond) {
			return true
		}
	}
	// Earlier terminating guard in an enclosing block:
	// `if !obs.TimingOn() { return }` before the observation.
	for i := len(stack) - 1; i >= 0; i-- {
		block, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		for _, st := range block.List {
			if st.End() >= node.Pos() {
				break
			}
			ifs, ok := st.(*ast.IfStmt)
			if !ok || !p.mentionsTiming(stack, ifs.Cond) {
				continue
			}
			if blockTerminates(ifs.Body) {
				return true
			}
		}
	}
	return false
}

// mentionsTiming reports whether cond contains a TimingOn call, an
// identifier assigned from one, or a bool parameter of an enclosing
// function (caller-proved guard).
func (p *pass) mentionsTiming(stack []ast.Node, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			if obj := calleeObj(p.pkg.Info, e); obj != nil && objectIs(obj, obsPath, "TimingOn") {
				found = true
				return false
			}
		case *ast.Ident:
			obj := p.pkg.Info.ObjectOf(e)
			v, ok := obj.(*types.Var)
			if !ok || v.Type() == nil {
				return true
			}
			basic, ok := types.Unalias(v.Type()).Underlying().(*types.Basic)
			if !ok || basic.Kind() != types.Bool {
				return true
			}
			if isParamOf(p.pkg.Info, stack, obj) {
				found = true
				return false
			}
			scope := enclosingTopDecl(stack)
			if scope == nil {
				return true
			}
			for _, rhs := range assignmentsTo(p.pkg.Info, scope, obj) {
				if containsTimingOnCall(p.pkg.Info, rhs) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// containsTimingOnCall reports whether expr contains a call resolving to
// obs.TimingOn (package function or Runtime method).
func containsTimingOnCall(info *types.Info, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if obj := calleeObj(info, call); obj != nil && objectIs(obj, obsPath, "TimingOn") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// blockTerminates reports whether a block's last statement leaves the
// enclosing flow (return, panic, continue, break, goto).
func blockTerminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
