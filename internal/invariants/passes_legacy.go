package invariants

import (
	"go/ast"
	"go/types"
)

// The five passes in this file are the type-resolved ports of the
// original string-matching vetinvariants rules. Matching resolved
// objects instead of selector spellings means an import alias
// (`clk "time"`), a dot import, or a function value bound to a local
// (`now := time.Now; now()`) can no longer slip past them.

// runClockSource implements VI001: internal packages read the clock
// through obs.Now/obs.Since only.
func runClockSource(p *pass) {
	usesOf(p, "time", map[string]string{
		"Now":   "internal packages must use obs.Now, not time.Now (single clock source)",
		"Since": "internal packages must use obs.Since, not time.Since (single clock source)",
	}, "route the clock read through internal/obs so the TimingOn gate stays the only time source")
}

// runStrayPrint implements VI002: internal packages never print to
// stdout. The Fprint variants are fine — they write where the caller
// points them.
func runStrayPrint(p *pass) {
	const msg = "internal packages must not print to stdout; return values, log via obs or take an io.Writer"
	usesOf(p, "fmt", map[string]string{
		"Print": msg, "Printf": msg, "Println": msg,
	}, "use the obs logger, or accept an io.Writer and fmt.Fprintf into it")
}

// runDetectClone implements VI003: the detect fan-out neither clones
// circuits nor builds MNA systems. Any selection of a method named Clone
// is flagged — including method values that are never called directly —
// as is any reference to mna.NewSystem.
func runDetectClone(p *pass) {
	usesOf(p, "analogdft/internal/mna", map[string]string{
		"NewSystem": "internal/detect must not build MNA systems; reuse a pooled analysis.Engine",
	}, "request an engine from the per-worker pool instead of assembling a fresh system")
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := p.pkg.Info.Selections[sel]
			if !ok || s.Obj() == nil || (s.Kind() != types.MethodVal && s.Kind() != types.MethodExpr) {
				return true
			}
			if s.Obj().Name() == "Clone" {
				p.report(sel.Sel, "internal/detect must not clone circuits; reuse a pooled analysis.Engine",
					"evaluate the cell through the engine pool's patched workspaces instead of copying")
			}
			return true
		})
	}
}

// blockingEntryPoints maps package path → blocking simulation entry
// points the job layer must avoid in favor of the ...Context variants.
var blockingEntryPoints = map[string]map[string]string{
	"analogdft": {
		"EvaluateCircuit": "the job layer must call EvaluateCircuitContext (or Session.Evaluate) so jobs stay cancellable",
		"BuildMatrix":     "the job layer must call BuildMatrixContext (or Session.Matrix) so jobs stay cancellable",
		"Optimize":        "the job layer must call OptimizeContext (or Session.Optimize) so jobs stay cancellable",
	},
	"analogdft/internal/detect": {
		"EvaluateCircuit": "the job layer must call detect.EvaluateCircuitContext so jobs stay cancellable",
		"BuildMatrix":     "the job layer must call detect.BuildMatrixContext so jobs stay cancellable",
	},
	"analogdft/internal/core": {
		"Optimize": "the job layer must call core.OptimizeContext so jobs stay cancellable",
	},
}

// runBlockingJob implements VI004: internal/jobs and cmd/dftserved touch
// only the cancellable simulation entry points.
func runBlockingJob(p *pass) {
	for path, names := range blockingEntryPoints {
		usesOf(p, path, names,
			"pass the job's context through the ...Context variant so drain and client aborts reach the engine")
	}
}

// runCloningFactor implements VI005: the sweep engine factors in place.
func runCloningFactor(p *pass) {
	usesOf(p, "analogdft/internal/numeric", map[string]string{
		"Factor": "internal/analysis must factor in place (numeric.FactorInPlace or a Workspace), never via the cloning numeric.Factor",
	}, "factor through the sweeper's workspace so sweeps stay allocation-flat")
}
