// Package invariants is a type-aware multi-pass analyzer for the
// repository's own source tree. It enforces the load-bearing conventions
// the compiler cannot see — the single clock source behind the timing
// gates, the clone-free engine fan-out, context threading through the job
// layer, bounded metric label sets, lock/channel discipline — the way
// netlint enforces deck structure: every pass has a stable VIxxx code, a
// one-line summary, a position-carrying diagnostic and a golden fixture
// under testdata/invariants/.
//
// Unlike the original cmd/vetinvariants string matcher, every pass here
// resolves names with go/types (go/parser plus the source importer, so
// the analyzer stays stdlib-only): an import alias, a function value
// bound to a local, or a method value cannot evade a rule, because the
// rules match the resolved object, not the spelling at the call site.
package invariants

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Diagnostic codes. Codes are stable across releases: CI gates, baselines
// and tests key on them, so new passes append new codes and retired
// passes leave holes.
const (
	// CodeClockSource: an internal package reads the wall clock directly
	// (time.Now / time.Since) instead of going through obs.Now/obs.Since.
	CodeClockSource = "VI001"
	// CodeStrayPrint: an internal package prints to stdout via
	// fmt.Print/Printf/Println.
	CodeStrayPrint = "VI002"
	// CodeDetectClone: internal/detect clones a circuit or builds an MNA
	// system inside the cell fan-out.
	CodeDetectClone = "VI003"
	// CodeBlockingJob: the job layer references a blocking simulation
	// entry point instead of its ...Context variant.
	CodeBlockingJob = "VI004"
	// CodeCloningFactor: internal/analysis references the matrix-cloning
	// numeric.Factor instead of factoring in place.
	CodeCloningFactor = "VI005"
	// CodeUngatedObservation: a clock-derived histogram observation is
	// not guarded by the obs TimingOn gate.
	CodeUngatedObservation = "VI006"
	// CodeContextLaundering: a context-receiving function below the edge
	// manufactures context.Background/context.TODO instead of threading
	// its own context.
	CodeContextLaundering = "VI007"
	// CodeUnboundedLabel: a metric label value is not provably drawn from
	// a fixed string set (cardinality-explosion guard).
	CodeUnboundedLabel = "VI008"
	// CodeLockAcrossBlocking: a mutex is held across a blocking channel
	// operation or a solver call.
	CodeLockAcrossBlocking = "VI009"
	// CodeUntrackedGoroutine: a goroutine is launched without a visible
	// WaitGroup or done-channel join.
	CodeUntrackedGoroutine = "VI010"
	// CodeDenseHotAlloc: the analysis or detect layer allocates a whole
	// dense matrix (numeric.NewMatrix/Identity/FromRows) instead of using
	// a slab-backed view or a reused workspace.
	CodeDenseHotAlloc = "VI011"
	// CodeDirectStoreIO: internal/jobs touches the filesystem (os, io/fs)
	// outside the fsstore files; persistence must go through the Store
	// interface.
	CodeDirectStoreIO = "VI012"
)

// PassInfo describes one registered pass for listings, docs and the
// -list CLI mode.
type PassInfo struct {
	// Code is the stable VIxxx identifier.
	Code string `json:"code"`
	// Name is the short kebab-case pass name.
	Name string `json:"name"`
	// Summary is a one-line description of what the pass flags.
	Summary string `json:"summary"`
	// Rationale says why the invariant is load-bearing.
	Rationale string `json:"rationale"`
	// Scope names the package sets the pass walks.
	Scope string `json:"scope"`
}

// passEntry couples a pass's metadata with its implementation and the
// role predicate that selects which packages it walks.
type passEntry struct {
	PassInfo
	applies func(Roles) bool
	run     func(*pass)
}

// passTable is the registry of every pass, in code order.
var passTable = []passEntry{
	{
		PassInfo: PassInfo{Code: CodeClockSource, Name: "single-clock-source",
			Summary:   "internal packages must read the clock through obs.Now/obs.Since, never time.Now/time.Since",
			Rationale: "the TimingOn gate in internal/obs is the only place wall-clock time may enter, so timing-off metric and trace snapshots stay deterministic across worker counts",
			Scope:     "internal/** except internal/obs"},
		applies: func(r Roles) bool { return r.Internal && !r.Obs },
		run:     runClockSource,
	},
	{
		PassInfo: PassInfo{Code: CodeStrayPrint, Name: "no-stray-prints",
			Summary:   "internal packages must not print to stdout via fmt.Print/Printf/Println",
			Rationale: "library code reports through error values, the obs logger or an io.Writer handed in by the caller; stdout belongs to the commands",
			Scope:     "internal/**"},
		applies: func(r Roles) bool { return r.Internal },
		run:     runStrayPrint,
	},
	{
		PassInfo: PassInfo{Code: CodeDetectClone, Name: "clone-free-fanout",
			Summary:   "internal/detect must not clone circuits or build MNA systems; cells go through the pooled analysis.Engine",
			Rationale: "the hot cell fan-out stays allocation-flat only while system construction is owned by the per-worker engine pool",
			Scope:     "internal/detect"},
		applies: func(r Roles) bool { return r.Detect },
		run:     runDetectClone,
	},
	{
		PassInfo: PassInfo{Code: CodeBlockingJob, Name: "cancellable-job-layer",
			Summary:   "the job layer must use the ...Context simulation entry points, never the blocking variants",
			Rationale: "every job the server runs must be cancellable mid-simulation for drain, deadline and client-abort paths to work",
			Scope:     "internal/jobs, cmd/dftserved"},
		applies: func(r Roles) bool { return r.Jobs || r.Served },
		run:     runBlockingJob,
	},
	{
		PassInfo: PassInfo{Code: CodeCloningFactor, Name: "in-place-factorization",
			Summary:   "internal/analysis must factor in place (numeric.FactorInPlace or a Workspace), never via the cloning numeric.Factor",
			Rationale: "sweeps stay allocation-flat and the low-rank grid cache owns its matrices explicitly",
			Scope:     "internal/analysis"},
		applies: func(r Roles) bool { return r.Analysis },
		run:     runCloningFactor,
	},
	{
		PassInfo: PassInfo{Code: CodeUngatedObservation, Name: "gated-clock-observation",
			Summary:   "clock-derived histogram observations must sit behind a TimingOn guard",
			Rationale: "ungated latency observations make registry snapshots differ across worker counts and runs, breaking the metric determinism gate",
			Scope:     "internal/** except internal/obs"},
		applies: func(r Roles) bool { return r.Internal && !r.Obs },
		run:     runUngatedObservation,
	},
	{
		PassInfo: PassInfo{Code: CodeContextLaundering, Name: "context-threading",
			Summary:   "functions that receive a context must not manufacture context.Background/TODO (span bookkeeping via obs is exempt)",
			Rationale: "a Background context below the edge detaches work from cancellation and tracing; the caller's context must flow through",
			Scope:     "internal/jobs, internal/detect, internal/analysis"},
		applies: func(r Roles) bool { return r.Jobs || r.Detect || r.Analysis },
		run:     runContextLaundering,
	},
	{
		PassInfo: PassInfo{Code: CodeUnboundedLabel, Name: "bounded-metric-labels",
			Summary:   "CounterVec/HistogramVec label values must come from fixed string sets, never request-derived data",
			Rationale: "a trace ID or request field used as a label value grows one metric series per request until exposition falls over",
			Scope:     "internal/jobs, internal/detect, cmd/dftserved"},
		applies: func(r Roles) bool { return r.Jobs || r.Detect || r.Served },
		run:     runUnboundedLabel,
	},
	{
		PassInfo: PassInfo{Code: CodeLockAcrossBlocking, Name: "no-lock-across-blocking",
			Summary:   "internal/jobs must not hold a mutex across a blocking channel operation or a solver call",
			Rationale: "a send or solve under the manager mutex turns queue backpressure into a deadlock of every submitter and poller",
			Scope:     "internal/jobs"},
		applies: func(r Roles) bool { return r.Jobs },
		run:     runLockAcrossBlocking,
	},
	{
		PassInfo: PassInfo{Code: CodeUntrackedGoroutine, Name: "joined-goroutines",
			Summary:   "goroutines in the job and detect layers must be joined via a WaitGroup or a done channel",
			Rationale: "an unjoined goroutine outlives drain and shutdown, racing the race detector and leaking under server churn",
			Scope:     "internal/jobs, internal/detect"},
		applies: func(r Roles) bool { return r.Jobs || r.Detect },
		run:     runUntrackedGoroutine,
	},
	{
		PassInfo: PassInfo{Code: CodeDenseHotAlloc, Name: "slab-backed-matrices",
			Summary:   "the analysis and detect layers must not allocate dense matrices (numeric.NewMatrix/Identity/FromRows); per-point matrices are slab views or workspace-held",
			Rationale: "an O(n²) allocation per grid point or per cell undoes the allocation-flat engine design; dense factor caches are views into one slab, sparse ones detach into arenas",
			Scope:     "internal/analysis, internal/detect"},
		applies: func(r Roles) bool { return r.Analysis || r.Detect },
		run:     runDenseHotAlloc,
	},
	{
		PassInfo: PassInfo{Code: CodeDirectStoreIO, Name: "store-confined-io",
			Summary:   "internal/jobs must not access the filesystem (os, io/fs) outside the fsstore files; persistence goes through the Store interface",
			Rationale: "the Store seam carries the atomic-rename and corruption-tolerance contracts replicas rely on; a stray os call in the manager or scheduler bypasses both and runs disk I/O under locks the store releases",
			Scope:     "internal/jobs except fsstore*.go"},
		applies: func(r Roles) bool { return r.Jobs },
		run:     runDirectStoreIO,
	},
}

// Passes returns the registered passes in code order.
func Passes() []PassInfo {
	out := make([]PassInfo, len(passTable))
	for i, p := range passTable {
		out[i] = p.PassInfo
	}
	return out
}

// passByCode maps code → registry entry.
var passByCode = func() map[string]*passEntry {
	m := make(map[string]*passEntry, len(passTable))
	for i := range passTable {
		m[passTable[i].Code] = &passTable[i]
	}
	return m
}()

// KnownCode reports whether code names a registered pass.
func KnownCode(code string) bool { _, ok := passByCode[code]; return ok }

// Diagnostic is one structured finding.
type Diagnostic struct {
	// Code is the stable VIxxx identifier of the pass that fired.
	Code string `json:"code"`
	// Package is the analyzed package's root-relative directory.
	Package string `json:"package"`
	// File is the offending file, slash-separated and root-relative.
	File string `json:"file"`
	// Line and Col locate the finding (1-based).
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// Hint suggests a fix.
	Hint string `json:"hint,omitempty"`
}

// String renders "file:line:col: VI001 [single-clock-source]: message".
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%d:%d: %s", d.File, d.Line, d.Col, d.Code)
	if p, ok := passByCode[d.Code]; ok {
		fmt.Fprintf(&b, " [%s]", p.Name)
	}
	b.WriteString(": ")
	b.WriteString(d.Message)
	return b.String()
}

// Report is the result of analyzing a set of packages.
type Report struct {
	// Root is the analysis root the file paths are relative to.
	Root string `json:"root"`
	// Packages lists the analyzed package directories.
	Packages []string `json:"packages"`
	// Codes lists the pass codes that ran (all of them unless filtered).
	Codes []string `json:"codes"`
	// Diagnostics holds every finding, sorted by file, line, column and
	// code.
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Suppressed counts findings swallowed by the baseline allowlist.
	Suppressed int `json:"suppressed,omitempty"`
	// StaleBaseline lists baseline entries that matched nothing — fixed
	// findings whose allowlist rows should be burned down.
	StaleBaseline []BaselineEntry `json:"stale_baseline,omitempty"`
}

// Clean reports whether the analysis produced no diagnostics.
func (r *Report) Clean() bool { return len(r.Diagnostics) == 0 }

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText writes one "file:line:col: CODE [name]: message" line per
// finding, each followed by its fix hint, then a one-line verdict.
func (r *Report) WriteText(w io.Writer) error {
	for _, d := range r.Diagnostics {
		if _, err := fmt.Fprintf(w, "%s\n", d); err != nil {
			return err
		}
		if d.Hint != "" {
			if _, err := fmt.Fprintf(w, "\tfix: %s\n", d.Hint); err != nil {
				return err
			}
		}
	}
	for _, e := range r.StaleBaseline {
		if _, err := fmt.Fprintf(w, "stale baseline entry (finding fixed; remove it): %s %s\n", e.Code, e.File); err != nil {
			return err
		}
	}
	var err error
	switch {
	case len(r.Diagnostics) == 0 && r.Suppressed == 0:
		_, err = fmt.Fprintf(w, "clean: %d package(s), %d pass(es)\n", len(r.Packages), len(r.Codes))
	case len(r.Diagnostics) == 0:
		_, err = fmt.Fprintf(w, "clean: %d package(s), %d pass(es), %d finding(s) suppressed by baseline\n",
			len(r.Packages), len(r.Codes), r.Suppressed)
	default:
		_, err = fmt.Fprintf(w, "%d invariant violation(s) across %d package(s)\n", len(r.Diagnostics), len(r.Packages))
	}
	return err
}

// sortDiagnostics orders findings for deterministic output.
func sortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Code < b.Code
	})
}
