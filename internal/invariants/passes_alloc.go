package invariants

// runDenseHotAlloc implements VI011: the sweep and detect layers never
// allocate whole dense matrices. Every per-point matrix those layers
// touch is either a numeric.MatrixView over a slab the caller sized
// once, or lives in a Workspace (dense or sparse) that is reused across
// the grid — an O(n²) allocation inside the cell fan-out or the
// low-rank grid build would silently undo the allocation-flat design
// the engine pool exists for.
func runDenseHotAlloc(p *pass) {
	const hint = "back the matrix with a slab view (numeric.MatrixView) or a reused Workspace; the sparse layout detaches factors into arenas instead"
	usesOf(p, "analogdft/internal/numeric", map[string]string{
		"NewMatrix": "hot simulation layers must not allocate dense matrices via numeric.NewMatrix; use a slab-backed view or a Workspace",
		"Identity":  "hot simulation layers must not allocate dense matrices via numeric.Identity; use a slab-backed view or a Workspace",
		"FromRows":  "hot simulation layers must not allocate dense matrices via numeric.FromRows; use a slab-backed view or a Workspace",
	}, hint)
}
