package invariants

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// runUnboundedLabel implements VI008: the label value handed to
// (*obs.CounterVec).With / (*obs.HistogramVec).With must provably come
// from a fixed string set, because every distinct value registers a new
// metric series for the lifetime of the process. Request-derived data —
// a trace ID, a cache key, a job ID — is exactly what must never reach a
// label.
//
// An expression is accepted as bounded when it is:
//
//   - a constant (including conversions of typed constants);
//   - a value of a named enum type: a named type whose own package
//     declares constants of that type (job State, detect Engine);
//   - a String() call on such an enum type (the stringer of a closed set);
//   - fmt.Sprintf with a constant format whose arguments are themselves
//     bounded or numeric/bool (the "%dxx" status-class idiom — numeric
//     inputs cannot carry request strings);
//   - a local variable all of whose assignments are bounded.
func runUnboundedLabel(p *pass) {
	for _, f := range p.pkg.Files {
		walkStack(f, func(stack []ast.Node, n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "With" {
				return true
			}
			s, ok := p.pkg.Info.Selections[sel]
			if !ok || s.Obj() == nil || s.Obj().Pkg() == nil || s.Obj().Pkg().Path() != obsPath {
				return true
			}
			recv := s.Recv()
			if !typeIsPath(recv, obsPath, "CounterVec") && !typeIsPath(recv, obsPath, "HistogramVec") {
				return true
			}
			if len(call.Args) != 1 || p.boundedLabel(stack, call.Args[0], nil) {
				return true
			}
			p.report(call.Args[0], "metric label value is not drawn from a fixed string set (cardinality explosion risk)",
				"label with a constant, a closed enum type or its String(); put per-request identity in exemplars or trace tags instead")
			return true
		})
	}
}

// boundedLabel reports whether expr provably evaluates to one of a fixed
// set of strings. seen breaks def-tracing cycles.
func (p *pass) boundedLabel(stack []ast.Node, expr ast.Expr, seen map[types.Object]bool) bool {
	expr = ast.Unparen(expr)
	if tv, ok := p.pkg.Info.Types[expr]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return true
	}
	if p.isEnumExpr(expr) {
		return true
	}
	switch e := expr.(type) {
	case *ast.CallExpr:
		// Conversion: string(enumValue) and friends — judge the operand.
		if isConversion(p.pkg.Info, e) && len(e.Args) == 1 {
			return p.boundedLabel(stack, e.Args[0], seen)
		}
		obj := calleeObj(p.pkg.Info, e)
		// Stringer of a closed enum: Engine.String() etc.
		if obj != nil && obj.Name() == "String" {
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
				if s, ok := p.pkg.Info.Selections[sel]; ok {
					if named := namedType(s.Recv()); named != nil && enumConstCount(named) > 0 {
						return true
					}
				}
			}
		}
		// fmt.Sprintf over a constant format and non-string inputs.
		if obj != nil && objectIs(obj, "fmt", "Sprintf") && len(e.Args) >= 1 {
			if tv, ok := p.pkg.Info.Types[e.Args[0]]; !ok || tv.Value == nil {
				return false
			}
			for _, arg := range e.Args[1:] {
				if !p.boundedLabel(stack, arg, seen) && !isNonStringBasic(p.pkg.Info, arg) {
					return false
				}
			}
			return true
		}
	case *ast.Ident:
		obj := p.pkg.Info.ObjectOf(e)
		if _, isVar := obj.(*types.Var); !isVar || seen[obj] {
			return false
		}
		if seen == nil {
			seen = make(map[types.Object]bool)
		}
		seen[obj] = true
		scope := enclosingTopDecl(stack)
		if scope == nil {
			return false
		}
		assigns := assignmentsTo(p.pkg.Info, scope, obj)
		if len(assigns) == 0 {
			return false
		}
		for _, rhs := range assigns {
			if !p.boundedLabel(stack, rhs, seen) {
				return false
			}
		}
		return true
	}
	return false
}

// isEnumExpr reports whether expr's type is a closed enum: a named type
// whose defining package declares constants of exactly that type.
func (p *pass) isEnumExpr(expr ast.Expr) bool {
	tv, ok := p.pkg.Info.Types[expr]
	if !ok {
		return false
	}
	named := namedType(tv.Type)
	if named == nil {
		return false
	}
	// A plain `string`-named stdlib type is not an enum; require declared
	// constants of the type itself.
	return enumConstCount(named) > 0
}

// isNonStringBasic reports whether expr has a basic non-string type
// (ints, floats, bool): values that cannot smuggle a request string into
// a label, only at worst a bounded numeral family.
func isNonStringBasic(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := types.Unalias(tv.Type).Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString == 0 && basic.Kind() != types.Invalid
}
