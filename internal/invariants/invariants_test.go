package invariants_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"analogdft/internal/invariants"
)

var update = flag.Bool("update", false, "rewrite the fixture expect.json goldens from current analyzer output")

// repoRoot is the repository root relative to this package directory.
const repoRoot = "../.."

// sharedLoader memoizes type-checked imports across tests: the source
// importer resolves each dependency once per process instead of once per
// fixture. The loader is not safe for concurrent use, so tests sharing it
// must not run in parallel.
var (
	loaderOnce sync.Once
	loader     *invariants.Loader
)

func sharedLoader() *invariants.Loader {
	loaderOnce.Do(func() { loader = invariants.NewLoader() })
	return loader
}

// manifest is the expect.json schema: the roles the fixture package
// assumes plus the golden diagnostics.
type manifest struct {
	Roles       []string                `json:"roles"`
	Diagnostics []invariants.Diagnostic `json:"diagnostics"`
}

func fixtureDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(repoRoot, "testdata", "invariants"))
	if err != nil {
		t.Fatalf("reading fixture root: %v", err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	sort.Strings(dirs)
	return dirs
}

func loadFixture(t *testing.T, code string) (*invariants.Package, manifest) {
	t.Helper()
	dir := filepath.Join(repoRoot, "testdata", "invariants", code)
	data, err := os.ReadFile(filepath.Join(dir, "expect.json"))
	if err != nil {
		t.Fatalf("%s: %v", code, err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("%s: expect.json: %v", code, err)
	}
	roles, err := invariants.ParseRoles(m.Roles)
	if err != nil {
		t.Fatalf("%s: %v", code, err)
	}
	pkg, err := sharedLoader().LoadDir(dir, "testdata/invariants/"+code, roles)
	if err != nil {
		t.Fatalf("%s: %v", code, err)
	}
	return pkg, m
}

// TestFixtures checks every golden fixture: the analyzer must produce
// exactly the recorded diagnostics, every finding must carry the
// fixture's own code (seeded violations trigger their pass and no
// other), and at least one finding must fire.
func TestFixtures(t *testing.T) {
	for _, code := range fixtureDirs(t) {
		t.Run(code, func(t *testing.T) {
			pkg, m := loadFixture(t, code)
			rep, err := invariants.Analyze(repoRoot, []*invariants.Package{pkg}, invariants.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if *update {
				m.Diagnostics = rep.Diagnostics
				data, err := json.MarshalIndent(m, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				path := filepath.Join(repoRoot, "testdata", "invariants", code, "expect.json")
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			if len(rep.Diagnostics) == 0 {
				t.Fatalf("fixture produced no diagnostics; the seeded violation no longer fires")
			}
			for _, d := range rep.Diagnostics {
				if d.Code != code {
					t.Errorf("fixture for %s triggered %s: %s", code, d.Code, d)
				}
			}
			if !*update && !reflect.DeepEqual(rep.Diagnostics, m.Diagnostics) {
				got, _ := json.MarshalIndent(rep.Diagnostics, "", "  ")
				want, _ := json.MarshalIndent(m.Diagnostics, "", "  ")
				t.Errorf("diagnostics mismatch (rerun with -update to regenerate)\ngot:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

// TestFixtureCatalogComplete pins one fixture directory per registered
// pass code, so a new pass cannot land without its golden.
func TestFixtureCatalogComplete(t *testing.T) {
	have := make(map[string]bool)
	for _, code := range fixtureDirs(t) {
		if !invariants.KnownCode(code) {
			t.Errorf("fixture directory %s does not match a registered pass", code)
		}
		have[code] = true
	}
	for _, p := range invariants.Passes() {
		if !have[p.Code] {
			t.Errorf("pass %s [%s] has no fixture under testdata/invariants/", p.Code, p.Name)
		}
	}
}

// TestRepositoryIsClean is the self-clean gate: the analyzer finds
// nothing in the tree it lives in.
func TestRepositoryIsClean(t *testing.T) {
	pkgs, err := sharedLoader().LoadRepo(repoRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("LoadRepo found no packages")
	}
	rep, err := invariants.Analyze(repoRoot, pkgs, invariants.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Diagnostics {
		t.Errorf("repository violates its own invariant: %s", d)
	}
}

// TestDeterministicAcrossLoadOrder loads the multi-file VI001 fixture
// under different file orders with independent loaders and requires
// byte-identical reports: analyzer output must not depend on directory
// iteration order or importer cache state.
func TestDeterministicAcrossLoadOrder(t *testing.T) {
	dir := filepath.Join(repoRoot, "testdata", "invariants", "VI001")
	orders := [][]string{
		{"fixture.go", "fixture2.go"},
		{"fixture2.go", "fixture.go"},
	}
	var reports [][]byte
	for _, names := range orders {
		l := invariants.NewLoader()
		pkg, err := l.LoadFiles(dir, "testdata/invariants/VI001", invariants.Roles{Internal: true}, names)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := invariants.Analyze(repoRoot, []*invariants.Package{pkg}, invariants.Options{})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, data)
	}
	if string(reports[0]) != string(reports[1]) {
		t.Errorf("report depends on file load order\nfirst:\n%s\nsecond:\n%s", reports[0], reports[1])
	}

	// Two runs over the same loaded package must agree too.
	pkg, _ := loadFixture(t, "VI001")
	a, err := invariants.Analyze(repoRoot, []*invariants.Package{pkg}, invariants.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := invariants.Analyze(repoRoot, []*invariants.Package{pkg}, invariants.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two runs over the same package disagree")
	}
}

// TestCodesFilter restricts a run to one pass and checks both the
// filtering and the unknown-code error path.
func TestCodesFilter(t *testing.T) {
	pkg, _ := loadFixture(t, "VI001")
	rep, err := invariants.Analyze(repoRoot, []*invariants.Package{pkg}, invariants.Options{Codes: []string{"VI002"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Codes) != 1 || rep.Codes[0] != "VI002" {
		t.Errorf("Codes = %v, want [VI002]", rep.Codes)
	}
	if !rep.Clean() {
		t.Errorf("VI002-only run over the VI001 fixture found %d diagnostics", len(rep.Diagnostics))
	}
	if _, err := invariants.Analyze(repoRoot, nil, invariants.Options{Codes: []string{"VI999"}}); err == nil {
		t.Error("unknown code VI999 did not error")
	}
}

// TestBaselineRoundTrip grandfathers a fixture's findings, confirms they
// are suppressed, and checks stale entries surface for burn-down.
func TestBaselineRoundTrip(t *testing.T) {
	pkg, _ := loadFixture(t, "VI009")
	rep, err := invariants.Analyze(repoRoot, []*invariants.Package{pkg}, invariants.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("VI009 fixture produced no findings to baseline")
	}
	want := len(rep.Diagnostics)

	path := filepath.Join(t.TempDir(), "baseline.json")
	b := invariants.FromFindings(rep.Diagnostics, "fixture round-trip")
	b.Entries = append(b.Entries, invariants.BaselineEntry{
		Code: "VI001", File: "testdata/invariants/VI009/fixture.go", Reason: "stale on purpose",
	})
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := invariants.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	rep2, err := invariants.Analyze(repoRoot, []*invariants.Package{pkg}, invariants.Options{Baseline: loaded})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Clean() {
		t.Errorf("baselined run still reports %d diagnostics", len(rep2.Diagnostics))
	}
	if rep2.Suppressed != want {
		t.Errorf("Suppressed = %d, want %d", rep2.Suppressed, want)
	}
	if len(rep2.StaleBaseline) != 1 || rep2.StaleBaseline[0].Code != "VI001" {
		t.Errorf("StaleBaseline = %+v, want the seeded VI001 entry", rep2.StaleBaseline)
	}
}

// TestLoadBaselineRejectsBadEntries pins the validation errors.
func TestLoadBaselineRejectsBadEntries(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"unknown-code": `{"entries":[{"code":"VI999","file":"x.go"}]}`,
		"missing-file": `{"entries":[{"code":"VI001"}]}`,
		"bad-json":     `{`,
	}
	for name, body := range cases {
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := invariants.LoadBaseline(path); err == nil {
			t.Errorf("%s: LoadBaseline accepted invalid baseline", name)
		}
	}
}

// TestRolesForPath pins the role derivation, in particular that obs
// subpackages are ordinary internal packages (clock-gate exemption does
// not extend below internal/obs itself).
func TestRolesForPath(t *testing.T) {
	cases := []struct {
		rel  string
		want invariants.Roles
	}{
		{"internal/obs", invariants.Roles{Internal: true, Obs: true}},
		{"internal/obs/cliobs", invariants.Roles{Internal: true}},
		{"internal/obs/benchfmt", invariants.Roles{Internal: true}},
		{"internal/detect", invariants.Roles{Internal: true, Detect: true}},
		{"internal/jobs", invariants.Roles{Internal: true, Jobs: true}},
		{"internal/analysis", invariants.Roles{Internal: true, Analysis: true}},
		{"cmd/dftserved", invariants.Roles{Served: true}},
		{"cmd/analogdft", invariants.Roles{}},
	}
	for _, c := range cases {
		if got := invariants.RolesForPath(c.rel); got != c.want {
			t.Errorf("RolesForPath(%q) = %+v, want %+v", c.rel, got, c.want)
		}
	}
	if _, err := invariants.ParseRoles([]string{"edge"}); err == nil {
		t.Error(`ParseRoles accepted unknown role "edge"`)
	}
}

// TestPassCatalog pins the registry shape: twelve passes in ascending
// code order with complete metadata.
func TestPassCatalog(t *testing.T) {
	passes := invariants.Passes()
	if len(passes) != 12 {
		t.Fatalf("registry has %d passes, want 12", len(passes))
	}
	for i, p := range passes {
		if p.Code == "" || p.Name == "" || p.Summary == "" || p.Rationale == "" || p.Scope == "" {
			t.Errorf("pass %d (%s) has incomplete metadata: %+v", i, p.Code, p)
		}
		if i > 0 && passes[i-1].Code >= p.Code {
			t.Errorf("pass codes out of order: %s before %s", passes[i-1].Code, p.Code)
		}
		if !invariants.KnownCode(p.Code) {
			t.Errorf("KnownCode(%s) = false for a registered pass", p.Code)
		}
	}
	if invariants.KnownCode("VI999") {
		t.Error("KnownCode(VI999) = true")
	}
}
