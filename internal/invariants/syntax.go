package invariants

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file holds the syntax- and type-level helpers the passes share:
// resolved-object matching, an enclosure-stack walker, and def-tracing of
// local variables back to their assignments.

// pass carries one package through one pass run and collects findings.
type pass struct {
	pkg  *Package
	info *PassInfo
	out  []Diagnostic
}

// report records a finding at node n.
func (p *pass) report(n ast.Node, msg, hint string) {
	pos := p.pkg.Fset.Position(n.Pos())
	file := pos.Filename
	// The loader parses dir-joined paths; keep diagnostics root-relative
	// by re-anchoring on the package's rel dir.
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		file = file[i+1:]
	}
	p.out = append(p.out, Diagnostic{
		Code:    p.info.Code,
		Package: p.pkg.Rel,
		File:    p.pkg.Rel + "/" + file,
		Line:    pos.Line,
		Col:     pos.Column,
		Message: msg,
		Hint:    hint,
	})
}

// objectIs reports whether obj is the named object declared in the
// package with import path pkgPath. Matching is by path and name, never
// by pointer identity, because the same dependency may be type-checked
// more than once across Load calls.
func objectIs(obj types.Object, pkgPath, name string) bool {
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// usesOf walks every resolved identifier use in the package and reports
// those matching a package-level object (pkgPath, one of names). It sees
// aliased imports, dot imports and function values alike: the object is
// matched after resolution, not the spelling. Methods never match — a
// name like Optimize is only forbidden as the package-level function,
// not as Session.Optimize.
func usesOf(p *pass, pkgPath string, names map[string]string, hint string) {
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.pkg.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
				return true
			}
			if obj.Parent() != obj.Pkg().Scope() {
				return true
			}
			if msg, bad := names[obj.Name()]; bad {
				p.report(id, msg, hint)
			}
			return true
		})
	}
}

// calleeObj resolves the object a call expression invokes: a package
// function, a method, or nil for indirect calls through function values.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// isConversion reports whether call is a type conversion rather than a
// function call.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// walkStack traverses root keeping the enclosure stack: fn receives the
// chain of ancestors (outermost first, not including n itself) for every
// node. Returning false skips n's children.
func walkStack(root ast.Node, fn func(stack []ast.Node, n ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(stack, n)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// assignmentsTo collects the right-hand sides assigned to obj anywhere
// under root: `x := rhs`, `x = rhs` and `var x = rhs` forms. Multi-value
// assignments from a single call yield that call for every LHS.
func assignmentsTo(info *types.Info, root ast.Node, obj types.Object) []ast.Expr {
	var out []ast.Expr
	ast.Inspect(root, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || (info.Defs[id] != obj && info.Uses[id] != obj) {
					continue
				}
				switch {
				case len(st.Rhs) == len(st.Lhs):
					out = append(out, st.Rhs[i])
				case len(st.Rhs) == 1:
					out = append(out, st.Rhs[0])
				}
			}
		case *ast.ValueSpec:
			for i, id := range st.Names {
				if info.Defs[id] != obj {
					continue
				}
				switch {
				case len(st.Values) == len(st.Names):
					out = append(out, st.Values[i])
				case len(st.Values) == 1:
					out = append(out, st.Values[0])
				}
			}
		}
		return true
	})
	return out
}

// enclosingTopDecl returns the outermost declaration on the stack — the
// scope def-tracing searches for assignments.
func enclosingTopDecl(stack []ast.Node) ast.Node {
	for _, n := range stack {
		switch n.(type) {
		case *ast.FuncDecl, *ast.GenDecl:
			return n
		}
	}
	if len(stack) > 0 {
		return stack[0]
	}
	return nil
}

// isParamOf reports whether obj is declared as a parameter (or result)
// of any function literal or declaration on the stack.
func isParamOf(info *types.Info, stack []ast.Node, obj types.Object) bool {
	check := func(ft *ast.FuncType) bool {
		for _, fl := range []*ast.FieldList{ft.Params, ft.Results} {
			if fl == nil {
				continue
			}
			for _, field := range fl.List {
				for _, id := range field.Names {
					if info.Defs[id] == obj {
						return true
					}
				}
			}
		}
		return false
	}
	for _, n := range stack {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if check(fn.Type) {
				return true
			}
		case *ast.FuncLit:
			if check(fn.Type) {
				return true
			}
		}
	}
	return false
}

// namedType unwraps pointers and aliases down to a *types.Named, or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}

// typeIsPath reports whether t (after unwrapping pointers) is the named
// type pkgPath.name.
func typeIsPath(t types.Type, pkgPath, name string) bool {
	named := namedType(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// enumConstCount counts the package-level constants declared with
// exactly the named type, in the type's own package. A type with at
// least one such constant is treated as a closed enum: its values form a
// fixed set by construction.
func enumConstCount(named *types.Named) int {
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return 0
	}
	scope := obj.Pkg().Scope()
	n := 0
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(types.Unalias(c.Type()), named) {
			n++
		}
	}
	return n
}

// isChanType reports whether t is (or points to) a channel type.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := types.Unalias(t).Underlying().(*types.Chan)
	return ok
}
