package invariants

import (
	"encoding/json"
	"fmt"
	"os"
)

// BaselineEntry grandfathers one pre-existing finding. A finding matches
// when its code and file agree and, if the entry pins a line, the line
// agrees too. Leaving Line zero matches the whole file, which survives
// unrelated edits above the finding; pinning the line makes the entry
// expire as soon as the code moves.
type BaselineEntry struct {
	Code string `json:"code"`
	File string `json:"file"`
	Line int    `json:"line,omitempty"`
	// Reason documents why the finding is allowed to exist for now.
	Reason string `json:"reason,omitempty"`
}

// Baseline is a committed allowlist of findings. The burn-down workflow:
// introduce a new pass with `vetinvariants -write-baseline`, commit the
// file, then delete entries as the findings are fixed — the analyzer
// reports entries that no longer match anything so stale rows cannot
// linger.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("invariants: baseline %s: %w", path, err)
	}
	for i, e := range b.Entries {
		if e.Code == "" || e.File == "" {
			return nil, fmt.Errorf("invariants: baseline %s: entry %d needs code and file", path, i)
		}
		if !KnownCode(e.Code) {
			return nil, fmt.Errorf("invariants: baseline %s: entry %d has unknown code %q", path, i, e.Code)
		}
	}
	return &b, nil
}

// FromFindings builds a baseline grandfathering every given finding,
// line-pinned so entries expire when the code moves.
func FromFindings(ds []Diagnostic, reason string) *Baseline {
	b := &Baseline{}
	for _, d := range ds {
		b.Entries = append(b.Entries, BaselineEntry{Code: d.Code, File: d.File, Line: d.Line, Reason: reason})
	}
	return b
}

// WriteFile writes the baseline as indented JSON.
func (b *Baseline) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter splits findings into kept and suppressed and reports baseline
// entries that matched nothing (stale rows due for burn-down).
func (b *Baseline) Filter(ds []Diagnostic) (kept []Diagnostic, suppressed int, stale []BaselineEntry) {
	used := make([]bool, len(b.Entries))
	for _, d := range ds {
		matched := false
		for i, e := range b.Entries {
			if e.Code == d.Code && e.File == d.File && (e.Line == 0 || e.Line == d.Line) {
				used[i] = true
				matched = true
			}
		}
		if matched {
			suppressed++
		} else {
			kept = append(kept, d)
		}
	}
	for i, e := range b.Entries {
		if !used[i] {
			stale = append(stale, e)
		}
	}
	return kept, suppressed, stale
}
