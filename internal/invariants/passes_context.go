package invariants

import (
	"go/ast"
	"go/types"
)

// runContextLaundering implements VI007: a function that receives a
// context.Context must thread it — manufacturing context.Background or
// context.TODO below the edge detaches the work from cancellation and
// tracing. The one sanctioned exception is span bookkeeping: a Background
// handed directly to an obs function or an obs.Tracer/Span method builds
// a value-carrier for a span tree whose lifetime is intentionally not the
// caller's (a job outlives its submit request), so those call sites are
// exempt and the exemption is part of the pass contract.
func runContextLaundering(p *pass) {
	for _, f := range p.pkg.Files {
		walkStack(f, func(stack []ast.Node, n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(p.pkg.Info, call)
			if obj == nil || !(objectIs(obj, "context", "Background") || objectIs(obj, "context", "TODO")) {
				return true
			}
			if !hasContextParam(p.pkg.Info, stack) {
				return true
			}
			if isObsPlumbing(p.pkg.Info, stack) {
				return true
			}
			p.report(call, "context."+obj.Name()+"() inside a context-receiving function launders away the caller's context",
				"thread the ctx parameter through (use context.WithoutCancel(ctx) if only the lifetime must detach)")
			return true
		})
	}
}

// hasContextParam reports whether any enclosing function on the stack
// declares a context.Context parameter.
func hasContextParam(info *types.Info, stack []ast.Node) bool {
	check := func(ft *ast.FuncType) bool {
		if ft.Params == nil {
			return false
		}
		for _, field := range ft.Params.List {
			if tv, ok := info.Types[field.Type]; ok && typeIsPath(tv.Type, "context", "Context") {
				return true
			}
		}
		return false
	}
	for _, n := range stack {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if check(fn.Type) {
				return true
			}
		case *ast.FuncLit:
			if check(fn.Type) {
				return true
			}
		}
	}
	return false
}

// isObsPlumbing reports whether the innermost call expressions enclosing
// the Background/TODO call all lead into the obs span machinery: a
// function declared in internal/obs, or a method on an obs type. The
// stack is scanned inside-out; the first enclosing call decides.
func isObsPlumbing(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		call, ok := stack[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		obj := calleeObj(info, call)
		if obj == nil || obj.Pkg() == nil {
			return false
		}
		if obj.Pkg().Path() == obsPath {
			return true
		}
		// Keep scanning outward through nested non-obs conversions or
		// helpers only when the call itself is a type conversion.
		if !isConversion(info, call) {
			return false
		}
	}
	return false
}
