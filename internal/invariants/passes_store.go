package invariants

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// runDirectStoreIO implements VI012: inside internal/jobs, direct
// filesystem access (anything package-scoped from os or io/fs) is
// confined to the fsstore files. The Store interface is the only
// persistence seam of the job layer — a stray os.ReadFile in the manager
// or scheduler bypasses the store's atomic-rename and corruption-
// tolerance contracts, and runs disk I/O under locks the store
// deliberately releases.
func runDirectStoreIO(p *pass) {
	for _, f := range p.pkg.Files {
		name := filepath.Base(p.pkg.Fset.Position(f.Pos()).Filename)
		if strings.HasPrefix(name, "fsstore") {
			continue // the disk store implementation owns its file access
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.pkg.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if path := obj.Pkg().Path(); path != "os" && path != "io/fs" {
				return true
			}
			if obj.Parent() != obj.Pkg().Scope() {
				return true
			}
			p.report(id,
				"the job layer must not touch the filesystem outside the fsstore files; persistence goes through the Store interface",
				"move the file access into the fsstore implementation, or express it as a Store method")
			return true
		})
	}
}
