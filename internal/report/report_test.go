package report

import (
	"strings"
	"testing"

	"analogdft/internal/paperdata"
)

func TestConfigurationTable(t *testing.T) {
	s := ConfigurationTable(3)
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 9 { // header + 8 configurations
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[1], "C0") || !strings.Contains(lines[1], "Funct") {
		t.Errorf("C0 row: %q", lines[1])
	}
	if !strings.Contains(lines[8], "C7") || !strings.Contains(lines[8], "Transp") {
		t.Errorf("C7 row: %q", lines[8])
	}
	if !strings.Contains(lines[2], "001") {
		t.Errorf("C1 vector: %q", lines[2])
	}
	if !strings.Contains(lines[6], "101") {
		t.Errorf("C5 vector: %q", lines[6])
	}
}

func TestDetMatrixTable(t *testing.T) {
	s := DetMatrixTable(paperdata.Matrix())
	if !strings.Contains(s, "fR1") || !strings.Contains(s, "C6") {
		t.Fatalf("missing headers:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 8 { // header + 7 configs
		t.Fatalf("lines = %d", len(lines))
	}
	// Row C2 from Figure 5: 1 1 0 1 1 1 1 0.
	var c2 string
	for _, l := range lines {
		if strings.HasPrefix(l, "C2") {
			c2 = l
		}
	}
	if got := strings.Join(strings.Fields(c2)[1:], " "); got != "1 1 0 1 1 1 1 0" {
		t.Errorf("C2 row = %q", got)
	}
}

func TestOmegaTable(t *testing.T) {
	s := OmegaTable(paperdata.Matrix(), nil)
	if !strings.Contains(s, "100") { // C3/fR5 cell
		t.Fatalf("missing 100%% cell:\n%s", s)
	}
	// With partial vectors.
	s = OmegaTable(paperdata.PartialMatrix(), []string{"00-", "10-", "01-", "11-"})
	if !strings.Contains(s, "C1(10-)") {
		t.Fatalf("missing partial vector label:\n%s", s)
	}
}

func TestGraph(t *testing.T) {
	g := Graph("Graph 1", []string{"fR1", "fR2"}, []Series{
		{Name: "initial", Values: []float64{54, 0}, Mark: '█'},
		{Name: "dft", Values: []float64{66, 70}, Mark: '░'},
	}, 40)
	if !strings.Contains(g, "Graph 1") || !strings.Contains(g, "54.0%") {
		t.Fatalf("graph:\n%s", g)
	}
	if !strings.Contains(g, "⟨ω-det⟩ = 27.0%") { // (54+0)/2
		t.Fatalf("missing initial average:\n%s", g)
	}
	if !strings.Contains(g, "⟨ω-det⟩ = 68.0%") { // (66+70)/2
		t.Fatalf("missing dft average:\n%s", g)
	}
	// Bars are clamped to the width.
	g = Graph("t", []string{"f"}, []Series{{Name: "s", Values: []float64{250}}}, 10)
	if !strings.Contains(g, strings.Repeat("█", 10)+"|") {
		t.Fatalf("clamping failed:\n%s", g)
	}
	// Missing values render as zero-length bars.
	g = Graph("t", []string{"a", "b"}, []Series{{Name: "s", Values: []float64{50}}}, 10)
	if !strings.Contains(g, "0.0%") {
		t.Fatalf("missing value handling:\n%s", g)
	}
}

func TestGraphDefaults(t *testing.T) {
	g := Graph("t", []string{"f"}, []Series{{Name: "s", Values: []float64{50}}}, 0)
	if len(g) == 0 {
		t.Fatal("empty graph")
	}
}

func TestMatrixCSV(t *testing.T) {
	var sb strings.Builder
	if err := MatrixCSV(&sb, paperdata.Matrix()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 1+7*8 {
		t.Fatalf("CSV lines = %d, want 57", len(lines))
	}
	if lines[0] != "config,vector,fault,detectable,omega_det_pct" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "C0,000,fR1,1,54") {
		t.Fatalf("first row = %q", lines[1])
	}
}

func TestCoverageSummaryAndRule(t *testing.T) {
	s := CoverageSummary("initial", 0.25, 12.5, 1)
	if !strings.Contains(s, "25.0%") || !strings.Contains(s, "12.5%") {
		t.Fatalf("summary = %q", s)
	}
	r := Rule("Table 2")
	if !strings.Contains(r, "Table 2") || len(r) < 40 {
		t.Fatalf("rule = %q", r)
	}
	if len(Rule("")) < 40 {
		t.Fatal("plain rule too short")
	}
}

func TestMatrixMarkdown(t *testing.T) {
	var sb strings.Builder
	if err := MatrixMarkdown(&sb, paperdata.Matrix()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2+7 {
		t.Fatalf("markdown lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "| Conf |") || !strings.Contains(lines[0], "fC2") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(out, "| C2 | 1 | 1 | 0 | 1 | 1 | 1 | 1 | 0 |") {
		t.Fatalf("C2 row missing:\n%s", out)
	}
}

func TestOmegaMarkdown(t *testing.T) {
	var sb strings.Builder
	if err := OmegaMarkdown(&sb, paperdata.Matrix()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "| C3 | 0 | 0 | 0 | 0 | 100 | 100 | 0 | 0 |") {
		t.Fatalf("C3 row missing:\n%s", sb.String())
	}
}
