// Package report renders the paper's tables and graphs as text: the
// configuration table (Table 1), the fault detectability matrix
// (Figure 5), ω-detectability tables (Tables 2 and 4) and the per-fault
// bar graphs (Graphs 1–4), plus CSV exports for external plotting.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"analogdft/internal/detect"
	"analogdft/internal/dft"
)

// ConfigurationTable renders Table 1 for an n-opamp chain: one row per
// configuration with its vector and role.
func ConfigurationTable(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-*s %s\n", "Conf", max(6, n), "Vector", "Description")
	for i := 0; i < 1<<uint(n); i++ {
		cfg := dft.Configuration{Index: i, N: n}
		desc := "New Test Conf"
		switch {
		case cfg.IsFunctional():
			desc = "Funct. Conf"
		case cfg.IsTransparent():
			desc = "Transp. Conf"
		}
		fmt.Fprintf(&b, "%-5s %-*s %s\n", cfg.Label(), max(6, n), cfg.Vector(), desc)
	}
	return b.String()
}

// DetMatrixTable renders the boolean fault detectability matrix in the
// style of Figure 5.
func DetMatrixTable(mx *detect.Matrix) string {
	var b strings.Builder
	w := columnWidth(mx)
	fmt.Fprintf(&b, "%-5s", "")
	for _, f := range mx.Faults {
		fmt.Fprintf(&b, " %*s", w, f.ID)
	}
	b.WriteByte('\n')
	for i, cfg := range mx.Configs {
		fmt.Fprintf(&b, "%-5s", cfg.Label())
		for j := range mx.Faults {
			v := "0"
			if mx.Det[i][j] {
				v = "1"
			}
			fmt.Fprintf(&b, " %*s", w, v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// OmegaTable renders the ω-detectability table in the style of Table 2.
// vectors optionally replaces the config labels (e.g. the "10-" partial
// notation of Table 4); pass nil to use plain labels.
func OmegaTable(mx *detect.Matrix, vectors []string) string {
	var b strings.Builder
	w := columnWidth(mx)
	label := func(i int) string {
		if vectors != nil && i < len(vectors) {
			return fmt.Sprintf("%s(%s)", mx.Configs[i].Label(), vectors[i])
		}
		return mx.Configs[i].Label()
	}
	lw := 5
	for i := range mx.Configs {
		if l := len(label(i)); l > lw {
			lw = l
		}
	}
	fmt.Fprintf(&b, "%-*s", lw, "Conf")
	for _, f := range mx.Faults {
		fmt.Fprintf(&b, " %*s", w, f.ID)
	}
	b.WriteByte('\n')
	for i := range mx.Configs {
		fmt.Fprintf(&b, "%-*s", lw, label(i))
		for j := range mx.Faults {
			fmt.Fprintf(&b, " %*.0f", w, mx.Omega[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func columnWidth(mx *detect.Matrix) int {
	w := 4
	for _, f := range mx.Faults {
		if len(f.ID) > w {
			w = len(f.ID)
		}
	}
	return w
}

// Series is one bar group of a Graph: a named ω-detectability value per
// fault.
type Series struct {
	Name   string
	Values []float64 // percent, aligned with the graph's fault IDs
	Mark   rune      // bar fill character, e.g. '█', '▒', '░'
}

// Graph renders a per-fault grouped horizontal bar chart (the style of
// Graphs 1–4): for each fault, one bar per series, scaled to 0–100%.
func Graph(title string, faultIDs []string, series []Series, width int) string {
	if width <= 0 {
		width = 50
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	lw := 6
	for _, id := range faultIDs {
		if len(id) > lw {
			lw = len(id)
		}
	}
	nw := 6
	for _, s := range series {
		if len(s.Name) > nw {
			nw = len(s.Name)
		}
	}
	for j, id := range faultIDs {
		for si, s := range series {
			label := ""
			if si == 0 {
				label = id
			}
			v := 0.0
			if j < len(s.Values) {
				v = s.Values[j]
			}
			if math.IsNaN(v) {
				v = 0
			}
			filled := int(math.Round(v / 100 * float64(width)))
			if filled > width {
				filled = width
			}
			if filled < 0 {
				filled = 0
			}
			mark := s.Mark
			if mark == 0 {
				mark = '█'
			}
			bar := strings.Repeat(string(mark), filled) + strings.Repeat("·", width-filled)
			fmt.Fprintf(&b, "%-*s %-*s |%s| %5.1f%%\n", lw, label, nw, s.Name, bar, v)
		}
	}
	// Averages footer.
	b.WriteString(strings.Repeat("-", lw+nw+width+11) + "\n")
	for _, s := range series {
		sum, n := 0.0, 0
		for _, v := range s.Values {
			if !math.IsNaN(v) {
				sum += v
				n++
			}
		}
		avg := 0.0
		if n > 0 {
			avg = sum / float64(n)
		}
		fmt.Fprintf(&b, "%-*s %-*s ⟨ω-det⟩ = %.1f%%\n", lw, "", nw, s.Name, avg)
	}
	return b.String()
}

// MatrixCSV writes the detectability matrix and ω-det values as CSV:
// config,vector,fault,detectable,omega_det_pct.
func MatrixCSV(w io.Writer, mx *detect.Matrix) error {
	if _, err := fmt.Fprintln(w, "config,vector,fault,detectable,omega_det_pct"); err != nil {
		return err
	}
	for i, cfg := range mx.Configs {
		for j, f := range mx.Faults {
			d := 0
			if mx.Det[i][j] {
				d = 1
			}
			if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%.4g\n",
				cfg.Label(), cfg.Vector(), f.ID, d, mx.Omega[i][j]); err != nil {
				return err
			}
		}
	}
	return nil
}

// CoverageSummary renders the headline coverage line of an experiment.
func CoverageSummary(name string, coverage, avgOmega float64, nConfigs int) string {
	return fmt.Sprintf("%-28s FC = %5.1f%%   ⟨ω-det⟩ = %5.1f%%   configurations = %d",
		name, 100*coverage, avgOmega, nConfigs)
}

// Rule returns a horizontal rule with a centred title.
func Rule(title string) string {
	const width = 78
	if title == "" {
		return strings.Repeat("=", width)
	}
	pad := width - len(title) - 2
	if pad < 2 {
		pad = 2
	}
	left := pad / 2
	right := pad - left
	return strings.Repeat("=", left) + " " + title + " " + strings.Repeat("=", right)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MatrixMarkdown renders the detectability matrix as a GitHub-flavoured
// markdown table (for docs and issues).
func MatrixMarkdown(w io.Writer, mx *detect.Matrix) error {
	var b strings.Builder
	b.WriteString("| Conf |")
	for _, f := range mx.Faults {
		fmt.Fprintf(&b, " %s |", f.ID)
	}
	b.WriteString("\n|---|")
	for range mx.Faults {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for i, cfg := range mx.Configs {
		fmt.Fprintf(&b, "| %s |", cfg.Label())
		for j := range mx.Faults {
			v := "0"
			if mx.Det[i][j] {
				v = "1"
			}
			fmt.Fprintf(&b, " %s |", v)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// OmegaMarkdown renders the ω-detectability table as markdown.
func OmegaMarkdown(w io.Writer, mx *detect.Matrix) error {
	var b strings.Builder
	b.WriteString("| Conf |")
	for _, f := range mx.Faults {
		fmt.Fprintf(&b, " %s |", f.ID)
	}
	b.WriteString("\n|---|")
	for range mx.Faults {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for i, cfg := range mx.Configs {
		fmt.Fprintf(&b, "| %s |", cfg.Label())
		for j := range mx.Faults {
			fmt.Fprintf(&b, " %.0f |", mx.Omega[i][j])
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
