package obs

import (
	"strings"
	"testing"
)

func TestCounterVecSeries(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("lint_total", "diagnostics by code", "code")
	cv.With("NL001").Inc()
	cv.With("NL001").Add(2)
	cv.With("NL002").Inc()

	snap := r.Snapshot()
	if got := snap[`lint_total{code="NL001"}`].Value; got != 3 {
		t.Errorf("NL001 = %v, want 3", got)
	}
	if got := snap[`lint_total{code="NL002"}`].Value; got != 1 {
		t.Errorf("NL002 = %v, want 1", got)
	}
}

func TestCounterVecPrometheusGrouping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("lint_total", "diagnostics by code", "code")
	cv.With("NL001").Inc()
	cv.With("NL002").Inc()
	r.Counter("plain_total", "plain").Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if n := strings.Count(out, "# HELP lint_total "); n != 1 {
		t.Errorf("HELP emitted %d times:\n%s", n, out)
	}
	for _, want := range []string{
		`lint_total{code="NL001"} 1`,
		`lint_total{code="NL002"} 1`,
		"# TYPE lint_total counter",
		"plain_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
