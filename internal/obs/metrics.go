package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. Registration is idempotent: asking for an
// existing name of the same kind returns the same metric, so packages can
// declare their instruments in var blocks without coordination. All
// operations are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// metric is the common behaviour of counters, gauges and histograms.
type metric interface {
	kind() string
	help() string
	snap() MetricSnap
	reset()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// lookup registers m under name unless a metric of the same kind already
// exists, in which case the existing one is returned. A kind clash panics:
// it is a programming error on the level of a duplicate flag name.
func (r *Registry) lookup(name string, m metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.metrics[name]; ok {
		if old.kind() != m.kind() {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, m.kind(), old.kind()))
		}
		return old
	}
	r.metrics[name] = m
	return m
}

// Counter returns the named monotonically increasing counter, creating it
// if needed.
func (r *Registry) Counter(name, helpText string) *Counter {
	return r.lookup(name, &Counter{helpText: helpText}).(*Counter)
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name, helpText string) *Gauge {
	return r.lookup(name, &Gauge{helpText: helpText}).(*Gauge)
}

// Histogram returns the named fixed-bucket histogram, creating it with the
// given upper bounds (ascending; an implicit +Inf bucket is appended) if
// needed.
func (r *Registry) Histogram(name, helpText string, bounds []float64) *Histogram {
	h := &Histogram{helpText: helpText, bounds: append([]float64(nil), bounds...)}
	h.buckets = make([]atomic.Int64, len(h.bounds)+1)
	return r.lookup(name, h).(*Histogram)
}

// CounterVec is a family of counters sharing one metric name and help
// text, keyed by a single label. Each distinct label value registers an
// ordinary Counter under the Prometheus series name
// `name{label="value"}`; WritePrometheus groups the series under one
// HELP/TYPE header. With is safe for concurrent use.
type CounterVec struct {
	r     *Registry
	name  string
	label string
	help  string
}

// CounterVec returns the named counter family with the given label key.
func (r *Registry) CounterVec(name, helpText, label string) *CounterVec {
	return &CounterVec{r: r, name: name, label: label, help: helpText}
}

// With returns the counter for one label value, creating it if needed.
// The label value is escaped by %q, which matches the Prometheus text
// format for quotes, backslashes and newlines.
func (cv *CounterVec) With(value string) *Counter {
	series := fmt.Sprintf("%s{%s=%q}", cv.name, cv.label, value)
	return cv.r.Counter(series, cv.help)
}

// HistogramVec is a family of histograms sharing one metric name, help
// text and bucket bounds, keyed by a single label — the histogram analogue
// of CounterVec. Each distinct label value registers an ordinary Histogram
// under the Prometheus series name `name{label="value"}`; WritePrometheus
// groups the series under one HELP/TYPE header. With is safe for
// concurrent use.
type HistogramVec struct {
	r      *Registry
	name   string
	label  string
	help   string
	bounds []float64
}

// HistogramVec returns the named histogram family with the given label key
// and bucket bounds.
func (r *Registry) HistogramVec(name, helpText, label string, bounds []float64) *HistogramVec {
	return &HistogramVec{r: r, name: name, label: label, help: helpText, bounds: bounds}
}

// With returns the histogram for one label value, creating it if needed.
func (hv *HistogramVec) With(value string) *Histogram {
	series := fmt.Sprintf("%s{%s=%q}", hv.name, hv.label, value)
	return hv.r.Histogram(series, hv.help, hv.bounds)
}

// baseName strips a `{label="value"}` series suffix, returning the metric
// family name HELP/TYPE comments apply to.
func baseName(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// seriesWithSuffix inserts a name suffix before a series' label set:
// `s{l="v"}` + `_count` -> `s_count{l="v"}`. Suffixed histogram and
// summary series stay valid Prometheus when the family carries labels.
func seriesWithSuffix(series, suffix string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i] + suffix + series[i:]
	}
	return series + suffix
}

// seriesWithLabel appends one `key="value"` pair to a series' label set,
// creating the braces when the series has none.
func seriesWithLabel(series, label string) string {
	if strings.HasSuffix(series, "}") {
		return series[:len(series)-1] + "," + label + "}"
	}
	return series + "{" + label + "}"
}

// Reset zeroes every registered metric (counts, gauge values, histogram
// buckets). Handles held by instrumented packages stay valid.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.metrics {
		m.reset()
	}
}

// Counter is a monotonically increasing int64 counter.
type Counter struct {
	helpText string
	v        atomic.Int64
}

// Add increments the counter by n (n must be non-negative).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) kind() string { return "counter" }
func (c *Counter) help() string { return c.helpText }
func (c *Counter) reset()       { c.v.Store(0) }
func (c *Counter) snap() MetricSnap {
	return MetricSnap{Kind: "counter", Value: float64(c.v.Load())}
}

// Gauge is a float64 gauge.
type Gauge struct {
	helpText string
	bits     atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetMax raises the gauge to v if v is larger — a high-water mark.
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Add adds delta to the gauge.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) kind() string { return "gauge" }
func (g *Gauge) help() string { return g.helpText }
func (g *Gauge) reset()       { g.bits.Store(0) }
func (g *Gauge) snap() MetricSnap {
	return MetricSnap{Kind: "gauge", Value: g.Value()}
}

// Histogram is a fixed-bucket histogram (cumulative on export, Prometheus
// style). Observations are lock-free.
type Histogram struct {
	helpText string
	bounds   []float64 // ascending upper bounds; buckets has one extra +Inf slot
	buckets  []atomic.Int64
	count    atomic.Int64
	sumBits  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) kind() string { return "histogram" }
func (h *Histogram) help() string { return h.helpText }
func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
}

func (h *Histogram) snap() MetricSnap {
	s := MetricSnap{Kind: "histogram", Count: h.count.Load(), Sum: h.Sum()}
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		s.Buckets = append(s.Buckets, BucketSnap{LE: b, Count: cum})
	}
	cum += h.buckets[len(h.bounds)].Load()
	s.Buckets = append(s.Buckets, BucketSnap{LE: math.Inf(1), Count: cum})
	return s
}

// Summary is a rolling-window quantile estimator: the last Window
// observations are retained in a ring buffer, and quantiles are computed
// exactly over that window at snapshot time. It exposes as a Prometheus
// summary (`name{quantile="0.5"}` series plus lifetime `_sum`/`_count`),
// which is what dependency-free P50/P95/P99 exposition needs: fixed
// histogram buckets quantize tails, a sorted window does not.
type Summary struct {
	helpText  string
	quantiles []float64

	mu     sync.Mutex
	window []float64 // ring buffer of the most recent observations
	next   int       // next write position
	filled bool      // the ring has wrapped at least once
	count  int64     // lifetime observation count
	sum    float64   // lifetime observation sum
}

// DefaultQuantiles is the quantile set summaries expose: P50, P95, P99.
var DefaultQuantiles = []float64{0.5, 0.95, 0.99}

// Summary returns the named rolling summary, creating it with the given
// window size (min 16, default 1024 when <= 0) if needed.
func (r *Registry) Summary(name, helpText string, window int) *Summary {
	if window <= 0 {
		window = 1024
	}
	if window < 16 {
		window = 16
	}
	s := &Summary{helpText: helpText, quantiles: DefaultQuantiles, window: make([]float64, window)}
	return r.lookup(name, s).(*Summary)
}

// Observe records one value.
func (s *Summary) Observe(v float64) {
	s.mu.Lock()
	s.window[s.next] = v
	s.next++
	if s.next == len(s.window) {
		s.next = 0
		s.filled = true
	}
	s.count++
	s.sum += v
	s.mu.Unlock()
}

// Count returns the lifetime number of observations.
func (s *Summary) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Quantile returns the q-quantile (0 <= q <= 1) over the rolling window,
// or NaN while the window is empty.
func (s *Summary) Quantile(q float64) float64 {
	s.mu.Lock()
	live := s.liveLocked()
	s.mu.Unlock()
	return quantileOf(live, q)
}

// liveLocked copies the populated part of the ring. Caller holds s.mu.
func (s *Summary) liveLocked() []float64 {
	n := s.next
	if s.filled {
		n = len(s.window)
	}
	return append([]float64(nil), s.window[:n]...)
}

// quantileOf computes the q-quantile of values by sorting a copy; values
// may be clobbered. Nearest-rank on the sorted order.
func quantileOf(values []float64, q float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sort.Float64s(values)
	i := int(q*float64(len(values)) + 0.5)
	if i < 1 {
		i = 1
	}
	if i > len(values) {
		i = len(values)
	}
	return values[i-1]
}

func (s *Summary) kind() string { return "summary" }
func (s *Summary) help() string { return s.helpText }
func (s *Summary) reset() {
	s.mu.Lock()
	s.next = 0
	s.filled = false
	s.count = 0
	s.sum = 0
	s.mu.Unlock()
}

func (s *Summary) snap() MetricSnap {
	s.mu.Lock()
	live := s.liveLocked()
	out := MetricSnap{Kind: "summary", Count: s.count, Sum: s.sum}
	s.mu.Unlock()
	for _, q := range s.quantiles {
		out.Quantiles = append(out.Quantiles, QuantileSnap{Q: q, Value: quantileOf(live, q)})
	}
	return out
}

// QuantileSnap is one summary quantile.
type QuantileSnap struct {
	Q     float64 `json:"q"`
	Value float64 `json:"value"`
}

// MarshalJSON renders NaN (empty window) as null so the snapshot survives
// encoding/json, which rejects non-finite float64s.
func (q QuantileSnap) MarshalJSON() ([]byte, error) {
	if math.IsNaN(q.Value) || math.IsInf(q.Value, 0) {
		return []byte(fmt.Sprintf(`{"q":%s,"value":null}`, formatFloat(q.Q))), nil
	}
	return []byte(fmt.Sprintf(`{"q":%s,"value":%s}`, formatFloat(q.Q), formatFloat(q.Value))), nil
}

// GaugeFunc is a derived gauge: its value is computed by a callback at
// snapshot time. It exposes SLO arithmetic (error-budget remaining,
// cache hit rates) that is a pure function of other metrics without
// keeping a second copy of the state in sync.
type GaugeFunc struct {
	helpText string
	fn       func() float64
}

// GaugeFunc registers the named derived gauge. When the name is already
// registered the existing metric wins and fn is ignored (registration is
// idempotent, like every other instrument).
func (r *Registry) GaugeFunc(name, helpText string, fn func() float64) *GaugeFunc {
	return r.lookup(name, &GaugeFunc{helpText: helpText, fn: fn}).(*GaugeFunc)
}

// Value computes the current gauge value.
func (g *GaugeFunc) Value() float64 { return g.fn() }

func (g *GaugeFunc) kind() string { return "gauge" }
func (g *GaugeFunc) help() string { return g.helpText }
func (g *GaugeFunc) reset()       {} // derived: nothing to reset
func (g *GaugeFunc) snap() MetricSnap {
	return MetricSnap{Kind: "gauge", Value: g.fn()}
}

// BucketSnap is one cumulative histogram bucket.
type BucketSnap struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// MarshalJSON renders the bound as a string so the terminal +Inf bucket
// survives encoding/json (which rejects infinite float64s), mirroring the
// Prometheus convention of a string-valued "le" label.
func (b BucketSnap) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.LE, 1) {
		le = strconv.FormatFloat(b.LE, 'g', -1, 64)
	}
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, le, b.Count)), nil
}

// MetricSnap is the point-in-time value of one metric.
type MetricSnap struct {
	Kind      string         `json:"kind"`
	Value     float64        `json:"value,omitempty"`
	Count     int64          `json:"count,omitempty"`
	Sum       float64        `json:"sum,omitempty"`
	Buckets   []BucketSnap   `json:"buckets,omitempty"`
	Quantiles []QuantileSnap `json:"quantiles,omitempty"`
}

// Snapshot captures every metric by name. The map is a deep copy; mutating
// it does not affect the registry.
func (r *Registry) Snapshot() map[string]MetricSnap {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]MetricSnap, len(r.metrics))
	for name, m := range r.metrics {
		out[name] = m.snap()
	}
	return out
}

// names returns the registered metric names sorted.
func (r *Registry) names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (HELP/TYPE comments, cumulative `le` buckets, `_sum`/`_count`
// series), sorted by metric name for deterministic output. Labeled series
// created by CounterVec share one HELP/TYPE header per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	headerDone := make(map[string]bool)
	for _, name := range r.names() {
		r.mu.Lock()
		m := r.metrics[name]
		r.mu.Unlock()
		if m == nil {
			continue
		}
		if base := baseName(name); !headerDone[base] {
			headerDone[base] = true
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", base, m.help(), base, m.kind()); err != nil {
				return err
			}
		}
		s := m.snap()
		switch s.Kind {
		case "counter", "gauge":
			if _, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(s.Value)); err != nil {
				return err
			}
		case "histogram":
			for _, b := range s.Buckets {
				le := "+Inf"
				if !math.IsInf(b.LE, 1) {
					le = formatFloat(b.LE)
				}
				series := seriesWithLabel(seriesWithSuffix(name, "_bucket"), fmt.Sprintf("le=%q", le))
				if _, err := fmt.Fprintf(w, "%s %d\n", series, b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s %s\n%s %d\n",
				seriesWithSuffix(name, "_sum"), formatFloat(s.Sum),
				seriesWithSuffix(name, "_count"), s.Count); err != nil {
				return err
			}
		case "summary":
			for _, q := range s.Quantiles {
				v := "NaN"
				if !math.IsNaN(q.Value) {
					v = formatFloat(q.Value)
				}
				series := seriesWithLabel(name, fmt.Sprintf("quantile=%q", formatFloat(q.Q)))
				if _, err := fmt.Fprintf(w, "%s %s\n", series, v); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s %s\n%s %d\n",
				seriesWithSuffix(name, "_sum"), formatFloat(s.Sum),
				seriesWithSuffix(name, "_count"), s.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatFloat renders a float the way Prometheus clients do: integers
// without a decimal point, everything else in shortest form.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PublishExpvar exposes the registry as one expvar variable rendering the
// Snapshot as JSON. Publishing the same name twice is a no-op (expvar
// itself panics on duplicates).
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Standard bucket sets for the repository's instruments.
var (
	// TimeBuckets covers AC solve and chunk latencies: 1 µs to 10 s.
	TimeBuckets = []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
	// CountBuckets covers term/cell counts: 1 to 1e6, log-ish.
	CountBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 1e4, 1e5, 1e6}
	// RatioBuckets covers utilization ratios in [0, 1].
	RatioBuckets = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1}
	// ByteBuckets covers payload and store sizes: 256 B to 1 GiB.
	ByteBuckets = []float64{
		256, 1024, 4096, 16384, 65536, 262144,
		1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
	}
)
