package obs

import (
	"context"
	"strings"
	"testing"
)

func TestParseTraceparentRoundTrip(t *testing.T) {
	const header = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tc, err := ParseTraceparent(header)
	if err != nil {
		t.Fatal(err)
	}
	if tc.IsZero() {
		t.Fatal("parsed trace context is zero")
	}
	if got := tc.TraceIDString(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %s", got)
	}
	if got := tc.SpanIDString(); got != "00f067aa0ba902b7" {
		t.Errorf("span id = %s", got)
	}
	if tc.Flags != 0x01 {
		t.Errorf("flags = %02x, want 01", tc.Flags)
	}
	if got := tc.String(); got != header {
		t.Errorf("String() = %s, want %s", got, header)
	}
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	// Per the W3C spec, higher versions parse if the 00 prefix matches,
	// with unknown trailing fields ignored.
	tc, err := ParseTraceparent("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra")
	if err != nil {
		t.Fatal(err)
	}
	if tc.TraceIDString() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %s", tc.TraceIDString())
	}
}

func TestParseTraceparentInvalid(t *testing.T) {
	cases := []struct {
		name, header string
	}{
		{"empty", ""},
		{"blank", "   "},
		{"too few fields", "00-4bf92f3577b34da6a3ce929d0e0e4736"},
		{"version ff", "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"version 00 extra field", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-junk"},
		{"short trace id", "00-4bf92f3577b34da6-00f067aa0ba902b7-01"},
		{"uppercase hex", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01"},
		{"non-hex trace id", "00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01"},
		{"zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01"},
		{"zero span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01"},
		{"short flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-1"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if tc, err := ParseTraceparent(tt.header); err == nil {
				t.Errorf("ParseTraceparent(%q) = %v, want error", tt.header, tc)
			}
		})
	}
}

func TestNewTraceContext(t *testing.T) {
	a, b := NewTraceContext(), NewTraceContext()
	if a.IsZero() || b.IsZero() {
		t.Fatal("generated trace context is zero")
	}
	if a.TraceID == b.TraceID {
		t.Fatal("two generated trace IDs collide")
	}
	if a.Flags&0x01 == 0 {
		t.Error("generated context is not sampled")
	}
	child := a.WithNewSpanID()
	if child.TraceID != a.TraceID {
		t.Error("WithNewSpanID changed the trace ID")
	}
	if child.SpanID == a.SpanID {
		t.Error("WithNewSpanID kept the span ID")
	}
	// String must always re-parse.
	if _, err := ParseTraceparent(a.String()); err != nil {
		t.Errorf("generated header does not re-parse: %v", err)
	}
}

func TestTraceContextInContext(t *testing.T) {
	if got := TraceFrom(nil); !got.IsZero() {
		t.Errorf("TraceFrom(nil) = %v", got)
	}
	if got := TraceFrom(context.Background()); !got.IsZero() {
		t.Errorf("TraceFrom(empty) = %v", got)
	}
	tc := NewTraceContext()
	ctx := ContextWithTrace(context.Background(), tc)
	if got := TraceFrom(ctx); got != tc {
		t.Errorf("TraceFrom = %v, want %v", got, tc)
	}
}

func TestContextWithTracerOverridesDefault(t *testing.T) {
	private := NewTracer()
	private.SetEnabled(true)
	ctx := ContextWithTracer(context.Background(), private)

	// obs.Start under the override records on the private tracer even
	// though the default runtime's tracer is disabled.
	sctx, span := Start(ctx, "job.run")
	_, child := Start(sctx, "detect.matrix")
	child.End()
	span.End()

	tr := private.Export()
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "job.run" {
		t.Fatalf("private trace roots = %+v", tr.Spans)
	}
	if len(tr.Spans[0].Children) != 1 || tr.Spans[0].Children[0].Name != "detect.matrix" {
		t.Fatalf("private trace children = %+v", tr.Spans[0].Children)
	}
	if got := Default().Tracer.Export(); len(got.Spans) != 0 {
		names := make([]string, len(got.Spans))
		for i, s := range got.Spans {
			names[i] = s.Name
		}
		t.Fatalf("default tracer recorded: %s", strings.Join(names, ", "))
	}
}

func TestContextWithSpanAdoptsWork(t *testing.T) {
	tr := NewTracer()
	tr.SetEnabled(true)
	_, root := tr.Start(context.Background(), "job")
	// A fresh context (another goroutine's) parented under root.
	ctx := ContextWithTracer(context.Background(), tr)
	ctx = ContextWithSpan(ctx, root)
	_, child := Start(ctx, "run")
	child.End()
	root.End()

	got := tr.Export()
	if len(got.Spans) != 1 || len(got.Spans[0].Children) != 1 || got.Spans[0].Children[0].Name != "run" {
		t.Fatalf("trace = %+v", got.Spans)
	}
	if ContextWithSpan(nil, nil) != nil {
		t.Error("ContextWithSpan(nil, nil) != nil")
	}
}
