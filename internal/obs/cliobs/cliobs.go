// Package cliobs wires the obs telemetry layer into command-line tools:
// one shared observability flag set (-log-level, -log-json, -metrics-out,
// -trace-out, -pprof, -run-report), one shared fault-simulation flag set
// (-workers, -stats, -progress, -onerror) that used to be copy-pasted
// across the commands, and a Session that turns the parsed flags into a
// configured runtime and writes every requested output on Finish.
package cliobs

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"

	"analogdft/internal/detect"
	"analogdft/internal/mna"
	"analogdft/internal/obs"
)

// ObsFlags is the shared observability flag set.
type ObsFlags struct {
	// LogLevel is the minimum structured-log level (debug, info, warn,
	// error).
	LogLevel string
	// LogJSON switches structured logs from text to JSON.
	LogJSON bool
	// MetricsOut, when set, receives the final metric registry in
	// Prometheus text exposition format.
	MetricsOut string
	// TraceOut, when set, receives the span trace as JSON (tree + flat
	// flame-friendly list).
	TraceOut string
	// PprofAddr, when set, serves net/http/pprof on that address for the
	// lifetime of the run.
	PprofAddr string
	// RunReportOut, when set, receives a machine-readable JSON run
	// summary (inputs, stats, metric snapshot, wall/CPU time).
	RunReportOut string
	// Timing forces latency collection (histograms, schedule-level spans)
	// on, even when no output file implies it. Useful with -pprof or when
	// scraping expvar from a live run.
	Timing bool
}

// RegisterObs installs the shared observability flags on fs (use
// flag.CommandLine in main).
func RegisterObs(fs *flag.FlagSet) *ObsFlags {
	f := &ObsFlags{}
	f.Register(fs)
	return f
}

// Register installs the observability flags on fs, bound to f.
func (f *ObsFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.LogLevel, "log-level", "warn", `structured log level: "debug", "info", "warn" or "error"`)
	fs.BoolVar(&f.LogJSON, "log-json", false, "emit structured logs as JSON instead of text")
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write final metrics in Prometheus text format to this file")
	fs.StringVar(&f.TraceOut, "trace-out", "", "write the span trace as JSON to this file")
	fs.StringVar(&f.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.StringVar(&f.RunReportOut, "run-report", "", "write a JSON run summary to this file")
	fs.BoolVar(&f.Timing, "timing", false, "collect latency metrics and schedule-dependent spans even without an output file")
}

// SimFlags is the shared fault-simulation flag set, deduplicated from the
// per-command copies.
type SimFlags struct {
	// Workers bounds the fault-simulation parallelism (0 = GOMAXPROCS).
	Workers int
	// Stats prints the simulation effort summary.
	Stats bool
	// Progress reports live progress on stderr.
	Progress bool
	// OnError names the cell error policy (degrade, failfast, retry).
	OnError string
	// Engine names the cell simulation strategy (incremental, lowrank,
	// naive).
	Engine string
	// Layout names the MNA matrix layout (auto, dense, sparse).
	Layout string
}

// RegisterSim installs the shared simulation flags on fs.
func RegisterSim(fs *flag.FlagSet) *SimFlags {
	s := &SimFlags{}
	s.Register(fs)
	return s
}

// Register installs the simulation flags on fs, bound to s.
func (s *SimFlags) Register(fs *flag.FlagSet) {
	fs.IntVar(&s.Workers, "workers", 0, "fault-simulation parallelism (0 = GOMAXPROCS)")
	fs.BoolVar(&s.Stats, "stats", false, "print the simulation effort summary")
	fs.BoolVar(&s.Progress, "progress", false, "report live progress on stderr")
	fs.StringVar(&s.OnError, "onerror", "degrade", `cell error policy: "degrade", "failfast" or "retry"`)
	fs.StringVar(&s.Engine, "engine", "incremental", `cell simulation strategy: "incremental" (patch a reusable system in place), "lowrank" (Sherman–Morrison rank-1 solves against cached nominal factorizations) or "naive" (clone + rebuild per cell)`)
	fs.StringVar(&s.Layout, "layout", "auto", `MNA matrix layout: "auto" (fill heuristic per system), "dense" or "sparse" — results are identical, only the cost changes`)
}

// Policy maps the -onerror value onto the engine error policy.
func (s *SimFlags) Policy() (detect.ErrorPolicy, error) { return ParsePolicy(s.OnError) }

// EngineMode maps the -engine value onto the cell simulation strategy.
func (s *SimFlags) EngineMode() (detect.EngineMode, error) { return detect.ParseEngineMode(s.Engine) }

// LayoutMode maps the -layout value onto the MNA matrix layout.
func (s *SimFlags) LayoutMode() (mna.Layout, error) { return mna.ParseLayout(s.Layout) }

// ParsePolicy maps an -onerror flag value onto the engine error policy.
func ParsePolicy(name string) (detect.ErrorPolicy, error) {
	switch name {
	case "", "degrade":
		return detect.Degrade, nil
	case "failfast":
		return detect.FailFast, nil
	case "retry":
		return detect.Retry, nil
	default:
		return detect.Degrade, fmt.Errorf("unknown error policy %q", name)
	}
}

// Apply copies the parsed simulation flags onto engine options: worker
// count, error policy, engine mode, matrix layout and (when -progress is
// set) a live progress reporter writing to w.
func (s *SimFlags) Apply(o *detect.Options, w io.Writer) error {
	policy, err := s.Policy()
	if err != nil {
		return err
	}
	mode, err := s.EngineMode()
	if err != nil {
		return err
	}
	layout, err := s.LayoutMode()
	if err != nil {
		return err
	}
	o.Workers = s.Workers
	o.OnError = policy
	o.Engine = mode
	o.Layout = layout
	if s.Progress {
		o.Progress = ProgressReporter(w)
	}
	return nil
}

// ProgressReporter returns a Progress hook that rewrites a one-line cell
// counter on w, finishing with the effort summary.
func ProgressReporter(w io.Writer) func(detect.Stats) {
	return func(st detect.Stats) {
		if st.Elapsed > 0 {
			fmt.Fprintf(w, "\rsimulated %d/%d cells: %s\n", st.CellsDone, st.Cells, st)
			return
		}
		fmt.Fprintf(w, "\rsimulated %d/%d cells", st.CellsDone, st.Cells)
	}
}

// Session is one observed CLI run: the configured runtime, the root span
// and the pending output files. Create with ObsFlags.Start, close with
// Finish.
type Session struct {
	Cmd    string
	Report *obs.RunReport

	flags    *ObsFlags
	rt       *obs.Runtime
	root     *obs.Span
	pprofSrv *http.Server
}

// Start applies the parsed flags to the runtime (nil means the process
// default): logging sink and level, tracing and timing enablement, the
// expvar publication and the pprof server. It opens the root span
// "<cmd>.run" and starts the run-report clock.
func (f *ObsFlags) Start(cmd string, rt *obs.Runtime) (*Session, error) {
	if rt == nil {
		rt = obs.Default()
	}
	level, err := obs.ParseLevel(f.LogLevel)
	if err != nil {
		return nil, err
	}
	obs.SetLogging(os.Stderr, f.LogJSON, level)

	s := &Session{Cmd: cmd, flags: f, rt: rt, Report: obs.NewRunReport(cmd, os.Args[1:])}
	if f.MetricsOut != "" || f.TraceOut != "" || f.RunReportOut != "" || f.PprofAddr != "" {
		rt.SetTiming(true)
		rt.EnableTracing(true)
		rt.Metrics.PublishExpvar("analogdft")
	}
	if f.Timing {
		rt.SetTiming(true)
	}
	_, s.root = rt.Tracer.Start(nil, cmd+".run")

	if f.PprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ln, err := net.Listen("tcp", f.PprofAddr)
		if err != nil {
			return nil, fmt.Errorf("pprof listener: %w", err)
		}
		s.pprofSrv = &http.Server{Handler: mux}
		go s.pprofSrv.Serve(ln) //nolint:errcheck // closed on Finish
		fmt.Fprintf(os.Stderr, "%s: pprof serving on http://%s/debug/pprof/\n", cmd, ln.Addr())
	}
	return s, nil
}

// Finish ends the root span, stamps the run report and writes every
// requested output file. It returns the first error encountered but
// attempts all outputs.
func (s *Session) Finish() error {
	s.root.End()
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.flags.RunReportOut != "" {
		s.Report.Finalize(s.rt.Metrics)
		keep(writeFile(s.flags.RunReportOut, s.Report.WriteJSON))
	}
	if s.flags.TraceOut != "" {
		keep(writeFile(s.flags.TraceOut, s.rt.Tracer.WriteJSON))
	}
	if s.flags.MetricsOut != "" {
		keep(writeFile(s.flags.MetricsOut, s.rt.Metrics.WritePrometheus))
	}
	if s.pprofSrv != nil {
		keep(s.pprofSrv.Close())
	}
	return firstErr
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
