package cliobs

import (
	"strings"
	"testing"

	"analogdft/internal/circuits"
	"analogdft/internal/spice"
)

// brokenBench builds a bench whose deck has a floating node.
func brokenBench(t *testing.T) *circuits.Bench {
	t.Helper()
	deck, err := spice.ParseString("R1 in a 1k\nR2 a 0 1k\nR3 a x 1k\n.input in\n.output a\n")
	if err != nil {
		t.Fatal(err)
	}
	return &circuits.Bench{Circuit: deck.Circuit, Deck: deck}
}

func TestPreflightCleanBenchIsSilent(t *testing.T) {
	var out strings.Builder
	if err := (&LintFlags{Strict: true}).Preflight("x", circuits.PaperBiquad(), &out); err != nil {
		t.Fatalf("clean bench: %v", err)
	}
	if out.Len() != 0 {
		t.Errorf("clean bench wrote %q", out.String())
	}
}

func TestPreflightSkip(t *testing.T) {
	var out strings.Builder
	if err := (&LintFlags{Strict: true, Skip: true}).Preflight("x", brokenBench(t), &out); err != nil {
		t.Fatalf("-no-lint still failed: %v", err)
	}
	if out.Len() != 0 {
		t.Errorf("-no-lint wrote %q", out.String())
	}
}

func TestPreflightWarnsButContinues(t *testing.T) {
	var out strings.Builder
	if err := (&LintFlags{}).Preflight("x", brokenBench(t), &out); err != nil {
		t.Fatalf("non-strict preflight failed: %v", err)
	}
	txt := out.String()
	if !strings.Contains(txt, "NL002") || !strings.Contains(txt, "continuing anyway") {
		t.Errorf("output = %q", txt)
	}
}

func TestPreflightStrictFails(t *testing.T) {
	var out strings.Builder
	err := (&LintFlags{Strict: true}).Preflight("x", brokenBench(t), &out)
	if err == nil || !strings.Contains(err.Error(), "netlist preflight") {
		t.Fatalf("err = %v", err)
	}
}
