package cliobs

import (
	"flag"
	"fmt"
	"io"

	"analogdft/internal/circuits"
	"analogdft/internal/netlint"
)

// LintFlags is the shared netlist-preflight flag set. Every deck-loading
// command runs the netlint checks right after parsing: structural
// problems that would otherwise surface as opaque singular-matrix errors
// deep inside the sweeper are reported up front with their deck line and
// a fix hint. By default findings only warn on stderr; -strict-lint turns
// error-severity findings into a failed run, -no-lint skips the preflight
// entirely.
type LintFlags struct {
	// Strict fails the run when the preflight finds error-severity
	// diagnostics.
	Strict bool
	// Skip disables the preflight.
	Skip bool
}

// RegisterLint installs the shared lint flags on fs.
func RegisterLint(fs *flag.FlagSet) *LintFlags {
	l := &LintFlags{}
	l.Register(fs)
	return l
}

// Register installs the lint flags on fs, bound to l.
func (l *LintFlags) Register(fs *flag.FlagSet) {
	fs.BoolVar(&l.Strict, "strict-lint", false, "fail the run when the netlist preflight finds errors")
	fs.BoolVar(&l.Skip, "no-lint", false, "skip the netlist preflight checks")
}

// Preflight lints the loaded bench and writes any findings to w, one
// line per diagnostic with its fix hint. It returns an error only in
// strict mode and only for error-severity findings; plain warnings never
// stop a run.
func (l *LintFlags) Preflight(cmd string, bench *circuits.Bench, w io.Writer) error {
	if l.Skip {
		return nil
	}
	rep := netlint.Analyze(netlint.Source{
		Circuit: bench.Circuit,
		Chain:   bench.Chain,
		Deck:    bench.Deck,
	})
	if rep.Clean() {
		return nil
	}
	fmt.Fprintf(w, "%s: netlist preflight found %d problem(s):\n", cmd, len(rep.Diagnostics))
	if err := rep.WriteText(w); err != nil {
		return err
	}
	if n := rep.Errors(); l.Strict && n > 0 {
		return fmt.Errorf("netlist preflight: %d error(s); fix the deck or pass -no-lint to override", n)
	}
	fmt.Fprintf(w, "%s: continuing anyway (pass -strict-lint to make this fatal)\n", cmd)
	return nil
}
