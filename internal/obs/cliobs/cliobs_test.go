package cliobs

import (
	"encoding/json"
	"flag"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"analogdft/internal/detect"
	"analogdft/internal/obs"
)

// TestRegisterFlagTable is the one table-driven test replacing the flag
// parsing previously copy-pasted across cmd/faultsim, cmd/dftopt and
// cmd/acsim: every shared flag, its default, and a parsed value.
func TestRegisterFlagTable(t *testing.T) {
	cases := []struct {
		name  string
		args  []string
		check func(t *testing.T, s *SimFlags, f *ObsFlags)
	}{
		{
			name: "defaults",
			args: nil,
			check: func(t *testing.T, s *SimFlags, f *ObsFlags) {
				if s.Workers != 0 || s.Stats || s.Progress || s.OnError != "degrade" {
					t.Fatalf("sim defaults = %+v", s)
				}
				if f.LogLevel != "warn" || f.LogJSON || f.MetricsOut != "" ||
					f.TraceOut != "" || f.PprofAddr != "" || f.RunReportOut != "" {
					t.Fatalf("obs defaults = %+v", f)
				}
			},
		},
		{
			name: "sim flags",
			args: []string{"-workers", "4", "-stats", "-progress", "-onerror", "retry"},
			check: func(t *testing.T, s *SimFlags, f *ObsFlags) {
				if s.Workers != 4 || !s.Stats || !s.Progress || s.OnError != "retry" {
					t.Fatalf("sim = %+v", s)
				}
			},
		},
		{
			name: "obs flags",
			args: []string{"-log-level", "debug", "-log-json", "-metrics-out", "m.prom",
				"-trace-out", "t.json", "-pprof", "localhost:0", "-run-report", "r.json"},
			check: func(t *testing.T, s *SimFlags, f *ObsFlags) {
				if f.LogLevel != "debug" || !f.LogJSON || f.MetricsOut != "m.prom" ||
					f.TraceOut != "t.json" || f.PprofAddr != "localhost:0" || f.RunReportOut != "r.json" {
					t.Fatalf("obs = %+v", f)
				}
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fs := flag.NewFlagSet("test", flag.ContinueOnError)
			fs.SetOutput(io.Discard)
			sim := RegisterSim(fs)
			obsf := RegisterObs(fs)
			if err := fs.Parse(c.args); err != nil {
				t.Fatal(err)
			}
			c.check(t, sim, obsf)
		})
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want detect.ErrorPolicy
		ok   bool
	}{
		{"", detect.Degrade, true},
		{"degrade", detect.Degrade, true},
		{"failfast", detect.FailFast, true},
		{"retry", detect.Retry, true},
		{"abort", detect.Degrade, false},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", c.in, got, err)
		}
	}
}

func TestSimFlagsApply(t *testing.T) {
	s := &SimFlags{Workers: 3, Progress: true, OnError: "failfast"}
	var o detect.Options
	if err := s.Apply(&o, io.Discard); err != nil {
		t.Fatal(err)
	}
	if o.Workers != 3 || o.OnError != detect.FailFast || o.Progress == nil {
		t.Fatalf("options = %+v", o)
	}
	bad := &SimFlags{OnError: "bogus"}
	if err := bad.Apply(&o, io.Discard); err == nil || !strings.Contains(err.Error(), "unknown error policy") {
		t.Fatalf("err = %v", err)
	}
}

func TestProgressReporter(t *testing.T) {
	var sb strings.Builder
	hook := ProgressReporter(&sb)
	hook(detect.Stats{Cells: 4, CellsDone: 2})
	hook(detect.Stats{Cells: 4, CellsDone: 4, Elapsed: 1})
	out := sb.String()
	if !strings.Contains(out, "simulated 2/4 cells") {
		t.Fatalf("missing live line:\n%q", out)
	}
	if !strings.Contains(out, "simulated 4/4 cells: ") || !strings.HasSuffix(out, "\n") {
		t.Fatalf("missing final summary:\n%q", out)
	}
}

func TestSessionWritesAllOutputs(t *testing.T) {
	dir := t.TempDir()
	f := &ObsFlags{
		LogLevel:     "warn",
		MetricsOut:   filepath.Join(dir, "metrics.prom"),
		TraceOut:     filepath.Join(dir, "trace.json"),
		RunReportOut: filepath.Join(dir, "report.json"),
	}
	rt := obs.NewRuntime()
	sess, err := f.Start("testcmd", rt)
	if err != nil {
		t.Fatal(err)
	}
	defer obs.SetLogging(os.Stderr, false, slog.LevelWarn)
	if !rt.TimingOn() || !rt.Tracer.Enabled() {
		t.Fatal("outputs requested but runtime not enabled")
	}
	sess.Report.SetInput("deck", "builtin")
	rt.Metrics.Counter("work_total", "test work").Add(7)
	_, span := rt.Tracer.Start(nil, "work")
	span.End()
	if err := sess.Finish(); err != nil {
		t.Fatal(err)
	}

	// Run report: valid JSON with the input and the metric snapshot.
	var report map[string]any
	data, err := os.ReadFile(f.RunReportOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("run report invalid: %v", err)
	}
	if report["command"] != "testcmd" {
		t.Fatalf("command = %v", report["command"])
	}
	if inputs := report["inputs"].(map[string]any); inputs["deck"] != "builtin" {
		t.Fatalf("inputs = %v", inputs)
	}
	if metrics := report["metrics"].(map[string]any); metrics["work_total"] == nil {
		t.Fatalf("metrics snapshot missing work_total: %v", metrics)
	}

	// Trace: root span "testcmd.run" wrapping the "work" span.
	var trace struct {
		Spans []struct {
			Name     string  `json:"name"`
			DurMs    float64 `json:"dur_ms"`
			Children []struct {
				Name string `json:"name"`
			} `json:"children"`
		} `json:"spans"`
	}
	data, err = os.ReadFile(f.TraceOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if len(trace.Spans) != 1 || trace.Spans[0].Name != "testcmd.run" {
		t.Fatalf("trace roots = %+v", trace.Spans)
	}
	if len(trace.Spans[0].Children) != 1 || trace.Spans[0].Children[0].Name != "work" {
		t.Fatalf("root children = %+v", trace.Spans[0].Children)
	}

	// Metrics: Prometheus text lines.
	data, err = os.ReadFile(f.MetricsOut)
	if err != nil {
		t.Fatal(err)
	}
	prom := string(data)
	for _, want := range []string{"# HELP work_total test work", "# TYPE work_total counter", "work_total 7"} {
		if !strings.Contains(prom, want) {
			t.Fatalf("metrics missing %q:\n%s", want, prom)
		}
	}
}

func TestSessionNoOutputsIsQuiet(t *testing.T) {
	rt := obs.NewRuntime()
	sess, err := (&ObsFlags{LogLevel: "warn"}).Start("quiet", rt)
	if err != nil {
		t.Fatal(err)
	}
	defer obs.SetLogging(os.Stderr, false, slog.LevelWarn)
	if rt.TimingOn() || rt.Tracer.Enabled() {
		t.Fatal("no outputs requested but runtime enabled")
	}
	if err := sess.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionRejectsBadLevel(t *testing.T) {
	if _, err := (&ObsFlags{LogLevel: "loud"}).Start("x", obs.NewRuntime()); err == nil {
		t.Fatal("bad log level accepted")
	}
}
