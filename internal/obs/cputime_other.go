//go:build !unix

package obs

// ProcessCPUSeconds is unavailable on this platform; reports zero.
func ProcessCPUSeconds() float64 { return 0 }
