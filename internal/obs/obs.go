// Package obs is the dependency-free telemetry layer of the repository:
// span-style tracing, a metrics registry (counters, gauges, fixed-bucket
// histograms) with expvar and Prometheus text exposition, and slog-based
// structured logging behind one shared leveled handler.
//
// The package is designed around a single process-wide Runtime (Default)
// that the library root re-exports, so CLIs, tests and library users all
// observe the same spans and metrics. Instrumented hot paths (mna solves,
// detect cells, boolexpr expansion) keep their overhead negligible when
// telemetry is off: counters are single atomic adds, and anything that
// needs a clock is gated on TimingOn(), one atomic load.
//
// The zero state is "off": tracing disabled, timing disabled, logging at
// warn on stderr. cliobs flips the switches from CLI flags.
package obs

import (
	"context"
	"sync/atomic"
)

// Runtime bundles the three telemetry facilities behind one handle. The
// zero Runtime is not usable; construct with NewRuntime or use Default.
type Runtime struct {
	// Tracer records span trees; disabled until EnableTracing.
	Tracer *Tracer
	// Metrics is the metric registry; counters are always live.
	Metrics *Registry

	timing atomic.Bool
}

// NewRuntime returns a fresh, disabled runtime with an empty registry.
func NewRuntime() *Runtime {
	return &Runtime{Tracer: NewTracer(), Metrics: NewRegistry()}
}

// SetTiming toggles latency collection (histogram observations and worker
// utilization measurements) in instrumented code.
func (r *Runtime) SetTiming(on bool) { r.timing.Store(on) }

// TimingOn reports whether latency collection is enabled.
func (r *Runtime) TimingOn() bool { return r.timing.Load() }

// EnableTracing switches span recording on (or off) for r.Tracer.
func (r *Runtime) EnableTracing(on bool) { r.Tracer.SetEnabled(on) }

// defaultRuntime is the process-wide runtime.
var defaultRuntime = NewRuntime()

// Default returns the process-wide telemetry runtime.
func Default() *Runtime { return defaultRuntime }

// Reg returns the default runtime's metric registry. Instrumented packages
// register their metrics against it at init time.
func Reg() *Registry { return defaultRuntime.Metrics }

// TimingOn reports whether the default runtime collects latencies.
func TimingOn() bool { return defaultRuntime.TimingOn() }

// Start opens a span on the tracer carried by ctx (see ContextWithTracer),
// falling back to the default runtime's tracer. The returned context
// carries the span so nested Start calls build a tree; the span is nil (and
// all its methods no-ops) while the selected tracer is disabled.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if t := TracerFrom(ctx); t != nil {
		return t.Start(ctx, name)
	}
	return defaultRuntime.Tracer.Start(ctx, name)
}
