package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"math"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerDisabledIsInert(t *testing.T) {
	tr := NewTracer()
	ctx, span := tr.Start(context.Background(), "root")
	if span != nil {
		t.Fatal("disabled tracer returned a live span")
	}
	span.End()            // must not panic
	span.SetTag("k", "v") // must not panic
	if span.Duration() != 0 {
		t.Fatal("nil span has a duration")
	}
	if got := tr.Export(); len(got.Spans) != 0 {
		t.Fatalf("disabled tracer recorded %d spans", len(got.Spans))
	}
	if _, inner := tr.Start(ctx, "child"); inner != nil {
		t.Fatal("child of nil span is live")
	}
}

func TestTracerBuildsTree(t *testing.T) {
	tr := NewTracer()
	tr.SetEnabled(true)
	ctx, root := tr.Start(context.Background(), "root")
	cctx, child := tr.Start(ctx, "child")
	_, grand := tr.Start(cctx, "grand")
	grand.End()
	child.End()
	root.SetTag("circuit", "biquad")
	root.End()

	got := tr.Export()
	if len(got.Spans) != 1 {
		t.Fatalf("roots = %d, want 1", len(got.Spans))
	}
	r := got.Spans[0]
	if r.Name != "root" || r.Tags["circuit"] != "biquad" {
		t.Fatalf("root = %+v", r)
	}
	if len(r.Children) != 1 || r.Children[0].Name != "child" {
		t.Fatalf("children = %+v", r.Children)
	}
	if len(r.Children[0].Children) != 1 || r.Children[0].Children[0].Name != "grand" {
		t.Fatalf("grandchildren = %+v", r.Children[0].Children)
	}
	wantFlat := []struct {
		name  string
		depth int
	}{{"root", 0}, {"child", 1}, {"grand", 2}}
	if len(got.Flat) != len(wantFlat) {
		t.Fatalf("flat = %+v", got.Flat)
	}
	for i, w := range wantFlat {
		if got.Flat[i].Name != w.name || got.Flat[i].Depth != w.depth {
			t.Fatalf("flat[%d] = %+v, want %+v", i, got.Flat[i], w)
		}
	}
}

func TestTracerAnchorAdoptsContextlessSpans(t *testing.T) {
	// Library code starts spans from context.Background(); while a CLI
	// root span is open those spans must nest under it, not fork new roots.
	tr := NewTracer()
	tr.SetEnabled(true)
	_, root := tr.Start(nil, "cmd.run")
	_, lib := tr.Start(context.Background(), "detect.matrix")
	lib.End()
	root.End()
	// After the anchor closes, a context-less span is a root again.
	_, late := tr.Start(context.Background(), "late")
	late.End()

	got := tr.Export()
	if len(got.Spans) != 2 {
		t.Fatalf("roots = %d, want 2", len(got.Spans))
	}
	if got.Spans[0].Name != "cmd.run" || len(got.Spans[0].Children) != 1 ||
		got.Spans[0].Children[0].Name != "detect.matrix" {
		t.Fatalf("anchor tree = %+v", got.Spans[0])
	}
	if got.Spans[1].Name != "late" {
		t.Fatalf("late root = %+v", got.Spans[1])
	}
}

func TestTracerExportOpenSpanAndReset(t *testing.T) {
	tr := NewTracer()
	tr.SetEnabled(true)
	_, root := tr.Start(context.Background(), "open")
	time.Sleep(time.Millisecond)
	got := tr.Export()
	if len(got.Spans) != 1 || got.Spans[0].DurMs <= 0 {
		t.Fatalf("open span export = %+v", got.Spans)
	}
	root.End()
	tr.Reset()
	if got := tr.Export(); len(got.Spans) != 0 {
		t.Fatal("Reset left spans behind")
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	tr.SetEnabled(true)
	ctx, root := tr.Start(context.Background(), "root")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, s := tr.Start(ctx, "worker")
			s.End()
		}()
	}
	wg.Wait()
	root.End()
	got := tr.Export()
	if len(got.Spans[0].Children) != 16 {
		t.Fatalf("children = %d, want 16", len(got.Spans[0].Children))
	}
}

func TestWriteJSONTrace(t *testing.T) {
	tr := NewTracer()
	tr.SetEnabled(true)
	_, s := tr.Start(context.Background(), "only")
	s.End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	if len(back.Spans) != 1 || back.Spans[0].Name != "only" || len(back.Flat) != 1 {
		t.Fatalf("round trip = %+v", back)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if again := reg.Counter("c_total", "ignored"); again != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := reg.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(0.5)
	g.SetMax(1) // below current: no-op
	if g.Value() != 3 {
		t.Fatalf("gauge = %v", g.Value())
	}
	g.SetMax(7)
	if g.Value() != 7 {
		t.Fatalf("gauge after SetMax = %v", g.Value())
	}

	h := reg.Histogram("h_seconds", "a histogram", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 106.5 {
		t.Fatalf("histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	s := h.snap()
	// Cumulative buckets: le=1 gets {0.5, 1}, le=10 adds {5}, +Inf adds {100}.
	want := []BucketSnap{{LE: 1, Count: 2}, {LE: 10, Count: 3}, {LE: math.Inf(1), Count: 4}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Fatalf("bucket[%d] = %+v, want %+v", i, s.Buckets[i], w)
		}
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	reg.Gauge("x", "")
}

func TestRegistryResetKeepsHandles(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	h := reg.Histogram("h", "", []float64{1})
	c.Inc()
	h.Observe(0.5)
	reg.Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset did not zero metrics")
	}
	c.Inc() // the old handle must still feed the registry
	if reg.Snapshot()["c_total"].Value != 1 {
		t.Fatal("handle detached after Reset")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total", "counts b").Add(3)
	reg.Gauge("a_gauge", "gauges a").Set(1.5)
	h := reg.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// expfmt-style line rules: every non-comment line is `name value` or
	// `name{labels} value`; HELP/TYPE precede each metric; names sorted.
	wantLines := []string{
		"# HELP a_gauge gauges a",
		"# TYPE a_gauge gauge",
		"a_gauge 1.5",
		"# HELP b_total counts b",
		"# TYPE b_total counter",
		"b_total 3",
		"# HELP lat_seconds latency",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 2`,
		"lat_seconds_sum 0.55",
		"lat_seconds_count 2",
	}
	gotLines := strings.Split(strings.TrimSpace(out), "\n")
	if len(gotLines) != len(wantLines) {
		t.Fatalf("lines = %d, want %d:\n%s", len(gotLines), len(wantLines), out)
	}
	for i, w := range wantLines {
		if gotLines[i] != w {
			t.Fatalf("line %d = %q, want %q", i, gotLines[i], w)
		}
	}
}

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in   string
		want slog.Level
		ok   bool
	}{
		{"", slog.LevelWarn, true},
		{"debug", slog.LevelDebug, true},
		{"INFO", slog.LevelInfo, true},
		{"warn", slog.LevelWarn, true},
		{"warning", slog.LevelWarn, true},
		{"error", slog.LevelError, true},
		{"verbose", slog.LevelWarn, false},
	}
	for _, c := range cases {
		got, err := ParseLevel(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Fatalf("ParseLevel(%q) = %v, %v", c.in, got, err)
		}
	}
}

func TestLoggerFollowsSetLogging(t *testing.T) {
	defer SetLogging(os.Stderr, false, slog.LevelWarn)
	log := Logger("mypkg") // created before the sink swap
	var buf bytes.Buffer
	SetLogging(&buf, true, slog.LevelInfo)
	log.Info("hello", "n", 3)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line not JSON: %v (%q)", err, buf.String())
	}
	if rec["pkg"] != "mypkg" || rec["msg"] != "hello" || rec["n"] != float64(3) {
		t.Fatalf("record = %v", rec)
	}
	// Below-level records are dropped.
	buf.Reset()
	log.Debug("quiet")
	if buf.Len() != 0 {
		t.Fatalf("debug leaked: %q", buf.String())
	}
}

func TestRunReportFinalize(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("n_total", "").Add(2)
	r := NewRunReport("mycmd", []string{"-x", "1"})
	r.SetInput("deck", "biquad.cir")
	r.SetStat("coverage", 1.0)
	time.Sleep(time.Millisecond)
	r.Finalize(reg)
	if r.WallSeconds <= 0 {
		t.Fatalf("wall = %v", r.WallSeconds)
	}
	if r.Metrics["n_total"].Value != 2 {
		t.Fatalf("metrics = %v", r.Metrics)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	for _, key := range []string{"command", "start", "wall_seconds", "go_version", "inputs", "stats", "metrics"} {
		if _, ok := back[key]; !ok {
			t.Fatalf("report missing %q:\n%s", key, buf.String())
		}
	}
	if back["command"] != "mycmd" {
		t.Fatalf("command = %v", back["command"])
	}
}

func TestDefaultRuntimeSwitches(t *testing.T) {
	rt := NewRuntime()
	if rt.TimingOn() {
		t.Fatal("fresh runtime has timing on")
	}
	rt.SetTiming(true)
	if !rt.TimingOn() {
		t.Fatal("SetTiming(true) not visible")
	}
	rt.EnableTracing(true)
	if !rt.Tracer.Enabled() {
		t.Fatal("EnableTracing(true) not visible")
	}
	rt.SetTiming(false)
	rt.EnableTracing(false)
}

// TestSnapshotJSONHandlesInfBucket is a regression test: the terminal
// +Inf histogram bucket must survive encoding/json (run reports and the
// expvar export both marshal snapshots), rendered as a string bound.
func TestSnapshotJSONHandlesInfBucket(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "latency", []float64{0.5, 2})
	h.Observe(1)
	h.Observe(99)
	data, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatalf("snapshot with histogram not marshalable: %v", err)
	}
	s := string(data)
	if !strings.Contains(s, `{"le":"+Inf","count":2}`) || !strings.Contains(s, `{"le":"0.5","count":0}`) {
		t.Fatalf("bucket encoding wrong:\n%s", s)
	}
}
