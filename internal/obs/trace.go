package obs

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records trees of timed spans. It is safe for concurrent use: spans
// may be started and ended from any goroutine. While disabled (the default)
// Start returns a nil span and records nothing.
type Tracer struct {
	enabled atomic.Bool

	mu     sync.Mutex
	epoch  time.Time // time zero of the trace (first span start)
	roots  []*Span
	anchor *Span // first root; adopts context-less spans while open
}

// NewTracer returns a disabled tracer.
func NewTracer() *Tracer { return &Tracer{} }

// SetEnabled switches span recording on or off. Disabling does not discard
// spans already recorded.
func (t *Tracer) SetEnabled(on bool) { t.enabled.Store(on) }

// Enabled reports whether the tracer records spans.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Reset discards every recorded span.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.roots = nil
	t.anchor = nil
	t.epoch = time.Time{}
}

// Span is one timed operation. A nil *Span is valid and inert, so callers
// never need to guard instrumentation on the tracer being enabled.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time // zero while open
	tags     map[string]string
	children []*Span
}

// spanKey carries the current span through a context.
type spanKey struct{}

// tracerKey carries a tracer override through a context.
type tracerKey struct{}

// ContextWithTracer routes every obs.Start call made under ctx to t
// instead of the process-default tracer. This is how per-request tracers
// work: the job layer gives each job its own enabled Tracer, attaches it
// to the job's context, and all the spans the library opens during the
// run (detect.matrix, detect.cells, …) land in the job's private trace
// without any instrumentation changes.
func ContextWithTracer(ctx context.Context, t *Tracer) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the tracer override carried by ctx, or nil. Safe on
// a nil context.
func TracerFrom(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// ContextWithSpan makes s the parent of the next span started under ctx.
// It lets a span created in one goroutine (a job's root span, opened at
// submit time) adopt work performed later in another (the worker's run).
// A nil span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// Start opens a span named name. If ctx already carries a span, the new
// span becomes its child. A span with no context parent is adopted by the
// trace's first root while that root is still open (so library code that
// starts from context.Background() still nests under a CLI's run span);
// otherwise it becomes a root itself. The returned context carries the new
// span. While the tracer is disabled the input context (nil is accepted)
// and a nil span are returned.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if !t.enabled.Load() {
		return ctx, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s := &Span{name: name, start: time.Now()}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		t.mu.Lock()
		if t.anchor != nil && t.anchor != s && t.anchor.open() {
			parent = t.anchor
		} else {
			if t.epoch.IsZero() {
				t.epoch = s.start
			}
			t.roots = append(t.roots, s)
			if t.anchor == nil {
				t.anchor = s
			}
		}
		t.mu.Unlock()
	}
	if parent != nil {
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// open reports whether the span has not ended yet.
func (s *Span) open() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end.IsZero()
}

// End closes the span. Safe on a nil span; the first call wins.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// SetTag attaches a key=value annotation to the span. Safe on nil.
func (s *Span) SetTag(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.tags == nil {
		s.tags = make(map[string]string)
	}
	s.tags[key] = value
	s.mu.Unlock()
}

// Duration returns the span's duration (to now while still open). Zero on
// a nil span.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// SpanNode is the JSON form of a span subtree.
type SpanNode struct {
	Name     string            `json:"name"`
	StartMs  float64           `json:"start_ms"` // relative to the trace epoch
	DurMs    float64           `json:"dur_ms"`
	Tags     map[string]string `json:"tags,omitempty"`
	Children []*SpanNode       `json:"children,omitempty"`
}

// FlatSpan is one row of the flame-friendly flat listing: depth-first
// order, with the nesting depth made explicit.
type FlatSpan struct {
	Name    string  `json:"name"`
	Depth   int     `json:"depth"`
	StartMs float64 `json:"start_ms"`
	DurMs   float64 `json:"dur_ms"`
}

// Trace is the exported form of a tracer's spans: the tree plus a flat
// depth-first listing for flame-graph style tooling.
type Trace struct {
	Spans []*SpanNode `json:"spans"`
	Flat  []FlatSpan  `json:"flat"`
}

// Export snapshots the recorded spans. Open spans are reported with their
// duration up to now.
func (t *Tracer) Export() *Trace {
	t.mu.Lock()
	roots := append([]*Span(nil), t.roots...)
	epoch := t.epoch
	t.mu.Unlock()
	now := time.Now()

	tr := &Trace{}
	for _, r := range roots {
		node := exportSpan(r, epoch, now)
		tr.Spans = append(tr.Spans, node)
		flatten(node, 0, &tr.Flat)
	}
	return tr
}

// exportSpan converts one span subtree, sorting children by start time so
// the export is stable for concurrent siblings.
func exportSpan(s *Span, epoch, now time.Time) *SpanNode {
	s.mu.Lock()
	end := s.end
	if end.IsZero() {
		end = now
	}
	var tags map[string]string
	if len(s.tags) > 0 {
		tags = make(map[string]string, len(s.tags))
		for k, v := range s.tags {
			tags[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()

	sort.SliceStable(children, func(a, b int) bool { return children[a].start.Before(children[b].start) })
	node := &SpanNode{
		Name:    s.name,
		StartMs: float64(s.start.Sub(epoch)) / float64(time.Millisecond),
		DurMs:   float64(end.Sub(s.start)) / float64(time.Millisecond),
		Tags:    tags,
	}
	for _, c := range children {
		node.Children = append(node.Children, exportSpan(c, epoch, now))
	}
	return node
}

// flatten appends node and its subtree to out in depth-first order.
func flatten(node *SpanNode, depth int, out *[]FlatSpan) {
	*out = append(*out, FlatSpan{Name: node.Name, Depth: depth, StartMs: node.StartMs, DurMs: node.DurMs})
	for _, c := range node.Children {
		flatten(c, depth+1, out)
	}
}

// WriteJSON writes the exported trace as indented JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Export())
}
