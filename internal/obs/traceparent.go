package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
)

// TraceContext is the W3C Trace Context identity of one request: the
// 16-byte trace ID shared by every participant, the 8-byte span (parent)
// ID of the current hop, and the trace flags. The zero TraceContext is
// "no trace" (IsZero reports true).
//
// Only version 00 of the traceparent header is produced; higher versions
// are accepted on parse per the spec (unknown trailing fields ignored).
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	Flags   byte
}

// IsZero reports whether tc carries no trace identity. A trace ID of all
// zeroes is invalid per the W3C spec, so it doubles as the sentinel.
func (tc TraceContext) IsZero() bool { return tc.TraceID == [16]byte{} }

// TraceIDString returns the 32-hex-digit trace ID.
func (tc TraceContext) TraceIDString() string { return hex.EncodeToString(tc.TraceID[:]) }

// SpanIDString returns the 16-hex-digit span ID.
func (tc TraceContext) SpanIDString() string { return hex.EncodeToString(tc.SpanID[:]) }

// String renders the traceparent header value: 00-<trace-id>-<span-id>-<flags>.
func (tc TraceContext) String() string {
	return fmt.Sprintf("00-%s-%s-%02x", tc.TraceIDString(), tc.SpanIDString(), tc.Flags)
}

// WithNewSpanID returns a copy of tc whose span ID is freshly generated —
// the identity a server hands to the work it performs on behalf of the
// caller, keeping the caller's span ID as the parent.
func (tc TraceContext) WithNewSpanID() TraceContext {
	rand.Read(tc.SpanID[:]) //nolint:errcheck // crypto/rand.Read never fails
	return tc
}

// NewTraceContext generates a fresh trace identity with the sampled flag
// set, for requests that arrive without a traceparent header.
func NewTraceContext() TraceContext {
	var tc TraceContext
	rand.Read(tc.TraceID[:]) //nolint:errcheck // crypto/rand.Read never fails
	rand.Read(tc.SpanID[:])  //nolint:errcheck
	tc.Flags = 0x01
	return tc
}

// ParseTraceparent parses a W3C traceparent header value. It returns an
// error for empty or malformed values, the forbidden version ff, and
// all-zero trace or span IDs.
func ParseTraceparent(header string) (TraceContext, error) {
	var tc TraceContext
	header = strings.TrimSpace(header)
	if header == "" {
		return tc, fmt.Errorf("obs: empty traceparent")
	}
	parts := strings.Split(header, "-")
	if len(parts) < 4 {
		return tc, fmt.Errorf("obs: traceparent %q: want version-traceid-spanid-flags", header)
	}
	version, err := hexField(parts[0], 1)
	if err != nil {
		return tc, fmt.Errorf("obs: traceparent version: %v", err)
	}
	if version[0] == 0xff {
		return tc, fmt.Errorf("obs: traceparent version ff is forbidden")
	}
	if version[0] == 0 && len(parts) != 4 {
		return tc, fmt.Errorf("obs: traceparent %q: version 00 has exactly 4 fields", header)
	}
	traceID, err := hexField(parts[1], 16)
	if err != nil {
		return tc, fmt.Errorf("obs: traceparent trace-id: %v", err)
	}
	spanID, err := hexField(parts[2], 8)
	if err != nil {
		return tc, fmt.Errorf("obs: traceparent parent-id: %v", err)
	}
	flags, err := hexField(parts[3], 1)
	if err != nil {
		return tc, fmt.Errorf("obs: traceparent flags: %v", err)
	}
	copy(tc.TraceID[:], traceID)
	copy(tc.SpanID[:], spanID)
	tc.Flags = flags[0]
	if tc.TraceID == [16]byte{} {
		return TraceContext{}, fmt.Errorf("obs: traceparent trace-id is all zeroes")
	}
	if tc.SpanID == [8]byte{} {
		return TraceContext{}, fmt.Errorf("obs: traceparent parent-id is all zeroes")
	}
	return tc, nil
}

// hexField decodes a lowercase hex field of exactly n bytes.
func hexField(s string, n int) ([]byte, error) {
	if len(s) != 2*n {
		return nil, fmt.Errorf("field %q: want %d hex digits", s, 2*n)
	}
	if s != strings.ToLower(s) {
		return nil, fmt.Errorf("field %q: uppercase hex is invalid", s)
	}
	return hex.DecodeString(s)
}

// traceCtxKey carries a TraceContext through a context.
type traceCtxKey struct{}

// ContextWithTrace attaches the trace identity to ctx. Instrumented code
// reads it back with TraceFrom to stamp exemplars and trace exports.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFrom returns the trace identity carried by ctx, or the zero
// TraceContext. Safe on a nil context.
func TraceFrom(ctx context.Context) TraceContext {
	if ctx == nil {
		return TraceContext{}
	}
	tc, _ := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc
}
