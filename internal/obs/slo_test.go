package obs

import (
	"math"
	"strings"
	"testing"
)

func TestSummaryQuantiles(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("solve_seconds", "solve latency", 128)
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Error("empty summary quantile is not NaN")
	}
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	if got := s.Quantile(0.5); got != 50 {
		t.Errorf("P50 = %v, want 50", got)
	}
	if got := s.Quantile(0.95); got != 95 {
		t.Errorf("P95 = %v, want 95", got)
	}
	if got := s.Quantile(0.99); got != 99 {
		t.Errorf("P99 = %v, want 99", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Errorf("P100 = %v, want 100", got)
	}
	if s.Count() != 100 {
		t.Errorf("count = %d, want 100", s.Count())
	}
}

func TestSummaryWindowEviction(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("w", "windowed", 16)
	// Fill with large values, then push 16 small ones: the window holds
	// only the small ones, while lifetime count/sum keep everything.
	for i := 0; i < 16; i++ {
		s.Observe(1000)
	}
	for i := 0; i < 16; i++ {
		s.Observe(1)
	}
	if got := s.Quantile(1); got != 1 {
		t.Errorf("max over window = %v, want 1 (old values must be evicted)", got)
	}
	if s.Count() != 32 {
		t.Errorf("lifetime count = %d, want 32", s.Count())
	}
	snap := s.snap()
	if snap.Sum != 16*1000+16 {
		t.Errorf("lifetime sum = %v", snap.Sum)
	}
}

func TestSummaryPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("api_seconds", "request latency", 64)
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i)) // window keeps 37..100
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE api_seconds summary",
		`api_seconds{quantile="0.5"} `,
		`api_seconds{quantile="0.95"} `,
		`api_seconds{quantile="0.99"} `,
		"api_seconds_sum 5050",
		"api_seconds_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSummaryRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Summary("s", "h", 32)
	b := r.Summary("s", "h", 999)
	if a != b {
		t.Fatal("same name returned distinct summaries")
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 0.25
	g := r.GaugeFunc("budget_remaining", "error budget", func() float64 { return v })
	if g.Value() != 0.25 {
		t.Errorf("Value = %v", g.Value())
	}
	v = 0.5
	if got := r.Snapshot()["budget_remaining"]; got.Kind != "gauge" || got.Value != 0.5 {
		t.Errorf("snap = %+v", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "budget_remaining 0.5") {
		t.Errorf("exposition:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "# TYPE budget_remaining gauge") {
		t.Errorf("exposition:\n%s", b.String())
	}
}

func TestHistogramVecSeries(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("solve_seconds", "per-engine solve latency", "engine", []float64{0.1, 1})
	hv.With("incremental").Observe(0.05)
	hv.With("incremental").Observe(0.5)
	hv.With("lowrank").Observe(2)

	if got := hv.With("incremental").Count(); got != 2 {
		t.Errorf("incremental count = %d, want 2", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if n := strings.Count(out, "# HELP solve_seconds "); n != 1 {
		t.Errorf("HELP emitted %d times:\n%s", n, out)
	}
	for _, want := range []string{
		"# TYPE solve_seconds histogram",
		`solve_seconds_count{engine="incremental"} 2`,
		`solve_seconds_count{engine="lowrank"} 1`,
		`solve_seconds_bucket{engine="incremental",le="0.1"} 1`,
		`solve_seconds_bucket{engine="lowrank",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestCounterVecLabelOrdering pins the satellite requirement: labeled
// series within one family appear in sorted label-value order in the
// Prometheus exposition, and the order is identical across writes
// regardless of registration order.
func TestCounterVecLabelOrdering(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("jobs_done_total", "jobs by state", "state")
	// Register in non-sorted order on purpose.
	cv.With("failed").Inc()
	cv.With("canceled").Inc()
	cv.With("done").Inc()

	render := func() string {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	out := render()
	iCanceled := strings.Index(out, `jobs_done_total{state="canceled"}`)
	iDone := strings.Index(out, `jobs_done_total{state="done"}`)
	iFailed := strings.Index(out, `jobs_done_total{state="failed"}`)
	if iCanceled < 0 || iDone < 0 || iFailed < 0 {
		t.Fatalf("missing series in:\n%s", out)
	}
	if !(iCanceled < iDone && iDone < iFailed) {
		t.Errorf("series not in sorted label order:\n%s", out)
	}
	if again := render(); again != out {
		t.Error("exposition is not deterministic across writes")
	}
}

func TestExemplarStoreTopK(t *testing.T) {
	es := NewExemplarStore("solve_seconds", 3)
	es.Offer(0.1, "t1", "incremental")
	es.Offer(0.5, "t2", "lowrank")
	es.Offer(0.3, "t3", "incremental")
	es.Offer(0.05, "t4", "naive") // below all three once full? no — store not full yet
	es.Offer(0.9, "t5", "lowrank")
	es.Offer(0.01, "t6", "naive") // rejected: below the retained minimum

	got := es.Snapshot()
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	wantIDs := []string{"t5", "t2", "t3"}
	for i, w := range wantIDs {
		if got[i].TraceID != w {
			t.Errorf("top[%d] = %+v, want trace %s", i, got[i], w)
		}
	}
	if got[0].Value != 0.9 || got[0].Label != "lowrank" {
		t.Errorf("top exemplar = %+v", got[0])
	}
	es.Reset()
	if len(es.Snapshot()) != 0 {
		t.Error("Reset did not clear the store")
	}
}

func TestExemplarRegistryAndComments(t *testing.T) {
	es := RegisterExemplars("test_exemplar_family", 2)
	if RegisterExemplars("test_exemplar_family", 99) != es {
		t.Fatal("re-registration returned a new store")
	}
	es.Reset()
	es.Offer(1.5, "abc123", "lowrank")

	var b strings.Builder
	if err := WriteExemplarComments(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# exemplar test_exemplar_family value=1.5 trace_id=abc123 label=lowrank") {
		t.Errorf("comments:\n%s", b.String())
	}
	snaps := ExemplarSnapshots()
	if len(snaps["test_exemplar_family"]) != 1 {
		t.Errorf("snapshots = %+v", snaps)
	}
}
