package benchfmt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: analogdft
cpu: Example CPU @ 2.00GHz
BenchmarkMatrix-8   	      30	  39439327 ns/op	 1048576 B/op	    2048 allocs/op
BenchmarkMatrix-8   	      30	  40000000 ns/op	 1048578 B/op	    2048 allocs/op
BenchmarkMatrix-8   	      31	  38560673 ns/op	 1048574 B/op	    2048 allocs/op
BenchmarkSolve-8    	 1000000	      1200 ns/op	     256 B/op	       4 allocs/op
PASS
ok  	analogdft	12.345s
`

func TestParseAggregatesCounts(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if f.GOOS != "linux" || f.GOARCH != "amd64" || f.CPU != "Example CPU @ 2.00GHz" {
		t.Fatalf("metadata = %q %q %q", f.GOOS, f.GOARCH, f.CPU)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2", len(f.Benchmarks))
	}
	m := f.Benchmarks[0]
	if m.Name != "BenchmarkMatrix-8" || m.Pkg != "analogdft" || m.Runs != 3 {
		t.Fatalf("first benchmark = %+v", m)
	}
	if want := (39439327.0 + 40000000 + 38560673) / 3; m.NsPerOp != want {
		t.Fatalf("ns/op = %v, want %v", m.NsPerOp, want)
	}
	if m.AllocsPerOp != 2048 {
		t.Fatalf("allocs/op = %v", m.AllocsPerOp)
	}
	s := f.Benchmarks[1]
	if s.Runs != 1 || s.Samples[0].Iters != 1000000 || s.NsPerOp != 1200 {
		t.Fatalf("second benchmark = %+v", s)
	}
}

func TestParseWithoutBenchmem(t *testing.T) {
	f, err := Parse(strings.NewReader("BenchmarkX-4   	     100	    500 ns/op\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	b := f.Benchmarks[0]
	if b.NsPerOp != 500 || b.BPerOp != 0 || b.AllocsPerOp != 0 {
		t.Fatalf("benchmark = %+v", b)
	}
}

func TestParseRejectsEmptyStream(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok  \tanalogdft\t1.0s\n")); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestParseSkipsMalformedLines(t *testing.T) {
	in := "BenchmarkBroken-8 notanumber 12 ns/op\n" +
		"BenchmarkOdd-8 100 12\n" + // odd value/unit pairing
		"BenchmarkGood-8 100 12 ns/op\n"
	f, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 || f.Benchmarks[0].Name != "BenchmarkGood-8" {
		t.Fatalf("benchmarks = %+v", f.Benchmarks)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	f.Date = "2026-08-05"
	f.GoVersion = "go1.24.0"
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back File
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if back.Date != "2026-08-05" || len(back.Benchmarks) != 2 || back.Benchmarks[0].Runs != 3 {
		t.Fatalf("round trip = %+v", back)
	}
}
