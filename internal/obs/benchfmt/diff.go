package benchfmt

import (
	"fmt"
	"io"
	"strings"
)

// Thresholds configures when a delta counts as a regression, in percent.
// The ns/op threshold is noise-aware: a benchmark whose old samples spread
// wider than NsPct gets its spread as the effective threshold instead, so
// a naturally jittery benchmark does not page on every run.
type Thresholds struct {
	NsPct  float64 // ns/op regression threshold, percent (default 10)
	MemPct float64 // B/op and allocs/op threshold, percent (default 20)
}

// DefaultThresholds is the advisory-gate configuration: 10% on time, 20%
// on memory.
var DefaultThresholds = Thresholds{NsPct: 10, MemPct: 20}

// withDefaults fills zero fields from DefaultThresholds.
func (t Thresholds) withDefaults() Thresholds {
	if t.NsPct <= 0 {
		t.NsPct = DefaultThresholds.NsPct
	}
	if t.MemPct <= 0 {
		t.MemPct = DefaultThresholds.MemPct
	}
	return t
}

// Delta is the comparison of one benchmark present in both files.
type Delta struct {
	Pkg  string `json:"pkg,omitempty"`
	Name string `json:"name"`

	OldNs float64 `json:"old_ns_per_op"`
	NewNs float64 `json:"new_ns_per_op"`
	NsPct float64 `json:"ns_pct"` // percent change, + is slower

	HasMem    bool    `json:"has_mem"` // both sides reported -benchmem
	OldB      float64 `json:"old_b_per_op,omitempty"`
	NewB      float64 `json:"new_b_per_op,omitempty"`
	BPct      float64 `json:"b_pct,omitempty"`
	OldAllocs float64 `json:"old_allocs_per_op,omitempty"`
	NewAllocs float64 `json:"new_allocs_per_op,omitempty"`
	AllocsPct float64 `json:"allocs_pct,omitempty"`

	// NoisePct is the old run's sample spread, 100*(max-min)/mean; the
	// effective ns/op threshold is max(Thresholds.NsPct, NoisePct).
	NoisePct float64 `json:"noise_pct"`
	EffNsPct float64 `json:"eff_ns_pct"`

	Regressed bool `json:"regressed"`
	// AllocRegressed marks an allocs/op regression specifically. Allocation
	// counts are deterministic (no scheduler or frequency noise), so this
	// subset of Regressed is suitable for an enforcing CI gate even where
	// ns/op stays advisory.
	AllocRegressed bool `json:"alloc_regressed,omitempty"`
	Improved       bool `json:"improved"`
}

// Report is the full comparison of two BENCH files.
type Report struct {
	OldLabel   string     `json:"old"`
	NewLabel   string     `json:"new"`
	Thresholds Thresholds `json:"thresholds"`
	Deltas     []Delta    `json:"deltas"`
	Added      []string   `json:"added,omitempty"`   // only in the new file
	Removed    []string   `json:"removed,omitempty"` // only in the old file
}

// Diff compares two parsed BENCH files, old → new, in the new file's
// benchmark order.
func Diff(oldF, newF *File, th Thresholds) *Report {
	th = th.withDefaults()
	rep := &Report{OldLabel: oldF.Date, NewLabel: newF.Date, Thresholds: th}

	oldIdx := make(map[string]*Benchmark, len(oldF.Benchmarks))
	for i := range oldF.Benchmarks {
		b := &oldF.Benchmarks[i]
		oldIdx[b.Pkg+"\x00"+b.Name] = b
	}
	matched := make(map[string]bool, len(oldIdx))
	for i := range newF.Benchmarks {
		nb := &newF.Benchmarks[i]
		key := nb.Pkg + "\x00" + nb.Name
		ob, ok := oldIdx[key]
		if !ok {
			rep.Added = append(rep.Added, qualify(nb.Pkg, nb.Name))
			continue
		}
		matched[key] = true
		rep.Deltas = append(rep.Deltas, compare(ob, nb, th))
	}
	for i := range oldF.Benchmarks {
		ob := &oldF.Benchmarks[i]
		if !matched[ob.Pkg+"\x00"+ob.Name] {
			rep.Removed = append(rep.Removed, qualify(ob.Pkg, ob.Name))
		}
	}
	return rep
}

// DiffDim compares variants inside one snapshot along a sub-benchmark
// dimension: every benchmark whose name carries a "dim=base" path segment
// is paired with the identically named benchmark carrying "dim=alt", and
// the pair becomes a Delta with the base variant on the "old" side. This
// is the cross-sectional twin of the temporal Diff — with names shaped
// like BenchmarkBuildMatrix/engine=X/layout=Y, the temporal gate tracks
// each (engine, layout) combination over time while DiffDim(…, "layout",
// "dense", "sparse") asserts, within a single run on a single machine,
// that the sparse layout holds its win over the dense one.
//
// Segment matching tolerates the -N GOMAXPROCS suffix go test appends to
// the final segment. Base variants with no alt partner are listed under
// Removed, alt variants with no base partner under Added. A file with no
// benchmark on either side of the dimension is an error — it usually
// means a mistyped -dim spec rather than an empty comparison.
func DiffDim(f *File, dim, base, alt string, th Thresholds) (*Report, error) {
	th = th.withDefaults()
	baseTok := dim + "=" + base
	altTok := dim + "=" + alt
	rep := &Report{
		OldLabel:   labelOr(f.Date, "snapshot") + " " + baseTok,
		NewLabel:   labelOr(f.Date, "snapshot") + " " + altTok,
		Thresholds: th,
	}
	idx := make(map[string]*Benchmark, len(f.Benchmarks))
	for i := range f.Benchmarks {
		b := &f.Benchmarks[i]
		idx[b.Pkg+"\x00"+b.Name] = b
	}
	// cutTok finds the segment holding tok (exact, or tok plus the -N
	// suffix when it closes the name) and returns its index and suffix.
	cutTok := func(segs []string, tok string) (int, string) {
		for j, s := range segs {
			if s == tok {
				return j, ""
			}
			if j == len(segs)-1 && strings.HasPrefix(s, tok+"-") {
				return j, s[len(tok):]
			}
		}
		return -1, ""
	}
	for i := range f.Benchmarks {
		b := &f.Benchmarks[i]
		segs := strings.Split(b.Name, "/")
		if at, suffix := cutTok(segs, altTok); at >= 0 {
			segs[at] = baseTok + suffix
			if _, ok := idx[b.Pkg+"\x00"+strings.Join(segs, "/")]; !ok {
				rep.Added = append(rep.Added, qualify(b.Pkg, b.Name))
			}
			continue
		}
		at, suffix := cutTok(segs, baseTok)
		if at < 0 {
			continue // not on this dimension
		}
		segs[at] = altTok + suffix
		ab, ok := idx[b.Pkg+"\x00"+strings.Join(segs, "/")]
		if !ok {
			rep.Removed = append(rep.Removed, qualify(b.Pkg, b.Name))
			continue
		}
		d := compare(b, ab, th)
		// Display the pair as one row: dim=base:alt in place of the token.
		segs[at] = dim + "=" + base + ":" + alt + suffix
		d.Name = strings.Join(segs, "/")
		rep.Deltas = append(rep.Deltas, d)
	}
	if len(rep.Deltas) == 0 && len(rep.Added) == 0 && len(rep.Removed) == 0 {
		return nil, fmt.Errorf("benchfmt: no benchmarks carry %s=%s or %s=%s sub-benchmarks", dim, base, dim, alt)
	}
	return rep, nil
}

// compare builds one Delta.
func compare(ob, nb *Benchmark, th Thresholds) Delta {
	d := Delta{
		Pkg: nb.Pkg, Name: nb.Name,
		OldNs: ob.NsPerOp, NewNs: nb.NsPerOp,
		NsPct:    pctChange(ob.NsPerOp, nb.NsPerOp),
		NoisePct: nsNoisePct(ob),
	}
	d.EffNsPct = th.NsPct
	if d.NoisePct > d.EffNsPct {
		d.EffNsPct = d.NoisePct
	}
	if ob.MemRuns > 0 && nb.MemRuns > 0 {
		d.HasMem = true
		d.OldB, d.NewB = ob.BPerOp, nb.BPerOp
		d.BPct = pctChange(ob.BPerOp, nb.BPerOp)
		d.OldAllocs, d.NewAllocs = ob.AllocsPerOp, nb.AllocsPerOp
		d.AllocsPct = pctChange(ob.AllocsPerOp, nb.AllocsPerOp)
	}
	d.AllocRegressed = d.HasMem && d.AllocsPct > th.MemPct
	d.Regressed = d.NsPct > d.EffNsPct ||
		(d.HasMem && (d.BPct > th.MemPct || d.AllocsPct > th.MemPct))
	d.Improved = !d.Regressed && d.NsPct < -d.EffNsPct
	return d
}

// pctChange returns 100*(new-old)/old, or 0 when old is 0 (a zero
// baseline has no meaningful relative change).
func pctChange(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return 100 * (newV - oldV) / oldV
}

// nsNoisePct measures the old run's ns/op spread: 100*(max-min)/mean.
// Zero when fewer than two samples are available.
func nsNoisePct(b *Benchmark) float64 {
	if len(b.Samples) < 2 || b.NsPerOp == 0 {
		return 0
	}
	lo, hi := b.Samples[0].NsPerOp, b.Samples[0].NsPerOp
	for _, s := range b.Samples[1:] {
		if s.NsPerOp < lo {
			lo = s.NsPerOp
		}
		if s.NsPerOp > hi {
			hi = s.NsPerOp
		}
	}
	return 100 * (hi - lo) / b.NsPerOp
}

// Regressions returns the deltas flagged as regressions.
func (r *Report) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// AllocRegressions returns the deltas whose allocs/op regressed — the
// noise-free subset an enforcing gate keys on.
func (r *Report) AllocRegressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.AllocRegressed {
			out = append(out, d)
		}
	}
	return out
}

// qualify joins pkg and name for display.
func qualify(pkg, name string) string {
	if pkg == "" {
		return name
	}
	return pkg + "." + name
}

// WriteText renders the report as an aligned human-readable table, one
// row per matched benchmark, followed by added/removed listings and a
// one-line verdict.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "benchdiff %s -> %s (ns threshold %.0f%%, mem threshold %.0f%%)\n\n",
		labelOr(r.OldLabel, "old"), labelOr(r.NewLabel, "new"), r.Thresholds.NsPct, r.Thresholds.MemPct); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-52s %14s %14s %8s %8s  %s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "noise", "verdict"); err != nil {
		return err
	}
	for _, d := range r.Deltas {
		verdict := "ok"
		switch {
		case d.Regressed:
			verdict = "REGRESSED"
		case d.Improved:
			verdict = "improved"
		}
		if _, err := fmt.Fprintf(w, "%-52s %14.1f %14.1f %+7.1f%% %7.1f%%  %s\n",
			qualify(d.Pkg, d.Name), d.OldNs, d.NewNs, d.NsPct, d.NoisePct, verdict); err != nil {
			return err
		}
		if d.HasMem && (d.BPct != 0 || d.AllocsPct != 0) {
			if _, err := fmt.Fprintf(w, "%-52s %11.0f B/op %11.0f B/op %+7.1f%%  allocs %+.1f%%\n",
				"", d.OldB, d.NewB, d.BPct, d.AllocsPct); err != nil {
				return err
			}
		}
	}
	for _, name := range r.Added {
		if _, err := fmt.Fprintf(w, "added:   %s\n", name); err != nil {
			return err
		}
	}
	for _, name := range r.Removed {
		if _, err := fmt.Fprintf(w, "removed: %s\n", name); err != nil {
			return err
		}
	}
	reg := r.Regressions()
	if len(reg) == 0 {
		_, err := fmt.Fprintf(w, "\nno regressions across %d benchmark(s)\n", len(r.Deltas))
		return err
	}
	_, err := fmt.Fprintf(w, "\n%d regression(s) across %d benchmark(s)\n", len(reg), len(r.Deltas))
	return err
}

// labelOr returns label unless empty.
func labelOr(label, fallback string) string {
	if label == "" {
		return fallback
	}
	return label
}
