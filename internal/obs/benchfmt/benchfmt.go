// Package benchfmt parses the text output of `go test -bench` and renders
// it as the committed BENCH_<date>.json perf-trajectory format: one record
// per benchmark with the mean ns/op, B/op and allocs/op across -count
// repetitions, plus the raw samples so regressions can be judged against
// run-to-run noise.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Sample is one benchmark line of `go test -bench` output. HasMem
// records whether the line carried the -benchmem columns; without it a
// zero B/op is indistinguishable from "not measured" and mem means get
// silently dragged toward zero on mixed runs.
type Sample struct {
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	HasMem      bool    `json:"has_mem,omitempty"`
}

// Benchmark aggregates the -count repetitions of one benchmark.
type Benchmark struct {
	Pkg  string `json:"pkg,omitempty"`
	Name string `json:"name"`
	Runs int    `json:"runs"`
	// MemRuns counts the samples that carried -benchmem columns; the mem
	// means below average over those samples only. Zero means the
	// benchmark never reported memory and BPerOp/AllocsPerOp are
	// meaningless.
	MemRuns int `json:"mem_runs,omitempty"`
	// Mean values across the samples (mem means across MemRuns samples).
	NsPerOp     float64  `json:"ns_per_op"`
	BPerOp      float64  `json:"b_per_op"`
	AllocsPerOp float64  `json:"allocs_per_op"`
	Samples     []Sample `json:"samples"`
}

// File is the BENCH_<date>.json document.
type File struct {
	Date       string      `json:"date,omitempty"`
	GoVersion  string      `json:"go,omitempty"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` text output. Benchmark lines are grouped by
// (package, name) in first-seen order; goos/goarch/pkg/cpu header lines
// fill the file metadata. Non-benchmark lines (PASS, ok, test logs) are
// ignored, so the full `go test` stream can be piped in unfiltered.
func Parse(r io.Reader) (*File, error) {
	f := &File{}
	index := make(map[string]int)
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			f.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue // sub-benchmark headers or malformed lines
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		// Parse value/unit pairs. Only ns/op is required; B/op and
		// allocs/op are optional (runs without -benchmem), and unknown
		// units (MB/s from SetBytes, custom ReportMetric units) or odd
		// trailing tokens are skipped rather than dropping the line.
		s := Sample{Iters: iters}
		sawNs := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.NsPerOp = v
				sawNs = true
			case "B/op":
				s.BPerOp = v
				s.HasMem = true
			case "allocs/op":
				s.AllocsPerOp = v
				s.HasMem = true
			}
		}
		if !sawNs {
			continue
		}
		key := pkg + "\x00" + fields[0]
		i, seen := index[key]
		if !seen {
			i = len(f.Benchmarks)
			index[key] = i
			f.Benchmarks = append(f.Benchmarks, Benchmark{Pkg: pkg, Name: fields[0]})
		}
		f.Benchmarks[i].Samples = append(f.Benchmarks[i].Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchfmt: no benchmark lines found")
	}
	for i := range f.Benchmarks {
		aggregate(&f.Benchmarks[i])
	}
	return f, nil
}

// aggregate fills the mean fields from the samples. Timing means run over
// every sample (mixed -benchtime runs still produce per-op values, so they
// average cleanly); memory means run over the samples that actually
// reported -benchmem columns, so a stray non-benchmem run cannot drag
// B/op toward zero.
func aggregate(b *Benchmark) {
	b.Runs = len(b.Samples)
	b.MemRuns = 0
	if b.Runs == 0 {
		return
	}
	var ns, bytes, allocs float64
	for _, s := range b.Samples {
		ns += s.NsPerOp
		if s.HasMem {
			b.MemRuns++
			bytes += s.BPerOp
			allocs += s.AllocsPerOp
		}
	}
	b.NsPerOp = ns / float64(b.Runs)
	b.BPerOp, b.AllocsPerOp = 0, 0
	if b.MemRuns > 0 {
		b.BPerOp = bytes / float64(b.MemRuns)
		b.AllocsPerOp = allocs / float64(b.MemRuns)
	}
}

// WriteJSON writes the file as indented JSON.
func (f *File) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ParseJSON reads a BENCH_<date>.json document, re-deriving the aggregate
// means from the raw samples so documents written by older versions of the
// format (without mem_runs / has_mem) still diff correctly: a sample with
// any nonzero mem field is treated as mem-reporting.
func ParseJSON(r io.Reader) (*File, error) {
	f := &File{}
	dec := json.NewDecoder(r)
	if err := dec.Decode(f); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchfmt: document has no benchmarks")
	}
	for i := range f.Benchmarks {
		b := &f.Benchmarks[i]
		if len(b.Samples) == 0 {
			continue // keep the stored means; nothing to re-derive from
		}
		for j := range b.Samples {
			s := &b.Samples[j]
			if !s.HasMem && (s.BPerOp != 0 || s.AllocsPerOp != 0) {
				s.HasMem = true
			}
		}
		aggregate(b)
	}
	return f, nil
}

// ReadFile loads one BENCH_<date>.json document from disk.
func ReadFile(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	f, err := ParseJSON(fh)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}
