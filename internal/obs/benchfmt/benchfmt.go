// Package benchfmt parses the text output of `go test -bench` and renders
// it as the committed BENCH_<date>.json perf-trajectory format: one record
// per benchmark with the mean ns/op, B/op and allocs/op across -count
// repetitions, plus the raw samples so regressions can be judged against
// run-to-run noise.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one benchmark line of `go test -bench` output.
type Sample struct {
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Benchmark aggregates the -count repetitions of one benchmark.
type Benchmark struct {
	Pkg  string `json:"pkg,omitempty"`
	Name string `json:"name"`
	Runs int    `json:"runs"`
	// Mean values across the samples.
	NsPerOp     float64  `json:"ns_per_op"`
	BPerOp      float64  `json:"b_per_op"`
	AllocsPerOp float64  `json:"allocs_per_op"`
	Samples     []Sample `json:"samples"`
}

// File is the BENCH_<date>.json document.
type File struct {
	Date       string      `json:"date,omitempty"`
	GoVersion  string      `json:"go,omitempty"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` text output. Benchmark lines are grouped by
// (package, name) in first-seen order; goos/goarch/pkg/cpu header lines
// fill the file metadata. Non-benchmark lines (PASS, ok, test logs) are
// ignored, so the full `go test` stream can be piped in unfiltered.
func Parse(r io.Reader) (*File, error) {
	f := &File{}
	index := make(map[string]int)
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			f.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue // sub-benchmark headers or malformed lines
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		s := Sample{Iters: iters}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			switch fields[i+1] {
			case "ns/op":
				s.NsPerOp = v
			case "B/op":
				s.BPerOp = v
			case "allocs/op":
				s.AllocsPerOp = v
			}
		}
		if !ok {
			continue
		}
		key := pkg + "\x00" + fields[0]
		i, seen := index[key]
		if !seen {
			i = len(f.Benchmarks)
			index[key] = i
			f.Benchmarks = append(f.Benchmarks, Benchmark{Pkg: pkg, Name: fields[0]})
		}
		f.Benchmarks[i].Samples = append(f.Benchmarks[i].Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchfmt: no benchmark lines found")
	}
	for i := range f.Benchmarks {
		aggregate(&f.Benchmarks[i])
	}
	return f, nil
}

// aggregate fills the mean fields from the samples.
func aggregate(b *Benchmark) {
	b.Runs = len(b.Samples)
	if b.Runs == 0 {
		return
	}
	var ns, bytes, allocs float64
	for _, s := range b.Samples {
		ns += s.NsPerOp
		bytes += s.BPerOp
		allocs += s.AllocsPerOp
	}
	n := float64(b.Runs)
	b.NsPerOp = ns / n
	b.BPerOp = bytes / n
	b.AllocsPerOp = allocs / n
}

// WriteJSON writes the file as indented JSON.
func (f *File) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}
