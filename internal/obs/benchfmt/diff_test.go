package benchfmt

import (
	"strings"
	"testing"
)

// parseText is a test helper wrapping Parse.
func parseText(t *testing.T, text string) *File {
	t.Helper()
	f, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParseHardening(t *testing.T) {
	cases := []struct {
		name  string
		input string
		check func(t *testing.T, f *File)
	}{
		{
			name: "missing mem columns entirely",
			input: "BenchmarkX-4 100 500 ns/op\n" +
				"BenchmarkX-4 100 520 ns/op\n",
			check: func(t *testing.T, f *File) {
				b := f.Benchmarks[0]
				if b.Runs != 2 || b.MemRuns != 0 {
					t.Fatalf("runs = %d memRuns = %d", b.Runs, b.MemRuns)
				}
				if b.NsPerOp != 510 || b.BPerOp != 0 {
					t.Fatalf("means = %+v", b)
				}
			},
		},
		{
			name: "mixed benchmem runs do not bias mem means",
			input: "BenchmarkX-4 100 500 ns/op 1024 B/op 8 allocs/op\n" +
				"BenchmarkX-4 100 520 ns/op\n" + // same bench, no -benchmem
				"BenchmarkX-4 100 480 ns/op 1028 B/op 8 allocs/op\n",
			check: func(t *testing.T, f *File) {
				b := f.Benchmarks[0]
				if b.Runs != 3 || b.MemRuns != 2 {
					t.Fatalf("runs = %d memRuns = %d", b.Runs, b.MemRuns)
				}
				if b.NsPerOp != 500 {
					t.Fatalf("ns mean = %v", b.NsPerOp)
				}
				// Mem mean over the two mem-reporting samples, not /3.
				if b.BPerOp != 1026 || b.AllocsPerOp != 8 {
					t.Fatalf("mem means = %v B/op %v allocs/op", b.BPerOp, b.AllocsPerOp)
				}
			},
		},
		{
			name: "mixed benchtime iters average per-op values",
			input: "BenchmarkX-4 10 1000 ns/op\n" +
				"BenchmarkX-4 1000000 1200 ns/op\n",
			check: func(t *testing.T, f *File) {
				b := f.Benchmarks[0]
				if b.Runs != 2 || b.NsPerOp != 1100 {
					t.Fatalf("benchmark = %+v", b)
				}
				if b.Samples[0].Iters != 10 || b.Samples[1].Iters != 1000000 {
					t.Fatalf("samples = %+v", b.Samples)
				}
			},
		},
		{
			name:  "throughput and custom units ignored",
			input: "BenchmarkX-4 100 500 ns/op 523.40 MB/s 12.5 cells/op 256 B/op 4 allocs/op\n",
			check: func(t *testing.T, f *File) {
				b := f.Benchmarks[0]
				if b.NsPerOp != 500 || b.BPerOp != 256 || b.AllocsPerOp != 4 || b.MemRuns != 1 {
					t.Fatalf("benchmark = %+v", b)
				}
			},
		},
		{
			name:  "odd trailing token tolerated",
			input: "BenchmarkX-4 100 500 ns/op 256 B/op 4 allocs/op trailing\n",
			check: func(t *testing.T, f *File) {
				b := f.Benchmarks[0]
				if b.NsPerOp != 500 || b.BPerOp != 256 {
					t.Fatalf("benchmark = %+v", b)
				}
			},
		},
		{
			name:  "line without ns/op dropped",
			input: "BenchmarkNoNs-4 100 523.40 MB/s\nBenchmarkGood-4 100 10 ns/op\n",
			check: func(t *testing.T, f *File) {
				if len(f.Benchmarks) != 1 || f.Benchmarks[0].Name != "BenchmarkGood-4" {
					t.Fatalf("benchmarks = %+v", f.Benchmarks)
				}
			},
		},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			tt.check(t, parseText(t, tt.input))
		})
	}
}

func TestParseJSONLegacyMemDetection(t *testing.T) {
	// A document written before has_mem existed: nonzero mem fields must
	// be treated as mem-reporting on load.
	doc := `{"benchmarks":[{"pkg":"p","name":"BenchmarkX-4","runs":2,
		"samples":[{"iters":100,"ns_per_op":500,"b_per_op":1024,"allocs_per_op":8},
		           {"iters":100,"ns_per_op":520,"b_per_op":1028,"allocs_per_op":8}]}]}`
	f, err := ParseJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	b := f.Benchmarks[0]
	if b.MemRuns != 2 || b.BPerOp != 1026 || b.NsPerOp != 510 {
		t.Fatalf("benchmark = %+v", b)
	}
}

func TestParseJSONRejectsEmpty(t *testing.T) {
	if _, err := ParseJSON(strings.NewReader(`{"benchmarks":[]}`)); err == nil {
		t.Fatal("empty document accepted")
	}
	if _, err := ParseJSON(strings.NewReader(`not json`)); err == nil {
		t.Fatal("invalid JSON accepted")
	}
}

func TestDiffFlagsInjectedRegression(t *testing.T) {
	oldF := parseText(t,
		"pkg: analogdft/internal/detect\n"+
			"BenchmarkSweep-8 100 1000 ns/op 4096 B/op 16 allocs/op\n"+
			"BenchmarkSweep-8 100 1010 ns/op 4096 B/op 16 allocs/op\n"+
			"BenchmarkStable-8 100 200 ns/op\n")
	// Injected ≥20% ns/op regression on Sweep; Stable unchanged.
	newF := parseText(t,
		"pkg: analogdft/internal/detect\n"+
			"BenchmarkSweep-8 100 1250 ns/op 4096 B/op 16 allocs/op\n"+
			"BenchmarkSweep-8 100 1260 ns/op 4096 B/op 16 allocs/op\n"+
			"BenchmarkStable-8 100 201 ns/op\n")

	rep := Diff(oldF, newF, Thresholds{})
	if len(rep.Deltas) != 2 {
		t.Fatalf("deltas = %+v", rep.Deltas)
	}
	reg := rep.Regressions()
	if len(reg) != 1 || reg[0].Name != "BenchmarkSweep-8" {
		t.Fatalf("regressions = %+v", reg)
	}
	if !reg[0].HasMem || reg[0].NsPct < 20 {
		t.Fatalf("regression delta = %+v", reg[0])
	}
	for _, d := range rep.Deltas {
		if d.Name == "BenchmarkStable-8" && d.Regressed {
			t.Fatalf("stable benchmark flagged: %+v", d)
		}
	}

	var b strings.Builder
	if err := rep.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"BenchmarkSweep-8", "REGRESSED", "1 regression(s) across 2 benchmark(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in report:\n%s", want, out)
		}
	}
}

func TestDiffNoiseWidensThreshold(t *testing.T) {
	// Old samples spread 40% around the mean; a 15% shift must not flag.
	oldF := parseText(t,
		"BenchmarkJittery-8 100 800 ns/op\n"+
			"BenchmarkJittery-8 100 1200 ns/op\n")
	newF := parseText(t, "BenchmarkJittery-8 100 1150 ns/op\n")
	rep := Diff(oldF, newF, Thresholds{NsPct: 10})
	d := rep.Deltas[0]
	if d.NoisePct != 40 {
		t.Fatalf("noise = %v, want 40", d.NoisePct)
	}
	if d.EffNsPct != 40 {
		t.Fatalf("effective threshold = %v, want 40", d.EffNsPct)
	}
	if d.Regressed {
		t.Fatalf("15%% shift inside 40%% noise flagged: %+v", d)
	}
}

func TestDiffMemOnlyRegression(t *testing.T) {
	oldF := parseText(t, "BenchmarkAlloc-8 100 100 ns/op 1000 B/op 10 allocs/op\n")
	newF := parseText(t, "BenchmarkAlloc-8 100 101 ns/op 1500 B/op 10 allocs/op\n")
	rep := Diff(oldF, newF, Thresholds{})
	if reg := rep.Regressions(); len(reg) != 1 || reg[0].BPct != 50 {
		t.Fatalf("regressions = %+v", reg)
	}
	// B/op regressed but allocs/op did not: the enforcing subset stays empty.
	if reg := rep.AllocRegressions(); len(reg) != 0 {
		t.Fatalf("alloc regressions = %+v, want none", reg)
	}
}

func TestDiffAllocRegressionSubset(t *testing.T) {
	oldF := parseText(t, "BenchmarkAlloc-8 100 100 ns/op 1000 B/op 10 allocs/op\n")
	newF := parseText(t, "BenchmarkAlloc-8 100 100 ns/op 1000 B/op 13 allocs/op\n")
	rep := Diff(oldF, newF, Thresholds{})
	reg := rep.AllocRegressions()
	if len(reg) != 1 || !reg[0].AllocRegressed || reg[0].AllocsPct != 30 {
		t.Fatalf("alloc regressions = %+v", reg)
	}
	// Every alloc regression is also a plain regression.
	if !reg[0].Regressed {
		t.Fatalf("alloc regression not in Regressed set: %+v", reg[0])
	}
	// Without -benchmem data there is nothing for the allocs gate to key on.
	noMemOld := parseText(t, "BenchmarkX-8 100 100 ns/op\n")
	noMemNew := parseText(t, "BenchmarkX-8 100 900 ns/op\n")
	if reg := Diff(noMemOld, noMemNew, Thresholds{}).AllocRegressions(); len(reg) != 0 {
		t.Fatalf("alloc regressions without mem data = %+v", reg)
	}
}

func TestDiffDim(t *testing.T) {
	f := parseText(t,
		"pkg: analogdft\n"+
			// Paired on the layout dimension, with the -8 suffix on the
			// closing segment as go test emits it. Sparse wins time and
			// allocs on the first engine, regresses allocs on the second.
			"BenchmarkBuild/engine=incremental/layout=dense-8 10 1000 ns/op 2000 B/op 100 allocs/op\n"+
			"BenchmarkBuild/engine=incremental/layout=sparse-8 10 800 ns/op 2100 B/op 90 allocs/op\n"+
			"BenchmarkBuild/engine=naive/layout=dense-8 10 1000 ns/op 2000 B/op 100 allocs/op\n"+
			"BenchmarkBuild/engine=naive/layout=sparse-8 10 900 ns/op 2000 B/op 130 allocs/op\n"+
			// Base with no alt partner, alt with no base partner, and a
			// benchmark not on the dimension at all.
			"BenchmarkOrphan/layout=dense-8 10 10 ns/op\n"+
			"BenchmarkNewcomer/layout=sparse-8 10 10 ns/op\n"+
			"BenchmarkUnrelated-8 10 10 ns/op\n")
	rep, err := DiffDim(f, "layout", "dense", "sparse", Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Deltas) != 2 {
		t.Fatalf("deltas = %+v", rep.Deltas)
	}
	d := rep.Deltas[0]
	if d.Name != "BenchmarkBuild/engine=incremental/layout=dense:sparse-8" {
		t.Fatalf("paired name = %q", d.Name)
	}
	if d.OldNs != 1000 || d.NewNs != 800 || d.OldAllocs != 100 || d.NewAllocs != 90 || d.Regressed {
		t.Fatalf("incremental delta = %+v", d)
	}
	// The naive pair carries a 30% allocs/op regression: the enforcing
	// subset must flag it so sparse-vs-dense gates independently of the
	// temporal diff.
	reg := rep.AllocRegressions()
	if len(reg) != 1 || reg[0].Name != "BenchmarkBuild/engine=naive/layout=dense:sparse-8" || reg[0].AllocsPct != 30 {
		t.Fatalf("alloc regressions = %+v", reg)
	}
	if len(rep.Removed) != 1 || rep.Removed[0] != "analogdft.BenchmarkOrphan/layout=dense-8" {
		t.Fatalf("removed = %v", rep.Removed)
	}
	if len(rep.Added) != 1 || rep.Added[0] != "analogdft.BenchmarkNewcomer/layout=sparse-8" {
		t.Fatalf("added = %v", rep.Added)
	}
}

func TestDiffDimNoVariantsErrors(t *testing.T) {
	f := parseText(t, "BenchmarkX-8 10 10 ns/op\n")
	if _, err := DiffDim(f, "layout", "dense", "sparse", Thresholds{}); err == nil {
		t.Fatal("dimension with no variants accepted")
	}
}

func TestDiffAddedRemoved(t *testing.T) {
	oldF := parseText(t, "pkg: p\nBenchmarkGone-8 100 10 ns/op\nBenchmarkKept-8 100 10 ns/op\n")
	newF := parseText(t, "pkg: p\nBenchmarkKept-8 100 10 ns/op\nBenchmarkNew-8 100 10 ns/op\n")
	rep := Diff(oldF, newF, Thresholds{})
	if len(rep.Deltas) != 1 || rep.Deltas[0].Name != "BenchmarkKept-8" {
		t.Fatalf("deltas = %+v", rep.Deltas)
	}
	if len(rep.Added) != 1 || rep.Added[0] != "p.BenchmarkNew-8" {
		t.Fatalf("added = %v", rep.Added)
	}
	if len(rep.Removed) != 1 || rep.Removed[0] != "p.BenchmarkGone-8" {
		t.Fatalf("removed = %v", rep.Removed)
	}
	// A benchmark that improves past the threshold is reported as such.
	impOld := parseText(t, "BenchmarkFast-8 100 1000 ns/op\n")
	impNew := parseText(t, "BenchmarkFast-8 100 500 ns/op\n")
	if d := Diff(impOld, impNew, Thresholds{}).Deltas[0]; !d.Improved || d.Regressed {
		t.Fatalf("improvement delta = %+v", d)
	}
}
