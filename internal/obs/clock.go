package obs

import "time"

// This file is the repository's single wall-clock source. Project
// invariant (enforced mechanically by cmd/vetinvariants): internal
// packages never call time.Now or time.Since directly — every clock read
// flows through Now/Since here, next to the TimingOn gate, so that
// clock-dependent instrumentation stays auditable in one place and the
// deterministic (timing-off) metric guarantees of the detect engine are
// easy to uphold.

// Now returns the current wall-clock time.
func Now() time.Time { return time.Now() }

// Since returns the elapsed time since t.
func Since(t time.Time) time.Duration { return time.Since(t) }
