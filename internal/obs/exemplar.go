package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Exemplar links one extreme observation back to the trace that produced
// it: the value (seconds for latency instruments), the W3C trace ID of the
// request, and a short free-form label (engine name, component, …). It is
// the bridge from an aggregate ("P99 solve latency regressed") to a
// concrete debuggable artifact ("job trace 4bf9…").
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id,omitempty"`
	Label   string  `json:"label,omitempty"`
}

// ExemplarStore retains the K largest observations offered to it — a
// slow-solve top list. Offers below the current minimum are rejected in
// O(1) once the store is full, so the hot path stays cheap. Safe for
// concurrent use.
type ExemplarStore struct {
	name string
	k    int

	mu  sync.Mutex
	top []Exemplar // sorted descending by Value
}

// NewExemplarStore returns a store named name keeping the k largest
// observations (k is clamped to [1, 64]).
func NewExemplarStore(name string, k int) *ExemplarStore {
	if k < 1 {
		k = 1
	}
	if k > 64 {
		k = 64
	}
	return &ExemplarStore{name: name, k: k}
}

// Name returns the store's name (by convention the metric family the
// exemplars annotate).
func (es *ExemplarStore) Name() string { return es.name }

// Offer records the observation if it ranks among the K largest seen.
func (es *ExemplarStore) Offer(value float64, traceID, label string) {
	es.mu.Lock()
	defer es.mu.Unlock()
	if len(es.top) == es.k && value <= es.top[len(es.top)-1].Value {
		return
	}
	es.top = append(es.top, Exemplar{Value: value, TraceID: traceID, Label: label})
	sort.SliceStable(es.top, func(a, b int) bool { return es.top[a].Value > es.top[b].Value })
	if len(es.top) > es.k {
		es.top = es.top[:es.k]
	}
}

// Snapshot returns the retained exemplars, largest first.
func (es *ExemplarStore) Snapshot() []Exemplar {
	es.mu.Lock()
	defer es.mu.Unlock()
	return append([]Exemplar(nil), es.top...)
}

// Reset discards the retained exemplars.
func (es *ExemplarStore) Reset() {
	es.mu.Lock()
	es.top = nil
	es.mu.Unlock()
}

// exemplarRegistry is the process-wide set of exemplar stores, exposed
// alongside /metrics. Registration is idempotent by name.
var exemplarRegistry struct {
	mu     sync.Mutex
	stores map[string]*ExemplarStore
}

// RegisterExemplars returns the named process-wide exemplar store,
// creating it with capacity k if it does not exist yet.
func RegisterExemplars(name string, k int) *ExemplarStore {
	exemplarRegistry.mu.Lock()
	defer exemplarRegistry.mu.Unlock()
	if exemplarRegistry.stores == nil {
		exemplarRegistry.stores = make(map[string]*ExemplarStore)
	}
	if es, ok := exemplarRegistry.stores[name]; ok {
		return es
	}
	es := NewExemplarStore(name, k)
	exemplarRegistry.stores[name] = es
	return es
}

// ExemplarSnapshots returns every registered store's retained exemplars
// keyed by store name. The map and slices are copies.
func ExemplarSnapshots() map[string][]Exemplar {
	exemplarRegistry.mu.Lock()
	names := make([]string, 0, len(exemplarRegistry.stores))
	for name := range exemplarRegistry.stores {
		names = append(names, name)
	}
	stores := make([]*ExemplarStore, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		stores = append(stores, exemplarRegistry.stores[name])
	}
	exemplarRegistry.mu.Unlock()

	out := make(map[string][]Exemplar, len(stores))
	for i, es := range stores {
		out[names[i]] = es.Snapshot()
	}
	return out
}

// WriteExemplarComments appends the registered exemplars to a Prometheus
// text exposition as comment lines (the classic text format has no
// exemplar syntax; OpenMetrics does, but comments keep every scraper
// happy). One line per exemplar:
//
//	# exemplar <store> value=<v> trace_id=<id> label=<label>
func WriteExemplarComments(w io.Writer) error {
	snaps := ExemplarSnapshots()
	names := make([]string, 0, len(snaps))
	for name := range snaps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, ex := range snaps[name] {
			if _, err := fmt.Fprintf(w, "# exemplar %s value=%s trace_id=%s label=%s\n",
				name, formatFloat(ex.Value), ex.TraceID, ex.Label); err != nil {
				return err
			}
		}
	}
	return nil
}
