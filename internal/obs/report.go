package obs

import (
	"encoding/json"
	"io"
	"runtime"
	"time"
)

// RunReport is the machine-readable summary of one CLI run: what was run,
// on what, how long it took (wall and CPU), and a full metric snapshot.
// It is the record format of the repository's BENCH_*.json perf
// trajectory: every command can emit one via the shared -run-report flag.
type RunReport struct {
	// Command is the CLI name (e.g. "paperrepro").
	Command string `json:"command"`
	// Args are the raw command-line arguments after the binary name.
	Args []string `json:"args,omitempty"`
	// Start is the wall-clock start of the run.
	Start time.Time `json:"start"`
	// WallSeconds is the elapsed wall time of the run.
	WallSeconds float64 `json:"wall_seconds"`
	// CPUSeconds is user+system CPU time of the whole process (0 where
	// the platform cannot report it).
	CPUSeconds float64 `json:"cpu_seconds"`
	// GoVersion, GOOS, GOARCH and NumCPU describe the build and host.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// Inputs records what the command ran on (deck path, fault counts,
	// grid sizes, worker counts — whatever the command finds relevant).
	Inputs map[string]any `json:"inputs,omitempty"`
	// Stats records the command's headline results (coverage, matrix
	// stats, optimization outcome).
	Stats map[string]any `json:"stats,omitempty"`
	// Metrics is the registry snapshot at the end of the run.
	Metrics map[string]MetricSnap `json:"metrics,omitempty"`

	started time.Time
}

// NewRunReport starts a report clocked from now.
func NewRunReport(command string, args []string) *RunReport {
	now := time.Now()
	return &RunReport{
		Command:   command,
		Args:      append([]string(nil), args...),
		Start:     now.UTC(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Inputs:    make(map[string]any),
		Stats:     make(map[string]any),
		started:   now,
	}
}

// SetInput records one input descriptor.
func (r *RunReport) SetInput(key string, v any) { r.Inputs[key] = v }

// SetStat records one result figure.
func (r *RunReport) SetStat(key string, v any) { r.Stats[key] = v }

// Finalize stamps wall and CPU time and snapshots the registry (nil skips
// the metric snapshot). Call once, just before WriteJSON.
func (r *RunReport) Finalize(reg *Registry) {
	r.WallSeconds = time.Since(r.started).Seconds()
	r.CPUSeconds = ProcessCPUSeconds()
	if reg != nil {
		r.Metrics = reg.Snapshot()
	}
}

// WriteJSON writes the report as indented JSON.
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
