package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync/atomic"
)

// The logging side is process-global: every package logger produced by
// Logger routes through one swappable handler behind one shared level, so
// a CLI flag flips the whole tree at once (including loggers created at
// package init, long before flags are parsed).
var (
	logLevel   = func() *slog.LevelVar { v := new(slog.LevelVar); v.Set(slog.LevelWarn); return v }()
	logHandler atomic.Value // handlerBox
)

// handlerBox wraps the current handler so atomic.Value always stores one
// concrete type (text and JSON handlers differ).
type handlerBox struct{ h slog.Handler }

func init() {
	logHandler.Store(handlerBox{slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: logLevel})})
}

// SetLogging replaces the shared log sink: destination, format (text or
// JSON) and minimum level. Existing package loggers pick the change up on
// their next record.
func SetLogging(w io.Writer, jsonFormat bool, level slog.Level) {
	logLevel.Set(level)
	opts := &slog.HandlerOptions{Level: logLevel}
	var h slog.Handler
	if jsonFormat {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	logHandler.Store(handlerBox{h})
}

// SetLogLevel adjusts the shared minimum level without touching the sink.
func SetLogLevel(level slog.Level) { logLevel.Set(level) }

// ParseLevel maps a flag value onto a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "warn", "warning":
		return slog.LevelWarn, nil
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "error":
		return slog.LevelError, nil
	default:
		return slog.LevelWarn, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
	}
}

// Logger returns a structured logger scoped to a package (or subsystem)
// name. The logger stays wired to the shared handler across SetLogging
// calls, so it is safe to cache in a package-level var.
func Logger(pkg string) *slog.Logger {
	return slog.New(swapHandler{}).With(slog.String("pkg", pkg))
}

// swapHandler delegates every record to the current shared handler,
// re-applying any attrs and groups accumulated through With/WithGroup.
type swapHandler struct {
	attrs  []slog.Attr
	groups []string
}

func (h swapHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= logLevel.Level()
}

func (h swapHandler) Handle(ctx context.Context, r slog.Record) error {
	inner := logHandler.Load().(handlerBox).h
	if len(h.attrs) > 0 {
		inner = inner.WithAttrs(h.attrs)
	}
	for _, g := range h.groups {
		inner = inner.WithGroup(g)
	}
	return inner.Handle(ctx, r)
}

func (h swapHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	out := h
	out.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return out
}

func (h swapHandler) WithGroup(name string) slog.Handler {
	out := h
	out.groups = append(append([]string(nil), h.groups...), name)
	return out
}
