// Package core implements the paper's primary contribution (§4): the
// optimized application of the multi-configuration DFT technique. Starting
// from a fault detectability matrix it
//
//  1. enforces the fundamental requirement — maximum fault coverage — by
//     building the covering expression ξ, extracting essential
//     configurations and expanding the remainder with Petrick's method
//     (every resulting product term is a configuration set with maximum
//     coverage);
//  2. applies a 2nd-order, user-defined cost function over those candidate
//     sets (number of configurations for test time, §4.2; number of
//     configurable opamps for silicon/performance, §4.3; or any custom
//     CostFunction);
//  3. breaks remaining ties with the 3rd-order requirement: the highest
//     average best-case ω-detectability.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"analogdft/internal/boolexpr"
	"analogdft/internal/detect"
	"analogdft/internal/dft"
)

// ErrNoSolution is returned when no configuration set achieves the maximum
// fault coverage (only possible for degenerate matrices).
var ErrNoSolution = errors.New("core: no covering configuration set")

// Candidate is a configuration set satisfying the fundamental requirement.
type Candidate struct {
	// Rows are the matrix row indices of the selected configurations,
	// ascending.
	Rows []int
	// Labels are the configuration labels (e.g. "C2", "C5").
	Labels []string
	// Coverage is the fault coverage of the set (fraction of all faults).
	Coverage float64
	// AvgOmegaDet is the average best-case ω-detectability (percent) over
	// all faults when testing with this set.
	AvgOmegaDet float64
	// NumConfigs is len(Rows).
	NumConfigs int
	// Opamps is the union of opamps required in follower mode by the
	// selected configurations — exactly the opamps that must be made
	// configurable to emulate the set.
	Opamps []string
	// NumOpamps is len(Opamps).
	NumOpamps int
}

// String implements fmt.Stringer.
func (c *Candidate) String() string {
	return fmt.Sprintf("{%s} (cfgs=%d opamps=%d ⟨ω-det⟩=%.4g%%)",
		joinStrings(c.Labels, ","), c.NumConfigs, c.NumOpamps, c.AvgOmegaDet)
}

func joinStrings(xs []string, sep string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += sep
		}
		out += x
	}
	return out
}

// CostFunction is a 2nd-order requirement: a user-defined cost over
// candidates, minimized during selection.
type CostFunction struct {
	Name string
	Cost func(c *Candidate) float64
}

// ConfigCountCost minimizes the number of test configurations — the test
// time / BIST control cost of §4.2.
var ConfigCountCost = CostFunction{
	Name: "configuration count (test time)",
	Cost: func(c *Candidate) float64 { return float64(c.NumConfigs) },
}

// OpampCountCost minimizes the number of configurable opamps — the silicon
// area / performance cost of §4.3.
var OpampCountCost = CostFunction{
	Name: "configurable-opamp count (area/performance)",
	Cost: func(c *Candidate) float64 { return float64(c.NumOpamps) },
}

// WeightedCost blends configuration count and opamp count with the given
// weights — a simple example of the "user-defined cost functions" the
// paper leaves open.
func WeightedCost(wConfigs, wOpamps float64) CostFunction {
	return CostFunction{
		Name: fmt.Sprintf("weighted (%.3g·configs + %.3g·opamps)", wConfigs, wOpamps),
		Cost: func(c *Candidate) float64 {
			return wConfigs*float64(c.NumConfigs) + wOpamps*float64(c.NumOpamps)
		},
	}
}

// Result is the output of Optimize.
type Result struct {
	// Expr is ξ — the covering expression over matrix rows.
	Expr *boolexpr.Expr
	// EssentialRows are the rows of essential configurations (must appear
	// in every solution).
	EssentialRows []int
	// Reduced is ξ_compl — the expression left after essential rows.
	Reduced *boolexpr.Expr
	// SOP is the absorbed sum-of-products of ξ; every term is a candidate.
	SOP *boolexpr.SOP
	// Candidates are all maximum-coverage configuration sets, in SOP term
	// order (fewest configurations first).
	Candidates []Candidate
	// Undetectable lists fault IDs not detectable in any configuration.
	Undetectable []string
	// MaxCoverage is the maximum achievable fault coverage (fraction).
	MaxCoverage float64
	// CostName records the 2nd-order requirement used.
	CostName string
	// BestByCost are the minimum-cost candidates before the 3rd-order
	// tie-break.
	BestByCost []Candidate
	// Best is the final selection after the ω-detectability tie-break.
	Best *Candidate
}

// FollowerOpampsOf returns the opamps in follower mode under cfg given the
// chain (bit i of the configuration index ⇒ chain[i]).
func FollowerOpampsOf(cfg dft.Configuration, chain []string) []string {
	var out []string
	for i, name := range chain {
		if cfg.Follower(i) {
			out = append(out, name)
		}
	}
	return out
}

// buildCandidate assembles a Candidate from matrix rows.
func buildCandidate(mx *detect.Matrix, chain []string, rows []int) Candidate {
	sorted := append([]int(nil), rows...)
	sort.Ints(sorted)
	var labels []string
	opampSet := map[string]bool{}
	for _, i := range sorted {
		labels = append(labels, mx.Configs[i].Label())
		for _, op := range FollowerOpampsOf(mx.Configs[i], chain) {
			opampSet[op] = true
		}
	}
	var opamps []string
	for _, name := range chain {
		if opampSet[name] {
			opamps = append(opamps, name)
		}
	}
	return Candidate{
		Rows:        sorted,
		Labels:      labels,
		Coverage:    mx.CoverageOf(sorted),
		AvgOmegaDet: mx.AvgBestOmega(sorted),
		NumConfigs:  len(sorted),
		Opamps:      opamps,
		NumOpamps:   len(opamps),
	}
}

// Optimize runs the full §4 pipeline on a detectability matrix. chain maps
// configuration bits to opamp names (needed for opamp-count costs; it may
// be nil when cost never reads Opamps). The cost function is the 2nd-order
// requirement; the 3rd-order tie-break (maximum average ω-detectability)
// and a final lexicographic tie-break make the result deterministic. New
// code should prefer OptimizeContext, which supports cancellation.
func Optimize(mx *detect.Matrix, chain []string, cost CostFunction) (*Result, error) {
	return OptimizeContext(context.Background(), mx, chain, cost)
}

// OptimizeContext is Optimize with cancellation: the Petrick expansion —
// the only part of the pipeline that can blow up combinatorially — polls
// ctx between clauses and between product-term batches, so an in-flight
// optimization abandons the expansion promptly (returning ctx's error)
// when the caller cancels.
func OptimizeContext(ctx context.Context, mx *detect.Matrix, chain []string, cost CostFunction) (*Result, error) {
	if cost.Cost == nil {
		cost = ConfigCountCost
	}
	expr, undetCols, err := boolexpr.FromMatrix(mx.Det, mx.Faults.IDs())
	if err != nil {
		return nil, err
	}
	var undetectable []string
	for _, j := range undetCols {
		undetectable = append(undetectable, mx.Faults[j].ID)
	}

	ess := expr.Essential()
	reduced := expr.ReduceBy(ess)
	sop, err := reduced.PetrickContext(ctx, 0)
	if err != nil {
		return nil, err
	}
	full := sop.WithRequired(ess)
	if len(full.Terms) == 0 {
		return nil, ErrNoSolution
	}

	res := &Result{
		Expr:          expr,
		EssentialRows: boolexpr.Bits(ess),
		Reduced:       reduced,
		SOP:           full,
		Undetectable:  undetectable,
		MaxCoverage:   mx.FaultCoverage(),
		CostName:      cost.Name,
	}
	for _, term := range full.Terms {
		res.Candidates = append(res.Candidates, buildCandidate(mx, chain, boolexpr.Bits(term)))
	}

	// 2nd order: keep the minimum-cost candidates.
	minCost := math.Inf(1)
	for i := range res.Candidates {
		if c := cost.Cost(&res.Candidates[i]); c < minCost {
			minCost = c
		}
	}
	for i := range res.Candidates {
		if cost.Cost(&res.Candidates[i]) == minCost {
			res.BestByCost = append(res.BestByCost, res.Candidates[i])
		}
	}

	// 3rd order: maximum average ω-detectability; final lexicographic
	// tie-break on rows.
	best := res.BestByCost[0]
	for _, c := range res.BestByCost[1:] {
		switch {
		case c.AvgOmegaDet > best.AvgOmegaDet:
			best = c
		case c.AvgOmegaDet == best.AvgOmegaDet && lexLessInts(c.Rows, best.Rows):
			best = c
		}
	}
	res.Best = &best
	return res, nil
}

func lexLessInts(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// OpampResult is the output of OptimizeOpamps (§4.3).
type OpampResult struct {
	// XiStar is ξ* — the SOP mapped into opamp space and absorbed.
	XiStar *boolexpr.SOP
	// OpampSets are the minimal configurable-opamp alternatives.
	OpampSets [][]string
	// Chosen is the selected opamp set after the 3rd-order tie-break.
	Chosen []string
	// UsableRows are the matrix rows emulatable with the chosen opamps
	// (every follower opamp of the row is configurable).
	UsableRows []int
	// UsableLabels are the labels of UsableRows.
	UsableLabels []string
	// Coverage is the fault coverage achieved by the usable rows.
	Coverage float64
	// AvgOmegaDet is the best-case ⟨ω-det⟩ over the usable rows — §4.3
	// uses all of them, which maximizes the 3rd-order requirement.
	AvgOmegaDet float64
}

// OptimizeOpamps runs the §4.3 partial-DFT optimization: find the smallest
// set of opamps to make configurable such that some maximum-coverage
// configuration set remains emulatable, then use every configuration that
// set of opamps permits (the ω-detectability-maximal choice).
func OptimizeOpamps(mx *detect.Matrix, chain []string) (*OpampResult, error) {
	if len(chain) == 0 || len(chain) > boolexpr.MaxLiterals {
		return nil, fmt.Errorf("core: bad chain length %d", len(chain))
	}
	base, err := Optimize(mx, chain, ConfigCountCost)
	if err != nil {
		return nil, err
	}
	opampIdx := make(map[string]int, len(chain))
	for i, name := range chain {
		opampIdx[name] = i
	}
	// Map SOP literals (matrix rows) to opamp masks.
	xiStar := base.SOP.MapLiterals(len(chain), func(row int) uint64 {
		var m uint64
		for _, op := range FollowerOpampsOf(mx.Configs[row], chain) {
			m |= 1 << uint(opampIdx[op])
		}
		return m
	})
	minimal := xiStar.Minimal()
	if len(minimal) == 0 {
		return nil, ErrNoSolution
	}

	res := &OpampResult{XiStar: xiStar}
	type choice struct {
		mask  uint64
		names []string
		rows  []int
		avg   float64
	}
	var choices []choice
	for _, m := range minimal {
		var names []string
		for _, b := range boolexpr.Bits(m) {
			names = append(names, chain[b])
		}
		var rows []int
		for i, cfg := range mx.Configs {
			var fm uint64
			for _, op := range FollowerOpampsOf(cfg, chain) {
				fm |= 1 << uint(opampIdx[op])
			}
			if fm&^m == 0 { // follower set ⊆ chosen opamps
				rows = append(rows, i)
			}
		}
		choices = append(choices, choice{mask: m, names: names, rows: rows, avg: mx.AvgBestOmega(rows)})
		res.OpampSets = append(res.OpampSets, names)
	}
	// 3rd order among minimal opamp sets: max ⟨ω-det⟩, then smallest mask.
	best := choices[0]
	for _, c := range choices[1:] {
		if c.avg > best.avg || (c.avg == best.avg && c.mask < best.mask) {
			best = c
		}
	}
	res.Chosen = best.names
	res.UsableRows = best.rows
	for _, i := range best.rows {
		res.UsableLabels = append(res.UsableLabels, mx.Configs[i].Label())
	}
	res.Coverage = mx.CoverageOf(best.rows)
	res.AvgOmegaDet = best.avg
	return res, nil
}

// Baseline summarizes the brute-force application of the technique: every
// configuration permitted, best-case testing (§3.2 / Graph 2).
type Baseline struct {
	Rows        []int
	Coverage    float64
	AvgOmegaDet float64
	NumConfigs  int
}

// BruteForce evaluates the all-configurations baseline on a matrix.
func BruteForce(mx *detect.Matrix) *Baseline {
	rows := make([]int, mx.NumConfigs())
	for i := range rows {
		rows[i] = i
	}
	return &Baseline{
		Rows:        rows,
		Coverage:    mx.FaultCoverage(),
		AvgOmegaDet: mx.AvgBestOmega(rows),
		NumConfigs:  len(rows),
	}
}

// GreedySolution runs the greedy set-cover heuristic on the matrix and
// wraps it as a Candidate — the scalable baseline used by the ablation
// benchmarks.
func GreedySolution(mx *detect.Matrix, chain []string) (*Candidate, error) {
	rows, err := boolexpr.GreedyCover(mx.Det)
	if err != nil {
		return nil, err
	}
	c := buildCandidate(mx, chain, rows)
	return &c, nil
}

// ExactMinSolution runs the exact branch-and-bound minimum cover (unit
// cost) and wraps it as a Candidate. Unlike Optimize it does not
// enumerate all alternatives, so it scales to larger matrices.
func ExactMinSolution(mx *detect.Matrix, chain []string) (*Candidate, error) {
	rows, err := boolexpr.MinCover(mx.Det, nil)
	if err != nil {
		return nil, err
	}
	c := buildCandidate(mx, chain, rows)
	return &c, nil
}
