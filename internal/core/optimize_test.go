package core

import (
	"math"
	"testing"

	"analogdft/internal/boolexpr"
	"analogdft/internal/detect"
	"analogdft/internal/dft"
	"analogdft/internal/fault"
	"analogdft/internal/paperdata"
)

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestOptimizePaperSection42 reproduces §4.1–§4.2 of the paper exactly.
func TestOptimizePaperSection42(t *testing.T) {
	mx := paperdata.Matrix()
	res, err := Optimize(mx, paperdata.OpampNames, ConfigCountCost)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Undetectable) != 0 {
		t.Fatalf("undetectable = %v", res.Undetectable)
	}
	if res.MaxCoverage != 1 {
		t.Fatalf("max coverage = %g", res.MaxCoverage)
	}
	// Essential configuration: C2 (row 2).
	if !equalInts(res.EssentialRows, []int{2}) {
		t.Fatalf("essential rows = %v, want [2]", res.EssentialRows)
	}
	// ξ_compl has two clauses (fR3, fC2).
	if len(res.Reduced.Clauses) != 2 {
		t.Fatalf("reduced clauses = %d", len(res.Reduced.Clauses))
	}
	// Absorbed SOP: C1·C2 + C2·C5.
	if len(res.Candidates) != 2 {
		t.Fatalf("candidates = %d", len(res.Candidates))
	}
	if !equalStrings(res.Candidates[0].Labels, []string{"C1", "C2"}) ||
		!equalStrings(res.Candidates[1].Labels, []string{"C2", "C5"}) {
		t.Fatalf("candidates = %v, %v", res.Candidates[0].Labels, res.Candidates[1].Labels)
	}
	// Both candidates reach full coverage with 2 configurations.
	for _, c := range res.Candidates {
		if c.Coverage != 1 || c.NumConfigs != 2 {
			t.Fatalf("candidate %v: coverage=%g configs=%d", c.Labels, c.Coverage, c.NumConfigs)
		}
	}
	// 2nd order keeps both; 3rd order picks {C2, C5} at 32.5% over
	// {C1, C2} at 30%.
	if len(res.BestByCost) != 2 {
		t.Fatalf("best-by-cost = %d", len(res.BestByCost))
	}
	if !equalStrings(res.Best.Labels, paperdata.OptimalConfigSet) {
		t.Fatalf("best = %v, want %v", res.Best.Labels, paperdata.OptimalConfigSet)
	}
	if math.Abs(res.Best.AvgOmegaDet-paperdata.OptimizedAvgOmegaDet) > 1e-9 {
		t.Fatalf("⟨ω-det⟩ = %g, want %g", res.Best.AvgOmegaDet, paperdata.OptimizedAvgOmegaDet)
	}
	// The alternative set's ω-det matches the paper, too.
	alt := res.Candidates[0]
	if math.Abs(alt.AvgOmegaDet-paperdata.AlternativeAvgOmegaDet) > 1e-9 {
		t.Fatalf("{C1,C2} ⟨ω-det⟩ = %g, want %g", alt.AvgOmegaDet, paperdata.AlternativeAvgOmegaDet)
	}
}

// TestOptimizeOpampCost reproduces the 2nd-order choice of §4.3 when
// driven through the generic cost interface.
func TestOptimizeOpampCost(t *testing.T) {
	mx := paperdata.Matrix()
	res, err := Optimize(mx, paperdata.OpampNames, OpampCountCost)
	if err != nil {
		t.Fatal(err)
	}
	// Candidate {C1,C2} needs OP1+OP2 (2 opamps); {C2,C5} needs all three.
	if !equalStrings(res.Best.Labels, []string{"C1", "C2"}) {
		t.Fatalf("best by opamp count = %v", res.Best.Labels)
	}
	if !equalStrings(res.Best.Opamps, []string{"OP1", "OP2"}) || res.Best.NumOpamps != 2 {
		t.Fatalf("opamps = %v", res.Best.Opamps)
	}
}

// TestOptimizeOpampsPaperSection43 reproduces §4.3 exactly.
func TestOptimizeOpampsPaperSection43(t *testing.T) {
	mx := paperdata.Matrix()
	res, err := OptimizeOpamps(mx, paperdata.OpampNames)
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(res.Chosen, paperdata.OptimalOpampSet) {
		t.Fatalf("chosen opamps = %v, want %v", res.Chosen, paperdata.OptimalOpampSet)
	}
	if len(res.OpampSets) != 1 {
		t.Fatalf("minimal opamp sets = %v", res.OpampSets)
	}
	// Usable configurations: C0, C1, C2, C3 (Table 4).
	if !equalStrings(res.UsableLabels, []string{"C0", "C1", "C2", "C3"}) {
		t.Fatalf("usable = %v", res.UsableLabels)
	}
	if res.Coverage != 1 {
		t.Fatalf("coverage = %g", res.Coverage)
	}
	if math.Abs(res.AvgOmegaDet-paperdata.PartialDFTAvgOmegaDet) > 1e-9 {
		t.Fatalf("⟨ω-det⟩ = %g, want %g", res.AvgOmegaDet, paperdata.PartialDFTAvgOmegaDet)
	}
	// ξ*'s minimal term is OP1·OP2.
	min := res.XiStar.Minimal()
	if len(min) != 1 || min[0] != boolexpr.MaskOf(0, 1) {
		t.Fatalf("ξ* minimal = %v", min)
	}
}

func TestBruteForcePaper(t *testing.T) {
	mx := paperdata.Matrix()
	b := BruteForce(mx)
	if b.NumConfigs != 7 || b.Coverage != 1 {
		t.Fatalf("baseline = %+v", b)
	}
	if math.Abs(b.AvgOmegaDet-paperdata.BruteForceAvgOmegaDet) > 1e-9 {
		t.Fatalf("brute-force ⟨ω-det⟩ = %g, want %g", b.AvgOmegaDet, paperdata.BruteForceAvgOmegaDet)
	}
}

func TestGreedyAndExactOnPaper(t *testing.T) {
	mx := paperdata.Matrix()
	g, err := GreedySolution(mx, paperdata.OpampNames)
	if err != nil {
		t.Fatal(err)
	}
	e, err := ExactMinSolution(mx, paperdata.OpampNames)
	if err != nil {
		t.Fatal(err)
	}
	if g.Coverage != 1 || e.Coverage != 1 {
		t.Fatalf("coverages: greedy %g exact %g", g.Coverage, e.Coverage)
	}
	if e.NumConfigs != 2 {
		t.Fatalf("exact size = %d", e.NumConfigs)
	}
	if g.NumConfigs < e.NumConfigs {
		t.Fatal("greedy beat exact")
	}
}

func TestWeightedCost(t *testing.T) {
	mx := paperdata.Matrix()
	// Heavily weight opamps: must behave like OpampCountCost.
	res, err := Optimize(mx, paperdata.OpampNames, WeightedCost(0.01, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(res.Best.Labels, []string{"C1", "C2"}) {
		t.Fatalf("weighted best = %v", res.Best.Labels)
	}
	// Heavily weight configurations: both candidates tie at 2 configs, so
	// opamp weight breaks the tie towards {C1,C2}; with zero opamp weight
	// the ω-det tie-break picks {C2,C5}.
	res, err = Optimize(mx, paperdata.OpampNames, WeightedCost(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(res.Best.Labels, []string{"C2", "C5"}) {
		t.Fatalf("config-weighted best = %v", res.Best.Labels)
	}
	if WeightedCost(1, 2).Name == "" {
		t.Fatal("cost name empty")
	}
}

func TestOptimizeDefaultsToConfigCount(t *testing.T) {
	mx := paperdata.Matrix()
	res, err := Optimize(mx, paperdata.OpampNames, CostFunction{})
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(res.Best.Labels, []string{"C2", "C5"}) {
		t.Fatalf("default-cost best = %v", res.Best.Labels)
	}
}

func TestOptimizeUndetectableFaults(t *testing.T) {
	mx := paperdata.Matrix()
	// Add an undetectable fault column.
	mx.Faults = append(mx.Faults, fault.Fault{ID: "fX", Component: "X", Kind: fault.Deviation, Factor: 1.2})
	for i := range mx.Det {
		mx.Det[i] = append(mx.Det[i], false)
		mx.Omega[i] = append(mx.Omega[i], 0)
	}
	res, err := Optimize(mx, paperdata.OpampNames, ConfigCountCost)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Undetectable) != 1 || res.Undetectable[0] != "fX" {
		t.Fatalf("undetectable = %v", res.Undetectable)
	}
	// Coverage caps below 1 but the optimization still succeeds.
	if res.MaxCoverage >= 1 || res.Best == nil {
		t.Fatalf("max coverage = %g", res.MaxCoverage)
	}
	if !equalStrings(res.Best.Labels, []string{"C2", "C5"}) {
		t.Fatalf("best = %v", res.Best.Labels)
	}
}

func TestOptimizePartialMatrix(t *testing.T) {
	// On the Table 4 matrix the minimal cover is {C1(10-), C2(01-)}:
	// fC1 needs 01-, fC2 needs 10-.
	mx := paperdata.PartialMatrix()
	res, err := Optimize(mx, []string{"OP1", "OP2"}, ConfigCountCost)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxCoverage != 1 {
		t.Fatalf("partial max coverage = %g", res.MaxCoverage)
	}
	if !equalStrings(res.Best.Labels, []string{"C1", "C2"}) {
		t.Fatalf("partial best = %v", res.Best.Labels)
	}
}

func TestFollowerOpampsOf(t *testing.T) {
	cfg := dft.Configuration{Index: 5, N: 3}
	got := FollowerOpampsOf(cfg, []string{"A", "B", "C"})
	if !equalStrings(got, []string{"A", "C"}) {
		t.Fatalf("followers = %v", got)
	}
	if FollowerOpampsOf(dft.Configuration{Index: 0, N: 3}, []string{"A"}) != nil {
		t.Fatal("C0 should have no followers")
	}
}

func TestCandidateString(t *testing.T) {
	mx := paperdata.Matrix()
	res, _ := Optimize(mx, paperdata.OpampNames, ConfigCountCost)
	if s := res.Best.String(); s == "" {
		t.Fatal("empty candidate string")
	}
}

func TestOptimizeEmptyMatrix(t *testing.T) {
	mx := &detect.Matrix{}
	if _, err := Optimize(mx, nil, ConfigCountCost); err == nil {
		t.Fatal("empty matrix accepted")
	}
}

func TestOptimizeOpampsBadChain(t *testing.T) {
	mx := paperdata.Matrix()
	if _, err := OptimizeOpamps(mx, nil); err == nil {
		t.Fatal("nil chain accepted")
	}
}

func TestLexLessInts(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{[]int{1, 2}, []int{2, 5}, true},
		{[]int{2, 5}, []int{1, 2}, false},
		{[]int{1, 2}, []int{1, 2, 3}, true},
		{[]int{1, 2, 3}, []int{1, 2}, false},
		{[]int{1, 2}, []int{1, 2}, false},
	}
	for _, c := range cases {
		if got := lexLessInts(c.a, c.b); got != c.want {
			t.Errorf("lexLessInts(%v, %v) = %v", c.a, c.b, got)
		}
	}
}

func TestBuildCandidateNilChain(t *testing.T) {
	// Without a chain mapping, candidates simply carry no opamp info.
	mx := paperdata.Matrix()
	c := buildCandidate(mx, nil, []int{2, 1})
	if c.NumOpamps != 0 || len(c.Opamps) != 0 {
		t.Fatalf("nil-chain candidate opamps = %v", c.Opamps)
	}
	if c.Rows[0] != 1 || c.Rows[1] != 2 {
		t.Fatalf("rows not sorted: %v", c.Rows)
	}
	if c.Labels[0] != "C1" || c.Labels[1] != "C2" {
		t.Fatalf("labels = %v", c.Labels)
	}
}

func TestOptimizeAllCandidatesKeepMaxCoverage(t *testing.T) {
	mx := paperdata.Matrix()
	res, err := Optimize(mx, paperdata.OpampNames, ConfigCountCost)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		if c.Coverage != res.MaxCoverage {
			t.Fatalf("candidate %v coverage %g != max %g", c.Labels, c.Coverage, res.MaxCoverage)
		}
	}
	// The SOP and candidate counts agree.
	if len(res.SOP.Terms) != len(res.Candidates) {
		t.Fatal("SOP terms and candidates diverge")
	}
}

func TestOptimizeOpampsXiStarFormat(t *testing.T) {
	mx := paperdata.Matrix()
	res, err := OptimizeOpamps(mx, paperdata.OpampNames)
	if err != nil {
		t.Fatal(err)
	}
	got := res.XiStar.Format(func(i int) string { return paperdata.OpampNames[i] })
	if got != "OP1·OP2" {
		t.Fatalf("ξ* = %q", got)
	}
}
