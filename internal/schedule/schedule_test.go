package schedule

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"analogdft/internal/dft"
)

func cfg(idx, n int) dft.Configuration { return dft.Configuration{Index: idx, N: n} }

func items(n int, idxs ...int) []Item {
	out := make([]Item, len(idxs))
	for i, idx := range idxs {
		out[i] = Item{Config: cfg(idx, n), Freqs: []float64{1e3}}
	}
	return out
}

func TestHamming(t *testing.T) {
	if hamming(cfg(0b001, 3), cfg(0b010, 3)) != 2 {
		t.Fatal("hamming 001↔010")
	}
	if hamming(cfg(5, 3), cfg(5, 3)) != 0 {
		t.Fatal("self distance")
	}
}

func TestBuildKnownOptimal(t *testing.T) {
	// From 000, visiting {001, 010, 011}: optimal is a Gray walk
	// 000→001→011→010 = 1+1+1 = 3 toggles. The naive ascending order
	// 001, 010, 011 costs 1+2+1 = 4.
	its := items(3, 1, 2, 3)
	p, err := Build(its, cfg(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Exact {
		t.Fatal("small program should be exact")
	}
	if got := p.TotalToggles(); got != 3 {
		t.Fatalf("toggles = %d, want 3", got)
	}
	if naive := NaiveToggles(its, cfg(0, 3)); naive != 4 {
		t.Fatalf("naive = %d, want 4", naive)
	}
	// The Gray walk: first step must be a 1-toggle neighbour of 000.
	if p.Steps[0].TogglesIn != 1 {
		t.Fatalf("first step toggles = %d", p.Steps[0].TogglesIn)
	}
}

func TestBuildPaperOptimalSet(t *testing.T) {
	// The paper's optimized set {C2, C5} from C0: distances
	// 000→010 = 1, 010→101 = 3; or 000→101 = 2, 101→010 = 3.
	// Optimal: C2 first, total 4.
	p, err := Build(items(3, 2, 5), cfg(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalToggles() != 4 {
		t.Fatalf("toggles = %d, want 4", p.TotalToggles())
	}
	if p.Steps[0].Config.Index != 2 {
		t.Fatalf("first config = %v, want C2", p.Steps[0].Config)
	}
}

func TestBuildSortsFrequencies(t *testing.T) {
	its := []Item{{Config: cfg(1, 2), Freqs: []float64{5e3, 1e2, 2e3}}}
	p, err := Build(its, cfg(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	f := p.Steps[0].Freqs
	if f[0] != 1e2 || f[1] != 2e3 || f[2] != 5e3 {
		t.Fatalf("freqs = %v", f)
	}
	// The input must not be reordered in place... (defensive copy)
	if its[0].Freqs[0] != 5e3 {
		t.Fatal("input mutated")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, cfg(0, 3)); !errors.Is(err, ErrBadProgram) {
		t.Error("empty accepted")
	}
	if _, err := Build(items(2, 1), cfg(0, 3)); !errors.Is(err, ErrBadProgram) {
		t.Error("width mismatch accepted")
	}
	if _, err := Build(items(3, 1, 1), cfg(0, 3)); !errors.Is(err, ErrBadProgram) {
		t.Error("duplicate accepted")
	}
}

func TestProgramAccounting(t *testing.T) {
	its := []Item{
		{Config: cfg(1, 3), Freqs: []float64{1, 2}},
		{Config: cfg(3, 3), Freqs: []float64{3}},
	}
	p, err := Build(its, cfg(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalMeasurements() != 3 {
		t.Fatalf("measurements = %d", p.TotalMeasurements())
	}
	// 0→1→3 is 1+1 toggles.
	if p.TotalToggles() != 2 {
		t.Fatalf("toggles = %d", p.TotalToggles())
	}
	// Time = 2·10 + 3·1 + 3·2 = 29.
	if got := p.Time(10, 1, 2); got != 29 {
		t.Fatalf("time = %g", got)
	}
}

func TestGreedyFallbackForLargePrograms(t *testing.T) {
	// 17 items exceed MaxExact.
	var its []Item
	for i := 1; i <= 17; i++ {
		its = append(its, Item{Config: cfg(i, 5), Freqs: []float64{1}})
	}
	p, err := Build(its, cfg(0, 5))
	if err != nil {
		t.Fatal(err)
	}
	if p.Exact {
		t.Fatal("large program claims exactness")
	}
	if len(p.Steps) != 17 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	// Every item appears exactly once.
	seen := map[int]bool{}
	for _, s := range p.Steps {
		if seen[s.Config.Index] {
			t.Fatal("duplicate step")
		}
		seen[s.Config.Index] = true
	}
}

// Property: the exact order never costs more than the naive order or the
// greedy order, and covers every item exactly once.
func TestExactBeatsNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3) // 3..5 selection lines
		count := 2 + rng.Intn(6)
		perm := rng.Perm(1 << uint(n))
		var its []Item
		for _, idx := range perm {
			if idx == 0 {
				continue
			}
			its = append(its, Item{Config: cfg(idx, n), Freqs: []float64{1}})
			if len(its) == count {
				break
			}
		}
		start := cfg(0, n)
		p, err := Build(its, start)
		if err != nil {
			return false
		}
		if len(p.Steps) != len(its) {
			return false
		}
		if p.TotalToggles() > NaiveToggles(its, start) {
			return false
		}
		seen := map[int]bool{}
		for _, s := range p.Steps {
			if seen[s.Config.Index] {
				return false
			}
			seen[s.Config.Index] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
