// Package schedule orders a multi-configuration test program to minimize
// test time — the concrete version of the paper's §4.2 cost function.
// Switching a configuration means toggling selection lines and waiting for
// the analog network to settle, so the dominant ordering cost is the
// Hamming distance between consecutive configuration vectors. The package
// finds the minimum-toggle ordering (exact Held–Karp dynamic program for
// up to 16 configurations, greedy beyond) starting from the functional
// configuration the device powers up in, and prices the resulting program
// with a simple toggle/retune/measure time model.
package schedule

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"analogdft/internal/dft"
)

// ErrBadProgram is returned for malformed scheduling inputs.
var ErrBadProgram = errors.New("schedule: bad program")

// MaxExact is the largest item count the exact Held–Karp ordering
// handles; larger programs fall back to the greedy nearest-neighbour
// order.
const MaxExact = 16

// Item is one test step to schedule: a configuration and the test
// frequencies to apply in it.
type Item struct {
	Config dft.Configuration
	Freqs  []float64
}

// Step is a scheduled item.
type Step struct {
	Config dft.Configuration
	// Freqs are applied in ascending order (monotone synthesizer sweeps
	// settle fastest).
	Freqs []float64
	// TogglesIn is the number of selection lines toggled entering this
	// step.
	TogglesIn int
}

// Program is an ordered test program.
type Program struct {
	// Start is the configuration the program begins from (not measured).
	Start dft.Configuration
	Steps []Step
	// Exact reports whether the ordering is provably toggle-minimal.
	Exact bool
}

// TotalToggles sums selection-line toggles across the program.
func (p *Program) TotalToggles() int {
	n := 0
	for _, s := range p.Steps {
		n += s.TogglesIn
	}
	return n
}

// TotalMeasurements counts frequency measurements.
func (p *Program) TotalMeasurements() int {
	n := 0
	for _, s := range p.Steps {
		n += len(s.Freqs)
	}
	return n
}

// Time prices the program: togglCost per selection-line toggle, plus
// retuneCost per frequency change (the first frequency of a step counts),
// plus measCost per measurement.
func (p *Program) Time(toggleCost, retuneCost, measCost float64) float64 {
	return toggleCost*float64(p.TotalToggles()) +
		retuneCost*float64(p.TotalMeasurements()) +
		measCost*float64(p.TotalMeasurements())
}

// hamming returns the selection-line Hamming distance between two
// configurations of the same chain.
func hamming(a, b dft.Configuration) int {
	return bits.OnesCount64(uint64(a.Index) ^ uint64(b.Index))
}

// Build orders the items to minimize total toggles starting from start.
// Items must share the configuration width with start and be unique.
func Build(items []Item, start dft.Configuration) (*Program, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("%w: no items", ErrBadProgram)
	}
	seen := make(map[int]bool, len(items))
	for _, it := range items {
		if it.Config.N != start.N {
			return nil, fmt.Errorf("%w: %v has width %d, start has %d", ErrBadProgram, it.Config, it.Config.N, start.N)
		}
		if seen[it.Config.Index] {
			return nil, fmt.Errorf("%w: duplicate configuration %v", ErrBadProgram, it.Config)
		}
		seen[it.Config.Index] = true
	}

	var order []int
	exact := len(items) <= MaxExact
	if exact {
		order = heldKarp(items, start)
	} else {
		order = greedy(items, start)
	}

	p := &Program{Start: start, Exact: exact}
	prev := start
	for _, idx := range order {
		it := items[idx]
		freqs := append([]float64(nil), it.Freqs...)
		sort.Float64s(freqs)
		p.Steps = append(p.Steps, Step{
			Config:    it.Config,
			Freqs:     freqs,
			TogglesIn: hamming(prev, it.Config),
		})
		prev = it.Config
	}
	return p, nil
}

// heldKarp computes the exact minimum-toggle path over all items (open
// path TSP from start). Ties break towards lexicographically smallest
// visit order.
func heldKarp(items []Item, start dft.Configuration) []int {
	n := len(items)
	full := (1 << uint(n)) - 1
	const inf = math.MaxInt32
	// dp[mask][i]: min toggles to visit the set mask ending at item i.
	dp := make([][]int, full+1)
	parent := make([][]int, full+1)
	for m := range dp {
		dp[m] = make([]int, n)
		parent[m] = make([]int, n)
		for i := range dp[m] {
			dp[m][i] = inf
			parent[m][i] = -1
		}
	}
	for i := 0; i < n; i++ {
		dp[1<<uint(i)][i] = hamming(start, items[i].Config)
	}
	for mask := 1; mask <= full; mask++ {
		for last := 0; last < n; last++ {
			if mask&(1<<uint(last)) == 0 || dp[mask][last] == inf {
				continue
			}
			for next := 0; next < n; next++ {
				if mask&(1<<uint(next)) != 0 {
					continue
				}
				nm := mask | 1<<uint(next)
				cost := dp[mask][last] + hamming(items[last].Config, items[next].Config)
				if cost < dp[nm][next] || (cost == dp[nm][next] && last < parent[nm][next]) {
					dp[nm][next] = cost
					parent[nm][next] = last
				}
			}
		}
	}
	// Best endpoint.
	bestEnd, bestCost := 0, dp[full][0]
	for i := 1; i < n; i++ {
		if dp[full][i] < bestCost {
			bestEnd, bestCost = i, dp[full][i]
		}
	}
	// Reconstruct.
	order := make([]int, 0, n)
	mask, cur := full, bestEnd
	for cur >= 0 && mask != 0 {
		order = append(order, cur)
		p := parent[mask][cur]
		mask &^= 1 << uint(cur)
		cur = p
	}
	// Reverse.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// greedy is the nearest-neighbour fallback for large programs.
func greedy(items []Item, start dft.Configuration) []int {
	n := len(items)
	used := make([]bool, n)
	order := make([]int, 0, n)
	prev := start
	for len(order) < n {
		best, bestD := -1, math.MaxInt32
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if d := hamming(prev, items[i].Config); d < bestD {
				best, bestD = i, d
			}
		}
		used[best] = true
		order = append(order, best)
		prev = items[best].Config
	}
	return order
}

// NaiveToggles returns the toggle count of applying the items in their
// given order from start — the baseline the optimizer is compared with.
func NaiveToggles(items []Item, start dft.Configuration) int {
	total := 0
	prev := start
	for _, it := range items {
		total += hamming(prev, it.Config)
		prev = it.Config
	}
	return total
}
