package testgen

import (
	"errors"
	"sort"
	"testing"

	"analogdft/internal/analysis"
	"analogdft/internal/circuit"
	"analogdft/internal/detect"
	"analogdft/internal/dft"
	"analogdft/internal/fault"
)

func rcLowpass() *circuit.Circuit {
	c := circuit.New("rc")
	c.R("R1", "in", "out", 1e3)
	c.Cap("C1", "out", "0", 100e-9)
	c.Input, c.Output = "in", "out"
	return c
}

func cascade3() *circuit.Circuit {
	c := circuit.New("cascade3")
	c.R("R1", "in", "s1", 1e3)
	c.R("R2", "s1", "v1", 1e3)
	c.OA("OP1", "0", "s1", "v1")
	c.R("R3", "v1", "s2", 1e3)
	c.R("R4", "s2", "v2", 1e3)
	c.OA("OP2", "0", "s2", "v2")
	c.R("R5", "v2", "s3", 1e3)
	c.R("R6", "s3", "v3", 1e3)
	c.OA("OP3", "0", "s3", "v3")
	c.Input, c.Output = "in", "v3"
	return c
}

var rcRegion = analysis.Region{LoHz: 10, HiHz: 1e6}

func TestMinimalFrequenciesRC(t *testing.T) {
	faults := fault.DeviationUniverse(rcLowpass(), 0.2)
	plan, err := MinimalFrequencies(rcLowpass(), faults, rcRegion, Options{Points: 81})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Uncovered) != 0 {
		t.Fatalf("uncovered = %v", plan.Uncovered)
	}
	if len(plan.Covered) != 2 {
		t.Fatalf("covered = %v", plan.Covered)
	}
	// Both faults shift the same corner: a single frequency suffices.
	if plan.NumFreqs() != 1 {
		t.Fatalf("plan size = %d, want 1 (freqs %v)", plan.NumFreqs(), plan.Freqs)
	}
	// The chosen frequency must be around/above the corner where the
	// deviation is measurable.
	if plan.Freqs[0] < 500 {
		t.Errorf("test frequency %g too low", plan.Freqs[0])
	}
	if len(plan.Detects[0]) != 2 {
		t.Errorf("detects = %v", plan.Detects)
	}
	if !sort.Float64sAreSorted(plan.Freqs) {
		t.Error("frequencies not ascending")
	}
}

func TestMinimalFrequenciesExact(t *testing.T) {
	faults := fault.DeviationUniverse(rcLowpass(), 0.2)
	plan, err := MinimalFrequencies(rcLowpass(), faults, rcRegion, Options{Points: 81, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumFreqs() != 1 {
		t.Fatalf("exact plan size = %d", plan.NumFreqs())
	}
}

func TestMinimalFrequenciesUncovered(t *testing.T) {
	// In the deep passband nothing deviates: all faults uncovered, empty
	// plan.
	faults := fault.DeviationUniverse(rcLowpass(), 0.2)
	plan, err := MinimalFrequencies(rcLowpass(), faults, analysis.Region{LoHz: 10, HiHz: 100}, Options{Points: 21})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Uncovered) != 2 || plan.NumFreqs() != 0 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestMinimalFrequenciesErrors(t *testing.T) {
	if _, err := MinimalFrequencies(rcLowpass(), nil, rcRegion, Options{}); !errors.Is(err, ErrNoFaults) {
		t.Errorf("empty faults: %v", err)
	}
	faults := fault.DeviationUniverse(rcLowpass(), 0.2)
	if _, err := MinimalFrequencies(rcLowpass(), faults, analysis.Region{LoHz: 5, HiHz: 1}, Options{}); err == nil {
		t.Error("bad region accepted")
	}
	bad := fault.List{{ID: "fX", Component: "nope", Kind: fault.Deviation, Factor: 1.2}}
	if _, err := MinimalFrequencies(rcLowpass(), bad, rcRegion, Options{Points: 11}); err == nil {
		t.Error("bad fault accepted")
	}
}

func TestPlanConfigurations(t *testing.T) {
	ckt := cascade3()
	m, err := dft.ApplyAll(ckt)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.DeviationUniverse(ckt, 0.2)
	region := analysis.Region{LoHz: 10, HiHz: 1e5}
	plans, err := PlanConfigurations(m, []int{0, 1}, faults, region, Options{Points: 31})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("plans = %d", len(plans))
	}
	// Functional config of the resistive cascade: every fault is a gain
	// fault, one frequency covers all six.
	if plans[0].NumFreqs() != 1 || len(plans[0].Covered) != 6 {
		t.Errorf("C0 plan: %d freqs, covered %v", plans[0].NumFreqs(), plans[0].Covered)
	}
	// C1 masks the first stage: fR1, fR2 uncovered there.
	found := map[string]bool{}
	for _, id := range plans[1].Uncovered {
		found[id] = true
	}
	if !found["fR1"] || !found["fR2"] {
		t.Errorf("C1 uncovered = %v", plans[1].Uncovered)
	}
	if _, err := PlanConfigurations(m, []int{99}, faults, region, Options{}); err == nil {
		t.Error("bad config index accepted")
	}
}

func TestTestTime(t *testing.T) {
	plans := []*Plan{
		{Freqs: []float64{1, 2}},
		{Freqs: []float64{3}},
	}
	// 2 switches · 10 + 3 freqs · 1 = 23.
	if got := TestTime(plans, 10, 1); got != 23 {
		t.Fatalf("TestTime = %g", got)
	}
}

func TestVerifyAgainstMatrix(t *testing.T) {
	ckt := cascade3()
	m, _ := dft.ApplyAll(ckt)
	faults := fault.DeviationUniverse(ckt, 0.2)
	region := analysis.Region{LoHz: 10, HiHz: 1e5}
	opts := detect.Options{Points: 31, Region: region}
	mx, err := detect.BuildMatrix(m, faults, opts)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := PlanConfigurations(m, []int{0}, faults, region, Options{Points: 31})
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 covers everything in this circuit; the C0 plan must too.
	if missing := VerifyAgainstMatrix(mx, []int{0}, plans); len(missing) != 0 {
		t.Fatalf("missing = %v", missing)
	}
	// Against rows {0,1} the single C0 plan still covers all faults (C0
	// detects everything here), so still consistent.
	if missing := VerifyAgainstMatrix(mx, []int{0, 1}, plans); len(missing) != 0 {
		t.Fatalf("missing = %v", missing)
	}
	// An empty plan set must report every detectable fault missing.
	if missing := VerifyAgainstMatrix(mx, []int{0}, nil); len(missing) != 6 {
		t.Fatalf("missing = %v", missing)
	}
}

func TestExactRowsDecimation(t *testing.T) {
	// 100 rows, 2 columns; only rows 10 and 90 detect anything.
	det := make([][]bool, 100)
	for i := range det {
		det[i] = make([]bool, 2)
	}
	det[10][0] = true
	det[90][1] = true
	rows, err := exactRows(det)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	// All-false matrix: empty cover.
	empty := make([][]bool, 10)
	for i := range empty {
		empty[i] = make([]bool, 2)
	}
	rows, err = exactRows(empty)
	if err != nil || len(rows) != 0 {
		t.Fatalf("empty: %v %v", rows, err)
	}
}
