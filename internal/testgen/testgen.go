// Package testgen implements frequency-domain test generation on top of
// the detectability analysis — the application the paper's §2 points at
// ("this parameter … can be very useful for automatic test generation
// procedures based on a frequency approach"). Given a circuit (one test
// configuration) and a fault list, it selects a small set of test
// frequencies such that every detectable fault deviates beyond ε at one
// of them — a second covering problem, solved greedily (and exactly for
// small candidate grids).
package testgen

import (
	"errors"
	"fmt"

	"analogdft/internal/analysis"
	"analogdft/internal/boolexpr"
	"analogdft/internal/circuit"
	"analogdft/internal/detect"
	"analogdft/internal/dft"
	"analogdft/internal/fault"
)

// ErrNoFaults is returned when the fault list is empty.
var ErrNoFaults = errors.New("testgen: empty fault list")

// Plan is a test plan for one circuit configuration: the chosen test
// frequencies and the faults each frequency detects.
type Plan struct {
	// Circuit names the configuration the plan was generated for.
	Circuit string
	// Freqs are the selected test frequencies (Hz), ascending.
	Freqs []float64
	// Detects[i] lists the fault IDs detected at Freqs[i].
	Detects [][]string
	// Covered lists every fault ID detectable in this configuration (all
	// of them are covered by the plan).
	Covered []string
	// Uncovered lists fault IDs not detectable at any grid frequency in
	// this configuration.
	Uncovered []string
}

// NumFreqs returns the plan size.
func (p *Plan) NumFreqs() int { return len(p.Freqs) }

// Options parameterizes plan generation; zero values inherit the
// detectability defaults (ε = 10%, 241 points, −80 dB floor).
type Options struct {
	Eps       float64
	Points    int
	MeasFloor float64
	// Exact requests the exact branch-and-bound cover; it requires a
	// candidate grid of at most 64 points after restriction to frequencies
	// that detect something, and falls back to greedy when that budget is
	// exceeded.
	Exact bool
}

func (o Options) withDefaults() Options {
	if o.Eps == 0 {
		o.Eps = 0.10
	}
	if o.Points == 0 {
		o.Points = 241
	}
	if o.MeasFloor == 0 {
		o.MeasFloor = 1e-4
	}
	if o.MeasFloor < 0 {
		o.MeasFloor = 0
	}
	return o
}

// MinimalFrequencies builds a plan for a fixed circuit over the region.
func MinimalFrequencies(ckt *circuit.Circuit, faults fault.List, region analysis.Region, opts Options) (*Plan, error) {
	opts = opts.withDefaults()
	if len(faults) == 0 {
		return nil, ErrNoFaults
	}
	if err := region.Validate(); err != nil {
		return nil, err
	}
	grid := region.Spec(opts.Points).Grid()
	nominal, err := analysis.SweepOnGrid(ckt, grid)
	if err != nil {
		return nil, err
	}
	// det[f][j]: fault j deviates beyond ε at grid point f.
	det := make([][]bool, len(grid))
	for i := range det {
		det[i] = make([]bool, len(faults))
	}
	for j, flt := range faults {
		faulty, err := flt.Apply(ckt)
		if err != nil {
			return nil, fmt.Errorf("testgen: fault %s: %w", flt.ID, err)
		}
		resp, err := analysis.SweepOnGrid(faulty, grid)
		if err != nil {
			return nil, err
		}
		prof, err := analysis.RelativeDeviation(nominal, resp, opts.MeasFloor)
		if err != nil {
			return nil, err
		}
		for _, i := range prof.ExceedsAt(opts.Eps) {
			det[i][j] = true
		}
	}
	return coverPlan(ckt.Name, grid, det, faults, opts)
}

// coverPlan solves the frequency set-cover over the boolean matrix.
func coverPlan(name string, grid []float64, det [][]bool, faults fault.List, opts Options) (*Plan, error) {
	plan := &Plan{Circuit: name}

	covered := make([]bool, len(faults))
	for i := range det {
		for j := range det[i] {
			if det[i][j] {
				covered[j] = true
			}
		}
	}
	for j, f := range faults {
		if covered[j] {
			plan.Covered = append(plan.Covered, f.ID)
		} else {
			plan.Uncovered = append(plan.Uncovered, f.ID)
		}
	}
	if len(plan.Covered) == 0 {
		return plan, nil
	}

	var rows []int
	var err error
	if opts.Exact {
		rows, err = exactRows(det)
		if err != nil {
			rows = nil // fall back to greedy below
		}
	}
	if rows == nil {
		rows, err = boolexpr.GreedyCover(det)
		if err != nil {
			return nil, err
		}
	}
	for _, i := range rows {
		plan.Freqs = append(plan.Freqs, grid[i])
		var ids []string
		for j := range faults {
			if det[i][j] {
				ids = append(ids, faults[j].ID)
			}
		}
		plan.Detects = append(plan.Detects, ids)
	}
	return plan, nil
}

// exactRows restricts the matrix to useful rows and runs the exact cover
// if it fits the 64-literal budget.
func exactRows(det [][]bool) ([]int, error) {
	var useful []int
	for i := range det {
		for _, d := range det[i] {
			if d {
				useful = append(useful, i)
				break
			}
		}
	}
	if len(useful) == 0 {
		return []int{}, nil
	}
	if len(useful) > boolexpr.MaxLiterals {
		// Decimate evenly down to the budget; greedy handles the rest.
		step := float64(len(useful)) / float64(boolexpr.MaxLiterals)
		var dec []int
		for k := 0; k < boolexpr.MaxLiterals; k++ {
			dec = append(dec, useful[int(float64(k)*step)])
		}
		useful = dec
	}
	sub := make([][]bool, len(useful))
	for k, i := range useful {
		sub[k] = det[i]
	}
	subRows, err := boolexpr.MinCover(sub, nil)
	if err != nil {
		return nil, err
	}
	// A decimated exact cover may miss faults only covered by dropped
	// rows; verify and reject if incomplete.
	if !boolexpr.CoverIsComplete(sub, subRows) {
		return nil, errors.New("testgen: decimated cover incomplete")
	}
	full := boolexpr.CoverIsComplete(det, mapRows(useful, subRows))
	if !full {
		return nil, errors.New("testgen: exact cover incomplete on full grid")
	}
	return mapRows(useful, subRows), nil
}

func mapRows(useful, subRows []int) []int {
	out := make([]int, len(subRows))
	for k, r := range subRows {
		out[k] = useful[r]
	}
	return out
}

// PlanConfigurations builds one plan per configuration of a DFT-modified
// circuit (for the given configuration indices) over a shared region —
// the complete test program for an optimized configuration set.
func PlanConfigurations(m *dft.Modified, cfgIndices []int, faults fault.List, region analysis.Region, opts Options) ([]*Plan, error) {
	var out []*Plan
	for _, idx := range cfgIndices {
		cfg, err := m.Config(idx)
		if err != nil {
			return nil, err
		}
		ckt, err := m.Configure(cfg)
		if err != nil {
			return nil, err
		}
		plan, err := MinimalFrequencies(ckt, faults, region, opts)
		if err != nil {
			return nil, fmt.Errorf("testgen: %s: %w", cfg, err)
		}
		plan.Circuit = ckt.Name
		out = append(out, plan)
	}
	return out, nil
}

// TestTime is a simple test-time model for a multi-configuration test
// program: each configuration switch costs switchCost, each test
// frequency costs freqCost (arbitrary units).
func TestTime(plans []*Plan, switchCost, freqCost float64) float64 {
	total := 0.0
	for _, p := range plans {
		total += switchCost + freqCost*float64(p.NumFreqs())
	}
	return total
}

// VerifyAgainstMatrix cross-checks a set of plans against a detectability
// matrix row subset: every fault marked detectable in the matrix rows must
// be covered by at least one plan. Returns the IDs of faults violating
// this (empty means consistent).
func VerifyAgainstMatrix(mx *detect.Matrix, rows []int, plans []*Plan) []string {
	plannedCover := make(map[string]bool)
	for _, p := range plans {
		for _, id := range p.Covered {
			plannedCover[id] = true
		}
	}
	var missing []string
	for j, f := range mx.Faults {
		detectable := false
		for _, i := range rows {
			if i >= 0 && i < len(mx.Det) && mx.Det[i][j] {
				detectable = true
				break
			}
		}
		if detectable && !plannedCover[f.ID] {
			missing = append(missing, f.ID)
		}
	}
	return missing
}
