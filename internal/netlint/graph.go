package netlint

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"analogdft/internal/circuit"
)

// maxChainForConfigChecks bounds the 2^n configuration enumeration of the
// NL013/NL014 checks. Chains longer than this get an info diagnostic
// instead of a silent skip.
const maxChainForConfigChecks = 12

// configGraph builds the directed signal-flow adjacency of the circuit
// under one DFT configuration. Nodes are canonical non-ground names;
// edges incident to ground are dropped (signal does not propagate through
// the reference node).
//
// Edge rules per element:
//   - R, C, L, V and I sources couple their two terminals both ways.
//   - VCVS/VCCS: control terminals feed the output terminals; the output
//     pair is coupled both ways.
//   - CCVS/CCCS: the nodes of the sensed voltage source feed the output
//     pair.
//   - Opamp in normal mode: both differential inputs feed the output
//     (the actual transfer runs through external feedback, which the
//     passive edges already model).
//   - Opamp in follower mode: only the test input feeds the output — the
//     differential inputs are ignored by the configurable opamp.
func (a *analysis) configGraph(follower map[string]bool, testIn map[string]string) map[string][]string {
	adj := make(map[string][]string)
	dir := func(from, to string) {
		f, t := circuit.CanonicalNode(from), circuit.CanonicalNode(to)
		if f == t || circuit.IsGroundName(f) || circuit.IsGroundName(t) {
			return
		}
		adj[f] = append(adj[f], t)
	}
	both := func(x, y string) { dir(x, y); dir(y, x) }
	for _, comp := range a.ckt.Components() {
		switch c := comp.(type) {
		case *circuit.Resistor:
			both(c.A, c.B)
		case *circuit.Capacitor:
			both(c.A, c.B)
		case *circuit.Inductor:
			both(c.A, c.B)
		case *circuit.VSource:
			both(c.Plus, c.Minus)
		case *circuit.ISource:
			both(c.Plus, c.Minus)
		case *circuit.VCVS:
			dir(c.CtrlP, c.OutP)
			dir(c.CtrlP, c.OutM)
			dir(c.CtrlM, c.OutP)
			dir(c.CtrlM, c.OutM)
			both(c.OutP, c.OutM)
		case *circuit.VCCS:
			dir(c.CtrlP, c.OutP)
			dir(c.CtrlP, c.OutM)
			dir(c.CtrlM, c.OutP)
			dir(c.CtrlM, c.OutM)
			both(c.OutP, c.OutM)
		case *circuit.CCVS:
			a.currentControlEdges(c.CtrlVSource, c.OutP, c.OutM, dir, both)
		case *circuit.CCCS:
			a.currentControlEdges(c.CtrlVSource, c.OutP, c.OutM, dir, both)
		case *circuit.Opamp:
			if follower[c.Label] {
				dir(testIn[c.Label], c.Out)
			} else {
				dir(c.InP, c.Out)
				dir(c.InN, c.Out)
			}
		}
	}
	return adj
}

// currentControlEdges adds the edges of a current-controlled source: the
// sensed voltage source's terminals feed the output pair.
func (a *analysis) currentControlEdges(ctrl, outP, outM string, dir func(string, string), both func(string, string)) {
	if comp, ok := a.ckt.Component(ctrl); ok {
		if vs, isV := comp.(*circuit.VSource); isV {
			dir(vs.Plus, outP)
			dir(vs.Plus, outM)
			dir(vs.Minus, outP)
			dir(vs.Minus, outM)
		}
	}
	both(outP, outM)
}

// reach returns the set of nodes reachable from start, start included.
func reach(adj map[string][]string, start string) map[string]bool {
	seen := map[string]bool{start: true}
	stack := []string{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range adj[n] {
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return seen
}

// reverseGraph flips every edge.
func reverseGraph(adj map[string][]string) map[string][]string {
	out := make(map[string][]string, len(adj))
	for from, tos := range adj {
		for _, to := range tos {
			out[to] = append(out[to], from)
		}
	}
	return out
}

// checkConfigurations enumerates all 2^n DFT configurations of the
// validated chain and fires NL013 for configurations with no structural
// input→output signal path and NL014 for groups of configurations that
// are structurally identical seen from the primary ports.
func (a *analysis) checkConfigurations(chainLine int) {
	chain := a.chainReady
	n := len(chain)
	if n > maxChainForConfigChecks {
		a.rep.add(Diagnostic{Code: CodeNoSignalPath, Severity: SevInfo, Line: chainLine,
			Message: fmt.Sprintf("chain has %d opamps (> %d); the 2^n per-configuration checks were skipped", n, maxChainForConfigChecks),
			Hint:    "split the chain or lint a partial DFT to keep the enumeration tractable"})
		return
	}

	// Static test-input wiring of dft.Apply: the first chain opamp's
	// test input is the primary input, every later one buffers the
	// previous chain member's output.
	testIn := make(map[string]string, n)
	prev := circuit.CanonicalNode(a.ckt.Input)
	for _, name := range chain {
		testIn[name] = prev
		comp, _ := a.ckt.Component(name)
		prev = circuit.CanonicalNode(comp.(*circuit.Opamp).Out)
	}

	in := circuit.CanonicalNode(a.ckt.Input)
	out := circuit.CanonicalNode(a.ckt.Output)
	var broken []string
	bySignature := make(map[string][]string)
	var sigOrder []string
	for idx := 0; idx < 1<<uint(n); idx++ {
		follower := make(map[string]bool, n)
		for i, name := range chain {
			follower[name] = idx&(1<<uint(i)) != 0
		}
		adj := a.configGraph(follower, testIn)
		label := "C" + strconv.Itoa(idx)
		fwd := reach(adj, in)
		if !fwd[out] {
			broken = append(broken, label)
		}
		sig := a.signature(fwd, reach(reverseGraph(adj), out), follower)
		if _, seen := bySignature[sig]; !seen {
			sigOrder = append(sigOrder, sig)
		}
		bySignature[sig] = append(bySignature[sig], label)
	}

	if len(broken) > 0 {
		a.rep.add(Diagnostic{Code: CodeNoSignalPath, Line: chainLine,
			Message: fmt.Sprintf("configuration(s) %s have no structural signal path from %q to %q",
				strings.Join(broken, ", "), a.ckt.Input, a.ckt.Output),
			Hint: "order the .chain along the signal flow and make sure the output stays driven in every configuration"})
	}
	for _, sig := range sigOrder {
		group := bySignature[sig]
		if len(group) < 2 {
			continue
		}
		a.rep.add(Diagnostic{Code: CodeIdenticalConfigs, Line: chainLine,
			Message: fmt.Sprintf("configurations %s are structurally identical seen from the primary ports",
				strings.Join(group, ", ")),
			Hint: "identical configurations add no covering information; drop redundant chain opamps or accept the wasted columns"})
	}
}

// signature fingerprints a configuration by the components that can both
// be excited from the input and observed at the output, with the modes of
// the chain opamps among them. Two configurations with equal signatures
// present the same structural two-port.
func (a *analysis) signature(fwd, bwd map[string]bool, follower map[string]bool) string {
	live := func(node string) bool {
		c := circuit.CanonicalNode(node)
		return fwd[c] && bwd[c]
	}
	var parts []string
	for _, comp := range a.ckt.Components() {
		relevant := false
		for _, t := range comp.Terminals() {
			if !circuit.IsGroundName(t) && live(t) {
				relevant = true
				break
			}
		}
		if !relevant {
			continue
		}
		if op, isOp := comp.(*circuit.Opamp); isOp {
			if mode, chained := follower[op.Label]; chained {
				if mode {
					parts = append(parts, op.Label+":F")
				} else {
					parts = append(parts, op.Label+":N")
				}
				continue
			}
		}
		parts = append(parts, comp.Name())
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
