package netlint

import "analogdft/internal/obs"

// Every emitted diagnostic is counted by its stable code, so long-running
// services and CI runs can watch lint findings trend over time.
var lintDiags = obs.Reg().CounterVec("netlint_diagnostics_total",
	"netlint diagnostics emitted, by stable NLxxx code", "code")

// countDiagnostics folds one report into the process-wide registry.
func countDiagnostics(r *Report) {
	for _, d := range r.Diagnostics {
		lintDiags.With(d.Code).Inc()
	}
}
