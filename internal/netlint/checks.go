package netlint

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"analogdft/internal/circuit"
)

// analysis carries the shared state of one Analyze run.
type analysis struct {
	src Source
	ckt *circuit.Circuit
	rep *Report

	grounded   bool
	degree     map[string]int    // canonical non-ground node → terminal attachments
	firstComp  map[string]string // canonical node → first component touching it
	driven     map[string]bool   // nodes fixed by a voltage output
	ioOK       bool
	chainReady []string // validated chain, set by checkChain when usable
}

// prepare computes the node statistics every check shares.
func (a *analysis) prepare() {
	a.degree = make(map[string]int)
	a.firstComp = make(map[string]string)
	a.driven = make(map[string]bool)
	for _, comp := range a.ckt.Components() {
		for _, t := range comp.Terminals() {
			if circuit.IsGroundName(t) {
				a.grounded = true
				continue
			}
			n := circuit.CanonicalNode(t)
			a.degree[n]++
			if _, ok := a.firstComp[n]; !ok {
				a.firstComp[n] = comp.Name()
			}
		}
	}
	for _, drv := range a.drivers() {
		if !circuit.IsGroundName(drv.node) {
			a.driven[circuit.CanonicalNode(drv.node)] = true
		}
	}
}

// lineOf returns the deck line of a component (0 when unknown).
func (a *analysis) lineOf(component string) int {
	if a.src.Deck == nil {
		return 0
	}
	return a.src.Deck.Line(component)
}

// nodeLine returns the deck line of the first component touching a node.
func (a *analysis) nodeLine(node string) int {
	return a.lineOf(a.firstComp[circuit.CanonicalNode(node)])
}

// sortedNodes returns the canonical non-ground node names, sorted.
func (a *analysis) sortedNodes() []string {
	out := make([]string, 0, len(a.degree))
	for n := range a.degree {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// checkGround fires NL001 when no terminal references ground.
func (a *analysis) checkGround() {
	if a.grounded || len(a.ckt.Components()) == 0 {
		if len(a.ckt.Components()) == 0 {
			a.rep.add(Diagnostic{Code: CodeNoGround,
				Message: "circuit has no components",
				Hint:    "add elements before analyzing the deck"})
		}
		return
	}
	a.rep.add(Diagnostic{Code: CodeNoGround,
		Message: "no component terminal connects to the ground reference",
		Hint:    `tie at least one node to ground ("0", "gnd" or "ground"); MNA needs a reference node`})
}

// checkFloatingNodes fires NL002 for nodes with a single terminal
// attachment. The primary input is exempt (the stimulus source attaches
// there at analysis time) and so is a primary output fixed by a voltage
// driver (an opamp or controlled-source output is observable at degree 1).
func (a *analysis) checkFloatingNodes() {
	in := circuit.CanonicalNode(a.ckt.Input)
	out := circuit.CanonicalNode(a.ckt.Output)
	for _, n := range a.sortedNodes() {
		if a.degree[n] >= 2 || n == in {
			continue
		}
		if n == out && a.driven[n] {
			continue
		}
		a.rep.add(Diagnostic{Code: CodeFloatingNode,
			Node: n, Component: a.firstComp[n], Line: a.nodeLine(n),
			Message: fmt.Sprintf("node %q attaches to only one component terminal (%s), so its voltage is underdetermined", n, a.firstComp[n]),
			Hint:    "connect the node to at least one more element, or remove the dangling element"})
	}
}

// checkIslands fires NL003 for nodes unreachable from ground, treating
// each component as a hyperedge over its terminals. Skipped when NL001
// already fired: without a ground every node would be flagged.
func (a *analysis) checkIslands() {
	if !a.grounded {
		return
	}
	adj := make(map[string][]string)
	link := func(x, y string) {
		adj[x] = append(adj[x], y)
		adj[y] = append(adj[y], x)
	}
	for _, comp := range a.ckt.Components() {
		t := comp.Terminals()
		for i := 1; i < len(t); i++ {
			link(circuit.CanonicalNode(t[0]), circuit.CanonicalNode(t[i]))
		}
	}
	seen := map[string]bool{circuit.GroundName: true}
	stack := []string{circuit.GroundName}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range adj[n] {
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	for _, n := range a.sortedNodes() {
		if !seen[n] {
			a.rep.add(Diagnostic{Code: CodeIsland,
				Node: n, Component: a.firstComp[n], Line: a.nodeLine(n),
				Message: fmt.Sprintf("node %q is not reachable from ground; the network splits into disconnected islands", n),
				Hint:    "every island needs a path to ground; add a return element or merge the islands"})
		}
	}
}

// checkVoltageLoops fires NL004 when voltage-defining branches (V sources
// and VCVS outputs) close a loop — including two sources in parallel and a
// source shorted across ground — which makes the MNA system structurally
// singular for almost all element values.
func (a *analysis) checkVoltageLoops() {
	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	closes := func(x, y string) bool {
		rx, ry := find(circuit.CanonicalNode(x)), find(circuit.CanonicalNode(y))
		if rx == ry {
			return true
		}
		parent[rx] = ry
		return false
	}
	for _, comp := range a.ckt.Components() {
		var p, m string
		switch c := comp.(type) {
		case *circuit.VSource:
			p, m = c.Plus, c.Minus
		case *circuit.VCVS:
			p, m = c.OutP, c.OutM
		case *circuit.CCVS:
			p, m = c.OutP, c.OutM
		default:
			continue
		}
		if closes(p, m) {
			a.rep.add(Diagnostic{Code: CodeVoltageLoop,
				Component: comp.Name(), Line: a.lineOf(comp.Name()),
				Message: fmt.Sprintf("%s %q closes a loop of voltage-defining branches, a structural MNA singularity", kindNoun(comp), comp.Name()),
				Hint:    "break the loop (or the parallel/shorted source) with a series resistance"})
		}
	}
}

// driver is one voltage output that fixes a node's potential.
type driver struct {
	node string
	comp string
	desc string
}

// drivers lists every node-voltage driver: opamp outputs always, and
// source outputs whose other terminal is grounded (those pin the node to a
// defined potential).
func (a *analysis) drivers() []driver {
	var out []driver
	for _, comp := range a.ckt.Components() {
		switch c := comp.(type) {
		case *circuit.Opamp:
			out = append(out, driver{c.Out, c.Label, "opamp output"})
		case *circuit.VCVS:
			if circuit.IsGroundName(c.OutM) {
				out = append(out, driver{c.OutP, c.Label, "VCVS output"})
			} else if circuit.IsGroundName(c.OutP) {
				out = append(out, driver{c.OutM, c.Label, "VCVS output"})
			}
		case *circuit.CCVS:
			if circuit.IsGroundName(c.OutM) {
				out = append(out, driver{c.OutP, c.Label, "CCVS output"})
			} else if circuit.IsGroundName(c.OutP) {
				out = append(out, driver{c.OutM, c.Label, "CCVS output"})
			}
		case *circuit.VSource:
			if circuit.IsGroundName(c.Minus) {
				out = append(out, driver{c.Plus, c.Label, "voltage source"})
			} else if circuit.IsGroundName(c.Plus) {
				out = append(out, driver{c.Minus, c.Label, "voltage source"})
			}
		}
	}
	return out
}

// checkDriverConflicts fires NL005 when a node is fixed by two voltage
// outputs, or when an opamp output is tied straight to ground.
func (a *analysis) checkDriverConflicts() {
	byNode := make(map[string][]driver)
	for _, d := range a.drivers() {
		if circuit.IsGroundName(d.node) {
			a.rep.add(Diagnostic{Code: CodeDriverConflict,
				Component: d.comp, Node: circuit.GroundName, Line: a.lineOf(d.comp),
				Message: fmt.Sprintf("%s of %q is tied to ground, fighting the reference node", d.desc, d.comp),
				Hint:    "a driven output cannot share the ground node; rewire the output"})
			continue
		}
		n := circuit.CanonicalNode(d.node)
		byNode[n] = append(byNode[n], d)
	}
	for _, n := range sortedKeys(byNode) {
		ds := byNode[n]
		if len(ds) < 2 {
			continue
		}
		var who []string
		for _, d := range ds {
			who = append(who, fmt.Sprintf("%s %s", d.comp, d.desc))
		}
		a.rep.add(Diagnostic{Code: CodeDriverConflict,
			Component: ds[0].comp, Node: n, Line: a.lineOf(ds[0].comp),
			Message: fmt.Sprintf("node %q is fixed by %d voltage outputs (%s)", n, len(ds), strings.Join(who, ", ")),
			Hint:    "at most one output may drive a node; decouple the extra driver through a resistor"})
	}
}

// checkGroundSpellings fires NL006 when the deck mixes ground aliases.
func (a *analysis) checkGroundSpellings() {
	if a.src.Deck == nil || len(a.src.Deck.GroundSpellings) <= 1 {
		return
	}
	quoted := make([]string, len(a.src.Deck.GroundSpellings))
	for i, s := range a.src.Deck.GroundSpellings {
		quoted[i] = fmt.Sprintf("%q", s)
	}
	a.rep.add(Diagnostic{Code: CodeGroundAlias,
		Node:    circuit.GroundName,
		Message: fmt.Sprintf("deck spells the ground node %d ways: %s", len(quoted), strings.Join(quoted, ", ")),
		Hint:    `pick one spelling (conventionally "0") for the whole deck`})
}

// checkCaseCollisions fires NL007 for node names that differ only by
// letter case — legal (node names are case-sensitive) but almost always a
// typo that silently splits one electrical node in two.
func (a *analysis) checkCaseCollisions() {
	byLower := make(map[string][]string)
	for _, n := range a.ckt.Nodes() {
		byLower[strings.ToLower(n)] = append(byLower[strings.ToLower(n)], n)
	}
	for _, low := range sortedKeys(byLower) {
		group := byLower[low]
		if len(group) < 2 {
			continue
		}
		sort.Strings(group)
		quoted := make([]string, len(group))
		for i, n := range group {
			quoted[i] = fmt.Sprintf("%q", n)
		}
		a.rep.add(Diagnostic{Code: CodeNodeCaseCollision,
			Node: group[0], Line: a.nodeLine(group[0]),
			Message: fmt.Sprintf("node names %s differ only by case and denote distinct nodes", strings.Join(quoted, " and ")),
			Hint:    "node names are case-sensitive; unify the spelling if one node was intended"})
	}
}

// plausible value ranges per passive kind. Values outside are almost
// always a scale-suffix mistake (SPICE "m" is milli; 1e6 is "meg").
var plausibleRange = map[circuit.Kind][2]float64{
	circuit.KindResistor:  {1e-1, 1e9},
	circuit.KindCapacitor: {1e-15, 1e-3},
	circuit.KindInductor:  {1e-9, 1e3},
}

// checkValues fires NL008 for non-positive (or non-finite) passive values
// and NL009 for finite positive values far outside the physical range.
func (a *analysis) checkValues() {
	for _, v := range a.ckt.Passives() {
		val := v.Value()
		if math.IsNaN(val) || math.IsInf(val, 0) || val <= 0 {
			a.rep.add(Diagnostic{Code: CodeNonPositiveValue,
				Component: v.Name(), Line: a.lineOf(v.Name()),
				Message: fmt.Sprintf("%s %q has non-positive value %g %s", kindNoun(v), v.Name(), val, v.Unit()),
				Hint:    "passive element values must be finite and positive"})
			continue
		}
		r, ok := plausibleRange[v.Kind()]
		if ok && (val < r[0] || val > r[1]) {
			a.rep.add(Diagnostic{Code: CodeImplausibleValue,
				Component: v.Name(), Line: a.lineOf(v.Name()),
				Message: fmt.Sprintf("%s %q value %g %s is outside the plausible range [%g, %g] %s",
					kindNoun(v), v.Name(), val, v.Unit(), r[0], r[1], v.Unit()),
				Hint:    `check the scale suffix: "m" means milli in SPICE; use "meg" for 1e6`})
		}
	}
}

// checkIO fires NL010 when the primary input or output is unset or not a
// node of the circuit, and records whether the DFT structure checks can
// rely on the ports.
func (a *analysis) checkIO() {
	a.ioOK = true
	var inLine, outLine int
	if a.src.Deck != nil {
		inLine, outLine = a.src.Deck.InputLine, a.src.Deck.OutputLine
	}
	check := func(role, node string, line int) {
		if node == "" {
			a.ioOK = false
			a.rep.add(Diagnostic{Code: CodeMissingIO,
				Message: fmt.Sprintf("primary %s node is unset", role),
				Hint:    fmt.Sprintf("declare it with a .%s directive", role)})
			return
		}
		if _, ok := a.degree[circuit.CanonicalNode(node)]; !ok {
			a.ioOK = false
			a.rep.add(Diagnostic{Code: CodeMissingIO,
				Node: node, Line: line,
				Message: fmt.Sprintf("primary %s node %q is not attached to any component", role, node),
				Hint:    "point the directive at an existing node of the netlist"})
		}
	}
	check("input", a.ckt.Input, inLine)
	check("output", a.ckt.Output, outLine)
}

// checkFaultTargets fires NL011 for fault-list entries that name
// components the circuit does not have, or that are not passives (the
// paper's fault universe covers only R, C and L deviations).
func (a *analysis) checkFaultTargets() {
	for _, name := range a.src.FaultTargets {
		comp, ok := a.ckt.Component(name)
		if !ok {
			a.rep.add(Diagnostic{Code: CodeBadFaultTarget,
				Component: name,
				Message:   fmt.Sprintf("fault target %q does not exist in the circuit", name),
				Hint:      "check the fault list against the deck's component names"})
			continue
		}
		switch comp.Kind() {
		case circuit.KindResistor, circuit.KindCapacitor, circuit.KindInductor:
		default:
			a.rep.add(Diagnostic{Code: CodeBadFaultTarget,
				Component: name, Line: a.lineOf(name),
				Message: fmt.Sprintf("fault target %q is a %s, not a passive element", name, kindNoun(comp)),
				Hint:    "the deviation fault universe covers only R, C and L elements"})
		}
	}
}

// checkChain validates the configurable-opamp chain (NL012) and, when it
// is well-formed and the ports are usable, runs the per-configuration
// structure checks (NL013, NL014).
func (a *analysis) checkChain() {
	if len(a.src.Chain) == 0 {
		return
	}
	var chainLine int
	if a.src.Deck != nil {
		chainLine = a.src.Deck.ChainLine
	}
	ok := true
	seen := make(map[string]bool, len(a.src.Chain))
	for _, name := range a.src.Chain {
		if seen[name] {
			ok = false
			a.rep.add(Diagnostic{Code: CodeBadChain,
				Component: name, Line: chainLine,
				Message: fmt.Sprintf("chain entry %q is duplicated", name),
				Hint:    "each configurable opamp appears once in the .chain directive"})
			continue
		}
		seen[name] = true
		comp, found := a.ckt.Component(name)
		if !found {
			ok = false
			a.rep.add(Diagnostic{Code: CodeBadChain,
				Component: name, Line: chainLine,
				Message: fmt.Sprintf("chain names unknown component %q", name),
				Hint:    "the .chain directive must list opamps declared in the deck"})
			continue
		}
		if _, isOp := comp.(*circuit.Opamp); !isOp {
			ok = false
			a.rep.add(Diagnostic{Code: CodeBadChain,
				Component: name, Line: a.lineOf(name),
				Message: fmt.Sprintf("chain entry %q is a %s, not an opamp", name, kindNoun(comp)),
				Hint:    "only opamps can be replaced by configurable opamps"})
		}
	}
	if !ok || !a.ioOK {
		return
	}
	a.chainReady = a.src.Chain
	a.checkConfigurations(chainLine)
}

// kindNoun returns a human noun for a component's kind.
func kindNoun(c circuit.Component) string {
	switch c.Kind() {
	case circuit.KindResistor:
		return "resistor"
	case circuit.KindCapacitor:
		return "capacitor"
	case circuit.KindInductor:
		return "inductor"
	case circuit.KindVSource:
		return "voltage source"
	case circuit.KindISource:
		return "current source"
	case circuit.KindVCVS:
		return "VCVS"
	case circuit.KindVCCS:
		return "VCCS"
	case circuit.KindCCVS:
		return "CCVS"
	case circuit.KindCCCS:
		return "CCCS"
	case circuit.KindOpamp:
		return "opamp"
	default:
		return c.Kind().String()
	}
}

// sortedKeys returns the sorted keys of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
