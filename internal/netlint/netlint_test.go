package netlint

import (
	"os"
	"strings"
	"testing"

	"analogdft/internal/circuits"
	"analogdft/internal/spice"
)

// lintDeck parses a deck string and analyzes it with the deck's chain
// (or every opamp in netlist order, matching the LoadBench default).
func lintDeck(t *testing.T, src string) *Report {
	t.Helper()
	deck, err := spice.ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	chain := deck.Chain
	if len(chain) == 0 {
		for _, op := range deck.Circuit.Opamps() {
			chain = append(chain, op.Name())
		}
	}
	return Analyze(Source{Circuit: deck.Circuit, Chain: chain, Deck: deck})
}

// codes returns the distinct diagnostic codes of a report, in order.
func codes(r *Report) []string {
	var out []string
	seen := make(map[string]bool)
	for _, d := range r.Diagnostics {
		if !seen[d.Code] {
			seen[d.Code] = true
			out = append(out, d.Code)
		}
	}
	return out
}

func wantCodes(t *testing.T, r *Report, want ...string) {
	t.Helper()
	got := codes(r)
	if len(got) != len(want) {
		t.Fatalf("codes = %v, want %v\nreport: %+v", got, want, r.Diagnostics)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("codes = %v, want %v", got, want)
		}
	}
}

func TestBiquadDeckIsClean(t *testing.T) {
	data, err := os.ReadFile("../../testdata/biquad.cir")
	if err != nil {
		t.Fatal(err)
	}
	rep := lintDeck(t, string(data))
	if !rep.Clean() {
		t.Fatalf("biquad deck not clean:\n%+v", rep.Diagnostics)
	}
}

func TestLibraryBenchesAreClean(t *testing.T) {
	for _, bench := range circuits.Library() {
		rep := Analyze(Source{Circuit: bench.Circuit, Chain: bench.Chain})
		if !rep.Clean() {
			t.Errorf("bench %s not clean:\n%+v", bench.Circuit.Name, rep.Diagnostics)
		}
	}
}

func TestNoGround(t *testing.T) {
	rep := lintDeck(t, "R1 a b 1k\nR2 b a 2k\n.input a\n.output b\n")
	wantCodes(t, rep, CodeNoGround)
}

func TestFloatingNode(t *testing.T) {
	rep := lintDeck(t, "R1 in a 1k\nR2 a 0 1k\nR3 a x 1k\n.input in\n.output a\n")
	wantCodes(t, rep, CodeFloatingNode)
	d := rep.Diagnostics[0]
	if d.Node != "x" || d.Component != "R3" || d.Line != 3 {
		t.Errorf("diag = %+v, want node x / R3 / line 3", d)
	}
}

func TestDrivenOutputAtDegreeOneIsFine(t *testing.T) {
	rep := lintDeck(t, "R1 in a 1k\nR2 a 0 1k\nOA1 0 a out\n.input in\n.output out\n")
	// out has degree 1 but is an opamp output: observable, not floating.
	// The missing feedback keeps the opamp linear region notional, but
	// structurally the deck is sound.
	for _, d := range rep.Diagnostics {
		if d.Code == CodeFloatingNode {
			t.Fatalf("driven output flagged floating: %+v", d)
		}
	}
}

func TestDisconnectedIsland(t *testing.T) {
	rep := lintDeck(t, "R1 in a 1k\nR2 a 0 1k\nR3 p q 1k\nC3 q p 1n\n.input in\n.output a\n")
	wantCodes(t, rep, CodeIsland)
	if len(rep.Diagnostics) != 2 {
		t.Fatalf("want one island diagnostic per node, got %+v", rep.Diagnostics)
	}
}

func TestVoltageLoop(t *testing.T) {
	rep := lintDeck(t, "V1 a 0 1\nV2 a 0 2\nR1 a 0 1k\n.input a\n.output a\n")
	got := codes(rep)
	if got[0] != CodeVoltageLoop {
		t.Fatalf("codes = %v, want %s first", got, CodeVoltageLoop)
	}
	if rep.Diagnostics[0].Component != "V2" {
		t.Errorf("loop blamed %q, want V2", rep.Diagnostics[0].Component)
	}
}

func TestDriverConflict(t *testing.T) {
	rep := lintDeck(t, strings.Join([]string{
		"R1 in a 1k", "R2 x a 1k", "OA1 0 a x",
		"R3 in b 1k", "R4 x b 1k", "OA2 0 b x",
		".input in", ".output x",
	}, "\n"))
	wantCodes(t, rep, CodeDriverConflict)
	if d := rep.Diagnostics[0]; d.Node != "x" || !strings.Contains(d.Message, "2 voltage outputs") {
		t.Errorf("diag = %+v", d)
	}
}

func TestOpampOutputGrounded(t *testing.T) {
	rep := lintDeck(t, "R1 in a 1k\nOA1 0 a 0\nR2 a 0 1k\n.input in\n.output a\n")
	wantCodes(t, rep, CodeDriverConflict)
}

func TestGroundAliasMix(t *testing.T) {
	rep := lintDeck(t, "R1 in a 1k\nC1 a gnd 1n\nR2 a 0 1k\n.input in\n.output a\n")
	wantCodes(t, rep, CodeGroundAlias)
	if !strings.Contains(rep.Diagnostics[0].Message, `"gnd", "0"`) {
		t.Errorf("message = %q", rep.Diagnostics[0].Message)
	}
}

func TestNodeCaseCollision(t *testing.T) {
	rep := lintDeck(t, "R1 in Va 1k\nR2 Va 0 1k\nR3 in va 1k\nR4 va 0 1k\n.input in\n.output Va\n")
	wantCodes(t, rep, CodeNodeCaseCollision)
}

func TestNonPositiveValue(t *testing.T) {
	rep := lintDeck(t, "R1 in a -5\nR2 a 0 1k\n.input in\n.output a\n")
	wantCodes(t, rep, CodeNonPositiveValue)
	if rep.Errors() != 1 {
		t.Errorf("Errors = %d", rep.Errors())
	}
}

func TestImplausibleValue(t *testing.T) {
	rep := lintDeck(t, "R1 in a 1k\nC1 a 0 4.7\n.input in\n.output a\n")
	wantCodes(t, rep, CodeImplausibleValue)
	if rep.Warnings() != 1 || rep.Errors() != 0 {
		t.Errorf("warnings/errors = %d/%d", rep.Warnings(), rep.Errors())
	}
}

func TestMissingIO(t *testing.T) {
	rep := lintDeck(t, "R1 in a 1k\nR2 a 0 1k\nR3 in 0 1k\n.input zz\n.output a\n")
	wantCodes(t, rep, CodeMissingIO)
	rep = lintDeck(t, "R1 in a 1k\nR2 a 0 1k\nR3 in 0 1k\n")
	if n := len(rep.Diagnostics); n != 2 {
		t.Fatalf("unset input+output should yield 2 diagnostics, got %+v", rep.Diagnostics)
	}
}

func TestBadFaultTarget(t *testing.T) {
	deck, err := spice.ParseString("R1 in a 1k\nR2 a 0 1k\nOA1 0 a b\nR3 b a 1k\n.input in\n.output b\n")
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(Source{Circuit: deck.Circuit, Deck: deck, FaultTargets: []string{"R1", "R9", "OA1"}})
	wantCodes(t, rep, CodeBadFaultTarget)
	if len(rep.Diagnostics) != 2 {
		t.Fatalf("want 2 bad targets, got %+v", rep.Diagnostics)
	}
}

func TestBadChain(t *testing.T) {
	rep := lintDeck(t, "R1 in a 1k\nR2 a 0 1k\nOA1 0 a b\nR3 b a 1k\n.input in\n.output b\n.chain OA1 OA9 OA1 R1\n")
	wantCodes(t, rep, CodeBadChain)
	if len(rep.Diagnostics) != 3 {
		t.Fatalf("want unknown+duplicate+non-opamp, got %+v", rep.Diagnostics)
	}
}

func TestNoSignalPathOnReversedChain(t *testing.T) {
	rep := lintDeck(t, strings.Join([]string{
		"R1 in a 1k", "OA1 0 a v1", "R2 v1 b 1k", "OA2 0 b out", "R3 out 0 1k",
		".input in", ".output out", ".chain OA2 OA1",
	}, "\n"))
	var noPath *Diagnostic
	for i, d := range rep.Diagnostics {
		if d.Code == CodeNoSignalPath {
			noPath = &rep.Diagnostics[i]
		}
	}
	if noPath == nil {
		t.Fatalf("no NL013 in %+v", rep.Diagnostics)
	}
	if !strings.Contains(noPath.Message, "C2") {
		t.Errorf("message = %q, want C2 named", noPath.Message)
	}
	// Same deck with the chain along the signal flow is path-clean.
	rep = lintDeck(t, strings.Join([]string{
		"R1 in a 1k", "OA1 0 a v1", "R2 v1 b 1k", "OA2 0 b out", "R3 out 0 1k",
		".input in", ".output out", ".chain OA1 OA2",
	}, "\n"))
	for _, d := range rep.Diagnostics {
		if d.Code == CodeNoSignalPath {
			t.Fatalf("in-order chain flagged: %+v", d)
		}
	}
}

func TestIdenticalConfigs(t *testing.T) {
	rep := lintDeck(t, strings.Join([]string{
		"R1 in a 1k", "OA1 0 a out", "R2 out a 1k",
		"V2 c 0 1", "R3 c d 1k", "OA2 0 d e", "R4 e d 1k", "R5 e 0 1k",
		".input in", ".output out", ".chain OA1 OA2",
	}, "\n"))
	wantCodes(t, rep, CodeIdenticalConfigs)
	if len(rep.Diagnostics) != 2 {
		t.Fatalf("want 2 identical-config groups, got %+v", rep.Diagnostics)
	}
	if m := rep.Diagnostics[0].Message; !strings.Contains(m, "C0, C2") {
		t.Errorf("first group = %q, want C0, C2", m)
	}
}

func TestLongChainSkipsConfigChecks(t *testing.T) {
	rep := lintDeck(t, buildChainDeck(maxChainForConfigChecks+1))
	found := false
	for _, d := range rep.Diagnostics {
		if d.Code == CodeNoSignalPath && d.Severity == SevInfo {
			found = true
		}
	}
	if !found {
		t.Fatalf("no skip notice in %+v", rep.Diagnostics)
	}
}

// buildChainDeck synthesizes an n-opamp inverting-stage cascade deck.
func buildChainDeck(n int) string {
	var b strings.Builder
	b.WriteString("R0 in n0 1k\n")
	for i := 0; i < n; i++ {
		b.WriteString("OA" + itoa(i+1) + " 0 n" + itoa(i) + " n" + itoa(i+1) + "\n")
		b.WriteString("RF" + itoa(i+1) + " n" + itoa(i+1) + " n" + itoa(i) + " 1k\n")
	}
	b.WriteString(".input in\n.output n" + itoa(n) + "\n.chain")
	for i := 0; i < n; i++ {
		b.WriteString(" OA" + itoa(i+1))
	}
	b.WriteString("\n")
	return b.String()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var digits []byte
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	return string(digits)
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Code: CodeFloatingNode, Severity: SevError, Component: "R3", Node: "x", Line: 7, Message: "m", Hint: "h"}
	s := d.String()
	for _, want := range []string{"NL002", "error", "floating-node", "component R3", "node x", "line 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestReportWriters(t *testing.T) {
	rep := lintDeck(t, "R1 in a 1k\nR2 a 0 1k\nR3 a x 1k\n.input in\n.output a\n")
	var txt, js strings.Builder
	if err := rep.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "netlist:3: NL002") || !strings.Contains(txt.String(), "fix:") {
		t.Errorf("text = %q", txt.String())
	}
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"code": "NL002"`) || !strings.Contains(js.String(), `"severity": "error"`) {
		t.Errorf("json = %s", js.String())
	}
}

func TestChecksTableCoversAllCodes(t *testing.T) {
	seen := make(map[string]bool)
	for i, c := range Checks() {
		if c.Code == "" || c.Name == "" || c.Summary == "" {
			t.Errorf("incomplete entry %+v", c)
		}
		if seen[c.Code] {
			t.Errorf("duplicate code %s", c.Code)
		}
		seen[c.Code] = true
		if i > 0 && Checks()[i-1].Code >= c.Code {
			t.Errorf("table not in code order at %s", c.Code)
		}
	}
	if len(seen) != 14 {
		t.Errorf("expected 14 registered checks, got %d", len(seen))
	}
}
